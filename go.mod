module tsnoop

go 1.24
