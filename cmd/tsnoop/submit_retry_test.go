package main

// Tests for submit -retry: transient 429/503 responses and connection
// errors are retried with backoff (honoring Retry-After), permanent
// errors are not.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// flakyServer answers failCode (with Retry-After: 0 so tests stay
// fast) for the first fails requests, then 200 with a Run body.
func flakyServer(t *testing.T, failCode, fails int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fails) {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"try later"}`, failCode)
			return
		}
		w.Header().Set("X-Tsnoop-Cache", "hit")
		w.Write([]byte(`{"runtime_ps":7}` + "\n"))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestSubmitRetryRidesOutTransientErrors(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv, calls := flakyServer(t, code, 2)
		var out, errb bytes.Buffer
		err := submitCmd.exec(context.Background(),
			[]string{"-addr", srv.URL, "-benchmark", "barnes", "-nodes", "4", "-retry", "3"},
			&out, &errb)
		if err != nil {
			t.Fatalf("submit -retry 3 against two %ds: %v\nstderr: %s", code, err, errb.String())
		}
		if got := calls.Load(); got != 3 {
			t.Fatalf("server saw %d attempts, want 3", got)
		}
		if !strings.Contains(out.String(), `"runtime_ps":7`) {
			t.Fatalf("stdout = %q, want the Run body", out.String())
		}
		if !strings.Contains(errb.String(), "retrying in") {
			t.Fatalf("stderr did not report the retries:\n%s", errb.String())
		}
	}
}

func TestSubmitWithoutRetryFailsFast(t *testing.T) {
	srv, calls := flakyServer(t, http.StatusServiceUnavailable, 1)
	err := submitCmd.exec(context.Background(),
		[]string{"-addr", srv.URL, "-benchmark", "barnes", "-nodes", "4"},
		&bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "try later") {
		t.Fatalf("submit without -retry = %v, want the server's 503 error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts without -retry, want 1", got)
	}
}

// A 400 reflects the request, not the moment: -retry must not repeat it.
func TestSubmitRetrySkipsPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)
	err := submitCmd.exec(context.Background(),
		[]string{"-addr", srv.URL, "-benchmark", "barnes", "-nodes", "4", "-retry", "5"},
		&bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("submit of a rejected spec = %v, want the 400 error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
}

// retryAfter accepts both header forms and rejects garbage.
func TestRetryAfterParsing(t *testing.T) {
	if d := retryAfter("3"); d.Seconds() != 3 {
		t.Errorf("retryAfter(3) = %s", d)
	}
	if d := retryAfter(""); d != 0 {
		t.Errorf("retryAfter empty = %s", d)
	}
	if d := retryAfter("soon"); d != 0 {
		t.Errorf("retryAfter garbage = %s", d)
	}
	if d := retryAfter("Mon, 02 Jan 2006 15:04:05 GMT"); d != 0 {
		t.Errorf("retryAfter past date = %s, want 0", d)
	}
}

// The serve readiness gate over the CLI: /readyz answers 200 once the
// server announces itself.
func TestServeReadyz(t *testing.T) {
	url, shutdown := startServer(t)
	defer shutdown()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after serve announced = %s, want 200", resp.Status)
	}
}
