package main

// Tests for the service-facing CLI surface: tsnoop serve + submit end
// to end over a real socket, the -cache flag on run/grid/sweep, and the
// version subcommand.

import (
	"bytes"
	"context"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the serve goroutine
// writes its stderr while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// startServer runs `tsnoop serve` on a free port in the background and
// returns its base URL plus a shutdown function that asserts a clean
// graceful drain.
func startServer(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	var errb syncBuffer
	done := make(chan error, 1)
	go func() {
		args := append([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, extra...)
		done <- serveCmd.exec(ctx, args, &out, &errb)
	}()
	addrRE := regexp.MustCompile(`serving on (http://[0-9.:]+)`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(errb.String()); m != nil {
			return m[1], func() {
				cancel()
				select {
				case err := <-done:
					if err != nil {
						t.Errorf("serve did not drain cleanly: %v", err)
					}
				case <-time.After(10 * time.Second):
					t.Error("serve did not exit after cancel")
				}
				if !strings.Contains(errb.String(), "draining") {
					t.Errorf("serve skipped the drain path:\n%s", errb.String())
				}
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never announced its address:\n%s", errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The CLI acceptance path: submit the same run twice over HTTP; the
// first simulates, the second is a store hit with byte-identical output.
func TestServeSubmitSecondResponseIsCacheHit(t *testing.T) {
	url, shutdown := startServer(t, "-cache", t.TempDir())
	defer shutdown()
	args := []string{"submit", "-addr", url, "-benchmark", "barnes",
		"-nodes", "4", "-warmup", "60", "-quota", "120"}

	first, firstErr := execTsnoop(t, args...)
	if !strings.Contains(firstErr, "cache miss") {
		t.Fatalf("first submit stderr = %q, want a cache miss", firstErr)
	}
	second, secondErr := execTsnoop(t, args...)
	if !strings.Contains(secondErr, "cache hit") {
		t.Fatalf("second submit stderr = %q, want a cache hit", secondErr)
	}
	if first != second {
		t.Fatalf("second response not byte-identical:\n first: %s\nsecond: %s", first, second)
	}
	if !strings.Contains(first, `"runtime_ps"`) {
		t.Fatalf("response is not Run JSON: %s", first)
	}
}

func TestServeSubmitGridStreamsNDJSON(t *testing.T) {
	url, shutdown := startServer(t)
	defer shutdown()
	out, _ := execTsnoop(t, "submit", "-addr", url, "-mode", "grid",
		"-benchmark", "barnes", "-nodes", "4", "-network", "butterfly",
		"-warmup", "60", "-quota", "120")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("grid submit streamed %d lines, want 3:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"benchmark":"barnes"`) {
			t.Fatalf("unexpected grid line: %s", line)
		}
	}
}

func TestSubmitReportsServerErrors(t *testing.T) {
	url, shutdown := startServer(t)
	defer shutdown()
	err := submitCmd.exec(context.Background(),
		[]string{"-addr", url, "-benchmark", "tpc-w"}, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("submit error = %v, want the server's validation message", err)
	}
}

// run -cache: the second invocation renders from the store, and output
// is byte-identical to the uncached path.
func TestRunCacheFlagServesSecondRunFromStore(t *testing.T) {
	dir := t.TempDir()
	args := []string{"run", "-benchmark", "barnes", "-nodes", "4",
		"-warmup", "60", "-quota", "120", "-seeds", "2", "-perturb-ns", "3"}
	plain, _ := execTsnoop(t, args...)
	cold, coldErr := execTsnoop(t, append(args, "-cache", dir)...)
	if cold != plain {
		t.Fatalf("-cache cold output differs from uncached:\n got:\n%s\nwant:\n%s", cold, plain)
	}
	if strings.Contains(coldErr, "served from the result store") {
		t.Fatalf("cold run claimed a store hit:\n%s", coldErr)
	}
	warm, warmErr := execTsnoop(t, append(args, "-cache", dir)...)
	if warm != plain {
		t.Fatalf("-cache warm output differs:\n got:\n%s\nwant:\n%s", warm, plain)
	}
	if !strings.Contains(warmErr, "served from the result store") {
		t.Fatalf("warm run did not report the store hit:\n%s", warmErr)
	}

	// -json rides the same store and stays byte-identical.
	jsonPlain, _ := execTsnoop(t, append(args, "-json")...)
	jsonWarm, _ := execTsnoop(t, append(args, "-json", "-cache", dir)...)
	if jsonPlain != jsonWarm {
		t.Fatalf("-cache -json output differs:\n got:\n%s\nwant:\n%s", jsonWarm, jsonPlain)
	}
}

// grid -cache warms from run -cache's store and renders byte-identically.
func TestGridCacheFlagMatchesUncached(t *testing.T) {
	dir := t.TempDir()
	args := []string{"grid", "-figure", "3", "-network", "butterfly", "-benchmark", "barnes",
		"-seeds", "1", "-scale", "0.05", "-warmup-scale", "0.05"}
	plain, _ := execTsnoop(t, args...)
	for pass := 0; pass < 2; pass++ {
		out, _ := execTsnoop(t, append(args, "-cache", dir)...)
		if out != plain {
			t.Fatalf("pass %d: grid -cache output differs:\n got:\n%s\nwant:\n%s", pass, out, plain)
		}
	}
}

// sweep -cache matches the uncached rendering, cold and warm.
func TestSweepCacheFlagMatchesUncached(t *testing.T) {
	dir := t.TempDir()
	args := []string{"sweep", "-sweep", "blocksize", "-benchmark", "barnes",
		"-scale", "0.03", "-warmup-scale", "0.05"}
	plain, _ := execTsnoop(t, args...)
	for pass := 0; pass < 2; pass++ {
		out, _ := execTsnoop(t, append(args, "-cache", dir)...)
		if out != plain {
			t.Fatalf("pass %d: sweep -cache output differs:\n got:\n%s\nwant:\n%s", pass, out, plain)
		}
	}
}

func TestVersionSmoke(t *testing.T) {
	out, _ := execTsnoop(t, "version")
	if !strings.HasPrefix(out, "tsnoop ") || !strings.Contains(out, runtime.Version()) {
		t.Fatalf("version output unexpected: %q", out)
	}
	if strings.Count(strings.TrimSpace(out), "\n") != 0 {
		t.Fatalf("version output is not one line: %q", out)
	}
}
