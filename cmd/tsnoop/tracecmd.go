package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tsnoop/internal/coherence"
	"tsnoop/internal/spec"
	"tsnoop/internal/system"
	"tsnoop/internal/trace"
	"tsnoop/internal/workload"
)

// traceCmd captures, inspects, transforms, and replays workload trace
// files (the internal/trace format). Traces turn the simulator into a
// scenario engine: record any benchmark's reference stream once, then
// replay it bit-exactly into any protocol and network, or rewrite it
// (fold CPUs, scale the footprint, cut a window, merge streams) to
// build scenarios no generator produces.
//
//	tsnoop trace record -benchmark OLTP -o oltp.tstrace
//	tsnoop trace stat oltp.tstrace
//	tsnoop trace transform -in oltp.tstrace -fold 8 -o oltp8.tstrace
//	tsnoop trace replay -trace oltp8.tstrace -protocol DirOpt -network torus
//
// A trace file records its own machine width and phase quotas, so a
// replay reproduces the recorded run's statistics byte-identically
// (asserted by internal/trace/roundtrip_test.go). Replays also work
// anywhere a benchmark name does, via trace:<path> workload names:
//
//	tsnoop run -benchmark trace:oltp.tstrace -protocol DirOpt
var traceCmd = &command{
	name:    "trace",
	summary: "record, replay, inspect, and transform workload traces",
	raw: func(ctx context.Context, args []string, stdout, stderr io.Writer) error {
		if len(args) < 1 {
			traceUsage(stderr)
			return fmt.Errorf("trace: missing subcommand")
		}
		for _, c := range traceCommands {
			if c.name == args[0] {
				return c.exec(ctx, args[1:], stdout, stderr)
			}
		}
		traceUsage(stderr)
		return fmt.Errorf("trace: unknown subcommand %q", args[0])
	},
}

var traceCommands = []*command{traceRecordCmd, traceReplayCmd, traceStatCmd, traceTransformCmd}

func traceUsage(w io.Writer) {
	fmt.Fprint(w, "usage: tsnoop trace <command> [flags]\n\ncommands:\n")
	for _, c := range traceCommands {
		fmt.Fprintf(w, "  %-10s %s\n", c.name, c.summary)
	}
	fmt.Fprint(w, "\nrun \"tsnoop trace <command> -h\" for each command's flags\n")
}

// traceRecordCmd captures a benchmark's per-CPU stream. By default it
// draws the stream directly from the generator (fast; identical to what
// a live run consumes). With -sim it instead runs a full simulation and
// tees the stream a real protocol observed (same bytes, plus a run
// summary). The spec's quota resolution applies: -warmup/-quota
// override, a trace-backed source's own quotas come next, then the
// benchmark defaults.
var traceRecordCmd = &command{
	name:      "record",
	summary:   "capture a workload's reference stream to a trace file",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Bind(fs)
		out := fs.String("o", "", "output trace file (required)")
		useSim := fs.Bool("sim", false, "record through a live simulation (Recorder tee) instead of drawing directly")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if *out == "" {
				return fmt.Errorf("record: -o output file is required")
			}
			cfg, gen, err := s.Config()
			if err != nil {
				return err
			}
			h := trace.Header{
				CPUs:           s.Nodes,
				Name:           gen.Name(),
				FootprintBytes: gen.FootprintBytes(),
				WarmupPerCPU:   cfg.WarmupPerCPU,
				MeasurePerCPU:  cfg.MeasurePerCPU,
			}
			if *useSim {
				f, err := os.Create(*out)
				if err != nil {
					return err
				}
				w, err := trace.NewWriter(f, h, s.Workers)
				if err != nil {
					return err
				}
				sys, err := system.Build(cfg, trace.NewRecorder(gen, w))
				if err != nil {
					return err
				}
				run := sys.Execute()
				if err := w.Close(); err != nil {
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "recorded %s via %s/%s run:\n%s", *out, s.Protocol, s.Network, run.Summary())
			} else {
				tr := trace.Capture(gen, s.Nodes, s.Seed, cfg.WarmupPerCPU, cfg.MeasurePerCPU)
				if err := tr.WriteFile(*out, s.Workers); err != nil {
					return err
				}
			}
			// Recording from a trace-backed source (-benchmark trace:<path>)
			// that ran dry would bake re-walked wrapped data into the new
			// file.
			if w, ok := gen.(workload.Wrapping); ok && w.Wraps() > 0 {
				os.Remove(*out)
				return fmt.Errorf("record: source stream wrapped %d times (its recording is shorter than %d+%d accesses per cpu); lower -warmup/-quota",
					w.Wraps(), cfg.WarmupPerCPU, cfg.MeasurePerCPU)
			}
			st, err := trace.StatFile(*out)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: %s, %d cpus, %d accesses, %d bytes (%.2f bytes/access)\n",
				*out, st.Header.Name, st.Header.CPUs, st.Accesses(), st.FileBytes,
				float64(st.FileBytes)/float64(st.Accesses()))
			return nil
		}
	},
}

// traceReplayCmd drives a simulation from a trace file; the trace
// supplies the machine width and phase quotas.
var traceReplayCmd = &command{
	name:      "replay",
	summary:   "run a simulation driven by a trace file",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Bind(fs)
		path := fs.String("trace", "", "trace file to replay (required)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if *path == "" {
				return fmt.Errorf("replay: -trace file is required")
			}
			// Resolved shares its decode with the trace: resolutions inside
			// the seed fan-out, so the file is read once.
			tr, err := trace.Resolved(*path)
			if err != nil {
				return err
			}
			rs := s
			rs.Benchmark = "trace:" + *path
			rs.Nodes = tr.Header.CPUs
			run, err := rs.RunContext(ctx)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s (%s) / %s / %s (%d nodes)\n", *path, tr.Header.Name, rs.Protocol, rs.Network, rs.Nodes)
			if rs.Seeds > 1 {
				fmt.Fprintf(stdout, "best of %d perturbed replays\n", rs.Seeds)
			}
			_, err = io.WriteString(stdout, run.Summary())
			return err
		}
	},
}

// traceStatCmd prints a trace's header and stream statistics.
var traceStatCmd = &command{
	name:     "stat",
	summary:  "summarize one or more trace files",
	wantArgs: true,
	setup: func(fs *flag.FlagSet) execFn {
		workers := fs.Int("workers", 0, "decode workers for -full (0 = one per CPU)")
		full := fs.Bool("full", false, "decode the streams and report op mix and block reach")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if fs.NArg() == 0 {
				return fmt.Errorf("stat: give one or more trace files")
			}
			for _, path := range fs.Args() {
				var st *trace.Stat
				var tr *trace.Trace
				if *full {
					// One read serves both the summary and the decoded
					// streams.
					data, err := os.ReadFile(path)
					if err != nil {
						return err
					}
					if tr, err = trace.Decode(data, *workers); err != nil {
						return fmt.Errorf("%s: %w", path, err)
					}
					st = &trace.Stat{Header: tr.Header, PerCPU: make([]int64, len(tr.Streams)), FileBytes: int64(len(data))}
					for cpu, s := range tr.Streams {
						st.PerCPU[cpu] = int64(len(s))
					}
				} else {
					var err error
					if st, err = trace.StatFile(path); err != nil {
						return err
					}
				}
				minC, maxC := st.PerCPU[0], st.PerCPU[0]
				for _, c := range st.PerCPU {
					minC, maxC = min(minC, c), max(maxC, c)
				}
				fmt.Fprintf(stdout, "%s:\n", path)
				fmt.Fprintf(stdout, "  workload     %s\n", st.Header.Name)
				fmt.Fprintf(stdout, "  cpus         %d\n", st.Header.CPUs)
				fmt.Fprintf(stdout, "  quotas       %d warm-up + %d measured per cpu\n", st.Header.WarmupPerCPU, st.Header.MeasurePerCPU)
				fmt.Fprintf(stdout, "  footprint    %.1f MB\n", float64(st.Header.FootprintBytes)/(1<<20))
				fmt.Fprintf(stdout, "  accesses     %d total (%d..%d per cpu)\n", st.Accesses(), minC, maxC)
				fmt.Fprintf(stdout, "  size         %d bytes (%.2f bytes/access)\n", st.FileBytes, float64(st.FileBytes)/float64(st.Accesses()))
				if *full {
					var stores, think int64
					blocks := map[int64]struct{}{}
					for _, s := range tr.Streams {
						for _, a := range s {
							if a.Op == coherence.Store {
								stores++
							}
							think += int64(a.Think)
							blocks[int64(a.Block)] = struct{}{}
						}
					}
					n := tr.Accesses()
					fmt.Fprintf(stdout, "  stores       %.1f%%\n", 100*float64(stores)/float64(n))
					fmt.Fprintf(stdout, "  blocks       %d distinct (%.1f MB touched at 64 B)\n", len(blocks), float64(len(blocks))*64/(1<<20))
					fmt.Fprintf(stdout, "  mean think   %.1f instructions\n", float64(think)/float64(n))
				}
			}
			return nil
		}
	},
}

// traceTransformCmd rewrites a trace through the composable passes,
// applied in a fixed order: window, then fold, then scale, then merge.
var traceTransformCmd = &command{
	name:    "transform",
	summary: "rewrite a trace (fold/scale/window/merge)",
	setup: func(fs *flag.FlagSet) execFn {
		in := fs.String("in", "", "input trace file (required)")
		out := fs.String("o", "", "output trace file (required)")
		foldN := fs.Int("fold", 0, "fold onto this many cpus (0 = keep)")
		scaleF := fs.Float64("scale", 0, "footprint scale factor (0 = keep)")
		start := fs.Int("start", 0, "window start (accesses per cpu, with -window)")
		window := fs.Int("window", 0, "window length in accesses per cpu (0 = keep all)")
		merge := fs.String("merge", "", "comma-separated traces to interleave in")
		workers := fs.Int("workers", 0, "transform/encode workers (0 = one per CPU)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if *in == "" || *out == "" {
				return fmt.Errorf("transform: -in and -o are required")
			}
			if *foldN < 0 || *scaleF < 0 || *start < 0 || *window < 0 {
				return fmt.Errorf("transform: -fold, -scale, -start, and -window must not be negative")
			}
			if *start > 0 && *window == 0 {
				return fmt.Errorf("transform: -start requires -window")
			}
			tr, err := trace.ReadFile(*in, *workers)
			if err != nil {
				return err
			}
			var passes []trace.Transform
			if *window > 0 {
				passes = append(passes, trace.Window(*start, *window))
			}
			if *foldN > 0 {
				passes = append(passes, trace.Fold(*foldN))
			}
			if *scaleF > 0 {
				passes = append(passes, trace.Scale(*scaleF))
			}
			if *merge != "" {
				var others []*trace.Trace
				for _, p := range strings.Split(*merge, ",") {
					o, err := trace.ReadFile(strings.TrimSpace(p), *workers)
					if err != nil {
						return err
					}
					others = append(others, o)
				}
				passes = append(passes, trace.Merge(others...))
			}
			if len(passes) == 0 {
				return fmt.Errorf("transform: nothing to do (give -fold, -scale, -window, or -merge)")
			}
			if tr, err = trace.Apply(tr, *workers, passes...); err != nil {
				return err
			}
			if err := tr.WriteFile(*out, *workers); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: %s, %d cpus, %d accesses\n", *out, tr.Header.Name, tr.Header.CPUs, tr.Accesses())
			return nil
		}
	},
}
