package main

import (
	"fmt"
	"time"
)

// progressMeter derives throughput and a completion estimate for the
// -progress stream. It is the only place wall-clock time meets the
// grid/sweep path — the simulator itself never reads a clock — and it
// decorates the existing per-cell line rather than adding lines, so
// one completion still means exactly one stderr line.
type progressMeter struct {
	start time.Time
}

func newProgressMeter() *progressMeter { return &progressMeter{start: time.Now()} }

// note renders " (X.X cells/s, ETA Ys)" after done of total
// completions. The rate is cumulative (completions over total elapsed
// time), which smooths the estimate across cells of very different
// cost. Fully cached streams can complete within clock resolution;
// the note stays empty rather than printing an infinite rate.
func (p *progressMeter) note(done, total int) string {
	elapsed := time.Since(p.start).Seconds()
	if done <= 0 || elapsed <= 0 {
		return ""
	}
	rate := float64(done) / elapsed
	eta := time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second)
	return fmt.Sprintf(" (%.1f cells/s, ETA %s)", rate, eta)
}
