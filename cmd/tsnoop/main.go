// Command tsnoop is the unified command-line surface of the
// timestamp-snooping reproduction. Every subcommand parses the same
// experiment flag set — the canonical rendering of core.Spec — so flags
// never drift between tools, and any invocation can be reproduced as a
// Spec value, a JSON object, or a flag list.
//
//	tsnoop run     -benchmark OLTP -protocol TS-Snoop -network butterfly
//	tsnoop grid    -figure 3 -network both -progress
//	tsnoop sweep   -sweep ablation -network torus
//	tsnoop tables  -table 2
//	tsnoop check   -seeds 20 -ops 200
//	tsnoop trace   record -benchmark OLTP -o oltp.tstrace
//	tsnoop serve   -addr localhost:8177 -cache ~/.cache/tsnoop
//	tsnoop submit  -addr http://localhost:8177 -benchmark OLTP
//
// Grid and sweep subcommands stream their cells from the concurrent
// engine: -progress reports per-cell completion on stderr as results
// arrive, -json emits machine-readable results (one JSON object per
// cell), and an interrupt (Ctrl-C) cancels cleanly without losing the
// cells already printed.
//
// serve exposes the same experiments over HTTP, backed by a
// content-addressed result store and a dedup job queue (see
// internal/service); run, grid, and sweep accept -cache DIR to hit the
// same store locally, so repeated figure reproduction skips every
// already-computed cell.
//
// serve -peers federates N nodes into one logical service: a static
// consistent-hash ring shards the result store across the member list,
// misses are forwarded to their owning peer (identical submissions
// entering anywhere singleflight onto one simulation), hot results
// replicate into the entry node's LRU, and an unreachable peer degrades
// to local compute. submit -retry N rides out 429/503 responses and
// restarts with exponential backoff, honoring Retry-After.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"slices"
	"strings"

	"tsnoop/internal/spec"
)

// execFn runs a parsed subcommand.
type execFn func(ctx context.Context, stdout, stderr io.Writer) error

// command is one tsnoop subcommand. setup registers its flags on fs and
// returns the closure that runs with the parsed values; raw commands
// (the trace dispatcher) receive their arguments verbatim instead.
type command struct {
	name    string
	aliases []string
	summary string
	// simulates marks commands that execute experiments and must expose
	// the full Spec flag set (asserted by TestSubcommandFlagParity).
	simulates bool
	// wantArgs permits positional arguments after the flags.
	wantArgs bool
	setup    func(fs *flag.FlagSet) execFn
	raw      func(ctx context.Context, args []string, stdout, stderr io.Writer) error
}

var commands = []*command{runCmd, gridCmd, sweepCmd, tablesCmd, checkCmd, traceCmd, serveCmd, submitCmd, versionCmd}

func findCommand(name string) *command {
	for _, c := range commands {
		if c.name == name || slices.Contains(c.aliases, name) {
			return c
		}
	}
	return nil
}

// exec parses args and runs the command.
func (c *command) exec(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if c.raw != nil {
		return c.raw(ctx, args, stdout, stderr)
	}
	fs := flag.NewFlagSet("tsnoop "+c.name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	run := c.setup(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !c.wantArgs && fs.NArg() > 0 {
		return fmt.Errorf("%s: unexpected arguments %v", c.name, fs.Args())
	}
	return run(ctx, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprint(w, "usage: tsnoop <command> [flags]\n\ncommands:\n")
	for _, c := range commands {
		name := c.name
		if len(c.aliases) > 0 {
			name += " (" + strings.Join(c.aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-16s %s\n", name, c.summary)
	}
	fmt.Fprint(w, "\nrun \"tsnoop <command> -h\" for each command's flags\n")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsnoop: ")
	if len(os.Args) < 2 || os.Args[1] == "help" || os.Args[1] == "-h" || os.Args[1] == "-help" || os.Args[1] == "--help" {
		usage(os.Stderr)
		os.Exit(2)
	}
	if os.Args[1] == "-version" || os.Args[1] == "--version" {
		os.Args[1] = "version"
	}
	c := findCommand(os.Args[1])
	if c == nil {
		log.Printf("unknown command %q", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	// Ctrl-C cancels the streaming engines cleanly: no new simulations
	// start, in-flight ones finish, and the error below names the cause.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := c.exec(ctx, os.Args[2:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// expandNetworks resolves a -network value that may be "both".
func expandNetworks(name string) ([]string, error) {
	if name == "both" || name == "" {
		return append([]string(nil), spec.Networks...), nil
	}
	if !slices.Contains(spec.Networks, name) {
		return nil, fmt.Errorf("unknown network %q (have both, %s)", name, strings.Join(spec.Networks, ", "))
	}
	return []string{name}, nil
}
