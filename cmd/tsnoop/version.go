package main

import (
	"context"
	"flag"
	"io"
	"runtime"
	"runtime/debug"
)

// versionCmd prints the build's identity: module version, VCS commit
// and time when the binary was built from a checkout, and the Go
// toolchain. `tsnoop -version` and `tsnoop --version` are accepted
// aliases, the convention every deployment script expects.
var versionCmd = &command{
	name:    "version",
	summary: "print the tsnoop version and build information",
	setup: func(fs *flag.FlagSet) execFn {
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			_, err := io.WriteString(stdout, versionString()+"\n")
			return err
		}
	},
}

// versionString renders the build info on one line.
func versionString() string {
	version, commit, when, modified := "(devel)", "", "", false
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" {
			version = info.Main.Version
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				commit = s.Value
			case "vcs.time":
				when = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
	}
	out := "tsnoop " + version
	if commit != "" {
		if len(commit) > 12 {
			commit = commit[:12]
		}
		out += " commit " + commit
		if modified {
			out += "+dirty"
		}
	}
	if when != "" {
		out += " built " + when
	}
	return out + " " + runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
}
