package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"tsnoop/internal/harness"
	"tsnoop/internal/spec"
)

// tablesCmd regenerates the paper's tables: the unloaded-latency
// validation (Table 2, analytic vs measured) and the benchmark
// characteristics (Table 3). -benchmark restricts Table 3 to one
// workload.
var tablesCmd = &command{
	name:      "tables",
	summary:   "regenerate Table 2 (latencies) and Table 3 (benchmarks)",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Benchmark = "" // all benchmarks
		s.Network = "both"
		s.Bind(fs)
		table := fs.Int("table", 2, "table number to regenerate (2 or 3)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			switch *table {
			case 2:
				nets, err := expandNetworks(s.Network)
				if err != nil {
					return err
				}
				out, err := harness.RenderTable2Networks(s.Workers, nets...)
				if err != nil {
					return err
				}
				_, err = io.WriteString(stdout, out)
				return err
			case 3:
				if s.Network != "both" {
					return fmt.Errorf("table 3 does not take -network (its workload characterization uses a fixed configuration)")
				}
				e := harness.FromSpec(s)
				out, err := e.RenderTable3()
				if err != nil {
					return err
				}
				_, err = io.WriteString(stdout, out)
				return err
			default:
				return fmt.Errorf("unknown table %d (have 2 and 3)", *table)
			}
		}
	},
}
