package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"tsnoop/internal/harness"
	"tsnoop/internal/obs"
	"tsnoop/internal/service"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// runCmd executes a single benchmark x protocol x network simulation
// and prints its statistics. With -seeds N it runs N perturbed copies
// concurrently (bounded by -workers) and reports the minimum-runtime
// run, the paper's reporting rule. -json emits the result as a cell
// object with stable field names.
var runCmd = &command{
	name:      "run",
	summary:   "execute one benchmark x protocol x network simulation",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Bind(fs)
		jsonOut := fs.Bool("json", false, "emit the best run as a JSON cell result")
		cacheDir := fs.String("cache", "", "serve and record results through this content-addressed store directory")
		cpuprof := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof := fs.String("memprofile", "", "write a pprof heap profile to this file")
		traceOut := fs.String("trace-out", "", "write transaction-lifecycle spans as Chrome trace-event JSON to this file (implies -spans, single seed)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			stopProf, err := startProfiles(*cpuprof, *memprof)
			if err != nil {
				return err
			}
			var run *stats.Run
			var runErr error
			if *traceOut != "" {
				run, runErr = runTraced(s, *traceOut, *cacheDir, stderr)
			} else {
				run, runErr = runMaybeCached(ctx, s, *cacheDir, stderr)
			}
			if err := stopProf(); err != nil {
				return err
			}
			if runErr != nil {
				return runErr
			}
			if *jsonOut {
				return writeCellJSON(stdout, s, run)
			}
			fmt.Fprintf(stdout, "%s / %s / %s (%d nodes)\n", s.Benchmark, s.Protocol, s.Network, s.Nodes)
			if s.Seeds > 1 {
				fmt.Fprintf(stdout, "best of %d runs (seeds %d..%d)\n", s.Seeds, s.Seed, s.Seed+uint64(s.Seeds-1))
			}
			if _, err = io.WriteString(stdout, run.Summary()); err != nil {
				return err
			}
			if run.Metrics != nil {
				_, err = io.WriteString(stdout, run.Metrics.Summary())
			}
			return err
		}
	},
}

// traceRingCap bounds the -trace-out span ring: 1M spans (~48 MB) is
// far beyond any smoke-sized run; longer runs wrap, dropping the
// oldest spans, and the drop count is reported on stderr.
const traceRingCap = 1 << 20

// runTraced executes the spec once with span capture and writes the
// Chrome trace-event JSON. Like -metrics, span-bearing runs bypass
// the result store (their rendering is not the canonical payload).
func runTraced(s spec.Spec, path, cacheDir string, stderr io.Writer) (*stats.Run, error) {
	if cacheDir != "" {
		fmt.Fprintln(stderr, "tsnoop: -trace-out bypasses the result store (spans are not cached)")
	}
	log := obs.NewSpanLog(traceRingCap)
	run, err := s.RunTraced(log)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := obs.WriteChromeTrace(f, log); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if n := log.Dropped(); n > 0 {
		fmt.Fprintf(stderr, "tsnoop: span ring wrapped, oldest %d spans dropped from %s\n", n, path)
	}
	fmt.Fprintf(stderr, "tsnoop: wrote %d spans to %s (open in Perfetto or chrome://tracing)\n", log.Len(), path)
	return run, nil
}

// runMaybeCached executes the spec, through the content-addressed
// result store when -cache names a directory: a previously computed
// spec (same canonical hash) is served without simulation, a fresh one
// is computed and stored. Output is byte-identical either way.
func runMaybeCached(ctx context.Context, s spec.Spec, cacheDir string, stderr io.Writer) (*stats.Run, error) {
	if cacheDir == "" {
		return s.RunContext(ctx)
	}
	if s.Metrics || s.Spans {
		// The store's contract is byte-identical payloads per canonical
		// key, and Normalize clears the metrics/spans knobs (an
		// instrumented run is the same experiment), so an instrumented
		// rendering can neither be stored under nor served from that
		// key. Run directly.
		fmt.Fprintln(stderr, "tsnoop: -metrics/-spans bypasses the result store (telemetry is not cached)")
		return s.RunContext(ctx)
	}
	sv, err := newCacheService(ctx, cacheDir, s.Workers)
	if err != nil {
		return nil, err
	}
	res, err := sv.Do(ctx, s)
	if err != nil {
		return nil, err
	}
	if res.Cached {
		fmt.Fprintf(stderr, "tsnoop: served from the result store (key %s)\n", res.Key[:12])
	}
	return res.Run, nil
}

// newCacheService opens the local result store a -cache flag names. The
// command context is the job lifecycle: Ctrl-C cancels simulations.
func newCacheService(ctx context.Context, dir string, workers int) (*service.Service, error) {
	return service.New(service.Config{Dir: dir, Workers: workers, BaseContext: ctx})
}

// writeCellJSON renders one run as an indented cell-result object. The
// shape matches the grid subcommand's streamed cells, so one decoder
// reads both.
func writeCellJSON(w io.Writer, s spec.Spec, run *stats.Run) error {
	cr := harness.CellResult{
		Cell: harness.Cell{Benchmark: s.Benchmark, Protocol: s.Protocol, Network: s.Network},
		Best: run,
	}
	data, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// startProfiles starts the requested pprof profiles and returns the
// function that finishes them.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
