package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/fault"
	"tsnoop/internal/service"
)

// serveCmd runs the experiment service: an HTTP API over the
// content-addressed result store and the dedup job queue, so any
// previously computed experiment is served without simulation and
// identical concurrent submissions simulate once.
//
//	tsnoop serve -addr localhost:8177 -cache ~/.cache/tsnoop
//
// Endpoints: POST /v1/runs (Spec JSON -> Run JSON), POST /v1/grids and
// /v1/sweeps (NDJSON streams in presentation order), GET /v1/jobs[/{id}]
// (progress and phase spans), GET /healthz, GET /readyz, GET /metrics
// (Prometheus text exposition). Requests are access-logged as
// structured records on stderr. SIGTERM or Ctrl-C drains gracefully:
// /readyz flips to 503 first, then in-flight requests finish (and
// their results land in the store) before the process exits.
//
// -peers federates N serve processes into one logical service:
//
//	tsnoop serve -addr :8191 -peers host1:8191,host2:8192,host3:8193 -self host1:8191
//
// A static consistent-hash ring shards the canonical key space across
// the member list (which must be identical on every node); misses owned
// by a peer are forwarded there, so identical submissions entering
// anywhere singleflight onto one simulation, and the answer replicates
// into the entry node's LRU on the way back. A dead peer degrades to
// local compute — streams never fail. -max-cells bounds this node's
// in-flight streamed cells; past it /v1/grids and /v1/sweeps answer
// 429 with Retry-After.
var serveCmd = &command{
	name:    "serve",
	summary: "serve experiments over HTTP (content-addressed store + dedup queue)",
	setup: func(fs *flag.FlagSet) execFn {
		addr := fs.String("addr", "localhost:8177", "listen address (host:port; port 0 picks a free port)")
		cacheDir := fs.String("cache", "", "result store directory (empty = in-memory LRU only, nothing persists)")
		lru := fs.Int("lru", 0, "in-memory result cache entries (0 = default)")
		workers := fs.Int("workers", 0, "concurrent simulations across all jobs (0 = one per CPU)")
		drain := fs.Duration("drain", 30*time.Second, "graceful shutdown grace period")
		peers := fs.String("peers", "", "comma-separated cluster member list (host:port), identical on every node; empty = single node")
		self := fs.String("self", "", "this node's entry in -peers (default: the -addr value)")
		maxCells := fs.Int("max-cells", 0, "in-flight streamed-cell budget before 429 (0 = default, negative = unlimited)")
		breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive forward failures that trip a peer's circuit breaker (0 = default, negative = breakers off)")
		breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long a tripped breaker stays open before a half-open probe (0 = default)")
		faults := fs.String("faults", "", "fault-injection schedule, e.g. seed=7;store.get.corrupt=times:2 (default: $TSNOOP_FAULTS; chaos testing only)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			// The interrupt context from main covers Ctrl-C; production
			// supervisors send SIGTERM, so drain on that too.
			ctx, stop := signal.NotifyContext(ctx, syscall.SIGTERM)
			defer stop()
			schedule := *faults
			if schedule == "" {
				schedule = os.Getenv("TSNOOP_FAULTS")
			}
			if schedule != "" {
				fset, err := fault.Parse(schedule)
				if err != nil {
					return fmt.Errorf("serve: %w", err)
				}
				fault.Enable(fset)
				fmt.Fprintf(stderr, "tsnoop: FAULT INJECTION ACTIVE: %s\n", fset)
			}
			var cl *cluster.Cluster
			if *peers != "" {
				me := *self
				if me == "" {
					me = *addr
				}
				var err error
				cl, err = cluster.New(cluster.Config{
					Self:             me,
					Members:          strings.Split(*peers, ","),
					Client:           cluster.NewHTTPClient(cluster.DefaultTimeouts()),
					BreakerThreshold: *breakerThreshold,
					BreakerCooldown:  *breakerCooldown,
				})
				if err != nil {
					return fmt.Errorf("serve: %w", err)
				}
			}
			// Jobs run on their own lifecycle: a disconnected client must
			// not cancel a simulation other clients joined, and drain lets
			// in-flight work finish.
			sv, err := service.New(service.Config{
				Dir:      *cacheDir,
				LRU:      *lru,
				Workers:  *workers,
				Version:  versionString(),
				Logger:   slog.New(slog.NewTextHandler(stderr, nil)),
				Cluster:  cl,
				MaxCells: *maxCells,
			})
			if err != nil {
				return err
			}
			ln, err := net.Listen("tcp", *addr)
			if err != nil {
				return err
			}
			// Slowloris hardening: a client that trickles header bytes (or
			// parks an idle keep-alive connection forever) is cut off at
			// the server edge. No overall write timeout — NDJSON streams
			// legitimately run as long as the experiment does.
			srv := &http.Server{
				Handler:           service.NewHandler(sv),
				ReadHeaderTimeout: 10 * time.Second,
				IdleTimeout:       2 * time.Minute,
			}
			fmt.Fprintf(stderr, "tsnoop: serving on http://%s\n", ln.Addr())
			if *cacheDir != "" {
				fmt.Fprintf(stderr, "tsnoop: results persist in %s\n", *cacheDir)
			}
			if cl != nil {
				fmt.Fprintf(stderr, "tsnoop: cluster member %s of %s\n",
					cl.Self(), strings.Join(cl.Members(), ","))
			}
			sv.SetReady(true, "")
			errc := make(chan error, 1)
			go func() { errc <- srv.Serve(ln) }()
			select {
			case err := <-errc:
				return err
			case <-ctx.Done():
			}
			// Flip /readyz first so balancers stop routing here before
			// the listener closes.
			sv.SetReady(false, "draining")
			fmt.Fprintln(stderr, "tsnoop: draining (in-flight experiments finish first)")
			sctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				return fmt.Errorf("serve: drain: %w", err)
			}
			// Shutdown only waits for open connections; jobs whose
			// submitters disconnected are still running on the queue —
			// wait for them too, so their results land in the store.
			if err := sv.Drain(sctx); err != nil {
				return fmt.Errorf("serve: drain: %w", err)
			}
			if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		}
	},
}
