package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"iter"

	"tsnoop/internal/harness"
	"tsnoop/internal/service"
	"tsnoop/internal/spec"
	"tsnoop/internal/system"
)

// gridCmd regenerates the paper's figures: every benchmark x protocol
// cell for one or both networks, streamed from the concurrent engine.
// -figure selects the rendering (3 = normalized runtime, 4 = normalized
// link traffic); -benchmark restricts the grid to one workload (any
// Spec workload name, including trace:<path>); -progress reports cells
// on stderr as they complete; -json streams each cell as one JSON line
// instead of rendering.
var gridCmd = &command{
	name:      "grid",
	aliases:   []string{"figures"},
	summary:   "regenerate the Figure 3/4 grids (streaming)",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Benchmark = "" // all benchmarks
		s.Network = "both"
		s.Seeds = 3
		s.PerturbNS = 3
		s.Bind(fs)
		figure := fs.Int("figure", 3, "figure number (3 = runtime, 4 = traffic)")
		progress := fs.Bool("progress", false, "report per-cell completion on stderr")
		jsonOut := fs.Bool("json", false, "stream cell results as JSON lines instead of rendering")
		cacheDir := fs.String("cache", "", "serve and record cells through this content-addressed store directory")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if *figure != 3 && *figure != 4 {
				return fmt.Errorf("unknown figure %d (have 3 and 4)", *figure)
			}
			nets, err := expandNetworks(s.Network)
			if err != nil {
				return err
			}
			e := harness.FromSpec(s)
			// -protocol, when given explicitly, restricts the grid — but the
			// figure renderings normalize against TS-Snoop and need every
			// column, so a restricted grid is JSON-only.
			fs.Visit(func(f *flag.Flag) {
				if f.Name == "protocol" {
					e.Protocols = []string{s.Protocol}
				}
			})
			if len(e.Protocols) > 0 && !*jsonOut {
				return fmt.Errorf("grid -protocol requires -json (the figures need all three protocols)")
			}
			var sv *service.Service
			if *cacheDir != "" {
				if sv, err = newCacheService(ctx, *cacheDir, s.Workers); err != nil {
					return err
				}
			}
			for _, net := range nets {
				stream := e.StreamGrid(ctx, net)
				if sv != nil {
					// Each cell goes through the result store: cells
					// computed on any earlier run (or by a server sharing
					// the directory) render without simulation.
					stream = sv.StreamGrid(ctx, e, net)
				}
				g, err := streamGrid(stream, e, net, *progress, *jsonOut, stdout, stderr)
				if err != nil {
					return err
				}
				if *jsonOut {
					continue
				}
				switch *figure {
				case 3:
					fmt.Fprintln(stdout, g.Figure3())
					lo, hi := g.SpeedupRange(system.ProtoDirClassic)
					lo2, hi2 := g.SpeedupRange(system.ProtoDirOpt)
					fmt.Fprintf(stdout, "TS-Snoop runs %.0f-%.0f%% faster than DirClassic and %.0f-%.0f%% faster than DirOpt.\n\n",
						lo*100, hi*100, lo2*100, hi2*100)
				case 4:
					fmt.Fprintln(stdout, g.Figure4())
					lo, hi := g.ExtraTrafficRange(system.ProtoDirClassic)
					lo2, hi2 := g.ExtraTrafficRange(system.ProtoDirOpt)
					fmt.Fprintf(stdout, "TS-Snoop uses %.0f-%.0f%% more link bandwidth than DirClassic and %.0f-%.0f%% more than DirOpt.\n\n",
						lo*100, hi*100, lo2*100, hi2*100)
				}
			}
			return nil
		}
	},
}

// streamGrid drives one network's grid stream, reporting progress and
// JSON lines as requested, and returns the assembled grid.
func streamGrid(stream iter.Seq2[harness.CellResult, error], e harness.Experiment, network string, progress, jsonOut bool, stdout, stderr io.Writer) (*harness.Grid, error) {
	benchmarks := e.BenchmarkNames()
	total := len(benchmarks) * len(e.ProtocolNames())
	g := harness.NewGrid(network, benchmarks)
	done := 0
	meter := newProgressMeter()
	for cr, err := range stream {
		if err != nil {
			return nil, err
		}
		done++
		if progress {
			fmt.Fprintf(stderr, "grid %s: %d/%d %s/%s done%s\n", network, done, total, cr.Cell.Benchmark, cr.Cell.Protocol, meter.note(done, total))
		}
		if jsonOut {
			line, err := json.Marshal(cr)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(stdout, "%s\n", line)
		}
		g.Add(cr)
	}
	return g, nil
}
