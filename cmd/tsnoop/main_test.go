package main

// The acceptance suite of the API redesign:
//
//   - every simulating subcommand exposes the full Spec flag set (no
//     flag drift between tools),
//   - subcommand output is byte-identical to the pre-redesign
//     standalone binaries (goldens under testdata/, captured from the
//     tsrun/tsfigures/tstables/tssweep binaries before their removal)
//     at any -workers value,
//   - -json output is byte-stable across worker counts,
//   - -progress streams per-cell completion lines on stderr.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsnoop/internal/spec"
)

// execTsnoop runs a subcommand in-process and returns stdout/stderr.
func execTsnoop(t *testing.T, args ...string) (string, string) {
	t.Helper()
	c := findCommand(args[0])
	if c == nil {
		t.Fatalf("unknown subcommand %q", args[0])
	}
	var out, errb bytes.Buffer
	if err := c.exec(context.Background(), args[1:], &out, &errb); err != nil {
		t.Fatalf("tsnoop %s: %v\nstderr:\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.String(), errb.String()
}

func golden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// simulatingCommands lists every command (top-level and trace
// subcommand) that runs experiments.
func simulatingCommands() []*command {
	var cmds []*command
	for _, c := range append(append([]*command{}, commands...), traceCommands...) {
		if c.simulates {
			cmds = append(cmds, c)
		}
	}
	return cmds
}

// Every simulating subcommand must parse the complete Spec flag
// vocabulary: the fix for the historical drift where tssweep/tscheck
// lacked -seeds and the pprof tools each re-declared their own subset.
func TestSubcommandFlagParity(t *testing.T) {
	want := spec.FlagNames()
	if len(want) < 20 {
		t.Fatalf("suspiciously small spec flag set: %v", want)
	}
	cmds := simulatingCommands()
	if len(cmds) < 6 {
		t.Fatalf("expected at least 6 simulating subcommands, have %d", len(cmds))
	}
	for _, c := range cmds {
		fs := flag.NewFlagSet(c.name, flag.ContinueOnError)
		c.setup(fs)
		have := map[string]bool{}
		fs.VisitAll(func(f *flag.Flag) { have[f.Name] = true })
		for _, name := range want {
			if !have[name] {
				t.Errorf("tsnoop %s: missing spec flag -%s", c.name, name)
			}
		}
	}
}

func TestRunMatchesPreRedesignBinary(t *testing.T) {
	out, _ := execTsnoop(t, "run", "-benchmark", "barnes", "-protocol", "TS-Snoop",
		"-network", "butterfly", "-quota", "300", "-warmup", "150")
	if want := golden(t, "run_barnes.txt"); out != want {
		t.Errorf("run output differs from tsrun golden:\n got:\n%s\nwant:\n%s", out, want)
	}
	// Multi-seed, perturbed, at two worker counts.
	for _, workers := range []string{"1", "3"} {
		out, _ := execTsnoop(t, "run", "-benchmark", "DSS", "-protocol", "DirOpt",
			"-network", "torus", "-quota", "200", "-warmup", "100",
			"-seeds", "2", "-perturb-ns", "3", "-workers", workers)
		if want := golden(t, "run_dss_seeds.txt"); out != want {
			t.Errorf("workers=%s: run output differs from tsrun golden:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
}

func TestTablesMatchPreRedesignBinary(t *testing.T) {
	for _, workers := range []string{"1", "4"} {
		out, _ := execTsnoop(t, "tables", "-table", "2", "-workers", workers)
		if want := golden(t, "table2.txt"); out != want {
			t.Errorf("workers=%s: table 2 differs from tstables golden:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
	out, _ := execTsnoop(t, "tables", "-table", "3", "-scale", "0.1")
	if want := golden(t, "table3.txt"); out != want {
		t.Errorf("table 3 differs from tstables golden:\n got:\n%s\nwant:\n%s", out, want)
	}
}

func TestSweepsMatchPreRedesignBinary(t *testing.T) {
	out, _ := execTsnoop(t, "sweep", "-sweep", "envelope")
	if want := golden(t, "sweep_envelope.txt"); out != want {
		t.Errorf("envelope differs from tssweep golden:\n got:\n%s\nwant:\n%s", out, want)
	}
	if testing.Short() {
		t.Skip("measured sweeps")
	}
	for _, workers := range []string{"1", "4"} {
		out, _ := execTsnoop(t, "sweep", "-sweep", "blocksize", "-benchmark", "barnes",
			"-scale", "0.05", "-workers", workers)
		if want := golden(t, "sweep_blocksize.txt"); out != want {
			t.Errorf("workers=%s: blocksize differs from tssweep golden:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
	out, _ = execTsnoop(t, "sweep", "-sweep", "ablation", "-benchmark", "barnes",
		"-network", "torus", "-scale", "0.05")
	if want := golden(t, "sweep_ablation.txt"); out != want {
		t.Errorf("ablation differs from tssweep golden:\n got:\n%s\nwant:\n%s", out, want)
	}
}

func TestGridMatchesPreRedesignBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("grid runs")
	}
	for _, workers := range []string{"1", "4"} {
		out, _ := execTsnoop(t, "grid", "-figure", "3", "-network", "butterfly",
			"-seeds", "2", "-scale", "0.05", "-workers", workers)
		if want := golden(t, "fig3_butterfly.txt"); out != want {
			t.Errorf("workers=%s: figure 3 differs from tsfigures golden:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
	// The figures alias is the same command.
	out, _ := execTsnoop(t, "figures", "-figure", "4", "-network", "torus",
		"-seeds", "1", "-scale", "0.05")
	if want := golden(t, "fig4_torus.txt"); out != want {
		t.Errorf("figure 4 differs from tsfigures golden:\n got:\n%s\nwant:\n%s", out, want)
	}
}

// tsnoop run -json must be byte-stable across -workers values (the
// engine collects seed results in order) and match the committed
// golden, pinning the JSON field names.
func TestRunJSONByteStableAcrossWorkers(t *testing.T) {
	want := golden(t, "run_json.golden")
	for _, workers := range []string{"1", "2", "4"} {
		out, _ := execTsnoop(t, "run", "-benchmark", "barnes", "-nodes", "4",
			"-quota", "150", "-warmup", "80", "-seeds", "3", "-perturb-ns", "3",
			"-json", "-workers", workers)
		if out != want {
			t.Errorf("workers=%s: JSON output not byte-stable:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
}

// -metrics telemetry is keyed to simulated time and event counts only,
// so the full cell JSON — metrics block included — must stay
// byte-identical across worker counts. The flag-off golden above pins
// that the block is absent when telemetry is off.
func TestRunMetricsJSONByteStableAcrossWorkers(t *testing.T) {
	var want string
	for i, workers := range []string{"1", "4"} {
		out, _ := execTsnoop(t, "run", "-benchmark", "barnes", "-nodes", "4",
			"-quota", "150", "-warmup", "80", "-seeds", "3", "-perturb-ns", "3",
			"-json", "-metrics", "-workers", workers)
		if i == 0 {
			want = out
			for _, field := range []string{`"metrics"`, "typed_dispatches", "link_utilization_ppm", "mshr_occupancy"} {
				if !strings.Contains(out, field) {
					t.Fatalf("-metrics JSON missing %s:\n%s", field, out)
				}
			}
			continue
		}
		if out != want {
			t.Errorf("workers=%s: metrics JSON not byte-stable:\n got:\n%s\nwant:\n%s", workers, out, want)
		}
	}
}

// Text mode renders the metrics block after the run summary, and
// -metrics with -cache bypasses the result store (the store's contract
// is byte-identical payloads per canonical key; telemetry would break
// it) with a note instead of a failure.
func TestRunMetricsTextAndCacheBypass(t *testing.T) {
	out, _ := execTsnoop(t, "run", "-benchmark", "barnes", "-nodes", "4",
		"-quota", "150", "-warmup", "80", "-metrics")
	if !strings.Contains(out, "metrics:") || !strings.Contains(out, "token rounds") {
		t.Errorf("text mode missing metrics block:\n%s", out)
	}
	_, errOut := execTsnoop(t, "run", "-benchmark", "barnes", "-nodes", "4",
		"-quota", "150", "-warmup", "80", "-metrics", "-cache", t.TempDir())
	if !strings.Contains(errOut, "bypasses the result store") {
		t.Errorf("expected a store-bypass note on stderr, got:\n%s", errOut)
	}
}

func TestCheckSmoke(t *testing.T) {
	out, _ := execTsnoop(t, "check", "-seeds", "2", "-ops", "60", "-workers", "1")
	if !strings.Contains(out, "20 stress runs passed (10 combos x 2 seeds") {
		t.Fatalf("check output unexpected:\n%s", out)
	}
}

// The streaming iterator drives -progress: one stderr line per
// completed cell, in presentation order — something the collect-only
// API could not surface mid-run.
func TestGridProgressStreams(t *testing.T) {
	out, errOut := execTsnoop(t, "grid", "-figure", "3", "-network", "butterfly",
		"-benchmark", "barnes", "-seeds", "1", "-scale", "0.05", "-warmup-scale", "0.05",
		"-progress")
	lines := strings.Split(strings.TrimSpace(errOut), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 progress lines (one per protocol), got %d:\n%s", len(lines), errOut)
	}
	for i, proto := range []string{"TS-Snoop", "DirClassic", "DirOpt"} {
		if !strings.Contains(lines[i], "barnes/"+proto) {
			t.Errorf("progress line %d = %q, want barnes/%s", i, lines[i], proto)
		}
	}
	if !strings.Contains(out, "barnes") {
		t.Errorf("figure rendering missing benchmark:\n%s", out)
	}
}

// The same stream feeds -json: one JSON object per cell.
func TestGridJSONStreams(t *testing.T) {
	out, _ := execTsnoop(t, "grid", "-network", "torus", "-benchmark", "barnes",
		"-seeds", "1", "-scale", "0.05", "-warmup-scale", "0.05", "-json")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSON cells, got %d:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"benchmark":"barnes","protocol":"`) || !strings.Contains(line, `"runtime_ps"`) {
			t.Errorf("unexpected JSON cell: %s", line)
		}
	}
}

// The parity test guarantees the flags exist; these guarantee they are
// effective — the Spec flags each subcommand exposes must actually
// steer it (the redesign's fix for parsed-but-ignored flag drift).
func TestSpecFlagsAreEffective(t *testing.T) {
	// grid -benchmark restricts the grid; -protocol restricts it further
	// (JSON-only, since the figures need all three protocol columns).
	out, _ := execTsnoop(t, "grid", "-network", "torus", "-benchmark", "barnes",
		"-protocol", "DirOpt", "-seeds", "1", "-scale", "0.05", "-warmup-scale", "0.05", "-json")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"protocol":"DirOpt"`) {
		t.Errorf("grid -protocol did not restrict the grid:\n%s", out)
	}
	var errb bytes.Buffer
	if err := findCommand("grid").exec(context.Background(),
		[]string{"-protocol", "DirOpt", "-benchmark", "barnes"}, &bytes.Buffer{}, &errb); err == nil {
		t.Error("grid -protocol without -json accepted (figures need all protocols)")
	}

	// check validates the machine knobs it binds.
	for _, args := range [][]string{
		{"-seeds", "0", "-ops", "10"},
		{"-workers", "-2", "-ops", "10"},
		{"-nodes", "0", "-ops", "10"},
	} {
		if err := findCommand("check").exec(context.Background(), args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("check %v accepted", args)
		}
	}
	// check -mosi restricts the combination matrix.
	out, _ = execTsnoop(t, "check", "-seeds", "1", "-ops", "30", "-mosi", "-protocol", "TS-Snoop")
	if !strings.Contains(out, "3 combos x 1 seeds") {
		t.Errorf("check -mosi did not restrict the matrix:\n%s", out)
	}

	// sweep honors the seed fan-out: -seeds N means best-of-N per point.
	out, _ = execTsnoop(t, "sweep", "-sweep", "blocksize", "-benchmark", "barnes",
		"-scale", "0.03", "-warmup-scale", "0.05", "-seeds", "2", "-perturb-ns", "3")
	if !strings.Contains(out, "Block-size sweep") {
		t.Errorf("seeded sweep malformed:\n%s", out)
	}

	// run honors -seed: different bases give different streams.
	a, _ := execTsnoop(t, "run", "-benchmark", "barnes", "-nodes", "4", "-quota", "120", "-warmup", "60")
	b, _ := execTsnoop(t, "run", "-benchmark", "barnes", "-nodes", "4", "-quota", "120", "-warmup", "60", "-seed", "9")
	if a == b {
		t.Error("run -seed had no effect")
	}
}

func TestSubcommandErrorsAreOneLine(t *testing.T) {
	cases := [][]string{
		{"run", "-benchmark", "tpc-w"},
		{"run", "-protocol", "MOESI"},
		{"run", "-network", "hypercube"},
		{"grid", "-figure", "9"},
		{"sweep", "-sweep", "bogus"},
		{"tables", "-table", "7"},
		{"check", "-protocol", "MOESI"},
		{"check", "-seeds", "0"},
	}
	for _, args := range cases {
		c := findCommand(args[0])
		var out, errb bytes.Buffer
		err := c.exec(context.Background(), args[1:], &out, &errb)
		if err == nil {
			t.Errorf("tsnoop %s: invalid flags accepted", strings.Join(args, " "))
			continue
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("tsnoop %s: error not one line: %q", strings.Join(args, " "), err)
		}
	}
}
