package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"slices"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/parallel"
	"tsnoop/internal/protocol/directory"
	"tsnoop/internal/protocol/tssnoop"
	"tsnoop/internal/sim"
	"tsnoop/internal/spec"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// checkCmd is a randomized stress checker for the coherence protocols:
// it drives concurrent random access mixes through every protocol x
// network combination, with the runtime coherence oracle armed and
// response perturbation enabled, then verifies quiescence invariants
// (single-writer/multiple-reader, memory/directory agreement with cache
// states). Any violation aborts with a diagnostic.
//
// Runs fan out across -workers concurrent simulations; -protocol and
// -network restrict the combination matrix ("all"/"both" run the full
// matrix, the default).
var checkCmd = &command{
	name:      "check",
	summary:   "randomized coherence stress checker (SWMR + agreement)",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Seeds = 10
		s.PerturbNS = 3
		s.Protocol = "all"
		s.Network = "both"
		s.PredictorSize = 4 // small: exercise the audit-retry path
		s.Bind(fs)
		ops := fs.Int("ops", 150, "accesses per processor per run")
		blocks := fs.Int("blocks", 8, "hot-block pool size (smaller = more contention)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if s.Protocol != "all" && !slices.Contains(spec.Protocols, s.Protocol) {
				return fmt.Errorf("unknown protocol %q (have all, %v)", s.Protocol, spec.Protocols)
			}
			if s.Network != "both" && !slices.Contains(spec.Networks, s.Network) {
				return fmt.Errorf("unknown network %q (have both, %v)", s.Network, spec.Networks)
			}
			// Validate the machine knobs (nodes, seeds, workers, slack ...)
			// with concrete protocol/network names substituted for the
			// "all"/"both" matrix selectors.
			probe := s
			probe.Protocol, probe.Network = spec.Protocols[0], spec.Networks[0]
			if err := probe.Validate(); err != nil {
				return err
			}
			// -mosi / -multicast, when given explicitly, restrict the
			// combination matrix the way -protocol and -network do.
			mosiSet, mcastSet := false, false
			fs.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "mosi":
					mosiSet = true
				case "multicast":
					mcastSet = true
				}
			})
			allCombos := []struct {
				protocol  string
				network   string
				mosi      bool
				multicast bool
			}{
				{system.ProtoTSSnoop, system.NetButterfly, false, false},
				{system.ProtoTSSnoop, system.NetTorus, false, false},
				{system.ProtoTSSnoop, system.NetButterfly, true, false},
				{system.ProtoTSSnoop, system.NetTorus, true, false},
				{system.ProtoTSSnoop, system.NetButterfly, false, true},
				{system.ProtoTSSnoop, system.NetTorus, true, true},
				{system.ProtoDirClassic, system.NetButterfly, false, false},
				{system.ProtoDirClassic, system.NetTorus, false, false},
				{system.ProtoDirOpt, system.NetButterfly, false, false},
				{system.ProtoDirOpt, system.NetTorus, false, false},
			}
			combos := allCombos[:0]
			for _, c := range allCombos {
				if (s.Protocol == "all" || c.protocol == s.Protocol) && (s.Network == "both" || c.network == s.Network) &&
					(!mosiSet || c.mosi == s.MOSI) && (!mcastSet || c.multicast == s.Multicast) {
					combos = append(combos, c)
				}
			}
			if len(combos) == 0 {
				return fmt.Errorf("no combinations match -protocol %s -network %s", s.Protocol, s.Network)
			}
			// Every stress run builds its own system, so the matrix fans out
			// across the worker pool; the first failure (in matrix order)
			// wins. Each job starts from the parsed spec — -nodes, -slack,
			// -tokens, and the other machine knobs apply to every combo —
			// with the matrix supplying the protocol/network/MOSI/multicast
			// coordinates and the seed.
			type job struct {
				name string
				run  func() error
			}
			var jobs []job
			for _, c := range combos {
				for seed := 1; seed <= s.Seeds; seed++ {
					cs := s
					cs.Protocol, cs.Network = c.protocol, c.network
					cs.MOSI, cs.Multicast = c.mosi, c.multicast
					cs.Seed = uint64(seed)
					jobs = append(jobs, job{
						name: fmt.Sprintf("%s/%s/mosi=%v/mcast=%v/seed=%d", c.protocol, c.network, c.mosi, c.multicast, seed),
						run:  func() error { return stress(cs, *ops, *blocks) },
					})
				}
			}
			for _, err := range parallel.Stream(ctx, s.Workers, len(jobs), func(i int) (struct{}, error) {
				if err := jobs[i].run(); err != nil {
					return struct{}{}, fmt.Errorf("%s: %w", jobs[i].name, err)
				}
				return struct{}{}, nil
			}) {
				if err != nil {
					return fmt.Errorf("FAIL %w", err)
				}
			}
			fmt.Fprintf(stdout, "check: %d stress runs passed (%d combos x %d seeds, %d ops/cpu, %d hot blocks)\n",
				len(jobs), len(combos), s.Seeds, *ops, *blocks)
			return nil
		}
	},
}

// stress drives one random access mix through a machine built from the
// spec and verifies quiescence afterwards.
func stress(cs spec.Spec, ops, blocks int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	gen := workload.Uniform(1024, 0.5, 10, cs.Nodes)
	cfg, buildErr := cs.ConfigFor(gen)
	if buildErr != nil {
		return buildErr
	}
	s, buildErr := system.Build(cfg, gen)
	if buildErr != nil {
		return buildErr
	}

	rng := sim.NewRand(cs.Seed * 7919)
	remaining := make([]int, cfg.Nodes)
	for i := range remaining {
		remaining[i] = ops
	}
	left := cfg.Nodes * ops
	var issue func(nd int)
	issue = func(nd int) {
		if remaining[nd] == 0 {
			return
		}
		remaining[nd]--
		b := coherence.Block(rng.Intn(blocks))
		op := coherence.Load
		if rng.Bool(0.5) {
			op = coherence.Store
		}
		s.Proto.Access(nd, op, b, func(coherence.AccessResult) {
			left--
			issue(nd)
		})
	}
	for nd := 0; nd < cfg.Nodes; nd++ {
		issue(nd)
	}
	s.K.RunWhile(func() bool { return left > 0 })
	s.K.RunUntil(s.K.Now() + 5*sim.Microsecond) // drain writebacks
	if s.Proto.Pending() != 0 {
		return fmt.Errorf("%d accesses still pending after drain", s.Proto.Pending())
	}
	return verifyQuiescence(s, blocks, cs.MOSI)
}

// verifyQuiescence checks SWMR and controller agreement once traffic has
// drained.
func verifyQuiescence(s *system.System, blocks int, mosi bool) error {
	for b := coherence.Block(0); b < coherence.Block(blocks); b++ {
		var mCount, oCount, sCount int
		dirty := -1
		for nd := 0; nd < s.Cfg.Nodes; nd++ {
			var st cache.State
			switch p := s.Proto.(type) {
			case *tssnoop.Protocol:
				st = p.CacheState(nd, b)
			case *directory.Protocol:
				st = p.CacheState(nd, b)
			}
			switch st {
			case cache.Modified:
				mCount++
				dirty = nd
			case cache.Owned:
				oCount++
				dirty = nd
			case cache.Shared:
				sCount++
			}
		}
		if mCount+oCount > 1 {
			return fmt.Errorf("block %d: %d dirty copies", b, mCount+oCount)
		}
		if mCount == 1 && sCount+oCount > 0 {
			return fmt.Errorf("block %d: M coexists with %d S / %d O", b, sCount, oCount)
		}
		if !mosi && oCount > 0 {
			return fmt.Errorf("block %d: Owned copy under MSI", b)
		}
		if p, ok := s.Proto.(*tssnoop.Protocol); ok {
			owner := p.MemOwner(b)
			if mCount+oCount == 1 && owner != dirty {
				return fmt.Errorf("block %d: dirty at %d, memory owner %d", b, dirty, owner)
			}
			if mCount+oCount == 0 && owner != -1 {
				return fmt.Errorf("block %d: clean but memory owner %d", b, owner)
			}
		}
		if p, ok := s.Proto.(*directory.Protocol); ok {
			st, owner, _ := p.DirectoryState(b)
			if mCount == 1 && (st != "E" || owner != dirty) {
				return fmt.Errorf("block %d: M at %d but directory %s/%d", b, dirty, st, owner)
			}
			if mCount == 0 && st == "E" {
				return fmt.Errorf("block %d: directory E/%d with no M copy", b, owner)
			}
		}
	}
	return nil
}
