package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"tsnoop/internal/harness"
	"tsnoop/internal/spec"
)

// sweepCmd runs the sensitivity sweeps and design ablations. The
// measured sweeps (nodes, blocksize, ablation) stream their points from
// the concurrent engine — -progress and -json follow the grid
// subcommand's conventions — and the envelope sweep is the Section 5
// analytic bound (no simulation). Each point honors the spec's seed
// fan-out: -seeds N reports the minimum runtime over N perturbed
// copies (the default is one unperturbed run).
var sweepCmd = &command{
	name:      "sweep",
	summary:   "sensitivity sweeps and design ablations",
	simulates: true,
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Benchmark = "barnes"
		s.QuotaScale = 0.5
		s.Bind(fs)
		kind := fs.String("sweep", "envelope", strings.Join(harness.SweepKinds(), ", ")+", or envelope")
		progress := fs.Bool("progress", false, "report per-point completion on stderr")
		jsonOut := fs.Bool("json", false, "stream sweep points as JSON lines instead of rendering")
		cacheDir := fs.String("cache", "", "serve and record points through this content-addressed store directory")
		cpuprof := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof := fs.String("memprofile", "", "write a pprof heap profile to this file")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			if *kind == "envelope" {
				out, err := harness.RenderEnvelope()
				if err != nil {
					return err
				}
				_, err = io.WriteString(stdout, out)
				return err
			}
			if err := s.Validate(); err != nil {
				return err
			}
			stopProf, err := startProfiles(*cpuprof, *memprof)
			if err != nil {
				return err
			}
			defer stopProf()
			e := harness.FromSpec(s)
			sw, err := e.NewSweep(*kind, s.Benchmark, s.Network)
			if err != nil {
				return err
			}
			stream := e.StreamPoints(ctx, sw.Points)
			if *cacheDir != "" {
				sv, err := newCacheService(ctx, *cacheDir, s.Workers)
				if err != nil {
					return err
				}
				stream = sv.StreamPoints(ctx, sw.Points)
			}
			pts := make([]harness.SweepPoint, 0, len(sw.Points))
			meter := newProgressMeter()
			for pt, err := range stream {
				if err != nil {
					return err
				}
				pts = append(pts, pt)
				if *progress {
					fmt.Fprintf(stderr, "sweep %s: %d/%d %s/%s done%s\n", *kind, len(pts), len(sw.Points), pt.Label, pt.Protocol, meter.note(len(pts), len(sw.Points)))
				}
				if *jsonOut {
					line, err := json.Marshal(pt)
					if err != nil {
						return err
					}
					fmt.Fprintf(stdout, "%s\n", line)
				}
			}
			if *jsonOut {
				return nil
			}
			out, err := sw.Render(pts)
			if err != nil {
				return err
			}
			_, err = io.WriteString(stdout, out)
			return err
		}
	},
}
