package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/spec"
)

// submitCmd is the client for a tsnoop serve instance: it renders the
// parsed Spec flag set as JSON, posts it, and streams the server's
// response to stdout. The cache disposition (hit / join / miss) is
// reported on stderr, so scripts can assert that a repeated submission
// was served from the store.
//
//	tsnoop submit -addr http://localhost:8177 -benchmark OLTP -seeds 3
//	tsnoop submit -mode grid -network torus -benchmark ""      # all five
//	tsnoop submit -mode sweep -sweep ablation -benchmark barnes
//	tsnoop submit -retry 5 -benchmark barnes    # ride out 429s and restarts
//
// -retry N re-submits up to N times on connection errors and on 429 /
// 503 responses (a loaded or draining server), with exponential backoff
// plus jitter, honoring a Retry-After header when the server sends one.
// Retries happen only before the stream starts, so output is never
// duplicated.
var submitCmd = &command{
	name:      "submit",
	summary:   "submit an experiment to a tsnoop server",
	simulates: true, // binds the full Spec flag set (the server simulates)
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Bind(fs)
		addr := fs.String("addr", "http://localhost:8177", "server base URL")
		mode := fs.String("mode", "run", "what to submit: run (one Run JSON), grid, or sweep (NDJSON streams)")
		sweepKind := fs.String("sweep", "ablation", "sweep kind for -mode sweep")
		timeout := fs.Duration("timeout", 0, "request timeout (0 = none)")
		retry := fs.Int("retry", 0, "re-submissions on connection errors, 429, and 503 (0 = fail fast)")
		verbose := fs.Bool("verbose", false, "after the response, print server-side phase spans (queue wait, simulate, store write, forward hops) from the job and trace endpoints")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			var path string
			var body []byte
			switch *mode {
			case "run":
				if err := s.Validate(); err != nil {
					return err
				}
				path, body = "/v1/runs", s.JSON()
			case "grid":
				path, body = "/v1/grids", s.JSON()
			case "sweep":
				if err := s.Validate(); err != nil {
					return err
				}
				path = "/v1/sweeps"
				var err error
				body, err = json.Marshal(struct {
					Sweep string          `json:"sweep"`
					Spec  json.RawMessage `json:"spec"`
				}{*sweepKind, s.JSON()})
				if err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown -mode %q (have run, grid, sweep)", *mode)
			}
			if *timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, *timeout)
				defer cancel()
			}
			resp, err := submitWithRetry(ctx, stderr,
				strings.TrimRight(*addr, "/")+path, body, *retry)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			reportDisposition(stderr, resp)
			if err := streamResponse(stdout, resp.Body); err != nil {
				return err
			}
			if *verbose {
				reportServerSpans(ctx, stderr, strings.TrimRight(*addr, "/"), resp)
			}
			return nil
		}
	},
}

// submitClient has explicit timeouts everywhere the default client has
// none: a quick dial bound (so a dead server fails fast) and a
// response-header bound generous enough to cover a cold simulation —
// the server sends no headers until the run completes.
var submitClient = cluster.NewHTTPClient(cluster.SubmitTimeouts())

// retryableStatus reports whether a status is worth re-submitting: 429
// is the server's load-shedding gate, 503 a draining or restarting
// node. Anything else (including 500) reflects the request, not the
// moment.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// submitWithRetry posts body to url, re-submitting up to retries times
// on connection errors and retryable statuses. Backoff doubles from
// half a second (capped at 30s) with jitter so a restarted server is
// not met by synchronized clients; a Retry-After header (seconds or
// HTTP-date) overrides the computed delay. On success the response is
// returned with its body unread, status 200 guaranteed.
func submitWithRetry(ctx context.Context, stderr io.Writer, url string, body []byte, retries int) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := submitClient.Do(req)
		var note string
		var wait time.Duration
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, fmt.Errorf("submit: %w", err)
			}
			note = err.Error()
		case resp.StatusCode == http.StatusOK:
			return resp, nil
		default:
			note = fmt.Sprintf("%s: %s", resp.Status, readServerError(resp.Body))
			wait = retryAfter(resp.Header.Get("Retry-After"))
			retryable := retryableStatus(resp.StatusCode)
			resp.Body.Close()
			if !retryable {
				return nil, fmt.Errorf("submit: %s", note)
			}
		}
		if attempt >= retries {
			return nil, fmt.Errorf("submit: %s", note)
		}
		if wait <= 0 {
			// 500ms, 1s, 2s, ... capped at 30s, plus up to 50% jitter.
			wait = min(500*time.Millisecond<<attempt, 30*time.Second)
			wait += rand.N(wait / 2)
		}
		fmt.Fprintf(stderr, "submit: %s; retrying in %s (%d left)\n",
			note, wait.Round(time.Millisecond), retries-attempt)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, fmt.Errorf("submit: %w", ctx.Err())
		}
	}
}

// retryAfter parses a Retry-After header: delay seconds or an HTTP
// date. Zero means absent or unparseable.
func retryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// reportDisposition explains how the server answered a /v1/runs request.
func reportDisposition(stderr io.Writer, resp *http.Response) {
	disp := resp.Header.Get("X-Tsnoop-Cache")
	if disp == "" {
		return // streaming endpoints answer per cell, not per request
	}
	line := "cache " + disp
	switch disp {
	case "join":
		line = "joined in-flight job"
	case "miss":
		line = "cache miss (simulating)"
	case "hit":
		line = "cache hit (served from the store)"
	}
	if job := resp.Header.Get("X-Tsnoop-Job"); job != "" {
		line += " [" + job + "]"
	}
	if key := resp.Header.Get("X-Tsnoop-Key"); len(key) >= 12 {
		line += " key " + key[:12]
	}
	fmt.Fprintf(stderr, "submit: %s\n", line)
}

// reportServerSpans prints the server's wall-clock view of the request
// after the stream completes: the job's phase timings from
// GET /v1/jobs/{id} (when the response named a job) and the request
// trace from GET /v1/traces/{id}, including the owning peer's spans
// when the run was forwarded inside a cluster. Everything here is
// best-effort decoration of a response already delivered — a server
// too old (or too busy) to answer simply prints less.
func reportServerSpans(ctx context.Context, stderr io.Writer, base string, resp *http.Response) {
	if jobID := resp.Header.Get("X-Tsnoop-Job"); jobID != "" {
		var job struct {
			State string `json:"state"`
			Spans struct {
				QueueWaitUS  int64 `json:"queue_wait_us"`
				SimulateUS   int64 `json:"simulate_us"`
				StoreWriteUS int64 `json:"store_write_us"`
			} `json:"spans"`
		}
		if getJSON(ctx, base+"/v1/jobs/"+jobID, &job) == nil {
			fmt.Fprintf(stderr, "submit: %s %s: queue_wait %dus, simulate %dus, store_write %dus\n",
				jobID, job.State, job.Spans.QueueWaitUS, job.Spans.SimulateUS, job.Spans.StoreWriteUS)
		}
	}
	traceID := resp.Header.Get(cluster.TraceHeader)
	if traceID == "" {
		return
	}
	var tr struct {
		Node       string       `json:"node"`
		DurUS      int64        `json:"dur_us"`
		Spans      []submitSpan `json:"spans"`
		RemotePeer string       `json:"remote_peer"`
		Remote     []submitSpan `json:"remote_spans"`
	}
	if getJSON(ctx, base+"/v1/traces/"+traceID, &tr) != nil {
		return
	}
	where := tr.Node
	if where == "" {
		where = "server"
	}
	fmt.Fprintf(stderr, "submit: trace %s on %s (%dus total)\n", traceID, where, tr.DurUS)
	printSpans(stderr, "  ", tr.Spans)
	if tr.RemotePeer != "" {
		fmt.Fprintf(stderr, "submit: forwarded to %s\n", tr.RemotePeer)
		printSpans(stderr, "    ", tr.Remote)
	}
}

// submitSpan mirrors the server's TraceSpan shape.
type submitSpan struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Note    string `json:"note"`
}

func printSpans(w io.Writer, indent string, spans []submitSpan) {
	for _, s := range spans {
		line := fmt.Sprintf("%s%-12s %8dus", indent, s.Name, s.DurUS)
		if s.Note != "" {
			line += "  (" + s.Note + ")"
		}
		fmt.Fprintln(w, line)
	}
}

// getJSON fetches one JSON document with the submit client.
func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := submitClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

// readServerError extracts the one-object JSON error a tsnoop server
// returns with non-200 statuses.
func readServerError(body io.Reader) string {
	data, err := io.ReadAll(io.LimitReader(body, 1<<16))
	if err != nil {
		return err.Error()
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// streamResponse copies response lines through as they arrive. A
// mid-stream {"error": ...} line (the NDJSON failure convention — the
// 200 status has already been sent by then) becomes the exit error.
func streamResponse(stdout io.Writer, body io.Reader) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &e) == nil && e.Error != "" {
			return fmt.Errorf("submit: server: %s", e.Error)
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", line); err != nil {
			return err
		}
	}
	return sc.Err()
}
