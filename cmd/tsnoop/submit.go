package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"

	"tsnoop/internal/spec"
)

// submitCmd is the client for a tsnoop serve instance: it renders the
// parsed Spec flag set as JSON, posts it, and streams the server's
// response to stdout. The cache disposition (hit / join / miss) is
// reported on stderr, so scripts can assert that a repeated submission
// was served from the store.
//
//	tsnoop submit -addr http://localhost:8177 -benchmark OLTP -seeds 3
//	tsnoop submit -mode grid -network torus -benchmark ""      # all five
//	tsnoop submit -mode sweep -sweep ablation -benchmark barnes
var submitCmd = &command{
	name:      "submit",
	summary:   "submit an experiment to a tsnoop server",
	simulates: true, // binds the full Spec flag set (the server simulates)
	setup: func(fs *flag.FlagSet) execFn {
		s := spec.Default()
		s.Bind(fs)
		addr := fs.String("addr", "http://localhost:8177", "server base URL")
		mode := fs.String("mode", "run", "what to submit: run (one Run JSON), grid, or sweep (NDJSON streams)")
		sweepKind := fs.String("sweep", "ablation", "sweep kind for -mode sweep")
		timeout := fs.Duration("timeout", 0, "request timeout (0 = none)")
		return func(ctx context.Context, stdout, stderr io.Writer) error {
			var path string
			var body []byte
			switch *mode {
			case "run":
				if err := s.Validate(); err != nil {
					return err
				}
				path, body = "/v1/runs", s.JSON()
			case "grid":
				path, body = "/v1/grids", s.JSON()
			case "sweep":
				if err := s.Validate(); err != nil {
					return err
				}
				path = "/v1/sweeps"
				var err error
				body, err = json.Marshal(struct {
					Sweep string          `json:"sweep"`
					Spec  json.RawMessage `json:"spec"`
				}{*sweepKind, s.JSON()})
				if err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown -mode %q (have run, grid, sweep)", *mode)
			}
			if *timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, *timeout)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				strings.TrimRight(*addr, "/")+path, bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return fmt.Errorf("submit: %w", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("submit: %s: %s", resp.Status, readServerError(resp.Body))
			}
			reportDisposition(stderr, resp)
			return streamResponse(stdout, resp.Body)
		}
	},
}

// reportDisposition explains how the server answered a /v1/runs request.
func reportDisposition(stderr io.Writer, resp *http.Response) {
	disp := resp.Header.Get("X-Tsnoop-Cache")
	if disp == "" {
		return // streaming endpoints answer per cell, not per request
	}
	line := "cache " + disp
	switch disp {
	case "join":
		line = "joined in-flight job"
	case "miss":
		line = "cache miss (simulating)"
	case "hit":
		line = "cache hit (served from the store)"
	}
	if job := resp.Header.Get("X-Tsnoop-Job"); job != "" {
		line += " [" + job + "]"
	}
	if key := resp.Header.Get("X-Tsnoop-Key"); len(key) >= 12 {
		line += " key " + key[:12]
	}
	fmt.Fprintf(stderr, "submit: %s\n", line)
}

// readServerError extracts the one-object JSON error a tsnoop server
// returns with non-200 statuses.
func readServerError(body io.Reader) string {
	data, err := io.ReadAll(io.LimitReader(body, 1<<16))
	if err != nil {
		return err.Error()
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// streamResponse copies response lines through as they arrive. A
// mid-stream {"error": ...} line (the NDJSON failure convention — the
// 200 status has already been sent by then) becomes the exit error.
func streamResponse(stdout io.Writer, body io.Reader) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &e) == nil && e.Error != "" {
			return fmt.Errorf("submit: server: %s", e.Error)
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", line); err != nil {
			return err
		}
	}
	return sc.Err()
}
