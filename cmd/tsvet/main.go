// Command tsvet is the repo's static-analysis gate: it runs the
// standard `go vet` suite plus the four custom analyzers that enforce
// the simulator's load-bearing invariants —
//
//	allocfree      zero-allocation hot-path scheduling
//	pooldiscipline sim.Pool Get/Put balance and pointer ownership
//	determinism    byte-identical reproducibility of the simulation core
//	canonicalspec  spec.Spec canonical-JSON key stability
//
// Usage:
//
//	go run ./cmd/tsvet ./...
//
// tsvet exits non-zero on any diagnostic from either suite, so CI needs
// exactly one static-analysis job. -novet skips the go vet half (useful
// when iterating on one analyzer).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"tsnoop/internal/analysis"
	"tsnoop/internal/analysis/allocfree"
	"tsnoop/internal/analysis/canonicalspec"
	"tsnoop/internal/analysis/determinism"
	"tsnoop/internal/analysis/pooldiscipline"
)

// Analyzers is the tsvet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	allocfree.Analyzer,
	pooldiscipline.Analyzer,
	determinism.Analyzer,
	canonicalspec.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the standard `go vet` pass, run only the tsvet analyzers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tsvet [-novet] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintln(os.Stderr, "tsvet: go vet:", err)
				os.Exit(2)
			}
			failed = true
		}
	}

	diags, loader, err := analysis.Run("", Analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsvet:", err)
		os.Exit(2)
	}
	analysis.Print(os.Stderr, loader, diags)
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}
