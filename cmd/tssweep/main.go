// Command tssweep runs the sensitivity sweeps and design ablations.
//
//	tssweep -sweep nodes                   # 4/16/64-node butterfly scaling
//	tssweep -sweep blocksize               # 64B vs 128B blocks
//	tssweep -sweep envelope                # Section 5 analytic bandwidth bounds
//	tssweep -sweep ablation -network torus # TS-Snoop design-knob ablations
package main

import (
	"flag"
	"fmt"
	"log"

	"tsnoop/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tssweep: ")
	var (
		sweep     = flag.String("sweep", "envelope", "nodes, blocksize, envelope, or ablation")
		benchmark = flag.String("benchmark", "barnes", "workload for measured sweeps")
		network   = flag.String("network", "butterfly", "network for the ablation sweep")
		scale     = flag.Float64("scale", 0.5, "workload quota scale factor")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	e := harness.Default()
	e.Seeds = 1
	e.QuotaScale = *scale
	e.Workers = *workers

	var out string
	var err error
	switch *sweep {
	case "nodes":
		out, err = e.NodesSweep(*benchmark)
	case "blocksize":
		out, err = e.BlockSizeSweep(*benchmark)
	case "envelope":
		out, err = harness.RenderEnvelope()
	case "ablation":
		out, err = e.AblationReport(*benchmark, *network)
	default:
		log.Fatalf("unknown sweep %q", *sweep)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
