// Command tssweep runs the sensitivity sweeps and design ablations.
//
//	tssweep -sweep nodes                   # 4/16/64-node butterfly scaling
//	tssweep -sweep blocksize               # 64B vs 128B blocks
//	tssweep -sweep envelope                # Section 5 analytic bandwidth bounds
//	tssweep -sweep ablation -network torus # TS-Snoop design-knob ablations
//
// -cpuprofile/-memprofile write pprof profiles of the sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"tsnoop/internal/core"
	"tsnoop/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tssweep: ")
	var (
		sweep     = flag.String("sweep", "envelope", "nodes, blocksize, envelope, or ablation")
		benchmark = flag.String("benchmark", "barnes", "workload for measured sweeps")
		network   = flag.String("network", "butterfly", "network for the ablation sweep")
		scale     = flag.Float64("scale", 0.5, "workload quota scale factor")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if err := core.CheckBenchmark(*benchmark); err != nil {
		log.Fatal(err)
	}
	if err := core.CheckNetwork(*network); err != nil {
		log.Fatal(err)
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}

	e := harness.Default()
	e.Seeds = 1
	e.QuotaScale = *scale
	e.Workers = *workers

	var out string
	var err error
	switch *sweep {
	case "nodes":
		out, err = e.NodesSweep(*benchmark)
	case "blocksize":
		out, err = e.BlockSizeSweep(*benchmark)
	case "envelope":
		out, err = harness.RenderEnvelope()
	case "ablation":
		out, err = e.AblationReport(*benchmark, *network)
	default:
		log.Fatalf("unknown sweep %q (have nodes, blocksize, envelope, ablation)", *sweep)
	}
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
