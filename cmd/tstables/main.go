// Command tstables regenerates the paper's tables.
//
//	tstables -table 2   # unloaded latencies (Table 2), analytic vs measured
//	tstables -table 3   # benchmark characteristics (Table 3)
package main

import (
	"flag"
	"fmt"
	"log"

	"tsnoop/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tstables: ")
	var (
		table   = flag.Int("table", 2, "table number to regenerate (2 or 3)")
		scale   = flag.Float64("scale", 1.0, "workload quota scale factor")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	switch *table {
	case 2:
		out, err := harness.RenderTable2Workers(*workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case 3:
		e := harness.Default()
		e.QuotaScale = *scale
		e.Workers = *workers
		out, err := e.RenderTable3()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	default:
		log.Fatalf("unknown table %d (have 2 and 3)", *table)
	}
}
