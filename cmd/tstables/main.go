// Command tstables regenerates the paper's tables.
//
//	tstables -table 2                    # unloaded latencies (Table 2), analytic vs measured
//	tstables -table 2 -network torus     # one network's rows only
//	tstables -table 3                    # benchmark characteristics (Table 3)
package main

import (
	"flag"
	"fmt"
	"log"

	"tsnoop/internal/core"
	"tsnoop/internal/harness"
	"tsnoop/internal/system"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tstables: ")
	var (
		table   = flag.Int("table", 2, "table number to regenerate (2 or 3)")
		network = flag.String("network", "both", "butterfly, torus, or both (table 2)")
		scale   = flag.Float64("scale", 1.0, "workload quota scale factor")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()
	nets := []string{system.NetButterfly, system.NetTorus}
	if *network != "both" {
		if err := core.CheckNetwork(*network); err != nil {
			log.Fatal(err)
		}
		nets = []string{*network}
	}

	switch *table {
	case 2:
		out, err := harness.RenderTable2Networks(*workers, nets...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case 3:
		if *network != "both" {
			log.Fatal("table 3 does not take -network (its workload characterization uses a fixed configuration)")
		}
		e := harness.Default()
		e.QuotaScale = *scale
		e.Workers = *workers
		out, err := e.RenderTable3()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	default:
		log.Fatalf("unknown table %d (have 2 and 3)", *table)
	}
}
