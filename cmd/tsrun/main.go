// Command tsrun executes a single benchmark x protocol x network
// simulation and prints its statistics. With -seeds N it runs N perturbed
// copies concurrently (bounded by -workers) and reports the
// minimum-runtime run, the paper's reporting rule.
//
// Usage:
//
//	tsrun -benchmark OLTP -protocol TS-Snoop -network butterfly
//	tsrun -benchmark DSS -protocol DirClassic -network torus -quota 5000
//	tsrun -benchmark OLTP -seeds 5 -perturb-ns 3 -workers 0
//	tsrun -benchmark trace:oltp.tstrace -protocol DirOpt
//	tsrun -benchmark OLTP -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"tsnoop/internal/core"
	"tsnoop/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsrun: ")
	var (
		benchmark = flag.String("benchmark", "OLTP", "workload: "+strings.Join(core.Benchmarks(), ", ")+", or trace:<path>")
		protocol  = flag.String("protocol", core.TSSnoop, "protocol: "+strings.Join(core.Protocols(), ", "))
		network   = flag.String("network", core.Butterfly, "network: "+strings.Join(core.Networks(), ", "))
		nodes     = flag.Int("nodes", 16, "processor count")
		quota     = flag.Int("quota", 0, "measured memory operations per processor (0 = benchmark default)")
		warmup    = flag.Int("warmup", 0, "warm-up memory operations per processor (0 = default)")
		seed      = flag.Uint64("seed", 1, "workload random seed")
		seeds     = flag.Int("seeds", 1, "perturbed runs (seed, seed+1, ...); the minimum runtime is reported")
		workers   = flag.Int("workers", 0, "concurrent runs (0 = one per CPU, 1 = serial)")
		perturb   = flag.Int64("perturb-ns", 0, "max response perturbation in ns")
		early     = flag.Bool("early-processing", false, "enable optimization 2 (TS-Snoop)")
		noPref    = flag.Bool("no-prefetch", false, "disable optimization 1 (TS-Snoop)")
		slack     = flag.Int("slack", 1, "initial slack S (TS-Snoop)")
		mosi      = flag.Bool("mosi", false, "use the Owned state (MOSI extension, TS-Snoop)")
		multicast = flag.Bool("multicast", false, "multicast snooping for GETS (TS-Snoop)")
		predSize  = flag.Int("predictor", 0, "multicast predictor entries (0 unbounded, <0 disabled)")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	for _, check := range []error{
		core.CheckBenchmark(*benchmark), core.CheckProtocol(*protocol), core.CheckNetwork(*network),
	} {
		if check != nil {
			log.Fatal(check)
		}
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}

	run, err := core.RunBest(*benchmark, *protocol, *network, *seeds, *workers, func(c *core.Config) {
		c.Nodes = *nodes
		if *quota > 0 {
			c.MeasurePerCPU = *quota
		}
		if *warmup > 0 {
			c.WarmupPerCPU = *warmup
		}
		c.Seed = *seed
		c.PerturbMax = sim.Duration(*perturb) * sim.Nanosecond
		c.EarlyProcessing = *early
		c.Prefetch = !*noPref
		c.InitialSlack = *slack
		c.UseOwnedState = *mosi
		c.Multicast = *multicast
		c.PredictorSize = *predSize
	})
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s / %s / %s (%d nodes)\n", *benchmark, *protocol, *network, *nodes)
	if *seeds > 1 {
		fmt.Printf("best of %d runs (seeds %d..%d)\n", *seeds, *seed, *seed+uint64(*seeds-1))
	}
	fmt.Print(run.Summary())
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
