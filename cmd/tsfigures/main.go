// Command tsfigures regenerates the paper's figures.
//
//	tsfigures -figure 3 -network butterfly   # normalized runtimes
//	tsfigures -figure 4 -network both        # normalized link traffic
package main

import (
	"flag"
	"fmt"
	"log"

	"tsnoop/internal/core"
	"tsnoop/internal/harness"
	"tsnoop/internal/sim"
	"tsnoop/internal/system"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsfigures: ")
	var (
		figure  = flag.Int("figure", 3, "figure number (3 = runtime, 4 = traffic)")
		network = flag.String("network", "both", "butterfly, torus, or both")
		seeds   = flag.Int("seeds", 3, "perturbed runs per cell (minimum reported)")
		scale   = flag.Float64("scale", 1.0, "workload quota scale factor")
		perturb = flag.Int64("perturb-ns", 3, "max response perturbation in ns")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	nets := []string{*network}
	if *network == "both" {
		nets = []string{system.NetButterfly, system.NetTorus}
	} else if err := core.CheckNetwork(*network); err != nil {
		log.Fatal(err)
	}
	e := harness.Default()
	e.Seeds = *seeds
	e.QuotaScale = *scale
	e.PerturbMax = sim.Duration(*perturb) * sim.Nanosecond
	e.Workers = *workers

	for _, net := range nets {
		grid, err := e.RunGrid(net)
		if err != nil {
			log.Fatal(err)
		}
		switch *figure {
		case 3:
			fmt.Println(grid.Figure3())
			lo, hi := grid.SpeedupRange(system.ProtoDirClassic)
			lo2, hi2 := grid.SpeedupRange(system.ProtoDirOpt)
			fmt.Printf("TS-Snoop runs %.0f-%.0f%% faster than DirClassic and %.0f-%.0f%% faster than DirOpt.\n\n",
				lo*100, hi*100, lo2*100, hi2*100)
		case 4:
			fmt.Println(grid.Figure4())
			lo, hi := grid.ExtraTrafficRange(system.ProtoDirClassic)
			lo2, hi2 := grid.ExtraTrafficRange(system.ProtoDirOpt)
			fmt.Printf("TS-Snoop uses %.0f-%.0f%% more link bandwidth than DirClassic and %.0f-%.0f%% more than DirOpt.\n\n",
				lo*100, hi*100, lo2*100, hi2*100)
		default:
			log.Fatalf("unknown figure %d (have 3 and 4)", *figure)
		}
	}
}
