// Command tscheck is a randomized stress checker for the coherence
// protocols: it drives concurrent random access mixes through every
// protocol x network combination, with the runtime coherence oracle armed
// and response perturbation enabled, then verifies quiescence invariants
// (single-writer/multiple-reader, memory/directory agreement with cache
// states). Any violation aborts with a diagnostic.
//
// Runs fan out across -workers concurrent simulations (0 = one per CPU).
// -protocol and -network restrict the combination matrix.
//
//	tscheck -seeds 20 -ops 200
//	tscheck -protocol TS-Snoop -network torus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/core"
	"tsnoop/internal/parallel"
	"tsnoop/internal/protocol/directory"
	"tsnoop/internal/protocol/tssnoop"
	"tsnoop/internal/sim"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tscheck: ")
	var (
		seeds    = flag.Int("seeds", 10, "random seeds per combination")
		ops      = flag.Int("ops", 150, "accesses per processor per run")
		blocks   = flag.Int("blocks", 8, "hot-block pool size (smaller = more contention)")
		perturb  = flag.Int64("perturb-ns", 3, "max response perturbation in ns")
		workers  = flag.Int("workers", 0, "concurrent stress runs (0 = one per CPU, 1 = serial)")
		protocol = flag.String("protocol", "all", "restrict to one protocol (all = every protocol)")
		network  = flag.String("network", "both", "restrict to one network (both = butterfly and torus)")
	)
	flag.Parse()
	if *protocol != "all" {
		if err := core.CheckProtocol(*protocol); err != nil {
			log.Fatal(err)
		}
	}
	if *network != "both" {
		if err := core.CheckNetwork(*network); err != nil {
			log.Fatal(err)
		}
	}

	allCombos := []struct {
		protocol  string
		network   string
		mosi      bool
		multicast bool
	}{
		{system.ProtoTSSnoop, system.NetButterfly, false, false},
		{system.ProtoTSSnoop, system.NetTorus, false, false},
		{system.ProtoTSSnoop, system.NetButterfly, true, false},
		{system.ProtoTSSnoop, system.NetTorus, true, false},
		{system.ProtoTSSnoop, system.NetButterfly, false, true},
		{system.ProtoTSSnoop, system.NetTorus, true, true},
		{system.ProtoDirClassic, system.NetButterfly, false, false},
		{system.ProtoDirClassic, system.NetTorus, false, false},
		{system.ProtoDirOpt, system.NetButterfly, false, false},
		{system.ProtoDirOpt, system.NetTorus, false, false},
	}
	combos := allCombos[:0]
	for _, c := range allCombos {
		if (*protocol == "all" || c.protocol == *protocol) && (*network == "both" || c.network == *network) {
			combos = append(combos, c)
		}
	}
	if len(combos) == 0 {
		log.Fatalf("no combinations match -protocol %s -network %s", *protocol, *network)
	}
	// Every stress run builds its own system, so the matrix fans out
	// across the worker pool; the first failure (in matrix order) wins.
	type job struct {
		name string
		run  func() error
	}
	var jobs []job
	for _, c := range combos {
		for seed := 1; seed <= *seeds; seed++ {
			jobs = append(jobs, job{
				name: fmt.Sprintf("%s/%s/mosi=%v/mcast=%v/seed=%d", c.protocol, c.network, c.mosi, c.multicast, seed),
				run: func() error {
					return stress(c.protocol, c.network, c.mosi, c.multicast, uint64(seed), *ops, *blocks, *perturb)
				},
			})
		}
	}
	if _, err := parallel.Map(*workers, len(jobs), func(i int) (struct{}, error) {
		if err := jobs[i].run(); err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", jobs[i].name, err)
		}
		return struct{}{}, nil
	}); err != nil {
		log.Printf("FAIL %v", err)
		os.Exit(1)
	}
	fmt.Printf("tscheck: %d stress runs passed (%d combos x %d seeds, %d ops/cpu, %d hot blocks)\n",
		len(jobs), len(combos), *seeds, *ops, *blocks)
}

func stress(protocol, network string, mosi, multicast bool, seed uint64, ops, blocks int, perturbNS int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg := system.DefaultConfig(protocol, network)
	cfg.Seed = seed
	cfg.UseOwnedState = mosi
	cfg.Multicast = multicast
	cfg.PredictorSize = 4 // small: exercise the audit-retry path
	cfg.PerturbMax = sim.Duration(perturbNS) * sim.Nanosecond
	s, buildErr := system.Build(cfg, workload.Uniform(1024, 0.5, 10, cfg.Nodes))
	if buildErr != nil {
		return buildErr
	}

	rng := sim.NewRand(seed * 7919)
	remaining := make([]int, cfg.Nodes)
	for i := range remaining {
		remaining[i] = ops
	}
	left := cfg.Nodes * ops
	var issue func(nd int)
	issue = func(nd int) {
		if remaining[nd] == 0 {
			return
		}
		remaining[nd]--
		b := coherence.Block(rng.Intn(blocks))
		op := coherence.Load
		if rng.Bool(0.5) {
			op = coherence.Store
		}
		s.Proto.Access(nd, op, b, func(coherence.AccessResult) {
			left--
			issue(nd)
		})
	}
	for nd := 0; nd < cfg.Nodes; nd++ {
		issue(nd)
	}
	s.K.RunWhile(func() bool { return left > 0 })
	s.K.RunUntil(s.K.Now() + 5*sim.Microsecond) // drain writebacks
	if s.Proto.Pending() != 0 {
		return fmt.Errorf("%d accesses still pending after drain", s.Proto.Pending())
	}
	return verifyQuiescence(s, blocks, mosi)
}

// verifyQuiescence checks SWMR and controller agreement once traffic has
// drained.
func verifyQuiescence(s *system.System, blocks int, mosi bool) error {
	for b := coherence.Block(0); b < coherence.Block(blocks); b++ {
		var mCount, oCount, sCount int
		dirty := -1
		for nd := 0; nd < s.Cfg.Nodes; nd++ {
			var st cache.State
			switch p := s.Proto.(type) {
			case *tssnoop.Protocol:
				st = p.CacheState(nd, b)
			case *directory.Protocol:
				st = p.CacheState(nd, b)
			}
			switch st {
			case cache.Modified:
				mCount++
				dirty = nd
			case cache.Owned:
				oCount++
				dirty = nd
			case cache.Shared:
				sCount++
			}
		}
		if mCount+oCount > 1 {
			return fmt.Errorf("block %d: %d dirty copies", b, mCount+oCount)
		}
		if mCount == 1 && sCount+oCount > 0 {
			return fmt.Errorf("block %d: M coexists with %d S / %d O", b, sCount, oCount)
		}
		if !mosi && oCount > 0 {
			return fmt.Errorf("block %d: Owned copy under MSI", b)
		}
		if p, ok := s.Proto.(*tssnoop.Protocol); ok {
			owner := p.MemOwner(b)
			if mCount+oCount == 1 && owner != dirty {
				return fmt.Errorf("block %d: dirty at %d, memory owner %d", b, dirty, owner)
			}
			if mCount+oCount == 0 && owner != -1 {
				return fmt.Errorf("block %d: clean but memory owner %d", b, owner)
			}
		}
		if p, ok := s.Proto.(*directory.Protocol); ok {
			st, owner, _ := p.DirectoryState(b)
			if mCount == 1 && (st != "E" || owner != dirty) {
				return fmt.Errorf("block %d: M at %d but directory %s/%d", b, dirty, st, owner)
			}
			if mCount == 0 && st == "E" {
				return fmt.Errorf("block %d: directory E/%d with no M copy", b, owner)
			}
		}
	}
	return nil
}
