// Command tstrace captures, inspects, transforms, and replays workload
// trace files (the internal/trace format). Traces turn the simulator
// into a scenario engine: record any benchmark's reference stream once,
// then replay it bit-exactly into any protocol and network, or rewrite
// it (fold CPUs, scale the footprint, cut a window, merge streams) to
// build scenarios no generator produces.
//
//	tstrace record -benchmark OLTP -o oltp.tstrace
//	tstrace record -benchmark DSS -o dss.tstrace -sim -protocol TS-Snoop
//	tstrace stat oltp.tstrace
//	tstrace transform -in oltp.tstrace -fold 8 -o oltp8.tstrace
//	tstrace replay -trace oltp8.tstrace -protocol DirOpt -network torus
//
// A trace file records its own warm-up and measured-phase quotas, so a
// replay reproduces the recorded run's statistics byte-identically
// (asserted by internal/trace/roundtrip_test.go). Replays also work
// anywhere a benchmark name does, via trace:<path> workload names:
//
//	tsrun -benchmark trace:oltp.tstrace -protocol DirOpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tsnoop/internal/coherence"
	"tsnoop/internal/core"
	"tsnoop/internal/sim"
	"tsnoop/internal/system"
	"tsnoop/internal/trace"
	"tsnoop/internal/workload"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tstrace <command> [flags]

commands:
  record     capture a workload's reference stream to a trace file
  replay     run a simulation driven by a trace file
  stat       summarize a trace file
  transform  rewrite a trace (fold/scale/window/merge)

run "tstrace <command> -h" for each command's flags
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tstrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "transform":
		transform(os.Args[2:])
	default:
		log.Printf("unknown command %q", os.Args[1])
		usage()
	}
}

// record captures a benchmark's per-CPU stream. By default it draws
// the stream directly from the generator (fast; identical to what a
// live run consumes). With -sim it instead runs a full simulation and
// tees the stream a real protocol observed (same bytes, plus a run
// summary).
func record(args []string) {
	fs := flag.NewFlagSet("tstrace record", flag.ExitOnError)
	var (
		benchmark = fs.String("benchmark", "OLTP", "workload: "+strings.Join(workload.ValidNames(), ", "))
		out       = fs.String("o", "", "output trace file (required)")
		cpus      = fs.Int("cpus", 16, "processor count to record for")
		seed      = fs.Uint64("seed", 1, "workload random seed")
		warmup    = fs.Int("warmup", -1, "warm-up accesses per processor (-1 = source default)")
		quota     = fs.Int("quota", 0, "measured accesses per processor (0 = source default)")
		useSim    = fs.Bool("sim", false, "record through a live simulation (Recorder tee) instead of drawing directly")
		protocol  = fs.String("protocol", core.TSSnoop, "protocol for -sim")
		network   = fs.String("network", core.Butterfly, "network for -sim")
		workers   = fs.Int("workers", 0, "encode workers (0 = one per CPU, 1 = serial)")
	)
	fs.Parse(args)
	if *out == "" {
		log.Fatal("record: -o output file is required")
	}
	if err := core.CheckBenchmark(*benchmark); err != nil {
		log.Fatal(err)
	}
	gen, err := workload.ByName(*benchmark, *cpus)
	if err != nil {
		log.Fatal(err)
	}
	// Source defaults: a trace-backed source carries its own quotas (so
	// re-recording keeps the full stream); synthetics use the same
	// defaults a live run consumes, so default recordings replay
	// byte-identically against default runs.
	defCfg := system.DefaultConfig(*protocol, *network)
	defWarmup, defQuota := defCfg.WarmupPerCPU, workload.MeasureQuota(*benchmark)
	if q, ok := gen.(workload.Quotaed); ok {
		defWarmup, defQuota = q.Quotas()
	}
	if *warmup < 0 {
		*warmup = defWarmup
	}
	if *quota <= 0 {
		*quota = defQuota
	}
	h := trace.Header{
		CPUs:           *cpus,
		Name:           gen.Name(),
		FootprintBytes: gen.FootprintBytes(),
		WarmupPerCPU:   *warmup,
		MeasurePerCPU:  *quota,
	}
	if *useSim {
		if err := core.CheckProtocol(*protocol); err != nil {
			log.Fatal(err)
		}
		if err := core.CheckNetwork(*network); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w, err := trace.NewWriter(f, h, *workers)
		if err != nil {
			log.Fatal(err)
		}
		cfg := system.DefaultConfig(*protocol, *network)
		cfg.Nodes = *cpus
		cfg.Seed = *seed
		cfg.WarmupPerCPU = *warmup
		cfg.MeasurePerCPU = *quota
		s, err := system.Build(cfg, trace.NewRecorder(gen, w))
		if err != nil {
			log.Fatal(err)
		}
		run := s.Execute()
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %s via %s/%s run:\n%s", *out, *protocol, *network, run.Summary())
	} else {
		tr := trace.Capture(gen, *cpus, *seed, *warmup, *quota)
		if err := tr.WriteFile(*out, *workers); err != nil {
			log.Fatal(err)
		}
	}
	// Recording from a trace-backed source (-benchmark trace:<path>)
	// that ran dry would bake re-walked wrapped data into the new file.
	if w, ok := gen.(workload.Wrapping); ok && w.Wraps() > 0 {
		os.Remove(*out)
		log.Fatalf("record: source stream wrapped %d times (its recording is shorter than %d+%d accesses per cpu); lower -warmup/-quota", w.Wraps(), *warmup, *quota)
	}
	st, err := trace.StatFile(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s, %d cpus, %d accesses, %d bytes (%.2f bytes/access)\n",
		*out, st.Header.Name, st.Header.CPUs, st.Accesses(), st.FileBytes,
		float64(st.FileBytes)/float64(st.Accesses()))
}

// replay drives a simulation from a trace file; the trace supplies the
// machine width and phase quotas.
func replay(args []string) {
	fs := flag.NewFlagSet("tstrace replay", flag.ExitOnError)
	var (
		path     = fs.String("trace", "", "trace file to replay (required)")
		protocol = fs.String("protocol", core.TSSnoop, "protocol: "+strings.Join(core.Protocols(), ", "))
		network  = fs.String("network", core.Butterfly, "network: "+strings.Join(core.Networks(), ", "))
		seed     = fs.Uint64("seed", 1, "perturbation/retry random seed")
		seeds    = fs.Int("seeds", 1, "perturbed runs (the minimum runtime is reported)")
		perturb  = fs.Int64("perturb-ns", 0, "max response perturbation in ns")
		workers  = fs.Int("workers", 0, "concurrent runs (0 = one per CPU, 1 = serial)")
	)
	fs.Parse(args)
	if *path == "" {
		log.Fatal("replay: -trace file is required")
	}
	if err := core.CheckProtocol(*protocol); err != nil {
		log.Fatal(err)
	}
	if err := core.CheckNetwork(*network); err != nil {
		log.Fatal(err)
	}
	// Resolved shares its decode with the trace: resolutions inside
	// RunBest, so the file is read once.
	tr, err := trace.Resolved(*path)
	if err != nil {
		log.Fatal(err)
	}
	run, err := core.RunBest("trace:"+*path, *protocol, *network, *seeds, *workers, func(c *core.Config) {
		c.Nodes = tr.Header.CPUs
		c.Seed = *seed
		c.PerturbMax = sim.Duration(*perturb) * sim.Nanosecond
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s) / %s / %s (%d nodes)\n", *path, tr.Header.Name, *protocol, *network, tr.Header.CPUs)
	if *seeds > 1 {
		fmt.Printf("best of %d perturbed replays\n", *seeds)
	}
	fmt.Print(run.Summary())
}

// stat prints a trace's header and stream statistics.
func stat(args []string) {
	fs := flag.NewFlagSet("tstrace stat", flag.ExitOnError)
	var (
		workers = fs.Int("workers", 0, "decode workers for -full (0 = one per CPU)")
		full    = fs.Bool("full", false, "decode the streams and report op mix and block reach")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		log.Fatal("stat: give one or more trace files")
	}
	for _, path := range fs.Args() {
		var st *trace.Stat
		var tr *trace.Trace
		if *full {
			// One read serves both the summary and the decoded streams.
			data, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			if tr, err = trace.Decode(data, *workers); err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			st = &trace.Stat{Header: tr.Header, PerCPU: make([]int64, len(tr.Streams)), FileBytes: int64(len(data))}
			for cpu, s := range tr.Streams {
				st.PerCPU[cpu] = int64(len(s))
			}
		} else {
			var err error
			if st, err = trace.StatFile(path); err != nil {
				log.Fatal(err)
			}
		}
		minC, maxC := st.PerCPU[0], st.PerCPU[0]
		for _, c := range st.PerCPU {
			minC, maxC = min(minC, c), max(maxC, c)
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  workload     %s\n", st.Header.Name)
		fmt.Printf("  cpus         %d\n", st.Header.CPUs)
		fmt.Printf("  quotas       %d warm-up + %d measured per cpu\n", st.Header.WarmupPerCPU, st.Header.MeasurePerCPU)
		fmt.Printf("  footprint    %.1f MB\n", float64(st.Header.FootprintBytes)/(1<<20))
		fmt.Printf("  accesses     %d total (%d..%d per cpu)\n", st.Accesses(), minC, maxC)
		fmt.Printf("  size         %d bytes (%.2f bytes/access)\n", st.FileBytes, float64(st.FileBytes)/float64(st.Accesses()))
		if *full {
			var stores, think int64
			blocks := map[int64]struct{}{}
			for _, s := range tr.Streams {
				for _, a := range s {
					if a.Op == coherence.Store {
						stores++
					}
					think += int64(a.Think)
					blocks[int64(a.Block)] = struct{}{}
				}
			}
			n := tr.Accesses()
			fmt.Printf("  stores       %.1f%%\n", 100*float64(stores)/float64(n))
			fmt.Printf("  blocks       %d distinct (%.1f MB touched at 64 B)\n", len(blocks), float64(len(blocks))*64/(1<<20))
			fmt.Printf("  mean think   %.1f instructions\n", float64(think)/float64(n))
		}
	}
}

// transform rewrites a trace through the composable passes, applied in
// a fixed order: window, then fold, then scale, then merge.
func transform(args []string) {
	fs := flag.NewFlagSet("tstrace transform", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input trace file (required)")
		out     = fs.String("o", "", "output trace file (required)")
		foldN   = fs.Int("fold", 0, "fold onto this many cpus (0 = keep)")
		scaleF  = fs.Float64("scale", 0, "footprint scale factor (0 = keep)")
		start   = fs.Int("start", 0, "window start (accesses per cpu, with -window)")
		window  = fs.Int("window", 0, "window length in accesses per cpu (0 = keep all)")
		merge   = fs.String("merge", "", "comma-separated traces to interleave in")
		workers = fs.Int("workers", 0, "transform/encode workers (0 = one per CPU)")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("transform: -in and -o are required")
	}
	if *foldN < 0 || *scaleF < 0 || *start < 0 || *window < 0 {
		log.Fatal("transform: -fold, -scale, -start, and -window must not be negative")
	}
	if *start > 0 && *window == 0 {
		log.Fatal("transform: -start requires -window")
	}
	tr, err := trace.ReadFile(*in, *workers)
	if err != nil {
		log.Fatal(err)
	}
	var passes []trace.Transform
	if *window > 0 {
		passes = append(passes, trace.Window(*start, *window))
	}
	if *foldN > 0 {
		passes = append(passes, trace.Fold(*foldN))
	}
	if *scaleF > 0 {
		passes = append(passes, trace.Scale(*scaleF))
	}
	if *merge != "" {
		var others []*trace.Trace
		for _, p := range strings.Split(*merge, ",") {
			o, err := trace.ReadFile(strings.TrimSpace(p), *workers)
			if err != nil {
				log.Fatal(err)
			}
			others = append(others, o)
		}
		passes = append(passes, trace.Merge(others...))
	}
	if len(passes) == 0 {
		log.Fatal("transform: nothing to do (give -fold, -scale, -window, or -merge)")
	}
	tr, err = trace.Apply(tr, *workers, passes...)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteFile(*out, *workers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s, %d cpus, %d accesses\n", *out, tr.Header.Name, tr.Header.CPUs, tr.Accesses())
}
