// Command benchguard compares a `go test -bench` run against the
// committed baseline in BENCH_5.json and fails on regressions.
//
// Two checks per guarded benchmark:
//
//   - allocs/op must not exceed the baseline. Allocation counts are
//     machine-independent, so this is an exact gate: the allocation-free
//     hot paths stay allocation-free.
//   - ns/op must not exceed baseline * factor (guard.ns_op_factor in the
//     baseline file, default 1.2, overridable with BENCH_NSOP_FACTOR).
//     Wall-clock comparisons across machines are noisy; the factor
//     absorbs that, and the allocation gate is the exact one.
//
// Usage:
//
//	go test -bench 'Kernel|Broadcast|Miss' -benchmem -run '^$' . | go run ./scripts/benchguard
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type measurement struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type baseline struct {
	Benchmarks map[string]struct {
		After *measurement `json:"after"`
	} `json:"benchmarks"`
	Guard struct {
		Benchmarks []string `json:"benchmarks"`
		NsOpFactor float64  `json:"ns_op_factor"`
	} `json:"guard"`
}

// resultRe matches one `go test -bench -benchmem` result line, e.g.
// "BenchmarkKernelEvents-8   100  33.9 ns/op  0 B/op  0 allocs/op".
var resultRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ \S+)*?\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

func main() {
	basePath := flag.String("baseline", "BENCH_5.json", "committed baseline file")
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: parsing baseline:", err)
		os.Exit(2)
	}
	factor := base.Guard.NsOpFactor
	if factor <= 0 {
		factor = 1.2
	}
	if env := os.Getenv("BENCH_NSOP_FACTOR"); env != "" {
		f, err := strconv.ParseFloat(env, 64)
		if err != nil || f <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: bad BENCH_NSOP_FACTOR %q\n", env)
			os.Exit(2)
		}
		factor = f
	}

	got := map[string]measurement{}
	lines := map[string][]string{} // raw result lines per benchmark, for failure reports
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo the run for the CI log
		m := resultRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		lines[m[1]] = append(lines[m[1]], line)
		ns, _ := strconv.ParseFloat(m[2], 64)
		bop, _ := strconv.ParseFloat(m[3], 64)
		allocs, _ := strconv.ParseFloat(m[4], 64)
		// With -count N there are several lines per benchmark; keep the
		// best of each metric so one noisy run cannot fail the gate.
		if prev, ok := got[m[1]]; ok {
			ns = min(ns, prev.NsOp)
			bop = min(bop, prev.BOp)
			allocs = min(allocs, prev.AllocsOp)
		}
		got[m[1]] = measurement{NsOp: ns, BOp: bop, AllocsOp: allocs}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	failed := false
	for _, name := range base.Guard.Benchmarks {
		entry, ok := base.Benchmarks[name]
		if !ok || entry.After == nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s has no baseline 'after' entry\n", name)
			failed = true
			continue
		}
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from the benchmark run\n", name)
			failed = true
			continue
		}
		want := entry.After
		ok = true
		if cur.AllocsOp > want.AllocsOp {
			fmt.Fprintf(os.Stderr, "benchguard: %s allocates %.0f allocs/op, baseline %.0f (exact gate)\n",
				name, cur.AllocsOp, want.AllocsOp)
			failed, ok = true, false
		}
		if limit := want.NsOp * factor; cur.NsOp > limit {
			fmt.Fprintf(os.Stderr, "benchguard: %s took %.1f ns/op, over %.1f (baseline %.1f x factor %.2f)\n",
				name, cur.NsOp, limit, want.NsOp, factor)
			failed, ok = true, false
		}
		if !ok {
			// Show the offending benchmark before/after: the committed
			// baseline measurement and every raw result line from this run.
			fmt.Fprintf(os.Stderr, "benchguard: %s before: %.1f ns/op  %.0f B/op  %.0f allocs/op (baseline)\n",
				name, want.NsOp, want.BOp, want.AllocsOp)
			for _, line := range lines[name] {
				fmt.Fprintf(os.Stderr, "benchguard: %s after:  %s\n", name, line)
			}
		}
		if ok {
			fmt.Printf("benchguard: %-28s %10.1f ns/op (baseline %10.1f) %6.0f allocs/op (baseline %.0f) ok\n",
				name, cur.NsOp, want.NsOp, cur.AllocsOp, want.AllocsOp)
		}
	}
	if failed {
		os.Exit(1)
	}
}
