// Package system assembles complete target machines: a topology, a
// coherence protocol, and one processor per node driving a workload
// generator — the 16-node SPARC server of Section 4.2, parameterized so
// the sensitivity sweeps can also build 4- and 64-node variants.
package system

import (
	"fmt"
	"math"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/obs"
	"tsnoop/internal/processor"
	"tsnoop/internal/protocol/directory"
	"tsnoop/internal/protocol/tssnoop"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
	"tsnoop/internal/workload"
)

// Protocol names accepted by Config.
const (
	ProtoTSSnoop    = "TS-Snoop"
	ProtoDirClassic = "DirClassic"
	ProtoDirOpt     = "DirOpt"
)

// Network names accepted by Config.
const (
	NetButterfly = "butterfly"
	NetTorus     = "torus"
)

// Config describes one target machine and run.
type Config struct {
	Network  string // NetButterfly or NetTorus
	Nodes    int    // 16 in the paper; butterfly requires a square count
	Protocol string

	Params timing.Params
	Cache  cache.Config

	// WarmupPerCPU memory operations run before statistics reset;
	// MeasurePerCPU are the measured operations.
	WarmupPerCPU  int
	MeasurePerCPU int

	// Seed drives the workload and perturbation randomness.
	Seed uint64
	// PerturbMax, when positive, adds uniform random delay in
	// [0, PerturbMax) to protocol responses (the stability methodology).
	PerturbMax sim.Duration

	// Timestamp snooping knobs (ablations).
	InitialSlack    int
	TokensPerPort   int
	Prefetch        bool
	EarlyProcessing bool
	Contention      bool
	// Verify enables the address network's internal ordering assertions
	// (tsnet.Config.Verify). Experiment runs default it off: the
	// consensus bookkeeping costs an allocation per broadcast copy and
	// buys nothing on a correct build. The tsnet and protocol test
	// suites, which construct their networks directly, keep it on.
	Verify bool
	// Metrics attaches a shared obs.Probe to the kernel, the networks,
	// and the protocol, and surfaces its snapshot as Run.Metrics after
	// the measured phase. Everything the probe records derives from
	// simulated time, so the snapshot is deterministic.
	Metrics bool
	// Spans additionally enables transaction-lifecycle span recording
	// on the probe (implying a probe even when Metrics is off): the
	// per-phase latency histograms surface as the metrics snapshot's
	// latency_breakdown section. Like Metrics, spans derive from
	// simulated time only and are deterministic.
	Spans bool
	// SpanLog, when non-nil and Spans is set, captures the raw span
	// stream into a caller-owned bounded ring (the -trace-out Chrome
	// export). The ring is not part of the deterministic snapshot.
	// Callers running seed fan-outs must not share one ring across
	// concurrent systems; the single-seed -trace-out path owns it.
	SpanLog *obs.SpanLog
	// UseOwnedState upgrades TS-Snoop from MSI to MOSI (the paper's
	// Section 3 extension; see tssnoop.Options).
	UseOwnedState bool
	// Multicast enables simplified multicast snooping for GETS (the
	// paper's first future-work item; see tssnoop.Options).
	Multicast bool
	// PredictorSize bounds the multicast owner predictor (0 = unbounded,
	// negative = disabled).
	PredictorSize int
}

// DefaultConfig is the paper's machine for the given protocol/network.
func DefaultConfig(protocol, network string) Config {
	return Config{
		Network:       network,
		Nodes:         16,
		Protocol:      protocol,
		Params:        timing.Default(),
		Cache:         cache.DefaultConfig(),
		WarmupPerCPU:  2500,
		MeasurePerCPU: 2500,
		Seed:          1,
		InitialSlack:  1,
		TokensPerPort: 1,
		Prefetch:      true,
	}
}

// System is an assembled machine.
type System struct {
	Cfg   Config
	K     *sim.Kernel
	Topo  *topology.Topology
	Proto coherence.Protocol
	Run   *stats.Run

	gen     workload.Generator
	touched map[coherence.Block]bool
	rngs    []*sim.Rand
	probe   *obs.Probe
}

// buildTopology maps (network, nodes) to a Topology.
func buildTopology(network string, nodes int) (*topology.Topology, error) {
	switch network {
	case NetButterfly:
		r := int(math.Round(math.Sqrt(float64(nodes))))
		if r*r != nodes {
			return nil, fmt.Errorf("system: butterfly needs a square node count, got %d", nodes)
		}
		return topology.Butterfly(r)
	case NetTorus:
		// Choose the most square factorization w*h = nodes.
		best := 0
		for w := 2; w*w <= nodes; w++ {
			if nodes%w == 0 && nodes/w >= 2 {
				best = w
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("system: cannot factor %d nodes into a torus", nodes)
		}
		return topology.Torus(best, nodes/best)
	default:
		return nil, fmt.Errorf("system: unknown network %q", network)
	}
}

// Build assembles a machine running gen. The kernel starts at time zero.
func Build(cfg Config, gen workload.Generator) (*System, error) {
	topo, err := buildTopology(cfg.Network, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	run := &stats.Run{}
	oracle := coherence.NewOracle()
	var probe *obs.Probe
	if cfg.Metrics || cfg.Spans {
		probe = obs.NewProbe()
		if cfg.Spans {
			probe.EnableSpans(cfg.SpanLog)
		}
		k.SetProbe(probe)
	}

	var proto coherence.Protocol
	switch cfg.Protocol {
	case ProtoTSSnoop:
		opts := tssnoop.DefaultOptions(cfg.Params)
		opts.Cache = cfg.Cache
		opts.Net.InitialSlack = cfg.InitialSlack
		opts.Net.TokensPerPort = cfg.TokensPerPort
		opts.Net.Contention = cfg.Contention
		opts.Net.Verify = cfg.Verify
		opts.Net.Probe = probe
		opts.Probe = probe
		opts.Prefetch = cfg.Prefetch
		opts.EarlyProcessing = cfg.EarlyProcessing
		opts.UseOwnedState = cfg.UseOwnedState
		opts.Multicast = cfg.Multicast
		opts.PredictorSize = cfg.PredictorSize
		p := tssnoop.New(k, topo, cfg.Params, run, oracle, opts)
		if cfg.PerturbMax > 0 {
			prng := sim.NewRand(cfg.Seed ^ 0xfeed)
			p.SetPerturbation(func() sim.Duration { return prng.Duration(cfg.PerturbMax) })
		}
		proto = p
	case ProtoDirClassic, ProtoDirOpt:
		v := directory.Classic
		if cfg.Protocol == ProtoDirOpt {
			v = directory.Opt
		}
		opts := directory.DefaultOptions(v)
		opts.Cache = cfg.Cache
		opts.RetrySeed = cfg.Seed ^ 0x4e7247
		opts.Probe = probe
		p := directory.New(k, topo, cfg.Params, run, oracle, opts)
		if cfg.PerturbMax > 0 {
			prng := sim.NewRand(cfg.Seed ^ 0xfeed)
			p.SetPerturbation(func() sim.Duration { return prng.Duration(cfg.PerturbMax) })
		}
		proto = p
	default:
		return nil, fmt.Errorf("system: unknown protocol %q", cfg.Protocol)
	}

	s := &System{
		Cfg:     cfg,
		K:       k,
		Topo:    topo,
		Proto:   proto,
		Run:     run,
		gen:     gen,
		touched: make(map[coherence.Block]bool),
		probe:   probe,
	}
	root := sim.NewRand(cfg.Seed)
	s.rngs = make([]*sim.Rand, cfg.Nodes)
	for i := range s.rngs {
		s.rngs[i] = root.Split()
	}
	return s, nil
}

// countingGen records distinct blocks touched (Table 3 column 2).
type countingGen struct {
	inner   workload.Generator
	touched map[coherence.Block]bool
}

func (c *countingGen) Name() string          { return c.inner.Name() }
func (c *countingGen) FootprintBytes() int64 { return c.inner.FootprintBytes() }
func (c *countingGen) Next(cpu int, r *sim.Rand) workload.Access {
	a := c.inner.Next(cpu, r)
	c.touched[a.Block] = true
	return a
}

// runPhase executes quota operations on every processor and returns the
// phase's makespan (time from phase start until the last processor
// finished).
func (s *System) runPhase(quota int) sim.Time {
	if quota == 0 {
		return 0
	}
	start := s.K.Now()
	remaining := s.Cfg.Nodes
	gen := &countingGen{inner: s.gen, touched: s.touched}
	var last sim.Time
	for i := 0; i < s.Cfg.Nodes; i++ {
		p := processor.New(s.K, i, s.Proto, gen, s.Cfg.Params, s.rngs[i], s.Run, quota, func(int) {
			remaining--
			if s.K.Now() > last {
				last = s.K.Now()
			}
		})
		p.SetProbe(s.probe)
		p.Start()
	}
	s.K.RunWhile(func() bool { return remaining > 0 })
	if remaining > 0 {
		panic("system: processors did not finish (protocol deadlock?)")
	}
	return last - start
}

// Execute runs warm-up, resets statistics, runs the measured phase, and
// returns the populated Run (also available as s.Run). Runtime is the
// measured phase's makespan.
func (s *System) Execute() *stats.Run {
	s.runPhase(s.Cfg.WarmupPerCPU)
	s.Run.Reset(s.K.Now())
	// Reset the probe with the statistics so the telemetry snapshot
	// covers exactly the measured window.
	if s.probe != nil {
		s.probe.Reset()
	}
	runtime := s.runPhase(s.Cfg.MeasurePerCPU)
	s.Run.Runtime = runtime
	s.Run.DataTouched = int64(len(s.touched)) * int64(s.Cfg.Cache.BlockBytes)
	if s.probe != nil {
		s.Run.Metrics = s.probe.Finalize(int64(runtime))
	}
	return s.Run
}
