package system

import (
	"testing"

	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/workload"
)

// Cross-protocol functional equivalence: a deterministic, globally
// sequential access script must produce identical version histories under
// every protocol and network — the protocols may only differ in timing and
// traffic, never in values. This is the strongest end-to-end check that
// all three coherence engines implement the same memory semantics.
func TestProtocolsFunctionallyEquivalent(t *testing.T) {
	type key struct {
		idx int
	}
	script := func(protocol, network string, mosi bool) []uint64 {
		cfg := DefaultConfig(protocol, network)
		cfg.UseOwnedState = mosi
		s, err := Build(cfg, workload.Uniform(64, 0, 10, 16))
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(77)
		var versions []uint64
		for i := 0; i < 600; i++ {
			nd := rng.Intn(16)
			b := coherence.Block(rng.Intn(12))
			op := coherence.Load
			if rng.Bool(0.4) {
				op = coherence.Store
			}
			done := false
			var got uint64
			s.Proto.Access(nd, op, b, func(r coherence.AccessResult) { got = r.Version; done = true })
			s.K.RunWhile(func() bool { return !done })
			versions = append(versions, got)
		}
		return versions
	}
	ref := script(ProtoTSSnoop, NetButterfly, false)
	variants := []struct {
		name     string
		protocol string
		network  string
		mosi     bool
		// exact protocols synchronize stores fully (TS-Snoop's total
		// order; DirClassic's invalidation acks), so a sequential script
		// serializes identically. DirOpt completes stores while
		// invalidations are still in flight (GS320-style, no acks): a
		// load racing an in-flight invalidation may legally return the
		// previous version, so only stores are compared exactly and loads
		// must never be NEWER than the synchronous reference.
		exact bool
	}{
		{"TS-Snoop/torus", ProtoTSSnoop, NetTorus, false, true},
		{"TS-Snoop/MOSI", ProtoTSSnoop, NetButterfly, true, true},
		{"DirClassic/butterfly", ProtoDirClassic, NetButterfly, false, true},
		{"DirOpt/butterfly", ProtoDirOpt, NetButterfly, false, false},
		{"DirOpt/torus", ProtoDirOpt, NetTorus, false, false},
	}
	for _, v := range variants {
		got := script(v.protocol, v.network, v.mosi)
		for i := range ref {
			if v.exact && got[i] != ref[i] {
				t.Fatalf("%s diverged from TS-Snoop/butterfly at access %d: version %d vs %d",
					v.name, i, got[i], ref[i])
			}
			if !v.exact && got[i] > ref[i] {
				t.Fatalf("%s returned version %d newer than the synchronous reference %d at access %d",
					v.name, got[i], ref[i], i)
			}
		}
	}
	_ = key{}
}
