package system

import (
	"testing"

	"tsnoop/internal/sim"
	"tsnoop/internal/workload"
)

func TestBuildTopologyVariants(t *testing.T) {
	cases := []struct {
		network string
		nodes   int
		ok      bool
	}{
		{NetButterfly, 16, true},
		{NetButterfly, 4, true},
		{NetButterfly, 64, true},
		{NetButterfly, 12, false},
		{NetTorus, 16, true},
		{NetTorus, 8, true},
		{NetTorus, 7, false},
		{"ring", 16, false},
	}
	for _, c := range cases {
		_, err := buildTopology(c.network, c.nodes)
		if (err == nil) != c.ok {
			t.Errorf("buildTopology(%s,%d) err=%v, want ok=%v", c.network, c.nodes, err, c.ok)
		}
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	cfg := DefaultConfig("MOESI-2000", NetButterfly)
	if _, err := Build(cfg, workload.Barnes(16)); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	run := func() (sim.Time, int64) {
		cfg := DefaultConfig(ProtoTSSnoop, NetTorus)
		cfg.WarmupPerCPU = 200
		cfg.MeasurePerCPU = 400
		s, err := Build(cfg, workload.Barnes(16))
		if err != nil {
			t.Fatal(err)
		}
		r := s.Execute()
		return r.Runtime, r.Traffic.TotalLinkBytes()
	}
	rt1, tr1 := run()
	rt2, tr2 := run()
	if rt1 != rt2 || tr1 != tr2 {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", rt1, tr1, rt2, tr2)
	}
}

func TestPerturbationChangesTiming(t *testing.T) {
	base := DefaultConfig(ProtoDirOpt, NetButterfly)
	base.WarmupPerCPU = 200
	base.MeasurePerCPU = 400
	s1, _ := Build(base, workload.Barnes(16))
	r1 := s1.Execute()
	pert := base
	pert.PerturbMax = 3 * sim.Nanosecond
	s2, _ := Build(pert, workload.Barnes(16))
	r2 := s2.Execute()
	if r1.Runtime == r2.Runtime {
		t.Fatal("perturbation had no effect on runtime")
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	cfg := DefaultConfig(ProtoDirOpt, NetButterfly)
	cfg.WarmupPerCPU = 300
	cfg.MeasurePerCPU = 300
	s, err := Build(cfg, workload.Barnes(16))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Execute()
	// Measured memory operations must be exactly the measured quota.
	if r.MemOps != int64(cfg.MeasurePerCPU*cfg.Nodes) {
		t.Fatalf("measured mem ops = %d, want %d", r.MemOps, cfg.MeasurePerCPU*cfg.Nodes)
	}
	if r.Runtime <= 0 {
		t.Fatal("no runtime measured")
	}
}

// Calibration: measured cache-to-cache fractions must stay within
// tolerance of Table 3's values (43/60/40/40/43 percent), the paper's
// central workload characteristic.
func TestCacheToCacheFractionsMatchTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	targets := map[string]float64{
		"OLTP": 0.43, "DSS": 0.60, "apache": 0.40, "altavista": 0.40, "barnes": 0.43,
	}
	const tol = 0.06
	gens := workload.Benchmarks(16)
	for _, g := range gens {
		cfg := DefaultConfig(ProtoDirOpt, NetButterfly)
		cfg.MeasurePerCPU = workload.MeasureQuota(g.Name())
		s, err := Build(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		run := s.Execute()
		got := run.CacheToCacheFraction()
		want := targets[g.Name()]
		if got < want-tol || got > want+tol {
			t.Errorf("%s cache-to-cache fraction = %.3f, want %.2f +/- %.2f", g.Name(), got, want, tol)
		}
	}
}

// Miss counts and data touched preserve Table 3's orderings.
func TestTable3Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	misses := map[string]int64{}
	touched := map[string]int64{}
	for _, g := range workload.Benchmarks(16) {
		cfg := DefaultConfig(ProtoDirOpt, NetButterfly)
		cfg.MeasurePerCPU = workload.MeasureQuota(g.Name())
		s, err := Build(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		run := s.Execute()
		misses[g.Name()] = run.TotalMisses()
		touched[g.Name()] = run.DataTouched
	}
	// Paper: misses 5.3M > 2.4M (altavista) >= 2.3M (apache) > 1.7M (DSS)
	// > 1.0M (barnes).
	if !(misses["OLTP"] > misses["altavista"] && misses["altavista"] > misses["DSS"] &&
		misses["apache"] > misses["DSS"] && misses["DSS"] > misses["barnes"]) {
		t.Errorf("miss-count ordering broken: %v", misses)
	}
	// Footprint: OLTP touches the most data, barnes the least.
	if !(touched["OLTP"] > touched["apache"] && touched["OLTP"] > touched["DSS"] &&
		touched["barnes"] < touched["apache"] && touched["barnes"] < touched["altavista"]) {
		t.Errorf("data-touched ordering broken: %v", touched)
	}
}
