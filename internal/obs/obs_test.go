package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, -5} {
		h.Observe(v)
	}
	s := h.summary()
	// -5 clamps to zero, so two zeros in bucket 0; 1 has bit length 1;
	// 2 and 3 length 2; 4 and 7 length 3; 8 length 4.
	want := []int64{2, 1, 2, 2, 1}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Count != 8 || s.Min != 0 || s.Max != 8 {
		t.Errorf("count/min/max = %d/%d/%d, want 8/0/8", s.Count, s.Min, s.Max)
	}
	if s.Sum != 0+1+2+3+4+7+8+0 {
		t.Errorf("sum = %d, want 25", s.Sum)
	}
}

func TestHistSummaryTrimsTrailingZeros(t *testing.T) {
	var h Hist
	h.Observe(1)
	if got := len(h.summary().Buckets); got != 2 {
		t.Errorf("buckets length = %d, want 2 (trailing empties trimmed)", got)
	}
	var empty Hist
	if got := len(empty.summary().Buckets); got != 0 {
		t.Errorf("empty histogram buckets length = %d, want 0", got)
	}
}

func TestHistSummaryMean(t *testing.T) {
	s := HistSummary{Count: 4, Sum: 10}
	if s.Mean() != 2 {
		t.Errorf("Mean() = %d, want 2", s.Mean())
	}
	if (HistSummary{}).Mean() != 0 {
		t.Error("empty Mean() should be 0")
	}
}

func TestTokenStallEpisodes(t *testing.T) {
	p := NewProbe()
	p.SizeNetwork([]int64{10, 10}, 2)
	// Two blocked attempts inside one episode count one stall.
	p.TokenStall(0, 100)
	p.TokenStall(0, 200)
	p.TokenAdvance(0, 350)
	// A later episode on the same switch counts again.
	p.TokenStall(0, 400)
	p.TokenAdvance(0, 450)
	// An advance without a stall is just a round.
	p.TokenAdvance(1, 500)
	m := p.Finalize(1000)
	if m.Network.TokenStalls != 2 {
		t.Errorf("stalls = %d, want 2", m.Network.TokenStalls)
	}
	if m.Network.TokenRounds != 3 {
		t.Errorf("rounds = %d, want 3", m.Network.TokenRounds)
	}
	// Durations: 350-100=250 and 450-400=50.
	if m.Network.TokenStallPS.Sum != 300 || m.Network.TokenStallPS.Count != 2 {
		t.Errorf("stall hist = %+v, want sum 300 count 2", m.Network.TokenStallPS)
	}
}

func TestFinalizeLinkUtilization(t *testing.T) {
	p := NewProbe()
	p.SizeNetwork([]int64{100, 200}, 1)
	// Link 0: 3 txn + 1 token transits at 100 ps = 400 ps busy of a
	// 1000 ps window = 400000 ppm. Link 1 idle = 0 ppm.
	p.LinkTxn(0)
	p.LinkTxn(0)
	p.LinkTxn(0)
	p.LinkToken(0)
	m := p.Finalize(1000)
	u := m.Network.LinkUtilizationPPM
	if u.Count != 2 || u.Max != 400000 || u.Min != 0 {
		t.Errorf("utilization = %+v, want count 2 min 0 max 400000", u)
	}
	if m.Network.LinkTxnTransits != 3 || m.Network.LinkTokenTransits != 1 {
		t.Errorf("transits = %d/%d, want 3/1", m.Network.LinkTxnTransits, m.Network.LinkTokenTransits)
	}
	// Out-of-range links are no-ops, not panics.
	p.LinkTxn(99)
	p.LinkToken(-1)
}

func TestResetKeepsNetworkShape(t *testing.T) {
	p := NewProbe()
	p.SizeNetwork([]int64{50}, 1)
	p.Dispatch(true)
	p.Event(EvLinkTxn)
	p.LinkTxn(0)
	p.TokenStall(0, 10)
	p.MSHROcc(3)
	p.HeapDepth(7)
	p.Reset()
	m := p.Finalize(1000)
	if m.Kernel.TypedDispatches != 0 || m.Kernel.Events.LinkTxn != 0 ||
		m.Kernel.HeapPeak != 0 || m.Protocol.MSHRPeak != 0 {
		t.Errorf("Reset left counters: %+v", m)
	}
	if m.Network.Links != 1 {
		t.Errorf("Reset dropped the network shape: links = %d, want 1", m.Network.Links)
	}
	// The stall episode opened before Reset must not close after it.
	p.TokenAdvance(0, 2000)
	m = p.Finalize(1000)
	if m.Network.TokenStallPS.Count != 0 {
		t.Error("Reset should clear in-progress stall episodes")
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	p := NewProbe()
	p.SizeNetwork([]int64{100}, 1)
	p.Dispatch(true)
	p.Dispatch(false)
	p.ScheduleDelay(500)
	p.Event(EvDataMsg)
	p.LinkTxn(0)
	p.BufferOcc(2)
	p.ReorderOcc(1)
	p.MSHROcc(4)
	p.MissWait(12345)
	m := p.Finalize(10000)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*m, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *m)
	}
	data2, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("Marshal is not byte-stable")
	}
}

func TestSummaryMentionsSections(t *testing.T) {
	p := NewProbe()
	p.SizeNetwork([]int64{100}, 1)
	s := p.Finalize(1000).Summary()
	for _, want := range []string{"metrics:", "kernel", "events", "network", "protocol"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
	// Without a sized network the network line is omitted.
	s = NewProbe().Finalize(1000).Summary()
	if strings.Contains(s, "network") {
		t.Errorf("Summary should omit the network line for fabric-less systems:\n%s", s)
	}
}
