// Package obs is the simulator's deterministic observability layer: a
// nil-guarded Probe that hot paths feed with dense-slice counters and
// fixed-bucket histograms, and a stable-field Metrics snapshot the
// probe renders once at the end of a run.
//
// The probe follows the same discipline as the PR 5 txnDebug hook:
// every call site is guarded by `if p := x.probe; p != nil { ... }`,
// so with metrics disabled the entire layer costs one nil check per
// site — zero allocations, no maps, no interface boxing. With metrics
// enabled the probe still never allocates on the hot path: all
// storage is fixed-size arrays plus dense slices sized once at build
// time (SizeNetwork), and histograms use fixed log2 buckets indexed
// with bits.Len64.
//
// Everything the probe records is keyed to simulated time (int64
// picoseconds) or to pure event counts — never wall clock — so a
// Metrics snapshot is a pure function of the spec and seed, and its
// JSON is byte-identical across -workers counts. The package has no
// dependency on internal/sim (times cross the boundary as plain
// int64), which lets sim, tsnet, network, stats, and both protocols
// import it without cycles.
//
// Interaction with canonical hashing: the -metrics knob rides in
// spec.Spec as an omitempty field that spec.Normalize unconditionally
// clears (the Verify pattern), so enabling telemetry never changes a
// spec.Canonical() store key. Because the content-addressed result
// store requires byte-identical payloads per key, instrumented runs
// bypass the store instead of polluting it (see cmd/tsnoop run and
// the service queue, which strips the knob).
package obs

import "math/bits"

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds values whose bit length is i (i.e. [2^(i-1), 2^i)), with
// bucket 0 holding exactly zero. 48 buckets cover every int64 the
// simulator produces (picosecond latencies, queue depths).
const histBuckets = 48

// Hist is a fixed-bucket log2 histogram over non-negative int64
// samples. All fields are integers and all updates are pure integer
// arithmetic, so identical sample sequences yield identical state.
type Hist struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// bucketOf maps a sample to its log2 bucket.
func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample. Negative samples are clamped to zero:
// the probe only measures durations and depths, for which a negative
// value is a caller bug we degrade rather than corrupt the bucket
// index with.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count reports the number of samples observed.
func (h *Hist) Count() int64 { return h.count }

// summary renders the histogram's stable JSON form, trimming trailing
// empty buckets so sparse histograms stay compact.
func (h *Hist) summary() HistSummary {
	n := histBuckets
	for n > 0 && h.buckets[n-1] == 0 {
		n--
	}
	b := make([]int64, n)
	copy(b, h.buckets[:n])
	return HistSummary{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: b,
	}
}

// reset zeroes the histogram in place.
func (h *Hist) reset() { *h = Hist{} }

// EventKind names the dispatch sites the probe counts. The kernel
// cannot classify events itself — event functions are not comparable
// — so each subsystem tags its own dispatches at the call site.
type EventKind uint8

const (
	// EvLinkTxn is an address transaction finishing a link transit
	// in tsnet.
	EvLinkTxn EventKind = iota
	// EvLinkToken is an isotach token finishing a link transit.
	EvLinkToken
	// EvPortService is a switch serving a buffered transaction on a
	// contended output port.
	EvPortService
	// EvOrderedHandoff is a reorder queue handing a transaction to
	// the endpoint in timestamp order.
	EvOrderedHandoff
	// EvDataMsg is a point-to-point data message delivery on the
	// unordered data fabric.
	EvDataMsg
	// EvL2Hit is a protocol L2 hit completing without a bus
	// transaction.
	EvL2Hit
	// EvDataSend is a protocol data-response send event.
	EvDataSend
	// EvRetry is a nacked request being retried (directory protocol).
	EvRetry

	numEventKinds
)

// Probe is the recording half of the layer. One probe instruments one
// System: the kernel, the ordered network, the data fabric, and the
// protocol share it. It is not safe for concurrent use — a System is
// single-threaded by construction, and seed-parallel runs each build
// their own probe.
type Probe struct {
	// Kernel-level.
	typedDispatch   int64
	closureDispatch int64
	heapPeak        int64
	scheduleDelay   Hist

	// Per-event-kind dispatch counts, tagged at subsystem call sites.
	kinds [numEventKinds]int64

	// Network-level dense per-link / per-switch state, sized once by
	// SizeNetwork. linkLatPS is setup-time metadata, not samples, so
	// Reset preserves it.
	linkTxn      []int64
	linkToken    []int64
	linkLatPS    []int64
	swProps      []int64
	swStallAt    []int64 // simulated stall start per switch; -1 = not stalled
	tokenStalls  int64
	tokenStallPS Hist
	bufferOcc    Hist
	reorderOcc   Hist

	// Protocol-level.
	mshrOcc  Hist
	mshrPeak int64
	missWait Hist

	// Span layer (see span.go). spansOn gates the per-phase
	// latency-breakdown histograms; spanLog, when non-nil, captures the
	// raw span stream for the Chrome trace export.
	spansOn   bool
	spanHists [numSpanKinds]Hist
	spanLog   *SpanLog
}

// NewProbe returns an empty probe. Network slices stay empty until
// SizeNetwork is called; the slice-indexing recorders are no-ops
// before then, so a probe works (kernel + protocol only) for systems
// without an instrumented fabric.
func NewProbe() *Probe { return &Probe{} }

// SizeNetwork allocates the dense per-link and per-switch state.
// linkLatPS holds each link's transit latency in picoseconds and is
// retained (not copied samples — metadata used by Finalize to turn
// transit counts into busy time). Called once at build time; this is
// the only allocation the probe ever performs outside Finalize.
func (p *Probe) SizeNetwork(linkLatPS []int64, switches int) {
	p.linkLatPS = append([]int64(nil), linkLatPS...)
	p.linkTxn = make([]int64, len(linkLatPS))
	p.linkToken = make([]int64, len(linkLatPS))
	p.swProps = make([]int64, switches)
	p.swStallAt = make([]int64, switches)
	for i := range p.swStallAt {
		p.swStallAt[i] = -1
	}
}

// Reset zeroes every counter and histogram in place, keeping the
// dense slices (and the link-latency metadata) allocated. The system
// calls it between the warmup and measurement phases so a Metrics
// snapshot covers exactly the measured window.
func (p *Probe) Reset() {
	p.typedDispatch = 0
	p.closureDispatch = 0
	p.heapPeak = 0
	p.scheduleDelay.reset()
	for i := range p.kinds {
		p.kinds[i] = 0
	}
	for i := range p.linkTxn {
		p.linkTxn[i] = 0
		p.linkToken[i] = 0
	}
	for i := range p.swProps {
		p.swProps[i] = 0
		p.swStallAt[i] = -1
	}
	p.tokenStalls = 0
	p.tokenStallPS.reset()
	p.bufferOcc.reset()
	p.reorderOcc.reset()
	p.mshrOcc.reset()
	p.mshrPeak = 0
	p.missWait.reset()
	for i := range p.spanHists {
		p.spanHists[i].reset()
	}
	if l := p.spanLog; l != nil {
		l.reset()
	}
}

// Dispatch counts one kernel dispatch, split typed vs legacy closure.
func (p *Probe) Dispatch(typed bool) {
	if typed {
		p.typedDispatch++
	} else {
		p.closureDispatch++
	}
}

// ScheduleDelay records how far into the simulated future an event
// was scheduled (t - now at schedule time, picoseconds).
func (p *Probe) ScheduleDelay(ps int64) { p.scheduleDelay.Observe(ps) }

// HeapDepth tracks the event heap's high-water mark.
func (p *Probe) HeapDepth(n int) {
	if int64(n) > p.heapPeak {
		p.heapPeak = int64(n)
	}
}

// Event counts one dispatch of the given kind at its call site.
func (p *Probe) Event(k EventKind) { p.kinds[k]++ }

// LinkTxn counts an address-transaction transit over the given link.
func (p *Probe) LinkTxn(link int) {
	if link >= 0 && link < len(p.linkTxn) {
		p.linkTxn[link]++
	}
}

// LinkToken counts a token transit over the given link.
func (p *Probe) LinkToken(link int) {
	if link >= 0 && link < len(p.linkToken) {
		p.linkToken[link]++
	}
}

// BufferOcc samples a switch output-port buffer depth after a change.
func (p *Probe) BufferOcc(n int) { p.bufferOcc.Observe(int64(n)) }

// ReorderOcc samples an endpoint reorder-queue depth after a change.
func (p *Probe) ReorderOcc(n int) { p.reorderOcc.Observe(int64(n)) }

// TokenStall marks the given switch blocked on a zero-slack buffered
// transaction at simulated time nowPS. Repeated calls while already
// stalled are idempotent: one stall episode is counted from its first
// blocked propagation attempt until TokenAdvance.
func (p *Probe) TokenStall(sw int, nowPS int64) {
	if sw < 0 || sw >= len(p.swStallAt) {
		return
	}
	if p.swStallAt[sw] < 0 {
		p.swStallAt[sw] = nowPS
		p.tokenStalls++
	}
}

// TokenAdvance counts a successful token propagation round at the
// given switch and, if the switch was stalled, closes the stall
// episode, observing its simulated duration.
func (p *Probe) TokenAdvance(sw int, nowPS int64) {
	if sw < 0 || sw >= len(p.swProps) {
		return
	}
	p.swProps[sw]++
	if at := p.swStallAt[sw]; at >= 0 {
		p.tokenStallPS.Observe(nowPS - at)
		p.swStallAt[sw] = -1
	}
}

// MSHROcc samples the protocol's outstanding-miss count after a
// change and tracks its high-water mark.
func (p *Probe) MSHROcc(n int) {
	p.mshrOcc.Observe(int64(n))
	if int64(n) > p.mshrPeak {
		p.mshrPeak = int64(n)
	}
}

// MissWait records one completed miss's issue-to-complete simulated
// latency in picoseconds.
func (p *Probe) MissWait(ps int64) { p.missWait.Observe(ps) }

// Finalize renders the probe's state into a Metrics snapshot.
// runtimePS is the measured window's simulated duration and drives
// the per-link utilization computation: a link's busy time is its
// transit count times its latency, expressed in parts-per-million of
// the window (pure integer math). Finalize allocates (it builds the
// snapshot); it runs once, after the measurement loop.
func (p *Probe) Finalize(runtimePS int64) *Metrics {
	var util Hist
	var txn, tok int64
	for i := range p.linkTxn {
		txn += p.linkTxn[i]
		tok += p.linkToken[i]
		if runtimePS > 0 {
			busy := (p.linkTxn[i] + p.linkToken[i]) * p.linkLatPS[i]
			util.Observe(busy * 1_000_000 / runtimePS)
		}
	}
	var props int64
	for _, n := range p.swProps {
		props += n
	}
	// The latency breakdown appears only when spans were enabled, so
	// metrics-only runs render bytes identical to pre-span versions.
	var latency *LatencyBreakdown
	if p.spansOn {
		latency = &LatencyBreakdown{
			AccessPS:          p.spanHists[SpanAccess].summary(),
			MissPS:            p.spanHists[SpanMiss].summary(),
			OrderWaitPS:       p.spanHists[SpanOrderWait].summary(),
			DataAfterOrderPS:  p.spanHists[SpanDataAfterOrder].summary(),
			DataBeforeOrderPS: p.spanHists[SpanDataBeforeOrder].summary(),
			AddrFlightPS:      p.spanHists[SpanAddrFlight].summary(),
			ReorderDwellPS:    p.spanHists[SpanReorderDwell].summary(),
			BufferDwellPS:     p.spanHists[SpanBufferDwell].summary(),
			DataFlightPS:      p.spanHists[SpanDataFlight].summary(),
		}
	}
	return &Metrics{
		Kernel: KernelMetrics{
			TypedDispatches:   p.typedDispatch,
			ClosureDispatches: p.closureDispatch,
			HeapPeak:          p.heapPeak,
			ScheduleDelayPS:   p.scheduleDelay.summary(),
			Events: EventCounts{
				LinkTxn:        p.kinds[EvLinkTxn],
				LinkToken:      p.kinds[EvLinkToken],
				PortService:    p.kinds[EvPortService],
				OrderedHandoff: p.kinds[EvOrderedHandoff],
				DataMsg:        p.kinds[EvDataMsg],
				L2Hit:          p.kinds[EvL2Hit],
				DataSend:       p.kinds[EvDataSend],
				Retry:          p.kinds[EvRetry],
			},
		},
		Network: NetworkMetrics{
			Links:              int64(len(p.linkTxn)),
			LinkTxnTransits:    txn,
			LinkTokenTransits:  tok,
			LinkUtilizationPPM: util.summary(),
			TokenRounds:        props,
			TokenStalls:        p.tokenStalls,
			TokenStallPS:       p.tokenStallPS.summary(),
			BufferOccupancy:    p.bufferOcc.summary(),
			ReorderOccupancy:   p.reorderOcc.summary(),
		},
		Protocol: ProtocolMetrics{
			MSHROccupancy: p.mshrOcc.summary(),
			MSHRPeak:      p.mshrPeak,
			MissWaitPS:    p.missWait.summary(),
		},
		Latency: latency,
	}
}
