package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTrace renders a span log as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents envelope), directly openable
// in Perfetto or chrome://tracing. Each simulated node becomes one
// process (pid) and each lane within it one thread (tid): MSHR slots
// for protocol phases, one lane per phase kind for network phases.
// Simulated picoseconds map onto the trace's microsecond timeline as
// ts = ps / 1e6, so one trace microsecond is one simulated
// microsecond.
//
// This runs once, after the simulation; it is not part of the
// deterministic Metrics snapshot (the ring truncates under load, and
// the export is a debugging artifact, not a measurement).
func WriteChromeTrace(w io.Writer, l *SpanLog) error {
	bw := bufio.NewWriter(w)
	spans := l.Spans()

	// Metadata events name each process and thread so Perfetto's
	// track labels read "node 3" / "mshr 0" instead of bare numbers.
	type lane struct{ pid, tid int32 }
	laneSet := make(map[lane]bool)
	pids := make(map[int32]bool)
	for _, s := range spans {
		pids[s.Node] = true
		laneSet[lane{s.Node, s.TID}] = true
	}
	sortedPids := make([]int32, 0, len(pids))
	for pid := range pids {
		sortedPids = append(sortedPids, pid)
	}
	sort.Slice(sortedPids, func(i, j int) bool { return sortedPids[i] < sortedPids[j] })
	lanes := make([]lane, 0, len(laneSet))
	for ln := range laneSet {
		lanes = append(lanes, ln)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})

	fmt.Fprint(bw, `{"traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for _, pid := range sortedPids {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}}`, pid, pidName(pid))
	}
	for _, ln := range lanes {
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`, ln.pid, ln.tid, laneName(ln.tid))
	}
	for _, s := range spans {
		emit(`{"name":"%s","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"src":%d,"seq":%d}}`,
			s.Kind, usec(s.Start), usec(s.Dur), s.Node, s.TID, s.Src, s.Seq)
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

// pidName labels a process: endpoints are nodes, switches record with
// negative pids (-(sw+1)) since their id space overlaps the nodes'.
func pidName(pid int32) string {
	if pid < 0 {
		return fmt.Sprintf("switch %d", -pid-1)
	}
	return fmt.Sprintf("node %d", pid)
}

// laneName labels a tid under the fixed lane scheme (see span.go):
// the processor lane, MSHR slots, then one lane per network phase.
func laneName(tid int32) string {
	switch {
	case tid == LaneCPU:
		return "cpu"
	case tid < laneNet:
		return fmt.Sprintf("mshr %d", tid-LaneMSHR0)
	default:
		return SpanKind(tid - laneNet).String()
	}
}

// usec renders picoseconds as a decimal microsecond string without
// float formatting artifacts (1234567 ps -> "1.234567").
func usec(ps int64) string {
	if ps < 0 {
		ps = 0
	}
	return fmt.Sprintf("%d.%06d", ps/1_000_000, ps%1_000_000)
}
