package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Probe.Span is inert until EnableSpans: no histogram movement, no log.
func TestSpanOffByDefault(t *testing.T) {
	p := NewProbe()
	p.Span(SpanMiss, 0, LaneMSHR0, 0, 1, 100, 50)
	if p.SpansEnabled() {
		t.Error("SpansEnabled before EnableSpans")
	}
	m := p.Finalize(0)
	if m.Latency != nil {
		t.Error("latency breakdown present without EnableSpans")
	}
}

// With spans enabled, observations land in the per-phase histograms and
// (when a log is attached) in the ring.
func TestSpanRecords(t *testing.T) {
	p := NewProbe()
	log := NewSpanLog(8)
	p.EnableSpans(log)
	p.Span(SpanMiss, 3, LaneMSHR0, 3, 7, 1000, 250)
	p.Span(SpanAddrFlight, 1, NetLane(SpanAddrFlight), 3, 7, 1000, 45)
	m := p.Finalize(0)
	if m.Latency == nil {
		t.Fatal("no latency breakdown after spans")
	}
	if m.Latency.MissPS.Count != 1 || m.Latency.MissPS.Mean() != 250 {
		t.Errorf("miss summary = %+v, want count 1 mean 250", m.Latency.MissPS)
	}
	if m.Latency.AddrFlightPS.Count != 1 {
		t.Errorf("addr flight summary = %+v, want count 1", m.Latency.AddrFlightPS)
	}
	spans := log.Spans()
	if len(spans) != 2 || spans[0].Kind != SpanMiss || spans[1].Kind != SpanAddrFlight {
		t.Fatalf("log spans = %+v", spans)
	}
	if spans[0].Node != 3 || spans[0].Seq != 7 || spans[0].Start != 1000 || spans[0].Dur != 250 {
		t.Errorf("span fields = %+v", spans[0])
	}
}

// The ring overwrites oldest-first once full and counts the drops;
// record order survives the wrap.
func TestSpanLogWraps(t *testing.T) {
	log := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		log.append(Span{Kind: SpanAccess, Seq: uint64(i)})
	}
	if log.Len() != 4 {
		t.Errorf("Len = %d, want 4", log.Len())
	}
	if log.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", log.Dropped())
	}
	spans := log.Spans()
	for i, s := range spans {
		if want := uint64(6 + i); s.Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d (oldest first)", i, s.Seq, want)
		}
	}
}

// Reset empties the log alongside the probe's counters, preserving the
// ring's capacity (the warmup/measure boundary must not allocate).
func TestResetClearsSpans(t *testing.T) {
	p := NewProbe()
	log := NewSpanLog(4)
	p.EnableSpans(log)
	p.Span(SpanMiss, 0, LaneMSHR0, 0, 0, 0, 10)
	p.Reset()
	if log.Len() != 0 || log.Dropped() != 0 {
		t.Errorf("log after Reset: len %d dropped %d, want 0/0", log.Len(), log.Dropped())
	}
	if m := p.Finalize(0); m.Latency.MissPS.Count != 0 {
		t.Errorf("miss count after Reset = %d, want 0", m.Latency.MissPS.Count)
	}
}

// The Chrome trace export is one valid JSON document with process/
// thread metadata and "X" duration events, timestamps in decimal
// microseconds with no float artifacts.
func TestWriteChromeTrace(t *testing.T) {
	log := NewSpanLog(16)
	log.append(Span{Kind: SpanAccess, Node: 0, TID: LaneCPU, Start: 1_234_567, Dur: 1_000_000})
	log.append(Span{Kind: SpanMiss, Node: 1, TID: LaneMSHR0, Src: 1, Seq: 9, Start: 2_000_000, Dur: 500_000})
	log.append(Span{Kind: SpanBufferDwell, Node: -1, TID: NetLane(SpanBufferDwell), Src: 0, Seq: 3, Start: 0, Dur: 42})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, log); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, events int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		case "X":
			events++
			for _, field := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("X event lacks %q: %v", field, ev)
				}
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if events != 3 {
		t.Errorf("X events = %d, want 3", events)
	}
	if meta == 0 {
		t.Error("no metadata events")
	}
	// Negative pids label switches; node pids label nodes; lanes are
	// named after their role.
	for _, want := range []string{"switch 0", "node 0", "node 1", "cpu", "mshr 0", "buffer_dwell"} {
		if !names[want] {
			t.Errorf("metadata names lack %q (have %v)", want, names)
		}
	}
	// ts 1_234_567 ps must render as 1.234567 µs exactly.
	if !strings.Contains(buf.String(), `"ts":1.234567`) {
		t.Errorf("ps->µs formatting wrong:\n%s", buf.String())
	}
}
