package obs

// Span support: the probe's second layer. Where the histograms in
// obs.go aggregate, spans record — each Span is one phase of one
// coherence transaction's lifecycle, timestamped in simulated
// picoseconds. The aggregate view (per-phase Hists rendered as the
// latency_breakdown Metrics section) is deterministic and rides the
// -metrics JSON; the raw span stream is bounded by a fixed-capacity
// ring (SpanLog) and is exported as Chrome trace-event JSON for
// Perfetto, never into the deterministic snapshot.
//
// The recording discipline matches the rest of the probe: call sites
// are nil-guarded on the probe itself, Probe.Span is a no-op unless
// EnableSpans was called, and with spans enabled the steady state
// still allocates nothing — the per-phase Hists are fixed arrays and
// the SpanLog ring is sized once at construction, overwriting its
// oldest entry when full.

// SpanKind classifies one phase of a transaction's lifecycle. The
// phases follow the paper's critical path: the processor issues an
// access, the protocol allocates an MSHR and injects into the address
// network, the transaction transits links and dwells in switch
// buffers, reaches its ordering point, waits in the endpoint reorder
// queue, and (for misses) a data message crosses the unordered fabric
// before the miss completes.
type SpanKind uint8

const (
	// SpanAccess is a processor memory access, issue to completion
	// (hits and misses alike).
	SpanAccess SpanKind = iota
	// SpanMiss is a protocol miss, MSHR allocation to completion.
	SpanMiss
	// SpanOrderWait is the slice of a miss spent waiting for the
	// transaction to reach its ordering point (timestamp snooping:
	// the requester processing its own transaction in logical order).
	SpanOrderWait
	// SpanDataAfterOrder is the post-ordering wait for the data
	// response, when data arrived after the ordering point.
	SpanDataAfterOrder
	// SpanDataBeforeOrder is the early-data interval, when the data
	// response arrived before the transaction was ordered.
	SpanDataBeforeOrder
	// SpanAddrFlight is an address transaction's network transit,
	// injection to arrival at one endpoint.
	SpanAddrFlight
	// SpanReorderDwell is the endpoint reorder-queue wait, arrival to
	// in-order processing.
	SpanReorderDwell
	// SpanBufferDwell is a switch output-port buffering interval for
	// a contended transaction.
	SpanBufferDwell
	// SpanDataFlight is a data message's transit on the unordered
	// point-to-point fabric.
	SpanDataFlight

	numSpanKinds
)

// String returns the phase name used in the latency breakdown and the
// Chrome trace export.
func (k SpanKind) String() string {
	switch k {
	case SpanAccess:
		return "access"
	case SpanMiss:
		return "miss"
	case SpanOrderWait:
		return "order_wait"
	case SpanDataAfterOrder:
		return "data_after_order"
	case SpanDataBeforeOrder:
		return "data_before_order"
	case SpanAddrFlight:
		return "addr_flight"
	case SpanReorderDwell:
		return "reorder_dwell"
	case SpanBufferDwell:
		return "buffer_dwell"
	case SpanDataFlight:
		return "data_flight"
	default:
		return "unknown"
	}
}

// Span is one recorded lifecycle phase. All fields are fixed-size
// scalars — no strings, no pointers — so a SpanLog ring entry costs
// nothing to overwrite and the log never retains references.
type Span struct {
	Kind SpanKind
	// Node is the observing node (Chrome trace pid).
	Node int32
	// TID distinguishes concurrent lanes within a node: the MSHR slot
	// for protocol phases, the span kind for network phases (Chrome
	// trace tid).
	TID int32
	// Src and Seq identify the transaction when the phase has one
	// (address-network phases); zero otherwise.
	Src int32
	Seq uint64
	// Start and Dur are simulated picoseconds.
	Start int64
	Dur   int64
}

// Lane assignment inside one node (Chrome trace tid): tid 0 is the
// processor lane, tids [1, laneNet) are MSHR slots (slot = tid-1),
// and each network phase owns one fixed lane at laneNet+kind so
// overlapping spans of different phases never share a track.
const (
	// LaneCPU is the processor access lane.
	LaneCPU int32 = 0
	// LaneMSHR0 is the first MSHR slot's lane.
	LaneMSHR0 int32 = 1
	laneNet   int32 = 8
)

// NetLane returns the fixed per-kind lane of a network phase.
func NetLane(k SpanKind) int32 { return laneNet + int32(k) }

// SpanLog is a bounded ring of raw spans. Capacity is fixed at
// construction; once full, each append overwrites the oldest entry
// and bumps the dropped counter. Appending to a full ring therefore
// never allocates, which keeps span recording inside the hot-path
// allocation budget.
type SpanLog struct {
	ring    []Span
	next    int
	length  int
	dropped int64
}

// NewSpanLog returns a ring holding up to capacity spans.
func NewSpanLog(capacity int) *SpanLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanLog{ring: make([]Span, capacity)}
}

// append records one span, overwriting the oldest when full.
func (l *SpanLog) append(s Span) {
	if l.length == len(l.ring) {
		l.dropped++
	} else {
		l.length++
	}
	l.ring[l.next] = s
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
	}
}

// Len reports the number of spans currently held.
func (l *SpanLog) Len() int { return l.length }

// Dropped reports how many spans were overwritten by wrap-around.
func (l *SpanLog) Dropped() int64 { return l.dropped }

// Spans returns the held spans in record order, oldest first. It
// allocates the result; call it after the run, not during.
func (l *SpanLog) Spans() []Span {
	out := make([]Span, 0, l.length)
	start := l.next - l.length
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.length; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// reset empties the ring in place, keeping its capacity.
func (l *SpanLog) reset() {
	l.next = 0
	l.length = 0
	l.dropped = 0
}

// EnableSpans turns on per-phase latency aggregation (the
// latency_breakdown Metrics section) and, when log is non-nil,
// raw-span capture into it. Call once at build time, before the run;
// the per-phase histograms live inline in the probe, so enabling
// spans performs no allocation beyond the caller's own SpanLog.
func (p *Probe) EnableSpans(log *SpanLog) {
	p.spansOn = true
	p.spanLog = log
}

// SpansEnabled reports whether EnableSpans was called.
func (p *Probe) SpansEnabled() bool { return p.spansOn }

// Span records one lifecycle phase: its kind, the observing node, the
// lane within that node (MSHR slot or phase lane), the transaction
// identity when known, and the phase's start and duration in
// simulated picoseconds. A no-op unless EnableSpans was called, so
// probe-guarded call sites cost one extra predictable branch when the
// knob is off.
func (p *Probe) Span(k SpanKind, node, tid, src int32, seq uint64, startPS, durPS int64) {
	if !p.spansOn {
		return
	}
	p.spanHists[k].Observe(durPS)
	if l := p.spanLog; l != nil {
		l.append(Span{Kind: k, Node: node, TID: tid, Src: src, Seq: seq, Start: startPS, Dur: durPS})
	}
}
