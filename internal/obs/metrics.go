package obs

import (
	"fmt"
	"strings"
)

// Metrics is the stable-field JSON snapshot a probe renders once per
// run. The same contract as stats.Run's JSON applies: fields may be
// added over time but never renamed, reordered, or retyped — the
// bytes are diffed across worker counts and across sessions. All
// values are integers derived from simulated time and event counts,
// so identical (spec, seed) pairs render identical bytes.
type Metrics struct {
	Kernel   KernelMetrics   `json:"kernel"`
	Network  NetworkMetrics  `json:"network"`
	Protocol ProtocolMetrics `json:"protocol"`
	// Latency is the per-phase transaction-lifecycle breakdown,
	// present only when the run was executed with spans enabled
	// (the -spans knob). A pointer with omitempty so metrics-only
	// snapshots stay byte-identical to pre-span renderings.
	Latency *LatencyBreakdown `json:"latency_breakdown,omitempty"`
}

// HistSummary is the wire form of a Hist: totals plus the log2
// buckets with trailing empties trimmed. Bucket i counts samples of
// bit length i; bucket 0 counts exact zeros.
type HistSummary struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets"`
}

// Mean reports the integer mean sample, 0 when empty.
func (h HistSummary) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// KernelMetrics profiles the event kernel: dispatch counts split by
// path, per-kind counts tagged at subsystem call sites, the schedule
// distance distribution, and the event-heap high-water mark.
type KernelMetrics struct {
	TypedDispatches   int64       `json:"typed_dispatches"`
	ClosureDispatches int64       `json:"closure_dispatches"`
	HeapPeak          int64       `json:"heap_peak"`
	ScheduleDelayPS   HistSummary `json:"schedule_delay_ps"`
	Events            EventCounts `json:"events"`
}

// EventCounts breaks dispatches down by EventKind.
type EventCounts struct {
	LinkTxn        int64 `json:"link_txn"`
	LinkToken      int64 `json:"link_token"`
	PortService    int64 `json:"port_service"`
	OrderedHandoff int64 `json:"ordered_handoff"`
	DataMsg        int64 `json:"data_msg"`
	L2Hit          int64 `json:"l2_hit"`
	DataSend       int64 `json:"data_send"`
	Retry          int64 `json:"retry"`
}

// NetworkMetrics covers the ordered (tsnet) fabric: link transit
// counts and utilization, token propagation and stall behavior, and
// the buffer/reorder occupancy distributions. All zero for systems
// whose protocol does not use tsnet (the directory baseline).
type NetworkMetrics struct {
	Links              int64       `json:"links"`
	LinkTxnTransits    int64       `json:"link_txn_transits"`
	LinkTokenTransits  int64       `json:"link_token_transits"`
	LinkUtilizationPPM HistSummary `json:"link_utilization_ppm"`
	TokenRounds        int64       `json:"token_rounds"`
	TokenStalls        int64       `json:"token_stalls"`
	TokenStallPS       HistSummary `json:"token_stall_ps"`
	BufferOccupancy    HistSummary `json:"buffer_occupancy"`
	ReorderOccupancy   HistSummary `json:"reorder_occupancy"`
}

// ProtocolMetrics covers the coherence protocol: MSHR occupancy and
// the miss-wait latency distribution.
type ProtocolMetrics struct {
	MSHROccupancy HistSummary `json:"mshr_occupancy"`
	MSHRPeak      int64       `json:"mshr_peak"`
	MissWaitPS    HistSummary `json:"miss_wait_ps"`
}

// LatencyBreakdown splits the transaction lifecycle into its phases,
// one histogram per SpanKind, all in simulated picoseconds. Like the
// rest of the snapshot it is derived from simulated time only, so the
// block is byte-identical at any -workers count.
type LatencyBreakdown struct {
	AccessPS          HistSummary `json:"access_ps"`
	MissPS            HistSummary `json:"miss_ps"`
	OrderWaitPS       HistSummary `json:"order_wait_ps"`
	DataAfterOrderPS  HistSummary `json:"data_after_order_ps"`
	DataBeforeOrderPS HistSummary `json:"data_before_order_ps"`
	AddrFlightPS      HistSummary `json:"addr_flight_ps"`
	ReorderDwellPS    HistSummary `json:"reorder_dwell_ps"`
	BufferDwellPS     HistSummary `json:"buffer_dwell_ps"`
	DataFlightPS      HistSummary `json:"data_flight_ps"`
}

// Summary renders a short human-readable block for tsnoop run's text
// mode. Purely derived from the snapshot, so it is as deterministic
// as the JSON.
func (m *Metrics) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics:\n")
	fmt.Fprintf(&b, "  kernel      %d typed + %d closure dispatches, heap peak %d, mean schedule delay %d ps\n",
		m.Kernel.TypedDispatches, m.Kernel.ClosureDispatches, m.Kernel.HeapPeak, m.Kernel.ScheduleDelayPS.Mean())
	e := m.Kernel.Events
	fmt.Fprintf(&b, "  events      link txn %d, token %d, port %d, handoff %d, data %d, l2 hit %d, send %d, retry %d\n",
		e.LinkTxn, e.LinkToken, e.PortService, e.OrderedHandoff, e.DataMsg, e.L2Hit, e.DataSend, e.Retry)
	n := m.Network
	if n.Links > 0 {
		fmt.Fprintf(&b, "  network     %d links, mean utilization %d ppm, %d token rounds, %d stalls (mean %d ps), buffer mean %d, reorder mean %d\n",
			n.Links, n.LinkUtilizationPPM.Mean(), n.TokenRounds, n.TokenStalls, n.TokenStallPS.Mean(),
			n.BufferOccupancy.Mean(), n.ReorderOccupancy.Mean())
	}
	fmt.Fprintf(&b, "  protocol    mshr mean %d peak %d, mean miss wait %d ps over %d misses\n",
		m.Protocol.MSHROccupancy.Mean(), m.Protocol.MSHRPeak, m.Protocol.MissWaitPS.Mean(), m.Protocol.MissWaitPS.Count)
	if l := m.Latency; l != nil {
		fmt.Fprintf(&b, "  latency     miss %d ps (order wait %d, data after %d), addr flight %d, reorder %d, buffer %d, data flight %d\n",
			l.MissPS.Mean(), l.OrderWaitPS.Mean(), l.DataAfterOrderPS.Mean(),
			l.AddrFlightPS.Mean(), l.ReorderDwellPS.Mean(), l.BufferDwellPS.Mean(), l.DataFlightPS.Mean())
	}
	return b.String()
}
