package topology

import (
	"testing"
	"testing/quick"
)

// walkBroadcast routes a broadcast through tree's Route table exactly the
// way a tsnet switch would, returning per-destination (cost-sum depth,
// accumulated dD). It fails the test on duplicate delivery.
func walkBroadcast(t *testing.T, topo *Topology, tree *BroadcastTree) (depth, sumDD map[int]int) {
	t.Helper()
	depth = make(map[int]int)
	sumDD = make(map[int]int)
	type state struct {
		link LinkID
		d    int
		dd   int
	}
	queue := []state{{link: topo.EndpointOut(tree.Source), d: topo.Link(topo.EndpointOut(tree.Source)).Cost, dd: tree.InjectDeltaD}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		to := topo.Link(cur.link).To
		if to.Kind == KindEndpoint {
			if _, dup := depth[to.Index]; dup {
				t.Fatalf("endpoint %d delivered twice in tree from %d", to.Index, tree.Source)
			}
			depth[to.Index] = cur.d
			sumDD[to.Index] = cur.dd
			continue
		}
		branches, ok := tree.Route[to.Index]
		if !ok {
			t.Fatalf("no route at switch %d for source %d", to.Index, tree.Source)
		}
		for _, b := range branches {
			queue = append(queue, state{
				link: b.Link,
				d:    cur.d + topo.Link(b.Link).Cost,
				dd:   cur.dd + b.DeltaD,
			})
		}
	}
	return depth, sumDD
}

func checkTree(t *testing.T, topo *Topology, src int) {
	t.Helper()
	tree := topo.BroadcastTree(src)
	depth, sumDD := walkBroadcast(t, topo, tree)
	if len(depth) != topo.Nodes() {
		t.Fatalf("tree from %d reached %d endpoints, want %d", src, len(depth), topo.Nodes())
	}
	for ep := 0; ep < topo.Nodes(); ep++ {
		if depth[ep] != tree.Depth[ep] {
			t.Errorf("tree %d: walked depth to %d = %d, recorded %d", src, ep, depth[ep], tree.Depth[ep])
		}
		// The central dD invariant: depth + sum(dD) = MaxDepth for every
		// destination, so slack adjustments keep OT invariant (Section 2.2).
		if depth[ep]+sumDD[ep] != tree.MaxDepth {
			t.Errorf("tree %d: depth(%d)+sumDD = %d+%d != MaxDepth %d",
				src, ep, depth[ep], sumDD[ep], tree.MaxDepth)
		}
		if sumDD[ep] < 0 {
			t.Errorf("tree %d: negative accumulated dD at %d", src, ep)
		}
	}
}

func TestButterflyShape(t *testing.T) {
	topo := MustButterfly(4)
	if topo.Nodes() != 16 {
		t.Fatalf("nodes = %d, want 16", topo.Nodes())
	}
	if topo.NumSwitches() != 8 {
		t.Fatalf("switches = %d, want 8", topo.NumSwitches())
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			want := 3
			if s == d {
				want = 0
			}
			if got := topo.Hops(s, d); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestButterflyBroadcastMatchesPaper(t *testing.T) {
	// "A 16 processor radix-4 butterfly delivers a message using 3 links
	// and broadcasts a transaction with 3-link latency using 21 links
	// (1+4+16)."
	topo := MustButterfly(4)
	for src := 0; src < 16; src++ {
		tree := topo.BroadcastTree(src)
		if tree.TotalLinks != 21 {
			t.Errorf("broadcast links from %d = %d, want 21", src, tree.TotalLinks)
		}
		if tree.MaxDepth != 3 {
			t.Errorf("Dmax from %d = %d, want 3", src, tree.MaxDepth)
		}
		for ep, d := range tree.Depth {
			if d != 3 {
				t.Errorf("depth %d->%d = %d, want 3", src, ep, d)
			}
		}
		// The butterfly tree is balanced: every dD must be zero.
		for sw, branches := range tree.Route {
			for _, b := range branches {
				if b.DeltaD != 0 {
					t.Errorf("butterfly dD at switch %d = %d, want 0", sw, b.DeltaD)
				}
			}
		}
		checkTree(t, topo, src)
	}
}

func TestButterflyRadix2And8(t *testing.T) {
	for _, r := range []int{2, 8} {
		topo := MustButterfly(r)
		if topo.Nodes() != r*r {
			t.Fatalf("radix %d nodes = %d", r, topo.Nodes())
		}
		want := 1 + r + r*r
		for src := 0; src < topo.Nodes(); src++ {
			if got := topo.BroadcastLinks(src); got != want {
				t.Fatalf("radix %d broadcast links = %d, want %d", r, got, want)
			}
			checkTree(t, topo, src)
		}
	}
}

func TestButterflyRejectsBadRadix(t *testing.T) {
	if _, err := Butterfly(1); err == nil {
		t.Fatal("Butterfly(1) succeeded, want error")
	}
}

func torusDist(w, h, a, b int) int {
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	if w-dx < dx {
		dx = w - dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	if h-dy < dy {
		dy = h - dy
	}
	return dx + dy
}

func TestTorusHopsAreTorusDistance(t *testing.T) {
	topo := MustTorus(4, 4)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			want := torusDist(4, 4, s, d)
			if s == d {
				want = 0
			}
			if got := topo.Hops(s, d); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestTorusBroadcastMatchesPaper(t *testing.T) {
	// "A torus delivers messages using a mean of 2 links and broadcasts
	// transactions using 15 links with a mean arrival latency of 2 links
	// and worst-case latency of 4 links."
	topo := MustTorus(4, 4)
	for src := 0; src < 16; src++ {
		tree := topo.BroadcastTree(src)
		if tree.TotalLinks != 15 {
			t.Errorf("broadcast links from %d = %d, want 15", src, tree.TotalLinks)
		}
		if tree.MaxDepth != 4 {
			t.Errorf("Dmax from %d = %d, want 4", src, tree.MaxDepth)
		}
		sum := 0
		for _, d := range tree.Depth {
			sum += d
		}
		// Mean arrival over all 16 endpoints (including self at depth 0)
		// is exactly 2 links on a 4x4 torus.
		if mean := float64(sum) / 16; mean != 2.0 {
			t.Errorf("mean broadcast depth from %d = %v, want 2.0", src, mean)
		}
		checkTree(t, topo, src)
	}
}

func TestTorusSelfDeliveryWaitsDmax(t *testing.T) {
	// The source's own copy is delivered at depth 0 but must accumulate
	// dD = Dmax so that it is processed exactly at its ordering time.
	topo := MustTorus(4, 4)
	for src := 0; src < 16; src++ {
		tree := topo.BroadcastTree(src)
		_, sumDD := walkBroadcast(t, topo, tree)
		if sumDD[src] != tree.MaxDepth {
			t.Errorf("self dD from %d = %d, want %d", src, sumDD[src], tree.MaxDepth)
		}
	}
}

func TestTorusRectangular(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {2, 4}, {4, 2}, {3, 3}, {5, 3}, {8, 8}} {
		topo := MustTorus(dims[0], dims[1])
		n := dims[0] * dims[1]
		if topo.Nodes() != n {
			t.Fatalf("%v nodes = %d", dims, topo.Nodes())
		}
		for src := 0; src < n; src++ {
			if got := topo.BroadcastLinks(src); got != n-1 {
				t.Fatalf("torus %v broadcast links from %d = %d, want %d", dims, src, got, n-1)
			}
			checkTree(t, topo, src)
		}
	}
}

func TestTorusRejectsDegenerate(t *testing.T) {
	for _, dims := range [][2]int{{1, 4}, {4, 1}, {0, 0}} {
		if _, err := Torus(dims[0], dims[1]); err == nil {
			t.Fatalf("Torus(%v) succeeded, want error", dims)
		}
	}
}

func TestMeanHops(t *testing.T) {
	bf := MustButterfly(4)
	if got := bf.MeanHops(); got != 3.0 {
		t.Errorf("butterfly mean hops = %v, want 3", got)
	}
	to := MustTorus(4, 4)
	// Per source: sum over 15 others = 32; 32/15.
	want := 32.0 / 15.0
	if got := to.MeanHops(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("torus mean hops = %v, want %v", got, want)
	}
}

func TestMaxHops(t *testing.T) {
	if got := MustButterfly(4).MaxHops(0); got != 3 {
		t.Errorf("butterfly max hops = %d, want 3", got)
	}
	if got := MustTorus(4, 4).MaxHops(5); got != 4 {
		t.Errorf("torus max hops = %d, want 4", got)
	}
}

// Property: for random torus shapes, every broadcast tree satisfies the
// dD/depth invariant and reaches every endpoint exactly once.
func TestTorusTreeInvariantProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		w := int(a%6) + 2
		h := int(b%6) + 2
		topo := MustTorus(w, h)
		for src := 0; src < topo.Nodes(); src++ {
			tree := topo.BroadcastTree(src)
			depth, sumDD := walkBroadcast(t, topo, tree)
			if len(depth) != topo.Nodes() {
				return false
			}
			for ep := range depth {
				if depth[ep]+sumDD[ep] != tree.MaxDepth {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkEndpointAccessors(t *testing.T) {
	topo := MustButterfly(4)
	for ep := 0; ep < 16; ep++ {
		out := topo.Link(topo.EndpointOut(ep))
		if out.From.Kind != KindEndpoint || out.From.Index != ep {
			t.Fatalf("EndpointOut(%d) does not start at endpoint: %v", ep, out)
		}
		in := topo.Link(topo.EndpointIn(ep))
		if in.To.Kind != KindEndpoint || in.To.Index != ep {
			t.Fatalf("EndpointIn(%d) does not end at endpoint: %v", ep, in)
		}
	}
}

func TestSwitchLinkConsistency(t *testing.T) {
	for _, topo := range []*Topology{MustButterfly(4), MustTorus(4, 4)} {
		for _, sw := range topo.Switches() {
			for _, id := range sw.In {
				if l := topo.Link(id); l.To.Kind != KindSwitch || l.To.Index != sw.ID {
					t.Fatalf("%s: switch %d In link %d does not terminate there", topo.Name(), sw.ID, id)
				}
			}
			for _, id := range sw.Out {
				if l := topo.Link(id); l.From.Kind != KindSwitch || l.From.Index != sw.ID {
					t.Fatalf("%s: switch %d Out link %d does not originate there", topo.Name(), sw.ID, id)
				}
			}
		}
	}
}
