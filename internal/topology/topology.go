// Package topology describes the switched interconnects evaluated in the
// paper: four-butterfly indirect networks (modelled as one radix-r
// two-stage butterfly token domain) and WxH bidirectional 2D tori.
//
// A Topology is an explicit directed graph of endpoints and switches. Two
// consumers use it:
//
//   - The unloaded point-to-point fabric (package network) needs hop counts
//     (latency) and link counts (traffic) between endpoint pairs.
//   - The timestamp-snooping address network (package tsnet) needs the full
//     switch graph: input/output link sets per switch, plus a broadcast
//     spanning tree per source with the paper's per-branch dD values
//     ("the magnitude of the decrease in maximum pipeline depth for a
//     branch of the broadcast", Section 2.2).
//
// Link cost conventions follow the paper's link accounting:
//
//   - Butterfly: endpoint<->switch links are physical chip-to-chip links
//     (cost 1). A 16-endpoint radix-4 butterfly delivers point-to-point
//     messages over 3 links and broadcasts over 21 links (1+4+16).
//   - Torus: the switch is integrated on the processor die, so
//     endpoint<->switch links are free (cost 0). Point-to-point messages
//     use the torus distance in links; broadcasts use 15 links on a 4x4.
package topology

import "fmt"

// LinkID identifies a directed link within a Topology.
type LinkID int

// VertexKind discriminates the two vertex types of the network graph.
type VertexKind int

// Vertex kinds.
const (
	KindEndpoint VertexKind = iota
	KindSwitch
)

// Vertex is either an endpoint (processor/memory node network interface)
// or a switch.
type Vertex struct {
	Kind  VertexKind
	Index int
}

func (v Vertex) String() string {
	if v.Kind == KindEndpoint {
		return fmt.Sprintf("ep%d", v.Index)
	}
	return fmt.Sprintf("sw%d", v.Index)
}

// Link is a directed link. Cost is the logical hop count of traversing the
// link: 1 for physical links (15 ns switch traversals in the paper's
// timing model) and 0 for on-die endpoint<->switch connections in the
// torus. Links with Cost > 0 are counted in traffic totals.
type Link struct {
	ID       LinkID
	From, To Vertex
	Cost     int
}

// Counted reports whether traffic over this link contributes to the
// paper's link-traffic totals (Figure 4).
func (l Link) Counted() bool { return l.Cost > 0 }

// Switch lists a switch's incoming and outgoing links.
type Switch struct {
	ID  int
	In  []LinkID
	Out []LinkID
}

// Branch is one output of a broadcast routing step: forward on Link, and
// increase the transaction's slack by DeltaD (the decrease in the maximum
// remaining pipeline depth relative to the longest branch). Reach is the
// set of endpoints (bitmask, for machines up to 64 nodes) delivered
// through this branch; multicast pruning drops branches whose reach does
// not intersect the destination set, which never alters a surviving
// copy's path and therefore preserves every ordering-time invariant.
type Branch struct {
	Link   LinkID
	DeltaD int
	Reach  uint64
}

// BroadcastTree is the statically balanced minimum-depth spanning tree used
// to broadcast a source's address transactions to every endpoint.
type BroadcastTree struct {
	Source int
	// TotalLinks is the number of counted links in the tree — the traffic
	// cost of one broadcast.
	TotalLinks int
	// Depth[d] is the logical hop count from the source to endpoint d.
	Depth []int
	// MaxDepth is the maximum of Depth; it is the Dmax term of the
	// ordering-time assignment OT = GT_source + Dmax + S.
	MaxDepth int
	// Route maps a switch ID to the branches a transaction from Source
	// takes when it arrives at that switch.
	Route map[int][]Branch
	// InjectDeltaD is the dD applied on the source endpoint's injection
	// link (zero unless the injection link itself is off the longest
	// path, which does not occur for these topologies).
	InjectDeltaD int
}

// Topology is a fully constructed interconnect description.
type Topology struct {
	name     string
	n        int
	switches []Switch
	links    []Link
	epOut    []LinkID // injection link per endpoint
	epIn     []LinkID // ejection link per endpoint
	hops     [][]int  // endpoint-to-endpoint logical hop counts
	trees    []*BroadcastTree
}

// Name returns a short human-readable topology name.
func (t *Topology) Name() string { return t.name }

// Nodes returns the number of endpoints.
func (t *Topology) Nodes() int { return t.n }

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// Switches returns the switch descriptors (shared slice; do not mutate).
func (t *Topology) Switches() []Switch { return t.switches }

// Links returns the link descriptors (shared slice; do not mutate).
func (t *Topology) Links() []Link { return t.links }

// Link returns the descriptor for id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// EndpointOut returns the injection link of endpoint ep.
func (t *Topology) EndpointOut(ep int) LinkID { return t.epOut[ep] }

// EndpointIn returns the ejection link of endpoint ep.
func (t *Topology) EndpointIn(ep int) LinkID { return t.epIn[ep] }

// Hops returns the logical hop count (equivalently, the number of counted
// links) for a point-to-point message from src to dst. Hops(i, i) is 0:
// a node reaching its own memory controller does not enter the network.
func (t *Topology) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return t.hops[src][dst]
}

// MaxHops returns the largest point-to-point hop count from src.
func (t *Topology) MaxHops(src int) int {
	m := 0
	for dst := 0; dst < t.n; dst++ {
		if h := t.Hops(src, dst); h > m {
			m = h
		}
	}
	return m
}

// MeanHops returns the mean point-to-point hop count over all ordered
// pairs with src != dst.
func (t *Topology) MeanHops() float64 {
	sum, cnt := 0, 0
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s == d {
				continue
			}
			sum += t.Hops(s, d)
			cnt++
		}
	}
	return float64(sum) / float64(cnt)
}

// BroadcastTree returns the broadcast tree rooted at endpoint src.
func (t *Topology) BroadcastTree(src int) *BroadcastTree { return t.trees[src] }

// BroadcastLinks returns the traffic cost (counted links) of one broadcast
// from src.
func (t *Topology) BroadcastLinks(src int) int { return t.trees[src].TotalLinks }

// Dmax returns the maximum broadcast depth from src — the logical time a
// transaction needs to reach its furthest destination.
func (t *Topology) Dmax(src int) int { return t.trees[src].MaxDepth }

// treeNode is scaffolding used while building broadcast trees.
type treeNode struct {
	vertex   Vertex
	depth    int
	inLink   LinkID // link by which the broadcast reaches this vertex (-1 at root)
	children []*treeNode
}

// finishTree converts a constructed tree into a BroadcastTree, computing
// per-branch dD values from subtree residual depths.
func (t *Topology) finishTree(src int, root *treeNode) *BroadcastTree {
	bt := &BroadcastTree{
		Source: src,
		Depth:  make([]int, t.n),
		Route:  make(map[int][]Branch),
	}
	for i := range bt.Depth {
		bt.Depth[i] = -1
	}
	var walk func(nd *treeNode) (int, uint64) // residual depth and endpoint reach below nd
	walk = func(nd *treeNode) (int, uint64) {
		var reach uint64
		if nd.vertex.Kind == KindEndpoint && nd.inLink >= 0 {
			bt.Depth[nd.vertex.Index] = nd.depth
			if nd.depth > bt.MaxDepth {
				bt.MaxDepth = nd.depth
			}
			if nd.vertex.Index < 64 {
				reach |= 1 << uint(nd.vertex.Index)
			}
		}
		residual := 0
		type branchInfo struct {
			link  LinkID
			below int // cost(link) + residual(child)
			reach uint64
		}
		var infos []branchInfo
		for _, c := range nd.children {
			cost := t.links[c.inLink].Cost
			below, childReach := walk(c)
			below += cost
			infos = append(infos, branchInfo{link: c.inLink, below: below, reach: childReach})
			reach |= childReach
			if below > residual {
				residual = below
			}
			if t.links[c.inLink].Counted() {
				bt.TotalLinks++
			}
		}
		if nd.vertex.Kind == KindSwitch {
			branches := make([]Branch, 0, len(infos))
			for _, bi := range infos {
				branches = append(branches, Branch{Link: bi.link, DeltaD: residual - bi.below, Reach: bi.reach})
			}
			bt.Route[nd.vertex.Index] = branches
		}
		return residual, reach
	}
	walk(root)
	return bt
}

// computeHops fills the endpoint-to-endpoint hop table from the broadcast
// trees: for these topologies the broadcast tree paths are minimal, so the
// broadcast depth equals the point-to-point hop count.
func (t *Topology) computeHops() {
	t.hops = make([][]int, t.n)
	for s := 0; s < t.n; s++ {
		t.hops[s] = make([]int, t.n)
		for d := 0; d < t.n; d++ {
			t.hops[s][d] = t.trees[s].Depth[d]
		}
	}
}

func (t *Topology) addLink(from, to Vertex, cost int) LinkID {
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, From: from, To: to, Cost: cost})
	if from.Kind == KindSwitch {
		t.switches[from.Index].Out = append(t.switches[from.Index].Out, id)
	}
	if to.Kind == KindSwitch {
		t.switches[to.Index].In = append(t.switches[to.Index].In, id)
	}
	return id
}

// MulticastLinks returns the number of counted links a multicast from src
// to the endpoint set mask traverses on the pruned broadcast tree (the
// traffic cost of one multicast). Only defined for machines with at most
// 64 endpoints.
func (t *Topology) MulticastLinks(src int, mask uint64) int {
	tree := t.trees[src]
	links := 0
	inj := t.links[t.epOut[src]]
	if inj.Counted() {
		links++
	}
	var desc func(sw int)
	desc = func(sw int) {
		for _, b := range tree.Route[sw] {
			if b.Reach&mask == 0 {
				continue
			}
			if t.links[b.Link].Counted() {
				links++
			}
			if to := t.links[b.Link].To; to.Kind == KindSwitch {
				desc(to.Index)
			}
		}
	}
	if to := inj.To; to.Kind == KindSwitch {
		desc(to.Index)
	}
	return links
}
