package topology

import "fmt"

// Torus constructs a WxH bidirectional 2D torus with one switch per
// endpoint, integrated on the processor die as in the Compaq Alpha 21364
// design the paper models. Endpoint<->switch links are on-die and cost 0;
// switch<->switch links cost 1.
//
// Broadcasts use dimension-order spanning trees (cover the source's row in
// x, then every column in y), which are minimum-depth: each endpoint is
// reached at its torus distance. On a 4x4 a broadcast uses 15 links with a
// worst-case depth of 4 and a mean arrival depth of 2 links.
func Torus(w, h int) (*Topology, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("topology: torus dimensions must be >= 2, got %dx%d", w, h)
	}
	n := w * h
	t := &Topology{
		name:     fmt.Sprintf("torus-%dx%d", w, h),
		n:        n,
		switches: make([]Switch, n),
		epOut:    make([]LinkID, n),
		epIn:     make([]LinkID, n),
	}
	for i := range t.switches {
		t.switches[i].ID = i
	}
	node := func(x, y int) int { return y*w + x }
	wrap := func(v, m int) int { return ((v % m) + m) % m }

	// Endpoint links (on-die, cost 0).
	for ep := 0; ep < n; ep++ {
		t.epOut[ep] = t.addLink(Vertex{KindEndpoint, ep}, Vertex{KindSwitch, ep}, 0)
		t.epIn[ep] = t.addLink(Vertex{KindSwitch, ep}, Vertex{KindEndpoint, ep}, 0)
	}
	// Switch-to-switch links in +x, -x, +y, -y directions.
	swLink := make(map[[2]int]LinkID)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			from := node(x, y)
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				to := node(wrap(x+d[0], w), wrap(y+d[1], h))
				if to == from {
					continue // degenerate dimension (w or h == 1 is rejected above)
				}
				key := [2]int{from, to}
				if _, ok := swLink[key]; !ok {
					swLink[key] = t.addLink(Vertex{KindSwitch, from}, Vertex{KindSwitch, to}, 1)
				}
			}
		}
	}

	// ringOffsets returns the signed offsets each direction chain covers for
	// a ring of size m: positives 1..ceil((m-1)/2), negatives -1..-floor((m-1)/2).
	ringChains := func(m int) (pos, neg int) {
		pos = m / 2
		neg = (m - 1) / 2
		return
	}

	t.trees = make([]*BroadcastTree, n)
	for src := 0; src < n; src++ {
		sx, sy := src%w, src/w
		root := &treeNode{vertex: Vertex{KindEndpoint, src}, inLink: -1}
		srcSw := &treeNode{vertex: Vertex{KindSwitch, src}, depth: 0, inLink: t.epOut[src]}
		root.children = append(root.children, srcSw)

		// Build the y-chain below a switch at (x, y0) (including its own
		// endpoint ejection), returning the subtree rooted at that switch
		// node (which the caller has already created).
		buildColumn := func(colRoot *treeNode, x int) {
			y0 := colRoot.vertex.Index / w
			eject := func(nd *treeNode) {
				ep := nd.vertex.Index
				nd.children = append(nd.children, &treeNode{
					vertex: Vertex{KindEndpoint, ep}, depth: nd.depth, inLink: t.epIn[ep],
				})
			}
			eject(colRoot)
			posN, negN := ringChains(h)
			for _, dir := range []int{+1, -1} {
				steps := posN
				if dir < 0 {
					steps = negN
				}
				prev := colRoot
				for s := 1; s <= steps; s++ {
					y := wrap(y0+dir*s, h)
					from := prev.vertex.Index
					to := node(x, y)
					nd := &treeNode{vertex: Vertex{KindSwitch, to}, depth: prev.depth + 1, inLink: swLink[[2]int{from, to}]}
					prev.children = append(prev.children, nd)
					eject(nd)
					prev = nd
				}
			}
		}

		// Row chains in x from the source switch; each row switch roots a
		// column chain.
		buildColumn(srcSw, sx)
		posN, negN := ringChains(w)
		for _, dir := range []int{+1, -1} {
			steps := posN
			if dir < 0 {
				steps = negN
			}
			prev := srcSw
			for s := 1; s <= steps; s++ {
				x := wrap(sx+dir*s, w)
				from := prev.vertex.Index
				to := node(x, sy)
				nd := &treeNode{vertex: Vertex{KindSwitch, to}, depth: prev.depth + 1, inLink: swLink[[2]int{from, to}]}
				prev.children = append(prev.children, nd)
				buildColumn(nd, x)
				prev = nd
			}
		}
		t.trees[src] = t.finishTree(src, root)
	}
	t.computeHops()
	return t, nil
}

// MustTorus is Torus but panics on error; for tests and examples.
func MustTorus(w, h int) *Topology {
	t, err := Torus(w, h)
	if err != nil {
		panic(err)
	}
	return t
}
