package topology

import "fmt"

// Butterfly constructs a two-stage radix-r indirect butterfly connecting
// r*r endpoints, as in the paper's 16-processor radix-4 configuration.
//
// Endpoint i injects into first-stage switch i/r; first-stage switch a
// connects to every second-stage switch; second-stage switch j ejects to
// endpoints j*r .. j*r+r-1. Every point-to-point path is exactly 3 links
// and a broadcast uses 1 + r + r*r links, delivered to every endpoint at
// depth 3 (the tree is perfectly balanced, so every dD is zero).
//
// The paper provisions four such butterflies selected round-robin purely
// for bandwidth; because network contention is not modelled (Section 4.3),
// the replicas are unobservable and a single butterfly token domain is
// constructed (see DESIGN.md, substitutions).
func Butterfly(radix int) (*Topology, error) {
	if radix < 2 {
		return nil, fmt.Errorf("topology: butterfly radix must be >= 2, got %d", radix)
	}
	n := radix * radix
	t := &Topology{
		name:     fmt.Sprintf("butterfly-r%d", radix),
		n:        n,
		switches: make([]Switch, 2*radix),
		epOut:    make([]LinkID, n),
		epIn:     make([]LinkID, n),
	}
	for i := range t.switches {
		t.switches[i].ID = i
	}
	// Stage-0 switch for endpoint group g is switch g; stage-1 switch j is
	// switch radix+j.
	stage0 := func(g int) int { return g }
	stage1 := func(j int) int { return radix + j }

	// Injection links: endpoint -> its stage-0 switch.
	for ep := 0; ep < n; ep++ {
		t.epOut[ep] = t.addLink(Vertex{KindEndpoint, ep}, Vertex{KindSwitch, stage0(ep / radix)}, 1)
	}
	// Middle links: each stage-0 switch to each stage-1 switch.
	mid := make([][]LinkID, radix)
	for a := 0; a < radix; a++ {
		mid[a] = make([]LinkID, radix)
		for j := 0; j < radix; j++ {
			mid[a][j] = t.addLink(Vertex{KindSwitch, stage0(a)}, Vertex{KindSwitch, stage1(j)}, 1)
		}
	}
	// Ejection links: stage-1 switch j to endpoints j*radix..j*radix+radix-1.
	for ep := 0; ep < n; ep++ {
		t.epIn[ep] = t.addLink(Vertex{KindSwitch, stage1(ep / radix)}, Vertex{KindEndpoint, ep}, 1)
	}

	// Broadcast trees: source -> stage0 -> all stage1 -> all endpoints.
	t.trees = make([]*BroadcastTree, n)
	for src := 0; src < n; src++ {
		root := &treeNode{vertex: Vertex{KindEndpoint, src}, inLink: -1}
		s0 := &treeNode{vertex: Vertex{KindSwitch, stage0(src / radix)}, depth: 1, inLink: t.epOut[src]}
		root.children = append(root.children, s0)
		for j := 0; j < radix; j++ {
			s1 := &treeNode{vertex: Vertex{KindSwitch, stage1(j)}, depth: 2, inLink: mid[src/radix][j]}
			s0.children = append(s0.children, s1)
			for k := 0; k < radix; k++ {
				ep := j*radix + k
				leaf := &treeNode{vertex: Vertex{KindEndpoint, ep}, depth: 3, inLink: t.epIn[ep]}
				s1.children = append(s1.children, leaf)
			}
		}
		t.trees[src] = t.finishTree(src, root)
	}
	t.computeHops()
	return t, nil
}

// MustButterfly is Butterfly but panics on error; for tests and examples.
func MustButterfly(radix int) *Topology {
	t, err := Butterfly(radix)
	if err != nil {
		panic(err)
	}
	return t
}
