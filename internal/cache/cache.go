// Package cache models the unified level-two cache of each node: 4 MByte,
// 4-way set associative, 64-byte blocks in the paper's target system, with
// true LRU replacement and MSI stable states. Transient (in-flight) states
// live in the protocol controllers' MSHRs, not here.
package cache

import (
	"fmt"

	"tsnoop/internal/coherence"
)

// State is a MOSI stable state.
type State int

// States. The paper's evaluated protocols are MSI; the Owned state is the
// MOESI extension discussed in Section 3 and implemented by tssnoop's
// UseOwnedState option (the E state's shared-signal requirement is what
// the paper recommends forgoing, so it is not modelled).
const (
	Invalid State = iota
	Shared
	Owned
	Modified
)

// Dirty reports whether a line in this state must be written back on
// eviction.
func (s State) Dirty() bool { return s == Modified || s == Owned }

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Line is one cache line's bookkeeping.
type line struct {
	block   coherence.Block
	state   State
	version uint64 // data value surrogate for the coherence checker
	lastUse uint64 // LRU clock
}

// Cache is a set-associative cache indexed by block address.
type Cache struct {
	sets    [][]line
	setMask uint64
	ways    int
	clock   uint64

	// Size bookkeeping for reports.
	blockBytes int
	sizeBytes  int
}

// Config describes a cache geometry.
type Config struct {
	SizeBytes  int // total capacity
	Ways       int
	BlockBytes int
}

// DefaultConfig is the paper's L2: 4 MByte, 4-way, 64-byte blocks.
func DefaultConfig() Config {
	return Config{SizeBytes: 4 << 20, Ways: 4, BlockBytes: 64}
}

// New constructs a cache. Geometry must be a power-of-two number of sets.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	nLines := cfg.SizeBytes / cfg.BlockBytes
	if nLines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", nLines, cfg.Ways)
	}
	nSets := nLines / cfg.Ways
	if nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", nSets)
	}
	c := &Cache{
		sets:       make([][]line, nSets),
		setMask:    uint64(nSets - 1),
		ways:       cfg.Ways,
		blockBytes: cfg.BlockBytes,
		sizeBytes:  cfg.SizeBytes,
	}
	// One contiguous backing array for every line, sliced per set: a
	// 4 MB cache is 16K sets, and a slice allocation per set dominated
	// whole-simulation allocation profiles (and scattered the lines
	// across the heap).
	lines := make([]line, nLines)
	for i := range c.sets {
		c.sets[i] = lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() int { return c.blockBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(b coherence.Block) []line { return c.sets[uint64(b)&c.setMask] }

func (c *Cache) find(b coherence.Block) *line {
	set := c.set(b)
	for i := range set {
		if set[i].state != Invalid && set[i].block == b {
			return &set[i]
		}
	}
	return nil
}

// Lookup returns the state of block b (Invalid when absent) and its
// version, updating LRU on a valid hit.
func (c *Cache) Lookup(b coherence.Block) (State, uint64) {
	if l := c.find(b); l != nil {
		c.clock++
		l.lastUse = c.clock
		return l.state, l.version
	}
	return Invalid, 0
}

// Peek is Lookup without the LRU side effect.
func (c *Cache) Peek(b coherence.Block) (State, uint64) {
	if l := c.find(b); l != nil {
		return l.state, l.version
	}
	return Invalid, 0
}

// SetState transitions a resident block to a new state (Invalid drops it).
// It panics when the block is absent: protocol controllers must never
// downgrade a line they do not hold.
func (c *Cache) SetState(b coherence.Block, s State) {
	l := c.find(b)
	if l == nil {
		panic(fmt.Sprintf("cache: SetState(%x) on absent block", b))
	}
	l.state = s
}

// SetVersion updates a resident block's version (a completed store).
func (c *Cache) SetVersion(b coherence.Block, v uint64) {
	l := c.find(b)
	if l == nil {
		panic(fmt.Sprintf("cache: SetVersion(%x) on absent block", b))
	}
	l.version = v
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Block   coherence.Block
	State   State
	Version uint64
}

// Insert places block b with the given state and version, evicting the LRU
// line of the set if necessary. It returns the evicted line, if any.
// Inserting an already-resident block updates it in place.
func (c *Cache) Insert(b coherence.Block, s State, version uint64) (Victim, bool) {
	if s == Invalid {
		panic("cache: Insert with Invalid state")
	}
	c.clock++
	if l := c.find(b); l != nil {
		l.state = s
		l.version = version
		l.lastUse = c.clock
		return Victim{}, false
	}
	set := c.set(b)
	// Prefer an invalid way; otherwise evict true-LRU.
	victim := -1
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			break
		}
	}
	evicted := Victim{}
	has := false
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		evicted = Victim{Block: set[victim].block, State: set[victim].state, Version: set[victim].version}
		has = true
	}
	set[victim] = line{block: b, state: s, version: version, lastUse: c.clock}
	return evicted, has
}

// CountState returns how many resident lines are in state s (test support
// and end-of-run invariant checks).
func (c *Cache) CountState(s State) int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.state == s {
				n++
			}
		}
	}
	return n
}

// ForEach invokes fn for every valid line.
func (c *Cache) ForEach(fn func(b coherence.Block, s State, version uint64)) {
	for _, set := range c.sets {
		for _, l := range set {
			if l.state != Invalid {
				fn(l.block, l.state, l.version)
			}
		}
	}
}
