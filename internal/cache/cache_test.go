package cache

import (
	"testing"
	"testing/quick"

	"tsnoop/internal/coherence"
)

func small() *Cache {
	// 8 sets x 2 ways x 64B = 1 KiB.
	return MustNew(Config{SizeBytes: 1024, Ways: 2, BlockBytes: 64})
}

func TestGeometry(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.Sets() != 16384 {
		t.Errorf("sets = %d, want 16384", c.Sets())
	}
	if c.Ways() != 4 {
		t.Errorf("ways = %d", c.Ways())
	}
	if c.BlockBytes() != 64 {
		t.Errorf("block = %d", c.BlockBytes())
	}
}

func TestBadGeometry(t *testing.T) {
	if _, err := New(Config{SizeBytes: 0, Ways: 4, BlockBytes: 64}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(Config{SizeBytes: 3 * 64, Ways: 2, BlockBytes: 64}); err == nil {
		t.Error("non-divisible lines accepted")
	}
	if _, err := New(Config{SizeBytes: 6 * 64, Ways: 2, BlockBytes: 64}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestInsertLookup(t *testing.T) {
	c := small()
	if s, _ := c.Lookup(42); s != Invalid {
		t.Fatalf("empty lookup = %v", s)
	}
	if _, ev := c.Insert(42, Shared, 7); ev {
		t.Fatal("insert into empty set evicted")
	}
	s, v := c.Lookup(42)
	if s != Shared || v != 7 {
		t.Fatalf("lookup = %v/%d, want S/7", s, v)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := small()
	c.Insert(42, Shared, 1)
	if _, ev := c.Insert(42, Modified, 2); ev {
		t.Fatal("in-place update evicted")
	}
	s, v := c.Peek(42)
	if s != Modified || v != 2 {
		t.Fatalf("peek = %v/%d", s, v)
	}
	if c.CountState(Modified) != 1 || c.CountState(Shared) != 0 {
		t.Fatal("duplicate lines after in-place insert")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways; blocks 0, 8, 16 map to set 0
	c.Insert(0, Shared, 0)
	c.Insert(8, Shared, 0)
	c.Lookup(0) // touch 0: 8 becomes LRU
	v, ev := c.Insert(16, Modified, 3)
	if !ev {
		t.Fatal("no eviction from full set")
	}
	if v.Block != 8 || v.State != Shared {
		t.Fatalf("evicted %+v, want block 8 S", v)
	}
	if s, _ := c.Peek(0); s != Shared {
		t.Fatal("block 0 lost")
	}
	if s, _ := c.Peek(8); s != Invalid {
		t.Fatal("block 8 still present")
	}
}

func TestEvictionReportsVersion(t *testing.T) {
	c := small()
	c.Insert(0, Modified, 9)
	c.Insert(8, Shared, 1)
	c.Insert(16, Shared, 2) // evicts LRU = 0
	v, ev := c.Insert(24, Shared, 3)
	_ = v
	_ = ev
	// First eviction was block 0 with version 9; verify via CountState
	// bookkeeping that M count dropped.
	if c.CountState(Modified) != 0 {
		t.Fatal("modified line survived eviction accounting")
	}
}

func TestSetStateAndVersion(t *testing.T) {
	c := small()
	c.Insert(5, Modified, 1)
	c.SetState(5, Shared)
	if s, _ := c.Peek(5); s != Shared {
		t.Fatal("SetState failed")
	}
	c.SetVersion(5, 10)
	if _, v := c.Peek(5); v != 10 {
		t.Fatal("SetVersion failed")
	}
	c.SetState(5, Invalid)
	if s, _ := c.Peek(5); s != Invalid {
		t.Fatal("invalidate failed")
	}
}

func TestSetStateAbsentPanics(t *testing.T) {
	c := small()
	defer func() {
		if recover() == nil {
			t.Fatal("SetState on absent block did not panic")
		}
	}()
	c.SetState(5, Shared)
}

func TestInsertInvalidPanics(t *testing.T) {
	c := small()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert Invalid did not panic")
		}
	}()
	c.Insert(1, Invalid, 0)
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := small()
	c.Insert(0, Shared, 0)
	c.Insert(8, Shared, 0)
	c.Peek(0) // must NOT refresh block 0
	v, ev := c.Insert(16, Shared, 0)
	if !ev || v.Block != 0 {
		t.Fatalf("evicted %+v, want block 0 (Peek refreshed LRU?)", v)
	}
}

func TestForEach(t *testing.T) {
	c := small()
	c.Insert(1, Shared, 1)
	c.Insert(2, Modified, 2)
	got := map[coherence.Block]State{}
	c.ForEach(func(b coherence.Block, s State, v uint64) { got[b] = s })
	if len(got) != 2 || got[1] != Shared || got[2] != Modified {
		t.Fatalf("ForEach = %v", got)
	}
}

// Property: a cache never holds two lines for the same block, and resident
// count never exceeds capacity.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := small()
		for _, o := range ops {
			b := coherence.Block(o % 64)
			switch o % 3 {
			case 0:
				c.Insert(b, Shared, uint64(o))
			case 1:
				c.Insert(b, Modified, uint64(o))
			case 2:
				if s, _ := c.Lookup(b); s != Invalid {
					c.SetState(b, Invalid)
				}
			}
			seen := map[coherence.Block]int{}
			total := 0
			c.ForEach(func(b coherence.Block, s State, v uint64) {
				seen[b]++
				total++
			})
			for b, n := range seen {
				if n > 1 {
					_ = b
					return false
				}
			}
			if total > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
}

func TestOwnedState(t *testing.T) {
	c := small()
	c.Insert(3, Owned, 5)
	if s, v := c.Peek(3); s != Owned || v != 5 {
		t.Fatalf("peek = %v/%d", s, v)
	}
	if Owned.String() != "O" {
		t.Fatal("Owned string")
	}
	if !Owned.Dirty() || !Modified.Dirty() {
		t.Fatal("O and M must be dirty")
	}
	if Shared.Dirty() || Invalid.Dirty() {
		t.Fatal("S and I must be clean")
	}
	if c.CountState(Owned) != 1 {
		t.Fatal("CountState(Owned)")
	}
}
