// Package coherence defines the vocabulary shared by every cache
// coherence protocol in this repository — processor operations, block
// addresses, transaction kinds, home mapping — plus the runtime coherence
// checker (Oracle) used by the test suites.
package coherence

import (
	"fmt"

	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
)

// Op is a processor memory operation.
type Op int

// Operations.
const (
	Load Op = iota
	Store
)

func (o Op) String() string {
	if o == Load {
		return "load"
	}
	return "store"
}

// Block is a cache-block address (byte address >> block-offset bits).
type Block uint64

// TxnKind enumerates coherence transaction kinds. The paper's protocols
// "support several transactions (e.g., get an S copy, get an M copy,
// writeback an M copy)".
type TxnKind int

// Transaction kinds.
const (
	GetS TxnKind = iota // get a shared (read) copy
	GetX                // get an exclusive (writable) copy
	PutX                // write back an owned copy
)

func (k TxnKind) String() string {
	switch k {
	case GetS:
		return "GETS"
	case GetX:
		return "GETX"
	case PutX:
		return "PUTX"
	default:
		return fmt.Sprintf("TxnKind(%d)", int(k))
	}
}

// HomeOf maps a block to its home memory controller: low-order block
// interleaving across the n nodes, as in the target system where "each
// node contains ... a memory controller for part of the globally shared
// memory".
func HomeOf(b Block, n int) int { return int(b % Block(n)) }

// AccessResult describes a completed processor memory operation.
type AccessResult struct {
	// Hit reports an L2 hit (no coherence transaction).
	Hit bool
	// Kind classifies the miss supplier (valid when !Hit).
	Kind stats.MissKind
	// Latency is the end-to-end L2 access latency.
	Latency sim.Time
	// Version is the block version observed (loads) or created (stores);
	// consumed by the Oracle.
	Version uint64
}

// Protocol is the interface every coherence protocol implements. A
// Protocol owns its caches, memory controllers and interconnect use; the
// processor models drive it with Access calls.
type Protocol interface {
	// Name identifies the protocol ("TS-Snoop", "DirClassic", "DirOpt").
	Name() string
	// Access performs op on block for the processor at node, invoking
	// done exactly once when the operation completes. Each node issues at
	// most one Access at a time (blocking processors).
	Access(node int, op Op, block Block, done func(AccessResult))
	// Pending reports the number of in-flight operations; the harness
	// drains to zero before reading final statistics.
	Pending() int
}

// Oracle checks coherence at runtime: block versions are assigned in
// write-serialization order, so the versions each processor observes for a
// given block must be non-decreasing ("writes to the same location are
// seen in the same order by everybody"). A violation reports through the
// Violation callback (tests install t.Fatalf).
type Oracle struct {
	nextVersion map[Block]uint64
	lastSeen    map[oracleKey]uint64
	// Violation is invoked on a coherence violation; when nil, the Oracle
	// panics instead.
	Violation func(cpu int, b Block, saw, last uint64)
	observes  int64
}

type oracleKey struct {
	cpu int
	b   Block
}

// NewOracle returns an empty checker.
func NewOracle() *Oracle {
	return &Oracle{
		nextVersion: make(map[Block]uint64),
		lastSeen:    make(map[oracleKey]uint64),
	}
}

// WriteVersion allocates the next version of b, in the order the protocol
// serializes stores.
func (o *Oracle) WriteVersion(b Block) uint64 {
	o.nextVersion[b]++
	return o.nextVersion[b]
}

// Observe records that cpu saw version v of block b and checks
// monotonicity.
func (o *Oracle) Observe(cpu int, b Block, v uint64) {
	o.observes++
	key := oracleKey{cpu, b}
	if last, ok := o.lastSeen[key]; ok && v < last {
		if o.Violation != nil {
			o.Violation(cpu, b, v, last)
			return
		}
		panic(fmt.Sprintf("coherence: cpu %d saw block %x regress from version %d to %d", cpu, b, last, v))
	}
	o.lastSeen[key] = v
}

// Observations returns the number of Observe calls (test sanity checks).
func (o *Oracle) Observations() int64 { return o.observes }
