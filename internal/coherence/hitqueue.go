package coherence

import "tsnoop/internal/sim"

// HitQueue buffers a node's in-flight L2-hit completions. Every hit
// shares the protocol's one hit latency, so completions deliver in
// strict FIFO order (see sim.FIFO); protocols Push the completion and
// schedule DeliverHit as a typed kernel event, replacing a closure per
// hit. Both coherence protocol families use this helper, keeping the
// FIFO-matches-event-order invariant in one place.
type HitQueue struct {
	q sim.FIFO[pendingHit]
}

type pendingHit struct {
	done   func(AccessResult)
	result AccessResult
}

// Push enqueues one completion.
func (h *HitQueue) Push(done func(AccessResult), result AccessResult) {
	h.q.Push(pendingHit{done: done, result: result})
}

// DeliverHit is the typed kernel event (sim.EventFn) completing the
// oldest queued hit: a0 is the *HitQueue.
func DeliverHit(a0, a1 any, i0 int64) {
	p := a0.(*HitQueue).q.Pop()
	p.done(p.result)
}
