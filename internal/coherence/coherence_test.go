package coherence

import (
	"testing"
)

func TestHomeOf(t *testing.T) {
	for b := Block(0); b < 64; b++ {
		h := HomeOf(b, 16)
		if h != int(b%16) {
			t.Fatalf("HomeOf(%d,16) = %d", b, h)
		}
	}
}

func TestOracleVersionsMonotonic(t *testing.T) {
	o := NewOracle()
	if v := o.WriteVersion(1); v != 1 {
		t.Fatalf("first version = %d", v)
	}
	if v := o.WriteVersion(1); v != 2 {
		t.Fatalf("second version = %d", v)
	}
	if v := o.WriteVersion(2); v != 1 {
		t.Fatalf("other block version = %d", v)
	}
	o.Observe(0, 1, 1)
	o.Observe(0, 1, 2)
	o.Observe(1, 1, 2) // other cpu
	if o.Observations() != 3 {
		t.Fatalf("observations = %d", o.Observations())
	}
}

func TestOracleDetectsRegression(t *testing.T) {
	o := NewOracle()
	var violated bool
	o.Violation = func(cpu int, b Block, saw, last uint64) { violated = true }
	o.WriteVersion(7)
	o.WriteVersion(7)
	o.Observe(3, 7, 2)
	o.Observe(3, 7, 1) // regression
	if !violated {
		t.Fatal("regression not reported")
	}
}

func TestOracleSameVersionOK(t *testing.T) {
	o := NewOracle()
	o.Violation = func(cpu int, b Block, saw, last uint64) {
		t.Fatal("re-observing the same version must be legal")
	}
	o.Observe(0, 5, 3)
	o.Observe(0, 5, 3)
}

func TestOraclePanicsWithoutHandler(t *testing.T) {
	o := NewOracle()
	o.Observe(0, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on regression without handler")
		}
	}()
	o.Observe(0, 1, 4)
}

func TestStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("op strings")
	}
	if GetS.String() != "GETS" || GetX.String() != "GETX" || PutX.String() != "PUTX" {
		t.Fatal("txn strings")
	}
}
