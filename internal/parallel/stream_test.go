package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func collect2(t *testing.T, workers, n int, fn func(int) (int, error)) ([]int, error) {
	t.Helper()
	var out []int
	for v, err := range Stream(context.Background(), workers, n, fn) {
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
	return out, nil
}

func TestStreamMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := Map(1, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := collect2(t, workers, 50, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestStreamYieldsInIndexOrder(t *testing.T) {
	// Later indexes finish first; the stream must still yield in order.
	got, err := collect2(t, 8, 20, func(i int) (int, error) {
		time.Sleep(time.Duration(20-i) * time.Millisecond / 4)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestStreamLowestErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		got, err := collect2(t, workers, 30, func(i int) (int, error) {
			calls.Add(1)
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("%w at %d", boom, i)
			}
			return i, nil
		})
		if !errors.Is(err, boom) || err.Error() != "boom at 3" {
			t.Fatalf("workers=%d: err = %v, want boom at 3", workers, err)
		}
		if len(got) != 3 {
			t.Fatalf("workers=%d: yielded %v before the error", workers, got)
		}
	}
}

func TestStreamEarlyBreakStopsClaiming(t *testing.T) {
	var calls atomic.Int64
	seen := 0
	for v, err := range Stream(context.Background(), 2, 1000, func(i int) (int, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return i, nil
	}) {
		if err != nil {
			t.Fatal(err)
		}
		_ = v
		if seen++; seen == 5 {
			break
		}
	}
	// In-flight jobs may finish, but the break must stop the claims long
	// before all 1000 run.
	if c := calls.Load(); c >= 1000 {
		t.Fatalf("early break still ran all %d jobs", c)
	}
}

func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var yielded int
	var lastErr error
	for v, err := range Stream(ctx, 4, 100, func(i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	}) {
		if err != nil {
			lastErr = err
			break
		}
		_ = v
		if yielded++; yielded == 3 {
			cancel()
		}
	}
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", lastErr)
	}
}

func TestStreamPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var lastErr error
		var ran atomic.Int64
		for _, err := range Stream(ctx, workers, 10, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		}) {
			lastErr = err
		}
		if !errors.Is(lastErr, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, lastErr)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	got, err := collect2(t, 4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %v", got, err)
	}
}
