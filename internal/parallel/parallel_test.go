package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 16} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (string, error) { return "x", nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var counts [200]atomic.Int32
	if _, err := Map(8, len(counts), func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Fail indexes 7 and 3; the reported error must be index 3's no matter
	// how the goroutines interleave.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(4, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Fatalf("trial %d: err = %v, want boom 3", trial, err)
		}
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	ran := 0
	_, err := Map(1, 10, func(i int) (int, error) {
		ran++
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || ran != 3 {
		t.Fatalf("serial path ran %d jobs (err %v), want fail-fast at 3", ran, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	if _, err := Map(workers, 50, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}
