// Package parallel provides the deterministic worker-pool primitive
// behind the experiment engine: jobs are indexed, fan out across a
// bounded set of goroutines, and results are collected in index order, so
// a parallel run renders byte-identically to a serial one. Simulations
// are safe to fan out because every job builds its own kernel, RNG, and
// system; the pool only supplies scheduling and ordered collection.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values below 1 mean one worker
// per CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// Map evaluates fn(0) .. fn(n-1) across at most workers goroutines and
// returns the results in index order. workers below 1 uses one worker per
// CPU; one worker degenerates to a plain serial loop.
//
// On failure Map returns the error from the lowest failing index, and
// jobs not yet claimed are skipped. The reported error is still
// independent of goroutine scheduling: indexes are claimed in increasing
// order, so by the time any job fails, every lower-indexed job — in
// particular the lowest one that would fail — has already started and
// will record its error before Map returns.
func Map[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers == 1 {
		for i := range out {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
