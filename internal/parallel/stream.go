package parallel

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"
)

// Stream evaluates fn(0) .. fn(n-1) across at most workers goroutines and
// yields the results in index order as they become ready, so a consumer
// sees live progress while later jobs are still running. It is the
// streaming counterpart of Map and shares its determinism contract: the
// yielded sequence is independent of the worker count and of goroutine
// scheduling.
//
// Yielding stops after the first (lowest-index) error — indexes are
// claimed in increasing order, so by the time any job fails, every
// lower-indexed job has already started and will deliver its own result
// first. Breaking out of the loop, or cancelling ctx, stops new jobs
// from being claimed; jobs already in flight run to completion (a
// simulation cannot be interrupted mid-event) before Stream returns
// control. On cancellation the iterator yields one final (zero,
// ctx.Err()) pair for any job whose result it no longer has.
func Stream[T any](ctx context.Context, workers, n int, fn func(int) (T, error)) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		if n <= 0 {
			return
		}
		if ctx == nil {
			ctx = context.Background()
		}
		if workers = Workers(workers); workers > n {
			workers = n
		}
		if workers == 1 {
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					var zero T
					yield(zero, err)
					return
				}
				v, err := fn(i)
				if !yield(v, err) || err != nil {
					return
				}
			}
			return
		}

		var (
			mu   sync.Mutex
			cond = sync.NewCond(&mu)
			vals = make([]T, n)
			errs = make([]error, n)
			done = make([]bool, n)
			next atomic.Int64
			stop atomic.Bool
		)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for !stop.Load() && ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					v, err := fn(i)
					mu.Lock()
					vals[i], errs[i], done[i] = v, err, true
					if err != nil {
						stop.Store(true)
					}
					cond.Broadcast()
					mu.Unlock()
				}
			}()
		}
		// The consumer blocks on cond; wake it when the context fires.
		finished := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				mu.Lock()
				cond.Broadcast()
				mu.Unlock()
			case <-finished:
			}
		}()
		defer func() {
			stop.Store(true)
			close(finished)
			wg.Wait()
		}()

		for i := 0; i < n; i++ {
			mu.Lock()
			for !done[i] && ctx.Err() == nil {
				cond.Wait()
			}
			ready := done[i]
			v, err := vals[i], errs[i]
			mu.Unlock()
			if !ready {
				var zero T
				yield(zero, ctx.Err())
				return
			}
			if !yield(v, err) || err != nil {
				return
			}
		}
	}
}
