package processor

import (
	"testing"

	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/workload"
)

// fakeProto completes every access after a fixed latency, alternating
// hits and misses.
type fakeProto struct {
	k     *sim.Kernel
	lat   sim.Duration
	calls int
}

func (f *fakeProto) Name() string { return "fake" }
func (f *fakeProto) Pending() int { return 0 }
func (f *fakeProto) Access(node int, op coherence.Op, b coherence.Block, done func(coherence.AccessResult)) {
	f.calls++
	hit := f.calls%2 == 0
	f.k.After(f.lat, func() {
		done(coherence.AccessResult{Hit: hit, Latency: f.lat})
	})
}

func TestProcessorExecutesQuota(t *testing.T) {
	k := sim.NewKernel()
	run := &stats.Run{}
	proto := &fakeProto{k: k, lat: 100 * sim.Nanosecond}
	gen := workload.Uniform(1024, 0.3, 20, 1)
	finished := -1
	p := New(k, 0, proto, gen, timing.Default(), sim.NewRand(1), run, 50, func(id int) { finished = id })
	p.Start()
	k.Run()
	if !p.Finished() || p.Executed() != 50 {
		t.Fatalf("finished=%v executed=%d", p.Finished(), p.Executed())
	}
	if finished != 0 {
		t.Fatalf("onFinish got %d", finished)
	}
	if proto.calls != 50 {
		t.Fatalf("protocol saw %d accesses", proto.calls)
	}
	if run.MemOps != 50 {
		t.Fatalf("run.MemOps = %d", run.MemOps)
	}
	if run.L2Hits != 25 {
		t.Fatalf("run.L2Hits = %d, want 25", run.L2Hits)
	}
	if run.Instructions == 0 {
		t.Fatal("no instructions accounted")
	}
}

func TestProcessorTimingIncludesThinkAndLatency(t *testing.T) {
	// With think time T instructions and access latency L, the makespan is
	// at least quota * (T_min*instr + L).
	k := sim.NewKernel()
	run := &stats.Run{}
	lat := 50 * sim.Nanosecond
	proto := &fakeProto{k: k, lat: lat}
	gen := workload.Uniform(1024, 0, 40, 1)
	p := New(k, 0, proto, gen, timing.Default(), sim.NewRand(2), run, 20, nil)
	p.Start()
	k.Run()
	min := sim.Time(20) * (1*timing.Default().InstrTime + lat)
	if p.FinishedAt < min {
		t.Fatalf("finished at %v, faster than physically possible %v", p.FinishedAt, min)
	}
	// Sanity upper bound: mean think 40 instr = 10ns each; generous cap.
	max := sim.Time(20) * (200*timing.Default().InstrTime + lat + 100*sim.Nanosecond)
	if p.FinishedAt > max {
		t.Fatalf("finished at %v, beyond plausible bound %v", p.FinishedAt, max)
	}
}

func TestProcessorZeroQuotaFinishesImmediately(t *testing.T) {
	k := sim.NewKernel()
	run := &stats.Run{}
	proto := &fakeProto{k: k, lat: sim.Nanosecond}
	gen := workload.Uniform(16, 0, 10, 1)
	called := false
	p := New(k, 0, proto, gen, timing.Default(), sim.NewRand(3), run, 0, func(int) { called = true })
	p.Start()
	if !p.Finished() || !called {
		t.Fatal("zero-quota processor did not finish synchronously")
	}
}
