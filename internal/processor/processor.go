// Package processor models the paper's processor assumption: a core plus
// level-one caches that would complete four billion instructions per
// second with a perfect memory system (250 ps/instruction), issuing
// blocking requests to the level-two cache (Section 4.2/4.3).
//
// The workload generator plays the role of Simics: it produces the L2
// reference stream (the L1 filter is folded into the generator's think
// times). The processor interleaves think instructions with blocking L2
// accesses until it has executed its quota of memory operations.
package processor

import (
	"tsnoop/internal/coherence"
	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/workload"
)

// Processor drives one node's memory operations.
type Processor struct {
	k      *sim.Kernel
	id     int
	proto  coherence.Protocol
	gen    workload.Generator
	params timing.Params
	rng    *sim.Rand
	run    *stats.Run

	quota    int
	executed int
	finished bool
	// FinishedAt is the simulated time the quota completed.
	FinishedAt sim.Time

	onFinish func(id int)

	// pending is the access issued by the next issue event, and doneFn
	// the completion callback handed to the protocol — both stored on the
	// processor so the per-operation think/issue/complete cycle schedules
	// only typed events and allocates nothing.
	pending workload.Access
	doneFn  func(coherence.AccessResult)

	// probe is the optional telemetry hook (nil = one branch per
	// access); issuedAt timestamps the in-flight access for its
	// lifecycle span.
	probe    *obs.Probe
	issuedAt sim.Time
}

// New creates a processor for node id executing quota memory operations.
func New(k *sim.Kernel, id int, proto coherence.Protocol, gen workload.Generator,
	params timing.Params, rng *sim.Rand, run *stats.Run, quota int, onFinish func(int)) *Processor {
	p := &Processor{
		k: k, id: id, proto: proto, gen: gen,
		params: params, rng: rng, run: run,
		quota: quota, onFinish: onFinish,
	}
	p.doneFn = p.accessDone
	return p
}

// SetProbe attaches (or, with nil, detaches) the telemetry probe.
func (p *Processor) SetProbe(pr *obs.Probe) { p.probe = pr }

// Start begins execution at the current simulated time.
func (p *Processor) Start() { p.step() }

// Finished reports whether the quota is done.
func (p *Processor) Finished() bool { return p.finished }

// Executed returns completed memory operations.
func (p *Processor) Executed() int { return p.executed }

func (p *Processor) step() {
	if p.executed >= p.quota {
		p.finished = true
		p.FinishedAt = p.k.Now()
		if p.onFinish != nil {
			p.onFinish(p.id)
		}
		return
	}
	p.pending = p.gen.Next(p.id, p.rng)
	think := sim.Duration(p.pending.Think) * p.params.InstrTime
	p.run.Instructions += int64(p.pending.Think)
	p.k.AfterCall(think, issueAccess, p, nil, 0)
}

// issueAccess is the typed kernel event ending a think period: a0 is the
// Processor, which issues its pending memory operation.
func issueAccess(a0, a1 any, i0 int64) {
	p := a0.(*Processor)
	p.run.MemOps++
	p.issuedAt = p.k.Now()
	p.proto.Access(p.id, p.pending.Op, p.pending.Block, p.doneFn)
}

// accessDone is the completion callback for every access this processor
// issues (stored once in doneFn so issuing allocates no closure).
func (p *Processor) accessDone(r coherence.AccessResult) {
	if r.Hit {
		p.run.L2Hits++
	}
	if pr := p.probe; pr != nil {
		now := p.k.Now()
		pr.Span(obs.SpanAccess, int32(p.id), obs.LaneCPU, int32(p.id), 0,
			int64(p.issuedAt), int64(now-p.issuedAt))
	}
	p.executed++
	p.step()
}
