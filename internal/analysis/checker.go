package analysis

import (
	"fmt"
	"io"
	"sort"
)

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
	}
	sortDiags(pkg, diags)
	return diags, nil
}

// Run loads the packages matching the patterns and applies every
// analyzer to every package, returning all diagnostics in (package,
// position) order.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, *Loader, error) {
	l := &Loader{Dir: dir}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, diags...)
		}
	}
	return all, l, nil
}

// Print writes diagnostics in the standard file:line:col form using the
// loader's file set.
func Print(w io.Writer, l *Loader, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", l.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

func sortDiags(pkg *Package, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
