// Package analysis is a self-contained static-analysis framework
// modelled on golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast, go/types and the go command (this module
// vendors no third-party code). It exists to enforce the repo's
// load-bearing simulator invariants at "compile time" — the analyzers
// in the sibling packages (allocfree, pooldiscipline, determinism,
// canonicalspec) encode rules that PR 5 established but previously
// guarded only at runtime via allocation budgets and golden outputs.
//
// The API mirrors go/analysis deliberately: an Analyzer holds a name,
// a doc string and a Run function; Run receives a Pass with the
// package's syntax, type information and a Report callback. Should the
// real golang.org/x/tools dependency ever become available, the
// analyzers port over by changing one import line.
//
// Packages are loaded from source: `go list -json -deps` supplies the
// file sets and import graph (build tags and vendoring already
// resolved), and go/types checks every package — including standard
// library dependencies — from source in dependency order. See Loader.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the returned error aborts the whole run (reserved for
	// analyzer bugs, not findings).
	Run func(*Pass) error
}

// Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report delivers one diagnostic.
	Report func(Diagnostic)

	lines map[*token.File]lineComments
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// lineComments maps a line number to the comment text present on it.
type lineComments map[int]string

// CommentOn returns the comment text on the given line of pos's file
// ("" when none). Analyzers use it for suppression markers such as
// //pool:owned: a marker counts when it sits on the flagged line or on
// the line directly above it (use MarkerAt for that convention).
func (p *Pass) CommentOn(pos token.Pos, line int) string {
	tf := p.Fset.File(pos)
	if tf == nil {
		return ""
	}
	if p.lines == nil {
		p.lines = make(map[*token.File]lineComments)
	}
	lc, ok := p.lines[tf]
	if !ok {
		lc = make(lineComments)
		for _, f := range p.Files {
			if p.Fset.File(f.Pos()) != tf {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					l := p.Fset.Position(c.Pos()).Line
					lc[l] += c.Text
				}
			}
		}
		p.lines[tf] = lc
	}
	return lc[line]
}

// MarkerAt reports whether marker (e.g. "//pool:owned") appears on
// pos's line or the line immediately above — the two placements the
// suppression convention accepts.
func (p *Pass) MarkerAt(pos token.Pos, marker string) bool {
	line := p.Fset.Position(pos).Line
	return containsMarker(p.CommentOn(pos, line), marker) ||
		containsMarker(p.CommentOn(pos, line-1), marker)
}

func containsMarker(comment, marker string) bool {
	for i := 0; i+len(marker) <= len(comment); i++ {
		if comment[i:i+len(marker)] == marker {
			return true
		}
	}
	return false
}
