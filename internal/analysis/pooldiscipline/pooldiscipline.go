// Package pooldiscipline statically enforces the sim.Pool free-list
// contract that keeps the simulator's steady state allocation-free:
//
//   - Every pooled element type that a package Gets must also be Put
//     somewhere in the same package. A Get with no matching Put is a
//     leak: the free list never refills and every "recycled" object is
//     a fresh allocation. Deliberate ownership hand-offs (another
//     package releases the object, or a refcount defers the release)
//     are documented with a //pool:owned marker on the Get.
//   - A pooled pointer must not be stored into a long-lived structure —
//     a struct field, slice/array/map element, or an append — without a
//     //pool:owned marker: once a recycled pointer escapes into
//     retained state, a later Put zeroes memory someone still holds,
//     the classic use-after-free of free-list code. (Hot paths instead
//     copy fields out and release the pointer immediately; see
//     tsnet.bufEntry.)
//
// The marker goes on the flagged line or the line directly above it.
package pooldiscipline

import (
	"go/ast"
	"go/types"

	"tsnoop/internal/analysis"
)

// Analyzer is the pooldiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "pooldiscipline",
	Doc:  "require sim.Pool Get/Put balance per package and //pool:owned markers on pooled pointers stored into long-lived structures",
	Run:  run,
}

// Marker is the suppression comment documenting a deliberate ownership
// hand-off of a pooled object.
const Marker = "//pool:owned"

const simPath = "tsnoop/internal/sim"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == simPath {
		return nil // the Pool implementation itself handles raw free lists
	}

	type getSite struct {
		pos  ast.Expr
		elem types.Type
	}
	var gets []getSite
	puts := make(map[string]bool)   // pooled element type string -> Put seen
	pooled := make(map[string]bool) // element type strings of every pool touched

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, elem, ok := poolMethod(pass, call)
			if !ok {
				return true
			}
			pooled[elem.String()] = true
			switch name {
			case "Get":
				gets = append(gets, getSite{pos: call, elem: elem})
			case "Put":
				puts[elem.String()] = true
			}
			return true
		})
	}

	for _, g := range gets {
		if !puts[g.elem.String()] && !pass.MarkerAt(g.pos.Pos(), Marker) {
			pass.Reportf(g.pos.Pos(),
				"sim.Pool[%s].Get with no matching Put in this package leaks the free list; Put the object back or document the hand-off with %s", g.elem, Marker)
		}
	}

	if len(pooled) == 0 {
		return nil
	}

	// Pointer-escape check: a *T with T pooled stored into retained
	// structure.
	isPooledPtr := func(e ast.Expr) (types.Type, bool) {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return nil, false
		}
		p, ok := tv.Type.Underlying().(*types.Pointer)
		if !ok {
			return nil, false
		}
		if pooled[p.Elem().String()] {
			return p.Elem(), true
		}
		return nil, false
	}
	report := func(n ast.Node, elem types.Type, how string) {
		if pass.MarkerAt(n.Pos(), Marker) {
			return
		}
		pass.Reportf(n.Pos(),
			"pooled *%s stored into a long-lived structure (%s); a later Put would zero memory this reference still sees — copy the fields out, or mark the hand-off with %s", elem, how, Marker)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // y, ok := m[k] and friends
					}
					elem, ok := isPooledPtr(n.Rhs[i])
					if !ok {
						continue
					}
					switch lhs.(type) {
					case *ast.SelectorExpr:
						report(n, elem, "struct field assignment")
					case *ast.IndexExpr:
						report(n, elem, "element assignment")
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
					if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "append" {
						for _, arg := range n.Args[1:] {
							if elem, ok := isPooledPtr(arg); ok {
								report(n, elem, "append")
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if elem, ok := isPooledPtr(v); ok {
						report(v, elem, "composite literal")
					}
				}
			}
			return true
		})
	}
	return nil
}

// poolMethod reports whether call invokes Get or Put on a sim.Pool
// instance, returning the method name and the pool's instantiated
// element type.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr) (string, types.Type, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	selec, ok := pass.Info.Selections[sel]
	if !ok {
		return "", nil, false
	}
	obj, ok := selec.Obj().(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != simPath {
		return "", nil, false
	}
	if obj.Name() != "Get" && obj.Name() != "Put" {
		return "", nil, false
	}
	recv := selec.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return "", nil, false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return "", nil, false
	}
	return obj.Name(), args.At(0), true
}
