package pooldiscipline_test

import (
	"testing"

	"tsnoop/internal/analysis/analysistest"
	"tsnoop/internal/analysis/pooldiscipline"
)

// TestPoolDiscipline covers the three fixture packages: leak (Get with
// no Put anywhere), handoff (the //pool:owned negative case proving the
// marker suppresses, on the same line and the line above), and store
// (balanced Get/Put with pooled pointers escaping into structures).
func TestPoolDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", pooldiscipline.Analyzer,
		"tsnoop/internal/leak",
		"tsnoop/internal/handoff",
		"tsnoop/internal/store",
	)
}
