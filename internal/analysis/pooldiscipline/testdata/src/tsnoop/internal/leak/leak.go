// Fixture for the pooldiscipline analyzer: a package that Gets pooled
// objects but never Puts any back — the free list never refills.
package leak

import "tsnoop/internal/sim"

type thing struct{ v int }

type holder struct {
	pool sim.Pool[thing]
}

func take(h *holder) *thing {
	return h.pool.Get() // want `sim.Pool\[.*thing\].Get with no matching Put`
}
