// Fixture for the pooldiscipline analyzer: Get/Put are balanced here,
// so the leak check is silent, and the checks exercised are the stores
// of pooled pointers into long-lived structures.
package store

import "tsnoop/internal/sim"

type thing struct{ v int }

type box struct{ t *thing }

type holder struct {
	pool  sim.Pool[thing]
	stash *thing
	list  []*thing
	slots [4]*thing
}

func cycle(h *holder) {
	t := h.pool.Get()
	h.pool.Put(t)
}

func escapes(h *holder) {
	t := h.pool.Get()
	h.stash = t                // want `pooled \*.*thing stored into a long-lived structure \(struct field assignment\)`
	h.list = append(h.list, t) // want `pooled \*.*thing stored into a long-lived structure \(append\)`
	h.slots[0] = t             // want `pooled \*.*thing stored into a long-lived structure \(element assignment\)`
	_ = &box{t: t}             // want `pooled \*.*thing stored into a long-lived structure \(composite literal\)`
	h.pool.Put(t)
}

func owned(h *holder) {
	t := h.pool.Get()
	h.stash = t //pool:owned released by clear()
	//pool:owned released by clear()
	h.list = append(h.list, t)
}

func clear(h *holder) {
	if h.stash != nil {
		h.pool.Put(h.stash)
		h.stash = nil
	}
	for _, t := range h.list {
		h.pool.Put(t)
	}
	h.list = nil
}

// local assignment of a pooled pointer is not a store into a structure.
func local(h *holder) {
	t := h.pool.Get()
	u := t
	h.pool.Put(u)
}
