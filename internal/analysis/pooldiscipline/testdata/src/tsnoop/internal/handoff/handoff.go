// Fixture for the pooldiscipline analyzer's negative case: a package
// that Gets without Putting, but documents the ownership hand-off with
// the //pool:owned marker — no diagnostics.
package handoff

import "tsnoop/internal/sim"

type thing struct{ v int }

type holder struct {
	pool sim.Pool[thing]
}

func take(h *holder) *thing {
	return h.pool.Get() //pool:owned the consumer package releases it
}

func takeMarkedAbove(h *holder) *thing {
	//pool:owned refcounted by deliveries; the last receiver Puts
	return h.pool.Get()
}
