// Package canonicalspec statically enforces the spec.Spec JSON field
// contract that spec.Canonical's stability — and therefore every
// on-disk result-store key — rests on:
//
//   - Every Spec field is exported and carries an explicit json tag
//     (an untagged or unexported field would silently change or escape
//     the canonical rendering).
//   - Tag names are stable snake_case and unique: the canonical JSON is
//     a wire format whose bytes are hashed, so a renamed or colliding
//     key silently invalidates every existing store.
//   - omitempty/omitzero is allowed only on fields Normalize
//     unconditionally clears to the zero value. That is the Verify
//     pattern: the key then never appears in canonical JSON, so
//     introducing the knob leaves all pre-existing hashes byte-stable.
//     An omitempty field Normalize does not clear would make the key's
//     presence depend on the knob's value — new knobs must follow the
//     Verify pattern, not that one.
//
// The runtime counterparts are the spec fuzz round-trip tests and
// TestCanonicalStableAcrossVerifyKnob; this analyzer catches the
// contract break when the field is added, not when the store goes cold.
package canonicalspec

import (
	"go/ast"
	"go/token"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"tsnoop/internal/analysis"
)

// Analyzer is the canonicalspec pass.
var Analyzer = &analysis.Analyzer{
	Name: "canonicalspec",
	Doc:  "require stable snake_case json tags on spec.Spec fields, with omitempty only on fields Normalize unconditionally clears",
	Run:  run,
}

// specPath is the only package the contract lives in.
const specPath = "tsnoop/internal/spec"

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != specPath {
		return nil
	}
	spec := findStruct(pass, "Spec")
	if spec == nil {
		return nil
	}
	cleared := normalizeCleared(pass)

	seen := make(map[string]token.Pos)
	for _, field := range spec.Fields.List {
		names := field.Names
		if len(names) == 0 {
			pass.Reportf(field.Pos(), "embedded field in spec.Spec: every canonical-JSON key must be an explicit, tagged field")
			continue
		}
		for _, name := range names {
			if !name.IsExported() {
				pass.Reportf(name.Pos(), "unexported field %s in spec.Spec escapes the canonical JSON; every knob must serialize", name.Name)
				continue
			}
			if field.Tag == nil {
				pass.Reportf(name.Pos(), "field %s has no json tag; canonical-JSON keys must be explicit and stable", name.Name)
				continue
			}
			raw, err := strconv.Unquote(field.Tag.Value)
			if err != nil {
				continue
			}
			tag, ok := reflect.StructTag(raw).Lookup("json")
			if !ok {
				pass.Reportf(field.Tag.Pos(), "field %s has no json tag; canonical-JSON keys must be explicit and stable", name.Name)
				continue
			}
			parts := strings.Split(tag, ",")
			jsonName := parts[0]
			if jsonName == "-" || jsonName == "" {
				pass.Reportf(field.Tag.Pos(), "field %s is excluded from JSON (tag %q); every knob must participate in the canonical rendering", name.Name, tag)
				continue
			}
			if !snakeCase.MatchString(jsonName) {
				pass.Reportf(field.Tag.Pos(), "json key %q of field %s is not snake_case; canonical keys are hashed bytes and must follow one stable convention", jsonName, name.Name)
			}
			if prev, dup := seen[jsonName]; dup {
				pass.Reportf(field.Tag.Pos(), "json key %q of field %s collides with the field at %s", jsonName, name.Name, pass.Fset.Position(prev))
			}
			seen[jsonName] = field.Tag.Pos()
			for _, opt := range parts[1:] {
				if opt == "omitempty" || opt == "omitzero" {
					if !cleared[name.Name] {
						pass.Reportf(field.Tag.Pos(),
							"field %s has %s but Normalize does not unconditionally clear it: the key's presence in canonical JSON would depend on the knob's value; follow the Verify pattern (clear in Normalize) or drop %s", name.Name, opt, opt)
					}
				}
			}
		}
	}
	return nil
}

// findStruct returns the struct type declared under the given name.
func findStruct(pass *analysis.Pass, name string) *ast.StructType {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// normalizeCleared returns the Spec fields that the Normalize method
// assigns a zero value at the top level of its body (not under any
// condition): exactly the fields whose canonical rendering is
// guaranteed independent of the incoming value.
func normalizeCleared(pass *analysis.Pass) map[string]bool {
	cleared := make(map[string]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Normalize" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverName(fd)
			for _, stmt := range fd.Body.List {
				as, ok := stmt.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN {
					continue
				}
				for i, lhs := range as.Lhs {
					if i >= len(as.Rhs) {
						break
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok || base.Name != recv {
						continue
					}
					if isZeroLiteral(as.Rhs[i]) {
						cleared[sel.Sel.Name] = true
					}
				}
			}
		}
	}
	return cleared
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name
	}
	return ""
}

// isZeroLiteral recognizes the zero values a clearing assignment uses:
// false, 0, 0.0, "", nil.
func isZeroLiteral(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "false" || e.Name == "nil"
	case *ast.BasicLit:
		switch e.Kind {
		case token.INT, token.FLOAT:
			v, err := strconv.ParseFloat(e.Value, 64)
			return err == nil && v == 0
		case token.STRING:
			return e.Value == `""` || e.Value == "``"
		}
	}
	return false
}
