// Fixture proving the canonicalspec analyzer only runs on the spec
// package: this Spec struct breaks every rule and produces nothing.
package other

type Spec struct {
	Untagged int
	BadCase  string `json:"BadCase,omitempty"`
	hidden   int
}

func use(s *Spec) int { return s.hidden }
