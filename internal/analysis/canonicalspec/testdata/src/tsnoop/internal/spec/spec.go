// Fixture for the canonicalspec analyzer: one Spec struct exercising
// every rule — embedded and unexported fields, missing/excluded tags,
// non-snake_case and colliding keys, and omitempty with and without the
// matching unconditional clear in Normalize.
package spec

type Base struct{}

type Spec struct {
	Base // want `embedded field in spec.Spec`

	Name     string `json:"name"`
	NumProcs int    `json:"num_procs"`

	Topology string `json:"Topology"` // want `json key "Topology" of field Topology is not snake_case`
	Untagged int    // want `field Untagged has no json tag`
	Hidden   string `json:"-"`    // want `field Hidden is excluded from JSON`
	Legacy   int    `json:"name"` // want `json key "name" of field Legacy collides with the field`

	// Seed has omitempty but Normalize never clears it: whether the key
	// appears in canonical JSON would depend on the seed's value.
	Seed int64 `json:"seed,omitempty"` // want `field Seed has omitempty but Normalize does not unconditionally clear it`

	// Cond is only cleared under a condition, which does not count.
	Cond bool `json:"cond,omitempty"` // want `field Cond has omitempty but Normalize does not unconditionally clear it`

	// The Verify pattern: omitempty/omitzero paired with an
	// unconditional top-level clear in Normalize.
	Verify  bool `json:"verify,omitempty"`
	Workers int  `json:"workers,omitzero"`

	hidden int // want `unexported field hidden in spec.Spec escapes the canonical JSON`
}

func (s *Spec) Normalize() {
	s.Verify = false
	s.Workers = 0
	if s.Cond {
		s.Cond = false
	}
	_ = s.hidden
}
