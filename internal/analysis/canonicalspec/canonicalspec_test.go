package canonicalspec_test

import (
	"testing"

	"tsnoop/internal/analysis/analysistest"
	"tsnoop/internal/analysis/canonicalspec"
)

// TestCanonicalSpec covers the spec fixture (every tag rule, plus the
// Verify pattern staying silent) and an out-of-scope package whose
// rule-breaking Spec struct must produce nothing.
func TestCanonicalSpec(t *testing.T) {
	analysistest.Run(t, "testdata", canonicalspec.Analyzer,
		"tsnoop/internal/spec",
		"tsnoop/internal/other",
	)
}
