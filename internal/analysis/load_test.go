package analysis

import "testing"

func TestLoadSmoke(t *testing.T) {
	l := &Loader{Dir: "/root/repo"}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded %d root packages", len(pkgs))
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Errorf("package %s incomplete", p.Path)
		}
	}
}
