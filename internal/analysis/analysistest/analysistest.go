// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, the
// same fixture convention as golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<importpath>/<files>.go
//
// A line expecting diagnostics carries a comment of the form
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic reported on that line must match one expectation
// (and vice versa); a line with no want comment must produce no
// diagnostics. Fixture imports resolve inside testdata/src first —
// which is how fixtures stub the real tsnoop/internal/... packages the
// analyzers key on — and fall back to the standard library.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"tsnoop/internal/analysis"
)

// wantRe extracts the expectation list from a comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe extracts the individual quoted regexps of an expectation
// list; both "double-quoted" and `backquoted` patterns are accepted.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

// Run applies the analyzer to each fixture package (named by import
// path under testdata/src) and reports mismatches against the
// packages' // want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader := &analysis.Loader{FixtureDir: filepath.Join(testdata, "src")}
	for _, path := range pkgpaths {
		pkg, err := loader.LoadFixture(path)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", path, err)
			continue
		}
		diags, err := analysis.RunAnalyzer(a, pkg)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// expectation is one "regexp" on one line of a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want expectation %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", pos, q, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
