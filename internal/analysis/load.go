package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads and type-checks packages from source. Metadata (file
// sets, import graph, build-tag and vendor resolution) comes from
// `go list -json -deps`; type checking walks the import graph bottom-up
// with go/types, so no compiled export data is required — the loader
// works on a bare toolchain with an empty build cache.
//
// When FixtureDir is set (the analysistest harness), an import path
// resolves to FixtureDir/<path> first and falls back to `go list` (for
// standard-library imports of fixture files) second.
type Loader struct {
	// Dir is where the go command runs; it must be inside the module.
	// Empty means the current directory.
	Dir string
	// FixtureDir, when non-empty, is a GOPATH-style src root consulted
	// before the real module: import path p loads from FixtureDir/p.
	FixtureDir string

	Fset *token.FileSet

	meta map[string]*listPkg
	pkgs map[string]*Package
}

func (l *Loader) init() {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	if l.meta == nil {
		l.meta = make(map[string]*listPkg)
	}
	if l.pkgs == nil {
		l.pkgs = make(map[string]*Package)
	}
}

// goList runs `go list -e -json -deps` on the given patterns and merges
// the results into the metadata table. CGO is disabled so every package
// resolves to its pure-Go variant (the type checker cannot follow cgo).
func (l *Loader) goList(patterns ...string) error {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if prev, ok := l.meta[p.ImportPath]; !ok || prev.DepOnly && !p.DepOnly {
			l.meta[p.ImportPath] = p
		}
	}
	return nil
}

// Load loads the packages matching the go-command patterns (e.g.
// "./...") and their whole dependency closure, returning the matched
// root packages sorted by import path with full syntax and type
// information.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var roots []string
	for path, m := range l.meta {
		if !m.DepOnly && !m.Standard {
			if m.Error != nil {
				return nil, fmt.Errorf("analysis: loading %s: %s", path, m.Error.Err)
			}
			roots = append(roots, path)
		}
	}
	sort.Strings(roots)
	pkgs := make([]*Package, 0, len(roots))
	for _, path := range roots {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadFixture loads one package by import path, resolving through
// FixtureDir first. Used by the analysistest harness.
func (l *Loader) LoadFixture(path string) (*Package, error) {
	l.init()
	return l.load(path)
}

// load type-checks one package (and, recursively, its imports),
// caching the result.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == "unsafe" {
		p := &Package{Path: path, Types: types.Unsafe, Fset: l.Fset}
		l.pkgs[path] = p
		return p, nil
	}
	dir, files, err := l.sources(path)
	if err != nil {
		return nil, err
	}
	syntax := make([]*ast.File, 0, len(files))
	imports := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		syntax = append(syntax, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	// Ensure metadata exists for every import reachable outside the
	// fixture tree before type checking pulls them in.
	var missing []string
	for imp := range imports {
		if imp == "C" || imp == "unsafe" {
			continue
		}
		if l.fixtureHas(imp) {
			continue
		}
		if _, ok := l.meta[imp]; !ok {
			if _, ok := l.meta["vendor/"+imp]; !ok {
				missing = append(missing, imp)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		if err := l.goList(missing...); err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			dep, err := l.load(l.mapImport(path, p))
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, syntax, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, firstErr)
	}
	p := &Package{Path: path, Dir: dir, Files: syntax, Types: tpkg, Info: info, Fset: l.Fset}
	l.pkgs[path] = p
	return p, nil
}

// mapImport applies the importing package's vendor map (ImportMap from
// go list) plus the global vendor/ fallback of GOROOT/src/vendor.
func (l *Loader) mapImport(from, path string) string {
	if m, ok := l.meta[from]; ok && m.ImportMap != nil {
		if mapped, ok := m.ImportMap[path]; ok {
			return mapped
		}
	}
	if _, ok := l.meta[path]; !ok {
		if _, ok := l.meta["vendor/"+path]; ok {
			return "vendor/" + path
		}
	}
	return path
}

// sources returns the directory and Go files of an import path, from
// the fixture tree when present, from go list metadata otherwise.
func (l *Loader) sources(path string) (string, []string, error) {
	if dir, ok := l.fixtureDirFor(path); ok {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return "", nil, fmt.Errorf("analysis: reading fixture %s: %v", dir, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return "", nil, fmt.Errorf("analysis: fixture package %s has no Go files", path)
		}
		sort.Strings(files)
		return dir, files, nil
	}
	m, ok := l.meta[path]
	if !ok {
		if err := l.goList(path); err != nil {
			return "", nil, err
		}
		if m, ok = l.meta[path]; !ok {
			return "", nil, fmt.Errorf("analysis: no metadata for package %s", path)
		}
	}
	if m.Error != nil {
		return "", nil, fmt.Errorf("analysis: loading %s: %s", path, m.Error.Err)
	}
	files := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		files[i] = filepath.Join(m.Dir, f)
	}
	return m.Dir, files, nil
}

func (l *Loader) fixtureHas(path string) bool {
	_, ok := l.fixtureDirFor(path)
	return ok
}

func (l *Loader) fixtureDirFor(path string) (string, bool) {
	if l.FixtureDir == "" {
		return "", false
	}
	dir := filepath.Join(l.FixtureDir, filepath.FromSlash(path))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		return "", false
	}
	return dir, true
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
