// Fixture for the allocfree analyzer: tsnoop/internal/obs is a hot-path
// package — probe methods run inside event dispatch, so the nil-guarded
// direct call is the only allowed shape. A closure that captures the
// probe to schedule it through the legacy path, and map traffic inside
// probe methods reachable from dispatch, are diagnostics.
package obs

import "tsnoop/internal/sim"

type Probe struct {
	counts []int64
	labels map[string]int64
}

// Event increments a dense-slice counter: the allowed probe shape.
func (p *Probe) Event(kind int) { p.counts[kind]++ }

// label is dispatch-reachable through handler below, so its map
// allocation is a diagnostic even though label itself is never
// scheduled.
func (p *Probe) label() {
	p.labels = make(map[string]int64) // want `map allocated in label`
}

type component struct {
	k     *sim.Kernel
	probe *Probe
}

// handler is the blessed pattern: a package-level EventFn whose probe
// use is nil-guarded, costing one branch when telemetry is off. No
// diagnostics on the guard or the call.
func handler(a0, a1 any, i0 int64) {
	c := a0.(*component)
	if p := c.probe; p != nil {
		p.Event(0)
		p.label()
	}
}

func (c *component) schedule() {
	c.k.AtCall(0, handler, c, nil, 0)
	c.k.After(1, func() { c.probe.Event(0) }) // want `closure scheduled through the legacy Kernel.After path`
}

// size builds the probe's dense slices at construction time, off the
// dispatch path: map use here is fine.
func (p *Probe) size(n int) {
	p.counts = make([]int64, n)
	p.labels = make(map[string]int64)
}
