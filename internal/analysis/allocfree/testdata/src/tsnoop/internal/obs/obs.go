// Fixture for the allocfree analyzer: tsnoop/internal/obs is a hot-path
// package — probe methods run inside event dispatch, so the nil-guarded
// direct call is the only allowed shape. A closure that captures the
// probe to schedule it through the legacy path, and map traffic inside
// probe methods reachable from dispatch, are diagnostics.
package obs

import "tsnoop/internal/sim"

type Probe struct {
	counts []int64
	labels map[string]int64
}

// Event increments a dense-slice counter: the allowed probe shape.
func (p *Probe) Event(kind int) { p.counts[kind]++ }

// Span records a lifecycle span: like Event, integer arithmetic over
// pre-sized storage, legal on the dispatch path behind a nil guard.
func (p *Probe) Span(kind int, durPS int64) { p.counts[kind] += durPS }

// label is dispatch-reachable through handler below, so its map
// allocation is a diagnostic even though label itself is never
// scheduled.
func (p *Probe) label() {
	p.labels = make(map[string]int64) // want `map allocated in label`
}

type component struct {
	k     *sim.Kernel
	probe *Probe
}

// handler is the blessed pattern: a package-level EventFn whose probe
// use is nil-guarded, costing one branch when telemetry is off. No
// diagnostics on the guard or the call.
func handler(a0, a1 any, i0 int64) {
	c := a0.(*component)
	if p := c.probe; p != nil {
		p.Event(0)
		p.Span(0, i0)
		p.label()
	}
}

// unhoisted is dispatch-reachable; calling the probe through the field
// chain skips the hoisted nil guard the discipline requires. The
// guarded direct call below it is the blessed shape.
func unhoisted(a0, a1 any, i0 int64) {
	c := a0.(*component)
	c.probe.Span(0, i0) // want `obs.Probe.Span called through a field chain`
	if p := c.probe; p != nil {
		p.Span(1, i0)
	}
}

func (c *component) schedule() {
	c.k.AtCall(0, handler, c, nil, 0)
	c.k.AtCall(0, unhoisted, c, nil, 0)
	c.k.After(1, func() { c.probe.Event(0) }) // want `closure scheduled through the legacy Kernel.After path` `obs.Probe.Event called from a closure`
	c.k.AtCall(0, spanning, c, nil, 0)
}

// spanning shows the nested-closure escape hatch is also closed: even
// inside a properly scheduled EventFn, wrapping the span in a func
// literal re-introduces a per-event allocation.
func spanning(a0, a1 any, i0 int64) {
	c := a0.(*component)
	defer func() { c.probe.Span(0, i0) }() // want `obs.Probe.Span called from a closure`
	if p := c.probe; p != nil {
		p.Span(0, i0)
	}
}

// size builds the probe's dense slices at construction time, off the
// dispatch path: map use here is fine.
func (p *Probe) size(n int) {
	p.counts = make([]int64, n)
	p.labels = make(map[string]int64)
}
