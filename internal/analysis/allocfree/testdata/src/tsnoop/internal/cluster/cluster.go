// Fixture for the allocfree analyzer's cluster coverage: the package
// path is inside the hot set, so any future coupling to the kernel's
// scheduling API inherits the zero-alloc contract — a legacy closure
// schedule is flagged here exactly as it would be in the simulator.
package cluster

import "tsnoop/internal/sim"

func replicate(k *sim.Kernel) {
	k.After(1, func() {}) // want `closure scheduled through the legacy Kernel.After path`
}

// Plain code that never touches the kernel is not the analyzer's
// business, maps and all.
func route(counters map[string]int64) int64 {
	var total int64
	for _, v := range counters {
		total += v
	}
	return total
}
