// Package sim is a fixture stub of the real kernel package: just
// enough surface for the analyzers, which key on these exact names and
// this exact import path.
package sim

type Time int64

type Duration int64

type EventFn func(a0, a1 any, i0 int64)

type Kernel struct{}

func (k *Kernel) Now() Time { return 0 }

func (k *Kernel) At(t Time, fn func()) { fn() }

func (k *Kernel) After(d Duration, fn func()) { fn() }

func (k *Kernel) AtCall(t Time, fn EventFn, a0, a1 any, i0 int64) { fn(a0, a1, i0) }

func (k *Kernel) AfterCall(d Duration, fn EventFn, a0, a1 any, i0 int64) { fn(a0, a1, i0) }

type Pool[T any] struct{ free []*T }

func (p *Pool[T]) Get() *T { return new(T) }

func (p *Pool[T]) Put(v *T) {}
