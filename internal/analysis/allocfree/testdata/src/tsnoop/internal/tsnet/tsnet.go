// Fixture for the allocfree analyzer: tsnoop/internal/tsnet is a
// hot-path package, so closures on At/After, boxing into AtCall's any
// arguments, and map traffic reachable from event dispatch are all
// diagnostics here.
package tsnet

import "tsnoop/internal/sim"

type node struct {
	k *sim.Kernel
	m map[int]int
}

type payload struct{ a, b int }

// handler is scheduled through AtCall below, so it and everything it
// statically calls is dispatch-reachable.
func handler(a0, a1 any, i0 int64) {
	n := a0.(*node)
	n.m = make(map[int]int) // want `map allocated in handler`
	for range n.m {         // want `map iteration in handler`
	}
	helper(n)
}

func helper(n *node) {
	n.m = map[int]int{1: 2} // want `map literal allocated in helper`
}

func schedule(n *node, p *payload) {
	n.k.At(0, func() {})    // want `closure scheduled through the legacy Kernel.At path`
	n.k.After(1, func() {}) // want `closure scheduled through the legacy Kernel.After path`
	n.k.AtCall(0, handler, n, nil, 0)
	n.k.AfterCall(1, handler, *p, nil, 0) // want `AfterCall boxes a tsnoop/internal/tsnet.payload`
	n.k.AfterCall(1, handler, nil, 42, 0) // want `AfterCall boxes a int`
	n.k.AfterCall(1, handler, p, nil, int64(p.a+p.b))
}

// scheduledClosure's map range runs on the dispatch path even though it
// reaches it through a (flagged) closure.
func scheduledClosure(n *node) {
	n.k.At(0, func() { // want `closure scheduled through the legacy Kernel.At path`
		for range n.m { // want `map iteration in a scheduled closure`
		}
	})
}

// setup is not reachable from any scheduled event: construction-time
// map allocation and iteration are fine.
func setup(n *node) {
	n.m = make(map[int]int)
	for range n.m {
	}
}
