// Fixture proving the allocfree analyzer is scoped to the hot-path
// packages: the service package schedules closures and allocates maps
// freely without diagnostics.
package service

import "tsnoop/internal/sim"

func serve(k *sim.Kernel) {
	m := make(map[int]int)
	k.At(0, func() { m[1] = 2 })
	k.AfterCall(1, func(a0, a1 any, i0 int64) {}, struct{}{}, nil, 0)
}
