// Package allocfree statically enforces the PR-5 zero-allocation
// hot-path contract in the simulator's dispatch-critical packages:
//
//   - No closure may be scheduled through the legacy Kernel.At/After
//     path: a func literal captures its environment and allocates on
//     every scheduling. Hot code uses AtCall/AfterCall with a
//     package-level sim.EventFn.
//   - The `any` payload arguments of AtCall/AfterCall accept only
//     pointer-shaped values (pointers, interfaces, funcs, maps, chans,
//     nil): boxing a struct, slice, string or integer into an interface
//     allocates per event.
//   - Functions reachable from event dispatch (anything scheduled as an
//     EventFn, plus everything they call inside the package) may not
//     allocate maps or iterate maps: per-event map allocation defeats
//     the allocation budget, and map iteration order would additionally
//     break byte-identical determinism.
//   - Telemetry probes (obs.Probe) on the dispatch path follow the
//     hoisted nil-guard shape: `if pr := x.probe; pr != nil { pr.Span(...) }`.
//     A probe method called through a field chain skips the hoist (and
//     usually the guard), and a probe method called from a closure
//     captures its environment and allocates per event — both are
//     diagnostics; the direct call on a guarded local is blessed.
//
// The runtime counterparts of these rules are the AllocsPerRun budgets
// (TestKernelAllocs, TestBroadcastAllocs, TestMissAllocs, and their
// spans-on twins TestBroadcastAllocsTraced / TestMissAllocsTraced);
// this analyzer turns a budget regression from a test failure into a
// diagnostic at the offending line.
package allocfree

import (
	"go/ast"
	"go/types"
	"strings"

	"tsnoop/internal/analysis"
)

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "forbid closure scheduling, interface boxing, map traffic and unhoisted probe calls on the simulator's allocation-free hot paths",
	Run:  run,
}

// simPath is the import path of the kernel package; the analyzer keys
// on the Kernel methods declared there.
const simPath = "tsnoop/internal/sim"

// obsPath is the import path of the telemetry package; the probe-shape
// rules key on methods of the Probe type declared there.
const obsPath = "tsnoop/internal/obs"

// hotPackages are the dispatch-critical packages the contract covers.
var hotPackages = []string{
	"tsnoop/internal/sim",
	"tsnoop/internal/tsnet",
	"tsnoop/internal/network",
	"tsnoop/internal/processor",
	"tsnoop/internal/cache",
	"tsnoop/internal/coherence",
	"tsnoop/internal/obs",
	// cluster code never schedules kernel events today; covering it means
	// any future coupling to the kernel inherits the contract on day one.
	"tsnoop/internal/cluster",
}

const hotPrefix = "tsnoop/internal/protocol/"

func hot(path string) bool {
	for _, p := range hotPackages {
		if path == p {
			return true
		}
	}
	return strings.HasPrefix(path, hotPrefix)
}

func run(pass *analysis.Pass) error {
	if !hot(pass.Pkg.Path()) {
		return nil
	}
	// decls maps package-declared functions and methods to their bodies
	// so the dispatch reachability walk can follow static calls.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	// roots are the entry points of event dispatch: every function value
	// scheduled through AtCall/AfterCall, plus the bodies of closures
	// scheduled through At/After (flagged separately, but still walked so
	// their map traffic is reported too).
	roots := make(map[*types.Func]bool)
	var closureRoots []*ast.FuncLit

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := kernelMethod(pass, call)
			if !ok {
				return true
			}
			switch name {
			case "At", "After":
				if len(call.Args) >= 2 {
					if lit, ok := call.Args[1].(*ast.FuncLit); ok {
						pass.Reportf(lit.Pos(),
							"closure scheduled through the legacy Kernel.%s path allocates per event; use %sCall with a package-level sim.EventFn", name, name)
						closureRoots = append(closureRoots, lit)
					} else if fn := staticFunc(pass, call.Args[1]); fn != nil {
						roots[fn] = true
					}
				}
			case "AtCall", "AfterCall":
				if len(call.Args) >= 5 {
					if fn := staticFunc(pass, call.Args[1]); fn != nil {
						roots[fn] = true
					}
					for _, arg := range call.Args[2:4] {
						checkBoxing(pass, name, arg)
					}
				}
			}
			return true
		})
	}

	// Walk the package-local static call graph from the dispatch roots.
	reachable := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || reachable[fn] {
			return
		}
		reachable[fn] = true
		fd, ok := decls[fn]
		if !ok || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticFunc(pass, call.Fun); callee != nil {
				if _, local := decls[callee]; local {
					visit(callee)
				}
			}
			return true
		})
	}
	for fn := range roots {
		visit(fn)
	}

	// Report map allocation and map iteration inside the reachable set.
	checkMapTraffic := func(where string, body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A nested closure is its own allocation problem; its body
				// still runs on the dispatch path, so keep walking.
				return true
			case *ast.RangeStmt:
				if t, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := t.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration in %s, reachable from event dispatch: order is nondeterministic and the hot path must not touch maps", where)
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if t, ok := pass.Info.Types[n.Args[0]]; ok {
						if _, isMap := t.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(), "map allocated in %s, reachable from event dispatch: per-event map allocation breaks the zero-alloc budget", where)
						}
					}
				}
			case *ast.CompositeLit:
				if t, ok := pass.Info.Types[n]; ok {
					if _, isMap := t.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map literal allocated in %s, reachable from event dispatch: per-event map allocation breaks the zero-alloc budget", where)
					}
				}
			}
			return true
		})
	}
	// Enforce the probe shape on the same set: a span-probe call on the
	// dispatch path must be a direct call on a hoisted (nil-guarded)
	// local, never through a field chain and never from a closure.
	var checkProbe func(body ast.Node, inClosure bool)
	checkProbe = func(body ast.Node, inClosure bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkProbe(lit.Body, true)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, name, ok := probeMethod(pass, call)
			if !ok {
				return true
			}
			if inClosure {
				pass.Reportf(call.Pos(),
					"obs.Probe.%s called from a closure on the dispatch path: the closure captures the probe and allocates per event; emit spans from a package-level sim.EventFn behind a nil guard", name)
				return true
			}
			if _, ident := sel.X.(*ast.Ident); !ident {
				pass.Reportf(call.Pos(),
					"obs.Probe.%s called through a field chain on the dispatch path; hoist the probe into a nil-guarded local (if pr := x.probe; pr != nil { pr.%s(...) })", name, name)
			}
			return true
		})
	}

	for fn := range reachable {
		if fd, ok := decls[fn]; ok && fd.Body != nil {
			checkMapTraffic(fn.Name(), fd.Body)
			checkProbe(fd.Body, false)
		}
	}
	for _, lit := range closureRoots {
		checkMapTraffic("a scheduled closure", lit.Body)
		checkProbe(lit.Body, true)
	}
	return nil
}

// kernelMethod reports whether call invokes a scheduling method of
// sim.Kernel, returning the method name.
func kernelMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != simPath {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Kernel" {
		return "", false
	}
	switch obj.Name() {
	case "At", "After", "AtCall", "AfterCall":
		return obj.Name(), true
	}
	return "", false
}

// probeMethod reports whether call invokes a method of obs.Probe,
// returning the selector (whose X is the receiver expression the shape
// rules inspect) and the method name.
func probeMethod(pass *analysis.Pass, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
		return nil, "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Probe" {
		return nil, "", false
	}
	return sel, obj.Name(), true
}

// staticFunc resolves an expression to the *types.Func it statically
// names: a plain identifier, a method selector on a concrete receiver,
// or a qualified package function. Function values that flow through
// variables or interfaces resolve to nil.
func staticFunc(pass *analysis.Pass, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return staticFunc(pass, e.X)
	}
	return nil
}

// checkBoxing reports a value whose conversion to the any parameter of
// AtCall/AfterCall would heap-allocate.
func checkBoxing(pass *analysis.Pass, method string, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok {
		return
	}
	if tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		return
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	pass.Reportf(arg.Pos(),
		"%s boxes a %s into its any argument, allocating per event; pass a pointer (or fold scalars into the int64 slot)", method, tv.Type)
}
