package allocfree_test

import (
	"testing"

	"tsnoop/internal/analysis/allocfree"
	"tsnoop/internal/analysis/analysistest"
)

// TestAllocFree checks the positive diagnostics in the hot-path fixture
// package and, via the service fixture (which schedules closures and
// allocates maps without a single want comment), that the analyzer is
// scoped to the hot-path packages.
func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer,
		"tsnoop/internal/tsnet",
		"tsnoop/internal/obs",
		"tsnoop/internal/service",
		"tsnoop/internal/cluster",
	)
}
