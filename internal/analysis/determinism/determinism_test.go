package determinism_test

import (
	"testing"

	"tsnoop/internal/analysis/analysistest"
	"tsnoop/internal/analysis/determinism"
)

// TestDeterminism covers a deterministic-core fixture (wall clock,
// global math/rand, goroutines, map ranges, and the sanctioned forms of
// each), the parallel-package goroutine exemption, a service fixture
// proving packages outside the core are not analyzed, and a cluster
// fixture exercising the wallclock/goroutine suppression markers.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"tsnoop/internal/tsnet",
		"tsnoop/internal/parallel",
		"tsnoop/internal/service",
		"tsnoop/internal/cluster",
		"tsnoop/internal/fault",
	)
}
