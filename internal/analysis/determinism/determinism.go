// Package determinism statically enforces byte-identical
// reproducibility across the packages a simulation is built from. The
// paper's methodology (minimum runtime over perturbed seeds) and this
// repo's whole result-store design (spec.Canonical content addresses)
// assume a spec plus a seed fully determines every output byte; the
// golden-output and worker-count-equivalence tests check that at
// runtime, and this analyzer rejects the constructs that break it:
//
//   - time.Now and friends: wall-clock input makes runs irreproducible.
//     Simulated time lives in sim.Time.
//   - The global math/rand generators: shared mutable seed state across
//     simulations. All randomness flows from sim.RNG (or an explicitly
//     seeded local source).
//   - Ranging over a map when the iteration order can reach output:
//     Go's map order is deliberately randomized. Collect-then-sort
//     loops are recognized and allowed (a sort call after the loop in
//     the same function); provably order-insensitive loops are marked
//     //determinism:unordered.
//   - Goroutine creation outside tsnoop/internal/parallel: scheduling
//     nondeterminism is confined to the one package whose ordered
//     fan-in machinery (parallel.Stream) is equivalence-tested at every
//     worker count.
//
// internal/cluster sits inside the contract too — forwarding a spec to
// a peer must return the exact bytes local compute would have produced
// — but it legitimately paces retries against real time. Those uses
// carry //determinism:wallclock (and a hypothetical goroutine,
// //determinism:goroutine) markers asserting the nondeterminism never
// reaches result bytes; unmarked uses are still flagged.
//
// internal/fault is covered for the same reason: a chaos run must be
// reproducible from its schedule seed alone, so failpoint decisions may
// never read the wall clock or global math/rand — injected delays are
// returned as durations for service-edge call sites to sleep on.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"tsnoop/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, unordered map iteration and stray goroutines in the simulation's deterministic core",
	Run:  run,
}

// Marker documents a map range whose body is order-insensitive by
// construction (e.g. writes to disjoint keyed destinations).
const Marker = "//determinism:unordered"

// WallClockMarker documents a wall-clock read whose value provably
// never shapes output bytes (e.g. retry pacing in internal/cluster).
const WallClockMarker = "//determinism:wallclock"

// GoroutineMarker documents a goroutine whose scheduling provably
// never reorders output (e.g. a fire-and-forget counter flush).
const GoroutineMarker = "//determinism:goroutine"

// parallelPath is the one package allowed to create goroutines: its
// ordered fan-in is the determinism boundary.
const parallelPath = "tsnoop/internal/parallel"

// deterministic lists the packages the reproducibility contract covers:
// everything a simulation's output is computed from. Service, CLI and
// tooling packages deal in wall-clock time and concurrency by design
// and are exempt.
var deterministic = []string{
	"tsnoop/internal/sim",
	"tsnoop/internal/tsnet",
	"tsnoop/internal/network",
	"tsnoop/internal/processor",
	"tsnoop/internal/cache",
	"tsnoop/internal/coherence",
	"tsnoop/internal/timing",
	"tsnoop/internal/topology",
	"tsnoop/internal/workload",
	"tsnoop/internal/stats",
	"tsnoop/internal/system",
	"tsnoop/internal/harness",
	"tsnoop/internal/trace",
	"tsnoop/internal/spec",
	"tsnoop/internal/core",
	"tsnoop/internal/cluster",
	"tsnoop/internal/fault",
}

const protocolPrefix = "tsnoop/internal/protocol/"

// wallClock lists the time-package functions that read the wall clock
// (or schedule against it).
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"After": true, "AfterFunc": true,
}

// seededConstructors are the math/rand functions that build explicitly
// seeded local generators — the sanctioned escape hatch.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func covered(path string) bool {
	for _, p := range deterministic {
		if path == p {
			return true
		}
	}
	return strings.HasPrefix(path, protocolPrefix)
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !covered(path) || path == parallelPath {
		return nil
	}
	for _, f := range pass.Files {
		v := &visitor{pass: pass}
		ast.Walk(v, f)
	}
	return nil
}

// visitor walks one file keeping the stack of enclosing functions, so
// the collect-then-sort exemption can look for a sort call after a map
// range within the same function. ast.Walk pairs every Visit(node) that
// returns a visitor with one Visit(nil) after the node's children;
// pushes maintains which of those pushed onto the function stack.
type visitor struct {
	pass   *analysis.Pass
	funcs  []ast.Node
	pushes []bool
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		if v.pushes[len(v.pushes)-1] {
			v.funcs = v.funcs[:len(v.funcs)-1]
		}
		v.pushes = v.pushes[:len(v.pushes)-1]
		return nil
	}
	pass := v.pass
	isFunc := false
	switch n := n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		isFunc = true
	case *ast.GoStmt:
		if !pass.MarkerAt(n.Pos(), GoroutineMarker) {
			pass.Reportf(n.Pos(),
				"goroutine created outside %s: scheduling nondeterminism must flow through the ordered worker pool, or carry %s", parallelPath, GoroutineMarker)
		}
	case *ast.RangeStmt:
		v.checkRange(n)
	case *ast.SelectorExpr:
		checkUse(pass, n.Sel)
		// Walk X (the receiver chain) but not Sel, which would
		// double-report through the Ident case. The nested Walk is
		// balanced on its own, so nothing is pushed here.
		ast.Walk(v, n.X)
		return nil
	case *ast.Ident:
		checkUse(pass, n)
	}
	if isFunc {
		v.funcs = append(v.funcs, n)
	}
	v.pushes = append(v.pushes, isFunc)
	return v
}

func (v *visitor) checkRange(n *ast.RangeStmt) {
	pass := v.pass
	tv, ok := pass.Info.Types[n.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.MarkerAt(n.Pos(), Marker) {
		return
	}
	if len(v.funcs) > 0 && sortsAfter(pass, v.funcs[len(v.funcs)-1], n) {
		return
	}
	pass.Reportf(n.Pos(),
		"map iteration order is randomized and can reach ordered output; collect and sort the keys, or mark an order-insensitive body with %s", Marker)
}

// checkUse flags ident when it names a forbidden time or global
// math/rand function.
func checkUse(pass *analysis.Pass, ident *ast.Ident) {
	fn, ok := pass.Info.Uses[ident].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] && !pass.MarkerAt(ident.Pos(), WallClockMarker) {
			pass.Reportf(ident.Pos(),
				"time.%s reads the wall clock; simulated time is sim.Time and must fully determine every output byte (mark provably output-free uses with %s)", fn.Name(), WallClockMarker)
		}
	case "math/rand", "math/rand/v2":
		sig, isSig := fn.Type().(*types.Signature)
		if isSig && sig.Recv() != nil {
			return // methods on an explicitly constructed *rand.Rand are fine
		}
		if !seededConstructors[fn.Name()] {
			pass.Reportf(ident.Pos(),
				"global math/rand.%s shares seed state across simulations; use sim.RNG or an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
		}
	}
}

// sortsAfter reports whether the enclosing function calls a sort
// function at a position after the range statement — the
// collect-then-sort idiom.
func sortsAfter(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(obj.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}
