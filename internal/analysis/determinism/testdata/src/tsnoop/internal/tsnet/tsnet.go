// Fixture for the determinism analyzer: this package path is inside
// the deterministic core, so wall-clock reads, global math/rand,
// stray goroutines and unordered map iteration are all flagged —
// while the sanctioned forms (seeded local generators, the
// collect-then-sort idiom and the //determinism:unordered marker)
// stay silent.
package tsnet

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

func dice() int {
	return rand.Intn(6) // want `global math/rand.Intn shares seed state`
}

// An explicitly seeded local generator is the sanctioned escape hatch:
// the constructors and the methods on the result are both allowed.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func spawn() {
	go dice() // want `goroutine created outside tsnoop/internal/parallel`
}

// collect-then-sort: the range feeds a slice that is sorted before it
// can reach any output, so the map's iteration order is laundered out.
func ordered(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func raw(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

// The marker asserts the body is order-insensitive (summation commutes).
func unordered(m map[string]int) int {
	sum := 0
	//determinism:unordered summation is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}
