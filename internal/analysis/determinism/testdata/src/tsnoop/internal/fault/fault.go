// Fixture for the determinism analyzer's fault-registry coverage: the
// failpoint package sits inside the deterministic contract (a chaos
// run must be reproducible from its schedule seed alone), so wall-clock
// reads and global math/rand are flagged; pure seeded arithmetic and
// returning configured durations are the sanctioned idioms.
package fault

import (
	"math/rand"
	"time"
)

func unmarkedClockDecision() bool {
	return time.Now().UnixNano()%2 == 0 // want `time.Now reads the wall clock`
}

func randDecision() bool {
	return rand.Intn(2) == 0 // want `global math/rand`
}

// decide is the sanctioned shape: a pure function of seed and call
// index, no clock, no global randomness.
func decide(seed uint64, k int64) bool {
	x := seed ^ uint64(k)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	return x%3 == 0
}

// delayFor returns a configured duration for the caller to sleep on —
// the registry itself never schedules against the clock.
func delayFor(d time.Duration, fire bool) time.Duration {
	if !fire {
		return 0
	}
	return d
}
