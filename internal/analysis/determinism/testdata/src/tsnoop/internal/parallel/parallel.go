// Fixture proving the parallel-package exemption: this is the one
// package allowed to create goroutines, so the go statement below must
// produce no diagnostic.
package parallel

func fanOut(work []func()) {
	for _, w := range work {
		go w()
	}
}
