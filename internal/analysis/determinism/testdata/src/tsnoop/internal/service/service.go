// Fixture proving the analyzer is scoped to the deterministic core:
// the service layer deals in wall-clock time and concurrency by design,
// so nothing here is flagged.
package service

import "time"

func stamp() time.Time {
	return time.Now()
}

func watch(done chan struct{}) {
	go func() {
		<-done
	}()
}
