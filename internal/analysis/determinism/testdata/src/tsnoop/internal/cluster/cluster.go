// Fixture for the determinism analyzer's cluster coverage: the package
// path is inside the deterministic contract, so unmarked wall-clock
// reads and goroutines are flagged, while uses carrying the
// //determinism:wallclock and //determinism:goroutine markers —
// asserting the nondeterminism never reaches result bytes — stay
// silent.
package cluster

import "time"

func unmarkedClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

// Retry pacing: the timer's firing instant never shapes output bytes.
func markedBackoff(d time.Duration) {
	//determinism:wallclock retry pacing never reaches simulation output
	t := time.NewTimer(d)
	<-t.C
}

func markedSameLine(d time.Duration) <-chan time.Time {
	return time.After(d) //determinism:wallclock shed hint only
}

func unmarkedSpawn(f func()) {
	go f() // want `goroutine created outside tsnoop/internal/parallel`
}

// A fire-and-forget flush whose scheduling cannot reorder output.
func markedSpawn(f func()) {
	//determinism:goroutine counter flush, no output dependency
	go f()
}
