// Package fault is the deterministic failpoint registry: a seeded,
// process-wide schedule of injected failures that the service layer
// threads through its store, queue, cluster client, and HTTP handlers.
//
// The registry follows the repo's nil-guarded zero-overhead discipline
// (the obs.Probe / Verify pattern): every injection site is one guarded
// branch,
//
//	if f := fault.Active(); f != nil && f.Fire(fault.StoreGetCorrupt) { ... }
//
// so with injection disabled — the only state production ever runs in —
// a site costs a single atomic pointer load and nil check: no map
// lookups, no locks, no allocations (pinned by the alloc-budget tests).
//
// Determinism: every decision is a pure function of (schedule seed,
// site, per-site call index). Each site keeps its own atomic call
// counter, so the k-th evaluation of a site fires identically no matter
// how goroutines interleave across sites — a chaos run is reproducible
// from its seed alone. Sites never read the wall clock and never use
// global math/rand (the package sits inside the determinism analyzer's
// contract); injected latencies are returned as durations for the call
// site to sleep on, outside the simulator.
//
// Schedule syntax (the -faults flag and TSNOOP_FAULTS env var):
//
//	seed=7;store.get.corrupt=times:2;cluster.forward.latency=every:5@10ms
//
// Semicolon-separated site=rule pairs, plus the special seed=N key.
// Rules: "times:N" (the first N calls fire), "after:N" (every call past
// the Nth fires), "every:N" (every Nth call fires), "1inN" (each call
// fires with probability 1/N, decided by the seeded hash), and "off".
// A rule may carry an "@duration" suffix naming the injected delay for
// latency sites (e.g. "every:3@50ms"); delay-less latency rules fire
// without waiting.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one failpoint. Sites are compiled into their subsystems;
// the registry only decides whether the k-th evaluation fires.
type Site uint8

const (
	// StorePutFail makes Store.Put fail with an injected ENOSPC-style
	// write error before anything reaches disk.
	StorePutFail Site = iota
	// StorePutTorn makes Store.Put commit a torn entry: only a prefix of
	// the encoded bytes lands, yet the write "succeeds" — the crash-mid-
	// write shape the store's checksums exist to catch.
	StorePutTorn
	// StoreGetCorrupt flips one deterministic bit in the bytes Store.Get
	// reads back from disk, simulating media rot.
	StoreGetCorrupt
	// QueueSeedPanic makes a queue seed worker panic mid-simulation.
	QueueSeedPanic
	// QueueSeedSlow delays a queue seed worker before it simulates.
	QueueSeedSlow
	// ClusterDialRefuse fails a cluster forward attempt as if the peer
	// refused the connection.
	ClusterDialRefuse
	// ClusterLatency delays a cluster forward attempt before it is sent.
	ClusterLatency
	// Cluster5xx fails a cluster forward attempt as if the peer answered
	// 502.
	Cluster5xx
	// ClusterTruncate truncates a forwarded response body mid-document,
	// so the entry node receives unparsable JSON from a "healthy" peer.
	ClusterTruncate
	// HTTPDelay delays an HTTP response before the handler runs.
	HTTPDelay

	numSites
)

// siteNames maps sites to their schedule-syntax names.
var siteNames = [numSites]string{
	StorePutFail:      "store.put.fail",
	StorePutTorn:      "store.put.torn",
	StoreGetCorrupt:   "store.get.corrupt",
	QueueSeedPanic:    "queue.seed.panic",
	QueueSeedSlow:     "queue.seed.slow",
	ClusterDialRefuse: "cluster.forward.refuse",
	ClusterLatency:    "cluster.forward.latency",
	Cluster5xx:        "cluster.forward.5xx",
	ClusterTruncate:   "cluster.forward.truncate",
	HTTPDelay:         "http.delay",
}

// String returns the site's schedule-syntax name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Sites lists every registered failpoint name, sorted — the vocabulary
// Parse accepts and the README documents.
func Sites() []string {
	out := make([]string, numSites)
	for i := range siteNames {
		out[i] = siteNames[i]
	}
	sort.Strings(out)
	return out
}

// rule modes.
const (
	modeOff   = iota
	modeTimes // first N calls fire
	modeAfter // calls past the Nth fire
	modeEvery // every Nth call fires
	modeOneIn // each call fires with probability 1/N via the seeded hash
)

// rule is one site's compiled schedule entry.
type rule struct {
	mode  int
	n     int64
	delay time.Duration
}

// Set is a compiled, enabled-or-not fault schedule. All methods are
// safe for concurrent use; decisions are deterministic per (seed, site,
// call index).
type Set struct {
	seed  uint64
	rules [numSites]rule
	calls [numSites]atomic.Int64
	fired [numSites]atomic.Int64
}

// active is the process-wide installed schedule; nil means injection is
// compiled in but disabled — the zero-overhead state.
var active atomic.Pointer[Set]

// Active returns the installed schedule, or nil when injection is
// disabled. This is the one branch every site pays.
func Active() *Set { return active.Load() }

// Enable installs s as the process-wide schedule (nil disables).
func Enable(s *Set) { active.Store(s) }

// Disable removes any installed schedule.
func Disable() { active.Store(nil) }

// Parse compiles a schedule string (see the package comment for the
// syntax). An empty string yields an error — callers gate on emptiness
// before parsing.
func Parse(spec string) (*Set, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("fault: empty schedule")
	}
	s := &Set{seed: 1}
	seen := false
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not name=rule", part)
		}
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		if name == "seed" {
			var seed uint64
			if _, err := fmt.Sscanf(val, "%d", &seed); err != nil {
				return nil, fmt.Errorf("fault: seed %q is not an integer", val)
			}
			s.seed = seed
			continue
		}
		site, err := siteByName(name)
		if err != nil {
			return nil, err
		}
		r, err := parseRule(val)
		if err != nil {
			return nil, fmt.Errorf("fault: %s: %w", name, err)
		}
		s.rules[site] = r
		seen = true
	}
	if !seen {
		return nil, fmt.Errorf("fault: schedule %q names no sites", spec)
	}
	return s, nil
}

func siteByName(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown site %q (known: %s)", name, strings.Join(Sites(), ", "))
}

func parseRule(val string) (rule, error) {
	var r rule
	if at := strings.Index(val, "@"); at >= 0 {
		d, err := time.ParseDuration(val[at+1:])
		if err != nil || d < 0 {
			return rule{}, fmt.Errorf("bad delay %q", val[at+1:])
		}
		r.delay = d
		val = val[:at]
	}
	switch {
	case val == "off":
		r.mode = modeOff
	case strings.HasPrefix(val, "times:"):
		r.mode = modeTimes
		return ruleN(r, val[len("times:"):])
	case strings.HasPrefix(val, "after:"):
		r.mode = modeAfter
		return ruleN(r, val[len("after:"):])
	case strings.HasPrefix(val, "every:"):
		r.mode = modeEvery
		return ruleN(r, val[len("every:"):])
	case strings.HasPrefix(val, "1in"):
		r.mode = modeOneIn
		return ruleN(r, val[len("1in"):])
	default:
		return rule{}, fmt.Errorf("bad rule %q (want times:N, after:N, every:N, 1inN, or off)", val)
	}
	return r, nil
}

func ruleN(r rule, s string) (rule, error) {
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
		return rule{}, fmt.Errorf("bad count %q (want an integer >= 1)", s)
	}
	r.n = n
	return r, nil
}

// String renders the schedule canonically: the seed, then every armed
// site in declaration order.
func (s *Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.seed)
	for i := range s.rules {
		r := s.rules[i]
		if r.mode == modeOff {
			continue
		}
		b.WriteString(";")
		b.WriteString(siteNames[i])
		b.WriteString("=")
		switch r.mode {
		case modeTimes:
			fmt.Fprintf(&b, "times:%d", r.n)
		case modeAfter:
			fmt.Fprintf(&b, "after:%d", r.n)
		case modeEvery:
			fmt.Fprintf(&b, "every:%d", r.n)
		case modeOneIn:
			fmt.Fprintf(&b, "1in%d", r.n)
		}
		if r.delay > 0 {
			fmt.Fprintf(&b, "@%s", r.delay)
		}
	}
	return b.String()
}

// mix64 is SplitMix64's output permutation: a statistically strong,
// allocation-free hash of one word.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide is the pure decision function: does call k of site fire?
func (s *Set) decide(site Site, k int64) bool {
	r := &s.rules[site]
	switch r.mode {
	case modeTimes:
		return k <= r.n
	case modeAfter:
		return k > r.n
	case modeEvery:
		return k%r.n == 0
	case modeOneIn:
		return mix64(s.seed^uint64(site)<<56^uint64(k))%uint64(r.n) == 0
	}
	return false
}

// Fire counts one evaluation of site and reports whether it fires.
// Allocation-free; the decision depends only on the schedule seed and
// this site's call index.
func (s *Set) Fire(site Site) bool {
	k := s.calls[site].Add(1)
	if !s.decide(site, k) {
		return false
	}
	s.fired[site].Add(1)
	return true
}

// Delay counts one evaluation of a latency site and returns the
// injected delay: the rule's @duration when the call fires, zero
// otherwise. The caller sleeps outside the simulator.
func (s *Set) Delay(site Site) time.Duration {
	if !s.Fire(site) {
		return 0
	}
	return s.rules[site].delay
}

// Corrupt counts one evaluation of a corruption site and, when it
// fires and data is non-empty, flips one deterministically chosen bit
// in place and reports true.
func (s *Set) Corrupt(site Site, data []byte) bool {
	k := s.calls[site].Add(1)
	if !s.decide(site, k) || len(data) == 0 {
		return false
	}
	s.fired[site].Add(1)
	h := mix64(s.seed ^ uint64(site)<<48 ^ uint64(k)*0x100000001b3)
	data[h%uint64(len(data))] ^= 1 << (h >> 61)
	return true
}

// Truncate counts one evaluation of a truncation site and, when it
// fires, returns a prefix of data (about half, never the whole) and
// true. The returned slice aliases data.
func (s *Set) Truncate(site Site, data []byte) ([]byte, bool) {
	if !s.Fire(site) || len(data) == 0 {
		return data, false
	}
	return data[:len(data)/2], true
}

// SiteStats is one site's evaluation counters.
type SiteStats struct {
	Site  string `json:"site"`
	Calls int64  `json:"calls"`
	Fired int64  `json:"fired"`
}

// Stats snapshots every armed site's counters, in declaration order.
func (s *Set) Stats() []SiteStats {
	out := make([]SiteStats, 0, numSites)
	for i := range s.rules {
		if s.rules[i].mode == modeOff {
			continue
		}
		out = append(out, SiteStats{
			Site:  siteNames[i],
			Calls: s.calls[i].Load(),
			Fired: s.fired[i].Load(),
		})
	}
	return out
}
