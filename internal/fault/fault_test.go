package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseAndString(t *testing.T) {
	s, err := Parse("seed=7; store.get.corrupt=times:2 ;queue.seed.panic=1in4;cluster.forward.latency=every:5@10ms")
	if err != nil {
		t.Fatal(err)
	}
	want := "seed=7;store.get.corrupt=times:2;queue.seed.panic=1in4;cluster.forward.latency=every:5@10ms"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"seed=7",                      // no sites armed
		"store.get.corrupt",           // not name=rule
		"no.such.site=times:1",        // unknown site
		"store.get.corrupt=sometimes", // unknown mode
		"store.get.corrupt=times:0",   // count < 1
		"store.get.corrupt=times:x",   // not an integer
		"queue.seed.slow=every:2@-5s", // negative delay
		"seed=banana;http.delay=times:1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestRuleModes(t *testing.T) {
	fires := func(rule string, calls int) []int {
		t.Helper()
		s, err := Parse("seed=3;queue.seed.panic=" + rule)
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for k := 1; k <= calls; k++ {
			if s.Fire(QueueSeedPanic) {
				out = append(out, k)
			}
		}
		return out
	}
	if got := fires("times:2", 6); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("times:2 fired at %v, want [1 2]", got)
	}
	if got := fires("after:4", 6); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("after:4 fired at %v, want [5 6]", got)
	}
	if got := fires("every:3", 9); len(got) != 3 || got[0] != 3 || got[2] != 9 {
		t.Errorf("every:3 fired at %v, want [3 6 9]", got)
	}
	if got := fires("off", 9); len(got) != 0 {
		t.Errorf("off fired at %v", got)
	}
}

// The 1inN decision is a pure function of (seed, site, call index):
// two sets with the same seed produce identical fire sequences, and a
// different seed produces a different one.
func TestOneInIsSeedDeterministic(t *testing.T) {
	seq := func(seed string) string {
		t.Helper()
		s, err := Parse("seed=" + seed + ";queue.seed.panic=1in3")
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for k := 0; k < 200; k++ {
			if s.Fire(QueueSeedPanic) {
				b.WriteString("1")
			} else {
				b.WriteString("0")
			}
		}
		return b.String()
	}
	a, b, c := seq("42"), seq("42"), seq("43")
	if a != b {
		t.Error("same seed produced different fire sequences")
	}
	if a == c {
		t.Error("different seeds produced identical fire sequences")
	}
	if n := strings.Count(a, "1"); n < 30 || n > 110 {
		t.Errorf("1in3 fired %d/200 times, implausible for p=1/3", n)
	}
}

// Per-site counters are independent: concurrent hammering of one site
// never perturbs another site's schedule.
func TestSitesIndependentUnderConcurrency(t *testing.T) {
	s, err := Parse("seed=1;http.delay=1in2;store.put.fail=times:3")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Fire(HTTPDelay)
			}
		}()
	}
	wg.Wait()
	var fired int
	for k := 0; k < 10; k++ {
		if s.Fire(StorePutFail) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("times:3 fired %d times after another site was hammered, want 3", fired)
	}
}

func TestDelayAndCorruptAndTruncate(t *testing.T) {
	s, err := Parse("seed=9;queue.seed.slow=times:1@25ms;store.get.corrupt=times:1;cluster.forward.truncate=times:1")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Delay(QueueSeedSlow); d != 25*time.Millisecond {
		t.Errorf("first Delay = %v, want 25ms", d)
	}
	if d := s.Delay(QueueSeedSlow); d != 0 {
		t.Errorf("second Delay = %v, want 0", d)
	}

	orig := []byte(`{"runtime_ps":42}`)
	data := append([]byte(nil), orig...)
	if !s.Corrupt(StoreGetCorrupt, data) {
		t.Fatal("first Corrupt did not fire")
	}
	if string(data) == string(orig) {
		t.Error("Corrupt fired but changed nothing")
	}
	diff := 0
	for i := range data {
		if data[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("Corrupt changed %d bytes, want exactly 1", diff)
	}

	body := []byte(strings.Repeat("x", 100))
	got, fired := s.Truncate(ClusterTruncate, body)
	if !fired || len(got) != 50 {
		t.Errorf("Truncate = %d bytes, fired=%v; want 50, true", len(got), fired)
	}
	if got, fired := s.Truncate(ClusterTruncate, body); fired || len(got) != 100 {
		t.Errorf("exhausted Truncate = %d bytes, fired=%v; want 100, false", len(got), fired)
	}
}

func TestEnableDisableActive(t *testing.T) {
	t.Cleanup(Disable)
	if Active() != nil {
		t.Fatal("fresh process has an active schedule")
	}
	s, err := Parse("seed=1;http.delay=times:1")
	if err != nil {
		t.Fatal(err)
	}
	Enable(s)
	if Active() != s {
		t.Fatal("Enable did not install the schedule")
	}
	Disable()
	if Active() != nil {
		t.Fatal("Disable left a schedule active")
	}
}

func TestStatsCountCallsAndFires(t *testing.T) {
	s, err := Parse("seed=1;store.put.fail=times:2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Fire(StorePutFail)
	}
	st := s.Stats()
	if len(st) != 1 || st[0].Site != "store.put.fail" || st[0].Calls != 5 || st[0].Fired != 2 {
		t.Errorf("stats = %+v, want store.put.fail 5 calls / 2 fired", st)
	}
}

// The disabled state — the only one production runs in — is one atomic
// load and a nil check per site: zero allocations.
func TestFaultDisabledZeroAllocs(t *testing.T) {
	Disable()
	var fired bool
	if got := testing.AllocsPerRun(1000, func() {
		if f := Active(); f != nil && f.Fire(StoreGetCorrupt) {
			fired = true
		}
	}); got != 0 {
		t.Errorf("disabled failpoint site: %v allocs/op, want 0", got)
	}
	_ = fired
}

// Enabled sites stay allocation-free too: decisions are pure integer
// arithmetic on atomics.
func TestFaultEnabledZeroAllocs(t *testing.T) {
	t.Cleanup(Disable)
	s, err := Parse("seed=1;store.get.corrupt=1in4")
	if err != nil {
		t.Fatal(err)
	}
	Enable(s)
	var fired bool
	if got := testing.AllocsPerRun(1000, func() {
		if f := Active(); f != nil && f.Fire(StoreGetCorrupt) {
			fired = true
		}
	}); got != 0 {
		t.Errorf("enabled failpoint site: %v allocs/op, want 0", got)
	}
	_ = fired
}
