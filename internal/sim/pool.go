package sim

// Pool is a free list for the hot-path payload types (transaction
// copies, network messages): single-threaded, LIFO, zero-on-release.
// Get returns a zeroed *T; Put zeroes the value before recycling it so
// a pooled object can never retain payload references (the one rule
// every call site used to repeat by hand).
type Pool[T any] struct {
	free []*T
}

// Get returns a zeroed value, recycled when possible.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		return v
	}
	return new(T)
}

// Put zeroes v and returns it to the pool.
func (p *Pool[T]) Put(v *T) {
	var zero T
	*v = zero
	p.free = append(p.free, v)
}
