// Package sim provides a deterministic discrete-event simulation kernel
// used by every other subsystem in this repository: the timestamp-snooping
// network, the directory protocols, the processor models, and the
// experiment harness.
//
// The kernel is intentionally small: a monotonically increasing simulated
// clock, a binary-heap event queue with stable FIFO ordering for
// same-timestamp events, and a seeded pseudo-random number generator so
// that every run is exactly reproducible from its configuration.
package sim

import "fmt"

// Time is a simulated instant measured in integer picoseconds.
//
// Picoseconds are used (rather than nanoseconds) because the paper's
// processor model executes four billion instructions per second, i.e. one
// instruction each 250 ps; nanosecond granularity would not represent the
// instruction cost exactly.
type Time int64

// Duration is a span of simulated time, also in picoseconds.
type Duration = Time

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Nanoseconds reports t as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t < 10*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < 10*Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < 10*Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	}
}
