package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically (FIFO)
	fn  func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (Time, bool) { // smallest timestamp without popping
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// ready to use at time zero.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	// Executed counts dispatched events; useful for progress accounting
	// and loop-detection in tests.
	executed uint64
}

// NewKernel returns a kernel whose clock starts at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled-but-not-yet-dispatched events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative delays panic.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Step dispatches the single earliest event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.executed++
	e.fn()
	return true
}

// Run dispatches events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for {
		at, ok := k.events.peek()
		if !ok || at > t {
			break
		}
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
}

// RunWhile dispatches events while cond() holds and events remain. It is
// the main loop used by the harness ("run until every processor has
// finished its quota").
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}
