package sim

import (
	"fmt"

	"tsnoop/internal/obs"
)

// EventFn is the typed-event callback: a plain function (no closure)
// invoked with the arguments captured at scheduling time. The hot paths
// of the simulator — link deliveries, port service, protocol handoffs —
// schedule typed events so that the steady state allocates nothing: a
// package-level EventFn value, pointer receivers boxed in `any` (pointer
// interfaces do not allocate), and one scalar slot cover every case.
type EventFn func(a0, a1 any, i0 int64)

// event is a scheduled callback, stored inline in the kernel's heap (no
// interface boxing, no per-event allocation). Exactly one of fn and tfn
// is set: fn is the convenience closure path, tfn the allocation-free
// typed path.
type event struct {
	at     Time
	seq    uint64 // insertion order; breaks ties deterministically (FIFO)
	fn     func()
	tfn    EventFn
	a0, a1 any
	i0     int64
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// ready to use at time zero.
//
// The event queue is a hand-rolled 4-ary min-heap of inline event values
// ordered by (at, seq). A 4-ary heap halves the tree depth of a binary
// heap and keeps a sift-down's children adjacent in memory, and holding
// events by value avoids the per-operation interface boxing that
// container/heap imposes: Push/Pop through heap.Interface move every
// event in and out of an `any`, which heap-allocates any struct larger
// than a word.
type Kernel struct {
	now    Time
	seq    uint64
	events []event
	// executed counts dispatched events; useful for progress accounting
	// and loop-detection in tests.
	executed uint64
	// probe is the optional telemetry hook (nil = zero overhead beyond
	// one predictable branch per schedule/dispatch). It records dispatch
	// counts, schedule distances, and the heap's high-water mark — all
	// derived from simulated time, never wall clock.
	probe *obs.Probe
}

// SetProbe attaches (or, with nil, detaches) the telemetry probe.
func (k *Kernel) SetProbe(p *obs.Probe) { k.probe = p }

// NewKernel returns a kernel whose clock starts at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled-but-not-yet-dispatched events.
func (k *Kernel) Pending() int { return len(k.events) }

// less orders events by (at, seq); seq is unique, so this is a strict
// total order and dispatch is deterministic regardless of heap shape.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, sifting up through the 4-ary heap.
func (k *Kernel) push(e event) {
	h := append(k.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	k.events = h
	if p := k.probe; p != nil {
		p.HeapDepth(len(h))
	}
}

// popMin removes and returns the earliest event. The caller must have
// checked that the heap is non-empty. The vacated tail slot is zeroed so
// the heap's backing array does not retain references to dead callbacks
// and payloads.
func (k *Kernel) popMin() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	k.events = h
	// Sift down: swap with the smallest of up to four children.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[min]) {
				min = j
			}
		}
		if !less(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if p := k.probe; p != nil {
		p.ScheduleDelay(int64(t - k.now))
	}
	k.seq++
	k.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative delays panic.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// AtCall schedules the typed event fn(a0, a1, i0) at absolute time t.
// Unlike At with a capturing closure, nothing here allocates at steady
// state: fn should be a package-level function, a0/a1 pointers
// (pointer-to-any conversions do not allocate), and i0 any scalar
// payload. Scheduling in the past panics.
func (k *Kernel) AtCall(t Time, fn EventFn, a0, a1 any, i0 int64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if p := k.probe; p != nil {
		p.ScheduleDelay(int64(t - k.now))
	}
	k.seq++
	k.push(event{at: t, seq: k.seq, tfn: fn, a0: a0, a1: a1, i0: i0})
}

// AfterCall schedules the typed event fn(a0, a1, i0) d picoseconds from
// now. Negative delays panic.
func (k *Kernel) AfterCall(d Duration, fn EventFn, a0, a1 any, i0 int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.AtCall(k.now+d, fn, a0, a1, i0)
}

// Step dispatches the single earliest event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.popMin()
	k.now = e.at
	k.executed++
	if p := k.probe; p != nil {
		p.Dispatch(e.tfn != nil)
	}
	if e.tfn != nil {
		e.tfn(e.a0, e.a1, e.i0)
	} else {
		e.fn()
	}
	return true
}

// Run dispatches events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
}

// RunWhile dispatches events while cond() holds and events remain. It is
// the main loop used by the harness ("run until every processor has
// finished its quota").
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}
