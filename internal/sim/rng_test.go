package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(12345), NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical seeds diverged")
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	parent := NewRand(99)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 identical", same)
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(5)
	const target = 50.0
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Geometric(target)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	// Exponential rounding keeps the realized mean near the target; wide
	// tolerance because of the clamp and floor.
	if mean < target*0.8 || mean > target*1.2 {
		t.Fatalf("Geometric mean = %v, want ~%v", mean, target)
	}
}

func TestRandGeometricSmallMean(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 1000; i++ {
		if v := r.Geometric(0.5); v != 1 && v > 32 {
			t.Fatalf("Geometric(0.5) = %d", v)
		}
	}
}

func TestLnApprox(t *testing.T) {
	for _, x := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		got := lnApprox(x)
		want := math.Log(x)
		if math.Abs(got-want) > 5e-3*math.Max(1, math.Abs(want)) {
			t.Errorf("lnApprox(%v) = %v, want %v", x, got, want)
		}
	}
}

// Property: Duration samples stay within the bound.
func TestRandDurationProperty(t *testing.T) {
	r := NewRand(8)
	f := func(d uint32) bool {
		bound := Duration(d%1000000) + 1
		v := r.Duration(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
