package sim

// Rand is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** with a splitmix64 seeder). The standard library's
// math/rand would also work, but carrying our own implementation keeps the
// generated streams stable across Go releases, which matters because the
// workload generators and the perturbation methodology are both seeded and
// the regression tests assert exact simulated runtimes.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from the given value. Any seed,
// including zero, produces a usable state.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 expansion of the seed into 256 bits of state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r; used to give each
// processor and each subsystem its own stream so that adding a consumer
// does not perturb the others.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics when n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Duration returns a uniform Duration in [0, d). d must be positive.
func (r *Rand) Duration(d Duration) Duration { return Duration(r.Int63n(int64(d))) }

// Geometric returns a sample from a geometric-ish distribution with the
// given mean (>= 1), clamped to [1, 64*mean]. Used for "think time"
// instruction counts between memory operations.
func (r *Rand) Geometric(mean float64) int {
	if mean < 1 {
		mean = 1
	}
	// Inverse-CDF sampling of an exponential, rounded up.
	u := r.Float64()
	if u >= 1 {
		u = 0.999999
	}
	x := 1 - u
	// -ln(x) * mean, computed without math import via a short series is
	// too inaccurate; use a simple iterative approximation of ln.
	v := lnApprox(x)
	n := int(-v * mean)
	if n < 1 {
		n = 1
	}
	if max := int(mean * 64); n > max {
		n = max
	}
	return n
}

// lnApprox computes a natural log approximation for x in (0,1], accurate to
// a few parts in 1e3 — ample for workload think-time sampling.
func lnApprox(x float64) float64 {
	if x <= 0 {
		return -36 // ~ln(2^-52)
	}
	// Normalize x into [0.5, 1) tracking the power of two.
	k := 0
	for x < 0.5 {
		x *= 2
		k--
	}
	for x >= 1 {
		x /= 2
		k++
	}
	// atanh-based series: ln(x) = 2*atanh((x-1)/(x+1)).
	y := (x - 1) / (x + 1)
	y2 := y * y
	s := y * (1 + y2*(1.0/3+y2*(1.0/5+y2*(1.0/7+y2/9))))
	const ln2 = 0.6931471805599453
	return 2*s + float64(k)*ln2
}
