package sim

// FIFO is a slice-backed queue for the typed-event delivery pattern
// used throughout the hot paths: when every pending completion shares
// one fixed delay, kernel dispatch order (at, seq) is exactly push
// order, so a plain FIFO replaces a closure per completion. Pops zero
// the vacated slot (dead payloads are not retained) and the backing
// array is reused once drained, so steady-state push/pop allocates
// nothing.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Push appends v.
func (f *FIFO[T]) Push(v T) { f.buf = append(f.buf, v) }

// Pop removes and returns the oldest element. The caller must know the
// queue is non-empty (one pending typed event per pushed element).
func (f *FIFO[T]) Pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v
}

// Len reports the number of queued elements.
func (f *FIFO[T]) Len() int { return len(f.buf) - f.head }

// Cap reports the backing array's capacity (capacity-stability tests).
func (f *FIFO[T]) Cap() int { return cap(f.buf) }
