package sim

import (
	"testing"
	"testing/quick"

	"tsnoop/internal/obs"
)

// countEvent is the package-level EventFn used by the allocation tests:
// typed events must never force a closure.
func countEvent(a0, a1 any, i0 int64) {
	*(a0.(*int)) += int(i0)
}

func TestKernelTypedEvents(t *testing.T) {
	k := NewKernel()
	sum := 0
	k.AtCall(30, countEvent, &sum, nil, 3)
	k.AtCall(10, countEvent, &sum, nil, 1)
	k.AfterCall(20, countEvent, &sum, nil, 2)
	order := []int{}
	k.At(10, func() { order = append(order, sum) }) // after the typed event at 10? no: FIFO at same time
	k.Run()
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
	// The closure at t=10 was scheduled after the typed event at t=10, so
	// FIFO tie-breaking runs it second and it observes sum == 1.
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("closure observed sum %v, want [1]", order)
	}
}

// TestKernelAllocs pins the allocation-free steady state: scheduling and
// dispatching a typed event must not allocate, and neither must a
// non-capturing closure (no interface boxing anywhere in the heap).
func TestKernelAllocs(t *testing.T) {
	k := NewKernel()
	sum := 0
	// Warm the heap's backing array.
	for i := 0; i < 64; i++ {
		k.AfterCall(Duration(i), countEvent, &sum, nil, 1)
	}
	k.Run()

	if a := testing.AllocsPerRun(1000, func() {
		k.AfterCall(1, countEvent, &sum, nil, 1)
		k.Step()
	}); a != 0 {
		t.Errorf("typed event schedule+dispatch allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		k.After(1, func() {})
		k.Step()
	}); a != 0 {
		t.Errorf("non-capturing closure schedule+dispatch allocates %v/op, want 0", a)
	}
}

// TestKernelAllocsWithProbe pins the probes-on budget: the telemetry
// probe's counters and fixed-bucket histograms are pure integer
// arithmetic over preallocated storage, so an instrumented kernel
// still schedules and dispatches without allocating.
func TestKernelAllocsWithProbe(t *testing.T) {
	k := NewKernel()
	k.SetProbe(obs.NewProbe())
	sum := 0
	for i := 0; i < 64; i++ {
		k.AfterCall(Duration(i), countEvent, &sum, nil, 1)
	}
	k.Run()

	if a := testing.AllocsPerRun(1000, func() {
		k.AfterCall(1, countEvent, &sum, nil, 1)
		k.Step()
	}); a != 0 {
		t.Errorf("instrumented typed event schedule+dispatch allocates %v/op, want 0", a)
	}
}

// Property: the hand-rolled 4-ary heap dispatches any interleaving of
// pushes and pops in exact (at, seq) order, including duplicates and
// events scheduled from inside events.
func TestKernelHeapOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		k := NewKernel()
		var fired []Time
		var record EventFn
		record = func(a0, a1 any, i0 int64) {
			fired = append(fired, k.Now())
			if i0 > 0 { // nested scheduling from inside a typed event
				k.AfterCall(Duration(i0), record, nil, nil, 0)
			}
		}
		want := 0
		for i, v := range raw {
			k.AtCall(Time(v), record, nil, nil, int64(i%3))
			want++
			if i%3 != 0 {
				want++
			}
		}
		k.Run()
		if len(fired) != want {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Same-time typed and closure events must interleave strictly FIFO.
func TestKernelMixedFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	push := func(a0, a1 any, i0 int64) {
		p := a0.(*[]int)
		*p = append(*p, int(i0))
	}
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			k.AtCall(50, EventFn(push), &order, nil, int64(i))
		} else {
			i := i
			k.At(50, func() { order = append(order, i) })
		}
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed same-time events not FIFO: %v", order)
		}
	}
}
