package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelZeroValueUsable(t *testing.T) {
	var k Kernel
	if k.Now() != 0 {
		t.Fatalf("zero kernel Now = %v, want 0", k.Now())
	}
	ran := false
	k.After(5*Nanosecond, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if k.Now() != 5*Nanosecond {
		t.Fatalf("Now = %v, want 5ns", k.Now())
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestKernelFIFOAtSameTime(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.At(10, func() {
		hits = append(hits, k.Now())
		k.After(5, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := Time(10); i <= 100; i += 10 {
		k.At(i, func() { count++ })
	}
	k.RunUntil(50)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if k.Now() != 50 {
		t.Fatalf("Now = %v, want 50", k.Now())
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", k.Pending())
	}
	k.Run()
	if count != 10 {
		t.Fatalf("count after Run = %d, want 10", count)
	}
}

func TestKernelRunWhile(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := Time(1); i <= 100; i++ {
		k.At(i, func() { count++ })
	}
	k.RunWhile(func() bool { return count < 7 })
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(50, func() {})
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestKernelExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 42; i++ {
		k.At(Time(i), func() {})
	}
	k.Run()
	if k.Executed() != 42 {
		t.Fatalf("Executed = %d, want 42", k.Executed())
	}
}

// Property: regardless of insertion order, events fire in nondecreasing
// timestamp order, and the clock never goes backward.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, v := range raw {
			at := Time(v)
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{250, "250ps"},
		{49 * Nanosecond, "49.00ns"},
		{123 * Microsecond, "123.00us"},
		{45 * Millisecond, "45.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}
