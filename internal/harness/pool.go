package harness

// This file is the concurrent experiment engine. Every grid cell,
// perturbed seed, and sweep point builds its own sim.Kernel, RNG, and
// system.System, so runs are independent and fan out across a worker
// pool (internal/parallel). Jobs are enumerated in the serial
// presentation order and results are collected by index, which keeps
// every figure and table rendering byte-identical to a Workers=1 run.
// Per-run machine configurations all derive from spec.Spec (cellSpec),
// so the quota and knob resolution rules cannot drift between the grid,
// the sweeps, and the tables.

import (
	"fmt"

	"tsnoop/internal/parallel"
	"tsnoop/internal/sim"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// workers resolves the experiment's Workers knob (0 = one per CPU).
func (e Experiment) workers() int { return parallel.Workers(e.Workers) }

// seeds normalizes the Seeds knob: anything below 1 means a single
// unperturbed run, so a zero-valued Experiment still renders figures.
func (e Experiment) seeds() int {
	if e.Seeds < 1 {
		return 1
	}
	return e.Seeds
}

// cellSpec derives the spec a grid cell, sweep point, or table row
// starts from: the experiment's Base knobs with the cell coordinates
// and the experiment's machine-scale fields applied. Seed fan-out and
// perturbation are owned by the engine (runSeed), so the base's
// PerturbNS is cleared here.
func (e Experiment) cellSpec(bench, proto, network string) spec.Spec {
	s := spec.Default()
	if e.Base != nil {
		s = *e.Base
	}
	s.Benchmark, s.Protocol, s.Network = bench, proto, network
	s.Nodes = e.Nodes
	s.QuotaScale, s.WarmupScale = e.QuotaScale, e.WarmupScale
	s.Seeds = 1
	s.PerturbNS = 0
	return s
}

// CellSpec derives the one self-contained spec whose Run reproduces a
// cell's reported result: the per-cell base (cellSpec) with the engine's
// seed fan-out and perturbation rules (runSeed) folded in, so
// CellSpec(c).Run() equals the cell's streamed Best. It is the identity
// the service layer content-addresses grid cells by.
func (e Experiment) CellSpec(c Cell) spec.Spec {
	s := e.cellSpec(c.Benchmark, c.Protocol, c.Network)
	s.Seeds = e.seeds()
	if e.Seeds > 1 {
		s.PerturbNS = int64(e.PerturbMax / sim.Nanosecond)
	}
	return s
}

// Cells enumerates the benchmark x protocol cells of one network's grid
// in presentation order — the order StreamGrid yields results in.
func (e Experiment) Cells(network string) []Cell {
	var cells []Cell
	for _, b := range e.benchmarks() {
		for _, p := range e.protocols() {
			cells = append(cells, Cell{Benchmark: b, Protocol: p, Network: network})
		}
	}
	return cells
}

// seedJob is one simulation in a grid run: a cell plus a perturbation
// seed. The generator is cloned per job so concurrent jobs never share
// workload state.
type seedJob struct {
	cell Cell
	gen  workload.Generator
	seed int
}

// checkCloneable rejects job lists whose generators cannot produce
// fresh-state copies. Generators are stateful and one looked-up
// generator backs every job of its cell group, so each must be
// cloneable — a silent shared-state fallback would race across workers.
func checkCloneable(jobs []seedJob) error {
	for _, j := range jobs {
		if _, ok := j.gen.(workload.Cloner); !ok {
			return fmt.Errorf("harness: generator %q does not implement workload.Cloner (seed runs need fresh generator state)", j.gen.Name())
		}
	}
	return nil
}

// runSeedJobs executes jobs across the pool, results in job order.
func (e Experiment) runSeedJobs(jobs []seedJob) ([]*stats.Run, error) {
	if err := checkCloneable(jobs); err != nil {
		return nil, err
	}
	return parallel.Map(e.workers(), len(jobs), func(i int) (*stats.Run, error) {
		j := jobs[i]
		return e.runSeed(j.cell, workload.CloneOf(j.gen), j.seed)
	})
}

// runSeed executes one perturbed run of a cell on a fresh generator.
// Per-cell seeds count up from the base spec's Seed (default 1), so a
// -seed flag shifts the whole window.
func (e Experiment) runSeed(c Cell, gen workload.Generator, seed int) (*stats.Run, error) {
	s := e.cellSpec(c.Benchmark, c.Protocol, c.Network)
	s.Seed += uint64(seed)
	if e.Seeds > 1 {
		s.PerturbNS = int64(e.PerturbMax / sim.Nanosecond)
	}
	cfg, err := s.ConfigFor(gen)
	if err != nil {
		return nil, err
	}
	sys, err := system.Build(cfg, gen)
	if err != nil {
		return nil, err
	}
	return sys.Execute(), nil
}

// BestOf picks the minimum-runtime run — the paper's reporting rule ("we
// report the minimum run time from a set of runs") — keeping the
// earliest run on ties. Returns nil for no runs.
func BestOf(runs []*stats.Run) *stats.Run { return stats.Best(runs) }

// lookupGen is ByName with the error the harness reports for unknown
// benchmark names. Names may use any registered scheme (trace:<path>).
func lookupGen(name string, nodes int) (workload.Generator, error) {
	gen, err := workload.ByName(name, nodes)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return gen, nil
}
