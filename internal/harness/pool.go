package harness

// This file is the concurrent experiment engine. Every grid cell,
// perturbed seed, and sweep point builds its own sim.Kernel, RNG, and
// system.System, so runs are independent and fan out across a worker
// pool (internal/parallel). Jobs are enumerated in the serial
// presentation order and results are collected by index, which keeps
// every figure and table rendering byte-identical to a Workers=1 run.

import (
	"fmt"

	"tsnoop/internal/parallel"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"

	// Registers the trace:<path> workload scheme for lookupGen.
	_ "tsnoop/internal/trace"
)

// workers resolves the experiment's Workers knob (0 = one per CPU).
func (e Experiment) workers() int { return parallel.Workers(e.Workers) }

// seeds normalizes the Seeds knob: anything below 1 means a single
// unperturbed run, so a zero-valued Experiment still renders figures.
func (e Experiment) seeds() int {
	if e.Seeds < 1 {
		return 1
	}
	return e.Seeds
}

// seedJob is one simulation in a grid run: a cell plus a perturbation
// seed. The generator is cloned per job so concurrent jobs never share
// workload state.
type seedJob struct {
	cell Cell
	gen  workload.Generator
	seed int
}

// runSeedJobs executes jobs across the pool, results in job order.
// Generators are stateful and one looked-up generator backs every job
// of its cell group, so each must be cloneable — a silent shared-state
// fallback would race across workers.
func (e Experiment) runSeedJobs(jobs []seedJob) ([]*stats.Run, error) {
	for _, j := range jobs {
		if _, ok := j.gen.(workload.Cloner); !ok {
			return nil, fmt.Errorf("harness: generator %q does not implement workload.Cloner (seed runs need fresh generator state)", j.gen.Name())
		}
	}
	return parallel.Map(e.workers(), len(jobs), func(i int) (*stats.Run, error) {
		j := jobs[i]
		return e.runSeed(j.cell, workload.CloneOf(j.gen), j.seed)
	})
}

// baseConfig derives the scaled machine configuration every execution
// path (grid cells, sweep points, Table 3) starts from, so the quota
// and warm-up rules cannot drift between them.
func (e Experiment) baseConfig(bench, proto, network string) system.Config {
	cfg := system.DefaultConfig(proto, network)
	cfg.Nodes = e.Nodes
	cfg.WarmupPerCPU = scale(cfg.WarmupPerCPU, e.WarmupScale)
	cfg.MeasurePerCPU = scale(workload.MeasureQuota(bench), e.QuotaScale)
	return cfg
}

// applyQuotas overrides the scaled quota defaults with a workload's own
// phase quotas when it carries them (recorded traces). Trace quotas are
// used verbatim — scaling happened when the trace was recorded, or via
// the Window transform — so a replayed cell consumes its streams
// exactly.
func applyQuotas(cfg *system.Config, gen workload.Generator) {
	if q, ok := gen.(workload.Quotaed); ok {
		cfg.WarmupPerCPU, cfg.MeasurePerCPU = q.Quotas()
	}
}

// runSeed executes one perturbed run of a cell on a fresh generator.
func (e Experiment) runSeed(c Cell, gen workload.Generator, seed int) (*stats.Run, error) {
	cfg := e.baseConfig(c.Benchmark, c.Protocol, c.Network)
	applyQuotas(&cfg, gen)
	cfg.Seed = uint64(seed + 1)
	if e.Seeds > 1 {
		cfg.PerturbMax = e.PerturbMax
	}
	s, err := system.Build(cfg, gen)
	if err != nil {
		return nil, err
	}
	return s.Execute(), nil
}

// BestOf picks the minimum-runtime run — the paper's reporting rule ("we
// report the minimum run time from a set of runs") — keeping the
// earliest run on ties. Returns nil for no runs.
func BestOf(runs []*stats.Run) *stats.Run {
	var best *stats.Run
	for _, r := range runs {
		if best == nil || r.Runtime < best.Runtime {
			best = r
		}
	}
	return best
}

// pointSpec is one sweep measurement: a labelled (benchmark, protocol,
// network) point with an optional config mutation, run under exp (sweeps
// override fields such as Nodes per point).
type pointSpec struct {
	exp     Experiment
	label   string
	bench   string
	proto   string
	network string
	mutate  func(*system.Config)
}

// runPoints evaluates the specs across the pool, results in spec order.
func (e Experiment) runPoints(specs []pointSpec) ([]SweepPoint, error) {
	return parallel.Map(e.workers(), len(specs), func(i int) (SweepPoint, error) {
		s := specs[i]
		return s.exp.runPoint(s.label, s.bench, s.proto, s.network, s.mutate)
	})
}

// lookupGen is ByName with the error the harness reports for unknown
// benchmark names. Names may use any registered scheme (trace:<path>).
func lookupGen(name string, nodes int) (workload.Generator, error) {
	gen, err := workload.ByName(name, nodes)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return gen, nil
}
