package harness

import (
	"fmt"
	"strings"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/parallel"
	"tsnoop/internal/protocol/directory"
	"tsnoop/internal/protocol/tssnoop"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

// Table2Row is one unloaded-latency row: the paper's analytic value and
// the value measured by running the actual protocols.
type Table2Row struct {
	Desc     string
	Analytic sim.Time
	Measured sim.Time
}

// probeEnv drives single misses through a real protocol instance.
type probeEnv struct {
	k     *sim.Kernel
	proto coherence.Protocol
}

func (e *probeEnv) access(node int, op coherence.Op, b coherence.Block) sim.Time {
	var lat sim.Time
	done := false
	e.proto.Access(node, op, b, func(r coherence.AccessResult) { lat = r.Latency; done = true })
	e.k.RunWhile(func() bool { return !done })
	return lat
}

func (e *probeEnv) settle(d sim.Duration) { e.k.RunUntil(e.k.Now() + d) }

func newProbe(topo *topology.Topology, proto string, params timing.Params) *probeEnv {
	k := sim.NewKernel()
	run := &stats.Run{}
	cc := cache.Config{SizeBytes: 512 * 1024, Ways: 4, BlockBytes: 64}
	var p coherence.Protocol
	switch proto {
	case system.ProtoTSSnoop:
		opts := tssnoop.DefaultOptions(params)
		opts.Cache = cc
		p = tssnoop.New(k, topo, params, run, nil, opts)
	case system.ProtoDirOpt:
		opts := directory.DefaultOptions(directory.Opt)
		opts.Cache = cc
		p = directory.New(k, topo, params, run, nil, opts)
	default:
		panic("probe: unsupported protocol " + proto)
	}
	env := &probeEnv{k: k, proto: p}
	env.settle(300 * sim.Nanosecond) // let logical time reach steady state
	return env
}

// blockFor picks the i-th fresh block homed at the given node.
func blockFor(home, i, nodes int) coherence.Block {
	return coherence.Block(home + i*nodes)
}

// meanOverPairs averages a probe latency over every (requester, partner)
// pair with requester != partner.
func meanOverPairs(nodes int, f func(req, partner, trial int) sim.Time) sim.Time {
	var sum sim.Time
	count := 0
	trial := 0
	for req := 0; req < nodes; req++ {
		for partner := 0; partner < nodes; partner++ {
			if req == partner {
				continue
			}
			sum += f(req, partner, trial)
			trial++
			count++
		}
	}
	return sim.Time(int64(sum) / int64(count))
}

// Table2 regenerates the unloaded-latency table for one network by both
// computing the paper's formulas and measuring the protocols, probing
// with one worker per CPU.
func Table2(network string) ([]Table2Row, error) { return Table2Workers(network, 0) }

// Table2Workers is Table2 with an explicit probe-worker bound (0 = one
// per CPU, 1 = serial). Every worker count measures identical rows.
func Table2Workers(network string, workers int) ([]Table2Row, error) {
	params := timing.Default()
	var topo *topology.Topology
	var err error
	var meanHops, maxHops int
	switch network {
	case system.NetButterfly:
		topo, err = topology.Butterfly(4)
		meanHops, maxHops = 3, 3
	case system.NetTorus:
		topo, err = topology.Torus(4, 4)
		meanHops, maxHops = 2, 4 // the paper's stated mean of 2 links
	default:
		return nil, fmt.Errorf("harness: unknown network %q", network)
	}
	if err != nil {
		return nil, err
	}
	nodes := topo.Nodes()
	dnet := params.Dnet(meanHops)

	// The three measurements drive independent probe kernels, so they run
	// concurrently; each closure owns its probe environment.
	probes := []func() sim.Time{
		// Memory latency measured on the directory protocol (its request
		// and response paths are exact).
		func() sim.Time {
			dir := newProbe(topo, system.ProtoDirOpt, params)
			return meanOverPairs(nodes, func(req, home, trial int) sim.Time {
				return dir.access(req, coherence.Load, blockFor(home, trial, nodes))
			})
		},
		// Directory 3-hop: owner takes M first, then the requester loads.
		func() sim.Time {
			dir3 := newProbe(topo, system.ProtoDirOpt, params)
			return meanOverPairs(nodes, func(req, owner, trial int) sim.Time {
				home := (owner + 5) % nodes // a third party (wraps over all homes)
				if home == req {
					home = (home + 1) % nodes
				}
				b := blockFor(home, 1000+trial, nodes)
				dir3.access(owner, coherence.Store, b)
				dir3.settle(sim.Microsecond)
				return dir3.access(req, coherence.Load, b)
			})
		},
		// Timestamp snooping cache-to-cache.
		func() sim.Time {
			ts := newProbe(topo, system.ProtoTSSnoop, params)
			return meanOverPairs(nodes, func(req, owner, trial int) sim.Time {
				home := (owner + 5) % nodes
				if home == req {
					home = (home + 1) % nodes
				}
				b := blockFor(home, 2000+trial, nodes)
				ts.access(owner, coherence.Store, b)
				ts.settle(sim.Microsecond)
				return ts.access(req, coherence.Load, b)
			})
		},
	}
	measured, err := parallel.Map(workers, len(probes), func(i int) (sim.Time, error) {
		return probes[i](), nil
	})
	if err != nil {
		return nil, err
	}
	memMeasured, threeHopMeasured, tsC2CMeasured := measured[0], measured[1], measured[2]

	rows := []Table2Row{
		{Desc: "One-way latency (Dnet)", Analytic: dnet, Measured: dnet},
		{Desc: "Block from memory (Dnet+Dmem+Dnet)", Analytic: dnet + params.Dmem + dnet, Measured: memMeasured},
		{Desc: "Block from cache, timestamp snooping (Dnet+Dcache+Dnet)", Analytic: dnet + params.Dcache + dnet, Measured: tsC2CMeasured},
		{Desc: "Block from cache, directory 3 hops (Dnet+Dmem+Dnet+Dcache+Dnet)", Analytic: 3*dnet + params.Dmem + params.Dcache, Measured: threeHopMeasured},
	}
	_ = maxHops
	return rows, nil
}

// RenderTable2 renders both networks' Table 2 rows, probing with one
// worker per CPU.
func RenderTable2() (string, error) { return RenderTable2Workers(0) }

// RenderTable2Workers is RenderTable2 with an explicit worker bound
// (0 = one per CPU, 1 = serial). The networks render sequentially so
// the bound caps total concurrent probes rather than multiplying.
func RenderTable2Workers(workers int) (string, error) {
	return RenderTable2Networks(workers, Networks...)
}

// RenderTable2Networks renders Table 2 for a chosen subset of networks.
func RenderTable2Networks(workers int, networks ...string) (string, error) {
	var b strings.Builder
	for _, net := range networks {
		rows, err := Table2Workers(net, workers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Table 2 (%s): unloaded latencies (analytic vs measured)\n", net)
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-60s %10s %10s\n", r.Desc, r.Analytic, r.Measured)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Table3Row characterizes one benchmark (Table 3).
type Table3Row struct {
	Benchmark   string
	FootprintMB float64 // configured (the paper's full-scale footprint)
	TouchedMB   float64 // measured in the scaled run
	TotalMisses int64
	ThreeHopPct float64
}

// Table3 measures the benchmark characteristics on the butterfly with
// DirOpt (the paper reports protocol-averaged values; variation across
// protocols is negligible because the reference streams are identical).
// The benchmarks run concurrently on the worker pool.
func (e Experiment) Table3() ([]Table3Row, error) {
	names := e.benchmarks()
	return parallel.Map(e.workers(), len(names), func(i int) (Table3Row, error) {
		name := names[i]
		gen, err := lookupGen(name, e.Nodes)
		if err != nil {
			return Table3Row{}, err
		}
		cfg, err := e.cellSpec(name, system.ProtoDirOpt, system.NetButterfly).ConfigFor(gen)
		if err != nil {
			return Table3Row{}, err
		}
		s, err := system.Build(cfg, gen)
		if err != nil {
			return Table3Row{}, err
		}
		run := s.Execute()
		return Table3Row{
			Benchmark:   name,
			FootprintMB: float64(gen.FootprintBytes()) / (1 << 20),
			TouchedMB:   float64(run.DataTouched) / (1 << 20),
			TotalMisses: run.TotalMisses(),
			ThreeHopPct: 100 * run.CacheToCacheFraction(),
		}, nil
	})
}

// RenderTable3 renders Table 3.
func (e Experiment) RenderTable3() (string, error) {
	rows, err := e.Table3()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 3: benchmark characteristics (scaled runs)\n")
	fmt.Fprintf(&b, "%-10s %14s %12s %12s %10s\n",
		"benchmark", "footprint(MB)", "touched(MB)", "misses", "3-hop(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.1f %12.2f %12d %9.0f%%\n",
			r.Benchmark, r.FootprintMB, r.TouchedMB, r.TotalMisses, r.ThreeHopPct)
	}
	return b.String(), nil
}
