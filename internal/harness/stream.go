package harness

// Streaming experiment execution. Grids and sweeps run as Go iterators
// over the worker pool: results arrive in presentation order the moment
// they are ready, so callers render live progress and cancel early via
// context, while collecting the full sequence remains byte-identical to
// the serial path. RunGrid and the sweep renderers are thin collectors
// over these streams.

import (
	"context"
	"encoding/json"
	"iter"

	"tsnoop/internal/parallel"
	"tsnoop/internal/stats"
	"tsnoop/internal/workload"
)

// failSeq yields a single error.
func failSeq[T any](err error) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		var zero T
		yield(zero, err)
	}
}

// StreamGrid executes every benchmark x protocol cell for one network
// and yields each CellResult in presentation order as soon as its
// perturbed seeds finish. The full benchmark x protocol x seed job list
// fans out across the worker pool, so no worker idles waiting for a
// slow cell's seeds; collecting the stream is byte-identical at any
// worker count. Cancelling ctx stops new simulations and yields the
// context error.
func (e Experiment) StreamGrid(ctx context.Context, network string) iter.Seq2[CellResult, error] {
	seeds := e.seeds()
	var cells []Cell
	var jobs []seedJob
	for _, b := range e.benchmarks() {
		gen, err := lookupGen(b, e.Nodes)
		if err != nil {
			return failSeq[CellResult](err)
		}
		for _, p := range e.protocols() {
			c := Cell{Benchmark: b, Protocol: p, Network: network}
			cells = append(cells, c)
			for seed := 0; seed < seeds; seed++ {
				jobs = append(jobs, seedJob{cell: c, gen: gen, seed: seed})
			}
		}
	}
	if err := checkCloneable(jobs); err != nil {
		return failSeq[CellResult](err)
	}
	return func(yield func(CellResult, error) bool) {
		buf := make([]*stats.Run, 0, seeds)
		cell := 0
		for run, err := range parallel.Stream(ctx, e.workers(), len(jobs), func(i int) (*stats.Run, error) {
			j := jobs[i]
			return e.runSeed(j.cell, workload.CloneOf(j.gen), j.seed)
		}) {
			if err != nil {
				yield(CellResult{}, err)
				return
			}
			buf = append(buf, run)
			if len(buf) == seeds {
				if !yield(CellResult{Cell: cells[cell], Best: BestOf(buf)}, nil) {
					return
				}
				cell++
				buf = buf[:0]
			}
		}
	}
}

// NewGrid returns an empty grid for a network, ready to Add streamed
// cell results. benchmarks fixes the presentation order (nil = the
// paper's five).
func NewGrid(network string, benchmarks []string) *Grid {
	return &Grid{Network: network, Benchmarks: benchmarks, Cells: map[string]map[string]CellResult{}}
}

// Add records one streamed cell result in the grid.
func (g *Grid) Add(cr CellResult) {
	if g.Cells[cr.Cell.Benchmark] == nil {
		g.Cells[cr.Cell.Benchmark] = map[string]CellResult{}
	}
	g.Cells[cr.Cell.Benchmark][cr.Cell.Protocol] = cr
}

// MarshalJSON renders a cell result as a flat object with stable field
// names — one line of tsnoop's streaming -json output.
func (cr CellResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Benchmark string     `json:"benchmark"`
		Protocol  string     `json:"protocol"`
		Network   string     `json:"network"`
		Run       *stats.Run `json:"run"`
	}{cr.Cell.Benchmark, cr.Cell.Protocol, cr.Cell.Network, cr.Best})
}
