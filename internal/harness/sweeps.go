package harness

import (
	"fmt"
	"strings"

	"tsnoop/internal/system"
)

// SweepPoint is one (configuration, protocol) measurement in a sweep.
type SweepPoint struct {
	Label      string
	Protocol   string
	RuntimePS  int64
	LinkBytes  int64
	ThreeHopPc float64
}

// runPoint executes one configuration for one protocol with DSS-like
// default settings on a chosen benchmark.
func (e Experiment) runPoint(label, bench, proto, network string, mutate func(*system.Config)) (SweepPoint, error) {
	gen, err := lookupGen(bench, e.Nodes)
	if err != nil {
		return SweepPoint{}, err
	}
	cfg := e.baseConfig(bench, proto, network)
	if mutate != nil {
		mutate(&cfg)
	}
	if cfg.Nodes != e.Nodes {
		if gen, err = lookupGen(bench, cfg.Nodes); err != nil {
			return SweepPoint{}, err
		}
	}
	applyQuotas(&cfg, gen)
	s, err := system.Build(cfg, gen)
	if err != nil {
		return SweepPoint{}, err
	}
	run := s.Execute()
	return SweepPoint{
		Label:      label,
		Protocol:   proto,
		RuntimePS:  int64(run.Runtime),
		LinkBytes:  run.Traffic.TotalLinkBytes(),
		ThreeHopPc: 100 * run.CacheToCacheFraction(),
	}, nil
}

// NodesSweep measures how machine size shifts the snooping/directory
// bandwidth trade-off (Section 5: "at larger numbers of processors,
// directory protocols ... become increasingly attractive"). It returns the
// TS/DirOpt traffic ratio per machine size on the butterfly.
func (e Experiment) NodesSweep(bench string) (string, error) {
	sizes := []int{4, 16, 64}
	var specs []pointSpec
	for _, nodes := range sizes {
		exp := e
		exp.Nodes = nodes
		label := fmt.Sprintf("n%d", nodes)
		specs = append(specs,
			pointSpec{exp: exp, label: label, bench: bench, proto: system.ProtoTSSnoop, network: system.NetButterfly},
			pointSpec{exp: exp, label: label, bench: bench, proto: system.ProtoDirOpt, network: system.NetButterfly})
	}
	pts, err := e.runPoints(specs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Machine-size sweep (%s, butterfly): TS-Snoop vs DirOpt\n", bench)
	fmt.Fprintf(&b, "%6s %16s %16s %14s\n", "nodes", "runtime-ratio", "traffic-ratio", "TS 3-hop(%)")
	for i, nodes := range sizes {
		ts, dir := pts[2*i], pts[2*i+1]
		fmt.Fprintf(&b, "%6d %16.3f %16.3f %13.0f%%\n",
			nodes, float64(dir.RuntimePS)/float64(ts.RuntimePS),
			float64(ts.LinkBytes)/float64(dir.LinkBytes), ts.ThreeHopPc)
	}
	return b.String(), nil
}

// BlockSizeSweep measures the effect of doubling the block size (Section
// 5: the extra-bandwidth bound drops from 60% to 33% on the butterfly).
func (e Experiment) BlockSizeSweep(bench string) (string, error) {
	blocks := []int{64, 128}
	var specs []pointSpec
	for _, block := range blocks {
		mutate := func(c *system.Config) {
			c.Cache.BlockBytes = block
			c.Cache.SizeBytes = 4 << 20
		}
		label := fmt.Sprintf("b%d", block)
		specs = append(specs,
			pointSpec{exp: e, label: label, bench: bench, proto: system.ProtoTSSnoop, network: system.NetButterfly, mutate: mutate},
			pointSpec{exp: e, label: label, bench: bench, proto: system.ProtoDirOpt, network: system.NetButterfly, mutate: mutate})
	}
	pts, err := e.runPoints(specs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Block-size sweep (%s, butterfly): TS-Snoop traffic vs DirOpt\n", bench)
	fmt.Fprintf(&b, "%7s %16s %18s\n", "block", "traffic-ratio", "analytic bound")
	for i, block := range blocks {
		ts, dir := pts[2*i], pts[2*i+1]
		env, err := Envelope(system.NetButterfly, e.Nodes, block)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%7d %16.3f %17.0f%%\n",
			block, float64(ts.LinkBytes)/float64(dir.LinkBytes), env.ExtraBoundPc)
	}
	return b.String(), nil
}

// AblationReport compares the timestamp-snooping design knobs: initial
// slack, prefetch (optimization 1), early processing
// (optimization 2), and tokens per port.
func (e Experiment) AblationReport(bench, network string) (string, error) {
	type knob struct {
		label  string
		mutate func(*system.Config)
	}
	knobs := []knob{
		{"baseline (S=1, prefetch on, opt2 off)", nil},
		{"slack S=0", func(c *system.Config) { c.InitialSlack = 0 }},
		{"slack S=4", func(c *system.Config) { c.InitialSlack = 4 }},
		{"no prefetch (opt 1 off)", func(c *system.Config) { c.Prefetch = false }},
		{"early processing (opt 2 on)", func(c *system.Config) { c.EarlyProcessing = true }},
		{"tokens per port = 2", func(c *system.Config) { c.TokensPerPort = 2 }},
		{"MOSI (Owned state)", func(c *system.Config) { c.UseOwnedState = true }},
		{"multicast snooping", func(c *system.Config) { c.Multicast = true }},
		{"multicast, 32-entry predictor", func(c *system.Config) { c.Multicast = true; c.PredictorSize = 32 }},
		{"multicast + MOSI", func(c *system.Config) { c.Multicast = true; c.UseOwnedState = true }},
		{"contention modelled", func(c *system.Config) { c.Contention = true }},
	}
	specs := make([]pointSpec, len(knobs))
	for i, k := range knobs {
		specs[i] = pointSpec{exp: e, label: k.label, bench: bench, proto: system.ProtoTSSnoop, network: network, mutate: k.mutate}
	}
	pts, err := e.runPoints(specs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TS-Snoop ablations (%s, %s)\n", bench, network)
	fmt.Fprintf(&b, "%-38s %14s %16s\n", "variant", "runtime", "link bytes")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%-38s %14d %16d\n", pt.Label, pt.RuntimePS, pt.LinkBytes)
	}
	return b.String(), nil
}
