package harness

import (
	"context"
	"fmt"
	"iter"
	"strings"

	"tsnoop/internal/parallel"
	"tsnoop/internal/sim"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
)

// SweepPoint is one (configuration, protocol) measurement in a sweep.
type SweepPoint struct {
	Label      string  `json:"label"`
	Protocol   string  `json:"protocol"`
	RuntimePS  int64   `json:"runtime_ps"`
	LinkBytes  int64   `json:"link_bytes"`
	ThreeHopPc float64 `json:"three_hop_pct"`
}

// PointSpec is one sweep measurement: a labelled, fully declarative
// experiment spec (sweeps override fields such as Nodes or BlockBytes
// per point — no mutation hooks).
type PointSpec struct {
	Label string
	Spec  spec.Spec
}

// Result renders a measured run as this point's sweep measurement. It
// is the pure projection runPoint applies, exported so callers that run
// the point spec themselves (the service's cached sweep path) produce
// identical points.
func (p PointSpec) Result(run *stats.Run) SweepPoint {
	return SweepPoint{
		Label:      p.Label,
		Protocol:   p.Spec.Protocol,
		RuntimePS:  int64(run.Runtime),
		LinkBytes:  run.Traffic.TotalLinkBytes(),
		ThreeHopPc: 100 * run.CacheToCacheFraction(),
	}
}

// runPoint executes one measurement: the point spec's seed fan-out
// (Seeds perturbed copies, minimum runtime reported) runs serially
// inside this job — the point pool owns the parallelism.
func runPoint(p PointSpec) (SweepPoint, error) {
	s := p.Spec
	s.Workers = 1
	run, err := s.Run()
	if err != nil {
		return SweepPoint{}, fmt.Errorf("harness: %w", err)
	}
	return p.Result(run), nil
}

// StreamPoints evaluates the specs across the worker pool, yielding
// results in spec order as they complete; collecting the stream is
// byte-identical at any worker count. Cancelling ctx stops new
// measurements.
func (e Experiment) StreamPoints(ctx context.Context, specs []PointSpec) iter.Seq2[SweepPoint, error] {
	return parallel.Stream(ctx, e.workers(), len(specs), func(i int) (SweepPoint, error) {
		return runPoint(specs[i])
	})
}

// runPoints collects StreamPoints.
func (e Experiment) runPoints(specs []PointSpec) ([]SweepPoint, error) {
	pts := make([]SweepPoint, 0, len(specs))
	for pt, err := range e.StreamPoints(context.Background(), specs) {
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// Sweep is one named sensitivity sweep: the labelled points to measure,
// and a renderer that is a pure view over the measured points (so a
// caller may stream the points itself — for progress reporting or JSON
// output — and render afterwards).
type Sweep struct {
	Kind   string
	Points []PointSpec
	render func([]SweepPoint) (string, error)
}

// Render renders measured points (in Points order) as the sweep's text
// report.
func (s *Sweep) Render(pts []SweepPoint) (string, error) {
	if len(pts) != len(s.Points) {
		return "", fmt.Errorf("harness: %s sweep rendered with %d of %d points", s.Kind, len(pts), len(s.Points))
	}
	return s.render(pts)
}

// SweepKinds lists the measured sweep kinds NewSweep accepts (the
// Section 5 analytic envelope is RenderEnvelope, no simulation).
func SweepKinds() []string { return []string{"nodes", "blocksize", "ablation"} }

// NewSweep builds the named sweep over a benchmark (and, for the
// ablation sweep, a network).
func (e Experiment) NewSweep(kind, bench, network string) (*Sweep, error) {
	switch kind {
	case "nodes":
		return e.nodesSweep(bench), nil
	case "blocksize":
		return e.blockSizeSweep(bench), nil
	case "ablation":
		return e.ablationSweep(bench, network), nil
	default:
		return nil, fmt.Errorf("harness: unknown sweep %q (have %s)", kind, strings.Join(SweepKinds(), ", "))
	}
}

// RunSweep measures and renders a sweep.
func (e Experiment) RunSweep(s *Sweep) (string, error) {
	pts, err := e.runPoints(s.Points)
	if err != nil {
		return "", err
	}
	return s.Render(pts)
}

// pointBase derives the spec a sweep point starts from: the cell spec
// plus the experiment's seed fan-out (unlike grid cells, whose seeds
// the engine enumerates itself, a sweep point carries its own Seeds and
// perturbation and reports the minimum runtime).
func (e Experiment) pointBase(bench, proto, network string) spec.Spec {
	s := e.cellSpec(bench, proto, network)
	s.Seeds = e.seeds()
	if s.Seeds > 1 {
		s.PerturbNS = int64(e.PerturbMax / sim.Nanosecond)
	}
	return s
}

// nodesSweep measures how machine size shifts the snooping/directory
// bandwidth trade-off (Section 5: "at larger numbers of processors,
// directory protocols ... become increasingly attractive"): the TS/DirOpt
// traffic ratio per machine size on the butterfly.
func (e Experiment) nodesSweep(bench string) *Sweep {
	sizes := []int{4, 16, 64}
	var points []PointSpec
	for _, nodes := range sizes {
		label := fmt.Sprintf("n%d", nodes)
		ts := e.pointBase(bench, system.ProtoTSSnoop, system.NetButterfly)
		ts.Nodes = nodes
		dir := ts
		dir.Protocol = system.ProtoDirOpt
		points = append(points, PointSpec{Label: label, Spec: ts}, PointSpec{Label: label, Spec: dir})
	}
	render := func(pts []SweepPoint) (string, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "Machine-size sweep (%s, butterfly): TS-Snoop vs DirOpt\n", bench)
		fmt.Fprintf(&b, "%6s %16s %16s %14s\n", "nodes", "runtime-ratio", "traffic-ratio", "TS 3-hop(%)")
		for i, nodes := range sizes {
			ts, dir := pts[2*i], pts[2*i+1]
			fmt.Fprintf(&b, "%6d %16.3f %16.3f %13.0f%%\n",
				nodes, float64(dir.RuntimePS)/float64(ts.RuntimePS),
				float64(ts.LinkBytes)/float64(dir.LinkBytes), ts.ThreeHopPc)
		}
		return b.String(), nil
	}
	return &Sweep{Kind: "nodes", Points: points, render: render}
}

// NodesSweep measures and renders the machine-size sweep.
func (e Experiment) NodesSweep(bench string) (string, error) {
	return e.RunSweep(e.nodesSweep(bench))
}

// blockSizeSweep measures the effect of doubling the block size (Section
// 5: the extra-bandwidth bound drops from 60% to 33% on the butterfly).
func (e Experiment) blockSizeSweep(bench string) *Sweep {
	blocks := []int{64, 128}
	var points []PointSpec
	for _, block := range blocks {
		label := fmt.Sprintf("b%d", block)
		ts := e.pointBase(bench, system.ProtoTSSnoop, system.NetButterfly)
		ts.BlockBytes = block
		ts.CacheBytes = 4 << 20
		dir := ts
		dir.Protocol = system.ProtoDirOpt
		points = append(points, PointSpec{Label: label, Spec: ts}, PointSpec{Label: label, Spec: dir})
	}
	nodes := e.Nodes
	render := func(pts []SweepPoint) (string, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "Block-size sweep (%s, butterfly): TS-Snoop traffic vs DirOpt\n", bench)
		fmt.Fprintf(&b, "%7s %16s %18s\n", "block", "traffic-ratio", "analytic bound")
		for i, block := range blocks {
			ts, dir := pts[2*i], pts[2*i+1]
			env, err := Envelope(system.NetButterfly, nodes, block)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%7d %16.3f %17.0f%%\n",
				block, float64(ts.LinkBytes)/float64(dir.LinkBytes), env.ExtraBoundPc)
		}
		return b.String(), nil
	}
	return &Sweep{Kind: "blocksize", Points: points, render: render}
}

// BlockSizeSweep measures and renders the block-size sweep.
func (e Experiment) BlockSizeSweep(bench string) (string, error) {
	return e.RunSweep(e.blockSizeSweep(bench))
}

// ablationSweep compares the timestamp-snooping design knobs: initial
// slack, prefetch (optimization 1), early processing (optimization 2),
// tokens per port, and the Section 3/7 extensions. Each variant is the
// baseline spec with declarative options applied.
func (e Experiment) ablationSweep(bench, network string) *Sweep {
	knobs := []struct {
		label string
		opts  []spec.Option
	}{
		{"baseline (S=1, prefetch on, opt2 off)", nil},
		{"slack S=0", []spec.Option{spec.WithSlack(0)}},
		{"slack S=4", []spec.Option{spec.WithSlack(4)}},
		{"no prefetch (opt 1 off)", []spec.Option{spec.WithoutPrefetch()}},
		{"early processing (opt 2 on)", []spec.Option{spec.WithEarlyProcessing()}},
		{"tokens per port = 2", []spec.Option{spec.WithTokensPerPort(2)}},
		{"MOSI (Owned state)", []spec.Option{spec.WithMOSI()}},
		{"multicast snooping", []spec.Option{spec.WithMulticast()}},
		{"multicast, 32-entry predictor", []spec.Option{spec.WithMulticast(), spec.WithPredictorSize(32)}},
		{"multicast + MOSI", []spec.Option{spec.WithMulticast(), spec.WithMOSI()}},
		{"contention modelled", []spec.Option{spec.WithContention()}},
	}
	points := make([]PointSpec, len(knobs))
	for i, k := range knobs {
		s := e.pointBase(bench, system.ProtoTSSnoop, network)
		for _, opt := range k.opts {
			opt(&s)
		}
		points[i] = PointSpec{Label: k.label, Spec: s}
	}
	render := func(pts []SweepPoint) (string, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "TS-Snoop ablations (%s, %s)\n", bench, network)
		fmt.Fprintf(&b, "%-38s %14s %16s\n", "variant", "runtime", "link bytes")
		for _, pt := range pts {
			fmt.Fprintf(&b, "%-38s %14d %16d\n", pt.Label, pt.RuntimePS, pt.LinkBytes)
		}
		return b.String(), nil
	}
	return &Sweep{Kind: "ablation", Points: points, render: render}
}

// AblationReport measures and renders the design-knob ablations.
func (e Experiment) AblationReport(bench, network string) (string, error) {
	return e.RunSweep(e.ablationSweep(bench, network))
}
