package harness

import (
	"fmt"
	"strings"

	"tsnoop/internal/system"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

// EnvelopeRow is the Section 5 back-of-the-envelope bandwidth comparison
// for one topology and block size: the per-miss link-byte cost of
// timestamp snooping (address broadcast + data) versus a directory
// protocol's minimum (address + data point-to-point), and the implied
// upper bound on snooping's extra bandwidth.
type EnvelopeRow struct {
	Network      string
	Nodes        int
	BlockBytes   int
	TSBytes      int // broadcastLinks*ctrl + meanHops*data
	DirMinBytes  int // meanHops*ctrl + meanHops*data
	ExtraBoundPc float64
}

// Envelope computes the row for a topology and block size. For the
// 16-node butterfly with 64-byte blocks this reproduces the paper's
// numbers: TS 384 bytes (21*8 + 3*72), directory minimum 240 (3*8 + 3*72),
// extra bound 60%.
func Envelope(network string, nodes, blockBytes int) (EnvelopeRow, error) {
	var topo *topology.Topology
	var err error
	var meanHops int
	switch network {
	case system.NetButterfly:
		r := 2
		for r*r < nodes {
			r++
		}
		if r*r != nodes {
			return EnvelopeRow{}, fmt.Errorf("harness: butterfly needs square nodes, got %d", nodes)
		}
		topo, err = topology.Butterfly(r)
		meanHops = 3
	case system.NetTorus:
		topo, err = buildSquareishTorus(nodes)
		meanHops = 2 // paper's stated mean for the 4x4
		if err == nil && nodes != 16 {
			meanHops = int(topo.MeanHops() + 0.5)
		}
	default:
		return EnvelopeRow{}, fmt.Errorf("harness: unknown network %q", network)
	}
	if err != nil {
		return EnvelopeRow{}, err
	}
	data := timing.DataMsgBytes(blockBytes)
	ts := topo.BroadcastLinks(0)*timing.CtrlBytes + meanHops*data
	dir := meanHops*timing.CtrlBytes + meanHops*data
	return EnvelopeRow{
		Network:      network,
		Nodes:        nodes,
		BlockBytes:   blockBytes,
		TSBytes:      ts,
		DirMinBytes:  dir,
		ExtraBoundPc: 100 * (float64(ts)/float64(dir) - 1),
	}, nil
}

func buildSquareishTorus(nodes int) (*topology.Topology, error) {
	best := 0
	for w := 2; w*w <= nodes; w++ {
		if nodes%w == 0 && nodes/w >= 2 {
			best = w
		}
	}
	if best == 0 {
		return nil, fmt.Errorf("harness: cannot factor %d into a torus", nodes)
	}
	return topology.Torus(best, nodes/best)
}

// RenderEnvelope renders the Section 5 envelope across block sizes and
// machine sizes. Doubling the block size on the 16-node butterfly reduces
// the bound from 60% to 33%; growing the machine raises broadcast cost.
func RenderEnvelope() (string, error) {
	var b strings.Builder
	b.WriteString("Section 5 envelope: per-miss link bytes, TS-Snoop vs directory minimum\n")
	fmt.Fprintf(&b, "%-10s %6s %7s %9s %9s %12s\n", "network", "nodes", "block", "TS", "dir-min", "extra-bound")
	for _, net := range Networks {
		for _, nodes := range []int{4, 16, 64} {
			for _, block := range []int{64, 128} {
				row, err := Envelope(net, nodes, block)
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&b, "%-10s %6d %7d %9d %9d %11.0f%%\n",
					row.Network, row.Nodes, row.BlockBytes, row.TSBytes, row.DirMinBytes, row.ExtraBoundPc)
			}
		}
	}
	return b.String(), nil
}
