package harness

import (
	"reflect"
	"runtime"
	"testing"

	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// tiny returns a minimum-scale experiment: equivalence is a structural
// property of the engine, so the smallest runs that still exercise every
// protocol path suffice.
func tiny() Experiment {
	e := Default()
	e.Seeds = 1
	e.QuotaScale = 0.05
	e.WarmupScale = 0.04
	return e
}

// equivalencePair returns the same experiment configured for the serial
// path and for the worker pool. The pool side always uses several
// workers — even on a single-CPU machine the goroutines interleave, so
// the pooled scheduling and ordered collection are genuinely exercised.
func equivalencePair(e Experiment) (serial, par Experiment) {
	serial, par = e, e
	serial.Workers = 1
	par.Workers = runtime.NumCPU()
	if par.Workers < 4 {
		par.Workers = 4
	}
	return serial, par
}

// The acceptance property of the concurrent engine: a parallel grid run
// produces cell-by-cell identical stats.Run results and byte-identical
// figure renderings.
func TestParallelGridMatchesSerial(t *testing.T) {
	e := tiny()
	e.Seeds = 2
	serial, par := equivalencePair(e)

	gs, err := serial.RunGrid(system.NetButterfly)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := par.RunGrid(system.NetButterfly)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range workload.Names() {
		for _, proto := range Protocols {
			rs := gs.Cells[bench][proto].Best
			rp := gp.Cells[bench][proto].Best
			if !reflect.DeepEqual(*rs, *rp) {
				t.Errorf("%s/%s: parallel run differs from serial:\nserial:   %+v\nparallel: %+v",
					bench, proto, *rs, *rp)
			}
		}
	}
	if f3s, f3p := gs.Figure3(), gp.Figure3(); f3s != f3p {
		t.Errorf("Figure3 not byte-identical:\nserial:\n%s\nparallel:\n%s", f3s, f3p)
	}
	if f4s, f4p := gs.Figure4(), gp.Figure4(); f4s != f4p {
		t.Errorf("Figure4 not byte-identical:\nserial:\n%s\nparallel:\n%s", f4s, f4p)
	}
}

func TestParallelRunCellMatchesSerial(t *testing.T) {
	e := tiny()
	e.Seeds = 3
	serial, par := equivalencePair(e)
	c := Cell{Benchmark: "barnes", Protocol: system.ProtoTSSnoop, Network: system.NetTorus}

	rs, err := serial.RunCell(c)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.RunCell(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rs.Best, *rp.Best) {
		t.Errorf("best runs differ:\nserial:   %+v\nparallel: %+v", *rs.Best, *rp.Best)
	}
}

func TestParallelSweepsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs")
	}
	e := tiny()
	e.QuotaScale = 0.03
	serial, par := equivalencePair(e)

	renders := []struct {
		name string
		run  func(Experiment) (string, error)
	}{
		{"NodesSweep", func(x Experiment) (string, error) { return x.NodesSweep("barnes") }},
		{"BlockSizeSweep", func(x Experiment) (string, error) { return x.BlockSizeSweep("barnes") }},
		{"AblationReport", func(x Experiment) (string, error) { return x.AblationReport("barnes", system.NetTorus) }},
		{"RenderTable3", Experiment.RenderTable3},
	}
	for _, r := range renders {
		ss, err := r.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", r.name, err)
		}
		pp, err := r.run(par)
		if err != nil {
			t.Fatalf("%s parallel: %v", r.name, err)
		}
		if ss != pp {
			t.Errorf("%s not byte-identical:\nserial:\n%s\nparallel:\n%s", r.name, ss, pp)
		}
	}
}

// The sweep nil-check bugfix: an unknown benchmark must surface as an
// error from every sweep entry point, not a panic.
func TestSweepsRejectUnknownBenchmark(t *testing.T) {
	e := tiny()
	if _, err := e.NodesSweep("specjbb"); err == nil {
		t.Error("NodesSweep accepted unknown benchmark")
	}
	if _, err := e.BlockSizeSweep("specjbb"); err == nil {
		t.Error("BlockSizeSweep accepted unknown benchmark")
	}
	if _, err := e.AblationReport("specjbb", system.NetTorus); err == nil {
		t.Error("AblationReport accepted unknown benchmark")
	}
}
