package harness

import (
	"strings"
	"testing"

	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// quick returns a reduced-scale experiment for unit testing.
func quick() Experiment {
	e := Default()
	e.Seeds = 1
	e.QuotaScale = 0.15
	e.WarmupScale = 0.4
	return e
}

func TestRunCellBasics(t *testing.T) {
	e := quick()
	res, err := e.RunCell(Cell{Benchmark: "barnes", Protocol: system.ProtoTSSnoop, Network: system.NetButterfly})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Runtime <= 0 || res.Best.TotalMisses() == 0 {
		t.Fatalf("empty result: %+v", res.Best)
	}
}

func TestRunCellUnknownBenchmark(t *testing.T) {
	e := quick()
	if _, err := e.RunCell(Cell{Benchmark: "specjbb", Protocol: system.ProtoTSSnoop, Network: system.NetTorus}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSeedsPickMinimum(t *testing.T) {
	e := quick()
	e.Seeds = 3
	c := Cell{Benchmark: "barnes", Protocol: system.ProtoDirOpt, Network: system.NetButterfly}
	multi, err := e.RunCell(c)
	if err != nil {
		t.Fatal(err)
	}
	// The min over 3 perturbed seeds cannot exceed any single seed's
	// runtime re-run individually.
	if multi.Best.Runtime <= 0 {
		t.Fatal("no runtime")
	}
}

// The headline reproduction: on both networks, timestamp snooping is
// faster than both directory protocols on every benchmark, and pays for it
// with more link traffic (Figures 3 and 4).
func TestFigure3And4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run")
	}
	e := quick()
	e.QuotaScale = 0.3
	for _, net := range Networks {
		g, err := e.RunGrid(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, bench := range workload.Names() {
			ts := g.Cells[bench][system.ProtoTSSnoop].Best
			dc := g.Cells[bench][system.ProtoDirClassic].Best
			do := g.Cells[bench][system.ProtoDirOpt].Best
			if ts.Runtime >= dc.Runtime || ts.Runtime >= do.Runtime {
				t.Errorf("%s/%s: TS-Snoop not fastest (ts %v, classic %v, opt %v)",
					net, bench, ts.Runtime, dc.Runtime, do.Runtime)
			}
			if dc.Runtime < do.Runtime {
				t.Errorf("%s/%s: DirClassic faster than DirOpt", net, bench)
			}
			if ts.Traffic.TotalLinkBytes() <= do.Traffic.TotalLinkBytes() {
				t.Errorf("%s/%s: TS-Snoop did not use more traffic", net, bench)
			}
			// TS-Snoop's extra traffic stays under the 60% analytic bound.
			extra := float64(ts.Traffic.TotalLinkBytes())/float64(do.Traffic.TotalLinkBytes()) - 1
			if extra <= 0.05 || extra >= 0.62 {
				t.Errorf("%s/%s: extra traffic %.0f%% outside (5%%, 62%%)", net, bench, extra*100)
			}
			// Timestamp snooping never nacks.
			if ts.Traffic.LinkBytes(stats.ClassNack) != 0 || ts.Traffic.LinkBytes(stats.ClassMisc) != 0 {
				t.Errorf("%s/%s: TS-Snoop produced nack/misc traffic", net, bench)
			}
		}
		// The DSS anomaly: DirClassic's nack retries on DSS are far above
		// its retries on the other benchmarks (the paper saw runtimes
		// more than double and excluded DSS/DirClassic from the figures).
		dssRetries := g.Cells["DSS"][system.ProtoDirClassic].Best.Retries
		for _, other := range []string{"OLTP", "apache", "altavista", "barnes"} {
			if or := g.Cells[other][system.ProtoDirClassic].Best.Retries; dssRetries < 2*or {
				t.Errorf("%s: DSS retries (%d) not clearly above %s retries (%d)",
					net, dssRetries, other, or)
			}
		}
		// Rendered figures include every benchmark row.
		f3, f4 := g.Figure3(), g.Figure4()
		for _, bench := range workload.Names() {
			if !strings.Contains(f3, bench) || !strings.Contains(f4, bench) {
				t.Errorf("%s: rendered figures missing %s", net, bench)
			}
		}
	}
}

func TestTable2MeasuredMatchesAnalytic(t *testing.T) {
	for _, net := range Networks {
		rows, err := Table2(net)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows", net, len(rows))
		}
		for _, r := range rows {
			lo := float64(r.Analytic) * 0.93
			hi := float64(r.Analytic) * 1.35
			if strings.Contains(r.Desc, "timestamp snooping") {
				// Table 2 lists raw wire latencies; the paper notes that
				// "with timestamp snooping, cache or memory accesses may
				// not complete until the protocol message is ordered".
				// On the torus a nearby owner receives the request well
				// before its ordering time, so the measured mean exceeds
				// the wire-only figure by several switch delays.
				hi = float64(r.Analytic) * 1.60
			}
			if m := float64(r.Measured); m < lo || m > hi {
				t.Errorf("%s %q: measured %v vs analytic %v out of tolerance",
					net, r.Desc, r.Measured, r.Analytic)
			}
		}
	}
}

func TestTable2ButterflyExactRows(t *testing.T) {
	// The butterfly's uniform 3-hop paths make the directory rows exact:
	// 178 ns memory, 252 ns three-hop; TS cache-to-cache 123 ns plus
	// bounded ordering slack.
	rows, err := Table2(system.NetButterfly)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[1].Measured.Nanoseconds(); got != 178 {
		t.Errorf("memory measured = %vns, want exactly 178", got)
	}
	if got := rows[3].Measured.Nanoseconds(); got != 252 {
		t.Errorf("3-hop measured = %vns, want exactly 252", got)
	}
	ts := rows[2].Measured.Nanoseconds()
	if ts < 123 || ts > 140 {
		t.Errorf("TS c2c measured = %vns, want [123, 140]", ts)
	}
}

func TestTable3Characteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("five benchmark runs")
	}
	e := quick()
	e.QuotaScale = 0.5
	rows, err := e.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThreeHopPct < 25 || r.ThreeHopPct > 75 {
			t.Errorf("%s 3-hop = %.0f%%, out of plausible band", r.Benchmark, r.ThreeHopPct)
		}
		if r.TotalMisses == 0 || r.TouchedMB <= 0 {
			t.Errorf("%s: empty characterization %+v", r.Benchmark, r)
		}
	}
	text, err := e.RenderTable3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "OLTP") || !strings.Contains(text, "barnes") {
		t.Error("rendered table missing benchmarks")
	}
}

func TestEnvelopeMatchesPaperNumbers(t *testing.T) {
	// "a timestamp snooping transaction sends an address packet over 21
	// links and receives a data packet over three links, for a total
	// bandwidth of 384 bytes ... Directory protocols, at a minimum ...
	// 240 bytes. Thus ... the extra bandwidth used by timestamp snooping
	// cannot exceed 60%."
	row, err := Envelope(system.NetButterfly, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if row.TSBytes != 384 || row.DirMinBytes != 240 {
		t.Fatalf("envelope = %d/%d, want 384/240", row.TSBytes, row.DirMinBytes)
	}
	if row.ExtraBoundPc < 59.9 || row.ExtraBoundPc > 60.1 {
		t.Fatalf("extra bound = %.1f%%, want 60%%", row.ExtraBoundPc)
	}
	// "Doubling the block size on a 16-node butterfly ... reduces the
	// upper limit ... to 33%."
	row128, err := Envelope(system.NetButterfly, 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	if row128.ExtraBoundPc < 32 || row128.ExtraBoundPc > 34 {
		t.Fatalf("128B extra bound = %.1f%%, want ~33%%", row128.ExtraBoundPc)
	}
}

func TestEnvelopeGrowsWithNodes(t *testing.T) {
	// "Increasing the number of processors increases the cost of
	// broadcasting each transaction."
	var prev float64
	for i, nodes := range []int{4, 16, 64} {
		row, err := Envelope(system.NetButterfly, nodes, 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && row.ExtraBoundPc <= prev {
			t.Fatalf("extra bound did not grow: %v -> %v at %d nodes", prev, row.ExtraBoundPc, nodes)
		}
		prev = row.ExtraBoundPc
	}
}

func TestRenderEnvelope(t *testing.T) {
	text, err := RenderEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"butterfly", "torus", "384", "240"} {
		if !strings.Contains(text, want) {
			t.Errorf("envelope rendering missing %q", want)
		}
	}
}

func TestBlockSizeSweepNarrowsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	e := quick()
	out, err := e.BlockSizeSweep("barnes")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "64") || !strings.Contains(out, "128") {
		t.Fatalf("sweep output malformed:\n%s", out)
	}
}

func TestNodesSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	e := quick()
	e.QuotaScale = 0.1
	out, err := e.NodesSweep("barnes")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4", "16", "64"} {
		if !strings.Contains(out, want) {
			t.Fatalf("nodes sweep missing %s:\n%s", want, out)
		}
	}
}

func TestAblationReportRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run")
	}
	e := quick()
	out, err := e.AblationReport("barnes", system.NetTorus)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "slack S=0", "no prefetch", "early processing", "tokens per port"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation report missing %q:\n%s", want, out)
		}
	}
}
