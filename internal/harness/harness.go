// Package harness runs the paper's experiments: the benchmark x protocol
// x network grid behind Figures 3 and 4, the latency validations behind
// Table 2, the benchmark characterizations of Table 3, the Section 5
// bandwidth envelope, and the sensitivity sweeps. Each regeneration
// returns a structured result with a text rendering used by the cmd
// tools, README.md, and the benchmark suite. Experiments execute on a
// concurrent engine (see pool.go): set Experiment.Workers to bound the
// fan-out; output is byte-identical at any worker count.
package harness

import (
	"context"
	"fmt"
	"strings"

	"tsnoop/internal/sim"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// Protocols in the paper's presentation order.
var Protocols = spec.Protocols

// Networks in the paper's presentation order.
var Networks = spec.Networks

// Experiment parameterizes a grid run.
type Experiment struct {
	// Nodes is the machine size (16 in the paper).
	Nodes int
	// Seeds is the number of perturbed runs per cell; the minimum runtime
	// is reported ("we report the minimum run time from a set of runs
	// whose only difference is the perturbation").
	Seeds int
	// PerturbMax bounds the injected response delays.
	PerturbMax sim.Duration
	// QuotaScale scales the per-benchmark measured quotas (1.0 = default;
	// tests use smaller values for speed).
	QuotaScale float64
	// WarmupScale scales the warm-up quota similarly.
	WarmupScale float64
	// Workers caps how many simulations the engine runs concurrently.
	// Each cell, seed, and sweep point builds its own kernel, RNG, and
	// system, and results are collected in job order, so any worker count
	// produces byte-identical figures and tables. 0 (the default) uses
	// one worker per CPU; 1 forces the serial path.
	Workers int
	// Benchmarks selects the workloads grids and tables run over; nil
	// (the default) means the paper's five benchmarks. Entries may be
	// any workload.ByName name, including trace:<path> for recorded
	// traces, so whole grids can run from trace directories.
	Benchmarks []string
	// Protocols selects the protocols grids run over; nil (the default)
	// means all three. Figure3/Figure4 need the full set (TS-Snoop is
	// the normalization baseline), so restricted grids suit streaming
	// and JSON consumers rather than the figure renderers.
	Protocols []string
	// Base, when non-nil, supplies the machine and protocol design knobs
	// every cell starts from (slack, MOSI, multicast, cache geometry,
	// explicit quotas ...); nil means spec.Default(). The engine owns the
	// per-cell coordinates, seeds, and perturbation.
	Base *spec.Spec
}

// benchmarks resolves the Benchmarks knob.
func (e Experiment) benchmarks() []string {
	if len(e.Benchmarks) > 0 {
		return e.Benchmarks
	}
	return workload.Names()
}

// BenchmarkNames lists the workloads the experiment's grids and tables
// run over, in presentation order.
func (e Experiment) BenchmarkNames() []string {
	return append([]string(nil), e.benchmarks()...)
}

// protocols resolves the Protocols knob.
func (e Experiment) protocols() []string {
	if len(e.Protocols) > 0 {
		return e.Protocols
	}
	return Protocols
}

// ProtocolNames lists the protocols the experiment's grids run over,
// in presentation order.
func (e Experiment) ProtocolNames() []string {
	return append([]string(nil), e.protocols()...)
}

// FromSpec derives the Experiment a spec describes: the spec's machine
// size, seed fan-out, perturbation, quota scaling, and worker bound
// drive the engine, its benchmark (when set) restricts the grid, and
// the spec itself becomes the Base every cell's design knobs start
// from. An empty Benchmark means the paper's five.
func FromSpec(s spec.Spec) Experiment {
	e := Experiment{
		Nodes:       s.Nodes,
		Seeds:       s.Seeds,
		PerturbMax:  sim.Duration(s.PerturbNS) * sim.Nanosecond,
		QuotaScale:  s.QuotaScale,
		WarmupScale: s.WarmupScale,
		Workers:     s.Workers,
		Base:        &s,
	}
	if s.Benchmark != "" {
		e.Benchmarks = []string{s.Benchmark}
	}
	return e
}

// Default returns the experiment setup used to regenerate the paper's
// figures.
func Default() Experiment {
	return Experiment{
		Nodes:       16,
		Seeds:       3,
		PerturbMax:  3 * sim.Nanosecond,
		QuotaScale:  1.0,
		WarmupScale: 1.0,
	}
}

// Cell identifies one grid cell.
type Cell struct {
	Benchmark string
	Protocol  string
	Network   string
}

// CellResult is the best (minimum-runtime) run for a cell.
type CellResult struct {
	Cell Cell
	Best *stats.Run
}

// RunCell executes one cell over the experiment's perturbed seeds,
// fanned out across the worker pool, and returns the minimum-runtime
// run.
func (e Experiment) RunCell(c Cell) (CellResult, error) {
	gen, err := lookupGen(c.Benchmark, e.Nodes)
	if err != nil {
		return CellResult{}, err
	}
	jobs := make([]seedJob, e.seeds())
	for seed := range jobs {
		jobs[seed] = seedJob{cell: c, gen: gen, seed: seed}
	}
	runs, err := e.runSeedJobs(jobs)
	if err != nil {
		return CellResult{}, err
	}
	return CellResult{Cell: c, Best: BestOf(runs)}, nil
}

// Grid holds one network's full benchmark x protocol results.
type Grid struct {
	Network string
	// Benchmarks lists the workloads in presentation order (the paper's
	// five, or the Experiment.Benchmarks override that produced the
	// grid).
	Benchmarks []string
	// Cells[benchmark][protocol].
	Cells map[string]map[string]CellResult
}

// benchmarks tolerates hand-built Grids without the Benchmarks field.
func (g *Grid) benchmarks() []string {
	if len(g.Benchmarks) > 0 {
		return g.Benchmarks
	}
	return workload.Names()
}

// RunGrid executes every benchmark x protocol cell for one network by
// collecting StreamGrid. The full benchmark x protocol x seed job list
// runs on the worker pool, so no worker idles waiting for a slow cell
// to finish its seeds.
func (e Experiment) RunGrid(network string) (*Grid, error) {
	g := NewGrid(network, e.benchmarks())
	for cr, err := range e.StreamGrid(context.Background(), network) {
		if err != nil {
			return nil, err
		}
		g.Add(cr)
	}
	return g, nil
}

// Figure3 renders the normalized-runtime figure for a grid: runtimes
// normalized to TS-Snoop (smaller is better), plus the paper's "X% faster"
// metric Time_dir/Time_TS - 1.
func (g *Grid) Figure3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (%s): runtime normalized to TS-Snoop (smaller is better)\n", g.Network)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %18s %15s\n",
		"benchmark", "TS-Snoop", "DirClassic", "DirOpt", "faster-vs-Classic", "faster-vs-Opt")
	for _, bench := range g.benchmarks() {
		ts := g.Cells[bench][system.ProtoTSSnoop].Best.Runtime
		dc := g.Cells[bench][system.ProtoDirClassic].Best.Runtime
		do := g.Cells[bench][system.ProtoDirOpt].Best.Runtime
		fmt.Fprintf(&b, "%-10s %10.3f %12.3f %12.3f %17.1f%% %14.1f%%\n",
			bench, 1.0,
			float64(dc)/float64(ts),
			float64(do)/float64(ts),
			100*(float64(dc)/float64(ts)-1),
			100*(float64(do)/float64(ts)-1))
	}
	return b.String()
}

// Figure4 renders the normalized link-traffic figure with the Data /
// Request / Nack / Misc breakdown, normalized to TS-Snoop's total.
func (g *Grid) Figure4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s): link traffic normalized to TS-Snoop, by class\n", g.Network)
	fmt.Fprintf(&b, "%-10s %-11s %8s %8s %8s %8s %8s\n",
		"benchmark", "protocol", "total", "data", "request", "nack", "misc")
	for _, bench := range g.benchmarks() {
		base := g.Cells[bench][system.ProtoTSSnoop].Best.Traffic.TotalLinkBytes()
		for _, proto := range Protocols {
			tr := &g.Cells[bench][proto].Best.Traffic
			norm := func(v int64) float64 { return float64(v) / float64(base) }
			fmt.Fprintf(&b, "%-10s %-11s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				bench, proto,
				norm(tr.TotalLinkBytes()),
				norm(tr.LinkBytes(stats.ClassData)),
				norm(tr.LinkBytes(stats.ClassRequest)),
				norm(tr.LinkBytes(stats.ClassNack)),
				norm(tr.LinkBytes(stats.ClassMisc)))
		}
	}
	return b.String()
}

// SpeedupRange returns the min and max of Time_other/Time_TS - 1 across
// benchmarks for the given directory protocol (the paper's "TS-Snoop runs
// 6-28% faster than ..." summaries).
func (g *Grid) SpeedupRange(proto string) (lo, hi float64) {
	first := true
	for _, bench := range g.benchmarks() {
		ts := g.Cells[bench][system.ProtoTSSnoop].Best.Runtime
		other := g.Cells[bench][proto].Best.Runtime
		v := float64(other)/float64(ts) - 1
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi
}

// ExtraTrafficRange returns min/max of TS traffic over directory traffic
// minus 1 (the paper's "13-43% more link traffic").
func (g *Grid) ExtraTrafficRange(proto string) (lo, hi float64) {
	first := true
	for _, bench := range g.benchmarks() {
		ts := g.Cells[bench][system.ProtoTSSnoop].Best.Traffic.TotalLinkBytes()
		other := g.Cells[bench][proto].Best.Traffic.TotalLinkBytes()
		v := float64(ts)/float64(other) - 1
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi
}
