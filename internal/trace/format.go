package trace

// The on-disk format. A trace file is:
//
//	magic   8 bytes "TSTRACE1"
//	header  uvarint version (1)
//	        uvarint cpus
//	        uvarint len(name), name bytes
//	        uvarint footprint bytes
//	        uvarint warmup quota per cpu
//	        uvarint measure quota per cpu
//	chunks  repeated until EOF:
//	        uvarint cpu
//	        uvarint count (accesses in this chunk, > 0)
//	        uvarint payload length in bytes
//	        payload
//
// A chunk payload packs count accesses of one CPU's stream in order:
// each access is a zigzag-varint block delta (against the previous
// block in the chunk; the first access is a delta against block 0, so
// chunks decode independently) followed by a uvarint holding
// think<<1 | storeBit. Sequential block walks and small think times
// make both varints short: typical benchmarks encode to ~3 bytes per
// access versus 20 in memory.
//
// Encoding and decoding are chunk-parallel: the Writer batches filled
// chunks and encodes a batch across the internal/parallel pool before
// writing it out in order; Decode scans the chunk boundaries (cheap)
// and decodes all payloads across the pool. File bytes are identical
// at any worker count.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"tsnoop/internal/coherence"
	"tsnoop/internal/parallel"
	"tsnoop/internal/workload"
)

var magic = [8]byte{'T', 'S', 'T', 'R', 'A', 'C', 'E', '1'}

const formatVersion = 1

// ChunkLen is the number of accesses per chunk (the unit of parallel
// encode/decode).
const ChunkLen = 4096

// flushBatch is how many filled chunks the Writer accumulates before
// encoding them as one parallel batch.
const flushBatch = 64

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// rawChunk is one not-yet-encoded run of accesses for a single CPU.
type rawChunk struct {
	cpu  int
	accs []workload.Access
}

// encodeChunk renders one chunk (header and payload) to bytes.
func encodeChunk(c rawChunk) []byte {
	payload := make([]byte, 0, 4*len(c.accs))
	prev := int64(0)
	for _, a := range c.accs {
		payload = binary.AppendUvarint(payload, zigzag(int64(a.Block)-prev))
		prev = int64(a.Block)
		bit := uint64(0)
		if a.Op == coherence.Store {
			bit = 1
		}
		payload = binary.AppendUvarint(payload, uint64(a.Think)<<1|bit)
	}
	out := make([]byte, 0, len(payload)+12)
	out = binary.AppendUvarint(out, uint64(c.cpu))
	out = binary.AppendUvarint(out, uint64(len(c.accs)))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// decodePayload decodes count accesses from one chunk payload.
func decodePayload(payload []byte, count int) ([]workload.Access, error) {
	accs := make([]workload.Access, count)
	prev := int64(0)
	off := 0
	for i := range accs {
		d, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return nil, fmt.Errorf("trace: corrupt block delta at access %d", i)
		}
		off += n
		prev += unzigzag(d)
		t, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return nil, fmt.Errorf("trace: corrupt think field at access %d", i)
		}
		off += n
		op := coherence.Load
		if t&1 == 1 {
			op = coherence.Store
		}
		accs[i] = workload.Access{Block: coherence.Block(prev), Op: op, Think: int(t >> 1)}
	}
	if off != len(payload) {
		return nil, fmt.Errorf("trace: %d trailing payload bytes", len(payload)-off)
	}
	return accs, nil
}

// Writer streams a trace to w chunk by chunk. Append buffers per-CPU;
// filled chunks are encoded in parallel batches and written in order.
// Close flushes the partial chunks and reports the first error.
type Writer struct {
	w           io.Writer
	h           Header
	workers     int
	bufs        [][]workload.Access
	pending     []rawChunk
	wroteHeader bool
	err         error
}

// NewWriter returns a Writer for a trace with the given header. workers
// bounds the encode fan-out (0 = one per CPU core, 1 = serial).
func NewWriter(w io.Writer, h Header, workers int) (*Writer, error) {
	if h.CPUs < 1 {
		return nil, fmt.Errorf("trace: header needs at least one cpu, got %d", h.CPUs)
	}
	if h.FootprintBytes < 0 || h.WarmupPerCPU < 0 || h.MeasurePerCPU < 0 {
		return nil, fmt.Errorf("trace: negative header field")
	}
	return &Writer{w: w, h: h, workers: workers, bufs: make([][]workload.Access, h.CPUs)}, nil
}

// Err returns the first write/encode error, if any.
func (w *Writer) Err() error { return w.err }

// Append adds one access to cpu's stream.
func (w *Writer) Append(cpu int, a workload.Access) {
	if w.err != nil {
		return
	}
	if cpu < 0 || cpu >= len(w.bufs) {
		w.err = fmt.Errorf("trace: append for cpu %d outside header's %d cpus", cpu, len(w.bufs))
		return
	}
	w.bufs[cpu] = append(w.bufs[cpu], a)
	if len(w.bufs[cpu]) >= ChunkLen {
		w.pending = append(w.pending, rawChunk{cpu: cpu, accs: w.bufs[cpu]})
		w.bufs[cpu] = nil
		if len(w.pending) >= flushBatch {
			w.flush()
		}
	}
}

// flush encodes the pending chunks across the pool and writes them in
// order.
func (w *Writer) flush() {
	if w.err != nil || (w.wroteHeader && len(w.pending) == 0) {
		return
	}
	if !w.wroteHeader {
		hdr := magic[:]
		hdr = binary.AppendUvarint(hdr, formatVersion)
		hdr = binary.AppendUvarint(hdr, uint64(w.h.CPUs))
		hdr = binary.AppendUvarint(hdr, uint64(len(w.h.Name)))
		hdr = append(hdr, w.h.Name...)
		hdr = binary.AppendUvarint(hdr, uint64(w.h.FootprintBytes))
		hdr = binary.AppendUvarint(hdr, uint64(w.h.WarmupPerCPU))
		hdr = binary.AppendUvarint(hdr, uint64(w.h.MeasurePerCPU))
		if _, err := w.w.Write(hdr); err != nil {
			w.err = err
			return
		}
		w.wroteHeader = true
	}
	encoded, err := parallel.Map(w.workers, len(w.pending), func(i int) ([]byte, error) {
		return encodeChunk(w.pending[i]), nil
	})
	if err != nil {
		w.err = err
		return
	}
	w.pending = w.pending[:0]
	for _, chunk := range encoded {
		if _, err := w.w.Write(chunk); err != nil {
			w.err = err
			return
		}
	}
}

// Close flushes everything buffered (including the header of an empty
// trace) and returns the first error. It does not close the underlying
// writer.
func (w *Writer) Close() error {
	for cpu, buf := range w.bufs {
		if len(buf) > 0 {
			w.pending = append(w.pending, rawChunk{cpu: cpu, accs: buf})
			w.bufs[cpu] = nil
		}
	}
	w.flush()
	return w.err
}

// Encode writes t to w in file format. workers bounds the encode
// fan-out (0 = one per CPU core, 1 = serial).
func Encode(t *Trace, w io.Writer, workers int) error {
	tw, err := NewWriter(w, t.Header, workers)
	if err != nil {
		return err
	}
	for cpu, stream := range t.Streams {
		for _, a := range stream {
			tw.Append(cpu, a)
		}
	}
	return tw.Close()
}

// Decode parses a complete trace file image. Chunk payloads decode
// across the pool (workers as in Encode).
func Decode(data []byte, workers int) (*Trace, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("trace: bad magic (not a trace file)")
	}
	off := len(magic)
	next := func(field string) (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: corrupt %s", field)
		}
		off += n
		return v, nil
	}
	version, err := next("version")
	if err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (have %d)", version, formatVersion)
	}
	cpus, err := next("cpu count")
	if err != nil {
		return nil, err
	}
	if cpus < 1 || cpus > 1<<20 {
		return nil, fmt.Errorf("trace: implausible cpu count %d", cpus)
	}
	nameLen, err := next("name length")
	if err != nil {
		return nil, err
	}
	if uint64(len(data)-off) < nameLen {
		return nil, fmt.Errorf("trace: truncated name")
	}
	name := string(data[off : off+int(nameLen)])
	off += int(nameLen)
	footprint, err := next("footprint")
	if err != nil {
		return nil, err
	}
	warmup, err := next("warmup quota")
	if err != nil {
		return nil, err
	}
	measure, err := next("measure quota")
	if err != nil {
		return nil, err
	}
	h := Header{
		CPUs:           int(cpus),
		Name:           name,
		FootprintBytes: int64(footprint),
		WarmupPerCPU:   int(warmup),
		MeasurePerCPU:  int(measure),
	}

	// Scan chunk boundaries (cheap), then decode payloads in parallel.
	type chunkRef struct {
		cpu     int
		count   int
		payload []byte
	}
	var chunks []chunkRef
	counts := make([]int64, h.CPUs)
	for off < len(data) {
		cpu, err := next("chunk cpu")
		if err != nil {
			return nil, err
		}
		if cpu >= uint64(h.CPUs) {
			return nil, fmt.Errorf("trace: chunk for cpu %d beyond header's %d cpus", cpu, h.CPUs)
		}
		count, err := next("chunk count")
		if err != nil {
			return nil, err
		}
		plen, err := next("chunk payload length")
		if err != nil {
			return nil, err
		}
		if count == 0 || uint64(len(data)-off) < plen {
			return nil, fmt.Errorf("trace: truncated chunk for cpu %d", cpu)
		}
		// Each access encodes to at least two bytes (delta + think), so a
		// count beyond plen/2 is corrupt — checked before the count sizes
		// any allocation.
		if count > plen/2 {
			return nil, fmt.Errorf("trace: chunk count %d exceeds its %d payload bytes", count, plen)
		}
		chunks = append(chunks, chunkRef{cpu: int(cpu), count: int(count), payload: data[off : off+int(plen)]})
		counts[cpu] += int64(count)
		off += int(plen)
	}
	decoded, err := parallel.Map(workers, len(chunks), func(i int) ([]workload.Access, error) {
		accs, err := decodePayload(chunks[i].payload, chunks[i].count)
		if err != nil {
			return nil, fmt.Errorf("%w (chunk %d, cpu %d)", err, i, chunks[i].cpu)
		}
		return accs, nil
	})
	if err != nil {
		return nil, err
	}
	streams := make([][]workload.Access, h.CPUs)
	for cpu := range streams {
		streams[cpu] = make([]workload.Access, 0, counts[cpu])
	}
	for i, c := range chunks {
		streams[c.cpu] = append(streams[c.cpu], decoded[i]...)
	}
	return &Trace{Header: h, Streams: streams}, nil
}

// Stat summarizes a trace file without decoding chunk payloads.
type Stat struct {
	Header Header
	// PerCPU is the access count of each stream.
	PerCPU []int64
	// FileBytes is the encoded size.
	FileBytes int64
}

// Accesses returns the total access count.
func (s *Stat) Accesses() int64 {
	var n int64
	for _, c := range s.PerCPU {
		n += c
	}
	return n
}

// StatFile reads a trace's header and chunk directory only — payloads
// are skipped, so this is cheap even for large traces.
func StatFile(path string) (*Stat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("%s: bad magic (not a trace file)", path)
	}
	off := len(magic)
	next := func(field string) (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%s: corrupt %s", path, field)
		}
		off += n
		return v, nil
	}
	var vals [3]uint64
	for i, f := range []string{"version", "cpu count", "name length"} {
		if vals[i], err = next(f); err != nil {
			return nil, err
		}
	}
	if vals[0] != formatVersion {
		return nil, fmt.Errorf("%s: unsupported format version %d", path, vals[0])
	}
	cpus, nameLen := vals[1], vals[2]
	if cpus < 1 || cpus > 1<<20 || uint64(len(data)-off) < nameLen {
		return nil, fmt.Errorf("%s: corrupt header", path)
	}
	name := string(data[off : off+int(nameLen)])
	off += int(nameLen)
	var rest [3]uint64
	for i, f := range []string{"footprint", "warmup quota", "measure quota"} {
		if rest[i], err = next(f); err != nil {
			return nil, err
		}
	}
	st := &Stat{
		Header: Header{
			CPUs: int(cpus), Name: name, FootprintBytes: int64(rest[0]),
			WarmupPerCPU: int(rest[1]), MeasurePerCPU: int(rest[2]),
		},
		PerCPU:    make([]int64, cpus),
		FileBytes: int64(len(data)),
	}
	for off < len(data) {
		cpu, err := next("chunk cpu")
		if err != nil {
			return nil, err
		}
		if cpu >= cpus {
			return nil, fmt.Errorf("%s: chunk for cpu %d beyond header's %d cpus", path, cpu, cpus)
		}
		count, err := next("chunk count")
		if err != nil {
			return nil, err
		}
		plen, err := next("chunk payload length")
		if err != nil {
			return nil, err
		}
		if uint64(len(data)-off) < plen {
			return nil, fmt.Errorf("%s: truncated chunk for cpu %d", path, cpu)
		}
		if count == 0 || count > plen/2 {
			return nil, fmt.Errorf("%s: chunk count %d exceeds its %d payload bytes", path, count, plen)
		}
		st.PerCPU[cpu] += int64(count)
		off += int(plen)
	}
	return st, nil
}

// WriteFile encodes t to path (workers as in Encode).
func (t *Trace) WriteFile(path string, workers int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(t, f, workers); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and decodes the trace at path (workers as in Decode).
func ReadFile(path string, workers int) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(data, workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
