package trace

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"reflect"
	"testing"

	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/workload"
)

// captureSmall records a small OLTP trace whose per-CPU streams cross
// the chunk boundary, so round trips exercise multi-chunk encode.
func captureSmall(t *testing.T, cpus, perCPU int) *Trace {
	t.Helper()
	gen := workload.OLTP(cpus)
	return Capture(gen, cpus, 1, perCPU/2, perCPU-perCPU/2)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := captureSmall(t, 3, ChunkLen+123)
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		if err := Encode(tr, &buf, workers); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf.Bytes(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("workers=%d: decoded trace differs from original", workers)
		}
		// The format should be far denser than the in-memory form.
		if raw := tr.Accesses() * 20; int64(buf.Len()) > raw/2 {
			t.Fatalf("encoded %d bytes for %d accesses — compression broken", buf.Len(), tr.Accesses())
		}
	}
}

func TestEncodeBytesIdenticalAtAnyWorkerCount(t *testing.T) {
	tr := captureSmall(t, 4, ChunkLen+7)
	var serial, parallel8 bytes.Buffer
	if err := Encode(tr, &serial, 1); err != nil {
		t.Fatal(err)
	}
	if err := Encode(tr, &parallel8, 8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel8.Bytes()) {
		t.Fatal("parallel encode produced different bytes than serial")
	}
}

func TestWriterInterleavedAppends(t *testing.T) {
	// Appending accesses round-robin across CPUs (as a Recorder does)
	// produces a different chunk order than Encode's stream order, but
	// must decode to the identical trace.
	tr := captureSmall(t, 3, ChunkLen+55)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Header, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ChunkLen+55; i++ {
		for cpu := range tr.Streams {
			w.Append(cpu, tr.Streams[cpu][i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("interleaved writer decode differs from captured trace")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tr := captureSmall(t, 2, 100)
	var buf bytes.Buffer
	if err := Encode(tr, &buf, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// A chunk whose count varint vastly exceeds what its payload can
	// hold must be rejected before the count sizes an allocation (an
	// unchecked 1<<40 would try to allocate terabytes of accesses).
	var hbuf bytes.Buffer
	w, err := NewWriter(&hbuf, Header{CPUs: 1, Name: "x", WarmupPerCPU: 1, MeasurePerCPU: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, workload.Access{Block: 1, Think: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The file ends with the chunk cpu(1B) count(1B) plen(1B)
	// payload(2B); rebuild it with count = 1<<40.
	valid := hbuf.Bytes()
	hugeCount := append([]byte{}, valid[:len(valid)-5]...)
	hugeCount = binary.AppendUvarint(hugeCount, 0)     // cpu
	hugeCount = binary.AppendUvarint(hugeCount, 1<<40) // count
	hugeCount = binary.AppendUvarint(hugeCount, 2)     // payload length
	hugeCount = append(hugeCount, valid[len(valid)-2:]...)

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("NOTTRACE"), data[8:]...)},
		{"truncated", data[:len(data)-3]},
		{"oversized chunk count", hugeCount},
	} {
		if _, err := Decode(tc.data, 1); err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
		}
	}
}

func TestRecorderTeesStream(t *testing.T) {
	cpus := 2
	gen := workload.Barnes(cpus)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{CPUs: cpus, Name: gen.Name(), FootprintBytes: gen.FootprintBytes(), WarmupPerCPU: 10, MeasurePerCPU: 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(gen.Clone(), w)
	rngs := []*sim.Rand{sim.NewRand(7), sim.NewRand(9)}
	var want [][]workload.Access
	ref := gen.Clone()
	refRngs := []*sim.Rand{sim.NewRand(7), sim.NewRand(9)}
	want = append(want, nil, nil)
	for i := 0; i < 30; i++ {
		for cpu := 0; cpu < cpus; cpu++ {
			got := rec.Next(cpu, rngs[cpu])
			wantAcc := ref.Next(cpu, refRngs[cpu])
			if got != wantAcc {
				t.Fatalf("recorder perturbed the stream at cpu %d access %d", cpu, i)
			}
			want[cpu] = append(want[cpu], got)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(buf.Bytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Streams, want) {
		t.Fatal("recorded streams differ from generated streams")
	}
}

func TestReplayerReplaysAndWraps(t *testing.T) {
	tr := captureSmall(t, 2, 50)
	r := NewReplayer(tr)
	if w, m := r.Quotas(); w != 25 || m != 25 {
		t.Fatalf("quotas = %d/%d, want 25/25", w, m)
	}
	var rng *sim.Rand // Next must ignore it
	for i := 0; i < 50; i++ {
		if got := r.Next(0, rng); got != tr.Streams[0][i] {
			t.Fatalf("access %d differs", i)
		}
	}
	if r.Wraps() != 0 {
		t.Fatalf("wrapped early: %d", r.Wraps())
	}
	if got := r.Next(0, rng); got != tr.Streams[0][0] || r.Wraps() != 1 {
		t.Fatalf("wrap-around broken: %+v wraps=%d", got, r.Wraps())
	}
	// A clone starts from the beginning, independent of the original.
	c := r.CloneGenerator()
	if got := c.Next(0, rng); got != tr.Streams[0][0] {
		t.Fatal("clone did not restart")
	}
}

func TestFileRoundTripAndSchemeResolution(t *testing.T) {
	tr := captureSmall(t, 4, 200)
	path := filepath.Join(t.TempDir(), "oltp.tstrace")
	if err := tr.WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("file round trip differs")
	}

	gen, err := workload.ByName("trace:"+path, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := gen.(*Replayer)
	if !ok {
		t.Fatalf("resolved %T, want *Replayer", gen)
	}
	if rep.Name() != "OLTP" || rep.CPUs() != 4 {
		t.Fatalf("replayer header: %q/%d", rep.Name(), rep.CPUs())
	}
	if _, err := workload.ByName("trace:"+path, 8); err == nil {
		t.Fatal("cpu-count mismatch accepted")
	}
	if _, err := workload.ByName("trace:/no/such/file", 4); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := workload.CheckName("trace:" + path); err != nil {
		t.Fatal(err)
	}
	if err := workload.CheckName("bogus:x"); err == nil {
		t.Fatal("unknown scheme accepted by CheckName")
	}
}

// TestResolvedCacheTracksRewrites covers the trace:<path> decode cache:
// an unchanged file resolves to the shared decode, a rewritten file
// must not serve the stale one.
func TestResolvedCacheTracksRewrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tstrace")
	if err := captureSmall(t, 2, 20).WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}
	first, err := readResolved(path)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := readResolved(path); again != first {
		t.Fatal("unchanged file missed the cache")
	}
	if err := captureSmall(t, 4, 20).WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}
	second, err := readResolved(path)
	if err != nil {
		t.Fatal(err)
	}
	if second.Header.CPUs != 4 {
		t.Fatalf("rewritten file served stale decode (%d cpus)", second.Header.CPUs)
	}
}

func TestFoldInterleavesSources(t *testing.T) {
	acc := func(b int) workload.Access { return workload.Access{Block: coherence.Block(b), Think: 1} }
	tr := &Trace{
		Header: Header{CPUs: 4, Name: "x", WarmupPerCPU: 2, MeasurePerCPU: 4},
		Streams: [][]workload.Access{
			{acc(0), acc(1)},
			{acc(10), acc(11)},
			{acc(20), acc(21)},
			{acc(30), acc(31)},
		},
	}
	got, err := Apply(tr, 1, Fold(2))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]workload.Access{
		{acc(0), acc(20), acc(1), acc(21)},
		{acc(10), acc(30), acc(11), acc(31)},
	}
	if !reflect.DeepEqual(got.Streams, want) {
		t.Fatalf("fold streams = %v", got.Streams)
	}
	if got.Header.CPUs != 2 || got.Header.WarmupPerCPU != 4 || got.Header.MeasurePerCPU != 8 {
		t.Fatalf("fold header = %+v", got.Header)
	}
	if _, err := Apply(tr, 1, Fold(5)); err == nil {
		t.Fatal("fold above source cpus accepted")
	}
}

// TestUnevenFoldNeverWraps folds 5 streams onto 2: each target takes
// floor(5/2)=2 source streams (the remainder stream is dropped), so
// quotas scale by 2, every target is the same length, the phase
// boundary stays aligned, and a replay never wraps.
func TestUnevenFoldNeverWraps(t *testing.T) {
	tr := captureSmall(t, 5, 40) // 20 warm-up + 20 measured per cpu
	folded, err := Apply(tr, 1, Fold(2))
	if err != nil {
		t.Fatal(err)
	}
	if w, m := folded.Header.WarmupPerCPU, folded.Header.MeasurePerCPU; w != 40 || m != 40 {
		t.Fatalf("folded quotas = %d/%d, want 40/40", w, m)
	}
	for cpu, s := range folded.Streams {
		if len(s) != 80 {
			t.Fatalf("target %d holds %d accesses, want 80 (remainder stream not dropped?)", cpu, len(s))
		}
	}
	// Warm-up sections interleave before any measured access: target 0
	// folds sources 0 and 2, so entry 40 is source 0's first measured.
	if folded.Streams[0][40] != tr.Streams[0][20] {
		t.Fatal("folded warm-up/measured boundary misaligned")
	}
	r := NewReplayer(folded)
	var rng *sim.Rand
	for cpu := 0; cpu < 2; cpu++ {
		for i := 0; i < 80; i++ {
			r.Next(cpu, rng)
		}
	}
	if r.Wraps() != 0 {
		t.Fatalf("replay of an uneven fold wrapped %d times", r.Wraps())
	}
}

func TestScaleWindowMerge(t *testing.T) {
	tr := captureSmall(t, 2, 40)

	half, err := Apply(tr, 1, Scale(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if half.Header.FootprintBytes != tr.Header.FootprintBytes/2 {
		t.Fatalf("scaled footprint = %d", half.Header.FootprintBytes)
	}
	for cpu := range tr.Streams {
		for i, a := range tr.Streams[cpu] {
			if want := coherence.Block(int64(float64(a.Block) * 0.5)); half.Streams[cpu][i].Block != want {
				t.Fatalf("cpu %d access %d: block %d, want %d", cpu, i, half.Streams[cpu][i].Block, want)
			}
		}
	}

	win, err := Apply(tr, 1, Window(10, 15))
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Streams[0]) != 15 || win.Streams[0][0] != tr.Streams[0][10] {
		t.Fatalf("window stream = %d accesses", len(win.Streams[0]))
	}
	if w, m := win.Header.WarmupPerCPU, win.Header.MeasurePerCPU; w+m > 15 {
		t.Fatalf("window quotas %d+%d exceed window", w, m)
	}

	// A window past the recorded warm-up keeps only measured accesses.
	mid, err := Apply(tr, 1, Window(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	if w, m := mid.Header.WarmupPerCPU, mid.Header.MeasurePerCPU; w != 0 || m != 20 {
		t.Fatalf("mid-window quotas = %d/%d, want 0/20", w, m)
	}
	// A warm-up-only window would replay without measuring anything.
	if _, err := Apply(tr, 1, Window(0, 15)); err == nil {
		t.Fatal("warm-up-only window accepted")
	}

	other := captureSmall(t, 2, 20)
	merged, err := Apply(win, 1, Merge(other))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(merged.Streams[0]), 15+20; got != want {
		t.Fatalf("merged stream = %d accesses, want %d", got, want)
	}
	if merged.Streams[0][0] != win.Streams[0][0] || merged.Streams[0][1] != other.Streams[0][0] {
		t.Fatal("merge did not interleave")
	}
	// Warm-up sections interleave before any measured access (win: 10+5,
	// other: 10+10 → 20 warm-up, then 15 measured), so the phase
	// boundary stays aligned; entry 20 is win's first measured access.
	if merged.Streams[0][20] != win.Streams[0][10] {
		t.Fatal("merged warm-up/measured boundary misaligned")
	}
	if merged.Header.Name != "OLTP+OLTP" {
		t.Fatalf("merged name = %q", merged.Header.Name)
	}
	bad := &Trace{Header: Header{CPUs: 3}, Streams: make([][]workload.Access, 3)}
	if _, err := Apply(win, 1, Merge(bad)); err == nil {
		t.Fatal("cpu-mismatched merge accepted")
	}
}
