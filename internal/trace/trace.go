// Package trace records, stores, replays, and transforms workload
// reference streams. It is the bridge between the synthetic generators
// and an open-ended scenario engine: any workload.Generator's per-CPU
// stream of Access records can be captured to a compact on-disk format,
// replayed bit-exactly into any protocol (the Replayer is itself a
// workload.Generator), and rewritten by composable transforms (CPU
// folding, footprint scaling, window truncation, multi-trace merge).
//
// The on-disk format is chunked and varint+delta encoded: a magic and
// header (CPU count, workload name, footprint, phase quotas), then a
// sequence of per-CPU chunks, each holding up to ChunkLen accesses as
// zigzag-varint block deltas plus a varint packing the think time with
// the load/store bit. Chunks decode independently (each restarts its
// delta base), so encoding and decoding both fan out across the
// internal/parallel worker pool.
//
// Traces plug into everything above them: workload.ByName resolves
// "trace:<path>" names (registered here), so spec.Spec runs,
// harness.Experiment grids, and the tsnoop CLI accept trace-backed
// workloads unchanged. The "tsnoop trace" subcommand surfaces record /
// replay / stat / transform on the command line.
package trace

import (
	"fmt"
	"os"
	"sync"
	"time"

	"tsnoop/internal/sim"
	"tsnoop/internal/workload"
)

// Header describes a trace: the machine shape it was recorded for and
// the phase quotas a replay should use.
type Header struct {
	// CPUs is the number of per-CPU streams.
	CPUs int
	// Name is the originating workload's name.
	Name string
	// FootprintBytes is the originating workload's configured footprint.
	FootprintBytes int64
	// WarmupPerCPU and MeasurePerCPU are the phase quotas the trace was
	// recorded with; replays default to them (workload.Quotaed).
	WarmupPerCPU  int
	MeasurePerCPU int
}

// Trace is a fully decoded trace: a header plus one access stream per
// CPU. The streams are read-only once built; Replayers share them.
type Trace struct {
	Header  Header
	Streams [][]workload.Access
}

// Accesses returns the total access count across all streams.
func (t *Trace) Accesses() int64 {
	var n int64
	for _, s := range t.Streams {
		n += int64(len(s))
	}
	return n
}

// Capture draws perCPU accesses per processor straight from gen, using
// the same seed-to-stream derivation as a live run (system.Build seeds a
// root RNG and Splits one child per node, in node order), and returns
// them as a Trace. Because generator state and RNGs are both per-CPU,
// the captured streams are exactly what a live simulation with this
// seed would consume — independent of protocol, network, and event
// interleaving — so replaying them reproduces the live run bit-exactly.
func Capture(gen workload.Generator, cpus int, seed uint64, warmupPerCPU, measurePerCPU int) *Trace {
	root := sim.NewRand(seed)
	rngs := make([]*sim.Rand, cpus)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	perCPU := warmupPerCPU + measurePerCPU
	streams := make([][]workload.Access, cpus)
	for cpu := range streams {
		s := make([]workload.Access, perCPU)
		for i := range s {
			s[i] = gen.Next(cpu, rngs[cpu])
		}
		streams[cpu] = s
	}
	return &Trace{
		Header: Header{
			CPUs:           cpus,
			Name:           gen.Name(),
			FootprintBytes: gen.FootprintBytes(),
			WarmupPerCPU:   warmupPerCPU,
			MeasurePerCPU:  measurePerCPU,
		},
		Streams: streams,
	}
}

// Recorder wraps a generator and tees every access it produces into a
// Writer, so a live simulation records its own reference stream as a
// side effect. Check the Writer's Close error for write failures.
type Recorder struct {
	inner workload.Generator
	w     *Writer
}

// NewRecorder returns a Recorder teeing inner's stream into w.
func NewRecorder(inner workload.Generator, w *Writer) *Recorder {
	return &Recorder{inner: inner, w: w}
}

// Name implements workload.Generator.
func (r *Recorder) Name() string { return r.inner.Name() }

// FootprintBytes implements workload.Generator.
func (r *Recorder) FootprintBytes() int64 { return r.inner.FootprintBytes() }

// Next implements workload.Generator: it forwards to the wrapped
// generator and appends the access to the trace.
func (r *Recorder) Next(cpu int, rng *sim.Rand) workload.Access {
	a := r.inner.Next(cpu, rng)
	r.w.Append(cpu, a)
	return a
}

// Replayer replays a Trace as a workload.Generator: Next pops the
// stream back in recorded per-CPU order, so a replayed simulation is
// bit-identical to the live run the trace captures. A stream that runs
// dry wraps around to its start (deterministically); Wraps counts how
// often, so callers can detect quota overruns.
type Replayer struct {
	trace *Trace
	pos   []int
	wraps int
}

// NewReplayer returns a Replayer positioned at the start of t.
func NewReplayer(t *Trace) *Replayer {
	return &Replayer{trace: t, pos: make([]int, len(t.Streams))}
}

// Name implements workload.Generator.
func (r *Replayer) Name() string { return r.trace.Header.Name }

// FootprintBytes implements workload.Generator.
func (r *Replayer) FootprintBytes() int64 { return r.trace.Header.FootprintBytes }

// CPUs returns the number of recorded streams.
func (r *Replayer) CPUs() int { return r.trace.Header.CPUs }

// Quotas implements workload.Quotaed: replays default to the phase
// quotas the trace was recorded with.
func (r *Replayer) Quotas() (warmupPerCPU, measurePerCPU int) {
	return r.trace.Header.WarmupPerCPU, r.trace.Header.MeasurePerCPU
}

// Wraps returns how many times any stream has wrapped around.
func (r *Replayer) Wraps() int { return r.wraps }

// Next implements workload.Generator. The RNG is ignored: a trace is
// already a fixed stream, and leaving the per-CPU RNG untouched keeps
// replay independent of it.
func (r *Replayer) Next(cpu int, _ *sim.Rand) workload.Access {
	if cpu >= len(r.trace.Streams) {
		panic(fmt.Sprintf("trace: replay for cpu %d but trace %q has %d streams (fold it: tstrace transform -fold)",
			cpu, r.trace.Header.Name, len(r.trace.Streams)))
	}
	s := r.trace.Streams[cpu]
	if len(s) == 0 {
		panic(fmt.Sprintf("trace: replay for cpu %d but its stream is empty", cpu))
	}
	if r.pos[cpu] >= len(s) {
		r.pos[cpu] = 0
		r.wraps++
	}
	a := s[r.pos[cpu]]
	r.pos[cpu]++
	return a
}

// CloneGenerator implements workload.Cloner: the clone shares the
// decoded streams (read-only) but replays from the start.
func (r *Replayer) CloneGenerator() workload.Generator { return NewReplayer(r.trace) }

// The compiler keeps the wrap-detection and clone contracts honest.
var (
	_ workload.Wrapping = (*Replayer)(nil)
	_ workload.Cloner   = (*Replayer)(nil)
	_ workload.Quotaed  = (*Replayer)(nil)
)

// resolved caches traces decoded by the "trace:<path>" scheme:
// repeated resolutions of the same file (e.g. a Spec run's per-seed
// lookups, fanned out concurrently) share one decode and its streams,
// which Replayers never mutate. Entries are keyed by (path, mtime,
// size), so rewriting a trace file in place invalidates the stale
// decode; the cache itself lives (unbounded) for the process. The
// mutex is held across the decode so concurrent first lookups don't
// each decode a full copy.
var resolved struct {
	sync.Mutex
	byFile map[resolvedKey]*Trace
}

type resolvedKey struct {
	path string
	mod  time.Time
	size int64
}

// Resolved returns the decoded trace at path through the same cache the
// trace:<path> scheme uses, so a caller that needs the header (e.g.
// tstrace replay) shares one read and decode with the replay itself.
func Resolved(path string) (*Trace, error) { return readResolved(path) }

func readResolved(path string) (*Trace, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	key := resolvedKey{path: path, mod: fi.ModTime(), size: fi.Size()}
	resolved.Lock()
	defer resolved.Unlock()
	if t, ok := resolved.byFile[key]; ok {
		return t, nil
	}
	t, err := ReadFile(path, 0)
	if err != nil {
		return nil, err
	}
	if resolved.byFile == nil {
		resolved.byFile = map[resolvedKey]*Trace{}
	}
	resolved.byFile[key] = t
	return t, nil
}

// init registers the "trace:<path>" workload scheme: the file is read
// and decoded (one decode worker per CPU core, cached per path) and
// must match the requested processor count — fold or split mismatched
// traces with tstrace transform first.
func init() {
	workload.RegisterScheme("trace", func(path string, cpus int) (workload.Generator, error) {
		t, err := readResolved(path)
		if err != nil {
			return nil, err
		}
		if t.Header.CPUs > cpus {
			return nil, fmt.Errorf("trace %s: recorded for %d cpus, want %d (fold it: tstrace transform -in %s -fold %d -o <out>)",
				path, t.Header.CPUs, cpus, path, cpus)
		}
		if t.Header.CPUs < cpus {
			return nil, fmt.Errorf("trace %s: recorded for %d cpus, want %d (run it at its recorded width, e.g. -nodes %d)",
				path, t.Header.CPUs, cpus, t.Header.CPUs)
		}
		return NewReplayer(t), nil
	})
}
