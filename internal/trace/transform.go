package trace

import (
	"fmt"
	"strings"

	"tsnoop/internal/coherence"
	"tsnoop/internal/parallel"
	"tsnoop/internal/workload"
)

// A Transform rewrites a decoded trace into a new one. Transforms never
// mutate their input (Replayers may share its streams) and fan
// per-stream work across the internal/parallel pool, bounded by
// workers (0 = one per CPU core, 1 = serial). Compose them with Apply.
type Transform func(t *Trace, workers int) (*Trace, error)

// Apply runs the passes left to right.
func Apply(t *Trace, workers int, passes ...Transform) (*Trace, error) {
	var err error
	for _, pass := range passes {
		if t, err = pass(t, workers); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fold remaps a trace onto fewer processors: every target stream takes
// floor(source/target) source streams (stream i feeds target i mod
// cpus; when the fold is uneven the remainder streams are dropped, so
// all targets stay the same length), interleaved round-robin by access
// index — warm-up sections first, then measured, so contention
// structure survives the fold and the phase boundary stays aligned.
// Quotas scale by the same factor; a replay consumes each folded
// stream exactly and never wraps.
func Fold(cpus int) Transform {
	return func(t *Trace, workers int) (*Trace, error) {
		src := t.Header.CPUs
		if cpus < 1 || cpus > src {
			return nil, fmt.Errorf("trace: fold target %d outside [1, %d source cpus]", cpus, src)
		}
		if cpus == src {
			return t, nil
		}
		per := src / cpus
		streams, err := parallel.Map(workers, cpus, func(j int) ([]workload.Access, error) {
			warm := make([][]workload.Access, per)
			meas := make([][]workload.Access, per)
			for i := range warm {
				s := t.Streams[j+i*cpus]
				w := min(t.Header.WarmupPerCPU, len(s))
				warm[i], meas[i] = s[:w], s[w:]
			}
			return append(interleave(warm), interleave(meas)...), nil
		})
		if err != nil {
			return nil, err
		}
		h := t.Header
		h.CPUs = cpus
		h.WarmupPerCPU = h.WarmupPerCPU * per
		h.MeasurePerCPU = h.MeasurePerCPU * per
		return &Trace{Header: h, Streams: streams}, nil
	}
}

// Scale remaps block IDs by a footprint factor: block b becomes
// floor(b*factor), so factor < 1 aliases neighboring blocks together
// (shrinking the footprint and raising locality) and factor > 1
// spreads them apart. The header footprint scales accordingly.
func Scale(factor float64) Transform {
	return func(t *Trace, workers int) (*Trace, error) {
		if factor <= 0 {
			return nil, fmt.Errorf("trace: scale factor must be positive, got %g", factor)
		}
		streams, err := parallel.Map(workers, len(t.Streams), func(cpu int) ([]workload.Access, error) {
			src := t.Streams[cpu]
			out := make([]workload.Access, len(src))
			for i, a := range src {
				a.Block = coherence.Block(int64(float64(a.Block) * factor))
				out[i] = a
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		h := t.Header
		h.FootprintBytes = int64(float64(h.FootprintBytes) * factor)
		return &Trace{Header: h, Streams: streams}, nil
	}
}

// Window truncates every stream to the accesses [start, start+n). Phase
// quotas follow the recording: kept accesses that were recorded as
// warm-up stay warm-up (so a window starting past the recorded warm-up
// keeps none), and the rest are measured. A window keeping no measured
// accesses is an error — replaying it would measure nothing.
func Window(start, n int) Transform {
	return func(t *Trace, workers int) (*Trace, error) {
		if start < 0 || n < 1 {
			return nil, fmt.Errorf("trace: window [%d, %d+%d) is empty or negative", start, start, n)
		}
		streams := make([][]workload.Access, len(t.Streams))
		for cpu, s := range t.Streams {
			lo := min(start, len(s))
			hi := min(start+n, len(s))
			streams[cpu] = s[lo:hi]
		}
		h := t.Header
		warm := min(max(h.WarmupPerCPU-start, 0), n)
		total := min(max(h.WarmupPerCPU+h.MeasurePerCPU-start, 0), n)
		h.WarmupPerCPU = warm
		h.MeasurePerCPU = total - warm
		if h.MeasurePerCPU == 0 {
			return nil, fmt.Errorf("trace: window [%d, %d) keeps no measured accesses (recorded quotas: %d warm-up + %d measured per cpu)",
				start, start+n, t.Header.WarmupPerCPU, t.Header.MeasurePerCPU)
		}
		return &Trace{Header: h, Streams: streams}, nil
	}
}

// interleave merges segments round-robin by access index.
func interleave(segs [][]workload.Access) []workload.Access {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	out := make([]workload.Access, 0, total)
	for r := 0; len(out) < total; r++ {
		for _, s := range segs {
			if r < len(s) {
				out = append(out, s[r])
			}
		}
	}
	return out
}

// Merge interleaves additional traces into the transformed one,
// round-robin per CPU by access index — warm-up sections with warm-up
// sections and measured with measured, so the combined quotas keep the
// phase boundary aligned even when the sources' warm-up quotas differ.
// All traces must share the CPU count; quotas add, the footprint takes
// the maximum, and the name joins the sources with "+".
func Merge(others ...*Trace) Transform {
	return func(t *Trace, workers int) (*Trace, error) {
		all := append([]*Trace{t}, others...)
		names := make([]string, len(all))
		h := t.Header
		h.WarmupPerCPU, h.MeasurePerCPU, h.FootprintBytes = 0, 0, 0
		for i, tr := range all {
			if tr.Header.CPUs != t.Header.CPUs {
				return nil, fmt.Errorf("trace: merge of %d-cpu trace %q into %d-cpu trace %q (fold first)",
					tr.Header.CPUs, tr.Header.Name, t.Header.CPUs, t.Header.Name)
			}
			names[i] = tr.Header.Name
			h.WarmupPerCPU += tr.Header.WarmupPerCPU
			h.MeasurePerCPU += tr.Header.MeasurePerCPU
			h.FootprintBytes = max(h.FootprintBytes, tr.Header.FootprintBytes)
		}
		h.Name = strings.Join(names, "+")
		streams, err := parallel.Map(workers, t.Header.CPUs, func(cpu int) ([]workload.Access, error) {
			warm := make([][]workload.Access, len(all))
			meas := make([][]workload.Access, len(all))
			for i, tr := range all {
				s := tr.Streams[cpu]
				w := min(tr.Header.WarmupPerCPU, len(s))
				warm[i], meas[i] = s[:w], s[w:]
			}
			return append(interleave(warm), interleave(meas)...), nil
		})
		if err != nil {
			return nil, err
		}
		return &Trace{Header: h, Streams: streams}, nil
	}
}
