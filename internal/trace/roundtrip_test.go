package trace_test

// Round-trip fidelity: a recorded trace, replayed, must reproduce the
// live generator's run byte-identically — same runtime, same traffic,
// same miss mix — for every benchmark, protocol, seed, and worker
// count. This is the property that makes traces a drop-in substrate
// for every experiment above them.

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tsnoop/internal/core"
	"tsnoop/internal/harness"
	"tsnoop/internal/system"
	"tsnoop/internal/trace"
	"tsnoop/internal/workload"
)

const (
	rtWarmup  = 150
	rtMeasure = 250
)

// recordBench captures benchmark name at the given seed with the
// round-trip quotas and writes it to dir, returning the trace: name.
func recordBench(t *testing.T, dir, name string, cpus int, seed uint64) string {
	t.Helper()
	gen, err := workload.ByName(name, cpus)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Capture(gen, cpus, seed, rtWarmup, rtMeasure)
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.tstrace", name, seed))
	if err := tr.WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}
	return "trace:" + path
}

// TestReplayMatchesLiveRun records each of the five benchmarks and
// asserts the replayed run equals the live-generator run, across all
// three protocols and two seeds.
func TestReplayMatchesLiveRun(t *testing.T) {
	dir := t.TempDir()
	for _, bench := range workload.Names() {
		for _, seed := range []uint64{1, 7} {
			traceName := recordBench(t, dir, bench, 16, seed)
			for _, proto := range []string{core.TSSnoop, core.DirClassic, core.DirOpt} {
				live, err := core.New(bench, core.WithProtocol(proto),
					core.WithWarmup(rtWarmup), core.WithQuota(rtMeasure), core.WithSeed(seed)).Run()
				if err != nil {
					t.Fatal(err)
				}
				replay, err := core.New(traceName, core.WithProtocol(proto), core.WithSeed(seed)).Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(live, replay) {
					t.Errorf("%s/%s seed %d: replayed run differs from live run\nlive:\n%s\nreplay:\n%s",
						bench, proto, seed, live.Summary(), replay.Summary())
				}
				if live.Summary() != replay.Summary() {
					t.Errorf("%s/%s seed %d: summaries not byte-identical", bench, proto, seed)
				}
			}
		}
	}
}

// TestTraceGridMatchesLiveGrid runs a one-benchmark Figure 3/4 grid
// from a trace directory and asserts the rendering is byte-identical
// to the live grid at several worker counts. The trace must be
// recorded with the quotas the harness will use (seed 1, Seeds=1).
func TestTraceGridMatchesLiveGrid(t *testing.T) {
	dir := t.TempDir()
	bench := "barnes"
	e := harness.Default()
	e.Seeds = 1 // multi-seed live runs vary the stream; a trace pins it
	e.QuotaScale = 0
	e.WarmupScale = 0
	// QuotaScale/WarmupScale of 0 floor the quotas at 1; record with
	// explicit quotas instead and let the trace supply them.
	gen, err := workload.ByName(bench, e.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Capture(gen, e.Nodes, 1, rtWarmup, rtMeasure)
	path := filepath.Join(dir, bench+".tstrace")
	if err := tr.WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}

	live := e
	live.QuotaScale = float64(rtMeasure) / float64(workload.MeasureQuota(bench))
	live.WarmupScale = float64(rtWarmup) / 2500.0
	live.Benchmarks = []string{bench}
	liveGrid, err := live.RunGrid(system.NetButterfly)
	if err != nil {
		t.Fatal(err)
	}

	var first string
	for _, workers := range []int{1, 4} {
		te := e
		te.Workers = workers
		te.Benchmarks = []string{"trace:" + path}
		grid, err := te.RunGrid(system.NetButterfly)
		if err != nil {
			t.Fatal(err)
		}
		fig := grid.Figure3() + grid.Figure4()
		if first == "" {
			first = fig
		} else if fig != first {
			t.Fatalf("workers=%d: trace grid rendering differs from workers=1", workers)
		}
		// Cell-by-cell equality against the live grid (the renderings
		// differ only in the benchmark label column).
		for _, proto := range harness.Protocols {
			lr := liveGrid.Cells[bench][proto].Best
			tr := grid.Cells["trace:"+path][proto].Best
			if !reflect.DeepEqual(lr, tr) {
				t.Errorf("workers=%d %s: trace cell differs from live cell\nlive:\n%s\ntrace:\n%s",
					workers, proto, lr.Summary(), tr.Summary())
			}
		}
	}
}

// TestTraceTable3RowMatchesLive asserts a Table 3 row computed from a
// trace-backed experiment is identical to the live row.
func TestTraceTable3RowMatchesLive(t *testing.T) {
	dir := t.TempDir()
	bench := "DSS"
	e := harness.Default()

	gen, err := workload.ByName(bench, e.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Capture(gen, e.Nodes, 1, rtWarmup, rtMeasure)
	path := filepath.Join(dir, bench+".tstrace")
	if err := tr.WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}

	live := e
	live.QuotaScale = float64(rtMeasure) / float64(workload.MeasureQuota(bench))
	live.WarmupScale = float64(rtWarmup) / 2500.0
	live.Benchmarks = []string{bench}
	liveRows, err := live.Table3()
	if err != nil {
		t.Fatal(err)
	}

	te := e
	te.Benchmarks = []string{"trace:" + path}
	traceRows, err := te.Table3()
	if err != nil {
		t.Fatal(err)
	}
	lr, rr := liveRows[0], traceRows[0]
	rr.Benchmark = lr.Benchmark // labels differ by construction
	if !reflect.DeepEqual(lr, rr) {
		t.Fatalf("table 3 row differs:\nlive:  %+v\ntrace: %+v", lr, rr)
	}
}

// TestExplicitQuotaBeatsTraceQuota sets a measured quota equal to the
// scheme default (2500), which value-equality override detection cannot
// distinguish from "not set", and asserts it still overrides the
// trace's recorded quota.
func TestExplicitQuotaBeatsTraceQuota(t *testing.T) {
	dir := t.TempDir()
	gen, err := workload.ByName("barnes", 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Capture(gen, 4, 1, 100, 2600)
	path := filepath.Join(dir, "barnes4.tstrace")
	if err := tr.WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}
	run, err := core.New("trace:"+path, core.WithNodes(4),
		core.WithQuota(2500)).Run() // quota deliberately equal to the scheme default
	if err != nil {
		t.Fatal(err)
	}
	if run.MemOps != 4*2500 {
		t.Fatalf("mem ops = %d, want %d (explicit quota must beat the trace's %d)",
			run.MemOps, 4*2500, tr.Header.MeasurePerCPU)
	}

	// A quota beyond the recording would wrap the stream and silently
	// measure re-walked data; that must be an error, not bogus stats.
	if _, err := core.New("trace:"+path, core.WithNodes(4),
		core.WithQuota(3000)).Run(); // recording holds 100+2600 per cpu
	err == nil || !strings.Contains(err.Error(), "wrapped") {
		t.Fatalf("over-quota replay: err = %v, want wrap error", err)
	}
}

// TestFoldedTraceThroughExperiment folds a 16-CPU barnes trace onto 8
// CPUs and runs it end to end through harness.Experiment on the torus
// (8 nodes is not a square, so the butterfly does not apply).
func TestFoldedTraceThroughExperiment(t *testing.T) {
	dir := t.TempDir()
	gen, err := workload.ByName("barnes", 16)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Capture(gen, 16, 1, 100, 150)
	folded, err := trace.Apply(tr, 0, trace.Fold(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "barnes-8.tstrace")
	if err := folded.WriteFile(path, 0); err != nil {
		t.Fatal(err)
	}

	e := harness.Default()
	e.Nodes = 8
	e.Seeds = 2
	e.Benchmarks = []string{"trace:" + path}
	grid, err := e.RunGrid(system.NetTorus)
	if err != nil {
		t.Fatal(err)
	}
	fig := grid.Figure3()
	if !strings.Contains(fig, "trace:") {
		t.Fatalf("figure missing trace row:\n%s", fig)
	}
	for _, proto := range harness.Protocols {
		best := grid.Cells["trace:"+path][proto].Best
		if best == nil || best.Runtime <= 0 || best.MemOps != int64(8*folded.Header.MeasurePerCPU) {
			t.Fatalf("%s: folded replay ran %d mem ops, want %d", proto, best.MemOps, 8*folded.Header.MeasurePerCPU)
		}
	}
}
