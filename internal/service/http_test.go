package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// newTestServer builds a service (with the given sim stub; nil = real
// simulations) behind an httptest server.
func newTestServer(t *testing.T, dir string, sim SimFunc) (*Service, *httptest.Server) {
	t.Helper()
	sv, err := New(Config{Dir: dir, Workers: 2, Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sv))
	t.Cleanup(srv.Close)
	return sv, srv
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// The acceptance path, end to end over HTTP with real simulations:
// submitting the same Spec twice simulates once — the second response is
// byte-identical and marked as a store hit.
func TestHTTPRunsCacheSecondSubmission(t *testing.T) {
	sv, srv := newTestServer(t, t.TempDir(), nil)
	s := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120))
	body := s.JSON()

	first := postJSON(t, srv.URL+"/v1/runs", body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %s", first.Status)
	}
	if got := first.Header.Get("X-Tsnoop-Cache"); got != CacheMiss {
		t.Fatalf("first submit X-Tsnoop-Cache = %q, want %q", got, CacheMiss)
	}
	if first.Header.Get("X-Tsnoop-Job") == "" {
		t.Fatal("first submit did not name its job")
	}
	firstBody, _ := io.ReadAll(first.Body)

	second := postJSON(t, srv.URL+"/v1/runs", body)
	if got := second.Header.Get("X-Tsnoop-Cache"); got != CacheHit {
		t.Fatalf("second submit X-Tsnoop-Cache = %q, want %q", got, CacheHit)
	}
	secondBody, _ := io.ReadAll(second.Body)
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("second response not byte-identical:\n first: %s\nsecond: %s", firstBody, secondBody)
	}
	var run stats.Run
	if err := json.Unmarshal(secondBody, &run); err != nil {
		t.Fatalf("response is not Run JSON: %v", err)
	}
	if run.MemOps != 4*120 {
		t.Fatalf("run mem ops = %d, want %d", run.MemOps, 4*120)
	}
	if hits := sv.StoreStats().Hits; hits < 1 {
		t.Fatalf("store recorded %d hits", hits)
	}

	// An equivalent spec rendering (different Workers, explicit scale 1)
	// hashes identically, so it is also a pure hit.
	alt := s
	alt.Workers = 7
	alt.QuotaScale, alt.WarmupScale = 1, 1
	third := postJSON(t, srv.URL+"/v1/runs", alt.JSON())
	if got := third.Header.Get("X-Tsnoop-Cache"); got != CacheHit {
		t.Fatalf("equivalent spec X-Tsnoop-Cache = %q, want %q", got, CacheHit)
	}
	thirdBody, _ := io.ReadAll(third.Body)
	if !bytes.Equal(firstBody, thirdBody) {
		t.Fatal("equivalent spec response not byte-identical")
	}
}

// Concurrent identical submissions singleflight: one job, every
// response byte-identical, exactly Seeds simulations.
func TestHTTPConcurrentIdenticalSubmissionsSingleflight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		calls.Add(1)
		<-gate
		return &stats.Run{Runtime: 777}, nil
	}
	_, srv := newTestServer(t, "", sim)
	s := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50))
	body := s.JSON()

	const clients = 6
	bodies := make([][]byte, clients)
	dispositions := make([]string, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
			dispositions[i] = resp.Header.Get("X-Tsnoop-Cache")
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let the requests pile onto the flight
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d simulations for %d concurrent identical submissions, want 1", got, clients)
	}
	misses := 0
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
		if dispositions[i] == CacheMiss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d responses claim to have started the job, want 1 (rest join or hit)", misses)
	}
}

func TestHTTPGridStreamsNDJSONInPresentationOrder(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 100}, nil
	}
	_, srv := newTestServer(t, "", sim)
	s := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50))
	resp := postJSON(t, srv.URL+"/v1/grids", s.JSON())
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(spec.Protocols) {
		t.Fatalf("grid streamed %d lines, want %d:\n%s", len(lines), len(spec.Protocols), data)
	}
	for i, proto := range spec.Protocols {
		var cell struct {
			Benchmark string `json:"benchmark"`
			Protocol  string `json:"protocol"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &cell); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if cell.Benchmark != "barnes" || cell.Protocol != proto {
			t.Fatalf("line %d = %s, want barnes/%s (presentation order)", i, lines[i], proto)
		}
	}
}

func TestHTTPSweepStreamsPoints(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 100}, nil
	}
	_, srv := newTestServer(t, "", sim)
	s := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50))
	body, _ := json.Marshal(map[string]any{"sweep": "blocksize", "spec": json.RawMessage(s.JSON())})
	resp := postJSON(t, srv.URL+"/v1/sweeps", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s", resp.Status)
	}
	data, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("sweep streamed %d lines:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var pt struct {
			Label    string `json:"label"`
			Protocol string `json:"protocol"`
		}
		if err := json.Unmarshal([]byte(line), &pt); err != nil || pt.Label == "" {
			t.Fatalf("line %d not a sweep point: %s (%v)", i, line, err)
		}
	}
}

func TestHTTPJobsAndHealth(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 5}, nil
	}
	_, srv := newTestServer(t, "", sim)
	resp := postJSON(t, srv.URL+"/v1/runs", spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON())
	jobID := resp.Header.Get("X-Tsnoop-Job")
	io.Copy(io.Discard, resp.Body)

	jr, err := http.Get(srv.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var job JobStatus
	if err := json.NewDecoder(jr.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.ID != jobID || job.State != JobDone || job.SeedsDone != 1 {
		t.Fatalf("job = %+v", job)
	}

	if r404, _ := http.Get(srv.URL + "/v1/jobs/job-999999"); r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s", r404.Status)
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Queue.Done != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, "", func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{}, nil
	})
	cases := []struct {
		path string
		body string
	}{
		{"/v1/runs", `{"benchmrak":"DSS"}`},      // unknown field
		{"/v1/runs", `not json`},                 // malformed
		{"/v1/runs", `{"protocol":"MOESI"}`},     // invalid spec
		{"/v1/grids", `{"network":"hypercube"}`}, // invalid machine
		{"/v1/sweeps", `{"sweep":"bogus"}`},      // unknown sweep kind
		{"/v1/sweeps", fmt.Sprintf(`{"sweep":"nodes","spec":%s,"x":1}`, spec.Default().JSON())}, // unknown request field
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+c.path, []byte(c.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: %s, want 400", c.path, c.body, resp.Status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("POST %s %q: error body malformed (%v)", c.path, c.body, err)
		}
	}
}

// TestHTTPJobsListSortedByID pins the GET /v1/jobs contract: the body
// is the full retained job list, sorted by id ascending.
func TestHTTPJobsListSortedByID(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 5}, nil
	}
	_, srv := newTestServer(t, "", sim)
	const n = 4
	for seed := uint64(1); seed <= n; seed++ {
		s := spec.New("barnes", spec.WithNodes(4), spec.WithSeed(seed), spec.WithQuota(50))
		resp := postJSON(t, srv.URL+"/v1/runs", s.JSON())
		io.Copy(io.Discard, resp.Body)
	}
	jr, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var jobs []JobStatus
	if err := json.NewDecoder(jr.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != n {
		t.Fatalf("listed %d jobs, want %d", len(jobs), n)
	}
	for i, j := range jobs {
		if want := fmt.Sprintf("job-%06d", i+1); j.ID != want {
			t.Fatalf("jobs[%d].ID = %s, want %s", i, j.ID, want)
		}
	}
}
