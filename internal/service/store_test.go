package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsnoop/internal/spec"
)

// testKey returns a distinct valid content address.
func testKey(t *testing.T, n uint64) string {
	t.Helper()
	s := spec.Default()
	s.Seed = n + 1000
	return s.Canonical()
}

func TestStoreRoundTripDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if _, ok, err := st.Get(key); err != nil || ok {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	want := []byte(`{"runtime_ps":42}`)
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(key)
	if err != nil || !ok || string(got) != string(want) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}

	// The layout is sharded by key prefix; the entry is the payload
	// behind one integrity-header line.
	path := filepath.Join(dir, key[:2], key[2:]+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("sharded file missing: %v", err)
	}
	if !strings.HasPrefix(string(raw), entryMagic+" ") {
		t.Fatalf("on-disk entry lacks the %s header: %q", entryMagic, raw)
	}
	payload, err := decodeEntry(raw)
	if err != nil || string(payload) != string(want) {
		t.Fatalf("decodeEntry = %q, %v, want %q", payload, err, want)
	}
	// No temp files are left behind by the atomic write.
	matches, _ := filepath.Glob(filepath.Join(dir, "*", ".put-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}

	// A fresh store over the same directory serves the persisted result.
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = st2.Get(key)
	if err != nil || !ok || string(got) != string(want) {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestStoreLRUEvictionFallsBackToDisk(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(t, 1), testKey(t, 2), testKey(t, 3)}
	for i, k := range keys {
		if err := st.Put(k, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Stats().Entries; got != 2 {
		t.Fatalf("LRU holds %d entries, want 2", got)
	}
	// The evicted key still answers, via disk.
	data, ok, err := st.Get(keys[0])
	if err != nil || !ok || string(data) != "a" {
		t.Fatalf("evicted key Get = %q, %v, %v", data, ok, err)
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	st, err := OpenStore("", 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(t, 1), testKey(t, 2), testKey(t, 3)}
	for _, k := range keys {
		if err := st.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := st.Get(keys[0]); ok {
		t.Fatal("memory-only store served an evicted key")
	}
	if _, ok, _ := st.Get(keys[2]); !ok {
		t.Fatal("memory-only store lost a resident key")
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		strings.Repeat("g", keyLen), // not hex
		strings.Repeat("A", keyLen), // not lowercase
		"../../etc/passwd" + strings.Repeat("0", keyLen-16), // traversal-shaped
	} {
		if _, _, err := st.Get(key); err == nil {
			t.Errorf("Get accepted malformed key %q", key)
		}
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted malformed key %q", key)
		}
	}
}

func TestStoreStatsCount(t *testing.T) {
	st, err := OpenStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	st.Get(key)
	st.Put(key, []byte("x"))
	st.Get(key)
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", s)
	}
}

// corruptCase plants one kind of bad entry on disk and asserts the
// recovery contract: the read is a miss (not an error), the entry is
// quarantined aside, and the corrupt counter moves — after which a
// fresh Put round-trips cleanly (the recompute path).
func corruptCase(t *testing.T, name string, mangle func(t *testing.T, path string)) {
	t.Run(name, func(t *testing.T) {
		dir := t.TempDir()
		st, err := OpenStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		key := testKey(t, 1)
		want := []byte(`{"runtime_ps":42}`)
		if err := st.Put(key, want); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, key[:2], key[2:]+".json")
		mangle(t, path)

		// A fresh store (cold LRU) must read the mangled file, refuse
		// it, and answer a miss — never garbage, never an error.
		st2, err := OpenStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		data, ok, err := st2.Get(key)
		if err != nil || ok || data != nil {
			t.Fatalf("corrupt Get = %q, %v, %v; want miss", data, ok, err)
		}
		s := st2.Stats()
		if s.Corrupt != 1 || s.Misses != 1 || s.Errors != 0 {
			t.Fatalf("stats after corrupt read = %+v, want 1 corrupt / 1 miss / 0 errors", s)
		}
		// The entry moved into quarantine; the shard no longer has it.
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry still in shard: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, key+".json")); err != nil {
			t.Fatalf("quarantined copy missing: %v", err)
		}
		// Recompute: a fresh Put publishes a clean entry that reads back.
		if err := st2.Put(key, want); err != nil {
			t.Fatal(err)
		}
		st3, err := OpenStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok, err := st3.Get(key); err != nil || !ok || string(got) != string(want) {
			t.Fatalf("recomputed Get = %q, %v, %v", got, ok, err)
		}
	})
}

func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	corruptCase(t, "truncated", func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "bit-flipped payload", func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-3] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "checksum-missing legacy entry", func(t *testing.T, path string) {
		// A pre-integrity store wrote the bare payload; it is
		// untrusted now and recomputed rather than served.
		if err := os.WriteFile(path, []byte(`{"runtime_ps":42}`), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "zero-length entry", func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// The resident LRU shields a corrupt disk entry until eviction or
// restart; this pins that Get prefers memory (no false quarantine of a
// key the process just wrote).
func TestStoreLRUShieldsDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	want := []byte(`{"runtime_ps":42}`)
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key[:2], key[2:]+".json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(key)
	if err != nil || !ok || string(got) != string(want) {
		t.Fatalf("resident Get = %q, %v, %v", got, ok, err)
	}
	if st.Stats().Corrupt != 0 {
		t.Fatal("resident read counted corruption")
	}
}
