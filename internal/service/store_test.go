package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsnoop/internal/spec"
)

// testKey returns a distinct valid content address.
func testKey(t *testing.T, n uint64) string {
	t.Helper()
	s := spec.Default()
	s.Seed = n + 1000
	return s.Canonical()
}

func TestStoreRoundTripDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if _, ok, err := st.Get(key); err != nil || ok {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	want := []byte(`{"runtime_ps":42}`)
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(key)
	if err != nil || !ok || string(got) != string(want) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}

	// The layout is sharded by key prefix and holds the exact bytes.
	path := filepath.Join(dir, key[:2], key[2:]+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("sharded file missing: %v", err)
	}
	if string(data) != string(want) {
		t.Fatalf("on-disk bytes = %q, want %q", data, want)
	}
	// No temp files are left behind by the atomic write.
	matches, _ := filepath.Glob(filepath.Join(dir, "*", ".put-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}

	// A fresh store over the same directory serves the persisted result.
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = st2.Get(key)
	if err != nil || !ok || string(got) != string(want) {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestStoreLRUEvictionFallsBackToDisk(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(t, 1), testKey(t, 2), testKey(t, 3)}
	for i, k := range keys {
		if err := st.Put(k, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Stats().Entries; got != 2 {
		t.Fatalf("LRU holds %d entries, want 2", got)
	}
	// The evicted key still answers, via disk.
	data, ok, err := st.Get(keys[0])
	if err != nil || !ok || string(data) != "a" {
		t.Fatalf("evicted key Get = %q, %v, %v", data, ok, err)
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	st, err := OpenStore("", 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(t, 1), testKey(t, 2), testKey(t, 3)}
	for _, k := range keys {
		if err := st.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := st.Get(keys[0]); ok {
		t.Fatal("memory-only store served an evicted key")
	}
	if _, ok, _ := st.Get(keys[2]); !ok {
		t.Fatal("memory-only store lost a resident key")
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		strings.Repeat("g", keyLen), // not hex
		strings.Repeat("A", keyLen), // not lowercase
		"../../etc/passwd" + strings.Repeat("0", keyLen-16), // traversal-shaped
	} {
		if _, _, err := st.Get(key); err == nil {
			t.Errorf("Get accepted malformed key %q", key)
		}
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted malformed key %q", key)
		}
	}
}

func TestStoreStatsCount(t *testing.T) {
	st, err := OpenStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	st.Get(key)
	st.Put(key, []byte("x"))
	st.Get(key)
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", s)
	}
}
