package service

import (
	"container/list"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// DefaultLRU is the in-memory result cache capacity, in entries, when
// Config.LRU is zero. A stored run is a few kilobytes of JSON, so the
// default keeps the hot set of a full figure regeneration resident in a
// few megabytes.
const DefaultLRU = 4096

// keyLen is the length of a store key: a lowercase-hex SHA-256, as
// produced by spec.Canonical.
const keyLen = 64

// Store is the content-addressed result store: it maps a spec's
// canonical hash to the stats.Run JSON its simulation produced. Reads
// hit an in-memory LRU first and fall back to the disk layout — one
// file per result, sharded by the key's first byte
// (dir/ab/cdef...json) so no directory grows past a few thousand
// entries at scale. Writes go to a temp file in the shard directory and
// are published by atomic rename, so concurrent readers (and other
// processes sharing the directory) never observe a partial result.
//
// A Store with an empty directory is memory-only: the LRU still serves
// repeats within the process, nothing persists.
//
// All methods are safe for concurrent use. Get returns the stored bytes
// directly — callers must treat them as immutable.
type Store struct {
	dir string

	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses, puts, errs int64
}

// storeEntry is one LRU slot.
type storeEntry struct {
	key  string
	data []byte
}

// StoreStats is a point-in-time snapshot of the store's counters.
type StoreStats struct {
	Entries int   `json:"entries"` // resident in the LRU
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Puts    int64 `json:"puts"`
	// Errors counts failed Get reads and Put writes (malformed keys,
	// disk trouble) — the signal a /metrics scrape alerts on.
	Errors int64 `json:"errors"`
}

// OpenStore opens (creating if needed) a result store rooted at dir. An
// empty dir yields a memory-only store. lru bounds the in-memory cache
// entries (0 = DefaultLRU).
func OpenStore(dir string, lru int) (*Store, error) {
	if lru <= 0 {
		lru = DefaultLRU
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: store: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		cap:     lru,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}, nil
}

// checkKey validates a content address before it is used as a path
// component: exactly 64 lowercase hex characters, so a malformed or
// hostile key can never escape the store directory.
func checkKey(key string) error {
	if len(key) != keyLen {
		return fmt.Errorf("service: store key %q is not a %d-char hash", key, keyLen)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("service: store key %q is not lowercase hex", key)
		}
	}
	return nil
}

// path is the on-disk location of a key: sharded by the first byte.
func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key[:2], key[2:]+".json")
}

// remember inserts (or refreshes) a key in the LRU, evicting the least
// recently used entry past capacity.
func (st *Store) remember(key string, data []byte) {
	if el, ok := st.entries[key]; ok {
		el.Value.(*storeEntry).data = data
		st.order.MoveToFront(el)
		return
	}
	st.entries[key] = st.order.PushFront(&storeEntry{key: key, data: data})
	for st.order.Len() > st.cap {
		last := st.order.Back()
		st.order.Remove(last)
		delete(st.entries, last.Value.(*storeEntry).key)
	}
}

// addErr counts one failed store operation.
func (st *Store) addErr() {
	st.mu.Lock()
	st.errs++
	st.mu.Unlock()
}

// Get returns the stored result for a key. The boolean reports whether
// the key was present; an error means the key was malformed or the disk
// read failed (absence is not an error).
func (st *Store) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		st.addErr()
		return nil, false, err
	}
	st.mu.Lock()
	if el, ok := st.entries[key]; ok {
		st.order.MoveToFront(el)
		st.hits++
		data := el.Value.(*storeEntry).data
		st.mu.Unlock()
		return data, true, nil
	}
	st.mu.Unlock()
	if st.dir == "" {
		st.mu.Lock()
		st.misses++
		st.mu.Unlock()
		return nil, false, nil
	}
	data, err := os.ReadFile(st.path(key))
	st.mu.Lock()
	defer st.mu.Unlock()
	// ENOTDIR means a shard path component is not a directory — the
	// entry does not exist there any more than with ENOENT.
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, syscall.ENOTDIR) {
		st.misses++
		return nil, false, nil
	}
	if err != nil {
		st.errs++
		return nil, false, fmt.Errorf("service: store: %w", err)
	}
	st.hits++
	st.remember(key, data)
	return data, true, nil
}

// Put stores a result under its key, atomically: the bytes land in a
// temp file in the shard directory and are published by rename, so a
// concurrent Get sees either nothing or the complete document.
func (st *Store) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		st.addErr()
		return err
	}
	st.mu.Lock()
	st.remember(key, data)
	st.puts++
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	shard := filepath.Join(st.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		os.Remove(tmp.Name())
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	return nil
}

// Remember inserts a result into the in-memory LRU without touching
// disk. Cluster peers replicate hot entries this way on the way back
// from a forward, so repeated non-owner reads are served locally while
// the owning shard's disk stays the single persistent copy. Malformed
// keys are dropped (a forwarding peer has already validated the key).
func (st *Store) Remember(key string, data []byte) {
	if checkKey(key) != nil {
		return
	}
	st.mu.Lock()
	st.remember(key, data)
	st.mu.Unlock()
}

// Stats snapshots the store's counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{Entries: st.order.Len(), Hits: st.hits, Misses: st.misses, Puts: st.puts, Errors: st.errs}
}
