package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"tsnoop/internal/fault"
)

// DefaultLRU is the in-memory result cache capacity, in entries, when
// Config.LRU is zero. A stored run is a few kilobytes of JSON, so the
// default keeps the hot set of a full figure regeneration resident in a
// few megabytes.
const DefaultLRU = 4096

// keyLen is the length of a store key: a lowercase-hex SHA-256, as
// produced by spec.Canonical.
const keyLen = 64

// entryMagic opens every on-disk entry's integrity header. The full
// header is one line:
//
//	TSSTORE1 <sha256-hex of payload> <payload length>\n
//
// followed by the payload bytes (the stats.Run JSON). Get verifies both
// fields before serving; an entry that fails — torn write, bit rot,
// truncation, or a checksum-less legacy file — is quarantined and
// treated as a miss, so the queue recomputes instead of serving
// garbage.
const entryMagic = "TSSTORE1"

// quarantineDir is the subdirectory corrupt entries are renamed into,
// preserved for post-mortem instead of deleted.
const quarantineDir = "quarantine"

// Store is the content-addressed result store: it maps a spec's
// canonical hash to the stats.Run JSON its simulation produced. Reads
// hit an in-memory LRU first and fall back to the disk layout — one
// file per result, sharded by the key's first byte
// (dir/ab/cdef...json) so no directory grows past a few thousand
// entries at scale. Writes go to a temp file in the shard directory,
// are fsynced (file, then shard directory after the rename) and
// published by atomic rename, so neither concurrent readers nor a
// crash mid-write can observe a partial result.
//
// Every disk entry carries an integrity header (see entryMagic); a
// corrupt or truncated entry is renamed into dir/quarantine, counted,
// and answered as a miss — corruption costs a recomputation, never a
// wrong answer.
//
// A Store with an empty directory is memory-only: the LRU still serves
// repeats within the process, nothing persists.
//
// All methods are safe for concurrent use. Get returns the stored bytes
// directly — callers must treat them as immutable.
type Store struct {
	dir string

	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses, puts, errs, corrupt int64
}

// storeEntry is one LRU slot.
type storeEntry struct {
	key  string
	data []byte
}

// StoreStats is a point-in-time snapshot of the store's counters.
type StoreStats struct {
	Entries int   `json:"entries"` // resident in the LRU
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Puts    int64 `json:"puts"`
	// Errors counts failed Get reads and Put writes (malformed keys,
	// disk trouble) — the signal a /metrics scrape alerts on.
	Errors int64 `json:"errors"`
	// Corrupt counts disk entries that failed integrity verification
	// and were quarantined — each one was answered as a miss and
	// recomputed, never served.
	Corrupt int64 `json:"corrupt"`
}

// OpenStore opens (creating if needed) a result store rooted at dir. An
// empty dir yields a memory-only store. lru bounds the in-memory cache
// entries (0 = DefaultLRU).
func OpenStore(dir string, lru int) (*Store, error) {
	if lru <= 0 {
		lru = DefaultLRU
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: store: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		cap:     lru,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}, nil
}

// checkKey validates a content address before it is used as a path
// component: exactly 64 lowercase hex characters, so a malformed or
// hostile key can never escape the store directory.
func checkKey(key string) error {
	if len(key) != keyLen {
		return fmt.Errorf("service: store key %q is not a %d-char hash", key, keyLen)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("service: store key %q is not lowercase hex", key)
		}
	}
	return nil
}

// path is the on-disk location of a key: sharded by the first byte.
func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key[:2], key[2:]+".json")
}

// encodeEntry renders a payload in the on-disk entry format.
func encodeEntry(data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, len(entryMagic)+1+hex.EncodedLen(len(sum))+1+20+1+len(data))
	out = append(out, entryMagic...)
	out = append(out, ' ')
	out = hex.AppendEncode(out, sum[:])
	out = append(out, ' ')
	out = strconv.AppendInt(out, int64(len(data)), 10)
	out = append(out, '\n')
	return append(out, data...)
}

// decodeEntry verifies an on-disk entry and returns its payload. Any
// failure — missing or malformed header, length mismatch (torn or
// short write), checksum mismatch (bit rot) — is corruption; the error
// says which.
func decodeEntry(raw []byte) ([]byte, error) {
	rest, ok := bytes.CutPrefix(raw, []byte(entryMagic+" "))
	if !ok {
		return nil, errors.New("no integrity header (legacy or foreign entry)")
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, errors.New("truncated integrity header")
	}
	fields := strings.Fields(string(rest[:nl]))
	if len(fields) != 2 {
		return nil, errors.New("malformed integrity header")
	}
	wantLen, err := strconv.Atoi(fields[1])
	if err != nil || wantLen < 0 {
		return nil, errors.New("malformed entry length")
	}
	payload := rest[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("payload is %d bytes, header says %d (torn or truncated write)", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[0] {
		return nil, errors.New("checksum mismatch (corrupt payload)")
	}
	return payload, nil
}

// remember inserts (or refreshes) a key in the LRU, evicting the least
// recently used entry past capacity.
func (st *Store) remember(key string, data []byte) {
	if el, ok := st.entries[key]; ok {
		el.Value.(*storeEntry).data = data
		st.order.MoveToFront(el)
		return
	}
	st.entries[key] = st.order.PushFront(&storeEntry{key: key, data: data})
	for st.order.Len() > st.cap {
		last := st.order.Back()
		st.order.Remove(last)
		delete(st.entries, last.Value.(*storeEntry).key)
	}
}

// addErr counts one failed store operation.
func (st *Store) addErr() {
	st.mu.Lock()
	st.errs++
	st.mu.Unlock()
}

// quarantine moves a corrupt entry aside (dir/quarantine/<key>.json)
// so it never answers again but survives for post-mortem. A failed
// rename falls back to removal — a corrupt entry must not keep
// answering reads either way.
func (st *Store) quarantine(key string) {
	qdir := filepath.Join(st.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(st.path(key), filepath.Join(qdir, key+".json")) == nil {
			return
		}
	}
	os.Remove(st.path(key))
}

// Get returns the stored result for a key. The boolean reports whether
// the key was present; an error means the key was malformed or the disk
// read failed (absence — including a quarantined corrupt entry — is
// not an error).
func (st *Store) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		st.addErr()
		return nil, false, err
	}
	st.mu.Lock()
	if el, ok := st.entries[key]; ok {
		st.order.MoveToFront(el)
		st.hits++
		data := el.Value.(*storeEntry).data
		st.mu.Unlock()
		return data, true, nil
	}
	st.mu.Unlock()
	if st.dir == "" {
		st.mu.Lock()
		st.misses++
		st.mu.Unlock()
		return nil, false, nil
	}
	raw, err := os.ReadFile(st.path(key))
	// ENOTDIR means a shard path component is not a directory — the
	// entry does not exist there any more than with ENOENT.
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, syscall.ENOTDIR) {
		st.mu.Lock()
		st.misses++
		st.mu.Unlock()
		return nil, false, nil
	}
	if err != nil {
		st.addErr()
		return nil, false, fmt.Errorf("service: store: %w", err)
	}
	if f := fault.Active(); f != nil {
		f.Corrupt(fault.StoreGetCorrupt, raw)
	}
	payload, derr := decodeEntry(raw)
	if derr != nil {
		// Corruption is a miss, never an answer: quarantine the entry,
		// count it, and let the queue recompute.
		st.quarantine(key)
		st.mu.Lock()
		st.corrupt++
		st.misses++
		st.mu.Unlock()
		return nil, false, nil
	}
	st.mu.Lock()
	st.hits++
	st.remember(key, payload)
	st.mu.Unlock()
	return payload, true, nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable: the
// rename itself lives in the directory, so a crash after Put returns
// must not forget (or zero) the entry.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Put stores a result under its key, atomically and durably: the entry
// (integrity header + payload) lands in a temp file in the shard
// directory, is fsynced, published by rename, and the shard directory
// is fsynced after the rename — so a concurrent Get sees either
// nothing or the complete document, and a crash can never commit a
// zero-length or torn entry as truth.
func (st *Store) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		st.addErr()
		return err
	}
	st.mu.Lock()
	st.remember(key, data)
	st.puts++
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	if f := fault.Active(); f != nil && f.Fire(fault.StorePutFail) {
		st.addErr()
		return fmt.Errorf("service: store: injected write failure: %w", syscall.ENOSPC)
	}
	enc := encodeEntry(data)
	if f := fault.Active(); f != nil {
		// A torn write commits a prefix of the entry yet "succeeds" —
		// the crash shape the integrity header exists to catch on read.
		enc, _ = f.Truncate(fault.StorePutTorn, enc)
	}
	shard := filepath.Join(st.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	if _, err := tmp.Write(enc); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		os.Remove(tmp.Name())
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	if err := syncDir(shard); err != nil {
		st.addErr()
		return fmt.Errorf("service: store: %w", err)
	}
	return nil
}

// Remember inserts a result into the in-memory LRU without touching
// disk. Cluster peers replicate hot entries this way on the way back
// from a forward, so repeated non-owner reads are served locally while
// the owning shard's disk stays the single persistent copy. Malformed
// keys are dropped (a forwarding peer has already validated the key).
func (st *Store) Remember(key string, data []byte) {
	if checkKey(key) != nil {
		return
	}
	st.mu.Lock()
	st.remember(key, data)
	st.mu.Unlock()
}

// Stats snapshots the store's counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{Entries: st.order.Len(), Hits: st.hits, Misses: st.misses,
		Puts: st.puts, Errors: st.errs, Corrupt: st.corrupt}
}
