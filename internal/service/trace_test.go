package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// Every response — success, 400, 404, and the 429 shed path — carries
// an X-Tsnoop-Trace ID and produces exactly one access-log record with
// that ID and the response status. The wrapper discipline (instrument
// wraps the whole mux, handlers never log) is what this pins: no
// response class may skip the log or log twice.
func TestTraceEveryResponseLoggedOnce(t *testing.T) {
	gate := make(chan struct{})
	var gated atomic.Bool
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		if gated.Load() {
			<-gate
		}
		return &stats.Run{Runtime: 9}, nil
	}
	var logBuf bytes.Buffer
	sv, err := New(Config{
		Workers:  2,
		Sim:      sim,
		MaxCells: 1,
		Logger:   slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sv))
	t.Cleanup(srv.Close)
	runBody := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON()

	type probe struct {
		trace  string
		status int
	}
	var want []probe
	record := func(resp *http.Response, wantStatus int) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		id := resp.Header.Get("X-Tsnoop-Trace")
		if len(id) != 16 {
			t.Fatalf("X-Tsnoop-Trace = %q, want a 16-hex-char ID", id)
		}
		want = append(want, probe{id, wantStatus})
	}

	record(postJSON(t, srv.URL+"/v1/runs", runBody), http.StatusOK)
	record(postJSON(t, srv.URL+"/v1/runs", []byte(`{"benchmark":"nope"}`)), http.StatusBadRequest)
	resp, err := http.Get(srv.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	record(resp, http.StatusNotFound)

	// Occupy the one-cell budget with a gated grid, then shed a second.
	gated.Store(true)
	gridDone := make(chan struct{})
	go func() {
		defer close(gridDone)
		resp, err := http.Post(srv.URL+"/v1/grids", "application/json", bytes.NewReader(runBody))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	for i := 0; sv.ShedStats().Inflight == 0; i++ {
		if i > 500 {
			t.Fatal("grid never occupied the budget")
		}
		time.Sleep(2 * time.Millisecond)
	}
	record(postJSON(t, srv.URL+"/v1/grids", runBody), http.StatusTooManyRequests)
	close(gate)
	<-gridDone

	// Parse the access log: one record per trace ID, statuses matching.
	logged := map[string]probe{}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec struct {
			Msg    string `json:"msg"`
			Status int    `json:"status"`
			Trace  string `json:"trace"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparsable log line %q: %v", line, err)
		}
		if rec.Msg != "request" {
			continue
		}
		logged[rec.Trace] = probe{rec.Trace, rec.Status}
		counts[rec.Trace]++
	}
	for _, w := range want {
		got, ok := logged[w.trace]
		if !ok {
			t.Errorf("trace %s (status %d) never logged", w.trace, w.status)
			continue
		}
		if got.status != w.status {
			t.Errorf("trace %s logged status %d, want %d", w.trace, got.status, w.status)
		}
		if counts[w.trace] != 1 {
			t.Errorf("trace %s logged %d times, want exactly once", w.trace, counts[w.trace])
		}
	}
}

// The trace endpoints: a finished request's trace is served by ID with
// its phase spans, the listing includes it, and the job it started
// links back via trace_id.
func TestTraceEndpointsAndJobLink(t *testing.T) {
	_, srv := newTestServer(t, "", func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 5}, nil
	})
	resp := postJSON(t, srv.URL+"/v1/runs", spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON())
	traceID := resp.Header.Get("X-Tsnoop-Trace")
	jobID := resp.Header.Get("X-Tsnoop-Job")
	if traceID == "" || jobID == "" {
		t.Fatalf("missing headers: trace %q job %q", traceID, jobID)
	}
	io.Copy(io.Discard, resp.Body)

	var tr Trace
	getInto(t, srv.URL+"/v1/traces/"+traceID, &tr)
	if tr.ID != traceID || tr.Route != "POST /v1/runs" || tr.Status != http.StatusOK {
		t.Errorf("trace = %+v", tr)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"store_get", "queue_wait", "simulate", "store_write"} {
		if !names[want] {
			t.Errorf("trace spans lack %q (have %v)", want, tr.Spans)
		}
	}

	var all []Trace
	getInto(t, srv.URL+"/v1/traces", &all)
	found := false
	for _, tr := range all {
		if tr.ID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("/v1/traces listing lacks %s", traceID)
	}

	var job JobStatus
	getInto(t, srv.URL+"/v1/jobs/"+jobID, &job)
	if job.TraceID != traceID {
		t.Errorf("job trace_id = %q, want %q", job.TraceID, traceID)
	}

	if resp, err := http.Get(srv.URL + "/v1/traces/nosuch"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace = %s, want 404", resp.Status)
		}
	}
}

// A forwarded request records both sides of the hop under one trace ID:
// the entry node's trace has the route and forward spans plus the
// owner's span list (shipped back in the X-Tsnoop-Trace-Spans header),
// and the owner's own ring holds the same ID.
func TestClusterForwardTracePropagation(t *testing.T) {
	nodes := startCluster(t, 3, nil, 0)
	s := specOwnedBy(t, nodes, 1)

	resp := postJSON(t, nodes[0].url+"/v1/runs", s.JSON())
	if got := resp.Header.Get("X-Tsnoop-Remote"); got != nodes[1].addr {
		t.Fatalf("X-Tsnoop-Remote = %q, want %q", got, nodes[1].addr)
	}
	traceID := resp.Header.Get("X-Tsnoop-Trace")
	io.Copy(io.Discard, resp.Body)

	var tr Trace
	getInto(t, nodes[0].url+"/v1/traces/"+traceID, &tr)
	if tr.Node != nodes[0].addr {
		t.Errorf("entry trace node = %q, want %q", tr.Node, nodes[0].addr)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"route", "store_get", "forward", "replicate"} {
		if !names[want] {
			t.Errorf("entry trace lacks the %q span (have %v)", want, tr.Spans)
		}
	}
	if tr.RemotePeer != nodes[1].addr {
		t.Errorf("remote_peer = %q, want %q", tr.RemotePeer, nodes[1].addr)
	}
	remote := map[string]bool{}
	for _, sp := range tr.RemoteSpans {
		remote[sp.Name] = true
	}
	for _, want := range []string{"store_get", "simulate"} {
		if !remote[want] {
			t.Errorf("remote spans lack %q (have %v)", want, tr.RemoteSpans)
		}
	}

	// The owner recorded the hop under the same ID.
	var own Trace
	getInto(t, nodes[1].url+"/v1/traces/"+traceID, &own)
	if own.ID != traceID || own.Node != nodes[1].addr {
		t.Errorf("owner trace = %+v, want id %s on %s", own, traceID, nodes[1].addr)
	}
}

// getInto fetches one JSON document into v.
func getInto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}
