package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/harness"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// clusterNode is one in-process cluster member: a full Service behind a
// real TCP listener, so peers reach it exactly as production nodes do.
type clusterNode struct {
	sv   *Service
	c    *cluster.Cluster
	addr string
	url  string
	srv  *http.Server
}

// startCluster boots n federated nodes on loopback. Listeners are bound
// first so every member list names real addresses before any ring is
// built. sim is shared by all nodes (nil = real simulations).
func startCluster(t *testing.T, n int, sim SimFunc, maxCells int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	members := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		c, err := cluster.New(cluster.Config{
			Self:    members[i],
			Members: members,
			Client:  cluster.NewHTTPClient(cluster.DefaultTimeouts()),
			Retries: -1, // loopback: a refused connection will not get better
			Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sv, err := New(Config{Workers: 2, Sim: sim, Cluster: c, MaxCells: maxCells})
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: NewHandler(sv)}
		go srv.Serve(lns[i])
		sv.SetReady(true, "")
		nodes[i] = &clusterNode{sv: sv, c: c, addr: members[i], url: "http://" + members[i], srv: srv}
		t.Cleanup(func() { srv.Close() })
	}
	return nodes
}

// ownerIndex resolves which node's shard owns a canonical key.
func ownerIndex(t *testing.T, nodes []*clusterNode, key string) int {
	t.Helper()
	owner, remote := nodes[0].c.Route(key)
	if !remote {
		return 0
	}
	for i, nd := range nodes {
		if nd.addr == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a cluster member", owner)
	return -1
}

// specOwnedBy searches seeds until the spec's canonical key lands on the
// wanted node's shard — how tests pin a key to a specific owner.
func specOwnedBy(t *testing.T, nodes []*clusterNode, want int) spec.Spec {
	t.Helper()
	for seed := uint64(1); seed <= 256; seed++ {
		s := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120),
			spec.WithSeed(seed))
		if ownerIndex(t, nodes, s.Canonical()) == want {
			return s
		}
	}
	t.Fatalf("no seed in 1..256 hashes onto node %d", want)
	return spec.Spec{}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The tentpole equivalence check: a grid streamed through any cluster
// entry node is byte-identical to the single-node service, cold and
// warm, and the same holds for a sweep. Sharding changes where cells
// compute, never what the client reads.
func TestClusterGridByteIdenticalToSingleNode(t *testing.T) {
	s := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120),
		spec.WithSeeds(2), spec.WithPerturbNS(3))
	_, ref := newTestServer(t, "", nil)
	want := readBody(t, postJSON(t, ref.URL+"/v1/grids", s.JSON()))

	nodes := startCluster(t, 3, nil, 0)
	cold := postJSON(t, nodes[0].url+"/v1/grids", s.JSON())
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold grid via node 0: %s", cold.Status)
	}
	if got := readBody(t, cold); !bytes.Equal(got, want) {
		t.Fatalf("cold cluster grid differs from single node:\n got: %s\nwant: %s", got, want)
	}

	// Warm pass through a different entry node: remote cells ride the
	// owners' stores, local cells this node's own.
	warm := readBody(t, postJSON(t, nodes[1].url+"/v1/grids", s.JSON()))
	if !bytes.Equal(warm, want) {
		t.Fatalf("warm cluster grid via node 1 differs:\n got: %s\nwant: %s", warm, want)
	}

	// Unless every cell hashed onto node 0's own shard, the cold pass
	// forwarded work to peers.
	cs := nodes[0].sv.ClusterStats()
	var forwards int64
	for _, p := range cs.Peers {
		forwards += p.Forwards
		if p.Errors != 0 {
			t.Errorf("healthy cluster recorded forward errors to %s: %d", p.Peer, p.Errors)
		}
	}
	e := harness.FromSpec(s)
	var remoteCells int
	for _, c := range e.Cells(s.Network) {
		if idx := ownerIndex(t, nodes, e.CellSpec(c).Canonical()); idx != 0 {
			remoteCells++
		}
	}
	if remoteCells > 0 && forwards == 0 {
		t.Errorf("%d cells owned by peers but node 0 recorded no forwards", remoteCells)
	}

	sweepBody, _ := json.Marshal(map[string]any{"sweep": "blocksize", "spec": json.RawMessage(s.JSON())})
	wantSweep := readBody(t, postJSON(t, ref.URL+"/v1/sweeps", sweepBody))
	gotSweep := readBody(t, postJSON(t, nodes[2].url+"/v1/sweeps", sweepBody))
	if !bytes.Equal(gotSweep, wantSweep) {
		t.Fatalf("cluster sweep via node 2 differs:\n got: %s\nwant: %s", gotSweep, wantSweep)
	}
}

// Identical specs submitted concurrently through every entry node
// singleflight onto ONE simulation: non-owners forward to the owner,
// whose queue dedups the in-flight spec globally.
func TestClusterSingleflightIsGlobal(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		calls.Add(1)
		<-gate
		return &stats.Run{Runtime: 42}, nil
	}
	nodes := startCluster(t, 3, sim, 0)
	body := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON()

	bodies := make([][]byte, len(nodes))
	var wg sync.WaitGroup
	wg.Add(len(nodes))
	for i, nd := range nodes {
		go func(i int, url string) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("node %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i, nd.url)
	}
	time.Sleep(100 * time.Millisecond) // let every entry node's request reach the owner
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d simulations for one spec via %d entry nodes, want 1", got, len(nodes))
	}
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("node %d returned different bytes:\n %s\nvs %s", i, bodies[i], bodies[0])
		}
	}
}

// An unreachable owner degrades to local compute: same bytes, a forward
// error on the counters, and the response is not marked remote.
func TestClusterOwnerDownDegradesToLocal(t *testing.T) {
	nodes := startCluster(t, 3, nil, 0)
	s := specOwnedBy(t, nodes, 2)

	_, ref := newTestServer(t, "", nil)
	want := readBody(t, postJSON(t, ref.URL+"/v1/runs", s.JSON()))

	nodes[2].srv.Close()
	resp := postJSON(t, nodes[0].url+"/v1/runs", s.JSON())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run with dead owner: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Tsnoop-Remote"); got != "" {
		t.Errorf("local fallback claims remote answer from %q", got)
	}
	if got := readBody(t, resp); !bytes.Equal(got, want) {
		t.Fatalf("local fallback differs from single node:\n got: %s\nwant: %s", got, want)
	}
	var errs int64
	for _, p := range nodes[0].sv.ClusterStats().Peers {
		if p.Peer == nodes[2].addr {
			errs = p.Errors
		}
	}
	if errs < 1 {
		t.Errorf("dead owner recorded %d forward errors, want >= 1", errs)
	}
}

// Killing a peer mid-grid never fails the stream and never changes a
// byte: the first simulation anywhere closes node 2, and every cell it
// owned falls back to local compute on the entry node.
func TestClusterGridSurvivesPeerKilledMidStream(t *testing.T) {
	var kill atomic.Value // func()
	var once sync.Once
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		if f, ok := kill.Load().(func()); ok {
			once.Do(f)
		}
		return s.RunContext(ctx)
	}
	s := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120),
		spec.WithSeeds(2), spec.WithPerturbNS(3))
	_, ref := newTestServer(t, "", nil)
	want := readBody(t, postJSON(t, ref.URL+"/v1/grids", s.JSON()))

	nodes := startCluster(t, 3, sim, 0)
	kill.Store(func() { nodes[2].srv.Close() })
	resp := postJSON(t, nodes[0].url+"/v1/grids", s.JSON())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid with peer killed mid-stream: %s", resp.Status)
	}
	if got := readBody(t, resp); !bytes.Equal(got, want) {
		t.Fatalf("grid with killed peer differs from single node:\n got: %s\nwant: %s", got, want)
	}
}

// A forwarded result replicates into the entry node's LRU: the second
// identical request is a local hit — no second forward, no remote
// marker.
func TestClusterReplicationServesRepeatLocally(t *testing.T) {
	nodes := startCluster(t, 3, nil, 0)
	s := specOwnedBy(t, nodes, 1)

	first := postJSON(t, nodes[0].url+"/v1/runs", s.JSON())
	if got := first.Header.Get("X-Tsnoop-Remote"); got != nodes[1].addr {
		t.Fatalf("first request X-Tsnoop-Remote = %q, want %q", got, nodes[1].addr)
	}
	firstBody := readBody(t, first)

	second := postJSON(t, nodes[0].url+"/v1/runs", s.JSON())
	if got := second.Header.Get("X-Tsnoop-Cache"); got != CacheHit {
		t.Errorf("replicated repeat X-Tsnoop-Cache = %q, want %q", got, CacheHit)
	}
	if got := second.Header.Get("X-Tsnoop-Remote"); got != "" {
		t.Errorf("replicated repeat went remote to %q", got)
	}
	if got := readBody(t, second); !bytes.Equal(got, firstBody) {
		t.Fatalf("replicated repeat differs:\n got: %s\nwant: %s", got, firstBody)
	}

	cs := nodes[0].sv.ClusterStats()
	for _, p := range cs.Peers {
		if p.Peer == nodes[1].addr && p.Forwards != 1 {
			t.Errorf("forwards to owner = %d, want exactly 1", p.Forwards)
		}
	}
	if cs.Replicated != 1 {
		t.Errorf("replicated = %d, want 1", cs.Replicated)
	}
}

// A node already at its cell budget sheds new streams with 429 and a
// Retry-After hint instead of committing to them.
func TestClusterShedsPastCellBudget(t *testing.T) {
	gate := make(chan struct{})
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		<-gate
		return &stats.Run{Runtime: 1}, nil
	}
	sv, err := New(Config{Workers: 2, Sim: sim, MaxCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sv))
	t.Cleanup(srv.Close)
	body := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON()

	done := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/grids", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		done <- data
	}()
	for i := 0; sv.ShedStats().Inflight == 0; i++ {
		if i > 500 {
			t.Fatal("first grid never occupied the budget")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shed := postJSON(t, srv.URL+"/v1/grids", body)
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget grid: %s, want 429", shed.Status)
	}
	if ra, err := strconv.Atoi(shed.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", shed.Header.Get("Retry-After"))
	}
	sweepBody, _ := json.Marshal(map[string]any{"sweep": "blocksize"})
	if resp := postJSON(t, srv.URL+"/v1/sweeps", sweepBody); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget sweep: %s, want 429", resp.Status)
	}

	close(gate)
	if data := <-done; data == nil || len(bytes.TrimSpace(data)) == 0 {
		t.Fatal("admitted grid did not complete after the budget freed")
	}
	st := sv.ShedStats()
	if st.ShedTotal != 2 || st.Inflight != 0 {
		t.Fatalf("shed stats = %+v, want 2 shed and 0 inflight", st)
	}
}

// /readyz is the balancer gate, distinct from /healthz liveness: 503
// before serve marks the node ready, 200 while serving, 503 again
// during drain — with /healthz answering 200 the whole time.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	sv, srv := newTestServer(t, "", func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{}, nil
	})
	check := func(wantCode int, wantReason string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("/readyz = %s, want %d", resp.Status, wantCode)
		}
		var doc map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc["reason"] != wantReason {
			t.Fatalf("/readyz reason = %q, want %q", doc["reason"], wantReason)
		}
		hr, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("/healthz = %s during readiness transition, want 200", hr.Status)
		}
	}
	check(http.StatusServiceUnavailable, "starting")
	sv.SetReady(true, "")
	check(http.StatusOK, "")
	sv.SetReady(false, "draining")
	check(http.StatusServiceUnavailable, "draining")
}
