package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"
)

// Request tracing: every HTTP request gets a trace ID (generated at the
// entry node or accepted from the X-Tsnoop-Trace request header on a
// cluster forward), the service layers record wall-clock phase spans
// into the request's trace as it moves through them, and finished
// traces land in a bounded in-memory ring exposed on GET /v1/traces and
// GET /v1/traces/{id}. When a request is forwarded to its owning peer,
// the owner ships its own span list back in a response header, so the
// entry node's trace shows both sides of the hop.
//
// This is wall-clock observability of the HTTP layer only — like the
// /metrics counters it never touches the simulator, whose lifecycle
// spans live in internal/obs and simulated time.

// DefaultTraceKeep bounds the retained finished-trace history per node.
const DefaultTraceKeep = 256

// TraceSpan is one wall-clock phase of a request's life on one node.
// Starts are microsecond offsets from the trace's start, so a span list
// is meaningful without the absolute clock.
type TraceSpan struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Note    string `json:"note,omitempty"`
}

// Trace is the recorded life of one request on one node — what
// GET /v1/traces/{id} returns.
type Trace struct {
	ID string `json:"id"`
	// Node is this node's ring address; empty on a single-node service.
	Node   string    `json:"node,omitempty"`
	Method string    `json:"method"`
	Path   string    `json:"path"`
	Route  string    `json:"route"`
	Status int       `json:"status"`
	Start  time.Time `json:"start"`
	DurUS  int64     `json:"dur_us"`
	// Spans are this node's phases in recording order.
	Spans []TraceSpan `json:"spans,omitempty"`
	// RemotePeer and RemoteSpans are the owning peer's side of a
	// forwarded request, shipped back in the X-Tsnoop-Trace-Spans
	// response header and embedded here by the entry node.
	RemotePeer  string      `json:"remote_peer,omitempty"`
	RemoteSpans []TraceSpan `json:"remote_spans,omitempty"`
}

// activeTrace is a trace under construction, carried through the
// request context. Span recording is mutex-guarded: streamed requests
// fan cells across goroutines that all hold the same request context.
type activeTrace struct {
	mu    sync.Mutex
	start time.Time
	tr    Trace
}

func newActiveTrace(id, node string, method, path string, start time.Time) *activeTrace {
	return &activeTrace{
		start: start,
		tr:    Trace{ID: id, Node: node, Method: method, Path: path, Start: start.UTC()},
	}
}

// span records one phase that started at start and just ended.
func (a *activeTrace) span(name string, start time.Time, note string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Spans = append(a.tr.Spans, TraceSpan{
		Name:    name,
		StartUS: start.Sub(a.start).Microseconds(),
		DurUS:   time.Since(start).Microseconds(),
		Note:    note,
	})
	a.mu.Unlock()
}

// phases copies a job's wall-clock phase durations into the trace,
// tiled backwards from now (store_write ends now, simulate before it,
// queue_wait first). For a joined job the phases may predate this
// request — the durations are the job's, the placement approximate.
func (a *activeTrace) phases(jobID string, spans JobSpans) {
	if a == nil {
		return
	}
	end := time.Since(a.start).Microseconds()
	note := "job " + jobID
	a.mu.Lock()
	off := end - spans.StoreWriteUS - spans.SimulateUS - spans.QueueWaitUS
	if off < 0 {
		off = 0
	}
	for _, p := range []struct {
		name string
		dur  int64
	}{
		{"queue_wait", spans.QueueWaitUS},
		{"simulate", spans.SimulateUS},
		{"store_write", spans.StoreWriteUS},
	} {
		a.tr.Spans = append(a.tr.Spans, TraceSpan{Name: p.name, StartUS: off, DurUS: p.dur, Note: note})
		off += p.dur
	}
	a.mu.Unlock()
}

// setRemote attaches the owning peer's span list (the JSON value of the
// X-Tsnoop-Trace-Spans response header) to a forwarded request's trace.
// An unparsable header is dropped — remote spans are best-effort
// decoration, never a reason to fail a forward that already succeeded.
func (a *activeTrace) setRemote(peer, spansJSON string) {
	if a == nil || spansJSON == "" {
		return
	}
	var spans []TraceSpan
	if json.Unmarshal([]byte(spansJSON), &spans) != nil {
		return
	}
	a.mu.Lock()
	a.tr.RemotePeer, a.tr.RemoteSpans = peer, spans
	a.mu.Unlock()
}

// spansJSON renders this node's span list for the response header an
// owner sends back to the forwarding entry node.
func (a *activeTrace) spansJSON() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.tr.Spans) == 0 {
		return ""
	}
	data, err := json.Marshal(a.tr.Spans)
	if err != nil {
		return ""
	}
	return string(data)
}

// finish seals the trace with the response outcome and returns it.
func (a *activeTrace) finish(route string, status int, dur time.Duration) Trace {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tr.Route, a.tr.Status, a.tr.DurUS = route, status, dur.Microseconds()
	return a.tr
}

type traceCtxKey struct{}

// withTrace attaches an active trace to a request context.
func withTrace(ctx context.Context, a *activeTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, a)
}

// traceFrom returns the request's active trace, or nil outside an
// instrumented request (direct library use, tests, the -cache CLI path).
// Every recording helper accepts the nil receiver, so call sites never
// branch.
func traceFrom(ctx context.Context) *activeTrace {
	a, _ := ctx.Value(traceCtxKey{}).(*activeTrace)
	return a
}

// TraceID reports the request's trace ID, empty outside an instrumented
// request. The queue stamps it onto jobs so GET /v1/jobs/{id} links
// back to the submitting request's trace.
func TraceID(ctx context.Context) string {
	a := traceFrom(ctx)
	if a == nil {
		return ""
	}
	return a.tr.ID
}

// newTraceID returns a fresh 16-hex-character request trace ID.
func newTraceID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails post-Go 1.24
	return hex.EncodeToString(b[:])
}

// traceRing retains the last cap finished traces, evicting oldest.
type traceRing struct {
	mu   sync.Mutex
	cap  int
	list []Trace        // creation order, oldest first
	byID map[string]int // id -> index in list
}

func newTraceRing(cap int) *traceRing {
	if cap <= 0 {
		cap = DefaultTraceKeep
	}
	return &traceRing{cap: cap, byID: make(map[string]int)}
}

func (r *traceRing) add(tr Trace) {
	r.mu.Lock()
	if len(r.list) == r.cap {
		delete(r.byID, r.list[0].ID)
		copy(r.list, r.list[1:])
		r.list = r.list[:r.cap-1]
		for id, i := range r.byID {
			r.byID[id] = i - 1
		}
	}
	// A forwarded retry can reuse an ID; latest record wins the index.
	r.byID[tr.ID] = len(r.list)
	r.list = append(r.list, tr)
	r.mu.Unlock()
}

// get returns one trace by ID.
func (r *traceRing) get(id string) (Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byID[id]
	if !ok {
		return Trace{}, false
	}
	return r.list[i], true
}

// all snapshots the retained traces, newest first.
func (r *traceRing) all() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, len(r.list))
	for i, tr := range r.list {
		out[len(r.list)-1-i] = tr
	}
	return out
}
