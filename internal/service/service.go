// Package service turns the one-shot experiment engine into a
// long-lived experiment service, so identical grid cells are never
// re-simulated. Three pieces compose:
//
//   - a content-addressed result store (Store): spec.Canonical() hashes
//     the normalized Spec, and a disk-backed, shard-per-prefix layout
//     with an in-memory LRU in front maps hash -> stats.Run JSON, so any
//     previously computed experiment is served without simulation and
//     byte-identically to its first computation;
//
//   - a dedup job queue (Queue): identical in-flight specs singleflight
//     onto one job, distinct specs fan their perturbed seeds across a
//     bounded simulation pool, and every job exposes per-seed progress;
//
//   - an HTTP API (NewHandler): POST /v1/runs answers one Spec with its
//     Run JSON, POST /v1/grids and /v1/sweeps stream NDJSON cells in
//     presentation order as they finish, GET /v1/jobs/{id} reports
//     progress, and GET /healthz reports store and queue counters.
//
// cmd/tsnoop wires this up as the serve and submit subcommands, and the
// run/grid/sweep subcommands hit the same store locally via -cache.
package service

import (
	"context"
	"iter"
	"log/slog"
	"time"

	"tsnoop/internal/harness"
	"tsnoop/internal/parallel"
	"tsnoop/internal/spec"
)

// Config parameterizes a Service.
type Config struct {
	// Dir is the result store directory; empty keeps results in memory
	// only (the LRU still serves repeats, nothing persists).
	Dir string
	// LRU bounds the in-memory result cache entries (0 = DefaultLRU).
	LRU int
	// Workers bounds concurrent simulations across all jobs
	// (0 = one per CPU).
	Workers int
	// Keep bounds the retained finished-job history (0 = DefaultKeep).
	Keep int
	// Sim executes one simulation (nil = Spec.RunContext); tests inject
	// stubs to count or gate executions.
	Sim SimFunc
	// BaseContext is the lifecycle context started jobs run on (nil =
	// context.Background()): a CLI passes its interrupt context so
	// Ctrl-C cancels simulations, a server passes its own lifetime so
	// request disconnects do not.
	BaseContext context.Context
	// Version is the build identifier /healthz reports (empty = omitted).
	Version string
	// Logger, when non-nil, receives one structured access-log record per
	// HTTP request (method, path, status, bytes, duration). Nil disables
	// access logging; the /metrics counters run either way.
	Logger *slog.Logger
}

// Service is the experiment service: a store fronted by a dedup queue,
// with grid/sweep streaming that mirrors the harness engine cell for
// cell.
type Service struct {
	store *Store
	queue *Queue

	version string
	logger  *slog.Logger
	started time.Time
	httpm   httpMetrics
}

// New opens the store and builds the queue.
func New(cfg Config) (*Service, error) {
	store, err := OpenStore(cfg.Dir, cfg.LRU)
	if err != nil {
		return nil, err
	}
	return &Service{
		store:   store,
		queue:   NewQueue(store, cfg.Workers, cfg.Keep, cfg.Sim, cfg.BaseContext),
		version: cfg.Version,
		logger:  cfg.Logger,
		started: time.Now(),
	}, nil
}

// Do answers one spec through the store and queue; see Queue.Do.
func (sv *Service) Do(ctx context.Context, s spec.Spec) (Result, error) {
	return sv.queue.Do(ctx, s)
}

// Drain blocks until every in-flight job has finished (or ctx fires);
// see Queue.Drain.
func (sv *Service) Drain(ctx context.Context) error { return sv.queue.Drain(ctx) }

// Job returns one job's status snapshot.
func (sv *Service) Job(id string) (JobStatus, bool) { return sv.queue.Job(id) }

// Jobs snapshots every retained job in creation order.
func (sv *Service) Jobs() []JobStatus { return sv.queue.Jobs() }

// StoreStats snapshots the store counters.
func (sv *Service) StoreStats() StoreStats { return sv.store.Stats() }

// QueueStats snapshots the queue counters.
func (sv *Service) QueueStats() QueueStats { return sv.queue.Stats() }

// StreamGrid is the cached counterpart of harness.Experiment.StreamGrid:
// it yields the same cells in the same presentation order as they
// finish, but each cell is content-addressed by its CellSpec, so cells
// already in the store are served instantly, identical concurrent cells
// are singleflighted, and fresh cells land in the store for next time.
// Collecting the stream is byte-identical to the harness path.
func (sv *Service) StreamGrid(ctx context.Context, e harness.Experiment, network string) iter.Seq2[harness.CellResult, error] {
	cells := e.Cells(network)
	// One goroutine per cell: actual simulation concurrency is bounded
	// by the queue's slot pool, and slot-waiting goroutines are cheap.
	return parallel.Stream(ctx, len(cells), len(cells), func(i int) (harness.CellResult, error) {
		res, err := sv.Do(ctx, e.CellSpec(cells[i]))
		if err != nil {
			return harness.CellResult{}, err
		}
		return harness.CellResult{Cell: cells[i], Best: res.Run}, nil
	})
}

// StreamPoints is the cached counterpart of
// harness.Experiment.StreamPoints: sweep points stream in spec order as
// they finish, each answered through the store and queue.
func (sv *Service) StreamPoints(ctx context.Context, pts []harness.PointSpec) iter.Seq2[harness.SweepPoint, error] {
	return parallel.Stream(ctx, len(pts), len(pts), func(i int) (harness.SweepPoint, error) {
		res, err := sv.Do(ctx, pts[i].Spec)
		if err != nil {
			return harness.SweepPoint{}, err
		}
		return pts[i].Result(res.Run), nil
	})
}
