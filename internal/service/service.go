// Package service turns the one-shot experiment engine into a
// long-lived experiment service, so identical grid cells are never
// re-simulated. Three pieces compose:
//
//   - a content-addressed result store (Store): spec.Canonical() hashes
//     the normalized Spec, and a disk-backed, shard-per-prefix layout
//     with an in-memory LRU in front maps hash -> stats.Run JSON, so any
//     previously computed experiment is served without simulation and
//     byte-identically to its first computation;
//
//   - a dedup job queue (Queue): identical in-flight specs singleflight
//     onto one job, distinct specs fan their perturbed seeds across a
//     bounded simulation pool, and every job exposes per-seed progress;
//
//   - an HTTP API (NewHandler): POST /v1/runs answers one Spec with its
//     Run JSON, POST /v1/grids and /v1/sweeps stream NDJSON cells in
//     presentation order as they finish, GET /v1/jobs/{id} reports
//     progress, and GET /healthz reports store and queue counters.
//
// A Service optionally joins a cluster (internal/cluster): a static
// consistent-hash ring shards the canonical key space across N serve
// processes, misses whose key another member owns are forwarded there
// (so the dedup queue's singleflight stays global, not per-node), the
// returned result is replicated into this node's LRU front, and an
// unreachable owner degrades to local compute — the stream never fails
// and never changes a byte.
//
// The same bar holds under faults (internal/fault injects them
// deterministically): store entries carry a per-entry checksum and a
// corrupt or truncated file is quarantined and recomputed, a panicking
// simulation is recovered into its one job's error and retried once,
// and a repeatedly failing peer trips a per-peer circuit breaker that
// routes around it until a cooldown probe heals. Every degradation
// costs recomputation, never a changed client byte — the chaos test in
// chaos_test.go holds a 3-node cluster under a seeded fault schedule
// to the single-node reference bytes.
//
// cmd/tsnoop wires this up as the serve and submit subcommands, and the
// run/grid/sweep subcommands hit the same store locally via -cache.
package service

import (
	"context"
	"errors"
	"iter"
	"log/slog"
	"sync"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/harness"
	"tsnoop/internal/parallel"
	"tsnoop/internal/spec"
)

// Config parameterizes a Service.
type Config struct {
	// Dir is the result store directory; empty keeps results in memory
	// only (the LRU still serves repeats, nothing persists).
	Dir string
	// LRU bounds the in-memory result cache entries (0 = DefaultLRU).
	LRU int
	// Workers bounds concurrent simulations across all jobs
	// (0 = one per CPU).
	Workers int
	// Keep bounds the retained finished-job history (0 = DefaultKeep).
	Keep int
	// Sim executes one simulation (nil = Spec.RunContext); tests inject
	// stubs to count or gate executions.
	Sim SimFunc
	// BaseContext is the lifecycle context started jobs run on (nil =
	// context.Background()): a CLI passes its interrupt context so
	// Ctrl-C cancels simulations, a server passes its own lifetime so
	// request disconnects do not.
	BaseContext context.Context
	// Version is the build identifier /healthz reports (empty = omitted).
	Version string
	// Logger, when non-nil, receives one structured access-log record per
	// HTTP request (method, path, status, bytes, duration). Nil disables
	// access logging; the /metrics counters run either way.
	Logger *slog.Logger
	// Cluster federates this node into a static peer ring (nil = single
	// node): misses whose canonical key another member owns are
	// forwarded there and the result rides back into this node's LRU.
	Cluster *cluster.Cluster
	// MaxCells bounds this node's in-flight streamed cells on /v1/grids
	// and /v1/sweeps; past it new streams are refused with 429 +
	// Retry-After (0 = cluster.DefaultMaxCells, negative = unlimited).
	MaxCells int
	// TraceKeep bounds the retained finished-request trace history on
	// GET /v1/traces (0 = DefaultTraceKeep).
	TraceKeep int
}

// Service is the experiment service: a store fronted by a dedup queue,
// with grid/sweep streaming that mirrors the harness engine cell for
// cell.
type Service struct {
	store   *Store
	queue   *Queue
	cluster *cluster.Cluster
	shed    *cluster.Admission

	version string
	logger  *slog.Logger
	started time.Time
	httpm   httpMetrics
	traces  *traceRing

	// readiness gates /readyz: a node reports 503 before serve marks it
	// ready (listener + ring up) and again once a drain begins, so load
	// balancers stop routing before the listener closes.
	readyMu     sync.Mutex
	ready       bool
	readyReason string
}

// New opens the store and builds the queue.
func New(cfg Config) (*Service, error) {
	store, err := OpenStore(cfg.Dir, cfg.LRU)
	if err != nil {
		return nil, err
	}
	budget := cfg.MaxCells
	if budget == 0 {
		budget = cluster.DefaultMaxCells
	}
	if budget < 0 {
		budget = 0 // unlimited
	}
	return &Service{
		store:       store,
		queue:       NewQueue(store, cfg.Workers, cfg.Keep, cfg.Sim, cfg.BaseContext),
		cluster:     cfg.Cluster,
		shed:        cluster.NewAdmission(budget, "/v1/grids", "/v1/sweeps"),
		version:     cfg.Version,
		logger:      cfg.Logger,
		started:     time.Now(),
		traces:      newTraceRing(cfg.TraceKeep),
		readyReason: "starting",
	}, nil
}

// Do answers one spec. On a single node this is exactly Queue.Do; on a
// cluster member the canonical key is routed first — keys this node
// owns (and every replicated hot entry) are answered locally, misses
// on another member's shard are forwarded to the owner so identical
// submissions entering anywhere in the fleet singleflight onto one
// simulation. A dead owner degrades to local compute: the answer is
// byte-identical either way, only the forward-error counter moves.
func (sv *Service) Do(ctx context.Context, s spec.Spec) (Result, error) {
	return sv.do(ctx, s, false)
}

// DoLocal answers one spec on this node regardless of ring ownership —
// the path forwarded peer requests take, so a forward can never loop
// even while two nodes momentarily disagree about the member list.
func (sv *Service) DoLocal(ctx context.Context, s spec.Spec) (Result, error) {
	return sv.do(ctx, s, true)
}

func (sv *Service) do(ctx context.Context, s spec.Spec, local bool) (Result, error) {
	if sv.cluster == nil || local {
		return sv.queue.Do(ctx, s)
	}
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	// Same key discipline as Queue.Do: the service answers the
	// experiment; telemetry is a local-CLI concern.
	s.Metrics = false
	s.Spans = false
	at := traceFrom(ctx)
	routeStart := time.Now()
	key := s.Canonical()
	owner, remote := sv.cluster.Route(key)
	if !remote {
		at.span("route", routeStart, "local shard")
		return sv.queue.Do(ctx, s)
	}
	at.span("route", routeStart, "owner "+owner)
	// A replicated hot entry (or an earlier local-fallback compute)
	// answers without a network hop.
	getStart := time.Now()
	if data, ok, err := sv.store.Get(key); err == nil && ok {
		if run, derr := decodeRun(data); derr == nil {
			at.span("store_get", getStart, "replicated hit")
			return Result{Key: key, Data: data, Run: run, Cached: true}, nil
		}
	}
	at.span("store_get", getStart, "miss")
	fwdStart := time.Now()
	fwd, err := sv.cluster.Forward(ctx, owner, s.JSON(), TraceID(ctx))
	if err != nil {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		if errors.Is(err, cluster.ErrBreakerOpen) {
			// The owner's breaker is open: skip straight to local compute
			// without having paid the dial/retry tax. A skip is counted on
			// the breaker, not as a forward error.
			at.span("forward", fwdStart, "breaker open, computing locally")
			return sv.queue.Do(ctx, s)
		}
		// Owner unreachable: a dead peer costs a local simulation,
		// never a failed stream. The forward error is already on the
		// cluster counters (cluster_forward_error) and the breaker.
		at.span("forward", fwdStart, "error, degrading to local: "+err.Error())
		return sv.queue.Do(ctx, s)
	}
	run, derr := decodeRun(fwd.Data)
	if derr != nil {
		// A peer that answers garbage degrades exactly like a dead one —
		// and Suspect feeds the breaker, so a peer that keeps doing it
		// trips open despite its "successful" HTTP exchanges.
		sv.cluster.Suspect(owner)
		at.span("forward", fwdStart, "unreadable answer, degrading to local")
		return sv.queue.Do(ctx, s)
	}
	at.span("forward", fwdStart, owner+" "+fwd.Disposition)
	at.setRemote(owner, fwd.RemoteSpans)
	remStart := time.Now()
	sv.store.Remember(key, fwd.Data)
	sv.cluster.Replicate()
	at.span("replicate", remStart, "")
	return Result{
		Key:    key,
		Data:   fwd.Data,
		Run:    run,
		Remote: owner,
		Cached: fwd.Disposition == CacheHit,
		Shared: fwd.Disposition == CacheJoin,
	}, nil
}

// SetReady flips the /readyz gate. serve marks the node ready once the
// listener and ring are up, and not-ready (reason "draining") when
// shutdown begins.
func (sv *Service) SetReady(ready bool, reason string) {
	sv.readyMu.Lock()
	sv.ready, sv.readyReason = ready, reason
	sv.readyMu.Unlock()
}

// Ready reports the /readyz gate and, when not ready, why.
func (sv *Service) Ready() (bool, string) {
	sv.readyMu.Lock()
	defer sv.readyMu.Unlock()
	return sv.ready, sv.readyReason
}

// ClusterStats snapshots the cluster counters (nil when single-node).
func (sv *Service) ClusterStats() *cluster.Stats {
	if sv.cluster == nil {
		return nil
	}
	st := sv.cluster.Stats()
	return &st
}

// ShedStats snapshots the streamed-cell admission gate.
func (sv *Service) ShedStats() cluster.AdmissionStats { return sv.shed.Stats() }

// Drain blocks until every in-flight job has finished (or ctx fires);
// see Queue.Drain.
func (sv *Service) Drain(ctx context.Context) error { return sv.queue.Drain(ctx) }

// Job returns one job's status snapshot.
func (sv *Service) Job(id string) (JobStatus, bool) { return sv.queue.Job(id) }

// Jobs snapshots every retained job in creation order.
func (sv *Service) Jobs() []JobStatus { return sv.queue.Jobs() }

// StoreStats snapshots the store counters.
func (sv *Service) StoreStats() StoreStats { return sv.store.Stats() }

// QueueStats snapshots the queue counters.
func (sv *Service) QueueStats() QueueStats { return sv.queue.Stats() }

// StreamGrid is the cached counterpart of harness.Experiment.StreamGrid:
// it yields the same cells in the same presentation order as they
// finish, but each cell is content-addressed by its CellSpec, so cells
// already in the store are served instantly, identical concurrent cells
// are singleflighted, and fresh cells land in the store for next time.
// Collecting the stream is byte-identical to the harness path.
func (sv *Service) StreamGrid(ctx context.Context, e harness.Experiment, network string) iter.Seq2[harness.CellResult, error] {
	cells := e.Cells(network)
	// One goroutine per cell: actual simulation concurrency is bounded
	// by the queue's slot pool, and slot-waiting goroutines are cheap.
	return parallel.Stream(ctx, len(cells), len(cells), func(i int) (harness.CellResult, error) {
		res, err := sv.Do(ctx, e.CellSpec(cells[i]))
		if err != nil {
			return harness.CellResult{}, err
		}
		return harness.CellResult{Cell: cells[i], Best: res.Run}, nil
	})
}

// StreamPoints is the cached counterpart of
// harness.Experiment.StreamPoints: sweep points stream in spec order as
// they finish, each answered through the store and queue.
func (sv *Service) StreamPoints(ctx context.Context, pts []harness.PointSpec) iter.Seq2[harness.SweepPoint, error] {
	return parallel.Stream(ctx, len(pts), len(pts), func(i int) (harness.SweepPoint, error) {
		res, err := sv.Do(ctx, pts[i].Spec)
		if err != nil {
			return harness.SweepPoint{}, err
		}
		return pts[i].Result(res.Run), nil
	})
}
