package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsnoop/internal/fault"
	"tsnoop/internal/parallel"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// SimFunc executes exactly one simulation: a validated spec with
// Seeds == 1 and Workers == 1 (the queue owns both fan-outs). The
// default is Spec.RunContext; tests inject counting or gated stubs.
type SimFunc func(ctx context.Context, s spec.Spec) (*stats.Run, error)

// Job states, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the externally visible snapshot of one job — what
// GET /v1/jobs/{id} returns.
type JobStatus struct {
	ID    string    `json:"id"`
	Key   string    `json:"key"`
	State string    `json:"state"`
	Spec  spec.Spec `json:"spec"`
	// SeedsDone / SeedsTotal expose per-job progress at simulation
	// granularity: a 20-seed job reports each finished seed.
	SeedsDone  int `json:"seeds_done"`
	SeedsTotal int `json:"seeds_total"`
	// Waiters counts requests deduplicated onto this job beyond the one
	// that started it.
	Waiters int    `json:"waiters"`
	Error   string `json:"error,omitempty"`
	// TraceID links the job to the request trace that started it (see
	// GET /v1/traces/{id}); empty when the submitter was untraced
	// (direct library use, the -cache CLI path).
	TraceID string `json:"trace_id,omitempty"`
	// StoreError records a failed persist of an otherwise successful
	// job: the result was still served (and the LRU still has it), only
	// the disk write failed.
	StoreError string    `json:"store_error,omitempty"`
	Created    time.Time `json:"created"`
	Finished   time.Time `json:"finished,omitzero"`
	// Spans break the job's wall-clock life into phases; each fills in as
	// the phase completes, so a running job already shows its queue wait.
	Spans JobSpans `json:"spans"`
}

// JobSpans are per-job phase timings in microseconds of wall clock:
// how long the job sat queued before its first seed started, how long
// simulation (all seeds, plus result encoding) took, and how long the
// store write took. Wall-clock time never reaches the simulator — these
// time the service around it.
type JobSpans struct {
	QueueWaitUS  int64 `json:"queue_wait_us"`
	SimulateUS   int64 `json:"simulate_us"`
	StoreWriteUS int64 `json:"store_write_us"`
}

// job is the mutable record behind a JobStatus.
type job struct {
	mu     sync.Mutex
	status JobStatus
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) start(total int, now time.Time) {
	j.mu.Lock()
	j.status.State = JobRunning
	j.status.SeedsTotal = total
	j.status.Spans.QueueWaitUS = now.Sub(j.status.Created).Microseconds()
	j.mu.Unlock()
}

func (j *job) setSpans(simulate, storeWrite time.Duration) {
	j.mu.Lock()
	j.status.Spans.SimulateUS = simulate.Microseconds()
	j.status.Spans.StoreWriteUS = storeWrite.Microseconds()
	j.mu.Unlock()
}

func (j *job) seedDone() {
	j.mu.Lock()
	j.status.SeedsDone++
	j.mu.Unlock()
}

func (j *job) addWaiter() {
	j.mu.Lock()
	j.status.Waiters++
	j.mu.Unlock()
}

func (j *job) finish(err, storeErr error, now time.Time) {
	j.mu.Lock()
	j.status.Finished = now
	if err != nil {
		j.status.State, j.status.Error = JobFailed, err.Error()
	} else {
		j.status.State = JobDone
	}
	if storeErr != nil {
		j.status.StoreError = storeErr.Error()
	}
	j.mu.Unlock()
}

// Result is one answered experiment: the stable Run JSON (byte-identical
// across store hits, in-flight joins, and the original computation), the
// decoded run, and how the answer was produced.
type Result struct {
	// Key is the spec's canonical content address.
	Key string
	// JobID names the job that computed (or is computing) the result;
	// empty when the store answered directly.
	JobID string
	// Data is the canonical stats.Run JSON.
	Data []byte
	// Run is the decoded result.
	Run *stats.Run
	// Cached reports a result served from the store without any job.
	Cached bool
	// Shared reports a result obtained by joining an identical in-flight
	// job (singleflight) rather than starting a new one.
	Shared bool
	// Remote names the owning peer that answered a forwarded miss;
	// empty when this node answered from its own store or queue.
	Remote string
}

// flight is one in-progress computation of a key. Duplicate submissions
// join the flight instead of re-simulating.
type flight struct {
	job  *job
	done chan struct{} // closed once data/run/err are final
	data []byte
	run  *stats.Run
	err  error
}

// Queue is the dedup job scheduler: identical in-flight specs are
// singleflighted onto one job, distinct specs fan out across a bounded
// simulation pool (internal/parallel semantics: one slot per concurrent
// simulation), finished results land in the content-addressed store,
// and every job exposes per-seed progress.
//
// A job, once started, runs on the queue's base context rather than the
// submitting request's: a client that disconnects mid-run does not
// cancel work other clients may have joined, and the result still lands
// in the store. Cancelling the base context (queue shutdown) stops
// everything.
type Queue struct {
	store *Store
	sim   SimFunc
	base  context.Context
	slots chan struct{}
	keep  int

	// inflight counts started flights; Drain waits on it so shutdown
	// never kills a simulation whose submitter already disconnected.
	inflight sync.WaitGroup

	// panics counts recovered seed-worker panics (each recovery, so a
	// retried-then-persisted panic counts twice) — the
	// tsnoop_panics_recovered_total signal.
	panics atomic.Int64

	mu      sync.Mutex
	flights map[string]*flight
	jobs    map[string]*job
	order   []string // job IDs in creation order, for history eviction
	nextID  int64
}

// DefaultKeep is the finished-job history bound when Config.Keep is 0.
const DefaultKeep = 1024

// NewQueue builds a queue over a store. workers bounds concurrent
// simulations (0 = one per CPU); keep bounds the retained finished-job
// history (0 = DefaultKeep); sim is the single-simulation executor
// (nil = Spec.RunContext); base is the lifecycle context jobs run on
// (nil = context.Background()).
func NewQueue(store *Store, workers, keep int, sim SimFunc, base context.Context) *Queue {
	if sim == nil {
		sim = func(ctx context.Context, s spec.Spec) (*stats.Run, error) { return s.RunContext(ctx) }
	}
	if base == nil {
		base = context.Background()
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Queue{
		store:   store,
		sim:     sim,
		base:    base,
		slots:   make(chan struct{}, parallel.Workers(workers)),
		keep:    keep,
		flights: make(map[string]*flight),
		jobs:    make(map[string]*job),
	}
}

// Do answers one spec: from the store if the result exists, by joining
// an identical in-flight job if one is running, and by scheduling a new
// job otherwise. The returned Data is byte-identical across all three
// paths. ctx bounds only this caller's wait — an already-started job
// keeps running for other waiters and the store.
func (q *Queue) Do(ctx context.Context, s spec.Spec) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	// The store's contract is byte-identical payloads per canonical key,
	// and Normalize clears the metrics and spans knobs (an instrumented
	// run is the same experiment), so an instrumented rendering could
	// collide with the plain one under the same key. The service answers
	// the experiment; telemetry stays a local-CLI concern.
	s.Metrics = false
	s.Spans = false
	at := traceFrom(ctx)
	key := s.Canonical()
	getStart := time.Now()
	if data, ok, err := q.store.Get(key); err != nil {
		return Result{}, err
	} else if ok {
		run, err := decodeRun(data)
		if err != nil {
			return Result{}, fmt.Errorf("service: stored result %s is unreadable: %w", key[:12], err)
		}
		at.span("store_get", getStart, "hit")
		return Result{Key: key, Data: data, Run: run, Cached: true}, nil
	}
	at.span("store_get", getStart, "miss")

	q.mu.Lock()
	if f, ok := q.flights[key]; ok {
		f.job.addWaiter()
		q.mu.Unlock()
		return q.wait(ctx, key, f, true)
	}
	f := &flight{job: q.newJobLocked(key, s, TraceID(ctx)), done: make(chan struct{})}
	q.flights[key] = f
	q.inflight.Add(1)
	q.mu.Unlock()
	go q.execute(f, s, key)
	return q.wait(ctx, key, f, false)
}

// wait blocks until the flight completes or the caller's context fires.
func (q *Queue) wait(ctx context.Context, key string, f *flight, shared bool) (Result, error) {
	select {
	case <-f.done:
		if f.err != nil {
			return Result{}, f.err
		}
		st := f.job.snapshot()
		// The job's wall-clock phases tile into the waiting request's
		// trace; a joined request shows the shared job's phases too.
		traceFrom(ctx).phases(st.ID, st.Spans)
		return Result{Key: key, JobID: st.ID, Data: f.data, Run: f.run, Shared: shared}, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// newJobLocked registers a new job record; q.mu must be held. Finished
// jobs past the history bound are evicted oldest-first (jobs still
// queued or running are never evicted).
func (q *Queue) newJobLocked(key string, s spec.Spec, traceID string) *job {
	q.nextID++
	j := &job{status: JobStatus{
		ID:      fmt.Sprintf("job-%06d", q.nextID),
		Key:     key,
		State:   JobQueued,
		Spec:    s,
		TraceID: traceID,
		Created: time.Now().UTC(),
	}}
	q.jobs[j.status.ID] = j
	q.order = append(q.order, j.status.ID)
	for len(q.order) > q.keep {
		evicted := false
		for i, id := range q.order {
			st := q.jobs[id].snapshot().State
			if st == JobDone || st == JobFailed {
				delete(q.jobs, id)
				q.order = append(q.order[:i], q.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the history run long rather than lose live jobs
		}
	}
	return j
}

// execute runs one flight to completion on the queue's base context and
// publishes the result to the store and to every waiter.
func (q *Queue) execute(f *flight, s spec.Spec, key string) {
	defer func() {
		q.mu.Lock()
		delete(q.flights, key)
		q.mu.Unlock()
		close(f.done)
		q.inflight.Done()
	}()
	simStart := time.Now()
	run, err := q.runSeeds(q.base, s, f.job)
	if err == nil {
		f.data, err = json.Marshal(run)
	}
	simDur := time.Since(simStart)
	if err != nil {
		f.err = err
		f.data = nil
		f.job.setSpans(simDur, 0)
		f.job.finish(err, nil, time.Now().UTC())
		return
	}
	f.run = run
	// A failed persist (full or read-only directory) must not discard a
	// computed result: serve it, keep it in the LRU, and surface the
	// store trouble on the job instead of degrading every client to 500s.
	putStart := time.Now()
	storeErr := q.store.Put(key, f.data)
	f.job.setSpans(simDur, time.Since(putStart))
	f.job.finish(nil, storeErr, time.Now().UTC())
}

// Drain blocks until every in-flight job has finished (or ctx fires) —
// the graceful-shutdown handshake: jobs whose submitters disconnected
// still run to completion and land in the store before the process
// exits.
func (q *Queue) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		q.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runSeeds fans the spec's perturbed seed copies across the shared
// simulation pool — each seed takes one slot, so the concurrency bound
// holds across all jobs — collects them in seed order, and reports the
// minimum-runtime run (the paper's rule, same as Spec.Run).
func (q *Queue) runSeeds(ctx context.Context, s spec.Spec, j *job) (*stats.Run, error) {
	n := s.Seeds
	j.start(n, time.Now())
	runs := make([]*stats.Run, 0, n)
	for run, err := range parallel.Stream(ctx, n, n, func(i int) (*stats.Run, error) {
		select {
		case q.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-q.slots }()
		one := s
		one.Seed += uint64(i)
		one.Seeds = 1
		one.Workers = 1
		r, err := q.simSafe(ctx, one)
		if err == nil {
			j.seedDone()
		}
		return r, err
	}) {
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return stats.Best(runs), nil
}

// PanicError is a seed-worker panic recovered into a job error: the
// panic value plus the goroutine stack captured at recovery, so a
// poisoned spec is diagnosable from the job record instead of from a
// crashed process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simulation panicked: %v\n%s", e.Value, e.Stack)
}

// simSafe runs one seed's simulation with panic isolation. A panic is
// recovered into a *PanicError — one poisoned spec fails one job, never
// the process — and the seed is retried once: transient poison (a
// corrupted input that recomputes clean, an injected fault) recovers
// invisibly, while a deterministic panic fails the job with the
// captured stack.
func (q *Queue) simSafe(ctx context.Context, s spec.Spec) (*stats.Run, error) {
	r, err := q.simOnce(ctx, s)
	var pe *PanicError
	if errors.As(err, &pe) && ctx.Err() == nil {
		r, err = q.simOnce(ctx, s)
		if errors.As(err, &pe) {
			err = fmt.Errorf("service: seed panic persisted after retry: %w", pe)
		}
	}
	return r, err
}

// simOnce executes exactly one simulation, converting a panic into an
// error and applying the queue's failpoints (injected worker panics
// and slow seeds).
func (q *Queue) simOnce(ctx context.Context, s spec.Spec) (r *stats.Run, err error) {
	defer func() {
		if v := recover(); v != nil {
			q.panics.Add(1)
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if f := fault.Active(); f != nil {
		if d := f.Delay(fault.QueueSeedSlow); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		if f.Fire(fault.QueueSeedPanic) {
			panic("fault: injected seed panic")
		}
	}
	return q.sim(ctx, s)
}

// Job returns the status snapshot of one job.
func (q *Queue) Job(id string) (JobStatus, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Jobs snapshots every retained job, sorted by id ascending — the
// GET /v1/jobs contract. IDs are sequential ("job-%06d"), so this is
// also creation order today; the explicit sort pins the contract
// rather than leaning on how the history list happens to be
// maintained. Shorter ids sort first so the order survives the id
// counter outgrowing its zero padding.
func (q *Queue) Jobs() []JobStatus {
	q.mu.Lock()
	ids := append([]string(nil), q.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, q.jobs[id])
	}
	q.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// QueueStats counts retained jobs by state plus total dedup joins.
type QueueStats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Joined  int `json:"joined"` // requests answered by joining an in-flight job
	// PanicsRecovered counts seed-worker panics recovered into job
	// errors (or invisible retries) instead of process deaths.
	PanicsRecovered int64 `json:"panics_recovered"`
}

// Stats snapshots the queue's counters.
func (q *Queue) Stats() QueueStats {
	var qs QueueStats
	for _, j := range q.Jobs() {
		switch j.State {
		case JobQueued:
			qs.Queued++
		case JobRunning:
			qs.Running++
		case JobDone:
			qs.Done++
		case JobFailed:
			qs.Failed++
		}
		qs.Joined += j.Waiters
	}
	qs.PanicsRecovered = q.panics.Load()
	return qs
}

// decodeRun parses stored Run JSON.
func decodeRun(data []byte) (*stats.Run, error) {
	run := new(stats.Run)
	if err := json.Unmarshal(data, run); err != nil {
		return nil, err
	}
	return run, nil
}
