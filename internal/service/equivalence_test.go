package service

import (
	"context"
	"encoding/json"
	"testing"

	"tsnoop/internal/harness"
	"tsnoop/internal/spec"
)

// smallExperiment is a fast one-benchmark grid: 3 protocols x 2
// perturbed seeds on a 4-node machine.
func smallExperiment() harness.Experiment {
	s := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120),
		spec.WithSeeds(2), spec.WithPerturbNS(3))
	return harness.FromSpec(s)
}

// collectJSON renders every streamed cell as its JSON line.
func collectJSON[T any](t *testing.T, seq func(yield func(T, error) bool)) []string {
	t.Helper()
	var lines []string
	for v, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(data))
	}
	return lines
}

// The cached grid stream is byte-identical to the harness engine — cold
// (every cell simulated through the queue) and warm (every cell served
// from the store).
func TestServiceStreamGridMatchesHarness(t *testing.T) {
	e := smallExperiment()
	ctx := context.Background()
	want := collectJSON(t, e.StreamGrid(ctx, "butterfly"))

	sv, err := New(Config{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cold := collectJSON(t, sv.StreamGrid(ctx, e, "butterfly"))
	if len(cold) != len(want) {
		t.Fatalf("cold stream has %d cells, want %d", len(cold), len(want))
	}
	for i := range want {
		if cold[i] != want[i] {
			t.Errorf("cold cell %d differs:\n got: %s\nwant: %s", i, cold[i], want[i])
		}
	}

	warm := collectJSON(t, sv.StreamGrid(ctx, e, "butterfly"))
	for i := range want {
		if warm[i] != want[i] {
			t.Errorf("warm cell %d differs:\n got: %s\nwant: %s", i, warm[i], want[i])
		}
	}
	if st := sv.StoreStats(); st.Hits < int64(len(want)) {
		t.Errorf("warm pass recorded %d store hits, want at least %d", st.Hits, len(want))
	}
	// The warm pass scheduled no new jobs.
	if n := len(sv.Jobs()); n != len(want) {
		t.Errorf("%d jobs after warm pass, want %d (one per cold cell)", n, len(want))
	}
}

// The cached sweep-point stream matches the harness points exactly.
func TestServiceStreamPointsMatchesHarness(t *testing.T) {
	e := smallExperiment()
	base := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120))
	alt := base
	alt.BlockBytes = 128
	pts := []harness.PointSpec{
		{Label: "64B", Spec: base},
		{Label: "128B", Spec: alt},
	}
	ctx := context.Background()
	want := collectJSON(t, e.StreamPoints(ctx, pts))

	sv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got := collectJSON(t, sv.StreamPoints(ctx, pts))
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d points, want %d", pass, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("pass %d point %d differs:\n got: %s\nwant: %s", pass, i, got[i], want[i])
			}
		}
	}
}
