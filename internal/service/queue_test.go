package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsnoop/internal/fault"
	"tsnoop/internal/sim"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// testSpec is a small valid spec; vary the seed to get distinct keys.
func testSpec(seed uint64) spec.Spec {
	return spec.New("barnes", spec.WithNodes(4), spec.WithSeed(seed),
		spec.WithWarmup(-1), spec.WithQuota(50))
}

func TestQueueSingleflightsConcurrentIdenticalSpecs(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		calls.Add(1)
		<-gate // hold every simulation in flight until all submitters arrived
		return &stats.Run{Runtime: 4242, MemOps: int64(s.Seed)}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 4, 0, sim, nil)

	s := testSpec(7)
	s.Seeds = 2 // the job fans two seeds; dedup must not multiply them

	const submitters = 8
	results := make([]Result, submitters)
	errs := make([]error, submitters)
	var started, finished sync.WaitGroup
	started.Add(submitters)
	finished.Add(submitters)
	for i := 0; i < submitters; i++ {
		go func(i int) {
			started.Done()
			defer finished.Done()
			results[i], errs[i] = q.Do(context.Background(), s)
		}(i)
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let every submitter reach the flight map
	close(gate)
	finished.Wait()

	if got := calls.Load(); got != int64(s.Seeds) {
		t.Fatalf("identical concurrent submissions ran %d simulations, want %d (one per seed)", got, s.Seeds)
	}
	owners := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("submitter %d: %v", i, errs[i])
		}
		if !results[i].Shared && !results[i].Cached {
			owners++
		}
		if !bytes.Equal(results[i].Data, results[0].Data) {
			t.Fatalf("submitter %d got different bytes", i)
		}
	}
	if owners != 1 {
		t.Fatalf("%d submitters started jobs, want exactly 1", owners)
	}

	// A later identical submission is a pure store hit: no new simulation.
	res, err := q.Do(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached || calls.Load() != int64(s.Seeds) {
		t.Fatalf("repeat submission: cached=%v calls=%d, want store hit with no new runs", res.Cached, calls.Load())
	}
	if !bytes.Equal(res.Data, results[0].Data) {
		t.Fatal("store hit bytes differ from the computed result")
	}
}

func TestQueueRunsDistinctSpecsIndependently(t *testing.T) {
	var calls atomic.Int64
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		calls.Add(1)
		return &stats.Run{Runtime: 1, MemOps: int64(s.Seed)}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 2, 0, sim, nil)
	a, err := q.Do(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Do(context.Background(), testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == b.Key {
		t.Fatal("distinct specs share a canonical key")
	}
	if bytes.Equal(a.Data, b.Data) {
		t.Fatal("distinct specs returned identical results from the stub")
	}
	if calls.Load() != 2 {
		t.Fatalf("2 distinct specs ran %d simulations", calls.Load())
	}
}

func TestQueueSeedFanOutAndProgress(t *testing.T) {
	var calls atomic.Int64
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		calls.Add(1)
		mu.Lock()
		seen[s.Seed] = true
		mu.Unlock()
		if s.Seeds != 1 || s.Workers != 1 {
			t.Errorf("sim received a non-unit spec: seeds=%d workers=%d", s.Seeds, s.Workers)
		}
		// Later seeds are faster, so Best must pick the last one.
		return &stats.Run{Runtime: sim.Time(1000 - 10*int64(s.Seed))}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 2, 0, SimFunc(sim), nil)
	s := testSpec(5)
	s.Seeds = 4
	res, err := q.Do(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("4 seeds ran %d simulations", calls.Load())
	}
	for seed := uint64(5); seed < 9; seed++ {
		if !seen[seed] {
			t.Errorf("seed %d never simulated", seed)
		}
	}
	if int64(res.Run.Runtime) != 1000-10*8 {
		t.Fatalf("best run = %v, want the minimum-runtime seed (seed 8)", res.Run.Runtime)
	}
	job, ok := q.Job(res.JobID)
	if !ok {
		t.Fatalf("job %q not retained", res.JobID)
	}
	if job.State != JobDone || job.SeedsDone != 4 || job.SeedsTotal != 4 {
		t.Fatalf("job = %+v, want done with 4/4 seeds", job)
	}
}

func TestQueueFailurePropagatesAndIsNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		calls.Add(1)
		if calls.Load() == 1 {
			return nil, boom
		}
		return &stats.Run{Runtime: 9}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 0, sim, nil)
	s := testSpec(3)
	res, err := q.Do(context.Background(), s)
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %+v, %v; want the simulation error", res, err)
	}
	// Failures never land in the store, so a retry re-runs and succeeds.
	res, err = q.Do(context.Background(), s)
	if err != nil || res.Cached {
		t.Fatalf("retry = %+v, %v; want a fresh successful run", res, err)
	}
	jobs := q.Jobs()
	if len(jobs) != 2 || jobs[0].State != JobFailed || jobs[0].Error == "" || jobs[1].State != JobDone {
		t.Fatalf("job history = %+v, want [failed, done]", jobs)
	}
}

func TestQueueRejectsInvalidSpec(t *testing.T) {
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 0, nil, nil)
	s := testSpec(1)
	s.Protocol = "MOESI"
	if _, err := q.Do(context.Background(), s); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if len(q.Jobs()) != 0 {
		t.Fatal("invalid spec created a job")
	}
}

func TestQueueWaiterCancellationLeavesJobRunning(t *testing.T) {
	gate := make(chan struct{})
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		<-gate
		return &stats.Run{Runtime: 11}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 0, sim, nil)
	s := testSpec(9)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.Do(ctx, s)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	// The job itself keeps running on the base context and lands in the
	// store for the next caller.
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := q.Do(context.Background(), s)
		if err == nil && res.Cached {
			break
		}
		if err == nil && !res.Cached {
			break // the flight had already been reaped; a fresh run is also correct
		}
		if time.Now().After(deadline) {
			t.Fatalf("result never became available: %+v, %v", res, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Drain waits for jobs whose submitters disconnected — the graceful
// shutdown handshake behind tsnoop serve.
func TestQueueDrainWaitsForOrphanedJobs(t *testing.T) {
	gate := make(chan struct{})
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		<-gate
		return &stats.Run{Runtime: 21}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 0, sim, nil)
	s := testSpec(4)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.Do(ctx, s)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel() // the submitter hangs up; the job keeps running
	<-errc

	short, scancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer scancel()
	if err := q.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain returned %v while a job was still running", err)
	}
	close(gate)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
	// The orphaned job's result landed in the store.
	res, err := q.Do(context.Background(), s)
	if err != nil || !res.Cached {
		t.Fatalf("orphaned job's result not stored: %+v, %v", res, err)
	}
}

// A failed persist degrades, it does not discard: the computed result
// is still served and the store trouble lands on the job status.
func TestQueuePutFailureStillServesResult(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 33}, nil
	}
	q := NewQueue(store, 1, 0, sim, nil)
	s := testSpec(6)
	// Occupy the shard path with a regular file so the disk write fails.
	if err := os.WriteFile(filepath.Join(dir, s.Canonical()[:2]), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := q.Do(context.Background(), s)
	if err != nil {
		t.Fatalf("Do failed on a store-only error: %v", err)
	}
	if int64(res.Run.Runtime) != 33 {
		t.Fatalf("served run = %+v", res.Run)
	}
	job, ok := q.Job(res.JobID)
	if !ok || job.State != JobDone || job.StoreError == "" {
		t.Fatalf("job = %+v, want done with a store error recorded", job)
	}
	// The LRU still serves the repeat even though the disk write failed.
	res, err = q.Do(context.Background(), s)
	if err != nil || !res.Cached {
		t.Fatalf("repeat after failed persist = %+v, %v; want an LRU hit", res, err)
	}
}

func TestQueueHistoryEviction(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 1}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 3, sim, nil)
	for seed := uint64(1); seed <= 6; seed++ {
		if _, err := q.Do(context.Background(), testSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	jobs := q.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("history holds %d jobs, want 3", len(jobs))
	}
	if jobs[len(jobs)-1].Spec.Seed != 6 {
		t.Fatalf("newest job lost: %+v", jobs)
	}
}

// TestQueueJobsSortedByID pins the Jobs() ordering contract: snapshots
// come back sorted by id ascending even when the internal history list
// is not in that order.
func TestQueueJobsSortedByID(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 1}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 2, 0, sim, nil)
	const n = 5
	for seed := uint64(1); seed <= n; seed++ {
		if _, err := q.Do(context.Background(), testSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Scramble the internal history list: the explicit sort, not the
	// list's creation order, must produce the contract ordering.
	q.mu.Lock()
	for i, j := 0, len(q.order)-1; i < j; i, j = i+1, j-1 {
		q.order[i], q.order[j] = q.order[j], q.order[i]
	}
	q.mu.Unlock()
	jobs := q.Jobs()
	if len(jobs) != n {
		t.Fatalf("retained %d jobs, want %d", len(jobs), n)
	}
	for i, j := range jobs {
		if want := fmt.Sprintf("job-%06d", i+1); j.ID != want {
			t.Fatalf("jobs[%d].ID = %s, want %s", i, j.ID, want)
		}
	}
}

// A transient panic — poison that clears on recompute — is retried once
// and recovers invisibly: the job succeeds and only the counter records
// that anything happened.
func TestQueuePanicIsolatedAndRetried(t *testing.T) {
	var calls atomic.Int64
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		if calls.Add(1) == 1 {
			panic("transient poison")
		}
		return &stats.Run{Runtime: 55}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 2, 0, sim, nil)
	res, err := q.Do(context.Background(), testSpec(1))
	if err != nil {
		t.Fatalf("Do after a transient panic: %v", err)
	}
	if int64(res.Run.Runtime) != 55 {
		t.Fatalf("retried run = %+v", res.Run)
	}
	job, ok := q.Job(res.JobID)
	if !ok || job.State != JobDone {
		t.Fatalf("job = %+v, want done", job)
	}
	if got := q.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
}

// A deterministic panic fails its one job — with the panic value and
// stack on the error — and leaves the queue alive for other specs.
func TestQueuePersistentPanicFailsOneJob(t *testing.T) {
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		if s.Seed == 3 {
			panic("poisoned spec")
		}
		return &stats.Run{Runtime: 66}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 0, sim, nil)

	res, err := q.Do(context.Background(), testSpec(3))
	if err == nil {
		t.Fatalf("poisoned spec succeeded: %+v", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if !strings.Contains(err.Error(), "poisoned spec") || !strings.Contains(err.Error(), "simOnce") {
		t.Fatalf("error lacks the panic value or stack: %v", err)
	}
	jobs := q.Jobs()
	if len(jobs) != 1 || jobs[0].State != JobFailed || !strings.Contains(jobs[0].Error, "panicked") {
		t.Fatalf("job history = %+v, want one failed job recording the panic", jobs)
	}
	// Initial attempt + retry both recovered.
	if got := q.Stats().PanicsRecovered; got != 2 {
		t.Fatalf("PanicsRecovered = %d, want 2 (attempt + retry)", got)
	}
	// The process — and the queue — survive: a healthy spec still runs.
	res, err = q.Do(context.Background(), testSpec(4))
	if err != nil || int64(res.Run.Runtime) != 66 {
		t.Fatalf("healthy spec after a panic = %+v, %v", res, err)
	}
}

// The queue.seed.panic failpoint drives the same recovery machinery: an
// injected one-shot panic retries invisibly and the job's bytes match an
// uninjected run.
func TestQueueInjectedSeedPanicFault(t *testing.T) {
	t.Cleanup(fault.Disable)
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 77, MemOps: int64(s.Seed)}, nil
	}
	clean, _ := OpenStore("", 0)
	ref, err := NewQueue(clean, 2, 0, sim, nil).Do(context.Background(), testSpec(8))
	if err != nil {
		t.Fatal(err)
	}

	fs, err := fault.Parse("seed=1;queue.seed.panic=times:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(fs)
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 2, 0, sim, nil)
	res, err := q.Do(context.Background(), testSpec(8))
	if err != nil {
		t.Fatalf("Do under an injected panic: %v", err)
	}
	if !bytes.Equal(res.Data, ref.Data) {
		t.Fatalf("injected-panic bytes %q differ from clean bytes %q", res.Data, ref.Data)
	}
	if got := q.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
}

// The queue.seed.slow failpoint delays a seed without changing its
// result bytes.
func TestQueueInjectedSlowSeedFault(t *testing.T) {
	t.Cleanup(fault.Disable)
	fs, err := fault.Parse("seed=1;queue.seed.slow=times:1@30ms")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(fs)
	sim := func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		return &stats.Run{Runtime: 88}, nil
	}
	store, _ := OpenStore("", 0)
	q := NewQueue(store, 1, 0, sim, nil)
	start := time.Now()
	res, err := q.Do(context.Background(), testSpec(2))
	if err != nil || int64(res.Run.Runtime) != 88 {
		t.Fatalf("Do under injected latency = %+v, %v", res, err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("injected seed delay did not slow the job")
	}
}
