package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/harness"
	"tsnoop/internal/spec"
)

// The HTTP surface of the experiment service.
//
//	POST /v1/runs     Spec JSON -> stats.Run JSON (one object)
//	POST /v1/grids    Spec JSON -> NDJSON cell results, presentation order
//	POST /v1/sweeps   {"sweep": kind, "spec": Spec} -> NDJSON sweep points
//	GET  /v1/jobs     all retained jobs
//	GET  /v1/jobs/{id} one job's status, progress, and phase spans
//	GET  /v1/traces   retained request traces, newest first
//	GET  /v1/traces/{id} one request's wall-clock trace
//	GET  /healthz     liveness: version, uptime, store and queue counters
//	GET  /readyz      readiness: 503 before serve is up and during drain
//	GET  /metrics     Prometheus text exposition (format 0.0.4)
//
// Every /v1/runs response carries X-Tsnoop-Key (the spec's canonical
// hash) and X-Tsnoop-Cache: "hit" (served from the store), "join"
// (attached to an identical in-flight job), or "miss" (computed by a
// new job, named by X-Tsnoop-Job). On a cluster member, a run answered
// by another node also carries X-Tsnoop-Remote naming the owning peer.
//
// Every response (any route, any status) carries X-Tsnoop-Trace: the
// request's trace ID, generated at the entry node or propagated from a
// forwarding peer. The finished trace — wall-clock phase spans for
// routing, store lookups, forward hops, queue wait, simulation, and
// store writes — is retained in a bounded per-node ring and served on
// GET /v1/traces/{id}. A forwarded run's response also carries
// X-Tsnoop-Trace-Spans (the owner's span list as JSON), which the
// entry node embeds into its own trace as remote_spans.
// Streaming responses are application/x-ndjson; a mid-stream failure
// appends a final {"error": "..."} line, since the status code has
// already been sent.
//
// /v1/grids and /v1/sweeps pass an admission gate before streaming: a
// node already at its in-flight cell budget answers 429 with a
// Retry-After hint instead of committing to a stream it cannot serve.

// maxBodyBytes bounds request bodies; a Spec is a few hundred bytes.
const maxBodyBytes = 1 << 20

// Cache-disposition values for the X-Tsnoop-Cache header.
const (
	CacheHit  = "hit"
	CacheJoin = "join"
	CacheMiss = "miss"
)

// NewHandler returns the service's HTTP API over sv. Every request is
// counted into the /metrics request series; configuring Config.Logger
// additionally emits one structured access-log record per request.
func NewHandler(sv *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	mux.HandleFunc("GET /readyz", sv.handleReadyz)
	mux.HandleFunc("GET /metrics", sv.handleMetrics)
	mux.HandleFunc("POST /v1/runs", sv.handleRuns)
	mux.HandleFunc("POST /v1/grids", sv.handleGrids)
	mux.HandleFunc("POST /v1/sweeps", sv.handleSweeps)
	mux.HandleFunc("GET /v1/jobs", sv.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", sv.handleJob)
	mux.HandleFunc("GET /v1/traces", sv.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", sv.handleTrace)
	return sv.instrument(mux)
}

// httpError writes a one-object JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readSpec decodes a (possibly sparse) Spec from the request body.
func readSpec(w http.ResponseWriter, r *http.Request) (spec.Spec, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return spec.Spec{}, false
	}
	s, err := spec.FromJSON(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return spec.Spec{}, false
	}
	return s, true
}

// statusFor maps a Do error to an HTTP status: validation errors are the
// client's fault, cancellations are the client hanging up, anything else
// is the simulation failing.
func statusFor(err error) int {
	if strings.HasPrefix(err.Error(), "spec: ") {
		return http.StatusBadRequest
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

// disposition renders a Result's cache path for the X-Tsnoop-Cache
// header.
func disposition(res Result) string {
	switch {
	case res.Cached:
		return CacheHit
	case res.Shared:
		return CacheJoin
	default:
		return CacheMiss
	}
}

func (sv *Service) handleRuns(w http.ResponseWriter, r *http.Request) {
	s, ok := readSpec(w, r)
	if !ok {
		return
	}
	// A request forwarded by a peer must be answered here: the sender
	// already routed it to this node's shard, and re-routing on a
	// divergent member list would loop.
	do := sv.Do
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		do = sv.DoLocal
	}
	res, err := do(r.Context(), s)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Tsnoop-Key", res.Key)
	h.Set("X-Tsnoop-Cache", disposition(res))
	if res.JobID != "" {
		h.Set("X-Tsnoop-Job", res.JobID)
	}
	if res.Remote != "" {
		h.Set("X-Tsnoop-Remote", res.Remote)
	}
	// Answering a forward: ship this node's span list back so the entry
	// node's trace shows the owner's side of the hop. Headers must go
	// out before the body, so the spans recorded so far are the set.
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		if spans := traceFrom(r.Context()).spansJSON(); spans != "" {
			h.Set(cluster.TraceSpansHeader, spans)
		}
	}
	w.Write(res.Data)
	io.WriteString(w, "\n")
}

// admit passes a streaming request through the cell-budget gate. On a
// shed it answers 429 with a Retry-After hint and returns ok=false; on
// admission the caller must invoke release when the stream ends.
func (sv *Service) admit(w http.ResponseWriter, route string, n int) (release func(), ok bool) {
	release, ok = sv.shed.Admit(route, n)
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(sv.shed.RetryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("service: %d in-flight cells at budget, retry later", sv.shed.Stats().Inflight))
	}
	return release, ok
}

// streamNDJSON drives a result stream into an NDJSON response, flushing
// per line so clients see cells as they finish.
func streamNDJSON[T any](w http.ResponseWriter, seq func(yield func(T, error) bool)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for v, err := range seq {
		if err != nil {
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		if err := enc.Encode(v); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (sv *Service) handleGrids(w http.ResponseWriter, r *http.Request) {
	s, ok := readSpec(w, r)
	if !ok {
		return
	}
	// An empty benchmark means the paper's five; validate the machine
	// shape against a concrete one so bad requests fail before the
	// stream commits a 200.
	probe := s
	if probe.Benchmark == "" {
		probe.Benchmark = spec.Benchmarks()[0]
	}
	if err := probe.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	e := harness.FromSpec(s)
	release, ok := sv.admit(w, "/v1/grids", len(e.Cells(s.Network)))
	if !ok {
		return
	}
	defer release()
	streamNDJSON(w, sv.StreamGrid(r.Context(), e, s.Network))
}

// sweepRequest is the /v1/sweeps body: a sweep kind plus the base spec
// (the spec's benchmark and network select the swept workload).
type sweepRequest struct {
	Sweep string          `json:"sweep"`
	Spec  json.RawMessage `json:"spec"`
}

func (sv *Service) handleSweeps(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("sweep request: %w", err))
		return
	}
	s := spec.Default()
	if len(req.Spec) > 0 {
		if s, err = spec.FromJSON(req.Spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := s.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	e := harness.FromSpec(s)
	sw, err := e.NewSweep(req.Sweep, s.Benchmark, s.Network)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := sv.admit(w, "/v1/sweeps", len(sw.Points))
	if !ok {
		return
	}
	defer release()
	streamNDJSON(w, sv.StreamPoints(r.Context(), sw.Points))
}

func (sv *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := sv.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (sv *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sv.Jobs())
}

// handleTraces lists this node's retained request traces, newest first.
// The in-flight request's own trace is not in the ring yet — traces
// land there only after their response finishes.
func (sv *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sv.traces.all())
}

func (sv *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := sv.traces.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tr)
}

// health is the /healthz document.
type health struct {
	Status string `json:"status"`
	// Version is the server's build identifier (tsnoop version); empty
	// when the binary was built without module metadata.
	Version string `json:"version,omitempty"`
	// UptimeSeconds counts whole seconds since the service was built.
	UptimeSeconds int64 `json:"uptime_seconds"`
	// ActiveJobs counts jobs currently queued or running.
	ActiveJobs int        `json:"active_jobs"`
	Store      StoreStats `json:"store"`
	Queue      QueueStats `json:"queue"`
	// Ready mirrors /readyz: false before serve is up and during drain.
	Ready bool `json:"ready"`
	// Cells is the streamed-cell admission gate (budget, in-flight, shed).
	Cells cluster.AdmissionStats `json:"cells"`
	// Cluster is the peer-ring snapshot; omitted on a single node.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

func (sv *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	qs := sv.QueueStats()
	ready, _ := sv.Ready()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(health{
		Status:        "ok",
		Version:       sv.version,
		UptimeSeconds: int64(time.Since(sv.started).Seconds()),
		ActiveJobs:    qs.Queued + qs.Running,
		Store:         sv.StoreStats(),
		Queue:         qs,
		Ready:         ready,
		Cells:         sv.ShedStats(),
		Cluster:       sv.ClusterStats(),
	})
}

// handleReadyz is the load-balancer gate, distinct from /healthz: the
// process is alive (healthz answers 200) the whole time readyz says
// 503 — before serve finishes binding its listener and ring, and again
// once a drain begins, so balancers stop routing before the listener
// closes.
func (sv *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := sv.Ready()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unavailable", "reason": reason})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}
