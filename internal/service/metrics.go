package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/fault"
)

// Service observability: a hand-rolled Prometheus text exposition on
// GET /metrics and a structured access log, both stdlib-only. The
// exposition follows text format 0.0.4 (the format every scraper
// accepts) and is rendered in a fixed order — families in the order
// written below, labelled series sorted by label value — so two scrapes
// of an idle service are byte-identical and tests can compare output
// textually.
//
// None of this touches the simulator: request counting and span timing
// are wall-clock concerns of the HTTP layer, kept out of internal/sim
// and internal/obs by construction.

// httpMetrics counts finished HTTP requests by route pattern and status
// code. Routes come from http.Request.Pattern (the registered mux
// pattern, e.g. "GET /v1/jobs/{id}"), so path parameters never explode
// the label space.
type httpMetrics struct {
	mu       sync.Mutex
	requests map[routeCode]int64
}

type routeCode struct {
	route string
	code  int
}

func (m *httpMetrics) observe(route string, code int) {
	m.mu.Lock()
	if m.requests == nil {
		m.requests = make(map[routeCode]int64)
	}
	m.requests[routeCode{route, code}]++
	m.mu.Unlock()
}

// snapshot returns the request counters sorted by route then code.
func (m *httpMetrics) snapshot() ([]routeCode, map[routeCode]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]routeCode, 0, len(m.requests))
	counts := make(map[routeCode]int64, len(m.requests))
	for k, v := range m.requests {
		keys = append(keys, k)
		counts[k] = v
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	return keys, counts
}

// observedWriter wraps a ResponseWriter to record the status code and
// body size. It implements http.Flusher unconditionally (a no-op when
// the underlying writer cannot flush) because streamNDJSON type-asserts
// for it — wrapping must not break per-cell streaming.
type observedWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *observedWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *observedWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *observedWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API mux with request tracing, request counting,
// and (when a logger is configured) one access-log record per finished
// request. Because it wraps the WHOLE mux — not individual handlers —
// every response takes exactly one pass through this function: 404s,
// 429 sheds, forward-error fallbacks, and streamed answers all count
// once and log once, with the same trace ID the response header
// carries.
func (sv *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The http.delay failpoint stalls the response before the handler
		// runs — the slow-server shape client timeouts and slowloris
		// hardening are tested against.
		if f := fault.Active(); f != nil {
			if d := f.Delay(fault.HTTPDelay); d > 0 {
				time.Sleep(d)
			}
		}
		start := time.Now()
		// A forwarded request arrives with the entry node's trace ID;
		// anything else gets a fresh one. The ID is echoed on the
		// response before the handler runs, so even errored responses
		// carry it.
		id := r.Header.Get(cluster.TraceHeader)
		if id == "" {
			id = newTraceID()
		}
		at := newActiveTrace(id, sv.nodeName(), r.Method, r.URL.Path, start)
		r = r.WithContext(withTrace(r.Context(), at))
		w.Header().Set(cluster.TraceHeader, id)
		ow := &observedWriter{ResponseWriter: w}
		next.ServeHTTP(ow, r)
		if ow.status == 0 {
			ow.status = http.StatusOK
		}
		// r.Pattern is set by the mux during ServeHTTP; unmatched
		// requests (404s) fall into one catch-all series.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		sv.httpm.observe(route, ow.status)
		sv.traces.add(at.finish(route, ow.status, time.Since(start)))
		if sv.logger != nil {
			sv.logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", ow.status,
				"bytes", ow.bytes,
				"dur_ms", time.Since(start).Milliseconds(),
				"trace", id,
			)
		}
	})
}

// nodeName is this node's identity on its traces: the cluster ring
// address, or empty on a single-node service.
func (sv *Service) nodeName() string {
	if sv.cluster == nil {
		return ""
	}
	return sv.cluster.Self()
}

// breakerStateValue encodes a breaker state name for the
// tsnoop_cluster_breaker_state gauge.
func breakerStateValue(state string) int {
	switch state {
	case cluster.BreakerOpen:
		return 1
	case cluster.BreakerHalfOpen:
		return 2
	}
	return 0
}

// promFamily writes one metric family header.
func promFamily(b *strings.Builder, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// handleMetrics renders the Prometheus text exposition.
func (sv *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ss := sv.StoreStats()
	qs := sv.QueueStats()

	var spans JobSpans
	for _, j := range sv.Jobs() {
		spans.QueueWaitUS += j.Spans.QueueWaitUS
		spans.SimulateUS += j.Spans.SimulateUS
		spans.StoreWriteUS += j.Spans.StoreWriteUS
	}

	var b strings.Builder
	promFamily(&b, "tsnoop_uptime_seconds", "Seconds since the service started.", "gauge")
	fmt.Fprintf(&b, "tsnoop_uptime_seconds %d\n", int64(time.Since(sv.started).Seconds()))

	promFamily(&b, "tsnoop_store_hits_total", "Result-store lookups answered from memory or disk.", "counter")
	fmt.Fprintf(&b, "tsnoop_store_hits_total %d\n", ss.Hits)
	promFamily(&b, "tsnoop_store_misses_total", "Result-store lookups that found nothing.", "counter")
	fmt.Fprintf(&b, "tsnoop_store_misses_total %d\n", ss.Misses)
	promFamily(&b, "tsnoop_store_puts_total", "Results written to the store.", "counter")
	fmt.Fprintf(&b, "tsnoop_store_puts_total %d\n", ss.Puts)
	promFamily(&b, "tsnoop_store_errors_total", "Failed store reads and writes.", "counter")
	fmt.Fprintf(&b, "tsnoop_store_errors_total %d\n", ss.Errors)
	promFamily(&b, "tsnoop_store_corrupt_total", "Entries that failed integrity verification and were quarantined.", "counter")
	fmt.Fprintf(&b, "tsnoop_store_corrupt_total %d\n", ss.Corrupt)
	promFamily(&b, "tsnoop_store_entries", "Results resident in the in-memory LRU.", "gauge")
	fmt.Fprintf(&b, "tsnoop_store_entries %d\n", ss.Entries)

	promFamily(&b, "tsnoop_queue_jobs", "Retained jobs by state.", "gauge")
	fmt.Fprintf(&b, "tsnoop_queue_jobs{state=\"queued\"} %d\n", qs.Queued)
	fmt.Fprintf(&b, "tsnoop_queue_jobs{state=\"running\"} %d\n", qs.Running)
	fmt.Fprintf(&b, "tsnoop_queue_jobs{state=\"done\"} %d\n", qs.Done)
	fmt.Fprintf(&b, "tsnoop_queue_jobs{state=\"failed\"} %d\n", qs.Failed)
	promFamily(&b, "tsnoop_queue_joined_total", "Requests answered by joining an in-flight job.", "counter")
	fmt.Fprintf(&b, "tsnoop_queue_joined_total %d\n", qs.Joined)
	promFamily(&b, "tsnoop_jobs_active", "Jobs currently queued or running.", "gauge")
	fmt.Fprintf(&b, "tsnoop_jobs_active %d\n", qs.Queued+qs.Running)
	promFamily(&b, "tsnoop_panics_recovered_total", "Seed-worker panics recovered into job errors or invisible retries.", "counter")
	fmt.Fprintf(&b, "tsnoop_panics_recovered_total %d\n", qs.PanicsRecovered)

	promFamily(&b, "tsnoop_job_phase_us", "Wall-clock microseconds spent per job phase, summed over retained jobs.", "gauge")
	fmt.Fprintf(&b, "tsnoop_job_phase_us{phase=\"queue_wait\"} %d\n", spans.QueueWaitUS)
	fmt.Fprintf(&b, "tsnoop_job_phase_us{phase=\"simulate\"} %d\n", spans.SimulateUS)
	fmt.Fprintf(&b, "tsnoop_job_phase_us{phase=\"store_write\"} %d\n", spans.StoreWriteUS)

	keys, counts := sv.httpm.snapshot()
	promFamily(&b, "tsnoop_http_requests_total", "Finished HTTP requests by route pattern and status.", "counter")
	for _, k := range keys {
		fmt.Fprintf(&b, "tsnoop_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, counts[k])
	}

	// Admission gate: routes are pre-registered at construction, so the
	// series set is fixed from the first scrape.
	as := sv.ShedStats()
	promFamily(&b, "tsnoop_cells_budget", "Streamed-cell admission budget (0 = unlimited).", "gauge")
	fmt.Fprintf(&b, "tsnoop_cells_budget %d\n", as.Budget)
	promFamily(&b, "tsnoop_cells_inflight", "Cells admitted to in-flight streams.", "gauge")
	fmt.Fprintf(&b, "tsnoop_cells_inflight %d\n", as.Inflight)
	promFamily(&b, "tsnoop_shed_total", "Streaming requests refused with 429 by route.", "counter")
	for _, s := range as.Shed {
		fmt.Fprintf(&b, "tsnoop_shed_total{route=%q} %d\n", s.Route, s.Count)
	}

	// Cluster counters: peers are pre-registered from the member list,
	// so every peer's series exists (at zero) from the first scrape.
	if cs := sv.ClusterStats(); cs != nil {
		promFamily(&b, "tsnoop_cluster_members", "Members in the static peer ring, including this node.", "gauge")
		fmt.Fprintf(&b, "tsnoop_cluster_members %d\n", len(cs.Members))
		promFamily(&b, "tsnoop_cluster_forwards_total", "Misses forwarded to their owning peer.", "counter")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "tsnoop_cluster_forwards_total{peer=%q} %d\n", p.Peer, p.Forwards)
		}
		promFamily(&b, "tsnoop_cluster_forward_hits_total", "Forwards the owner answered from its store.", "counter")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "tsnoop_cluster_forward_hits_total{peer=%q} %d\n", p.Peer, p.Hits)
		}
		promFamily(&b, "tsnoop_cluster_forward_errors_total", "Forwards that failed every attempt and degraded to local compute.", "counter")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "tsnoop_cluster_forward_errors_total{peer=%q} %d\n", p.Peer, p.Errors)
		}
		promFamily(&b, "tsnoop_cluster_replicated_total", "Forwarded results replicated into the local LRU front.", "counter")
		fmt.Fprintf(&b, "tsnoop_cluster_replicated_total %d\n", cs.Replicated)
		promFamily(&b, "tsnoop_cluster_breaker_state", "Per-peer circuit-breaker state: 0 closed, 1 open, 2 half-open.", "gauge")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "tsnoop_cluster_breaker_state{peer=%q} %d\n", p.Peer, breakerStateValue(p.Breaker))
		}
		promFamily(&b, "tsnoop_cluster_breaker_trips_total", "Per-peer breaker transitions to open.", "counter")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "tsnoop_cluster_breaker_trips_total{peer=%q} %d\n", p.Peer, p.BreakerTrips)
		}
		promFamily(&b, "tsnoop_cluster_breaker_skips_total", "Forwards skipped because the peer's breaker was open.", "counter")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "tsnoop_cluster_breaker_skips_total{peer=%q} %d\n", p.Peer, p.BreakerSkips)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
