package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/fault"
	"tsnoop/internal/harness"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// startChaosCluster boots n federated nodes like startCluster, but each
// node persists to its own disk directory (so planted corruption is
// actually read back) and runs hair-trigger circuit breakers (threshold
// 1, short cooldown) so a single dead-peer forward trips open and
// half-open probes happen within the test's lifetime.
func startChaosCluster(t *testing.T, n int, sim SimFunc, dirs []string) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	members := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		c, err := cluster.New(cluster.Config{
			Self:             members[i],
			Members:          members,
			Client:           cluster.NewHTTPClient(cluster.DefaultTimeouts()),
			Retries:          -1, // loopback: a refused connection will not get better
			Backoff:          time.Millisecond,
			BreakerThreshold: 1,
			BreakerCooldown:  100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sv, err := New(Config{Dir: dirs[i], Workers: 2, Sim: sim, Cluster: c})
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: NewHandler(sv)}
		go srv.Serve(lns[i])
		sv.SetReady(true, "")
		nodes[i] = &clusterNode{sv: sv, c: c, addr: members[i], url: "http://" + members[i], srv: srv}
		t.Cleanup(func() { srv.Close() })
	}
	return nodes
}

// plantCorruptEntry writes one bad on-disk entry for key into a store
// directory, shaped per kind: "legacy" (headerless but plausible JSON —
// served as-is it would change client bytes, which is exactly what the
// byte-identity assertion below would catch), "truncated" (half an
// encoded entry), or "garbage" (random junk).
func plantCorruptEntry(t *testing.T, dir, key, kind string) {
	t.Helper()
	shard := filepath.Join(dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	var raw []byte
	switch kind {
	case "legacy":
		raw = []byte(`{"runtime_ps":1}`)
	case "truncated":
		enc := encodeEntry([]byte(`{"runtime_ps":123456789}`))
		raw = enc[:len(enc)/2]
	default:
		raw = []byte("\x00\xffnot a store entry")
	}
	if err := os.WriteFile(filepath.Join(shard, key[2:]+".json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// The chaos acceptance bar for the whole hardening layer: a 3-node
// cluster under a seeded fault schedule — injected forward refusals,
// latency, a 5xx, a truncated peer answer, one seed panic — plus
// planted on-disk corruption and a peer killed mid-grid must stream
// grid and sweep NDJSON byte-identical to an unperturbed single-node
// service. Every degradation costs recomputation; none may change a
// client-visible byte or kill the process.
func TestClusterChaosByteIdentity(t *testing.T) {
	s := spec.New("barnes", spec.WithNodes(4), spec.WithWarmup(60), spec.WithQuota(120),
		spec.WithSeeds(2), spec.WithPerturbNS(3))
	sweepBody, _ := json.Marshal(map[string]any{"sweep": "blocksize", "spec": json.RawMessage(s.JSON())})

	// The single-node reference runs before the schedule is enabled: its
	// bytes are the ground truth chaos must reproduce.
	_, ref := newTestServer(t, "", nil)
	wantGrid := readBody(t, postJSON(t, ref.URL+"/v1/grids", s.JSON()))
	wantSweep := readBody(t, postJSON(t, ref.URL+"/v1/sweeps", sweepBody))

	// Plant three flavors of rot in node 0's store for real cell keys.
	// Node 0 is the entry node, and its local store is consulted for
	// every key (own shard or replicated-hit check) — with a cold LRU
	// each planted entry is read from disk, refused, and quarantined.
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	e := harness.FromSpec(s)
	cells := e.Cells(s.Network)
	if len(cells) < 3 {
		t.Fatalf("grid has %d cells, need >= 3 to plant corruption", len(cells))
	}
	for i, kind := range []string{"legacy", "truncated", "garbage"} {
		plantCorruptEntry(t, dirs[0], e.CellSpec(cells[i]).Canonical(), kind)
	}

	// The seeded schedule: two refused forwards, two slowed ones, one
	// injected 502, one truncated peer answer, one seed panic. All
	// decisions are pure functions of (seed, site, call index), so the
	// schedule is reproducible run to run.
	fs, err := fault.Parse("seed=42;queue.seed.panic=times:1;cluster.forward.refuse=times:2;" +
		"cluster.forward.latency=times:2@5ms;cluster.forward.5xx=times:1;cluster.forward.truncate=times:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(fs)
	t.Cleanup(fault.Disable)

	// The first simulation anywhere in the fleet hard-kills node 2.
	var kill atomic.Value // func()
	var once sync.Once
	sim := func(ctx context.Context, sp spec.Spec) (*stats.Run, error) {
		if f, ok := kill.Load().(func()); ok {
			once.Do(f)
		}
		return sp.RunContext(ctx)
	}
	nodes := startChaosCluster(t, 3, SimFunc(sim), dirs)
	kill.Store(func() { nodes[2].srv.Close() })

	resp := postJSON(t, nodes[0].url+"/v1/grids", s.JSON())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos grid: %s", resp.Status)
	}
	if got := readBody(t, resp); !bytes.Equal(got, wantGrid) {
		t.Fatalf("chaos grid differs from the unperturbed single node:\n got: %s\nwant: %s", got, wantGrid)
	}

	// The sweep enters via node 1 (node 2 is dead): keys owned by the
	// corpse degrade through breaker or forward error to local compute.
	sweep := postJSON(t, nodes[1].url+"/v1/sweeps", sweepBody)
	if sweep.StatusCode != http.StatusOK {
		t.Fatalf("chaos sweep: %s", sweep.Status)
	}
	if got := readBody(t, sweep); !bytes.Equal(got, wantSweep) {
		t.Fatalf("chaos sweep differs from the unperturbed single node:\n got: %s\nwant: %s", got, wantSweep)
	}

	// Every planted entry was quarantined (not served, not erased) and
	// counted; the shard files are gone, the quarantine copies exist.
	ss := nodes[0].sv.StoreStats()
	if ss.Corrupt != 3 {
		t.Errorf("node 0 corrupt counter = %d, want 3", ss.Corrupt)
	}
	q, err := os.ReadDir(filepath.Join(dirs[0], quarantineDir))
	if err != nil || len(q) != 3 {
		t.Errorf("quarantine holds %d entries (%v), want 3", len(q), err)
	}

	// The injected panic was recovered (and invisibly retried) exactly
	// once, somewhere in the fleet.
	var panics int64
	for _, nd := range nodes {
		panics += nd.sv.QueueStats().PanicsRecovered
	}
	if panics != 1 {
		t.Errorf("fleet recovered %d panics, want 1", panics)
	}

	// Dead-peer forwards tripped at least one breaker; every peer series
	// reports a legal state.
	var trips int64
	for _, nd := range nodes[:2] {
		for _, p := range nd.sv.ClusterStats().Peers {
			trips += p.BreakerTrips
			switch p.Breaker {
			case cluster.BreakerClosed, cluster.BreakerOpen, cluster.BreakerHalfOpen:
			default:
				t.Errorf("peer %s reports breaker state %q", p.Peer, p.Breaker)
			}
		}
	}
	if trips < 1 {
		t.Errorf("no breaker tripped under chaos (trips = %d)", trips)
	}

	// The schedule itself confirms the injections fired as scheduled.
	for _, st := range fs.Stats() {
		switch st.Site {
		case "queue.seed.panic":
			if st.Fired != 1 {
				t.Errorf("%s fired %d times, want 1", st.Site, st.Fired)
			}
		case "cluster.forward.refuse", "cluster.forward.latency":
			if st.Fired != 2 {
				t.Errorf("%s fired %d times, want 2", st.Site, st.Fired)
			}
		}
	}
}
