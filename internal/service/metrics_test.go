package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tsnoop/internal/cluster"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
)

// fastSim is a sim stub with a tiny but measurable duration, so the
// simulate span is provably nonzero.
func fastSim(ctx context.Context, s spec.Spec) (*stats.Run, error) {
	time.Sleep(time.Millisecond)
	return &stats.Run{Runtime: 5}, nil
}

// scrape fetches and returns the /metrics exposition.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample line's value from an exposition.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, body)
	return 0
}

// The store counters drive the exposition: a fresh submission is a miss
// plus a put, a repeat is a hit, and every finished request lands in
// the per-route series.
func TestMetricsExpositionCountersMove(t *testing.T) {
	_, srv := newTestServer(t, "", fastSim)
	before := scrape(t, srv.URL)
	if v := metricValue(t, before, "tsnoop_store_hits_total"); v != 0 {
		t.Fatalf("fresh service hits = %d, want 0", v)
	}

	body := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON()
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srv.URL+"/v1/runs", body)
		io.Copy(io.Discard, resp.Body)
	}

	after := scrape(t, srv.URL)
	if v := metricValue(t, after, "tsnoop_store_misses_total"); v != 1 {
		t.Errorf("misses = %d, want 1", v)
	}
	if v := metricValue(t, after, "tsnoop_store_hits_total"); v != 1 {
		t.Errorf("hits = %d, want 1", v)
	}
	if v := metricValue(t, after, "tsnoop_store_puts_total"); v != 1 {
		t.Errorf("puts = %d, want 1", v)
	}
	if !strings.Contains(after, `tsnoop_http_requests_total{route="POST /v1/runs",code="200"} 2`) {
		t.Errorf("per-route request counter missing:\n%s", after)
	}
	if !strings.Contains(after, `tsnoop_queue_jobs{state="done"} 1`) {
		t.Errorf("queue job gauge missing:\n%s", after)
	}
	// Phase spans: the sim stub sleeps 1ms, so simulate_us must be
	// positive once the job is done.
	if !strings.Contains(after, `tsnoop_job_phase_us{phase="simulate"}`) {
		t.Errorf("phase span family missing:\n%s", after)
	}
}

// Two scrapes of an idle service must be byte-identical apart from the
// uptime gauge — the exposition order is pinned, not map-ordered.
func TestMetricsExpositionDeterministic(t *testing.T) {
	_, srv := newTestServer(t, "", fastSim)
	resp := postJSON(t, srv.URL+"/v1/runs", spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON())
	io.Copy(io.Discard, resp.Body)

	strip := func(s string) string {
		var b strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "tsnoop_uptime_seconds ") ||
				strings.HasPrefix(line, `tsnoop_http_requests_total{route="GET /metrics"`) {
				continue
			}
			b.WriteString(line)
			b.WriteString("\n")
		}
		return b.String()
	}
	a := scrape(t, srv.URL)
	b := scrape(t, srv.URL)
	if strip(a) != strip(b) {
		t.Errorf("idle scrapes differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// /healthz carries the build version, uptime, and active-job count.
func TestHealthzVersionUptimeActive(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	sv, err := New(Config{Version: "v1.2.3-test", Sim: func(ctx context.Context, s spec.Spec) (*stats.Run, error) {
		<-release
		return &stats.Run{Runtime: 5}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sv))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	getHealth := func() health {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := getHealth()
	if h.Version != "v1.2.3-test" {
		t.Errorf("version = %q, want v1.2.3-test", h.Version)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %d, want >= 0", h.UptimeSeconds)
	}
	if h.ActiveJobs != 0 {
		t.Errorf("idle active jobs = %d, want 0", h.ActiveJobs)
	}

	// A gated job shows up as active until released.
	go func() {
		_, _ = sv.Do(context.Background(), spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for getHealth().ActiveJobs != 1 {
		if time.Now().After(deadline) {
			t.Fatal("active job never appeared in /healthz")
		}
		time.Sleep(5 * time.Millisecond)
	}
	once.Do(func() { close(release) })
}

// A finished job reports its phase spans: queue wait, simulate (>= the
// stub's sleep), and store write.
func TestJobSpansRecorded(t *testing.T) {
	sv, srv := newTestServer(t, t.TempDir(), fastSim)
	resp := postJSON(t, srv.URL+"/v1/runs", spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50)).JSON())
	jobID := resp.Header.Get("X-Tsnoop-Job")
	io.Copy(io.Discard, resp.Body)

	job, ok := sv.Job(jobID)
	if !ok {
		t.Fatalf("job %s not found", jobID)
	}
	if job.Spans.SimulateUS < 1000 {
		t.Errorf("simulate span = %dus, want >= 1000 (the stub sleeps 1ms)", job.Spans.SimulateUS)
	}
	if job.Spans.QueueWaitUS < 0 || job.Spans.StoreWriteUS < 0 {
		t.Errorf("negative span: %+v", job.Spans)
	}

	// The spans ride the job JSON.
	jr, err := http.Get(srv.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	raw, _ := io.ReadAll(jr.Body)
	for _, field := range []string{"queue_wait_us", "simulate_us", "store_write_us"} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("job JSON missing %s:\n%s", field, raw)
		}
	}
}

// Config.Logger receives one structured access-log record per request,
// carrying the route pattern and status.
func TestAccessLogRecords(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	sv, err := New(Config{Sim: fastSim, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(sv))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{"method=GET", `route="GET /healthz"`, "status=200"} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %s:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// The queue strips the metrics knob: an instrumented submission is the
// same experiment, keyed and stored identically to the bare one, and
// the stored payload never grows a metrics block.
func TestQueueStripsMetricsKnob(t *testing.T) {
	sv, err := New(Config{Sim: fastSim})
	if err != nil {
		t.Fatal(err)
	}
	bare := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50))
	instrumented := spec.New("barnes", spec.WithNodes(4), spec.WithQuota(50), spec.WithMetrics())

	r1, err := sv.Do(context.Background(), instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key != bare.Canonical() {
		t.Errorf("instrumented key %s != bare canonical %s", r1.Key, bare.Canonical())
	}
	if bytes.Contains(r1.Data, []byte(`"metrics"`)) {
		t.Errorf("service result carries a metrics block:\n%s", r1.Data)
	}
	r2, err := sv.Do(context.Background(), bare)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("bare submission after instrumented one should be a store hit")
	}
	if !bytes.Equal(r1.Data, r2.Data) {
		t.Error("instrumented and bare payloads differ under one key")
	}
}

// Store read/write failures land in the errors counter.
func TestStoreErrorsCounted(t *testing.T) {
	st, err := OpenStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get("not-a-key"); err == nil {
		t.Fatal("malformed key should error")
	}
	if err := st.Put("also-not-a-key", nil); err == nil {
		t.Fatal("malformed key should error")
	}
	if got := st.Stats().Errors; got != 2 {
		t.Errorf("errors = %d, want 2", got)
	}
}

// The hardening families exist (at zero) from the first scrape: the
// corrupt and panic counters always, the per-peer breaker series on a
// cluster member — pre-registered, never appearing mid-flight.
func TestMetricsHardeningFamiliesPreRegistered(t *testing.T) {
	_, srv := newTestServer(t, "", fastSim)
	body := scrape(t, srv.URL)
	if v := metricValue(t, body, "tsnoop_store_corrupt_total"); v != 0 {
		t.Errorf("fresh corrupt counter = %d, want 0", v)
	}
	if v := metricValue(t, body, "tsnoop_panics_recovered_total"); v != 0 {
		t.Errorf("fresh panic counter = %d, want 0", v)
	}

	self := "127.0.0.1:1"
	peer := "127.0.0.1:2"
	cl, err := cluster.New(cluster.Config{Self: self, Members: []string{self, peer}})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := New(Config{Workers: 1, Sim: fastSim, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	csrv := httptest.NewServer(NewHandler(sv))
	defer csrv.Close()
	body = scrape(t, csrv.URL)
	for _, want := range []string{
		`tsnoop_cluster_breaker_state{peer="127.0.0.1:2"} 0`,
		`tsnoop_cluster_breaker_trips_total{peer="127.0.0.1:2"} 0`,
		`tsnoop_cluster_breaker_skips_total{peer="127.0.0.1:2"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("breaker series %q missing from first scrape:\n%s", want, body)
		}
	}
}
