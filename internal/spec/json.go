package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON renders the Spec as its canonical JSON object. Every field is
// emitted explicitly under a stable snake_case name, so stored specs
// stay readable as the defaults evolve, and FromJSON(s.JSON()) == s.
// (Exception: instrumentation knobs that Normalize clears — currently
// only Verify — are omitted when false, so their introduction does not
// perturb Canonical() hashes and existing result stores stay valid.)
func (s Spec) JSON() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is a flat struct of marshal-safe fields.
		panic("spec: marshal failed: " + err.Error())
	}
	return data
}

// FromJSON parses a JSON object back into a Spec. Absent fields keep
// the Default values (so hand-written spec files may be sparse), and
// unknown fields are an error rather than silently ignored.
func FromJSON(data []byte) (Spec, error) {
	s := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after the JSON object")
	}
	return s, nil
}
