// Package spec defines the experiment configuration surface of the
// library: one declarative value, Spec, that names everything a single
// simulation needs — benchmark, protocol, network, machine size, seeds,
// phase quotas, and the timestamp-snooping design knobs — and that the
// rest of the system consumes instead of ad-hoc parameter lists or
// mutation hooks.
//
// A Spec is built with functional options,
//
//	s := spec.New("OLTP", spec.WithProtocol("TS-Snoop"), spec.WithNodes(32))
//
// validated in exactly one place (Validate), and round-trips losslessly
// to JSON (JSON / FromJSON) and to a command-line flag set (Bind / Args /
// FromArgs), so programs, files, and CLI invocations all speak the same
// configuration language. Spec.Run executes it.
package spec

import (
	"fmt"
	"slices"

	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// Benchmarks lists the paper's workload names in presentation order.
func Benchmarks() []string { return workload.Names() }

// Protocols lists the protocol names in the paper's presentation order.
var Protocols = []string{system.ProtoTSSnoop, system.ProtoDirClassic, system.ProtoDirOpt}

// Networks lists the network names in the paper's presentation order.
var Networks = []string{system.NetButterfly, system.NetTorus}

// Spec is one experiment configuration. The zero value is not runnable;
// construct Specs with New or Default so the machine defaults (slack 1,
// one token per port, prefetch on) are in place, then adjust fields or
// apply options.
//
// Field conventions: 0 means "use the default" for Warmup, Quota,
// QuotaScale, WarmupScale, Workers, BlockBytes, and CacheBytes. A
// negative Warmup requests an explicitly empty warm-up phase.
type Spec struct {
	// Benchmark is a workload name: a paper benchmark (OLTP, DSS, apache,
	// altavista, barnes) or a scheme name such as trace:<path>.
	Benchmark string `json:"benchmark"`
	// Protocol is TS-Snoop, DirClassic, or DirOpt.
	Protocol string `json:"protocol"`
	// Network is butterfly or torus.
	Network string `json:"network"`
	// Nodes is the processor count (16 in the paper).
	Nodes int `json:"nodes"`

	// Seed drives the workload and perturbation randomness.
	Seed uint64 `json:"seed"`
	// Seeds is the number of perturbed copies Run executes (seed, seed+1,
	// ...); the minimum-runtime run is reported, the paper's rule.
	Seeds int `json:"seeds"`
	// Workers bounds concurrent simulations (0 = one per CPU, 1 = serial).
	Workers int `json:"workers"`

	// Warmup is the warm-up memory operations per processor (0 = default,
	// negative = explicitly none).
	Warmup int `json:"warmup"`
	// Quota is the measured memory operations per processor (0 = the
	// benchmark's default).
	Quota int `json:"quota"`
	// QuotaScale scales the default measured quota (0 or 1 = full scale).
	QuotaScale float64 `json:"quota_scale"`
	// WarmupScale scales the default warm-up quota (0 or 1 = full scale).
	WarmupScale float64 `json:"warmup_scale"`

	// PerturbNS, when positive, adds uniform random delay in [0, PerturbNS)
	// nanoseconds to protocol responses (the stability methodology).
	PerturbNS int64 `json:"perturb_ns"`

	// Timestamp-snooping design knobs (the Section 6 ablations).
	Slack           int  `json:"slack"`
	TokensPerPort   int  `json:"tokens_per_port"`
	Prefetch        bool `json:"prefetch"`
	EarlyProcessing bool `json:"early_processing"`
	Contention      bool `json:"contention"`
	MOSI            bool `json:"mosi"`
	Multicast       bool `json:"multicast"`
	// PredictorSize bounds the multicast owner predictor (0 = unbounded,
	// negative = disabled).
	PredictorSize int `json:"predictor_size"`

	// Verify re-enables the address network's internal ordering
	// assertions for TS-Snoop runs (tsnet.Config.Verify). Off by
	// default: the assertions are pure instrumentation — they can never
	// change a run's statistics — and cost an allocation per broadcast
	// copy, so experiment runs skip them. The network and protocol test
	// suites keep them on independently of this knob.
	//
	// The field is omitted from JSON when false — the one exception to
	// the emit-every-field rule — so the canonical rendering (and hence
	// every Canonical() store key) of all pre-existing specs is
	// unchanged by the knob's introduction: result stores stay warm
	// across the upgrade.
	Verify bool `json:"verify,omitempty"`

	// Metrics attaches an obs.Probe to the simulation and surfaces its
	// deterministic telemetry snapshot as the result's "metrics" block.
	// Like Verify, it is pure instrumentation — the probe records
	// counters keyed to simulated time and can never change a run's
	// statistics — and like Verify it follows the omitempty exception:
	// Normalize clears it, so enabling telemetry never changes a
	// Canonical() store key.
	Metrics bool `json:"metrics,omitempty"`

	// Spans additionally enables transaction-lifecycle span recording:
	// the probe aggregates per-phase latency histograms, surfaced as
	// the metrics block's "latency_breakdown" section. Pure
	// instrumentation like Verify and Metrics, with the same omitempty
	// exception: Normalize clears it, so tracing a spec never changes
	// its Canonical() store key.
	Spans bool `json:"spans,omitempty"`

	// Cache geometry overrides (0 = the paper's 4 MB / 64 B default).
	BlockBytes int `json:"block_bytes"`
	CacheBytes int `json:"cache_bytes"`
}

// Option adjusts a Spec under construction.
type Option func(*Spec)

// Default returns the paper's default single-run configuration: OLTP on
// timestamp snooping over the 16-node butterfly, seed 1, one run.
func Default() Spec {
	return Spec{
		Benchmark:     "OLTP",
		Protocol:      system.ProtoTSSnoop,
		Network:       system.NetButterfly,
		Nodes:         16,
		Seed:          1,
		Seeds:         1,
		QuotaScale:    1,
		WarmupScale:   1,
		Slack:         1,
		TokensPerPort: 1,
		Prefetch:      true,
	}
}

// New builds a Spec for a benchmark from the defaults plus options.
func New(benchmark string, opts ...Option) Spec {
	s := Default()
	s.Benchmark = benchmark
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// WithProtocol selects the coherence protocol.
func WithProtocol(name string) Option { return func(s *Spec) { s.Protocol = name } }

// WithNetwork selects the interconnect.
func WithNetwork(name string) Option { return func(s *Spec) { s.Network = name } }

// WithNodes sets the processor count.
func WithNodes(n int) Option { return func(s *Spec) { s.Nodes = n } }

// WithSeed sets the base random seed.
func WithSeed(seed uint64) Option { return func(s *Spec) { s.Seed = seed } }

// WithSeeds sets how many perturbed copies Run executes.
func WithSeeds(n int) Option { return func(s *Spec) { s.Seeds = n } }

// WithWorkers bounds concurrent simulations (0 = one per CPU).
func WithWorkers(n int) Option { return func(s *Spec) { s.Workers = n } }

// WithWarmup sets the warm-up quota per processor (negative = none).
func WithWarmup(n int) Option { return func(s *Spec) { s.Warmup = n } }

// WithQuota sets the measured quota per processor.
func WithQuota(n int) Option { return func(s *Spec) { s.Quota = n } }

// WithQuotaScale scales the default measured quota.
func WithQuotaScale(f float64) Option { return func(s *Spec) { s.QuotaScale = f } }

// WithWarmupScale scales the default warm-up quota.
func WithWarmupScale(f float64) Option { return func(s *Spec) { s.WarmupScale = f } }

// WithPerturbNS sets the maximum response perturbation in nanoseconds.
func WithPerturbNS(ns int64) Option { return func(s *Spec) { s.PerturbNS = ns } }

// WithSlack sets the initial slack S (TS-Snoop).
func WithSlack(n int) Option { return func(s *Spec) { s.Slack = n } }

// WithTokensPerPort sets the token count per switch port (TS-Snoop).
func WithTokensPerPort(n int) Option { return func(s *Spec) { s.TokensPerPort = n } }

// WithoutPrefetch disables optimization 1 (TS-Snoop).
func WithoutPrefetch() Option { return func(s *Spec) { s.Prefetch = false } }

// WithEarlyProcessing enables optimization 2 (TS-Snoop).
func WithEarlyProcessing() Option { return func(s *Spec) { s.EarlyProcessing = true } }

// WithContention enables switch contention modelling (TS-Snoop).
func WithContention() Option { return func(s *Spec) { s.Contention = true } }

// WithMOSI upgrades TS-Snoop from MSI to MOSI (the Owned state).
func WithMOSI() Option { return func(s *Spec) { s.MOSI = true } }

// WithMulticast enables multicast snooping for GETS (TS-Snoop).
func WithMulticast() Option { return func(s *Spec) { s.Multicast = true } }

// WithPredictorSize bounds the multicast owner predictor.
func WithPredictorSize(n int) Option { return func(s *Spec) { s.PredictorSize = n } }

// WithVerify re-enables the address network's internal ordering
// assertions (instrumentation only; results are identical either way).
func WithVerify() Option { return func(s *Spec) { s.Verify = true } }

// WithMetrics attaches the deterministic telemetry probe to the run
// (instrumentation only; statistics are identical either way).
func WithMetrics() Option { return func(s *Spec) { s.Metrics = true } }

// WithSpans enables transaction-lifecycle span recording and the
// latency_breakdown metrics section (instrumentation only; statistics
// are identical either way).
func WithSpans() Option { return func(s *Spec) { s.Spans = true } }

// WithBlockBytes overrides the cache block size.
func WithBlockBytes(n int) Option { return func(s *Spec) { s.BlockBytes = n } }

// WithCacheBytes overrides the per-node cache capacity.
func WithCacheBytes(n int) Option { return func(s *Spec) { s.CacheBytes = n } }

// Validate checks the whole Spec — names and machine shape — and returns
// a one-line error naming the offending field and the valid values. It
// is the single validation point behind Run, the harness, and every
// tsnoop subcommand.
func (s Spec) Validate() error {
	if err := workload.CheckName(s.Benchmark); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return s.validateMachine()
}

// validateMachine checks everything except the benchmark name, for
// callers that supply their own workload generator.
func (s Spec) validateMachine() error {
	if !slices.Contains(Protocols, s.Protocol) {
		return fmt.Errorf("spec: unknown protocol %q (have %v)", s.Protocol, Protocols)
	}
	if !slices.Contains(Networks, s.Network) {
		return fmt.Errorf("spec: unknown network %q (have %v)", s.Network, Networks)
	}
	if s.Nodes < 1 {
		return fmt.Errorf("spec: nodes must be at least 1, got %d", s.Nodes)
	}
	if s.Seeds < 1 {
		return fmt.Errorf("spec: seeds must be at least 1, got %d", s.Seeds)
	}
	if s.Workers < 0 {
		return fmt.Errorf("spec: workers must not be negative, got %d", s.Workers)
	}
	if s.Quota < 0 {
		return fmt.Errorf("spec: quota must not be negative, got %d", s.Quota)
	}
	if s.QuotaScale < 0 || s.WarmupScale < 0 {
		return fmt.Errorf("spec: scale factors must not be negative, got %g/%g", s.QuotaScale, s.WarmupScale)
	}
	if s.PerturbNS < 0 {
		return fmt.Errorf("spec: perturb-ns must not be negative, got %d", s.PerturbNS)
	}
	if s.Slack < 0 {
		return fmt.Errorf("spec: slack must not be negative, got %d", s.Slack)
	}
	if s.TokensPerPort < 1 {
		return fmt.Errorf("spec: tokens-per-port must be at least 1, got %d", s.TokensPerPort)
	}
	if s.BlockBytes < 0 || s.CacheBytes < 0 {
		return fmt.Errorf("spec: cache geometry must not be negative, got block %d / cache %d", s.BlockBytes, s.CacheBytes)
	}
	return nil
}
