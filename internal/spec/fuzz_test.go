package spec

import (
	"testing"
)

// These fuzzers lock the canonical-hash contract: any spec a JSON
// document can describe must round-trip identically through both
// renderings (JSON and the flag set), and equivalent renderings must
// agree on their content address — the property the result store and
// dedup queue key on. Seed inputs live in testdata/fuzz (plus the f.Add
// corpus below); run with `go test -fuzz FuzzSpecJSONRoundTrip` to
// explore further.

// fuzzSeeds is the committed in-code corpus: the defaults, a spec with
// every field off its default, sparse documents, and normalization edge
// cases (zero scales, negative warmup, trace-scheme names).
func fuzzSeeds(f *testing.F) {
	f.Add(string(Default().JSON()))
	f.Add(string(varied().JSON()))
	f.Add(`{}`)
	f.Add(`{"benchmark":"DSS","nodes":4}`)
	f.Add(`{"benchmark":"trace:/tmp/x.tstrace","quota_scale":0,"warmup_scale":0}`)
	f.Add(`{"warmup":-7,"seeds":0,"workers":9,"seed":18446744073709551615}`)
	f.Add(`{"quota_scale":0.1234567890123456789,"perturb_ns":9223372036854775807}`)
}

func FuzzSpecJSONRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := FromJSON([]byte(data))
		if err != nil {
			return // not a spec document; nothing to round-trip
		}
		back, err := FromJSON(s.JSON())
		if err != nil {
			t.Fatalf("re-parse of %s failed: %v", s.JSON(), err)
		}
		if back != s {
			t.Fatalf("JSON round trip not identity:\n%+v\n%+v", s, back)
		}
		if s.Canonical() != back.Canonical() {
			t.Fatalf("round trip changed the canonical hash of %+v", s)
		}
		// Normalization is idempotent and hash-neutral: the canonical
		// form is its own representative.
		n := s.Normalize()
		if n.Normalize() != n {
			t.Fatalf("Normalize not idempotent: %+v -> %+v", n, n.Normalize())
		}
		if n.Canonical() != s.Canonical() {
			t.Fatalf("normalized spec hashes differently:\n%+v\n%+v", s, n)
		}
	})
}

func FuzzSpecArgsRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := FromJSON([]byte(data))
		if err != nil {
			return
		}
		back, err := FromArgs(s.Args())
		if err != nil {
			t.Fatalf("FromArgs(%v) failed: %v", s.Args(), err)
		}
		if back != s {
			t.Fatalf("flag round trip not identity:\n%+v\n%+v", s, back)
		}
		if back.Canonical() != s.Canonical() {
			t.Fatalf("flag round trip changed the canonical hash of %+v", s)
		}
	})
}
