package spec

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// varied returns a Spec with every field moved off its default, for
// round-trip identity tests.
func varied() Spec {
	return Spec{
		Benchmark:       "barnes",
		Protocol:        "DirOpt",
		Network:         "torus",
		Nodes:           8,
		Seed:            42,
		Seeds:           5,
		Workers:         3,
		Warmup:          -1,
		Quota:           777,
		QuotaScale:      0.25,
		WarmupScale:     0.5,
		PerturbNS:       7,
		Slack:           4,
		TokensPerPort:   2,
		Prefetch:        false,
		EarlyProcessing: true,
		Contention:      true,
		MOSI:            true,
		Multicast:       true,
		PredictorSize:   32,
		BlockBytes:      128,
		CacheBytes:      1 << 20,
	}
}

func TestNewAppliesOptions(t *testing.T) {
	s := New("OLTP", WithProtocol("DirClassic"), WithNetwork("torus"), WithNodes(32),
		WithSlack(4), WithSeeds(5), WithMOSI(), WithoutPrefetch(), WithQuota(100))
	if s.Benchmark != "OLTP" || s.Protocol != "DirClassic" || s.Network != "torus" ||
		s.Nodes != 32 || s.Slack != 4 || s.Seeds != 5 || !s.MOSI || s.Prefetch || s.Quota != 100 {
		t.Fatalf("options not applied: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateOneLineErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
		want string
	}{
		{"benchmark", func(s *Spec) { s.Benchmark = "tpc-w" }, "unknown benchmark"},
		{"scheme", func(s *Spec) { s.Benchmark = "bogus:x" }, "unknown workload scheme"},
		{"protocol", func(s *Spec) { s.Protocol = "MOESI" }, "unknown protocol"},
		{"network", func(s *Spec) { s.Network = "hypercube" }, "unknown network"},
		{"nodes", func(s *Spec) { s.Nodes = 0 }, "nodes"},
		{"seeds", func(s *Spec) { s.Seeds = 0 }, "seeds"},
		{"workers", func(s *Spec) { s.Workers = -1 }, "workers"},
		{"quota", func(s *Spec) { s.Quota = -5 }, "quota"},
		{"scale", func(s *Spec) { s.QuotaScale = -1 }, "scale"},
		{"perturb", func(s *Spec) { s.PerturbNS = -1 }, "perturb"},
		{"slack", func(s *Spec) { s.Slack = -1 }, "slack"},
		{"tokens", func(s *Spec) { s.TokensPerPort = 0 }, "tokens"},
		{"cache", func(s *Spec) { s.BlockBytes = -64 }, "cache geometry"},
	}
	for _, c := range cases {
		s := Default()
		c.mod(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: error is not one line: %q", c.name, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, s := range []Spec{Default(), varied()} {
		back, err := FromJSON(s.JSON())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("JSON round trip not identity:\n%+v\n%+v", s, back)
		}
	}
}

func TestJSONStableFieldNames(t *testing.T) {
	data := string(Default().JSON())
	for _, name := range []string{
		`"benchmark"`, `"protocol"`, `"network"`, `"nodes"`, `"seed"`, `"seeds"`,
		`"workers"`, `"warmup"`, `"quota"`, `"quota_scale"`, `"warmup_scale"`,
		`"perturb_ns"`, `"slack"`, `"tokens_per_port"`, `"prefetch"`,
		`"early_processing"`, `"contention"`, `"mosi"`, `"multicast"`,
		`"predictor_size"`, `"block_bytes"`, `"cache_bytes"`,
	} {
		if !strings.Contains(data, name) {
			t.Errorf("JSON missing stable field %s: %s", name, data)
		}
	}
}

func TestFromJSONSparseAndUnknown(t *testing.T) {
	s, err := FromJSON([]byte(`{"benchmark":"DSS","nodes":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Benchmark != "DSS" || s.Nodes != 4 || s.Protocol != Default().Protocol || !s.Prefetch {
		t.Fatalf("sparse decode lost defaults: %+v", s)
	}
	if _, err := FromJSON([]byte(`{"benchmrak":"DSS"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := FromJSON([]byte(`{"benchmark":"DSS"} {"benchmark":"OLTP"}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestArgsRoundTrip(t *testing.T) {
	for _, s := range []Spec{Default(), varied()} {
		back, err := FromArgs(s.Args())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("flag round trip not identity:\n%+v\n%+v", s, back)
		}
	}
}

func TestFromArgsSparse(t *testing.T) {
	s, err := FromArgs([]string{"-benchmark", "barnes", "-no-prefetch", "-slack", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Benchmark != "barnes" || s.Prefetch || s.Slack != 0 || s.Nodes != 16 {
		t.Fatalf("sparse args mis-parsed: %+v", s)
	}
	if _, err := FromArgs([]string{"-bogus-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := FromArgs([]string{"stray"}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}

func TestConfigQuotaResolution(t *testing.T) {
	// Default: benchmark quota, scaled.
	s := New("DSS", WithQuotaScale(0.5), WithWarmupScale(0.1))
	cfg, _, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MeasurePerCPU != 750 || cfg.WarmupPerCPU != 250 {
		t.Fatalf("scaled quotas = %d/%d, want 750/250", cfg.MeasurePerCPU, cfg.WarmupPerCPU)
	}
	// Explicit quotas win over the scale.
	s = New("DSS", WithQuotaScale(0.5), WithQuota(99), WithWarmup(11))
	if cfg, _, err = s.Config(); err != nil {
		t.Fatal(err)
	}
	if cfg.MeasurePerCPU != 99 || cfg.WarmupPerCPU != 11 {
		t.Fatalf("explicit quotas = %d/%d, want 99/11", cfg.MeasurePerCPU, cfg.WarmupPerCPU)
	}
	// Negative warmup means an explicitly empty warm-up phase.
	s = New("DSS", WithWarmup(-1))
	if cfg, _, err = s.Config(); err != nil {
		t.Fatal(err)
	}
	if cfg.WarmupPerCPU != 0 {
		t.Fatalf("negative warmup resolved to %d, want 0", cfg.WarmupPerCPU)
	}
}

func TestConfigAppliesKnobs(t *testing.T) {
	s := New("barnes", WithSlack(3), WithTokensPerPort(2), WithoutPrefetch(),
		WithEarlyProcessing(), WithContention(), WithMOSI(), WithMulticast(),
		WithPredictorSize(16), WithBlockBytes(128), WithCacheBytes(1<<20),
		WithSeed(9), WithPerturbNS(2))
	cfg, _, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.InitialSlack != 3 || cfg.TokensPerPort != 2 || cfg.Prefetch ||
		!cfg.EarlyProcessing || !cfg.Contention || !cfg.UseOwnedState || !cfg.Multicast ||
		cfg.PredictorSize != 16 || cfg.Cache.BlockBytes != 128 || cfg.Cache.SizeBytes != 1<<20 ||
		cfg.Seed != 9 || cfg.PerturbMax == 0 {
		t.Fatalf("knobs not applied: %+v", cfg)
	}
}

func TestRunSmall(t *testing.T) {
	run, err := New("barnes", WithNodes(4), WithWarmup(80), WithQuota(120)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Runtime <= 0 || run.MemOps != 4*120 {
		t.Fatalf("bad run: runtime %v, mem ops %d", run.Runtime, run.MemOps)
	}
}

func TestRunSeedsReportMinimum(t *testing.T) {
	s := New("barnes", WithNodes(4), WithWarmup(60), WithQuota(100), WithPerturbNS(3))
	singles := make([]int64, 3)
	for i := range singles {
		one := s
		one.Seed = s.Seed + uint64(i)
		run, err := one.Run()
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = int64(run.Runtime)
	}
	best, err := New("barnes", WithNodes(4), WithWarmup(60), WithQuota(100),
		WithPerturbNS(3), WithSeeds(3)).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := min(singles[0], singles[1], singles[2])
	if int64(best.Runtime) != want {
		t.Fatalf("best of 3 = %d, want min %v of %v", best.Runtime, want, singles)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New("barnes", WithSeeds(4)).RunContext(ctx); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

func TestRunInvalid(t *testing.T) {
	if _, err := New("tpc-w").Run(); err == nil {
		t.Fatal("unknown benchmark ran")
	}
	if _, err := New("OLTP", WithNetwork("hypercube")).Run(); err == nil {
		t.Fatal("unknown network ran")
	}
}
