package spec

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the Spec <-> flag-set bridge. Every tsnoop subcommand
// parses its command line through Bind, so the flag vocabulary cannot
// drift between tools, and Args renders a Spec back into that
// vocabulary (FromArgs(s.Args()) == s).

// notPrefetch adapts the Prefetch field to the -no-prefetch flag: the
// flag's truth is the field's negation.
type notPrefetch struct{ b *bool }

func (v notPrefetch) String() string {
	if v.b == nil {
		return "false"
	}
	return strconv.FormatBool(!*v.b)
}

func (v notPrefetch) Set(raw string) error {
	on, err := strconv.ParseBool(raw)
	if err != nil {
		return err
	}
	*v.b = !on
	return nil
}

func (v notPrefetch) IsBoolFlag() bool { return true }

// Bind registers the canonical experiment flag set on fs, parsing into
// s. Flag defaults are s's current values, so subcommands preset their
// own defaults by adjusting the Spec before binding.
func (s *Spec) Bind(fs *flag.FlagSet) {
	fs.StringVar(&s.Benchmark, "benchmark", s.Benchmark, "workload: "+strings.Join(Benchmarks(), ", ")+", or trace:<path>")
	fs.StringVar(&s.Protocol, "protocol", s.Protocol, "protocol: "+strings.Join(Protocols, ", "))
	fs.StringVar(&s.Network, "network", s.Network, "network: "+strings.Join(Networks, ", "))
	fs.IntVar(&s.Nodes, "nodes", s.Nodes, "processor count")
	fs.Uint64Var(&s.Seed, "seed", s.Seed, "base random seed")
	fs.IntVar(&s.Seeds, "seeds", s.Seeds, "perturbed runs (seed, seed+1, ...); the minimum runtime is reported")
	fs.IntVar(&s.Workers, "workers", s.Workers, "concurrent simulations (0 = one per CPU, 1 = serial)")
	fs.IntVar(&s.Warmup, "warmup", s.Warmup, "warm-up memory operations per processor (0 = default, negative = none)")
	fs.IntVar(&s.Quota, "quota", s.Quota, "measured memory operations per processor (0 = benchmark default)")
	fs.Float64Var(&s.QuotaScale, "scale", s.QuotaScale, "measured-quota scale factor (1 = full scale)")
	fs.Float64Var(&s.WarmupScale, "warmup-scale", s.WarmupScale, "warm-up-quota scale factor (1 = full scale)")
	fs.Int64Var(&s.PerturbNS, "perturb-ns", s.PerturbNS, "max response perturbation in ns")
	fs.IntVar(&s.Slack, "slack", s.Slack, "initial slack S (TS-Snoop)")
	fs.IntVar(&s.TokensPerPort, "tokens", s.TokensPerPort, "tokens per switch port (TS-Snoop)")
	fs.Var(notPrefetch{&s.Prefetch}, "no-prefetch", "disable optimization 1 (TS-Snoop)")
	fs.BoolVar(&s.EarlyProcessing, "early-processing", s.EarlyProcessing, "enable optimization 2 (TS-Snoop)")
	fs.BoolVar(&s.Contention, "contention", s.Contention, "model switch contention (TS-Snoop)")
	fs.BoolVar(&s.MOSI, "mosi", s.MOSI, "use the Owned state (MOSI extension, TS-Snoop)")
	fs.BoolVar(&s.Multicast, "multicast", s.Multicast, "multicast snooping for GETS (TS-Snoop)")
	fs.IntVar(&s.PredictorSize, "predictor", s.PredictorSize, "multicast predictor entries (0 unbounded, <0 disabled)")
	fs.BoolVar(&s.Verify, "verify", s.Verify, "enable the address network's internal ordering assertions (TS-Snoop)")
	fs.BoolVar(&s.Metrics, "metrics", s.Metrics, "record deterministic simulator telemetry (kernel, network, protocol) in the result")
	fs.BoolVar(&s.Spans, "spans", s.Spans, "record transaction-lifecycle spans (adds the latency_breakdown metrics section)")
	fs.IntVar(&s.BlockBytes, "block-bytes", s.BlockBytes, "cache block size override in bytes (0 = default)")
	fs.IntVar(&s.CacheBytes, "cache-bytes", s.CacheBytes, "per-node cache capacity override in bytes (0 = default)")
}

// FlagNames lists every flag Bind registers — the canonical experiment
// flag vocabulary each subcommand must expose.
func FlagNames() []string {
	var names []string
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	s := Default()
	s.Bind(fs)
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	return names
}

// Args renders the Spec as the explicit command-line argument list the
// Bind flag set parses: FromArgs(s.Args()) reproduces s exactly.
func (s Spec) Args() []string {
	b := func(v bool) string { return strconv.FormatBool(v) }
	return []string{
		"-benchmark", s.Benchmark,
		"-protocol", s.Protocol,
		"-network", s.Network,
		"-nodes", strconv.Itoa(s.Nodes),
		"-seed", strconv.FormatUint(s.Seed, 10),
		"-seeds", strconv.Itoa(s.Seeds),
		"-workers", strconv.Itoa(s.Workers),
		"-warmup", strconv.Itoa(s.Warmup),
		"-quota", strconv.Itoa(s.Quota),
		"-scale", strconv.FormatFloat(s.QuotaScale, 'g', -1, 64),
		"-warmup-scale", strconv.FormatFloat(s.WarmupScale, 'g', -1, 64),
		"-perturb-ns", strconv.FormatInt(s.PerturbNS, 10),
		"-slack", strconv.Itoa(s.Slack),
		"-tokens", strconv.Itoa(s.TokensPerPort),
		"-no-prefetch=" + b(!s.Prefetch),
		"-early-processing=" + b(s.EarlyProcessing),
		"-contention=" + b(s.Contention),
		"-mosi=" + b(s.MOSI),
		"-multicast=" + b(s.Multicast),
		"-predictor", strconv.Itoa(s.PredictorSize),
		"-verify=" + b(s.Verify),
		"-metrics=" + b(s.Metrics),
		"-spans=" + b(s.Spans),
		"-block-bytes", strconv.Itoa(s.BlockBytes),
		"-cache-bytes", strconv.Itoa(s.CacheBytes),
	}
}

// FromArgs parses a command-line rendering back into a Spec, starting
// from the defaults (so omitted flags keep their default values).
func FromArgs(args []string) (Spec, error) {
	s := Default()
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if fs.NArg() > 0 {
		return Spec{}, fmt.Errorf("spec: unexpected non-flag arguments %v", fs.Args())
	}
	return s, nil
}
