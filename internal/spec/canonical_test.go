package spec

import (
	"bytes"
	"regexp"
	"testing"
)

func TestCanonicalIsHexHash(t *testing.T) {
	key := Default().Canonical()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(key) {
		t.Fatalf("Canonical() = %q, want 64 lowercase hex chars", key)
	}
}

// Renderings that provably run the same simulations share one address.
func TestCanonicalIdentifiesEquivalentSpecs(t *testing.T) {
	base := Default()
	for name, mod := range map[string]func(*Spec){
		"workers":         func(s *Spec) { s.Workers = 7 },
		"explicit scales": func(s *Spec) { s.QuotaScale, s.WarmupScale = 0, 0 },
	} {
		alt := base
		mod(&alt)
		if alt.Canonical() != base.Canonical() {
			t.Errorf("%s: equivalent rendering hashes differently", name)
		}
	}
	// Every negative warmup is the same empty warm-up phase.
	a, b := base, base
	a.Warmup, b.Warmup = -1, -99
	if a.Canonical() != b.Canonical() {
		t.Error("negative warmups hash differently")
	}
}

// Anything that can change a run's statistics changes the address.
func TestCanonicalSeparatesDistinctSpecs(t *testing.T) {
	base := Default()
	seen := map[string]string{base.Canonical(): "default"}
	for name, mod := range map[string]func(*Spec){
		"benchmark":  func(s *Spec) { s.Benchmark = "DSS" },
		"protocol":   func(s *Spec) { s.Protocol = "DirOpt" },
		"network":    func(s *Spec) { s.Network = "torus" },
		"nodes":      func(s *Spec) { s.Nodes = 8 },
		"seed":       func(s *Spec) { s.Seed = 2 },
		"seed set":   func(s *Spec) { s.Seeds = 3 },
		"perturb":    func(s *Spec) { s.PerturbNS = 3 },
		"quota":      func(s *Spec) { s.Quota = 100 },
		"scale":      func(s *Spec) { s.QuotaScale = 0.5 },
		"slack":      func(s *Spec) { s.Slack = 4 },
		"mosi":       func(s *Spec) { s.MOSI = true },
		"block size": func(s *Spec) { s.BlockBytes = 128 },
	} {
		alt := base
		mod(&alt)
		key := alt.Canonical()
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: collides with %s", name, prev)
		}
		seen[key] = name
	}
}

// The canonical hash is an on-disk store key: introducing the verify
// knob (PR 5) must not perturb it, or every existing result store goes
// cold. The default spec's hash is pinned to its pre-knob value, and a
// verified spec hashes identically to its unverified twin (Verify is
// instrumentation: provably the same experiment).
func TestCanonicalStableAcrossVerifyKnob(t *testing.T) {
	const pr4Default = "54bede6ba4a5e463b291a0464f4557afadb95d5a952191eee278d96e7c6c3896"
	if got := Default().Canonical(); got != pr4Default {
		t.Errorf("Default().Canonical() = %s, want the pre-verify-knob hash %s", got, pr4Default)
	}
	s := New("barnes", WithVerify())
	if s.Canonical() != New("barnes").Canonical() {
		t.Error("WithVerify changed the canonical hash; verified and unverified runs are the same experiment")
	}
	if bytes.Contains(Default().JSON(), []byte("verify")) {
		t.Error("default spec JSON should omit the verify field (store-key stability)")
	}
}

// The metrics knob follows the verify knob's contract: an instrumented
// run is the same experiment, so turning telemetry on must not move the
// canonical hash, and the default JSON must not grow a metrics field.
func TestCanonicalStableAcrossMetricsKnob(t *testing.T) {
	const pr4Default = "54bede6ba4a5e463b291a0464f4557afadb95d5a952191eee278d96e7c6c3896"
	if got := Default().Canonical(); got != pr4Default {
		t.Errorf("Default().Canonical() = %s, want the pre-metrics-knob hash %s", got, pr4Default)
	}
	s := New("barnes", WithMetrics())
	if s.Canonical() != New("barnes").Canonical() {
		t.Error("WithMetrics changed the canonical hash; instrumented and bare runs are the same experiment")
	}
	if bytes.Contains(Default().JSON(), []byte("metrics")) {
		t.Error("default spec JSON should omit the metrics field (store-key stability)")
	}
}

// The spans knob (transaction-lifecycle tracing) follows the same
// contract: a traced run is the same experiment, so neither the
// canonical hash nor the default JSON may move.
func TestCanonicalStableAcrossTraceKnob(t *testing.T) {
	const pr4Default = "54bede6ba4a5e463b291a0464f4557afadb95d5a952191eee278d96e7c6c3896"
	if got := Default().Canonical(); got != pr4Default {
		t.Errorf("Default().Canonical() = %s, want the pre-spans-knob hash %s", got, pr4Default)
	}
	s := New("barnes", WithSpans())
	if s.Canonical() != New("barnes").Canonical() {
		t.Error("WithSpans changed the canonical hash; traced and bare runs are the same experiment")
	}
	if bytes.Contains(Default().JSON(), []byte("spans")) {
		t.Error("default spec JSON should omit the spans field (store-key stability)")
	}
}
