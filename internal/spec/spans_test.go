package spec

import (
	"bytes"
	"encoding/json"
	"testing"

	"tsnoop/internal/obs"
)

func specWithSpans(workers int) Spec {
	s := New("barnes",
		WithNodes(4),
		WithSeeds(3),
		WithWorkers(workers),
		WithMetrics(),
		WithSpans(),
	)
	s.Warmup = 50
	s.Quota = 200
	return s
}

// The latency_breakdown section is simulated-time aggregation only, so
// the full Run JSON — breakdown included — must be byte-identical at
// any worker count. This is the observability contract: tracing a run
// never perturbs it, and fan-out concurrency never leaks into results.
func TestLatencyBreakdownDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		run, err := specWithSpans(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(run)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := marshal(1)
	many := marshal(4)
	if !bytes.Equal(one, many) {
		t.Errorf("run JSON differs between -workers 1 and -workers 4:\n%s\nvs\n%s", one, many)
	}
	if !bytes.Contains(one, []byte(`"latency_breakdown"`)) {
		t.Error("spans-on run JSON lacks the latency_breakdown section")
	}
}

// Without the spans knob the breakdown must be absent — a metrics-only
// snapshot stays byte-compatible with its pre-tracing shape.
func TestLatencyBreakdownAbsentWithoutKnob(t *testing.T) {
	s := specWithSpans(1)
	s.Spans = false
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("latency_breakdown")) {
		t.Error("metrics-only run JSON grew a latency_breakdown section")
	}
}

// RunTraced captures raw spans for -trace-out; it owns the single-seed
// restriction (a shared ring across concurrent seeds would interleave).
func TestRunTraced(t *testing.T) {
	s := specWithSpans(1)
	s.Seeds = 1
	s.Spans = false // RunTraced must imply it
	log := obs.NewSpanLog(1 << 16)
	run, err := s.RunTraced(log)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Error("RunTraced captured no spans")
	}
	if run.Metrics == nil || run.Metrics.Latency == nil {
		t.Error("RunTraced run lacks the latency breakdown")
	}

	s.Seeds = 3
	if _, err := s.RunTraced(log); err == nil {
		t.Error("RunTraced accepted a seed fan-out")
	}
}
