package spec

import (
	"context"
	"fmt"

	"tsnoop/internal/obs"
	"tsnoop/internal/parallel"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"

	// Registers the trace:<path> workload scheme so trace names resolve
	// and validate everywhere a Spec is used.
	_ "tsnoop/internal/trace"
)

// scale applies a quota scale factor with a floor of one operation; a
// factor of zero means "unscaled".
func scale(v int, f float64) int {
	if f == 0 {
		return v
	}
	n := int(float64(v) * f)
	if n < 1 {
		n = 1
	}
	return n
}

// Generator resolves the spec's benchmark into a fresh workload
// generator at the spec's node count.
func (s Spec) Generator() (workload.Generator, error) {
	gen, err := workload.ByName(s.Benchmark, s.Nodes)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return gen, nil
}

// Config resolves the spec into the machine configuration one simulation
// runs: it validates the spec, resolves the benchmark, and returns both
// the config and the generator that must drive it.
func (s Spec) Config() (system.Config, workload.Generator, error) {
	if err := s.Validate(); err != nil {
		return system.Config{}, nil, err
	}
	gen, err := s.Generator()
	if err != nil {
		return system.Config{}, nil, err
	}
	cfg, err := s.ConfigFor(gen)
	if err != nil {
		return system.Config{}, nil, err
	}
	return cfg, gen, nil
}

// ConfigFor builds the machine configuration for a pre-resolved
// generator (the harness clones one generator across many runs). Phase
// quotas resolve with one precedence everywhere: an explicit
// Warmup/Quota wins, then a workload that carries its own quotas (a
// recorded trace), then the benchmark defaults scaled by
// WarmupScale/QuotaScale.
func (s Spec) ConfigFor(gen workload.Generator) (system.Config, error) {
	if err := s.validateMachine(); err != nil {
		return system.Config{}, err
	}
	cfg := system.DefaultConfig(s.Protocol, s.Network)
	cfg.Nodes = s.Nodes
	cfg.Seed = s.Seed
	cfg.PerturbMax = sim.Duration(s.PerturbNS) * sim.Nanosecond
	cfg.InitialSlack = s.Slack
	cfg.TokensPerPort = s.TokensPerPort
	cfg.Prefetch = s.Prefetch
	cfg.EarlyProcessing = s.EarlyProcessing
	cfg.Contention = s.Contention
	cfg.UseOwnedState = s.MOSI
	cfg.Multicast = s.Multicast
	cfg.PredictorSize = s.PredictorSize
	cfg.Verify = s.Verify
	cfg.Metrics = s.Metrics
	cfg.Spans = s.Spans
	if s.BlockBytes > 0 {
		cfg.Cache.BlockBytes = s.BlockBytes
	}
	if s.CacheBytes > 0 {
		cfg.Cache.SizeBytes = s.CacheBytes
	}

	warmup := scale(cfg.WarmupPerCPU, s.WarmupScale)
	measure := scale(workload.MeasureQuota(s.Benchmark), s.QuotaScale)
	if q, ok := gen.(workload.Quotaed); ok {
		warmup, measure = q.Quotas()
	}
	if s.Warmup > 0 {
		warmup = s.Warmup
	} else if s.Warmup < 0 {
		warmup = 0
	}
	if s.Quota > 0 {
		measure = s.Quota
	}
	cfg.WarmupPerCPU, cfg.MeasurePerCPU = warmup, measure
	// A zero measured quota would run an empty measurement phase and
	// report all-zero statistics; fail instead of returning bogus numbers.
	if cfg.MeasurePerCPU == 0 {
		return system.Config{}, fmt.Errorf("spec: %q resolved to a zero measured quota", s.Benchmark)
	}
	return cfg, nil
}

// runOne executes a single simulation of the spec (no seed fan-out).
func (s Spec) runOne() (*stats.Run, error) { return s.runOneLogged(nil) }

// RunTraced executes a single simulation with lifecycle spans captured
// into log (the -trace-out path). Seed fan-outs are rejected: one span
// log describes one simulation, and sharing a ring across concurrent
// seeds would interleave them.
func (s Spec) RunTraced(log *obs.SpanLog) (*stats.Run, error) {
	if s.Seeds > 1 {
		return nil, fmt.Errorf("spec: span capture requires a single seed (got seeds=%d)", s.Seeds)
	}
	s.Spans = true
	return s.runOneLogged(log)
}

// runOneLogged is runOne with an optional caller-owned span ring.
func (s Spec) runOneLogged(log *obs.SpanLog) (*stats.Run, error) {
	cfg, gen, err := s.Config()
	if err != nil {
		return nil, err
	}
	cfg.SpanLog = log
	sys, err := system.Build(cfg, gen)
	if err != nil {
		return nil, err
	}
	run := sys.Execute()
	// A trace stream that ran dry wrapped around mid-run: the statistics
	// would silently measure re-walked warm data, so fail instead.
	if w, ok := gen.(workload.Wrapping); ok && w.Wraps() > 0 {
		return nil, fmt.Errorf("spec: %q wrapped its recorded stream %d times (quotas %d+%d exceed the recording; lower them or re-record)",
			s.Benchmark, w.Wraps(), cfg.WarmupPerCPU, cfg.MeasurePerCPU)
	}
	return run, nil
}

// Run executes the spec: Seeds perturbed copies (seed, seed+1, ...)
// fan out across Workers concurrent simulations and the minimum-runtime
// run is returned — the paper's reporting rule ("we report the minimum
// run time from a set of runs whose only difference is the
// perturbation"). Results collect in seed order, so the chosen run is
// independent of the worker count.
func (s Spec) Run() (*stats.Run, error) { return s.RunContext(context.Background()) }

// RunContext is Run with early cancellation: when ctx fires, no new
// seed copies start and the first error returned is ctx's.
func (s Spec) RunContext(ctx context.Context) (*stats.Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	runs := make([]*stats.Run, 0, s.Seeds)
	for run, err := range parallel.Stream(ctx, s.Workers, s.Seeds, func(i int) (*stats.Run, error) {
		copy := s
		copy.Seed = s.Seed + uint64(i)
		return copy.runOne()
	}) {
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return stats.Best(runs), nil
}
