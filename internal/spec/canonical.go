package spec

import (
	"crypto/sha256"
	"encoding/hex"
)

// This file defines the content address of an experiment. Two specs that
// provably run the same simulations hash identically, so result stores,
// the dedup job queue, and HTTP clients all agree on what "the same
// experiment" means without comparing structs field by field.

// Normalize returns the canonical form of the spec: every rendering of
// the same experiment maps to one representative value. Only
// transformations that provably cannot change a run's statistics are
// applied:
//
//   - Workers is cleared: the engine's output is byte-identical at any
//     worker count, so scheduling never participates in the identity.
//   - Verify is cleared: the ordering assertions are instrumentation
//     that can never change a run's statistics, so a verified and an
//     unverified run of the same spec are the same experiment.
//   - Metrics is cleared for the same reason: the telemetry probe
//     observes the simulation without perturbing it, so an
//     instrumented run is the same experiment as a bare one.
//   - Spans is cleared for the same reason again: lifecycle span
//     recording reads timestamps the simulation already produces and
//     never feeds back into it.
//   - A zero QuotaScale/WarmupScale means "unscaled" (see Config's quota
//     resolution) and becomes the equivalent explicit 1.
//   - Every negative Warmup requests the same explicitly empty warm-up
//     phase and becomes -1.
//   - Seeds below 1 means a single run (the engine's rule) and becomes 1.
//
// The seed set itself — Seed, Seed+1, ... Seed+Seeds-1 — is part of the
// identity and is kept verbatim, as are all design knobs: normalization
// never guesses that a knob is ignored by the selected protocol.
func (s Spec) Normalize() Spec {
	s.Workers = 0
	s.Verify = false
	s.Metrics = false
	s.Spans = false
	if s.QuotaScale == 0 {
		s.QuotaScale = 1
	}
	if s.WarmupScale == 0 {
		s.WarmupScale = 1
	}
	if s.Warmup < 0 {
		s.Warmup = -1
	}
	if s.Seeds < 1 {
		s.Seeds = 1
	}
	return s
}

// Canonical returns the spec's content address: the SHA-256 of the
// normalized spec's canonical JSON, in lowercase hex. It is stable
// across processes and releases as long as the JSON field contract
// holds, which makes it safe to use as an on-disk result-store key.
//
// Note that a trace:<path> benchmark hashes by its name, not the trace
// file's bytes: re-recording a trace under the same path makes old store
// entries stale, so use a fresh store directory per trace version.
func (s Spec) Canonical() string {
	sum := sha256.Sum256(s.Normalize().JSON())
	return hex.EncodeToString(sum[:])
}
