package tsnet

import (
	"container/heap"

	"tsnoop/internal/sim"
)

// queued is one address transaction waiting at an endpoint for its
// ordering time.
type queued struct {
	// dueTick is the endpoint guarantee-time tick at which the
	// transaction's slack reaches zero: GT(arrival) + slack(arrival).
	// Because every enqueued transaction's slack decrements together on
	// each endpoint tick, storing the absolute due tick is equivalent to
	// the paper's "decrement the slack of still-enqueued transactions"
	// and avoids rekeying the whole queue every tick.
	dueTick uint64
	src     int
	seq     uint64
	payload any
	arrived sim.Time
}

// reorderQueue is the augmented priority queue of Section 2.2's
// destination operation: transactions are processed in (ordering time,
// source ID, per-source sequence) order, exactly the same at every
// endpoint, recreating snooping's total order.
type reorderQueue struct {
	h reorderHeap
}

type reorderHeap []*queued

func (h reorderHeap) Len() int { return len(h) }
func (h reorderHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.dueTick != b.dueTick {
		return a.dueTick < b.dueTick
	}
	// "All endpoints must, in the same way, fairly order transactions that
	// have the same OT. This is easily done by breaking ties with a
	// function of source ID numbers."
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}
func (h reorderHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *reorderHeap) Push(x any)   { *h = append(*h, x.(*queued)) }
func (h *reorderHeap) Pop() any {
	old := *h
	n := len(old)
	q := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return q
}

func (q *reorderQueue) push(e *queued) { heap.Push(&q.h, e) }

// popDue removes and returns the highest-priority transaction whose due
// tick is <= gt, or nil when none is due.
func (q *reorderQueue) popDue(gt uint64) *queued {
	if len(q.h) == 0 || q.h[0].dueTick > gt {
		return nil
	}
	return heap.Pop(&q.h).(*queued)
}

func (q *reorderQueue) len() int { return len(q.h) }
