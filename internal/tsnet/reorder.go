package tsnet

import (
	"tsnoop/internal/sim"
)

// queued is one address transaction waiting at an endpoint for its
// ordering time.
type queued struct {
	// dueTick is the endpoint guarantee-time tick at which the
	// transaction's slack reaches zero: GT(arrival) + slack(arrival).
	// Because every enqueued transaction's slack decrements together on
	// each endpoint tick, storing the absolute due tick is equivalent to
	// the paper's "decrement the slack of still-enqueued transactions"
	// and avoids rekeying the whole queue every tick.
	dueTick uint64
	src     int
	seq     uint64
	payload any
	arrived sim.Time
}

// before orders queue entries by (ordering time, source ID, per-source
// sequence): "All endpoints must, in the same way, fairly order
// transactions that have the same OT. This is easily done by breaking
// ties with a function of source ID numbers." The key is unique per
// entry, so the pop order is a deterministic total order regardless of
// heap shape.
func (a *queued) before(b *queued) bool {
	if a.dueTick != b.dueTick {
		return a.dueTick < b.dueTick
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// reorderQueue is the augmented priority queue of Section 2.2's
// destination operation, recreating snooping's total order at every
// endpoint. It is a hand-rolled 4-ary min-heap of inline queued values:
// no container/heap interface boxing, no per-entry allocation, and one
// backing array reused for the life of the endpoint (vacated slots are
// zeroed so dead payloads are not retained).
type reorderQueue struct {
	h []queued
}

func (q *reorderQueue) push(e queued) {
	h := append(q.h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	q.h = h
}

// popDue removes and returns the highest-priority transaction whose due
// tick is <= gt; ok is false when none is due.
func (q *reorderQueue) popDue(gt uint64) (e queued, ok bool) {
	h := q.h
	if len(h) == 0 || h[0].dueTick > gt {
		return queued{}, false
	}
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = queued{}
	h = h[:n]
	q.h = h
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[min]) {
				min = j
			}
		}
		if !h[min].before(&h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top, true
}

func (q *reorderQueue) len() int { return len(q.h) }
