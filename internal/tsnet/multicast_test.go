package tsnet

import (
	"testing"

	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
)

func TestInjectToDeliversOnlyMaskMembers(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		k, net, logs, _ := buildNet(t, topo, DefaultConfig())
		k.RunUntil(100 * sim.Nanosecond)
		mask := uint64(1)<<3 | uint64(1)<<9 | uint64(1)<<14
		net.InjectTo(3, mask, "m")
		k.RunUntil(500 * sim.Nanosecond)
		for ep := 0; ep < 16; ep++ {
			want := 0
			if mask&(1<<uint(ep)) != 0 {
				want = 1
			}
			if len(logs[ep]) != want {
				t.Fatalf("%s: ep%d got %d deliveries, want %d", topo.Name(), ep, len(logs[ep]), want)
			}
		}
	}
}

func TestMulticastTrafficIsPrunedTree(t *testing.T) {
	// Butterfly multicast to {0, 15} from 0: injection (1) + mid links to
	// the two stage-1 switches (2) + two ejections (2) = 5 links.
	topo := topology.MustButterfly(4)
	k, net, _, run := buildNet(t, topo, DefaultConfig())
	k.RunUntil(100 * sim.Nanosecond)
	net.InjectTo(0, 1|1<<15, nil)
	k.RunUntil(300 * sim.Nanosecond)
	if got := run.Traffic.LinkBytes(stats.ClassRequest); got != 5*8 {
		t.Fatalf("multicast bytes = %d, want 40", got)
	}
}

func TestMulticastAndBroadcastShareOneOrder(t *testing.T) {
	// Interleaved multicasts and broadcasts from many sources: every
	// endpoint's subsequence must be consistent with one global order.
	topo := topology.MustTorus(4, 4)
	k, net, logs, _ := buildNet(t, topo, DefaultConfig())
	rng := sim.NewRand(77)
	type rec struct {
		src int
		seq uint64
	}
	expect := make(map[rec]uint64) // txn -> mask
	for i := 0; i < 200; i++ {
		at := sim.Time(rng.Int63n(int64(20 * sim.Microsecond)))
		src := rng.Intn(16)
		if rng.Bool(0.5) {
			mask := uint64(1)<<uint(src) | uint64(1)<<uint(rng.Intn(16)) | uint64(1)<<uint(rng.Intn(16))
			k.At(at, func() {
				seq := net.InjectTo(src, mask, nil)
				expect[rec{src, seq}] = mask
			})
		} else {
			k.At(at, func() {
				seq := net.Inject(src, nil)
				expect[rec{src, seq}] = ^uint64(0)
			})
		}
	}
	k.RunUntil(30 * sim.Microsecond)

	// Delivery sets match the masks exactly.
	counts := map[rec]int{}
	for ep := range logs {
		for _, pr := range logs[ep] {
			r := rec{pr.src, pr.seq}
			mask, ok := expect[r]
			if !ok {
				t.Fatalf("unknown delivery %+v", r)
			}
			if mask&(1<<uint(ep)) == 0 {
				t.Fatalf("ep%d received txn %+v outside mask %x", ep, r, mask)
			}
			counts[r]++
		}
	}
	for r, mask := range expect {
		want := 0
		for ep := 0; ep < 16; ep++ {
			if mask&(1<<uint(ep)) != 0 {
				want++
			}
		}
		if counts[r] != want {
			t.Fatalf("txn %+v delivered %d times, want %d", r, counts[r], want)
		}
	}

	// Global order consistency: merge all endpoint logs; each pair of
	// transactions co-delivered at two endpoints must appear in the same
	// relative order at both.
	pos := make([]map[rec]int, 16)
	for ep := range logs {
		pos[ep] = map[rec]int{}
		for i, pr := range logs[ep] {
			pos[ep][rec{pr.src, pr.seq}] = i
		}
	}
	for a, maskA := range expect {
		for b, maskB := range expect {
			if a == b {
				continue
			}
			rel := 0 // -1 a<b, +1 a>b
			for ep := 0; ep < 16; ep++ {
				pa, oka := pos[ep][a]
				pb, okb := pos[ep][b]
				if !oka || !okb {
					continue
				}
				cur := -1
				if pa > pb {
					cur = 1
				}
				if rel == 0 {
					rel = cur
				} else if rel != cur {
					t.Fatalf("relative order of %+v and %+v differs across endpoints (masks %x, %x)",
						a, b, maskA, maskB)
				}
			}
		}
	}
}

func TestInjectToValidation(t *testing.T) {
	topo := topology.MustButterfly(4)
	k, net, _, _ := buildNet(t, topo, DefaultConfig())
	k.RunUntil(50 * sim.Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask accepted")
		}
	}()
	net.InjectTo(0, 0, nil)
}

func TestTopologyMulticastLinks(t *testing.T) {
	bf := topology.MustButterfly(4)
	// Full mask equals the broadcast count.
	if got := bf.MulticastLinks(0, ^uint64(0)); got != 21 {
		t.Fatalf("full-mask links = %d, want 21", got)
	}
	// Self only: still traverses the full path back to self (3 links).
	if got := bf.MulticastLinks(0, 1); got != 3 {
		t.Fatalf("self-mask links = %d, want 3", got)
	}
	to := topology.MustTorus(4, 4)
	if got := to.MulticastLinks(0, ^uint64(0)); got != 15 {
		t.Fatalf("torus full-mask links = %d, want 15", got)
	}
	// Self on the torus: on-die ejection only, zero counted links.
	if got := to.MulticastLinks(0, 1); got != 0 {
		t.Fatalf("torus self-mask links = %d, want 0", got)
	}
	// A single distance-2 destination: 2 links.
	if got := to.MulticastLinks(0, 1<<2); got != 2 {
		t.Fatalf("torus distance-2 mask links = %d, want 2", got)
	}
}
