// Package tsnet implements the paper's primary contribution: a broadcast
// address network that delivers transactions as fast as the wires allow
// and restores a total order at the endpoints using logical timestamps.
//
// Logical time is maintained implicitly (Section 2.2): a transaction
// carries only a slack field; switches exchange tokens, and a switch's
// guarantee time (GT) is the number of tokens it has propagated. The
// in-flight slack adjustment follows the paper's recurrence
//
//	S_new = S_old + dGT + dD
//
// with three cases: +tokenCount on switch entry (tokens the transaction
// moves past), -1 whenever the switch propagates a token past a buffered
// transaction, and +dD per output branch of an unbalanced broadcast tree.
// The invariant S >= 0 always holds; a zero-slack buffered transaction
// blocks token propagation (the on-time delivery guarantee).
//
// Endpoints insert arriving transactions into a priority queue and process
// them at their ordering time, identically ordered everywhere (ties broken
// by source ID then per-source sequence).
//
// The implementation is allocation-free at steady state: transaction
// copies come from a free list and return to it when consumed, per-port
// switch state lives in dense slices indexed by local port position,
// the endpoint reorder queues are hand-rolled heaps of inline values,
// and every hot-path event is a typed kernel event rather than a
// closure. The Verify/Trace instrumentation fields live behind a debug
// pointer that uninstrumented runs never touch.
package tsnet

import (
	"fmt"

	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

// Config controls the address network.
type Config struct {
	// Params supplies link and overhead latencies.
	Params timing.Params
	// InitialSlack is the non-negative slack S a source assigns at
	// injection. "Setting S to a small positive value allows GTs to
	// advance during moderate network contention without unduly delaying
	// destination processing."
	InitialSlack int
	// TokensPerPort is the number of tokens each input port starts with
	// (the paper: "one (or more)"). More tokens let GT run further ahead.
	TokensPerPort int
	// Contention, when true, serializes each switch output port: one
	// transaction occupies an output for SerTime. The paper's evaluation
	// runs uncontended; contention mode exercises the buffering, token
	// passing and stall machinery (Figure 1) and is used by ablations.
	Contention bool
	// SerTime is the output-port occupancy per transaction under
	// contention. Zero defaults to Params.Dswitch.
	SerTime sim.Duration
	// Verify enables internal assertions: every transaction must be
	// processed at exactly its ordering time, with non-negative slack
	// throughout. The tsnet and protocol test suites keep it on;
	// experiment runs (system.DefaultConfig) leave it off so production
	// figure runs skip the consensus bookkeeping entirely.
	Verify bool
	// Trace records per-hop slack adjustments on every transaction copy;
	// the history is attached to ordering-consensus panic messages.
	// Debugging aid, off by default.
	Trace bool
	// Probe, when non-nil, records deterministic telemetry: per-link
	// transit counts, buffer and reorder-queue occupancy, and token
	// stall episodes. Every call site is nil-guarded (the txnDebug
	// pattern), so uninstrumented runs pay one branch per site.
	Probe *obs.Probe
}

// DefaultConfig returns the configuration used for the paper's
// experiments: slack 1, one token per port, no contention modelling.
// Verify is on — this constructor is the entry point of the network and
// protocol test suites; experiment runs disable it through
// system.Config.
func DefaultConfig() Config {
	return Config{
		Params:        timing.Default(),
		InitialSlack:  1,
		TokensPerPort: 1,
		Verify:        true,
	}
}

// OrderedHandler receives transactions in the global logical order.
type OrderedHandler func(src int, seq uint64, payload any, arrived sim.Time)

// PeekHandler observes a transaction when it arrives at an endpoint,
// before its ordering time. Implements the paper's optimization hooks:
// controllers may begin prefetching (optimization 1), and may return true
// to consume the transaction early (optimization 2) when its effect is
// order-independent (blocks in S, I, or not present). A consumed
// transaction is not enqueued and its OrderedHandler never fires.
//
// slackTicks is the transaction's remaining slack at arrival: its ordering
// time is the endpoint's current GT plus slackTicks. Protocols use it to
// guard early consumption: consuming is only safe when no transaction this
// node could inject from now on can possibly order before this one, i.e.
// when slackTicks is strictly below the minimum OT distance of a fresh
// injection (TokensPerPort*Dmax + InitialSlack).
type PeekHandler func(src int, seq uint64, payload any, slackTicks int) (consumed bool)

// otCell is shared by all broadcast copies of one transaction; under
// Verify it checks that every endpoint computes the identical ordering
// time, which is what guarantees the global total order.
type otCell struct {
	set bool
	val uint64
}

// txnDebug carries the Verify/Trace-only instrumentation of a
// transaction copy: the formula ordering time, the cross-endpoint
// consensus cell (shared by every copy of one injection), and the
// per-copy hop history. Uninstrumented runs leave dbg nil and never
// touch any of it.
type txnDebug struct {
	ot   uint64  // formula ordering time GT_src + Dmax + S (Verify)
	cell *otCell // cross-endpoint ordering-time consensus (Verify)
	hist []string
}

// txn is an in-flight copy of an address transaction. Broadcast fan-out
// duplicates the copy per branch; each copy carries its own slack. mask is
// the destination set (all ones for a broadcast): switches prune branches
// whose reach does not intersect it, which never changes a surviving
// copy's path, so ordering times remain globally consistent between
// multicasts and broadcasts.
//
// Uninstrumented copies (dbg == nil) are recycled through the Network's
// free list the moment they are consumed — on switch fan-out and on
// endpoint arrival — so a steady-state broadcast allocates nothing.
type txn struct {
	src     int
	seq     uint64
	slack   int
	mask    uint64
	payload any
	sent    sim.Time
	dbg     *txnDebug
}

// linkMeta is the precomputed per-link delivery information consulted on
// every transaction and token hop: the link latency and the destination,
// plus the link's position within its destination switch's input list
// and its source switch's output list (the indexes of the dense per-port
// state slices).
type linkMeta struct {
	lat      sim.Duration
	toSwitch bool
	toIndex  int32
	inPos    int32 // position in To-switch's In list (when toSwitch)
	outPos   int32 // position in From-switch's Out list (when From is a switch)
}

// Network is a timestamp-snooping address network over a topology.
type Network struct {
	k       *sim.Kernel
	topo    *topology.Topology
	cfg     Config
	traffic *stats.Traffic
	run     *stats.Run // optional; ordering-delay and occupancy stats
	probe   *obs.Probe // optional; deterministic telemetry (Config.Probe)

	switches  []*swState
	endpoints []*epState
	nextSeq   []uint64
	links     []linkMeta

	// txnPool recycles uninstrumented transaction copies. Instrumented
	// copies (Verify/Trace) are never pooled: their debug state may
	// outlive the copy in panic messages.
	txnPool sim.Pool[txn]

	started bool

	// TestHook, when non-nil, observes every ordered processing event:
	// (endpoint, source, seq, endpoint GT at processing, debug OT).
	TestHook func(ep, src int, seq uint64, gt, ot uint64)
}

// New builds the address network. run may be nil.
func New(k *sim.Kernel, topo *topology.Topology, cfg Config, traffic *stats.Traffic, run *stats.Run) *Network {
	if cfg.InitialSlack < 0 {
		panic("tsnet: negative initial slack")
	}
	if cfg.TokensPerPort < 1 {
		panic("tsnet: TokensPerPort must be >= 1")
	}
	if cfg.SerTime == 0 {
		cfg.SerTime = cfg.Params.Dswitch
	}
	n := &Network{
		k:       k,
		topo:    topo,
		cfg:     cfg,
		traffic: traffic,
		run:     run,
		probe:   cfg.Probe,
		nextSeq: make([]uint64, topo.Nodes()),
	}
	n.links = make([]linkMeta, len(topo.Links()))
	for i, l := range topo.Links() {
		n.links[i] = linkMeta{
			lat:      sim.Duration(l.Cost) * cfg.Params.Dswitch,
			toSwitch: l.To.Kind == topology.KindSwitch,
			toIndex:  int32(l.To.Index),
		}
	}
	for _, sw := range topo.Switches() {
		for pos, id := range sw.In {
			n.links[id].inPos = int32(pos)
		}
		for pos, id := range sw.Out {
			n.links[id].outPos = int32(pos)
		}
	}
	if n.probe != nil {
		// Size the probe's dense per-link/per-switch state once, at
		// build time — the probe's only allocations.
		latPS := make([]int64, len(n.links))
		for i := range n.links {
			latPS[i] = int64(n.links[i].lat)
		}
		n.probe.SizeNetwork(latPS, topo.NumSwitches())
	}
	n.switches = make([]*swState, topo.NumSwitches())
	for i := range n.switches {
		n.switches[i] = newSwState(n, i)
	}
	n.endpoints = make([]*epState, topo.Nodes())
	for i := range n.endpoints {
		n.endpoints[i] = &epState{net: n, id: i}
	}
	return n
}

// instrumented reports whether transaction copies carry debug state.
func (n *Network) instrumented() bool { return n.cfg.Verify || n.cfg.Trace }

// newTxn returns a zeroed transaction copy, recycled when possible.
func (n *Network) newTxn() *txn { return n.txnPool.Get() }

// freeTxn recycles a consumed transaction copy. Instrumented copies are
// left for the garbage collector: their debug history may be shared.
func (n *Network) freeTxn(t *txn) {
	if t.dbg != nil {
		return
	}
	n.txnPool.Put(t)
}

// Register installs the ordered handler (required) and the optional peek
// handler for endpoint ep.
func (n *Network) Register(ep int, ordered OrderedHandler, peek PeekHandler) {
	e := n.endpoints[ep]
	if e.handler != nil {
		panic(fmt.Sprintf("tsnet: endpoint %d registered twice", ep))
	}
	e.handler = ordered
	e.peek = peek
}

// Start seeds the initial tokens ("each node and switch begin operation
// with one (or more) tokens on each input port") and begins logical time.
// Call after all endpoints are registered.
func (n *Network) Start() {
	if n.started {
		panic("tsnet: Start called twice")
	}
	n.started = true
	for _, sw := range n.switches {
		for i := range sw.tokens {
			sw.tokens[i] = n.cfg.TokensPerPort
		}
	}
	for _, e := range n.endpoints {
		// Initial tokens mimic a legal snapshot of a running system: a
		// token per input port is either in flight on a real link or
		// standing at the next consumer. For an endpoint whose ejection
		// link has zero cost (torus: on-die), its "in-flight" token is the
		// standing credit already placed at its switch, so the endpoint
		// itself starts with none; giving it one would inject a surplus
		// token into the zero-latency loop and skew logical time.
		if n.topo.Link(n.topo.EndpointIn(e.id)).Cost > 0 {
			e.credits = n.cfg.TokensPerPort
		}
	}
	// Kick the system: endpoints tick on their initial credits; switches
	// attempt their first propagation.
	n.k.AtCall(n.k.Now(), startNetwork, n, nil, 0)
}

// startNetwork is the typed kernel event that kicks the system at start
// time: a0 is the Network. Endpoints tick on their initial credits and
// switches attempt their first propagation.
func startNetwork(a0, a1 any, i0 int64) {
	n := a0.(*Network)
	for _, e := range n.endpoints {
		for e.credits > 0 {
			e.credits--
			e.tick()
		}
	}
	for _, sw := range n.switches {
		sw.tryPropagate()
	}
}

// GT returns endpoint ep's guarantee time (ticks performed).
func (n *Network) GT(ep int) uint64 { return n.endpoints[ep].gt }

// QueueLen returns the current reorder-queue depth at endpoint ep.
func (n *Network) QueueLen(ep int) int { return n.endpoints[ep].queue.len() }

// Inject broadcasts an address transaction from src. It returns the
// per-source sequence number that, with src, names the transaction in the
// global order. The traffic accountant is charged for the whole broadcast
// tree at injection.
func (n *Network) Inject(src int, payload any) uint64 {
	return n.inject(src, ^uint64(0), payload)
}

// InjectTo multicasts an address transaction from src to the endpoint set
// mask (a bitmask; bit i = endpoint i; machines up to 64 nodes). The
// transaction occupies the same slot in the global logical order a
// broadcast would — only the delivery set shrinks — so multicasts and
// broadcasts interleave in one total order (the property multicast
// snooping depends on). Traffic is charged for the pruned tree only.
func (n *Network) InjectTo(src int, mask uint64, payload any) uint64 {
	if n.topo.Nodes() > 64 {
		panic("tsnet: multicast limited to 64 endpoints")
	}
	if mask == 0 {
		panic("tsnet: empty multicast mask")
	}
	return n.inject(src, mask, payload)
}

func (n *Network) inject(src int, mask uint64, payload any) uint64 {
	if !n.started {
		panic("tsnet: Inject before Start")
	}
	seq := n.nextSeq[src]
	n.nextSeq[src]++
	tree := n.topo.BroadcastTree(src)
	if mask == ^uint64(0) {
		n.traffic.Add(stats.ClassRequest, tree.TotalLinks, timing.CtrlBytes)
	} else {
		n.traffic.Add(stats.ClassRequest, n.topo.MulticastLinks(src, mask), timing.CtrlBytes)
	}

	// With k tokens per input port, guarantee times advance k ticks per
	// link-transit time, so the logical pipeline depth of a link is k
	// ticks: Dmax and every dD are scaled accordingly (k=1 reproduces the
	// paper's presentation exactly).
	k := n.cfg.TokensPerPort
	t := n.newTxn()
	t.src = src
	t.seq = seq
	t.slack = n.cfg.InitialSlack + tree.InjectDeltaD*k
	t.mask = mask
	t.payload = payload
	t.sent = n.k.Now()
	if n.instrumented() {
		t.dbg = &txnDebug{}
		if n.cfg.Verify {
			// OT = GT_source + Dmax + S, in endpoint tick units. (Standing
			// tokens on a zero-cost injection link can shift the realized
			// ordering time by up to k ticks; arrival checks allow exactly
			// that.)
			t.dbg.ot = n.endpoints[src].gt + uint64(tree.MaxDepth*k) + uint64(n.cfg.InitialSlack)
			t.dbg.cell = &otCell{}
		}
	}
	n.sendOnLink(n.topo.EndpointOut(src), t)
	return seq
}

// deliverTxn is the typed kernel event completing a transaction copy's
// link transit: a0 is the Network, a1 the copy, i0 the LinkID.
func deliverTxn(a0, a1 any, i0 int64) {
	n := a0.(*Network)
	t := a1.(*txn)
	id := topology.LinkID(i0)
	if p := n.probe; p != nil {
		p.Event(obs.EvLinkTxn)
		p.LinkTxn(int(id))
	}
	m := &n.links[id]
	if m.toSwitch {
		n.switches[m.toIndex].arriveTxn(id, t)
	} else {
		n.endpoints[m.toIndex].arriveTxn(t)
	}
}

// sendOnLink schedules delivery of a transaction copy across a link.
func (n *Network) sendOnLink(id topology.LinkID, t *txn) {
	n.k.AfterCall(n.links[id].lat, deliverTxn, n, t, int64(id))
}

// deliverToken is the typed kernel event completing a token's link
// transit: a0 is the Network, i0 the LinkID.
func deliverToken(a0, a1 any, i0 int64) {
	n := a0.(*Network)
	id := topology.LinkID(i0)
	if p := n.probe; p != nil {
		p.Event(obs.EvLinkToken)
		p.LinkToken(int(id))
	}
	m := &n.links[id]
	if m.toSwitch {
		n.switches[m.toIndex].arriveToken(int(m.inPos))
	} else {
		n.endpoints[m.toIndex].arriveToken()
	}
}

// sendToken schedules delivery of one token across a link.
func (n *Network) sendToken(id topology.LinkID) {
	n.k.AfterCall(n.links[id].lat, deliverToken, n, nil, int64(id))
}

// epState is an endpoint network interface: a one-input, one-output node
// that maintains its GT the same way switches do and sorts arriving
// transactions back into the global order.
type epState struct {
	net     *Network
	id      int
	gt      uint64
	credits int
	queue   reorderQueue
	handler OrderedHandler
	peek    PeekHandler

	// outbox holds transactions whose ordered processing is complete but
	// whose handler handoff is still in its Dovh network-exit delay. All
	// handoffs share that one delay, so deliveries are strictly FIFO
	// (see sim.FIFO) and a queue replaces a closure per handoff.
	outbox sim.FIFO[queued]
}

func (e *epState) arriveToken() {
	// Endpoints consume tokens immediately: each token is one GT tick.
	e.tick()
}

// tick advances the endpoint's guarantee time by one: process every
// transaction with ordering time strictly below the new GT, then pass a
// token onward to the adjacent switch.
//
// The strict inequality implements the paper's guarantee-time definition
// ("GT ... is guaranteed to be less than the OTs of any transactions that
// may later be received"): a transaction whose slack reached zero in
// flight arrives after the token that matched its ordering time but —
// because the S >= 0 invariant stops any further token from passing it —
// always before the next one. Draining OT < GT at each tick therefore
// processes every transaction in a batch that is identical at every
// endpoint; draining OT <= GT could split same-OT transactions across
// batches differently at different endpoints and invert the tie-break
// order.
func (e *epState) tick() {
	e.gt++
	for {
		q, ok := e.queue.popDue(e.gt - 1)
		if !ok {
			break
		}
		e.process(q)
	}
	if e.net.run != nil {
		e.net.run.ReorderOccupancy.Set(e.net.k.Now(), e.queue.len())
	}
	if p := e.net.probe; p != nil {
		p.ReorderOcc(e.queue.len())
	}
	e.net.sendToken(e.net.topo.EndpointOut(e.id))
}

func (e *epState) arriveTxn(t *txn) {
	if t.slack < 0 {
		panic(fmt.Sprintf("tsnet: negative slack %d at endpoint %d", t.slack, e.id))
	}
	due := e.gt + uint64(t.slack)
	if e.net.cfg.Verify {
		// Every endpoint must reconstruct the identical ordering time:
		// this is the property that makes the reorder queues agree on a
		// single global order.
		if !t.dbg.cell.set {
			t.dbg.cell.set = true
			t.dbg.cell.val = due
		} else if t.dbg.cell.val != due {
			panic(fmt.Sprintf("tsnet: endpoint %d txn %d/%d ordering time %d disagrees with consensus %d (slack %d, gt %d) hist=%v",
				e.id, t.src, t.seq, due, t.dbg.cell.val, t.slack, e.gt, t.dbg.hist))
		}
		// And it must match the paper's formula, shifted no later than the
		// standing-token phase of a zero-cost injection link (at most
		// TokensPerPort ticks) and never earlier.
		if due < t.dbg.ot || due > t.dbg.ot+uint64(e.net.cfg.TokensPerPort) {
			panic(fmt.Sprintf("tsnet: endpoint %d txn %d/%d due tick %d outside [OT, OT+%d], OT %d",
				e.id, t.src, t.seq, due, e.net.cfg.TokensPerPort, t.dbg.ot))
		}
	}
	if e.peek != nil {
		if e.peek(t.src, t.seq, t.payload, t.slack) {
			if e.net.run != nil {
				e.net.run.EarlyProcessed++
			}
			e.net.freeTxn(t)
			return
		}
	}
	// Transactions are always enqueued and drained at tick boundaries,
	// even when already due: processing strictly in (OT, source, sequence)
	// key order at every endpoint guarantees the orders agree globally,
	// which immediate on-arrival processing could violate for same-OT
	// transactions arriving in different physical orders.
	e.queue.push(queued{
		dueTick: due,
		src:     t.src,
		seq:     t.seq,
		payload: t.payload,
		arrived: e.net.k.Now(),
	})
	if e.net.run != nil {
		e.net.run.ReorderOccupancy.Set(e.net.k.Now(), e.queue.len())
	}
	if p := e.net.probe; p != nil {
		p.ReorderOcc(e.queue.len())
		// One addr_flight span per endpoint delivery: this copy's
		// injection-to-arrival transit, observed at the arriving node.
		p.Span(obs.SpanAddrFlight, int32(e.id), obs.NetLane(obs.SpanAddrFlight), int32(t.src), t.seq,
			int64(t.sent), int64(e.net.k.Now()-t.sent))
	}
	e.net.freeTxn(t)
}

// deliverOrdered is the typed kernel event completing a handler handoff
// after the network-exit overhead: a0 is the epState. Handoffs pop from
// the endpoint's outbox in FIFO order, which matches event order because
// every handoff shares the same Dovh delay.
func deliverOrdered(a0, a1 any, i0 int64) {
	e := a0.(*epState)
	if p := e.net.probe; p != nil {
		p.Event(obs.EvOrderedHandoff)
	}
	q := e.outbox.Pop()
	e.handler(q.src, q.seq, q.payload, q.arrived)
}

func (e *epState) process(q queued) {
	if e.net.run != nil {
		e.net.run.OrderingDelay.Observe(e.net.k.Now() - q.arrived)
	}
	if p := e.net.probe; p != nil {
		// reorder_dwell: physical arrival to in-order processing at
		// this endpoint's reorder queue.
		p.Span(obs.SpanReorderDwell, int32(e.id), obs.NetLane(obs.SpanReorderDwell), int32(q.src), q.seq,
			int64(q.arrived), int64(e.net.k.Now()-q.arrived))
	}
	if e.net.TestHook != nil {
		e.net.TestHook(e.id, q.src, q.seq, e.gt, q.dueTick)
	}
	if e.handler == nil {
		panic(fmt.Sprintf("tsnet: endpoint %d has no ordered handler", e.id))
	}
	// Hand off to the protocol controller after the network-exit overhead
	// (Dovh). All handoffs share the same delay, so the controller sees
	// transactions in exactly the logical order.
	if d := e.net.cfg.Params.Dovh; d > 0 {
		e.outbox.Push(q)
		e.net.k.AfterCall(d, deliverOrdered, e, nil, 0)
		return
	}
	e.handler(q.src, q.seq, q.payload, q.arrived)
}
