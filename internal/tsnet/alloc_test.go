package tsnet

import (
	"testing"

	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
)

// TestBroadcastAllocs pins the allocation-free steady state of the
// address network: an uncontended broadcast — injection, 21 link
// deliveries, 16 reorder insertions, ordered handler handoffs, and the
// token traffic interleaved with it — must not allocate once the free
// lists and backing arrays are warm. Uninstrumented configuration
// (Verify off), as experiment runs use.
func TestBroadcastAllocs(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	run := &stats.Run{}
	cfg := DefaultConfig()
	cfg.Verify = false
	net := New(k, topo, cfg, &run.Traffic, run)
	delivered := 0
	for ep := 0; ep < topo.Nodes(); ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) { delivered++ }, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)
	// Warm the pools: a few broadcasts populate the txn free list, the
	// reorder heaps, and the endpoint outboxes.
	src := 0
	for i := 0; i < 8; i++ {
		want := delivered + topo.Nodes()
		net.Inject(src, nil)
		src = (src + 1) % topo.Nodes()
		k.RunWhile(func() bool { return delivered < want })
	}

	allocs := testing.AllocsPerRun(200, func() {
		want := delivered + topo.Nodes()
		net.Inject(src, nil)
		src = (src + 1) % topo.Nodes()
		k.RunWhile(func() bool { return delivered < want })
	})
	if allocs != 0 {
		t.Errorf("steady-state broadcast allocates %v/op, want 0", allocs)
	}
}

// TestBroadcastAllocsWithProbe pins the probes-on budget for the
// address network: with a telemetry probe attached (and its dense
// per-link state sized at New), the steady-state broadcast must still
// not allocate — every probe recorder is integer arithmetic over
// storage allocated once at build time.
func TestBroadcastAllocsWithProbe(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	probe := obs.NewProbe()
	k.SetProbe(probe)
	run := &stats.Run{}
	cfg := DefaultConfig()
	cfg.Verify = false
	cfg.Probe = probe
	net := New(k, topo, cfg, &run.Traffic, run)
	delivered := 0
	for ep := 0; ep < topo.Nodes(); ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) { delivered++ }, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)
	src := 0
	for i := 0; i < 8; i++ {
		want := delivered + topo.Nodes()
		net.Inject(src, nil)
		src = (src + 1) % topo.Nodes()
		k.RunWhile(func() bool { return delivered < want })
	}

	allocs := testing.AllocsPerRun(200, func() {
		want := delivered + topo.Nodes()
		net.Inject(src, nil)
		src = (src + 1) % topo.Nodes()
		k.RunWhile(func() bool { return delivered < want })
	})
	if allocs != 0 {
		t.Errorf("instrumented steady-state broadcast allocates %v/op, want 0", allocs)
	}
}

// TestBroadcastAllocsTraced pins the spans-on budget for the address
// network: with lifecycle span capture enabled (addr_flight and
// reorder_dwell per broadcast, into a pre-sized ring), the steady-state
// broadcast must still allocate nothing.
func TestBroadcastAllocsTraced(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	probe := obs.NewProbe()
	probe.EnableSpans(obs.NewSpanLog(1 << 12))
	k.SetProbe(probe)
	run := &stats.Run{}
	cfg := DefaultConfig()
	cfg.Verify = false
	cfg.Probe = probe
	net := New(k, topo, cfg, &run.Traffic, run)
	delivered := 0
	for ep := 0; ep < topo.Nodes(); ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) { delivered++ }, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)
	src := 0
	for i := 0; i < 8; i++ {
		want := delivered + topo.Nodes()
		net.Inject(src, nil)
		src = (src + 1) % topo.Nodes()
		k.RunWhile(func() bool { return delivered < want })
	}

	allocs := testing.AllocsPerRun(200, func() {
		want := delivered + topo.Nodes()
		net.Inject(src, nil)
		src = (src + 1) % topo.Nodes()
		k.RunWhile(func() bool { return delivered < want })
	})
	if allocs != 0 {
		t.Errorf("span-traced steady-state broadcast allocates %v/op, want 0", allocs)
	}
}

// TestContendedBufferCapacityStabilizes pins the backing-array reuse of
// the switch transaction buffers and endpoint reorder queues: under
// sustained contended load, the capacities reached after a warm-up burst
// must not grow across many further identical bursts (the pre-rewrite
// slice-splice and heap pop leaked capacity growth on long runs).
func TestContendedBufferCapacityStabilizes(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	run := &stats.Run{}
	cfg := DefaultConfig()
	cfg.Verify = false
	cfg.Contention = true
	net := New(k, topo, cfg, &run.Traffic, run)
	delivered := 0
	for ep := 0; ep < topo.Nodes(); ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) { delivered++ }, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)

	burst := func() {
		want := delivered + 6*topo.Nodes()
		for j := 0; j < 6; j++ {
			net.Inject((j*5)%topo.Nodes(), nil)
		}
		k.RunWhile(func() bool { return delivered < want })
	}
	for i := 0; i < 10; i++ {
		burst()
	}
	caps := func() (bufCap, queueCap, outCap int) {
		for _, sw := range net.switches {
			bufCap += cap(sw.buffered)
		}
		for _, ep := range net.endpoints {
			queueCap += cap(ep.queue.h)
			outCap += ep.outbox.Cap()
		}
		return
	}
	b0, q0, o0 := caps()
	for i := 0; i < 200; i++ {
		burst()
	}
	b1, q1, o1 := caps()
	if b1 > b0 || q1 > q0 || o1 > o0 {
		t.Errorf("capacities grew under sustained load: buffers %d -> %d, queues %d -> %d, outboxes %d -> %d",
			b0, b1, q0, q1, o0, o1)
	}

	if allocs := testing.AllocsPerRun(100, burst); allocs != 0 {
		t.Errorf("steady-state contended burst allocates %v/op, want 0", allocs)
	}
}
