package tsnet

import "fmt"

// debugTrace, when true, records per-hop slack adjustments on every
// transaction copy for post-mortem analysis. Temporary.
var debugTrace = false

func (t *txn) note(format string, args ...any) {
	if debugTrace {
		t.hist = append(t.hist, fmt.Sprintf(format, args...))
	}
}
