package tsnet

import (
	"fmt"

	"tsnoop/internal/sim"
	"tsnoop/internal/topology"
)

// bufEntry is one broadcast-branch copy of a transaction held in a
// switch's (logically centralized) transaction buffer, waiting for its
// output port.
type bufEntry struct {
	t      *txn
	branch topology.Branch
	slack  int
}

// swState is a network switch: token counters per input port, a
// transaction buffer, and the token-passing logic that maintains logical
// time. The switch is standard except for that logic, which runs in
// parallel with normal message routing (Section 2.2).
type swState struct {
	net *Network
	id  int

	tokens map[topology.LinkID]int // token counter per input port

	// buffered holds branch copies waiting for an output port (only
	// non-empty in contention mode; uncontended switches are cut-through).
	buffered []*bufEntry

	// Per-output-port serialization state (contention mode).
	nextFree map[topology.LinkID]sim.Time
	pending  map[topology.LinkID]bool

	// props counts token propagations: the switch's implicit GT.
	props uint64
}

func newSwState(n *Network, id int) *swState {
	return &swState{
		net:      n,
		id:       id,
		tokens:   make(map[topology.LinkID]int),
		nextFree: make(map[topology.LinkID]sim.Time),
		pending:  make(map[topology.LinkID]bool),
	}
}

// GT returns the switch's guarantee time (tokens propagated).
func (s *swState) GT() uint64 { return s.props }

func (s *swState) arriveToken(in topology.LinkID) {
	s.tokens[in]++
	s.tryPropagate()
}

// arriveTxn handles a transaction copy arriving on input port in.
func (s *swState) arriveTxn(in topology.LinkID, t *txn) {
	// Case 1 of the slack recurrence: entering the switch, the
	// transaction moves past the tokens waiting on its input port, making
	// it earlier in logical time; slack increases to hold OT invariant.
	if s.net.cfg.Trace {
		t.hist = append(t.hist, fmt.Sprintf("sw%d entry in=%d +%d -> %d @%v", s.id, in, s.tokens[in], t.slack+s.tokens[in], s.net.k.Now()))
	}
	t.slack += s.tokens[in]

	branches, ok := s.net.topo.BroadcastTree(t.src).Route[s.id]
	if !ok {
		panic(fmt.Sprintf("tsnet: switch %d has no route for source %d", s.id, t.src))
	}
	for _, b := range branches {
		if b.Reach&t.mask == 0 {
			continue // multicast pruning: nothing downstream is a destination
		}
		e := &bufEntry{t: t, branch: b, slack: t.slack}
		if s.net.cfg.Contention {
			s.buffered = append(s.buffered, e)
			s.kickPort(b.Link)
		} else {
			// Cut-through: zero dwell time in the buffer.
			s.depart(e)
		}
	}
}

// depart sends a branch copy on its output link, applying case 3 of the
// recurrence: dD, the decrease in maximum remaining pipeline depth for
// this branch relative to the longest branch.
func (s *swState) depart(e *bufEntry) {
	out := &txn{
		src:     e.t.src,
		seq:     e.t.seq,
		slack:   e.slack + e.branch.DeltaD*s.net.cfg.TokensPerPort,
		mask:    e.t.mask,
		ot:      e.t.ot,
		cell:    e.t.cell,
		payload: e.t.payload,
		sent:    e.t.sent,
	}
	if s.net.cfg.Trace {
		out.hist = append(append([]string{}, e.t.hist...), fmt.Sprintf("sw%d depart link=%d slack=%d dD=%d -> %d @%v", s.id, e.branch.Link, e.slack, e.branch.DeltaD, out.slack, s.net.k.Now()))
	}
	if out.slack < 0 {
		panic(fmt.Sprintf("tsnet: switch %d departing with negative slack %d", s.id, out.slack))
	}
	s.net.sendOnLink(e.branch.Link, out)
}

// kickPort schedules a service attempt for an output port (contention
// mode). At most one attempt is pending per port.
func (s *swState) kickPort(link topology.LinkID) {
	if s.pending[link] {
		return
	}
	s.pending[link] = true
	now := s.net.k.Now()
	at := s.nextFree[link]
	if at < now {
		at = now
	}
	s.net.k.At(at, func() { s.servePort(link) })
}

// servePort dequeues the highest-priority waiting copy for link and sends
// it. "The arbitration logic gives precedence to zero-slack transactions,
// to speed token passing" — implemented as lowest-slack-first, stable by
// arrival.
func (s *swState) servePort(link topology.LinkID) {
	s.pending[link] = false
	best := -1
	for i, e := range s.buffered {
		if e.branch.Link != link {
			continue
		}
		if best < 0 || e.slack < s.buffered[best].slack {
			best = i
		}
	}
	if best < 0 {
		return
	}
	e := s.buffered[best]
	s.buffered = append(s.buffered[:best], s.buffered[best+1:]...)
	s.nextFree[link] = s.net.k.Now() + s.net.cfg.SerTime
	s.depart(e)
	// The buffer shrank: a stalled propagation may now be possible.
	s.tryPropagate()
	// More work for this port?
	for _, rest := range s.buffered {
		if rest.branch.Link == link {
			s.kickPort(link)
			break
		}
	}
}

// tryPropagate performs as many token propagations as currently allowed.
// A switch may propagate a token whenever it has received a token from
// each input and all buffered transactions have non-zero slack. When it
// propagates, it sends a token on each output, decrements the slack of all
// buffered transactions (case 2 of the recurrence: the token moves past
// them, making them later in logical time), and decrements every input's
// token counter.
func (s *swState) tryPropagate() {
	spec := s.net.topo.Switches()[s.id]
	for {
		ok := true
		for _, in := range spec.In {
			if s.tokens[in] == 0 {
				ok = false
				break
			}
		}
		if ok {
			for _, e := range s.buffered {
				if e.slack == 0 {
					// The S >= 0 invariant prohibits tokens from moving
					// past zero-slack transactions: stall GT until the
					// transaction departs.
					ok = false
					break
				}
			}
		}
		if !ok {
			return
		}
		for _, in := range spec.In {
			s.tokens[in]--
		}
		for _, e := range s.buffered {
			e.slack--
		}
		s.props++
		for _, out := range spec.Out {
			s.net.sendToken(out)
		}
	}
}
