package tsnet

import (
	"fmt"

	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/topology"
)

// bufEntry is one broadcast-branch copy of a transaction held in a
// switch's (logically centralized) transaction buffer, waiting for its
// output port. Entries are stored inline in the buffer slice — the
// transaction's fields are copied in so the arriving copy can return to
// the free list immediately.
type bufEntry struct {
	branch  topology.Branch
	slack   int
	src     int
	seq     uint64
	mask    uint64
	payload any
	sent    sim.Time
	// enq is when the copy entered the buffer (contention mode); the
	// probe's buffer_dwell span measures enq to departure.
	enq sim.Time
	dbg *txnDebug
}

// swState is a network switch: token counters per input port, a
// transaction buffer, and the token-passing logic that maintains logical
// time. The switch is standard except for that logic, which runs in
// parallel with normal message routing (Section 2.2).
//
// All per-port state is held in dense slices indexed by the port's
// position in the switch's In/Out link lists (positions come from the
// Network's precomputed link metadata), so the hot path performs no map
// operations and the buffer reuses one backing array for the life of the
// run.
type swState struct {
	net *Network
	id  int

	in  []topology.LinkID // the switch's input links (shared with topology)
	out []topology.LinkID // the switch's output links (shared with topology)

	tokens []int // token counter per input port, indexed by In position

	// routes[src] is the branch list a transaction from src takes at this
	// switch (nil when the switch is not on src's broadcast tree),
	// flattened from the topology's per-tree route maps at construction.
	routes [][]topology.Branch

	// buffered holds branch copies waiting for an output port (only
	// non-empty in contention mode; uncontended switches are cut-through).
	buffered []bufEntry

	// Per-output-port serialization state (contention mode), indexed by
	// Out position.
	nextFree []sim.Time
	pending  []bool

	// props counts token propagations: the switch's implicit GT.
	props uint64
}

func newSwState(n *Network, id int) *swState {
	spec := n.topo.Switches()[id]
	s := &swState{
		net:      n,
		id:       id,
		in:       spec.In,
		out:      spec.Out,
		tokens:   make([]int, len(spec.In)),
		nextFree: make([]sim.Time, len(spec.Out)),
		pending:  make([]bool, len(spec.Out)),
		routes:   make([][]topology.Branch, n.topo.Nodes()),
	}
	for src := 0; src < n.topo.Nodes(); src++ {
		s.routes[src] = n.topo.BroadcastTree(src).Route[id]
	}
	return s
}

// GT returns the switch's guarantee time (tokens propagated).
func (s *swState) GT() uint64 { return s.props }

// arriveToken handles a token arriving on the input port at position
// inPos of the switch's In list.
func (s *swState) arriveToken(inPos int) {
	s.tokens[inPos]++
	s.tryPropagate()
}

// arriveTxn handles a transaction copy arriving on input port in.
func (s *swState) arriveTxn(in topology.LinkID, t *txn) {
	// Case 1 of the slack recurrence: entering the switch, the
	// transaction moves past the tokens waiting on its input port, making
	// it earlier in logical time; slack increases to hold OT invariant.
	tokens := s.tokens[s.net.links[in].inPos]
	if s.net.cfg.Trace {
		t.dbg.hist = append(t.dbg.hist, fmt.Sprintf("sw%d entry in=%d +%d -> %d @%v", s.id, in, tokens, t.slack+tokens, s.net.k.Now()))
	}
	t.slack += tokens

	branches := s.routes[t.src]
	if branches == nil {
		panic(fmt.Sprintf("tsnet: switch %d has no route for source %d", s.id, t.src))
	}
	for i := range branches {
		b := &branches[i]
		if b.Reach&t.mask == 0 {
			continue // multicast pruning: nothing downstream is a destination
		}
		e := bufEntry{
			branch:  *b,
			slack:   t.slack,
			src:     t.src,
			seq:     t.seq,
			mask:    t.mask,
			payload: t.payload,
			sent:    t.sent,
			dbg:     t.dbg,
		}
		if s.net.cfg.Contention {
			e.enq = s.net.k.Now()
			s.buffered = append(s.buffered, e)
			if p := s.net.probe; p != nil {
				p.BufferOcc(len(s.buffered))
			}
			s.kickPort(b.Link)
		} else {
			// Cut-through: zero dwell time in the buffer.
			s.depart(&e)
		}
	}
	s.net.freeTxn(t)
}

// depart sends a branch copy on its output link, applying case 3 of the
// recurrence: dD, the decrease in maximum remaining pipeline depth for
// this branch relative to the longest branch.
func (s *swState) depart(e *bufEntry) {
	out := s.net.newTxn()
	out.src = e.src
	out.seq = e.seq
	out.slack = e.slack + e.branch.DeltaD*s.net.cfg.TokensPerPort
	out.mask = e.mask
	out.payload = e.payload
	out.sent = e.sent
	if e.dbg != nil {
		out.dbg = &txnDebug{ot: e.dbg.ot, cell: e.dbg.cell}
		if s.net.cfg.Trace {
			out.dbg.hist = append(append([]string{}, e.dbg.hist...), fmt.Sprintf("sw%d depart link=%d slack=%d dD=%d -> %d @%v", s.id, e.branch.Link, e.slack, e.branch.DeltaD, out.slack, s.net.k.Now()))
		}
	}
	if out.slack < 0 {
		panic(fmt.Sprintf("tsnet: switch %d departing with negative slack %d", s.id, out.slack))
	}
	s.net.sendOnLink(e.branch.Link, out)
}

// servePortEvent is the typed kernel event backing kickPort: a0 is the
// swState, i0 the output LinkID.
func servePortEvent(a0, a1 any, i0 int64) {
	s := a0.(*swState)
	if p := s.net.probe; p != nil {
		p.Event(obs.EvPortService)
	}
	s.servePort(topology.LinkID(i0))
}

// kickPort schedules a service attempt for an output port (contention
// mode). At most one attempt is pending per port.
func (s *swState) kickPort(link topology.LinkID) {
	pos := s.net.links[link].outPos
	if s.pending[pos] {
		return
	}
	s.pending[pos] = true
	now := s.net.k.Now()
	at := s.nextFree[pos]
	if at < now {
		at = now
	}
	s.net.k.AtCall(at, servePortEvent, s, nil, int64(link))
}

// servePort dequeues the highest-priority waiting copy for link and sends
// it. "The arbitration logic gives precedence to zero-slack transactions,
// to speed token passing" — implemented as lowest-slack-first, stable by
// arrival.
func (s *swState) servePort(link topology.LinkID) {
	pos := s.net.links[link].outPos
	s.pending[pos] = false
	best := -1
	for i := range s.buffered {
		if s.buffered[i].branch.Link != link {
			continue
		}
		if best < 0 || s.buffered[i].slack < s.buffered[best].slack {
			best = i
		}
	}
	if best < 0 {
		return
	}
	e := s.buffered[best]
	// Splice the entry out in place: the backing array is reused, and the
	// vacated tail slot is zeroed so it does not retain payload references.
	n := len(s.buffered) - 1
	copy(s.buffered[best:], s.buffered[best+1:])
	s.buffered[n] = bufEntry{}
	s.buffered = s.buffered[:n]
	if p := s.net.probe; p != nil {
		p.BufferOcc(len(s.buffered))
		// buffer_dwell: how long this copy waited for its output port.
		// Switch ids overlap node ids, so switch spans use negative
		// pids (-(id+1)); the trace writer labels them "switch N".
		p.Span(obs.SpanBufferDwell, -int32(s.id)-1, obs.NetLane(obs.SpanBufferDwell),
			int32(e.src), e.seq, int64(e.enq), int64(s.net.k.Now()-e.enq))
	}
	s.nextFree[pos] = s.net.k.Now() + s.net.cfg.SerTime
	s.depart(&e)
	// The buffer shrank: a stalled propagation may now be possible.
	s.tryPropagate()
	// More work for this port?
	for i := range s.buffered {
		if s.buffered[i].branch.Link == link {
			s.kickPort(link)
			break
		}
	}
}

// tryPropagate performs as many token propagations as currently allowed.
// A switch may propagate a token whenever it has received a token from
// each input and all buffered transactions have non-zero slack. When it
// propagates, it sends a token on each output, decrements the slack of all
// buffered transactions (case 2 of the recurrence: the token moves past
// them, making them later in logical time), and decrements every input's
// token counter.
func (s *swState) tryPropagate() {
	for {
		ok := true
		for _, c := range s.tokens {
			if c == 0 {
				ok = false
				break
			}
		}
		stalledOnTxn := false
		if ok {
			for i := range s.buffered {
				if s.buffered[i].slack == 0 {
					// The S >= 0 invariant prohibits tokens from moving
					// past zero-slack transactions: stall GT until the
					// transaction departs.
					ok = false
					stalledOnTxn = true
					break
				}
			}
		}
		if !ok {
			// A token-wait episode starts when propagation is blocked by
			// a zero-slack buffered transaction (not by a mere token
			// shortage) and ends at the next successful propagation.
			if stalledOnTxn {
				if p := s.net.probe; p != nil {
					p.TokenStall(s.id, int64(s.net.k.Now()))
				}
			}
			return
		}
		for i := range s.tokens {
			s.tokens[i]--
		}
		for i := range s.buffered {
			s.buffered[i].slack--
		}
		s.props++
		if p := s.net.probe; p != nil {
			p.TokenAdvance(s.id, int64(s.net.k.Now()))
		}
		for _, out := range s.out {
			s.net.sendToken(out)
		}
	}
}
