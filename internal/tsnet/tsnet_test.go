package tsnet

import (
	"fmt"
	"testing"

	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
)

type procRec struct {
	src int
	seq uint64
}

// buildNet wires a network where every endpoint logs its ordered stream.
func buildNet(t *testing.T, topo *topology.Topology, cfg Config) (*sim.Kernel, *Network, [][]procRec, *stats.Run) {
	t.Helper()
	k := sim.NewKernel()
	run := &stats.Run{}
	net := New(k, topo, cfg, &run.Traffic, run)
	logs := make([][]procRec, topo.Nodes())
	for ep := 0; ep < topo.Nodes(); ep++ {
		ep := ep
		net.Register(ep, func(src int, seq uint64, payload any, arrived sim.Time) {
			logs[ep] = append(logs[ep], procRec{src, seq})
		}, nil)
	}
	net.Start()
	return k, net, logs, run
}

func checkAgreement(t *testing.T, logs [][]procRec, wantLen int) {
	t.Helper()
	for ep := range logs {
		if len(logs[ep]) != wantLen {
			t.Fatalf("endpoint %d processed %d transactions, want %d", ep, len(logs[ep]), wantLen)
		}
		for i := range logs[ep] {
			if logs[ep][i] != logs[0][i] {
				t.Fatalf("order disagreement at position %d: ep%d saw %v, ep0 saw %v",
					i, ep, logs[ep][i], logs[0][i])
			}
		}
	}
}

func TestGTAdvancesSteadily(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		k, net, _, _ := buildNet(t, topo, DefaultConfig())
		k.RunUntil(1500 * sim.Nanosecond)
		// Tokens circulate every Dswitch = 15 ns: about 100 ticks in
		// 1500 ns (plus the initial tick).
		for ep := 0; ep < topo.Nodes(); ep++ {
			gt := net.GT(ep)
			if gt < 95 || gt > 105 {
				t.Errorf("%s ep%d GT = %d after 1500ns, want ~101", topo.Name(), ep, gt)
			}
		}
	}
}

func TestSingleBroadcastReachesAllInOrder(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		k, net, logs, _ := buildNet(t, topo, DefaultConfig())
		k.RunUntil(100 * sim.Nanosecond)
		net.Inject(3, "txn")
		k.RunUntil(400 * sim.Nanosecond)
		checkAgreement(t, logs, 1)
		if logs[0][0] != (procRec{3, 0}) {
			t.Fatalf("%s: processed %v", topo.Name(), logs[0][0])
		}
	}
}

func TestBroadcastTrafficMatchesPaper(t *testing.T) {
	// One broadcast charges 21 links on the butterfly, 15 on the torus,
	// 8 bytes each.
	cases := []struct {
		topo *topology.Topology
		want int64
	}{
		{topology.MustButterfly(4), 21 * 8},
		{topology.MustTorus(4, 4), 15 * 8},
	}
	for _, c := range cases {
		k, net, _, run := buildNet(t, c.topo, DefaultConfig())
		k.RunUntil(100 * sim.Nanosecond)
		net.Inject(0, nil)
		k.RunUntil(200 * sim.Nanosecond)
		if got := run.Traffic.LinkBytes(stats.ClassRequest); got != c.want {
			t.Errorf("%s broadcast bytes = %d, want %d", c.topo.Name(), got, c.want)
		}
	}
}

func TestDeliveryLatencyBounds(t *testing.T) {
	// A transaction is processed everywhere within
	// (Dmax + S + 1) switch delays of injection; the furthest destination
	// needs at least Dmax switch delays.
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		cfg := DefaultConfig()
		k := sim.NewKernel()
		run := &stats.Run{}
		net := New(k, topo, cfg, &run.Traffic, run)
		var processed []sim.Time
		for ep := 0; ep < topo.Nodes(); ep++ {
			net.Register(ep, func(src int, seq uint64, payload any, arrived sim.Time) {
				processed = append(processed, k.Now())
			}, nil)
		}
		net.Start()
		k.RunUntil(150 * sim.Nanosecond)
		t0 := k.Now()
		net.Inject(5, nil)
		k.RunUntil(t0 + 500*sim.Nanosecond)
		if len(processed) != topo.Nodes() {
			t.Fatalf("%s: processed %d, want %d", topo.Name(), len(processed), topo.Nodes())
		}
		dmax := sim.Duration(topo.Dmax(5))
		// Dmax transit + initial slack + standing-token phase + the
		// strict-inequality batch tick, plus the network-exit overhead.
		upper := (dmax+sim.Duration(cfg.InitialSlack)+2)*cfg.Params.Dswitch + cfg.Params.Dovh
		for _, at := range processed {
			lat := at - t0
			if lat > upper {
				t.Errorf("%s: processing latency %v exceeds bound %v", topo.Name(), lat, upper)
			}
		}
		var maxLat sim.Time
		for _, at := range processed {
			if at-t0 > maxLat {
				maxLat = at - t0
			}
		}
		if maxLat < dmax*cfg.Params.Dswitch {
			t.Errorf("%s: max latency %v below physical minimum %v", topo.Name(), maxLat, dmax*cfg.Params.Dswitch)
		}
	}
}

// The central correctness property: many transactions injected from many
// sources at arbitrary times are processed in the identical total order at
// every endpoint, each exactly at (or one tick after) its ordering time.
func TestTotalOrderAgreementStress(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		for _, slack := range []int{0, 1, 3} {
			name := fmt.Sprintf("%s/S=%d", topo.Name(), slack)
			cfg := DefaultConfig()
			cfg.InitialSlack = slack
			k, net, logs, _ := buildNet(t, topo, cfg)
			net.TestHook = func(ep, src int, seq uint64, gt, ot uint64) {
				// Safety: never before the ordering time. Precision: the
				// strict-inequality batch tick plus at most one
				// standing-token phase tick.
				if gt <= ot || gt > ot+2 {
					t.Errorf("%s: ep%d processed %d/%d at GT %d, OT %d", name, ep, src, seq, gt, ot)
				}
			}
			rng := sim.NewRand(42)
			count := 0
			for i := 0; i < 300; i++ {
				at := sim.Time(rng.Int63n(int64(30 * sim.Microsecond)))
				src := rng.Intn(topo.Nodes())
				k.At(at, func() { net.Inject(src, nil); count++ })
			}
			k.RunUntil(40 * sim.Microsecond)
			if count != 300 {
				t.Fatalf("%s: injected %d", name, count)
			}
			checkAgreement(t, logs, 300)
		}
	}
}

// Contention mode exercises the full Figure 1 machinery: buffered
// transactions, tokens moving past them, zero-slack stalls, and dD
// adjustments — the Verify assertions prove the slack recurrence holds.
func TestTotalOrderUnderContention(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		for _, slack := range []int{0, 2} {
			cfg := DefaultConfig()
			cfg.InitialSlack = slack
			cfg.Contention = true
			k, net, logs, _ := buildNet(t, topo, cfg)
			net.TestHook = func(ep, src int, seq uint64, gt, ot uint64) {
				if gt <= ot {
					t.Errorf("contention: ep%d processed %d/%d at GT %d not after OT %d", ep, src, seq, gt, ot)
				}
			}
			rng := sim.NewRand(7)
			// Bursts: several sources inject at the same instant to force
			// output-port contention in the broadcast trees.
			for burst := 0; burst < 40; burst++ {
				at := sim.Time(burst) * 400 * sim.Nanosecond
				for j := 0; j < 6; j++ {
					src := rng.Intn(topo.Nodes())
					k.At(at, func() { net.Inject(src, nil) })
				}
			}
			k.RunUntil(60 * sim.Microsecond)
			checkAgreement(t, logs, 240)
		}
	}
}

func TestPeekConsumesEarly(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	run := &stats.Run{}
	net := New(k, topo, DefaultConfig(), &run.Traffic, run)
	orderedCalls := 0
	for ep := 0; ep < topo.Nodes(); ep++ {
		ep := ep
		net.Register(ep, func(src int, seq uint64, payload any, arrived sim.Time) {
			orderedCalls++
		}, func(src int, seq uint64, payload any, slackTicks int) bool {
			// Endpoints 1 and 2 consume everything early.
			return ep == 1 || ep == 2
		})
	}
	net.Start()
	k.RunUntil(50 * sim.Nanosecond)
	net.Inject(0, nil)
	k.RunUntil(300 * sim.Nanosecond)
	if orderedCalls != 14 {
		t.Fatalf("ordered calls = %d, want 14", orderedCalls)
	}
	if run.EarlyProcessed != 2 {
		t.Fatalf("early processed = %d, want 2", run.EarlyProcessed)
	}
}

func TestOrderingDelayRecorded(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	k, net, _, run := buildNet(t, topo, DefaultConfig())
	k.RunUntil(50 * sim.Nanosecond)
	net.Inject(0, nil)
	k.RunUntil(300 * sim.Nanosecond)
	if run.OrderingDelay.Count() != 16 {
		t.Fatalf("ordering delay samples = %d, want 16", run.OrderingDelay.Count())
	}
	// Near destinations on the torus arrive early and wait for their
	// ordering time: max ordering delay must exceed the minimum.
	if run.OrderingDelay.Max() <= run.OrderingDelay.Min() {
		t.Fatalf("ordering delays flat: min %v max %v", run.OrderingDelay.Min(), run.OrderingDelay.Max())
	}
}

func TestPerSourceSequenceNumbers(t *testing.T) {
	topo := topology.MustButterfly(4)
	k, net, logs, _ := buildNet(t, topo, DefaultConfig())
	k.RunUntil(50 * sim.Nanosecond)
	if s := net.Inject(4, nil); s != 0 {
		t.Fatalf("first seq = %d", s)
	}
	if s := net.Inject(4, nil); s != 1 {
		t.Fatalf("second seq = %d", s)
	}
	if s := net.Inject(5, nil); s != 0 {
		t.Fatalf("other source seq = %d", s)
	}
	k.RunUntil(500 * sim.Nanosecond)
	checkAgreement(t, logs, 3)
	// Same-source transactions keep injection order globally.
	var fours []uint64
	for _, r := range logs[0] {
		if r.src == 4 {
			fours = append(fours, r.seq)
		}
	}
	if len(fours) != 2 || fours[0] != 0 || fours[1] != 1 {
		t.Fatalf("source-4 order = %v", fours)
	}
}

func TestQueueOccupancyTracked(t *testing.T) {
	topo := topology.MustTorus(4, 4)
	k, net, _, run := buildNet(t, topo, DefaultConfig())
	k.RunUntil(50 * sim.Nanosecond)
	for i := 0; i < 5; i++ {
		net.Inject(i, nil)
	}
	k.RunUntil(500 * sim.Nanosecond)
	if run.ReorderOccupancy.Max() < 1 {
		t.Fatal("reorder occupancy never rose above 0")
	}
	_ = net
}

func TestInjectBeforeStartPanics(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	var tr stats.Traffic
	net := New(k, topo, DefaultConfig(), &tr, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Inject before Start did not panic")
		}
	}()
	net.Inject(0, nil)
}

func TestDoubleStartPanics(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	var tr stats.Traffic
	net := New(k, topo, DefaultConfig(), &tr, nil)
	for ep := 0; ep < 16; ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) {}, nil)
	}
	net.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	net.Start()
}

func TestBadConfigPanics(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	var tr stats.Traffic
	cfg := DefaultConfig()
	cfg.InitialSlack = -1
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative slack did not panic")
			}
		}()
		New(k, topo, cfg, &tr, nil)
	}()
	cfg = DefaultConfig()
	cfg.TokensPerPort = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero tokens did not panic")
			}
		}()
		New(k, topo, cfg, &tr, nil)
	}()
}

func TestMoreTokensPerPort(t *testing.T) {
	// With two tokens per port, GT can run further ahead; the order
	// agreement must still hold.
	cfg := DefaultConfig()
	cfg.TokensPerPort = 2
	topo := topology.MustTorus(4, 4)
	k, net, logs, _ := buildNet(t, topo, cfg)
	rng := sim.NewRand(3)
	for i := 0; i < 100; i++ {
		at := sim.Time(rng.Int63n(int64(10 * sim.Microsecond)))
		src := rng.Intn(16)
		k.At(at, func() { net.Inject(src, nil) })
	}
	k.RunUntil(15 * sim.Microsecond)
	checkAgreement(t, logs, 100)
}
