package tsnet

import (
	"fmt"
	"testing"

	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
)

func TestDebugTokens2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TokensPerPort = 2
	cfg.Verify = false
	topo := topology.MustTorus(4, 4)
	k := sim.NewKernel()
	run := &stats.Run{}
	net := New(k, topo, cfg, &run.Traffic, run)
	dues := make(map[int]uint64)
	for ep := 0; ep < 16; ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) {}, nil)
	}
	// wrap arriveTxn via TestHook? can't. Instead inspect via recompute:
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)
	for ep := 0; ep < 16; ep++ {
		fmt.Printf("ep%d gt=%d  ", ep, net.GT(ep))
	}
	fmt.Println()
	for sw := 0; sw < 16; sw++ {
		s := net.switches[sw]
		fmt.Printf("sw%d props=%d tokens=", sw, s.props)
		for pos, in := range topo.Switches()[sw].In {
			l := topo.Link(in)
			fmt.Printf("%v:%d ", l.From, s.tokens[pos])
		}
		fmt.Println()
	}
	_ = dues
}
