package cluster

import (
	"sort"
	"sync"
)

// DefaultMaxCells is the per-node in-flight streamed-cell budget when
// the serve flag leaves it at zero. A cell is one grid cell or sweep
// point admitted on /v1/grids or /v1/sweeps; 4096 in flight is far
// beyond what one node's simulation pool can usefully queue, so the
// default only trips under genuine overload.
const DefaultMaxCells = 4096

// Admission is the per-node backpressure gate for streaming endpoints:
// each stream declares how many cells it will run, and a node already
// at its budget refuses new streams with 429 + Retry-After instead of
// queueing unboundedly. An idle node always admits — a single stream
// larger than the whole budget must be serviceable, it just gets the
// node to itself.
type Admission struct {
	mu       sync.Mutex
	budget   int // <= 0: unlimited
	inflight int
	shed     map[string]int64
	total    int64
}

// NewAdmission builds the gate. budget <= 0 disables shedding; routes
// pre-register shed counters so stats render a fixed series set.
func NewAdmission(budget int, routes ...string) *Admission {
	a := &Admission{budget: budget, shed: make(map[string]int64)}
	for _, r := range routes {
		a.shed[r] = 0
	}
	return a
}

// Admit asks to stream n cells on route. When the node has capacity
// (or is idle), the cells are reserved and the returned release (safe
// to call more than once) frees them; otherwise the shed is counted
// and ok is false — the caller answers 429 with RetryAfterSeconds.
func (a *Admission) Admit(route string, n int) (release func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget > 0 && a.inflight > 0 && a.inflight+n > a.budget {
		a.shed[route]++
		a.total++
		return nil, false
	}
	a.inflight += n
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight -= n
			a.mu.Unlock()
		})
	}, true
}

// RetryAfterSeconds estimates when capacity frees: proportional to how
// far over budget the node is, at least 1, capped at 60 so a client
// never parks for minutes on a transient spike.
func (a *Admission) RetryAfterSeconds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget <= 0 {
		return 1
	}
	s := 1 + a.inflight/a.budget
	if s > 60 {
		s = 60
	}
	return s
}

// RouteShed is one route's shed counter.
type RouteShed struct {
	Route string `json:"route"`
	Count int64  `json:"count"`
}

// AdmissionStats is a point-in-time snapshot of the gate.
type AdmissionStats struct {
	// Budget is the configured cell budget (0 = unlimited).
	Budget int `json:"budget"`
	// Inflight is the number of streamed cells currently admitted.
	Inflight int `json:"inflight"`
	// ShedTotal counts refused streams across all routes.
	ShedTotal int64 `json:"shed_total"`
	// Shed is per-route, sorted by route for deterministic rendering.
	Shed []RouteShed `json:"shed"`
}

// Stats snapshots the gate's counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	sheds := make([]RouteShed, 0, len(a.shed))
	for route, n := range a.shed {
		sheds = append(sheds, RouteShed{Route: route, Count: n})
	}
	sort.Slice(sheds, func(i, j int) bool { return sheds[i].Route < sheds[j].Route })
	return AdmissionStats{Budget: a.budget, Inflight: a.inflight, ShedTotal: a.total, Shed: sheds}
}
