package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsnoop/internal/fault"
)

// fakeClock is a hand-advanced clock for driving breaker cooldowns
// without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripsAtThresholdAndRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 5*time.Second, clk.now)

	// Closed passes traffic; two failures are not enough to trip.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker denied forward %d", i)
		}
		b.failure()
	}
	if state, trips, _ := b.snapshot(); state != BreakerClosed || trips != 0 {
		t.Fatalf("after 2 failures: %s, %d trips; want closed, 0", state, trips)
	}

	// The third consecutive failure trips it open: forwards skip.
	b.allow()
	b.failure()
	if state, trips, _ := b.snapshot(); state != BreakerOpen || trips != 1 {
		t.Fatalf("after 3 failures: %s, %d trips; want open, 1", state, trips)
	}
	for i := 0; i < 4; i++ {
		if b.allow() {
			t.Fatal("open breaker allowed a forward inside the cooldown")
		}
	}
	if _, _, skips := b.snapshot(); skips != 4 {
		t.Fatalf("skips = %d, want 4", skips)
	}

	// After the cooldown exactly one half-open probe goes through.
	clk.advance(5 * time.Second)
	if !b.allow() {
		t.Fatal("cooled-down breaker denied the half-open probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	if state, _, _ := b.snapshot(); state != BreakerHalfOpen {
		t.Fatalf("state during probe = %s, want half-open", state)
	}

	// A successful probe closes the breaker and resets the failure run.
	b.success()
	if state, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", state)
	}
	if !b.allow() {
		t.Fatal("closed breaker denied traffic after recovery")
	}
	b.failure()
	b.allow()
	b.failure()
	if state, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatal("failure run survived the reset: 2 post-recovery failures tripped a threshold-3 breaker")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, 5*time.Second, clk.now)
	b.allow()
	b.failure() // threshold 1: first failure trips
	clk.advance(5 * time.Second)
	if !b.allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.failure()
	if state, trips, _ := b.snapshot(); state != BreakerOpen || trips != 2 {
		t.Fatalf("after failed probe: %s, %d trips; want open, 2", state, trips)
	}
	if b.allow() {
		t.Fatal("re-opened breaker allowed a forward")
	}
	// An expired cooldown reads as half-open in snapshots even before
	// the next forward arrives to probe.
	clk.advance(5 * time.Second)
	if state, _, _ := b.snapshot(); state != BreakerHalfOpen {
		t.Fatalf("post-cooldown snapshot = %s, want half-open", state)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second, nil)
	for i := 0; i < 10; i++ {
		if !b.allow() {
			t.Fatal("disabled breaker denied a forward")
		}
		b.failure()
	}
	if state, trips, skips := b.snapshot(); state != BreakerClosed || trips != 0 || skips != 0 {
		t.Fatalf("disabled breaker = %s, %d trips, %d skips; want closed, 0, 0", state, trips, skips)
	}
}

// Forward against a dead peer trips the breaker; subsequent forwards
// return ErrBreakerOpen without any network attempt, and a recovered
// peer is restored by the half-open probe.
func TestClusterForwardBreakerLifecycle(t *testing.T) {
	var calls atomic.Int64
	var fail atomic.Bool
	fail.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail.Load() {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.Write([]byte(`{"runtime_ps":7}` + "\n"))
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")

	clk := &fakeClock{t: time.Unix(1000, 0)}
	self := "127.0.0.1:1"
	c, err := New(Config{
		Self:             self,
		Members:          []string{self, peer},
		Client:           NewHTTPClient(DefaultTimeouts()),
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Second,
		breakerNow:       clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if _, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err == nil {
			t.Fatal("forward to a 502 peer succeeded")
		}
	}
	// Tripped: the next forward is a skip, not an attempt.
	before := calls.Load()
	_, err = c.Forward(context.Background(), peer, []byte(`{}`), "")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("forward with open breaker = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still hit the network")
	}
	st := c.Stats()
	if p := st.Peers[0]; p.Breaker != BreakerOpen || p.BreakerTrips != 1 || p.BreakerSkips != 1 || p.Errors != 2 {
		t.Fatalf("peer stats = %+v, want open / 1 trip / 1 skip / 2 errors", p)
	}

	// The peer heals; after the cooldown one probe restores service.
	fail.Store(false)
	clk.advance(5 * time.Second)
	fwd, err := c.Forward(context.Background(), peer, []byte(`{}`), "")
	if err != nil || string(fwd.Data) != `{"runtime_ps":7}` {
		t.Fatalf("probe forward = %q, %v", fwd.Data, err)
	}
	if p := c.Stats().Peers[0]; p.Breaker != BreakerClosed {
		t.Fatalf("breaker after successful probe = %s, want closed", p.Breaker)
	}
}

// Suspect counts a garbage answer as a breaker failure and a peer
// error even though the HTTP exchange succeeded.
func TestClusterSuspectTripsBreaker(t *testing.T) {
	self := "127.0.0.1:1"
	peer := "127.0.0.1:2"
	c, err := New(Config{Self: self, Members: []string{self, peer}, BreakerThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Suspect(peer)
	c.Suspect(peer)
	p := c.Stats().Peers[0]
	if p.Breaker != BreakerOpen || p.Errors != 2 {
		t.Fatalf("peer after 2 suspects = %+v, want open with 2 errors", p)
	}
}

// The cluster.forward.refuse and cluster.forward.5xx failpoints fail
// forwards without touching the network; truncate mangles a successful
// body so the entry node's decode check sees garbage.
func TestForwardFailpoints(t *testing.T) {
	t.Cleanup(fault.Disable)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(`{"runtime_ps":7}` + "\n"))
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")
	c := twoNodeConfig(t, peer, -1)

	fs, err := fault.Parse("seed=1;cluster.forward.refuse=times:1;cluster.forward.5xx=times:1;cluster.forward.truncate=times:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(fs)

	// Refused without a network attempt.
	if _, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("injected refusal = %v", err)
	}
	if calls.Load() != 0 {
		t.Fatal("injected refusal still dialed the peer")
	}
	// Injected 502, also without a network attempt.
	if _, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("injected 5xx = %v", err)
	}
	// Truncated body: the exchange "succeeds" with an unparsable answer.
	fwd, err := c.Forward(context.Background(), peer, []byte(`{}`), "")
	if err != nil {
		t.Fatalf("truncated forward errored: %v", err)
	}
	if full := `{"runtime_ps":7}`; string(fwd.Data) == full || len(fwd.Data) >= len(full) {
		t.Fatalf("truncate failpoint did not shorten the body: %q", fwd.Data)
	}
	fault.Disable()

	// Clean again once the schedule is gone.
	if fwd, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err != nil || string(fwd.Data) != `{"runtime_ps":7}` {
		t.Fatalf("post-schedule forward = %q, %v", fwd.Data, err)
	}
}
