package cluster

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Outbound HTTP discipline: every client this repo points at a peer or
// a server carries explicit dial and response-header timeouts, so a
// hung or blackholed peer surfaces as an error the caller can degrade
// on instead of wedging a stream forever. http.DefaultClient (no
// timeouts anywhere) is banned from the service paths.

// Timeouts parameterizes an outbound HTTP client. Zero fields keep
// their stdlib meaning (no timeout), so callers set every field they
// care about — DefaultTimeouts and SubmitTimeouts are the two
// sanctioned presets.
type Timeouts struct {
	// Dial bounds TCP connection establishment.
	Dial time.Duration
	// ResponseHeader bounds the wait for a response's header bytes
	// after the request is fully written. For /v1/runs the header
	// arrives only once the owner finishes simulating, so this must
	// cover a whole cold simulation, not a network round trip.
	ResponseHeader time.Duration
	// TLSHandshake bounds the TLS handshake (unused for the plain-HTTP
	// peer mesh, set anyway so the client stays safe if fronted).
	TLSHandshake time.Duration
	// Idle bounds how long pooled keep-alive connections linger.
	Idle time.Duration
}

// DefaultTimeouts is the forwarding-client preset: fail fast on a dead
// peer (the caller computes locally instead), wait generously for a
// live peer that is legitimately simulating.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		Dial:           2 * time.Second,
		ResponseHeader: 2 * time.Minute,
		TLSHandshake:   2 * time.Second,
		Idle:           90 * time.Second,
	}
}

// SubmitTimeouts is the CLI-client preset: same fast dial, but a
// submitted sweep or unscaled run can simulate for a long time before
// the first header byte, so the header wait is much longer.
func SubmitTimeouts() Timeouts {
	t := DefaultTimeouts()
	t.ResponseHeader = 15 * time.Minute
	return t
}

// NewHTTPClient builds an *http.Client with the given explicit
// timeouts. There is deliberately no overall request timeout: NDJSON
// streams run as long as the experiment does, and the per-phase
// timeouts above already bound every way a connection can hang.
func NewHTTPClient(t Timeouts) *http.Client {
	dialer := &net.Dialer{Timeout: t.Dial}
	return &http.Client{
		Transport: &http.Transport{
			DialContext:           dialer.DialContext,
			ResponseHeaderTimeout: t.ResponseHeader,
			TLSHandshakeTimeout:   t.TLSHandshake,
			IdleConnTimeout:       t.Idle,
			ForceAttemptHTTP2:     false,
		},
	}
}

// sleep waits d or until ctx is cancelled. Retry pacing is a
// wall-clock concern of the service edge and can never reach
// simulation output bytes, which is what the marker below asserts to
// the determinism analyzer.
func sleep(ctx context.Context, d time.Duration) error {
	//determinism:wallclock retry pacing never reaches simulation output
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
