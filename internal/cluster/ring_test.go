package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("10.0.0.%d:8177", i+1)
	}
	return m
}

// Every member builds the same ring from the same list: ownership is a
// pure function of the key, never of which node asks.
func TestRingAgreesAcrossMembers(t *testing.T) {
	members := testMembers(5)
	rings := make([]*Ring, len(members))
	for i, self := range members {
		r, err := NewRing(self, members, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i)
		owner := rings[0].Owner(key)
		for _, r := range rings[1:] {
			if got := r.Owner(key); got != owner {
				t.Fatalf("key %s: ring of %s says %s, ring of %s says %s",
					key[:8], rings[0].self, owner, r.self, got)
			}
		}
		owns := 0
		for _, r := range rings {
			if r.Owns(key) {
				owns++
			}
		}
		if owns != 1 {
			t.Fatalf("key %s owned by %d members, want exactly 1", key[:8], owns)
		}
	}
}

// The member list order must not matter: -peers a,b,c and -peers c,a,b
// describe the same ring.
func TestRingIgnoresMemberOrder(t *testing.T) {
	members := testMembers(3)
	shuffled := []string{members[2], members[0], members[1]}
	a, err := NewRing(members[0], members, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(members[0], shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%064x", i*7)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner differs between orderings", key[:8])
		}
	}
}

// Virtual nodes keep the shards roughly balanced: with 3 members no
// shard should hold more than half of a large key population.
func TestRingBalance(t *testing.T) {
	members := testMembers(3)
	r, err := NewRing(members[0], members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("%064x", i))]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns no keys", m)
		}
		if counts[m] > keys/2 {
			t.Fatalf("member %s owns %d/%d keys — ring is badly unbalanced", m, counts[m], keys)
		}
	}
}

// Removing one member only moves that member's keys: everything the
// survivors owned stays put (the consistent-hashing property that
// makes a rolling resize mostly cache-warm).
func TestRingRemovalOnlyMovesVictimKeys(t *testing.T) {
	members := testMembers(4)
	full, err := NewRing(members[0], members, 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing(members[0], members[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := members[3]
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("%064x", i)
		before := full.Owner(key)
		after := smaller.Owner(key)
		if before != victim && before != after {
			t.Fatalf("key %s moved %s -> %s though %s stayed in the ring", key[:8], before, after, before)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	members := testMembers(3)
	cases := []struct {
		name    string
		self    string
		members []string
	}{
		{"empty self", "", members},
		{"self not a member", "10.9.9.9:1", members},
		{"single member", members[0], members[:1]},
		{"not host:port", "bare-host", []string{"bare-host", members[0]}},
	}
	for _, c := range cases {
		if _, err := NewRing(c.self, c.members, 0); err == nil {
			t.Errorf("%s: NewRing accepted %q / %v", c.name, c.self, c.members)
		}
	}
}

// Duplicate and whitespace-padded members collapse to one ring entry.
func TestRingDeduplicatesMembers(t *testing.T) {
	members := testMembers(2)
	r, err := NewRing(members[0], []string{members[0], " " + members[1] + " ", members[1], members[0]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); len(got) != 2 {
		t.Fatalf("members = %v, want 2 distinct", got)
	}
}
