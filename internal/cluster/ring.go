// Package cluster federates N `tsnoop serve` processes into one
// logical experiment service. A static, gossip-free consistent-hash
// ring assigns every canonical spec hash (spec.Canonical) to exactly
// one member, so each node owns a shard of the result store and the
// dedup queue; non-owners forward misses to the owning peer over the
// existing HTTP API (singleflight stays global, not per-node) and
// replicate hot results into their local LRU front on the way back.
// Admission control bounds each node's in-flight streamed cells so a
// burst of grid regenerations sheds load (429 + Retry-After) instead
// of falling over, and a peer failure degrades to local compute — a
// cluster streams byte-identical NDJSON to the single-node engine, no
// matter which member a request enters through or which members die
// mid-stream.
//
// Everything here is a wall-clock-free routing decision except the
// forwarding client's retry pacing, which is explicitly documented as
// never reaching simulation output (see the determinism analyzer's
// //determinism:wallclock marker).
package cluster

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"
)

// DefaultReplicas is the number of virtual nodes each member projects
// onto the ring when Config.Replicas is zero. 128 points per member
// keeps the largest shard within a few percent of the mean for any
// plausible fleet size while the ring stays a few kilobytes.
const DefaultReplicas = 128

// Ring is a static consistent-hash ring over the cluster members.
// Every member builds the same ring from the same member list (the
// -peers flag), so all nodes agree on which member owns a key without
// any gossip or coordination protocol. Membership changes are a
// restart with a new -peers list; the content-addressed store makes
// that safe — a reshuffled key is a cache miss, never a wrong answer.
type Ring struct {
	self    string
	members []string
	points  []ringPoint
}

// ringPoint is one virtual node: a member projected onto the hash
// space.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds the ring from the full static member list. self must
// appear in members exactly as listed (addresses are compared as
// strings — "localhost:8177" and "127.0.0.1:8177" are different
// members). Every member must be a host:port address.
func NewRing(self string, members []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if strings.TrimSpace(self) == "" {
		return nil, fmt.Errorf("cluster: -self is empty; every node must know its own ring address")
	}
	self = strings.TrimSpace(self)
	seen := make(map[string]bool)
	var list []string
	for _, m := range members {
		m = strings.TrimSpace(m)
		if m == "" || seen[m] {
			continue
		}
		if _, _, err := net.SplitHostPort(m); err != nil {
			return nil, fmt.Errorf("cluster: member %q is not host:port: %w", m, err)
		}
		seen[m] = true
		list = append(list, m)
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the member list %v", self, list)
	}
	if len(list) < 2 {
		return nil, fmt.Errorf("cluster: a ring needs at least 2 members, have %v", list)
	}
	sort.Strings(list)
	r := &Ring{self: self, members: list}
	r.points = make([]ringPoint, 0, len(list)*replicas)
	for _, m := range list {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	// Ties broken by member name so every node sorts identically even
	// in the astronomically unlikely event of a point collision.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// hash64 is the ring's hash: FNV-1a, stable across processes and
// releases (keys must route identically on every member).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Owner returns the member that owns a key: the first virtual node at
// or clockwise of the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owns reports whether this node owns the key.
func (r *Ring) Owns(key string) bool { return r.Owner(key) == r.self }

// Self returns this node's ring address.
func (r *Ring) Self() string { return r.self }

// Members returns the sorted member list (including self).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }
