package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// twoNodeConfig builds a cluster whose only peer is the given test
// server, with fast retries so failure tests stay quick.
func twoNodeConfig(t *testing.T, peerAddr string, retries int) *Cluster {
	t.Helper()
	self := "127.0.0.1:1"
	c, err := New(Config{
		Self:    self,
		Members: []string{self, peerAddr},
		Client:  NewHTTPClient(DefaultTimeouts()),
		Retries: retries,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A forward posts the spec to the peer's /v1/runs with the forwarded
// marker and the trace ID, strips the response's trailing newline, and
// relays the cache disposition plus the owner's span header.
func TestForwardRoundTrip(t *testing.T) {
	var gotForwarded, gotTrace atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/runs" {
			t.Errorf("forward hit %s, want /v1/runs", r.URL.Path)
		}
		gotForwarded.Store(r.Header.Get(ForwardedHeader))
		gotTrace.Store(r.Header.Get(TraceHeader))
		w.Header().Set(cacheHeader, "hit")
		w.Header().Set(TraceSpansHeader, `[{"name":"store_get","start_us":0,"dur_us":3,"note":"hit"}]`)
		w.Write([]byte(`{"runtime_ps":7}` + "\n"))
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")
	c := twoNodeConfig(t, peer, -1)

	fwd, err := c.Forward(context.Background(), peer, []byte(`{}`), "cafe0123")
	if err != nil {
		t.Fatal(err)
	}
	if string(fwd.Data) != `{"runtime_ps":7}` {
		t.Errorf("forwarded data = %q (trailing newline must be stripped)", fwd.Data)
	}
	if fwd.Disposition != "hit" {
		t.Errorf("disposition = %q, want hit", fwd.Disposition)
	}
	if !strings.Contains(fwd.RemoteSpans, `"store_get"`) {
		t.Errorf("remote spans = %q, want the owner's span header relayed", fwd.RemoteSpans)
	}
	if got := gotForwarded.Load(); got != c.Self() {
		t.Errorf("forwarded marker = %v, want %s", got, c.Self())
	}
	if got := gotTrace.Load(); got != "cafe0123" {
		t.Errorf("trace header = %v, want cafe0123", got)
	}
	st := c.Stats()
	if len(st.Peers) != 1 || st.Peers[0].Forwards != 1 || st.Peers[0].Hits != 1 || st.Peers[0].Errors != 0 {
		t.Errorf("stats after hit = %+v", st.Peers)
	}
}

// Connection errors retry with backoff and finally surface as an error
// plus an error counter — the caller's cue to compute locally.
func TestForwardRetriesThenDegrades(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")

	// Two retries ride out the two 503s.
	c := twoNodeConfig(t, peer, 2)
	if _, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err != nil {
		t.Fatalf("forward with 2 retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("peer saw %d attempts, want 3", got)
	}

	// A dead peer fails every attempt and lands on the error counter.
	srv.Close()
	if _, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err == nil {
		t.Fatal("forward to a closed peer succeeded")
	}
	st := c.Stats()
	if st.Peers[0].Errors != 1 {
		t.Fatalf("error counter = %d, want 1 (stats: %+v)", st.Peers[0].Errors, st.Peers)
	}
}

// A 400 from the peer is not retried: the spec will not get better.
func TestForwardDoesNotRetryBadRequests(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")
	c := twoNodeConfig(t, peer, 3)
	if _, err := c.Forward(context.Background(), peer, []byte(`{}`), ""); err == nil {
		t.Fatal("forward of a rejected spec succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("peer saw %d attempts for a 400, want 1", got)
	}
}

// A cancelled context stops the retry loop promptly.
func TestForwardHonorsContext(t *testing.T) {
	c := twoNodeConfig(t, "127.0.0.1:9", 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.Forward(ctx, "127.0.0.1:9", []byte(`{}`), ""); err == nil {
		t.Fatal("forward with cancelled context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled forward took %s", elapsed)
	}
}

// Admission: an idle node admits anything, a busy node sheds past the
// budget, and release restores capacity exactly once.
func TestAdmission(t *testing.T) {
	a := NewAdmission(4, "/v1/grids", "/v1/sweeps")

	// Idle overshoot: one stream larger than the budget is admitted.
	release, ok := a.Admit("/v1/grids", 10)
	if !ok {
		t.Fatal("idle node refused its first stream")
	}
	// Busy: anything more is shed.
	if _, ok := a.Admit("/v1/sweeps", 1); ok {
		t.Fatal("over-budget node admitted a second stream")
	}
	if s := a.RetryAfterSeconds(); s < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", s)
	}
	release()
	release() // idempotent
	if got := a.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if _, ok := a.Admit("/v1/sweeps", 2); !ok {
		t.Fatal("freed node refused a small stream")
	}
	st := a.Stats()
	if st.ShedTotal != 1 || len(st.Shed) != 2 {
		t.Fatalf("stats = %+v, want 1 shed across 2 pre-registered routes", st)
	}
	if st.Shed[0].Route != "/v1/grids" || st.Shed[0].Count != 0 ||
		st.Shed[1].Route != "/v1/sweeps" || st.Shed[1].Count != 1 {
		t.Fatalf("per-route shed = %+v", st.Shed)
	}
}

// An unlimited gate never sheds.
func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(0)
	for i := 0; i < 10; i++ {
		if _, ok := a.Admit("/v1/grids", 1000); !ok {
			t.Fatal("unlimited gate shed")
		}
	}
}
