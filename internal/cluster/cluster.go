package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"tsnoop/internal/fault"
)

// ForwardedHeader marks a request that was already routed by a peer's
// ring. A server answering a forwarded request always computes locally
// — whatever two rings might momentarily disagree about (mid-rollout
// member lists), a forward can never loop.
const ForwardedHeader = "X-Tsnoop-Forwarded"

// cacheHeader is the service's cache-disposition response header; the
// forwarding client relays it so the entry node can report remote hits.
const cacheHeader = "X-Tsnoop-Cache"

// TraceHeader carries the request trace ID. The entry node generates
// one (or the client supplies its own), every response echoes it, and
// forwards propagate it so both nodes record the hop under one ID.
const TraceHeader = "X-Tsnoop-Trace"

// TraceSpansHeader is the owner's response header on a forwarded run:
// its wall-clock span list as JSON, which the entry node embeds into
// its own trace so GET /v1/traces/{id} shows both sides of the hop.
const TraceSpansHeader = "X-Tsnoop-Trace-Spans"

// maxForwardBody bounds a forwarded response body: a stats.Run JSON is
// a few kilobytes, so 64 MiB is "unbounded in practice" while still
// making a misbehaving peer an error instead of an OOM.
const maxForwardBody = 64 << 20

// Config parameterizes a Cluster.
type Config struct {
	// Self is this node's address exactly as it appears in Members.
	Self string
	// Members is the full static ring (host:port each, including Self).
	Members []string
	// Replicas is the virtual nodes per member (0 = DefaultReplicas).
	Replicas int
	// Client performs forwards (nil = NewHTTPClient(DefaultTimeouts())).
	Client *http.Client
	// Retries is how many times a failed forward is retried before the
	// caller degrades to local compute (0 = 1 retry; negative = none).
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (0 = 100ms).
	Backoff time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// peer's circuit breaker open (0 = DefaultBreakerThreshold;
	// negative = breakers disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe is allowed (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// breakerNow overrides the breakers' clock in tests.
	breakerNow func() time.Time
}

// ErrBreakerOpen marks a forward skipped because the peer's breaker is
// open: the caller degrades to local compute, and the skip is counted
// separately from forward errors (the peer was not even tried).
var ErrBreakerOpen = errors.New("cluster: peer breaker open")

// errInjectedRefuse is the cluster.forward.refuse failpoint's error,
// shaped like a real refused connection.
var errInjectedRefuse = fmt.Errorf("fault: injected dial error: %w", syscall.ECONNREFUSED)

// peerCounters accumulate one peer's forwarding traffic.
type peerCounters struct {
	forwards int64 // misses forwarded to this peer
	hits     int64 // forwards the peer answered from its store
	errors   int64 // forwards that failed every attempt
}

// Cluster is one node's view of the fleet: the shared ring plus a
// forwarding client and its per-peer counters. All methods are safe
// for concurrent use.
type Cluster struct {
	ring    *Ring
	client  *http.Client
	retries int
	backoff time.Duration

	// breakers holds one circuit breaker per remote peer, pre-registered
	// in New alongside the counters; the map is never written after New,
	// so reads need no lock.
	breakers map[string]*breaker

	mu         sync.Mutex
	peers      map[string]*peerCounters
	replicated int64
}

// New builds a cluster node from the static member list.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Self, cfg.Members, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = NewHTTPClient(DefaultTimeouts())
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = 1
	}
	if retries < 0 {
		retries = 0
	}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	c := &Cluster{ring: ring, client: client, retries: retries, backoff: backoff,
		peers: make(map[string]*peerCounters), breakers: make(map[string]*breaker)}
	// Pre-register every peer so Stats (and the /metrics exposition) is
	// a fixed, deterministic series set from the first scrape.
	for _, m := range ring.Members() {
		if m != ring.Self() {
			c.peers[m] = &peerCounters{}
			c.breakers[m] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.breakerNow)
		}
	}
	return c, nil
}

// Self returns this node's ring address.
func (c *Cluster) Self() string { return c.ring.Self() }

// Members returns the sorted static member list.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Route returns the member owning key and whether it is a remote peer
// (false: this node owns the shard and must compute locally).
func (c *Cluster) Route(key string) (peer string, remote bool) {
	owner := c.ring.Owner(key)
	return owner, owner != c.ring.Self()
}

// Forwarded is one successful forward's answer: the owner's canonical
// Run JSON (trailing newline stripped, so the bytes are identical to a
// local Result.Data), its cache disposition ("hit", "join" or "miss"),
// and — when the owner runs a trace-aware build — the owner's
// wall-clock span list (TraceSpansHeader JSON) for the entry node's
// trace.
type Forwarded struct {
	Data        []byte
	Disposition string
	RemoteSpans string
}

// Forward sends one spec to its owning peer's POST /v1/runs, stamped
// with the entry node's trace ID (empty = untraced), and returns the
// owner's answer. Connection errors and 5xx/429 responses are retried
// with exponential backoff; a forward that fails every attempt is
// counted on the peer and returned as an error for the caller to
// degrade on — the repo-wide rule is that a dead peer costs a local
// simulation, never a failed stream.
//
// A peer whose circuit breaker is open is not tried at all: Forward
// returns ErrBreakerOpen immediately (a skip, not a forward error) so
// the caller computes locally without paying the dial/retry tax for a
// peer already known to be failing. Forward outcomes feed the breaker:
// consecutive failures trip it, a successful half-open probe closes it.
func (c *Cluster) Forward(ctx context.Context, peer string, specJSON []byte, traceID string) (Forwarded, error) {
	br := c.breakers[peer]
	if br != nil && !br.allow() {
		return Forwarded{}, fmt.Errorf("%w: %s", ErrBreakerOpen, peer)
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if serr := sleep(ctx, c.backoff<<(attempt-1)); serr != nil {
				break
			}
		}
		fwd, ferr, retryable := c.forwardOnce(ctx, peer, specJSON, traceID)
		if ferr == nil {
			if br != nil {
				br.success()
			}
			c.recordForward(peer, fwd.Disposition)
			return fwd, nil
		}
		lastErr = ferr
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	if br != nil {
		br.failure()
	}
	c.recordError(peer)
	return Forwarded{}, lastErr
}

// Suspect records that peer's "successful" forward produced an
// unusable answer (a body the entry node could not decode): the
// breaker treats it as a failure even though the HTTP exchange
// succeeded, so a peer that keeps answering garbage trips open just
// like one that refuses connections. The degraded forward is also
// counted as a peer error.
func (c *Cluster) Suspect(peer string) {
	if br := c.breakers[peer]; br != nil {
		br.failure()
	}
	c.mu.Lock()
	c.counters(peer).errors++
	c.mu.Unlock()
}

// forwardOnce performs a single forwarding attempt. retryable
// classifies the failure: connection trouble and 5xx/429 responses may
// clear up, 4xx responses will not.
func (c *Cluster) forwardOnce(ctx context.Context, peer string, specJSON []byte, traceID string) (fwd Forwarded, err error, retryable bool) {
	if f := fault.Active(); f != nil {
		if d := f.Delay(fault.ClusterLatency); d > 0 {
			if serr := sleep(ctx, d); serr != nil {
				return Forwarded{}, fmt.Errorf("cluster: forward to %s: %w", peer, serr), false
			}
		}
		if f.Fire(fault.ClusterDialRefuse) {
			return Forwarded{}, fmt.Errorf("cluster: forward to %s: %w", peer, errInjectedRefuse), true
		}
		if f.Fire(fault.Cluster5xx) {
			return Forwarded{}, fmt.Errorf("cluster: peer %s answered 502 Bad Gateway (injected)", peer), true
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v1/runs", bytes.NewReader(specJSON))
	if err != nil {
		return Forwarded{}, fmt.Errorf("cluster: forward to %s: %w", peer, err), false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.ring.Self())
	if traceID != "" {
		req.Header.Set(TraceHeader, traceID)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return Forwarded{}, fmt.Errorf("cluster: forward to %s: %w", peer, err), true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<14))
		retry := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
		return Forwarded{}, fmt.Errorf("cluster: peer %s answered %s: %s",
			peer, resp.Status, strings.TrimSpace(string(msg))), retry
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody+1))
	if err != nil {
		return Forwarded{}, fmt.Errorf("cluster: reading %s response: %w", peer, err), true
	}
	if len(data) > maxForwardBody {
		return Forwarded{}, fmt.Errorf("cluster: peer %s response exceeds %d bytes", peer, maxForwardBody), false
	}
	// The cluster.forward.truncate failpoint cuts the body mid-document
	// after a fully "successful" exchange — the garbage-answering-peer
	// shape the entry node's decode check and Suspect exist for.
	if f := fault.Active(); f != nil {
		data, _ = f.Truncate(fault.ClusterTruncate, data)
	}
	// The runs handler terminates the JSON document with one newline;
	// strip it so forwarded bytes equal a local Result.Data exactly.
	data = bytes.TrimSuffix(data, []byte("\n"))
	return Forwarded{
		Data:        data,
		Disposition: resp.Header.Get(cacheHeader),
		RemoteSpans: resp.Header.Get(TraceSpansHeader),
	}, nil, false
}

// Replicate counts one peer result copied into the local LRU front.
func (c *Cluster) Replicate() {
	c.mu.Lock()
	c.replicated++
	c.mu.Unlock()
}

func (c *Cluster) counters(peer string) *peerCounters {
	ctr, ok := c.peers[peer]
	if !ok {
		ctr = &peerCounters{}
		c.peers[peer] = ctr
	}
	return ctr
}

func (c *Cluster) recordForward(peer, disposition string) {
	c.mu.Lock()
	ctr := c.counters(peer)
	ctr.forwards++
	if disposition == "hit" {
		ctr.hits++
	}
	c.mu.Unlock()
}

func (c *Cluster) recordError(peer string) {
	c.mu.Lock()
	ctr := c.counters(peer)
	ctr.forwards++
	ctr.errors++
	c.mu.Unlock()
}

// PeerStats is one peer's forwarding counters.
type PeerStats struct {
	Peer string `json:"peer"`
	// Forwards counts misses routed to this peer (including failed
	// attempts' final outcomes, not per-retry).
	Forwards int64 `json:"forwards"`
	// Hits counts forwards the peer answered from its store — the
	// remote-cache-hit signal the CI smoke asserts on.
	Hits int64 `json:"hits"`
	// Errors counts forwards that degraded to local compute: failures on
	// every attempt, plus "successful" forwards whose body was unusable
	// (Suspect).
	Errors int64 `json:"errors"`
	// Breaker is the peer's circuit-breaker state: "closed", "open", or
	// "half-open".
	Breaker string `json:"breaker"`
	// BreakerTrips counts transitions to open (including a failed
	// half-open probe re-opening).
	BreakerTrips int64 `json:"breaker_trips"`
	// BreakerSkips counts forwards skipped because the breaker was open
	// — degradations that cost a local compute but no network attempt.
	BreakerSkips int64 `json:"breaker_skips"`
}

// Stats is a point-in-time snapshot of one node's cluster counters.
type Stats struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	// Replicated counts peer results copied into the local LRU front.
	Replicated int64 `json:"replicated"`
	// Peers is sorted by peer address, so renderings are deterministic.
	Peers []PeerStats `json:"peers"`
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := make([]PeerStats, 0, len(c.peers))
	for peer, ctr := range c.peers {
		st := PeerStats{Peer: peer, Forwards: ctr.forwards, Hits: ctr.hits, Errors: ctr.errors, Breaker: BreakerClosed}
		if br := c.breakers[peer]; br != nil {
			st.Breaker, st.BreakerTrips, st.BreakerSkips = br.snapshot()
		}
		ps = append(ps, st)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Peer < ps[j].Peer })
	return Stats{Self: c.ring.Self(), Members: c.ring.Members(), Replicated: c.replicated, Peers: ps}
}
