package cluster

import (
	"sync"
	"time"
)

// Breaker state names, as rendered in PeerStats, /healthz, and the
// tsnoop_cluster_breaker_state metric (closed=0, open=1, half-open=2).
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Breaker defaults: a peer that fails this many consecutive forwards
// trips its breaker open, and stays open for the cooldown before a
// single half-open probe is allowed through.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// numeric breaker states (the metric encoding).
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breaker is one peer's circuit breaker. Closed passes traffic and
// counts consecutive failures; at the threshold it trips open and every
// forward is skipped (the caller degrades straight to local compute,
// sparing the dial/retry/backoff tax on a peer already known dead).
// After the cooldown one probe is let through half-open: success closes
// the breaker, failure re-opens it for another cooldown.
//
// The breaker reads the wall clock — cooldown expiry is inherently a
// time concern — through an injectable now func so tests drive it
// without sleeping. Like retry pacing, breaker timing is service-edge
// wall clock that can never reach simulation output bytes.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // the single half-open probe is in flight
	trips    int64
	skips    int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		//determinism:wallclock breaker cooldowns are service-edge timing, never simulation input
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a forward to this peer may proceed. A false
// return is a breaker skip (counted), not a forward error. A negative
// threshold disables the breaker entirely.
func (b *breaker) allow() bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.skips++
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			b.skips++
			return false
		}
		b.probing = true
		return true
	}
}

// success records a forward that worked; any state resets to closed.
func (b *breaker) success() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a forward that failed every attempt (or answered
// garbage). Closed trips at the consecutive-failure threshold; a failed
// half-open probe re-opens immediately.
func (b *breaker) failure() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case stateHalfOpen:
		b.trip()
	}
}

// trip moves to open; b.mu must be held.
func (b *breaker) trip() {
	b.state = stateOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.trips++
}

// snapshot returns the state name plus trip/skip counters.
func (b *breaker) snapshot() (state string, trips, skips int64) {
	if b.threshold < 0 {
		return BreakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		// An expired cooldown reads as half-open: the next forward will
		// probe, and surfacing that in /healthz beats reporting a peer
		// "open" that is actually one request from recovery.
		if b.now().Sub(b.openedAt) >= b.cooldown {
			return BreakerHalfOpen, b.trips, b.skips
		}
		return BreakerOpen, b.trips, b.skips
	case stateHalfOpen:
		return BreakerHalfOpen, b.trips, b.skips
	}
	return BreakerClosed, b.trips, b.skips
}
