package workload

import (
	"fmt"
	"sort"
	"strings"
)

// The five benchmark profiles, calibrated so that a 16-processor run with
// the paper's 4 MB caches lands near Table 3's cache-to-cache miss
// fractions:
//
//	OLTP 43%, DSS 60%, apache 40%, altavista 40%, barnes 43%
//
// and preserves the footprint and miss-count orderings (OLTP largest,
// barnes smallest). calibration_test.go asserts the realized fractions
// stay within tolerance.
//
// A rough steady-state model guides the numbers: with lock/migratory-pair
// decision fraction a, bare-store handoff fraction s, and cold-walk
// fraction c, the cache-to-cache share of misses is (a+s)/(2a+s+c) — pairs
// miss twice (one cache-to-cache, one memory), handoffs miss once
// (cache-to-cache), cold walks miss once (memory).

// OLTP models DB2 running a TPC-C-like workload: a large footprint, many
// concurrent read/write transactions over warehouse records (migratory),
// shared catalog/index pages (read-shared), and latch contention.
func OLTP(cpus int) *Synthetic {
	return MustSynthetic(Profile{
		Name:                "OLTP",
		FootprintMB:         47.1,
		LockFrac:            0.012,
		MigPairFrac:         0.048,
		MigStoreFrac:        0.066,
		ReadSharedFrac:      0.120,
		PrivateColdFrac:     0.041,
		PrivateWriteFrac:    0.30,
		ReadSharedWriteFrac: 0.012,
		HotBlocksPerCPU:     512,
		MigratoryBlocks:     512,
		ReadSharedBlocks:    320,
		LockBlocks:          48,
		MeanThink:           35,
	}, cpus)
}

// DSS models DB2 executing TPC-H query 12: a smaller memory-resident
// database scanned by cooperating operators with intra-query parallelism.
// Exchange-operator handoffs make the sharing intensely migratory (60%
// cache-to-cache) and the hot latches trigger the nack storms the paper
// observed under DirClassic ("due, in part, to a large number of nacks").
func DSS(cpus int) *Synthetic {
	return MustSynthetic(Profile{
		Name:                "DSS",
		FootprintMB:         8.7,
		LockFrac:            0.030,
		MigPairFrac:         0.012,
		MigStoreFrac:        0.164,
		ReadSharedFrac:      0.100,
		PrivateColdFrac:     0.055,
		PrivateWriteFrac:    0.15,
		ReadSharedWriteFrac: 0.008,
		HotBlocksPerCPU:     192,
		MigratoryBlocks:     384,
		ReadSharedBlocks:    192,
		LockBlocks:          6,
		MeanThink:           45,
	}, cpus)
}

// Apache models the Apache web server driven by SURGE: worker processes
// serving a shared document corpus, with accept-queue and scoreboard
// contention.
func Apache(cpus int) *Synthetic {
	return MustSynthetic(Profile{
		Name:                "apache",
		FootprintMB:         13.3,
		LockFrac:            0.010,
		MigPairFrac:         0.040,
		MigStoreFrac:        0.051,
		ReadSharedFrac:      0.160,
		PrivateColdFrac:     0.050,
		PrivateWriteFrac:    0.25,
		ReadSharedWriteFrac: 0.015,
		HotBlocksPerCPU:     256,
		MigratoryBlocks:     448,
		ReadSharedBlocks:    288,
		LockBlocks:          24,
		MeanThink:           40,
	}, cpus)
}

// Altavista models the Altavista search engine: query threads walking a
// large shared read-mostly index with occasional index maintenance and
// result-buffer handoffs.
func Altavista(cpus int) *Synthetic {
	return MustSynthetic(Profile{
		Name:                "altavista",
		FootprintMB:         15.3,
		LockFrac:            0.008,
		MigPairFrac:         0.042,
		MigStoreFrac:        0.058,
		ReadSharedFrac:      0.200,
		PrivateColdFrac:     0.047,
		PrivateWriteFrac:    0.18,
		ReadSharedWriteFrac: 0.012,
		HotBlocksPerCPU:     288,
		MigratoryBlocks:     448,
		ReadSharedBlocks:    320,
		LockBlocks:          20,
		MeanThink:           38,
	}, cpus)
}

// Barnes models the SPLASH-2 barnes-hut N-body kernel (16K bodies): a
// small footprint, body records that migrate between processors during
// tree building, and read-shared tree cells during force computation.
func Barnes(cpus int) *Synthetic {
	return MustSynthetic(Profile{
		Name:                "barnes",
		FootprintMB:         4.0,
		LockFrac:            0.008,
		MigPairFrac:         0.042,
		MigStoreFrac:        0.042,
		ReadSharedFrac:      0.130,
		PrivateColdFrac:     0.055,
		PrivateWriteFrac:    0.28,
		ReadSharedWriteFrac: 0.010,
		HotBlocksPerCPU:     96,
		MigratoryBlocks:     384,
		ReadSharedBlocks:    160,
		LockBlocks:          16,
		MeanThink:           50,
	}, cpus)
}

// Benchmarks returns the five paper benchmarks in presentation order.
func Benchmarks(cpus int) []*Synthetic {
	return []*Synthetic{OLTP(cpus), DSS(cpus), Apache(cpus), Altavista(cpus), Barnes(cpus)}
}

// MeasureQuota returns the per-processor measured-phase quota used for
// each benchmark, scaled so the realized miss counts preserve Table 3's
// ordering (OLTP 5.3M largest ... barnes 1.0M smallest).
func MeasureQuota(name string) int {
	switch name {
	case "OLTP":
		return 5000
	case "DSS":
		return 1500
	case "apache":
		return 2200
	case "altavista":
		return 2400
	case "barnes":
		return 1000
	default:
		return 2500
	}
}

// Uniform is a microbenchmark generator: uniform random accesses over a
// fixed pool with a fixed write fraction; used by validation tests and
// the latency probes.
func Uniform(blocks int, writeFrac float64, meanThink float64, cpus int) *Synthetic {
	return MustSynthetic(Profile{
		Name:                "uniform",
		FootprintMB:         float64(blocks*64) / (1024 * 1024) * 4,
		ReadSharedFrac:      1.0,
		ReadSharedWriteFrac: writeFrac,
		ReadSharedBlocks:    blocks,
		MeanThink:           meanThink,
	}, cpus)
}

// synthetic returns a fresh synthetic generator for a paper benchmark
// name, or nil for an unknown name.
func synthetic(name string, cpus int) *Synthetic {
	switch name {
	case "OLTP":
		return OLTP(cpus)
	case "DSS":
		return DSS(cpus)
	case "apache":
		return Apache(cpus)
	case "altavista":
		return Altavista(cpus)
	case "barnes":
		return Barnes(cpus)
	default:
		return nil
	}
}

// resolvers maps a name-scheme prefix (the "trace" in "trace:<path>") to
// its resolution function. Schemes register from an init — see
// internal/trace, which provides trace:<path> replay workloads.
var resolvers = map[string]func(arg string, cpus int) (Generator, error){}

// RegisterScheme makes ByName resolve "<scheme>:<arg>" names through
// resolve. Registering a scheme twice panics.
func RegisterScheme(scheme string, resolve func(arg string, cpus int) (Generator, error)) {
	if _, dup := resolvers[scheme]; dup {
		panic("workload: duplicate scheme " + scheme)
	}
	resolvers[scheme] = resolve
}

// ByName returns a fresh generator for a workload name: one of the paper
// benchmarks, or a registered scheme name such as "trace:<path>".
// Generators are stateful; every run needs a fresh one (build one per
// run, or CloneOf a looked-up generator).
func ByName(name string, cpus int) (Generator, error) {
	if cpus < 1 {
		return nil, fmt.Errorf("workload: %q needs at least one cpu, got %d", name, cpus)
	}
	if scheme, arg, ok := strings.Cut(name, ":"); ok {
		if resolve := resolvers[scheme]; resolve != nil {
			return resolve(arg, cpus)
		}
		return nil, fmt.Errorf("workload: unknown scheme %q in %q (have %s)", scheme, name, strings.Join(ValidNames(), ", "))
	}
	if g := synthetic(name, cpus); g != nil {
		return g, nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (have %s)", name, strings.Join(ValidNames(), ", "))
}

// CheckName reports (without IO) whether name would resolve: a paper
// benchmark or a registered scheme name. The error is a one-line
// diagnostic listing the valid names.
func CheckName(name string) error {
	if scheme, _, ok := strings.Cut(name, ":"); ok {
		if _, registered := resolvers[scheme]; registered {
			return nil
		}
		return fmt.Errorf("unknown workload scheme %q in %q (have %s)", scheme, name, strings.Join(ValidNames(), ", "))
	}
	for _, n := range Names() {
		if name == n {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (have %s)", name, strings.Join(ValidNames(), ", "))
}

// Names lists the paper benchmarks in presentation order.
func Names() []string { return []string{"OLTP", "DSS", "apache", "altavista", "barnes"} }

// ValidNames lists everything ByName accepts: the paper benchmarks plus
// one "<scheme>:<arg>" placeholder per registered scheme.
func ValidNames() []string {
	names := Names()
	schemes := make([]string, 0, len(resolvers))
	for s := range resolvers {
		schemes = append(schemes, s+":<path>")
	}
	sort.Strings(schemes)
	return append(names, schemes...)
}
