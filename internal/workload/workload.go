// Package workload synthesizes the paper's benchmark reference streams.
//
// The paper drove its memory-system simulator from Simics full-system
// execution of five workloads: OLTP (DB2/TPC-C), DSS (DB2/TPC-H Q12), web
// serving (Apache+SURGE), web searching (Altavista), and barnes from
// SPLASH-2. Running those stacks is not possible here, so each benchmark
// is replaced by a synthetic generator calibrated to reproduce the
// first-order characteristics the paper's results depend on (Table 3):
//
//   - the data footprint ("total data touched"),
//   - the fraction of misses that are cache-to-cache transfers
//     (43/60/40/40/43 percent),
//   - contended hot blocks (locks) that trigger directory races and, for
//     DirClassic, nack storms (the paper's DSS anomaly).
//
// A generator mixes five access categories:
//
//   - private: per-processor data, mostly re-referenced within a hot
//     subset (L2 hits) with occasional cold walks (memory misses);
//   - migratory: read-modify-write records that move processor to
//     processor — the load misses to the previous owner's cache (a
//     cache-to-cache transfer) and the store upgrades from memory;
//   - read-shared: mostly-read data with a sporadic producer rewrite;
//   - lock: a handful of extremely hot test-and-set blocks;
//   - the per-category write ratios.
//
// Streams are deterministic functions of the per-processor RNG, so runs
// are exactly reproducible.
package workload

import (
	"fmt"

	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
)

// Access is one L2 reference.
type Access struct {
	Block coherence.Block
	Op    coherence.Op
	// Think is the number of instructions executed before this access.
	Think int
}

// Generator produces one processor's L2 reference stream.
type Generator interface {
	// Name is the benchmark name as used in the paper's tables.
	Name() string
	// FootprintBytes is the configured total data footprint.
	FootprintBytes() int64
	// Next returns cpu's next access, using r for all randomness.
	Next(cpu int, r *sim.Rand) Access
}

// Cloner is implemented by generators that can produce a fresh-state copy
// of themselves. Generators are stateful, so every simulation needs its
// own; the harness clones one looked-up generator per run.
type Cloner interface {
	Generator
	CloneGenerator() Generator
}

// CloneOf returns a fresh-state copy of g when it implements Cloner, and
// g itself otherwise.
func CloneOf(g Generator) Generator {
	if c, ok := g.(Cloner); ok {
		return c.CloneGenerator()
	}
	return g
}

// Quotaed is implemented by workloads that carry their own warm-up and
// measured-phase quotas — recorded traces, whose length fixes both. The
// harness uses these instead of the benchmark defaults.
type Quotaed interface {
	Quotas() (warmupPerCPU, measurePerCPU int)
}

// Wrapping is implemented by replay-style generators whose fixed stream
// can run dry and restart from the top. Wraps reports how often that
// happened; consumers treat a nonzero count as an error, since wrapped
// statistics silently re-measure warm data.
type Wrapping interface {
	Wraps() int
}

// Profile parameterizes a synthetic benchmark.
//
// Two migratory knobs shape the cache-to-cache fraction: a MigPair (an
// atomic load+store on a migratory record) misses twice — the load is
// supplied by the previous owner's cache (cache-to-cache) and the store
// upgrade by memory — contributing 50% cache-to-cache; a MigStore (a bare
// store handoff, e.g. enqueueing into another processor's work queue)
// misses straight to the previous owner's Modified copy, contributing
// 100%. Cold walks and read-shared re-fetches after a producer rewrite
// are (mostly) memory misses and dilute the fraction.
type Profile struct {
	Name        string
	FootprintMB float64

	// Category probabilities for each generated access (private hot
	// references get the remainder).
	LockFrac        float64 // test-and-set pair on a hot lock
	MigPairFrac     float64 // load+store pair on a migratory record
	MigStoreFrac    float64 // bare store handoff on a migratory record
	ReadSharedFrac  float64
	PrivateColdFrac float64 // cold walk over the whole private region

	// PrivateWriteFrac is the store ratio within private accesses.
	PrivateWriteFrac float64
	// ReadSharedWriteFrac is the producer-rewrite probability.
	ReadSharedWriteFrac float64

	// Pool sizes in blocks.
	HotBlocksPerCPU  int
	MigratoryBlocks  int
	ReadSharedBlocks int
	LockBlocks       int

	// MeanThink is the mean instruction count between L2 references.
	MeanThink float64
}

// cpuState carries the tiny amount of per-processor generator state: the
// second half of an atomic read-modify-write.
type cpuState struct {
	pendingStore bool
	pendingBlock coherence.Block
}

// Synthetic implements Generator from a Profile.
type Synthetic struct {
	prof       Profile
	cpus       int
	blockBytes int64

	privBlocksPerCPU int64
	migBase          coherence.Block
	rsBase           coherence.Block
	lockBase         coherence.Block
	privBase         coherence.Block

	state []cpuState
}

// NewSynthetic builds a generator for the given processor count.
func NewSynthetic(prof Profile, cpus int) (*Synthetic, error) {
	if cpus < 1 {
		return nil, fmt.Errorf("workload: need at least one cpu")
	}
	const blockBytes = 64
	total := int64(prof.FootprintMB * 1024 * 1024 / blockBytes)
	shared := int64(prof.MigratoryBlocks + prof.ReadSharedBlocks + prof.LockBlocks)
	if total <= shared {
		return nil, fmt.Errorf("workload %s: footprint %d blocks <= shared pools %d", prof.Name, total, shared)
	}
	g := &Synthetic{
		prof:             prof,
		cpus:             cpus,
		blockBytes:       blockBytes,
		privBlocksPerCPU: (total - shared) / int64(cpus),
		state:            make([]cpuState, cpus),
	}
	// Address map: [locks][migratory][read-shared][private x cpus].
	g.lockBase = 0
	g.migBase = coherence.Block(prof.LockBlocks)
	g.rsBase = g.migBase + coherence.Block(prof.MigratoryBlocks)
	g.privBase = g.rsBase + coherence.Block(prof.ReadSharedBlocks)
	return g, nil
}

// MustSynthetic is NewSynthetic but panics on error.
func MustSynthetic(prof Profile, cpus int) *Synthetic {
	g, err := NewSynthetic(prof, cpus)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.prof.Name }

// FootprintBytes implements Generator.
func (g *Synthetic) FootprintBytes() int64 {
	return int64(g.prof.FootprintMB * 1024 * 1024)
}

// TotalBlocks returns the number of distinct blocks the generator can
// reference.
func (g *Synthetic) TotalBlocks() int64 {
	return int64(g.privBase) + g.privBlocksPerCPU*int64(g.cpus)
}

// Next implements Generator.
func (g *Synthetic) Next(cpu int, r *sim.Rand) Access {
	st := &g.state[cpu]
	think := r.Geometric(g.prof.MeanThink)

	// Complete an atomic read-modify-write begun by the previous access.
	if st.pendingStore {
		st.pendingStore = false
		return Access{Block: st.pendingBlock, Op: coherence.Store, Think: 1 + think/8}
	}

	roll := r.Float64()
	cut := g.prof.LockFrac
	if roll < cut {
		// Test-and-set on a hot lock: load then store.
		b := g.lockBase + coherence.Block(r.Intn(g.prof.LockBlocks))
		st.pendingStore = true
		st.pendingBlock = b
		return Access{Block: b, Op: coherence.Load, Think: think}
	}
	cut += g.prof.MigPairFrac
	if roll < cut {
		// Migratory record: read-modify-write that hops between cpus.
		b := g.migBase + coherence.Block(r.Intn(g.prof.MigratoryBlocks))
		st.pendingStore = true
		st.pendingBlock = b
		return Access{Block: b, Op: coherence.Load, Think: think}
	}
	cut += g.prof.MigStoreFrac
	if roll < cut {
		// Bare store handoff: the fill comes straight from the previous
		// owner's Modified copy.
		b := g.migBase + coherence.Block(r.Intn(g.prof.MigratoryBlocks))
		return Access{Block: b, Op: coherence.Store, Think: think}
	}
	cut += g.prof.ReadSharedFrac
	if roll < cut {
		b := g.rsBase + coherence.Block(r.Intn(g.prof.ReadSharedBlocks))
		op := coherence.Load
		if r.Bool(g.prof.ReadSharedWriteFrac) {
			op = coherence.Store
		}
		return Access{Block: b, Op: op, Think: think}
	}
	cut += g.prof.PrivateColdFrac
	base := g.privBase + coherence.Block(int64(cpu)*g.privBlocksPerCPU)
	var b coherence.Block
	if roll < cut {
		// Cold walk across the whole private region (footprint driver,
		// memory miss).
		b = base + coherence.Block(r.Int63n(g.privBlocksPerCPU))
	} else {
		span := int64(g.prof.HotBlocksPerCPU)
		if span < 1 || span > g.privBlocksPerCPU {
			span = g.privBlocksPerCPU
		}
		b = base + coherence.Block(r.Int63n(span))
	}
	op := coherence.Load
	if r.Bool(g.prof.PrivateWriteFrac) {
		op = coherence.Store
	}
	return Access{Block: b, Op: op, Think: think}
}

// Profile returns a copy of the generator's profile (calibration tooling).
func (g *Synthetic) Profile() Profile { return g.prof }

// Clone returns an identically configured generator with fresh per-CPU
// state. Generators are stateful, so every simulation needs its own;
// cloning lets one ByName lookup feed many (possibly concurrent) runs.
func (g *Synthetic) Clone() *Synthetic {
	c := *g
	c.state = make([]cpuState, g.cpus)
	return &c
}

// CloneGenerator implements Cloner.
func (g *Synthetic) CloneGenerator() Generator { return g.Clone() }
