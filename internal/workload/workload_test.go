package workload

import (
	"testing"
	"testing/quick"

	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
)

func TestProfilesConstruct(t *testing.T) {
	for _, g := range Benchmarks(16) {
		if g.Name() == "" {
			t.Fatal("unnamed benchmark")
		}
		if g.FootprintBytes() <= 0 {
			t.Fatalf("%s footprint = %d", g.Name(), g.FootprintBytes())
		}
		if g.TotalBlocks() <= 0 {
			t.Fatalf("%s no blocks", g.Name())
		}
	}
}

func TestBenchmarkOrder(t *testing.T) {
	bs := Benchmarks(16)
	want := []string{"OLTP", "DSS", "apache", "altavista", "barnes"}
	for i, g := range bs {
		if g.Name() != want[i] {
			t.Fatalf("benchmark %d = %s, want %s", i, g.Name(), want[i])
		}
	}
}

func TestFootprintsMatchTable3(t *testing.T) {
	// Table 3 column 2: 47.1, 8.7, 13.3, 15.3, 4.0 MB.
	want := map[string]float64{
		"OLTP": 47.1, "DSS": 8.7, "apache": 13.3, "altavista": 15.3, "barnes": 4.0,
	}
	for _, g := range Benchmarks(16) {
		got := float64(g.FootprintBytes()) / (1024 * 1024)
		w := want[g.Name()]
		if got < w-0.001 || got > w+0.001 {
			t.Errorf("%s footprint = %v MB, want %v", g.Name(), got, w)
		}
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	a, b := OLTP(16), OLTP(16)
	ra, rb := sim.NewRand(5), sim.NewRand(5)
	for i := 0; i < 10000; i++ {
		cpu := i % 16
		x, y := a.Next(cpu, ra), b.Next(cpu, rb)
		if x != y {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestBlocksWithinFootprint(t *testing.T) {
	for _, g := range Benchmarks(8) {
		r := sim.NewRand(3)
		total := coherence.Block(g.TotalBlocks())
		for i := 0; i < 20000; i++ {
			a := g.Next(i%8, r)
			if a.Block >= total {
				t.Fatalf("%s block %d outside %d", g.Name(), a.Block, total)
			}
			if a.Think < 1 {
				t.Fatalf("%s think %d < 1", g.Name(), a.Think)
			}
		}
	}
}

func TestPairsAreLoadThenStoreSameBlock(t *testing.T) {
	g := DSS(4)
	r := sim.NewRand(9)
	var prev Access
	pairs := 0
	for i := 0; i < 50000; i++ {
		a := g.Next(0, r)
		if i > 0 && prev.Op == coherence.Load && a.Op == coherence.Store && a.Block == prev.Block {
			pairs++
		}
		prev = a
	}
	if pairs == 0 {
		t.Fatal("no read-modify-write pairs generated")
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	g := Barnes(4)
	r := sim.NewRand(1)
	seen := make([]map[coherence.Block]bool, 4)
	for i := range seen {
		seen[i] = map[coherence.Block]bool{}
	}
	priv := g.privBase
	for i := 0; i < 200000; i++ {
		cpu := i % 4
		a := g.Next(cpu, r)
		if a.Block >= priv {
			seen[cpu][a.Block] = true
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			for b := range seen[i] {
				if seen[j][b] {
					t.Fatalf("private block %d shared between cpu %d and %d", b, i, j)
				}
			}
		}
	}
}

func TestUniformGenerator(t *testing.T) {
	g := Uniform(64, 0.5, 10, 4)
	r := sim.NewRand(2)
	stores := 0
	const n = 20000
	for i := 0; i < n; i++ {
		a := g.Next(i%4, r)
		if a.Block >= 64 {
			t.Fatalf("uniform block %d out of pool", a.Block)
		}
		if a.Op == coherence.Store {
			stores++
		}
	}
	frac := float64(stores) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("store fraction = %v, want ~0.5", frac)
	}
}

func TestRejectsBadConfigs(t *testing.T) {
	if _, err := NewSynthetic(Profile{Name: "x", FootprintMB: 0.001, ReadSharedBlocks: 1024}, 4); err == nil {
		t.Fatal("footprint smaller than pools accepted")
	}
	if _, err := NewSynthetic(Profile{Name: "x", FootprintMB: 1}, 0); err == nil {
		t.Fatal("zero cpus accepted")
	}
}

func TestMeasureQuotaOrdering(t *testing.T) {
	// Quotas preserve Table 3's miss-count ordering: OLTP > altavista >=
	// apache > DSS > barnes.
	q := func(n string) int { return MeasureQuota(n) }
	if !(q("OLTP") > q("altavista") && q("altavista") >= q("apache") &&
		q("apache") > q("DSS") && q("DSS") > q("barnes")) {
		t.Fatal("quota ordering broken")
	}
	if MeasureQuota("unknown") <= 0 {
		t.Fatal("default quota must be positive")
	}
}

// Property: category fractions are respected within statistical tolerance.
func TestCategoryFractionsProperty(t *testing.T) {
	f := func(seed uint16) bool {
		g := Apache(4)
		r := sim.NewRand(uint64(seed))
		inMig := 0
		const n = 30000
		decisions := 0
		for i := 0; i < n; i++ {
			a := g.Next(0, r)
			// Only count decision accesses (skip pair completions).
			if a.Op == coherence.Store && i > 0 {
				// may be a pair completion; skip precise accounting
			}
			decisions++
			if a.Block >= g.migBase && a.Block < g.rsBase {
				inMig++
			}
		}
		frac := float64(inMig) / float64(decisions)
		// apache: lock+pairs*2+store ~= 0.13 of accesses hit the
		// migratory pool region (pairs count twice).
		return frac > 0.05 && frac < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
