// Package stats collects the measurements the paper reports: link traffic
// by message class (Figure 4), miss counts and cache-to-cache fractions
// (Table 3), runtimes (Figure 3), and latency/occupancy distributions used
// by the validation tests and ablations.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
)

// Class labels a message for traffic accounting, matching Figure 4's
// stacked bars.
type Class int

// Message classes.
const (
	ClassData Class = iota // data-carrying messages (72 bytes)
	ClassRequest
	ClassNack
	ClassMisc // forwards, invalidations, acknowledgments, revisions
	numClasses
)

// String returns the Figure 4 legend name.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "Data"
	case ClassRequest:
		return "Request"
	case ClassNack:
		return "Nack"
	case ClassMisc:
		return "Misc."
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all classes in Figure 4 order.
func Classes() []Class { return []Class{ClassData, ClassRequest, ClassNack, ClassMisc} }

// Traffic accumulates link-byte and message counts per class.
type Traffic struct {
	linkBytes [numClasses]int64
	messages  [numClasses]int64
}

// Add records one message of class c occupying links network links, each
// carrying bytes payload bytes.
func (t *Traffic) Add(c Class, links, bytes int) {
	t.linkBytes[c] += int64(links) * int64(bytes)
	t.messages[c]++
}

// LinkBytes returns the accumulated link-bytes for class c.
func (t *Traffic) LinkBytes(c Class) int64 { return t.linkBytes[c] }

// Messages returns the number of messages recorded for class c.
func (t *Traffic) Messages(c Class) int64 { return t.messages[c] }

// TotalLinkBytes returns link-bytes summed over all classes.
func (t *Traffic) TotalLinkBytes() int64 {
	var sum int64
	for _, v := range t.linkBytes {
		sum += v
	}
	return sum
}

// MissKind classifies a completed L2 miss.
type MissKind int

// Miss kinds. A cache-to-cache miss is the paper's "3-hop miss": the data
// was supplied by another processor's cache rather than by memory. An
// upgrade miss (MOSI extension) transfers no data at all: the requester
// already held the block in Owned and only needed the sharers
// invalidated.
const (
	MissFromMemory MissKind = iota
	MissCacheToCache
	MissUpgrade
	numMissKinds
)

// Latency accumulates a latency distribution.
type Latency struct {
	count int64
	sum   sim.Time
	min   sim.Time
	max   sim.Time
}

// Observe records one sample.
func (l *Latency) Observe(d sim.Time) {
	if l.count == 0 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.count++
	l.sum += d
}

// Count returns the number of samples.
func (l *Latency) Count() int64 { return l.count }

// Mean returns the mean sample, or 0 with no samples.
func (l *Latency) Mean() sim.Time {
	if l.count == 0 {
		return 0
	}
	return sim.Time(int64(l.sum) / l.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (l *Latency) Min() sim.Time { return l.min }

// Max returns the largest sample.
func (l *Latency) Max() sim.Time { return l.max }

// Occupancy tracks a time-weighted buffer occupancy (used to evaluate the
// early-processing optimization's effect on reorder-queue pressure).
type Occupancy struct {
	current    int
	max        int
	weightedPS float64 // integral of occupancy over time, in entry-picoseconds
	lastChange sim.Time
}

// Set updates the occupancy level at time now.
func (o *Occupancy) Set(now sim.Time, level int) {
	o.weightedPS += float64(o.current) * float64(now-o.lastChange)
	o.lastChange = now
	o.current = level
	if level > o.max {
		o.max = level
	}
}

// Max returns the peak occupancy.
func (o *Occupancy) Max() int { return o.max }

// Mean returns the time-weighted mean occupancy through time end.
func (o *Occupancy) Mean(end sim.Time) float64 {
	total := o.weightedPS + float64(o.current)*float64(end-o.lastChange)
	if end <= 0 {
		return 0
	}
	return total / float64(end)
}

// Run aggregates everything measured during one simulation.
type Run struct {
	Traffic Traffic

	misses [numMissKinds]int64
	// Retries counts protocol-level re-requests after NACKs.
	Retries int64

	// MissLatency is the distribution over all completed misses.
	MissLatency Latency
	// CacheToCacheLatency and MemoryLatency split the distribution by
	// supplier, mirroring Table 2's rows.
	CacheToCacheLatency Latency
	MemoryLatency       Latency

	// OrderingDelay measures, for timestamp snooping, the time between a
	// transaction's arrival at an endpoint and its logical processing.
	OrderingDelay Latency

	// ReorderOccupancy tracks endpoint priority-queue pressure.
	ReorderOccupancy Occupancy

	// Runtime is the simulated execution time of the run.
	Runtime sim.Time

	// Instructions executed and memory operations issued, for MB/IPC style
	// derived metrics.
	Instructions int64
	MemOps       int64
	L2Hits       int64

	// DataTouched is the number of distinct blocks referenced times the
	// block size, in bytes (Table 3 column 2).
	DataTouched int64

	// EarlyProcessed counts transactions consumed ahead of their ordering
	// time under optimization 2.
	EarlyProcessed int64

	// Metrics is the optional telemetry snapshot (nil unless the run was
	// executed with the obs probe attached). It is attached once after
	// the measurement phase, never mutated during it, and rides the
	// Run's JSON as an omitempty block so uninstrumented renderings are
	// byte-identical to pre-telemetry ones.
	Metrics *obs.Metrics
}

// Reset zeroes all counters at simulated time now, preserving identity so
// pointers held by protocols and networks stay valid. The harness resets
// after the warm-up phase ("all of the workloads were run once for
// warm-up and then again for measurement").
func (r *Run) Reset(now sim.Time) {
	occ := r.ReorderOccupancy
	*r = Run{}
	r.ReorderOccupancy = Occupancy{current: occ.current, lastChange: now}
}

// AddMiss records a completed miss of the given kind with its latency.
func (r *Run) AddMiss(kind MissKind, lat sim.Time) {
	r.misses[kind]++
	r.MissLatency.Observe(lat)
	switch kind {
	case MissCacheToCache:
		r.CacheToCacheLatency.Observe(lat)
	case MissFromMemory:
		r.MemoryLatency.Observe(lat)
	}
}

// Misses returns the count of misses of kind k.
func (r *Run) Misses(k MissKind) int64 { return r.misses[k] }

// TotalMisses returns misses of all kinds.
func (r *Run) TotalMisses() int64 {
	var sum int64
	for _, v := range r.misses {
		sum += v
	}
	return sum
}

// CacheToCacheFraction returns the fraction of misses satisfied by another
// cache (Table 3 column 4), or 0 when no misses occurred.
func (r *Run) CacheToCacheFraction() float64 {
	total := r.TotalMisses()
	if total == 0 {
		return 0
	}
	return float64(r.misses[MissCacheToCache]) / float64(total)
}

// Summary renders a human-readable one-run report.
func (r *Run) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime        %v\n", r.Runtime)
	fmt.Fprintf(&b, "instructions   %d\n", r.Instructions)
	fmt.Fprintf(&b, "mem ops        %d (L2 hits %d)\n", r.MemOps, r.L2Hits)
	fmt.Fprintf(&b, "misses         %d (%.0f%% cache-to-cache, %d upgrades)\n",
		r.TotalMisses(), 100*r.CacheToCacheFraction(), r.Misses(MissUpgrade))
	fmt.Fprintf(&b, "miss latency   mean %v (c2c %v, mem %v)\n",
		r.MissLatency.Mean(), r.CacheToCacheLatency.Mean(), r.MemoryLatency.Mean())
	if r.Retries > 0 {
		fmt.Fprintf(&b, "nack retries   %d\n", r.Retries)
	}
	fmt.Fprintf(&b, "link traffic   %d bytes total\n", r.Traffic.TotalLinkBytes())
	for _, c := range Classes() {
		fmt.Fprintf(&b, "  %-8s %12d bytes %10d msgs\n", c, r.Traffic.LinkBytes(c), r.Traffic.Messages(c))
	}
	return b.String()
}

// NormalizeTo returns this run's total link bytes relative to base's, as
// Figure 4 plots. It returns 0 when base has no traffic.
func (r *Run) NormalizeTo(base *Run) float64 {
	bt := base.Traffic.TotalLinkBytes()
	if bt == 0 {
		return 0
	}
	return float64(r.Traffic.TotalLinkBytes()) / float64(bt)
}

// Sorted helper for deterministic map iteration in reports.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
