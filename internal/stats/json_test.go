package stats

import (
	"bytes"
	"encoding/json"
	"testing"

	"tsnoop/internal/sim"
)

// populatedRun builds a Run with every marshalled field off its zero
// value, including uneven latency distributions (whose means truncate)
// and all three miss kinds.
func populatedRun() *Run {
	r := &Run{
		Retries:        7,
		Runtime:        123456789,
		Instructions:   100200,
		MemOps:         50100,
		L2Hits:         40000,
		DataTouched:    64 * 1234,
		EarlyProcessed: 99,
	}
	r.AddMiss(MissFromMemory, 180*sim.Nanosecond)
	r.AddMiss(MissFromMemory, 181*sim.Nanosecond)
	r.AddMiss(MissCacheToCache, 120*sim.Nanosecond)
	r.AddMiss(MissCacheToCache, 125*sim.Nanosecond)
	r.AddMiss(MissCacheToCache, 131*sim.Nanosecond)
	r.AddMiss(MissUpgrade, 60*sim.Nanosecond)
	r.OrderingDelay.Observe(11)
	r.OrderingDelay.Observe(13)
	r.OrderingDelay.Observe(17)
	r.ReorderOccupancy.Set(10, 3)
	r.ReorderOccupancy.Set(20, 9)
	r.ReorderOccupancy.Set(30, 0)
	r.Traffic.Add(ClassData, 3, 72)
	r.Traffic.Add(ClassData, 2, 72)
	r.Traffic.Add(ClassRequest, 4, 8)
	r.Traffic.Add(ClassNack, 1, 8)
	r.Traffic.Add(ClassMisc, 5, 8)
	return r
}

// The inverse contract behind the result store: a decoded Run marshals
// back to the identical bytes, so cached responses are byte-identical
// to freshly simulated ones.
func TestRunJSONRoundTripBytes(t *testing.T) {
	first, err := json.Marshal(populatedRun())
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\n first: %s\nsecond: %s", first, second)
	}
}

// The derived accessors the renderers use must survive the round trip.
func TestRunJSONRoundTripAccessors(t *testing.T) {
	r := populatedRun()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalMisses() != r.TotalMisses() {
		t.Errorf("TotalMisses = %d, want %d", back.TotalMisses(), r.TotalMisses())
	}
	if back.CacheToCacheFraction() != r.CacheToCacheFraction() {
		t.Errorf("CacheToCacheFraction = %g, want %g", back.CacheToCacheFraction(), r.CacheToCacheFraction())
	}
	if back.Traffic.TotalLinkBytes() != r.Traffic.TotalLinkBytes() {
		t.Errorf("TotalLinkBytes = %d, want %d", back.Traffic.TotalLinkBytes(), r.Traffic.TotalLinkBytes())
	}
	for _, k := range []MissKind{MissFromMemory, MissCacheToCache, MissUpgrade} {
		if back.Misses(k) != r.Misses(k) {
			t.Errorf("Misses(%d) = %d, want %d", k, back.Misses(k), r.Misses(k))
		}
	}
	if back.MissLatency.Mean() != r.MissLatency.Mean() || back.MissLatency.Min() != r.MissLatency.Min() ||
		back.MissLatency.Max() != r.MissLatency.Max() || back.MissLatency.Count() != r.MissLatency.Count() {
		t.Errorf("MissLatency did not survive: %+v vs %+v", back.MissLatency, r.MissLatency)
	}
	if back.ReorderOccupancy.Max() != r.ReorderOccupancy.Max() {
		t.Errorf("ReorderOccupancy.Max = %d, want %d", back.ReorderOccupancy.Max(), r.ReorderOccupancy.Max())
	}
	if back.Summary() != r.Summary() {
		t.Errorf("Summary drifted:\n got:\n%s\nwant:\n%s", back.Summary(), r.Summary())
	}
}

// Corrupted documents are refused rather than silently mis-read.
func TestRunUnmarshalRejectsInconsistentTraffic(t *testing.T) {
	data, err := json.Marshal(populatedRun())
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"traffic_total_link_bytes":`), []byte(`"traffic_total_link_bytes":1`), 1)
	var back Run
	if err := json.Unmarshal(bad, &back); err == nil {
		t.Fatal("inconsistent traffic total accepted")
	}
}
