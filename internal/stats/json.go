package stats

import (
	"encoding/json"
	"fmt"

	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
)

// This file gives Run a stable machine-readable rendering — and reads it
// back. The JSON field names are a public contract (tsnoop's -json
// output, the golden tests, and the service result store depend on
// them): add fields if the Run grows, but never rename or reorder the
// existing ones. MarshalJSON(UnmarshalJSON(data)) reproduces data byte
// for byte, which is what lets the content-addressed store serve a
// decoded Run as the identical response the original simulation gave.

// jsonLatency mirrors Latency for marshalling.
type jsonLatency struct {
	Count  int64 `json:"count"`
	MeanPS int64 `json:"mean_ps"`
	MinPS  int64 `json:"min_ps"`
	MaxPS  int64 `json:"max_ps"`
}

func latencyJSON(l Latency) jsonLatency {
	return jsonLatency{Count: l.Count(), MeanPS: int64(l.Mean()), MinPS: int64(l.Min()), MaxPS: int64(l.Max())}
}

// latencyFromJSON inverts latencyJSON. The distribution's sum is not
// marshalled, so it is reconstructed as mean x count: Mean(), Min(),
// Max(), and Count() — everything the reports read — survive the round
// trip exactly.
func latencyFromJSON(j jsonLatency) Latency {
	return Latency{
		count: j.Count,
		sum:   sim.Time(j.MeanPS) * sim.Time(j.Count),
		min:   sim.Time(j.MinPS),
		max:   sim.Time(j.MaxPS),
	}
}

// jsonClass mirrors one traffic class for marshalling.
type jsonClass struct {
	LinkBytes int64 `json:"link_bytes"`
	Messages  int64 `json:"messages"`
}

// jsonRun is the marshalled shape of a Run.
type jsonRun struct {
	RuntimePS    int64 `json:"runtime_ps"`
	Instructions int64 `json:"instructions"`
	MemOps       int64 `json:"mem_ops"`
	L2Hits       int64 `json:"l2_hits"`

	MissesFromMemory   int64 `json:"misses_from_memory"`
	MissesCacheToCache int64 `json:"misses_cache_to_cache"`
	MissesUpgrade      int64 `json:"misses_upgrade"`
	Retries            int64 `json:"retries"`

	MissLatency         jsonLatency `json:"miss_latency"`
	CacheToCacheLatency jsonLatency `json:"cache_to_cache_latency"`
	MemoryLatency       jsonLatency `json:"memory_latency"`
	OrderingDelay       jsonLatency `json:"ordering_delay"`

	TrafficTotalLinkBytes int64     `json:"traffic_total_link_bytes"`
	TrafficData           jsonClass `json:"traffic_data"`
	TrafficRequest        jsonClass `json:"traffic_request"`
	TrafficNack           jsonClass `json:"traffic_nack"`
	TrafficMisc           jsonClass `json:"traffic_misc"`

	DataTouched          int64 `json:"data_touched_bytes"`
	EarlyProcessed       int64 `json:"early_processed"`
	ReorderOccupancyPeak int   `json:"reorder_occupancy_peak"`

	// Metrics is the optional telemetry block; omitted when the run was
	// not instrumented, so pre-telemetry renderings stay byte-identical.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

// MarshalJSON renders the run under stable snake_case field names.
func (r *Run) MarshalJSON() ([]byte, error) {
	class := func(c Class) jsonClass {
		return jsonClass{LinkBytes: r.Traffic.LinkBytes(c), Messages: r.Traffic.Messages(c)}
	}
	return json.Marshal(jsonRun{
		RuntimePS:    int64(r.Runtime),
		Instructions: r.Instructions,
		MemOps:       r.MemOps,
		L2Hits:       r.L2Hits,

		MissesFromMemory:   r.Misses(MissFromMemory),
		MissesCacheToCache: r.Misses(MissCacheToCache),
		MissesUpgrade:      r.Misses(MissUpgrade),
		Retries:            r.Retries,

		MissLatency:         latencyJSON(r.MissLatency),
		CacheToCacheLatency: latencyJSON(r.CacheToCacheLatency),
		MemoryLatency:       latencyJSON(r.MemoryLatency),
		OrderingDelay:       latencyJSON(r.OrderingDelay),

		TrafficTotalLinkBytes: r.Traffic.TotalLinkBytes(),
		TrafficData:           class(ClassData),
		TrafficRequest:        class(ClassRequest),
		TrafficNack:           class(ClassNack),
		TrafficMisc:           class(ClassMisc),

		DataTouched:          r.DataTouched,
		EarlyProcessed:       r.EarlyProcessed,
		ReorderOccupancyPeak: r.ReorderOccupancy.Max(),

		Metrics: r.Metrics,
	})
}

// UnmarshalJSON reads a run back from its MarshalJSON rendering, so
// caches and services can serve stored results without re-simulating.
// Derived fields not present in the JSON (latency sums, time-weighted
// occupancy) are reconstructed where possible and zero otherwise; every
// marshalled field round-trips byte-identically.
func (r *Run) UnmarshalJSON(data []byte) error {
	var j jsonRun
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	*r = Run{
		Retries: j.Retries,

		MissLatency:         latencyFromJSON(j.MissLatency),
		CacheToCacheLatency: latencyFromJSON(j.CacheToCacheLatency),
		MemoryLatency:       latencyFromJSON(j.MemoryLatency),
		OrderingDelay:       latencyFromJSON(j.OrderingDelay),

		ReorderOccupancy: Occupancy{max: j.ReorderOccupancyPeak},

		Runtime:      sim.Time(j.RuntimePS),
		Instructions: j.Instructions,
		MemOps:       j.MemOps,
		L2Hits:       j.L2Hits,

		DataTouched:    j.DataTouched,
		EarlyProcessed: j.EarlyProcessed,

		Metrics: j.Metrics,
	}
	r.misses[MissFromMemory] = j.MissesFromMemory
	r.misses[MissCacheToCache] = j.MissesCacheToCache
	r.misses[MissUpgrade] = j.MissesUpgrade
	for _, tc := range []struct {
		c  Class
		jc jsonClass
	}{
		{ClassData, j.TrafficData},
		{ClassRequest, j.TrafficRequest},
		{ClassNack, j.TrafficNack},
		{ClassMisc, j.TrafficMisc},
	} {
		r.Traffic.linkBytes[tc.c] = tc.jc.LinkBytes
		r.Traffic.messages[tc.c] = tc.jc.Messages
	}
	// The marshalled total is derived from the classes; a mismatch means
	// the document was corrupted or hand-edited, so refuse it.
	if got := r.Traffic.TotalLinkBytes(); got != j.TrafficTotalLinkBytes {
		return fmt.Errorf("stats: traffic classes sum to %d link bytes but total says %d", got, j.TrafficTotalLinkBytes)
	}
	return nil
}

// Best picks the minimum-runtime run — the paper's reporting rule ("we
// report the minimum run time from a set of runs") — keeping the
// earliest run on ties. Returns nil for no runs.
func Best(runs []*Run) *Run {
	var best *Run
	for _, r := range runs {
		if best == nil || r.Runtime < best.Runtime {
			best = r
		}
	}
	return best
}
