package stats

import (
	"strings"
	"testing"

	"tsnoop/internal/sim"
)

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	tr.Add(ClassData, 3, 72)
	tr.Add(ClassData, 2, 72)
	tr.Add(ClassRequest, 21, 8)
	tr.Add(ClassNack, 3, 8)
	if got := tr.LinkBytes(ClassData); got != 5*72 {
		t.Errorf("data bytes = %d, want %d", got, 5*72)
	}
	if got := tr.LinkBytes(ClassRequest); got != 21*8 {
		t.Errorf("request bytes = %d, want %d", got, 21*8)
	}
	if got := tr.Messages(ClassData); got != 2 {
		t.Errorf("data msgs = %d, want 2", got)
	}
	want := int64(5*72 + 21*8 + 3*8)
	if got := tr.TotalLinkBytes(); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassData: "Data", ClassRequest: "Request", ClassNack: "Nack", ClassMisc: "Misc.",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if len(Classes()) != 4 {
		t.Errorf("Classes() len = %d", len(Classes()))
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	if l.Mean() != 0 {
		t.Error("empty mean not 0")
	}
	l.Observe(100)
	l.Observe(300)
	l.Observe(200)
	if l.Count() != 3 {
		t.Errorf("count = %d", l.Count())
	}
	if l.Mean() != 200 {
		t.Errorf("mean = %v, want 200", l.Mean())
	}
	if l.Min() != 100 || l.Max() != 300 {
		t.Errorf("min/max = %v/%v", l.Min(), l.Max())
	}
}

func TestOccupancy(t *testing.T) {
	var o Occupancy
	o.Set(0, 2)
	o.Set(100, 4)
	o.Set(200, 0)
	if o.Max() != 4 {
		t.Errorf("max = %d, want 4", o.Max())
	}
	// 2 entries for 100ps + 4 entries for 100ps = 600 entry-ps over 300ps.
	if got := o.Mean(300); got != 2.0 {
		t.Errorf("mean = %v, want 2.0", got)
	}
}

func TestRunMisses(t *testing.T) {
	var r Run
	r.AddMiss(MissCacheToCache, 123*sim.Nanosecond)
	r.AddMiss(MissFromMemory, 178*sim.Nanosecond)
	r.AddMiss(MissCacheToCache, 123*sim.Nanosecond)
	if r.TotalMisses() != 3 {
		t.Errorf("total = %d", r.TotalMisses())
	}
	if got := r.CacheToCacheFraction(); got < 0.66 || got > 0.67 {
		t.Errorf("c2c fraction = %v, want 2/3", got)
	}
	if r.CacheToCacheLatency.Mean() != 123*sim.Nanosecond {
		t.Errorf("c2c mean = %v", r.CacheToCacheLatency.Mean())
	}
	if r.MemoryLatency.Count() != 1 {
		t.Errorf("memory count = %d", r.MemoryLatency.Count())
	}
}

func TestCacheToCacheFractionEmpty(t *testing.T) {
	var r Run
	if r.CacheToCacheFraction() != 0 {
		t.Error("empty run fraction != 0")
	}
}

func TestNormalizeTo(t *testing.T) {
	var base, other Run
	base.Traffic.Add(ClassData, 10, 72)
	other.Traffic.Add(ClassData, 13, 72)
	if got := other.NormalizeTo(&base); got != 1.3 {
		t.Errorf("normalized = %v, want 1.3", got)
	}
	var empty Run
	if got := other.NormalizeTo(&empty); got != 0 {
		t.Errorf("normalize to empty = %v, want 0", got)
	}
}

func TestSummaryContainsKeyFields(t *testing.T) {
	var r Run
	r.Runtime = 5 * sim.Microsecond
	r.Retries = 7
	r.AddMiss(MissFromMemory, 178*sim.Nanosecond)
	s := r.Summary()
	for _, want := range []string{"runtime", "misses", "nack retries", "Data", "Misc."} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestUpgradeMisses(t *testing.T) {
	var r Run
	r.AddMiss(MissUpgrade, 60*sim.Nanosecond)
	r.AddMiss(MissCacheToCache, 123*sim.Nanosecond)
	if r.TotalMisses() != 2 {
		t.Fatalf("total = %d", r.TotalMisses())
	}
	if r.Misses(MissUpgrade) != 1 {
		t.Fatalf("upgrades = %d", r.Misses(MissUpgrade))
	}
	// Upgrades dilute the cache-to-cache fraction (they are misses that
	// are neither memory- nor cache-supplied).
	if got := r.CacheToCacheFraction(); got != 0.5 {
		t.Fatalf("c2c fraction = %v", got)
	}
	if !strings.Contains(r.Summary(), "1 upgrades") {
		t.Fatal("summary missing upgrades")
	}
}
