// Package core is the public entry point of the timestamp-snooping
// library. Its surface is one declarative value: a Spec names everything
// an experiment needs — benchmark, protocol, network, machine size,
// seeds, quotas, and the design knobs — and is built with functional
// options, validated in one place, and round-trippable to JSON and to a
// command-line flag set.
//
// Quick start:
//
//	res, err := core.New("OLTP", core.WithProtocol(core.TSSnoop)).Run()
//	fmt.Println(res.Summary())
//
// Reproducing the paper:
//
//	e := core.DefaultExperiment()
//	grid, _ := e.RunGrid(core.Butterfly)
//	fmt.Println(grid.Figure3())
//	fmt.Println(grid.Figure4())
//
// Grids and sweeps also run as streams — iterators over cell results
// fed by the concurrent engine — so callers get live progress and early
// cancellation:
//
//	for cell, err := range e.StreamGrid(ctx, core.Torus) { ... }
//
// The command-line surface is cmd/tsnoop, whose subcommands all parse
// the same Spec flag set.
package core

import (
	"net/http"

	"tsnoop/internal/harness"
	"tsnoop/internal/service"
	"tsnoop/internal/spec"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
)

// Protocol names.
const (
	TSSnoop    = system.ProtoTSSnoop
	DirClassic = system.ProtoDirClassic
	DirOpt     = system.ProtoDirOpt
)

// Network names.
const (
	Butterfly = system.NetButterfly
	Torus     = system.NetTorus
)

// Spec is the declarative experiment configuration (see spec.Spec).
type Spec = spec.Spec

// Option adjusts a Spec under construction.
type Option = spec.Option

// Run is the set of statistics one simulation produces.
type Run = stats.Run

// Experiment is the grid/sweep/table engine configuration (see
// harness.Experiment); build one from a Spec with ExperimentFor.
type Experiment = harness.Experiment

// Grid holds one network's benchmark x protocol results; its Figure3
// and Figure4 methods are pure views over the streamed cells.
type Grid = harness.Grid

// Cell identifies one grid cell.
type Cell = harness.Cell

// CellResult is one streamed grid result.
type CellResult = harness.CellResult

// SweepPoint is one streamed sweep measurement.
type SweepPoint = harness.SweepPoint

// New builds a Spec for a benchmark from the defaults plus options.
func New(benchmark string, opts ...Option) Spec { return spec.New(benchmark, opts...) }

// DefaultSpec returns the paper's default single-run configuration.
func DefaultSpec() Spec { return spec.Default() }

// FromJSON parses a Spec from its canonical JSON rendering.
func FromJSON(data []byte) (Spec, error) { return spec.FromJSON(data) }

// FromArgs parses a Spec from its canonical flag-set rendering.
func FromArgs(args []string) (Spec, error) { return spec.FromArgs(args) }

// Spec options, re-exported so core callers need only this package.
var (
	WithProtocol        = spec.WithProtocol
	WithNetwork         = spec.WithNetwork
	WithNodes           = spec.WithNodes
	WithSeed            = spec.WithSeed
	WithSeeds           = spec.WithSeeds
	WithWorkers         = spec.WithWorkers
	WithWarmup          = spec.WithWarmup
	WithQuota           = spec.WithQuota
	WithQuotaScale      = spec.WithQuotaScale
	WithWarmupScale     = spec.WithWarmupScale
	WithPerturbNS       = spec.WithPerturbNS
	WithSlack           = spec.WithSlack
	WithTokensPerPort   = spec.WithTokensPerPort
	WithoutPrefetch     = spec.WithoutPrefetch
	WithEarlyProcessing = spec.WithEarlyProcessing
	WithContention      = spec.WithContention
	WithMOSI            = spec.WithMOSI
	WithMulticast       = spec.WithMulticast
	WithPredictorSize   = spec.WithPredictorSize
	WithVerify          = spec.WithVerify
	WithMetrics         = spec.WithMetrics
	WithBlockBytes      = spec.WithBlockBytes
	WithCacheBytes      = spec.WithCacheBytes
)

// Benchmarks lists the paper's workload names in presentation order.
func Benchmarks() []string { return spec.Benchmarks() }

// Protocols lists the protocol names in presentation order.
func Protocols() []string { return append([]string(nil), spec.Protocols...) }

// Networks lists the network names in presentation order.
func Networks() []string { return append([]string(nil), spec.Networks...) }

// DefaultExperiment returns the experiment setup used for the figures.
func DefaultExperiment() Experiment { return harness.Default() }

// NewGrid returns an empty grid ready to Add streamed cell results.
func NewGrid(network string, benchmarks []string) *Grid { return harness.NewGrid(network, benchmarks) }

// ExperimentFor derives the grid/sweep/table engine configuration a
// Spec describes: its machine size, seed fan-out, perturbation,
// scaling, worker bound, and design knobs.
func ExperimentFor(s Spec) Experiment { return harness.FromSpec(s) }

// Service is the long-lived experiment service: a content-addressed
// result store (keyed by Spec.Canonical) fronted by a dedup job queue,
// so repeated or concurrent identical experiments simulate once (see
// service.Service).
type Service = service.Service

// ServiceConfig parameterizes NewService (see service.Config).
type ServiceConfig = service.Config

// ServiceResult is one answered experiment: the stable Run JSON, the
// decoded run, and whether it was cached or deduplicated.
type ServiceResult = service.Result

// NewService opens a result store (Dir empty = in-memory only) and
// builds its dedup queue.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// ServiceHandler exposes a service over HTTP: POST /v1/runs, streaming
// /v1/grids and /v1/sweeps, GET /v1/jobs/{id}, and GET /healthz — the
// API behind tsnoop serve.
func ServiceHandler(sv *Service) http.Handler { return service.NewHandler(sv) }
