// Package core is the public entry point of the timestamp-snooping
// library: it ties together the simulation kernel, the topologies, the
// three coherence protocols, the synthetic commercial workloads, and the
// experiment harness behind a small configuration surface.
//
// Quick start:
//
//	res, err := core.RunBenchmark("OLTP", core.TSSnoop, core.Butterfly, nil)
//	fmt.Println(res.Summary())
//
// Reproducing the paper:
//
//	grid, _ := core.DefaultExperiment().RunGrid(core.Butterfly)
//	fmt.Println(grid.Figure3())
//	fmt.Println(grid.Figure4())
package core

import (
	"fmt"
	"slices"

	"tsnoop/internal/harness"
	"tsnoop/internal/parallel"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"

	// Registers the trace:<path> workload scheme.
	_ "tsnoop/internal/trace"
)

// Protocol names.
const (
	TSSnoop    = system.ProtoTSSnoop
	DirClassic = system.ProtoDirClassic
	DirOpt     = system.ProtoDirOpt
)

// Network names.
const (
	Butterfly = system.NetButterfly
	Torus     = system.NetTorus
)

// Config is the machine/run configuration (see system.Config for fields).
type Config = system.Config

// Experiment is a figure-regeneration configuration (seeds, perturbation,
// scale; see harness.Experiment).
type Experiment = harness.Experiment

// Run is the set of statistics one simulation produces.
type Run = stats.Run

// Benchmarks lists the paper's workload names in presentation order.
func Benchmarks() []string { return workload.Names() }

// Protocols lists the protocol names in presentation order.
func Protocols() []string { return append([]string(nil), harness.Protocols...) }

// Networks lists the network names in presentation order.
func Networks() []string { return append([]string(nil), harness.Networks...) }

// DefaultConfig returns the paper's 16-node machine for a protocol and
// network.
func DefaultConfig(protocol, network string) Config {
	return system.DefaultConfig(protocol, network)
}

// DefaultExperiment returns the experiment setup used for the figures.
func DefaultExperiment() Experiment { return harness.Default() }

// CheckBenchmark validates a workload name — a paper benchmark or a
// scheme name such as trace:<path> — without building anything. The
// error is one line listing the valid names.
func CheckBenchmark(name string) error { return workload.CheckName(name) }

// CheckProtocol validates a protocol name with a one-line error listing
// the valid names.
func CheckProtocol(name string) error {
	if slices.Contains(harness.Protocols, name) {
		return nil
	}
	return fmt.Errorf("unknown protocol %q (have %v)", name, harness.Protocols)
}

// CheckNetwork validates a network name with a one-line error listing
// the valid names.
func CheckNetwork(name string) error {
	if slices.Contains(harness.Networks, name) {
		return nil
	}
	return fmt.Errorf("unknown network %q (have %v)", name, harness.Networks)
}

// RunBenchmark builds and executes one benchmark run. benchmark may be
// any workload.ByName name, including trace:<path> for a recorded
// trace (which then supplies its own phase quotas). mutate, when
// non-nil, may adjust the configuration before the machine is built;
// the quota fields hold a -1 "unset" sentinel inside mutate (set them,
// don't read them — defaults are resolved after mutate returns).
func RunBenchmark(benchmark, protocol, network string, mutate func(*Config)) (*Run, error) {
	cfg := system.DefaultConfig(protocol, network)
	cfg.MeasurePerCPU = workload.MeasureQuota(benchmark)
	defWarmup, defMeasure := cfg.WarmupPerCPU, cfg.MeasurePerCPU
	// Quota fields carry a -1 sentinel into mutate so an explicit
	// mutate-set quota wins over a trace's recorded quotas even when it
	// happens to equal the default.
	cfg.WarmupPerCPU, cfg.MeasurePerCPU = -1, -1
	if mutate != nil {
		mutate(&cfg)
	}
	gen, err := workload.ByName(benchmark, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// A trace supplies its own phase quotas in place of the defaults.
	if q, ok := gen.(workload.Quotaed); ok {
		defWarmup, defMeasure = q.Quotas()
	}
	if cfg.WarmupPerCPU < 0 {
		cfg.WarmupPerCPU = defWarmup
	}
	if cfg.MeasurePerCPU < 0 {
		cfg.MeasurePerCPU = defMeasure
	}
	// A zero measured quota runs an empty measurement phase and reports
	// all-zero statistics; catch it here (including a mutate that did
	// arithmetic on the -1 sentinel) rather than return bogus numbers.
	if cfg.MeasurePerCPU == 0 {
		return nil, fmt.Errorf("core: %q resolved to a zero measured quota", benchmark)
	}
	s, err := system.Build(cfg, gen)
	if err != nil {
		return nil, err
	}
	run := s.Execute()
	// A trace stream that ran dry wrapped around mid-run: the statistics
	// would silently measure re-walked warm data, so fail instead.
	if w, ok := gen.(workload.Wrapping); ok && w.Wraps() > 0 {
		return nil, fmt.Errorf("core: %q wrapped its recorded stream %d times (quotas %d+%d exceed the recording; lower them or re-record)",
			benchmark, w.Wraps(), cfg.WarmupPerCPU, cfg.MeasurePerCPU)
	}
	return run, nil
}

// RunBest executes seeds copies of one benchmark run concurrently and
// returns the minimum-runtime run. Copy i runs with the configured Seed
// plus i, which varies the workload reference stream and, when
// Config.PerturbMax is set in mutate, the injected response
// perturbation — the same per-seed scheme as harness.Experiment.RunCell
// (an approximation of the paper's minimum-over-perturbed-runs rule;
// Config.Seed drives both randomness sources, so the copies are not
// perturbation-only variations of one stream). workers follows
// harness.Experiment.Workers: 0 uses one worker per CPU, 1 is serial.
// Results are collected in seed order, so the chosen run is independent
// of the worker count.
func RunBest(benchmark, protocol, network string, seeds, workers int, mutate func(*Config)) (*Run, error) {
	if seeds < 1 {
		seeds = 1
	}
	runs, err := parallel.Map(workers, seeds, func(i int) (*Run, error) {
		return RunBenchmark(benchmark, protocol, network, func(c *Config) {
			if mutate != nil {
				mutate(c)
			}
			c.Seed += uint64(i)
		})
	})
	if err != nil {
		return nil, err
	}
	return harness.BestOf(runs), nil
}
