// Package core is the public entry point of the timestamp-snooping
// library: it ties together the simulation kernel, the topologies, the
// three coherence protocols, the synthetic commercial workloads, and the
// experiment harness behind a small configuration surface.
//
// Quick start:
//
//	res, err := core.RunBenchmark("OLTP", core.TSSnoop, core.Butterfly, nil)
//	fmt.Println(res.Summary())
//
// Reproducing the paper:
//
//	grid, _ := core.DefaultExperiment().RunGrid(core.Butterfly)
//	fmt.Println(grid.Figure3())
//	fmt.Println(grid.Figure4())
package core

import (
	"fmt"

	"tsnoop/internal/harness"
	"tsnoop/internal/parallel"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/workload"
)

// Protocol names.
const (
	TSSnoop    = system.ProtoTSSnoop
	DirClassic = system.ProtoDirClassic
	DirOpt     = system.ProtoDirOpt
)

// Network names.
const (
	Butterfly = system.NetButterfly
	Torus     = system.NetTorus
)

// Config is the machine/run configuration (see system.Config for fields).
type Config = system.Config

// Experiment is a figure-regeneration configuration (seeds, perturbation,
// scale; see harness.Experiment).
type Experiment = harness.Experiment

// Run is the set of statistics one simulation produces.
type Run = stats.Run

// Benchmarks lists the paper's workload names in presentation order.
func Benchmarks() []string { return workload.Names() }

// Protocols lists the protocol names in presentation order.
func Protocols() []string { return append([]string(nil), harness.Protocols...) }

// Networks lists the network names in presentation order.
func Networks() []string { return append([]string(nil), harness.Networks...) }

// DefaultConfig returns the paper's 16-node machine for a protocol and
// network.
func DefaultConfig(protocol, network string) Config {
	return system.DefaultConfig(protocol, network)
}

// DefaultExperiment returns the experiment setup used for the figures.
func DefaultExperiment() Experiment { return harness.Default() }

// RunBenchmark builds and executes one benchmark run. mutate, when
// non-nil, may adjust the configuration before the machine is built.
func RunBenchmark(benchmark, protocol, network string, mutate func(*Config)) (*Run, error) {
	gen := workload.ByName(benchmark, 16)
	if gen == nil {
		return nil, fmt.Errorf("core: unknown benchmark %q (have %v)", benchmark, workload.Names())
	}
	cfg := system.DefaultConfig(protocol, network)
	cfg.MeasurePerCPU = workload.MeasureQuota(benchmark)
	if mutate != nil {
		mutate(&cfg)
	}
	if cfg.Nodes != 16 {
		gen = workload.ByName(benchmark, cfg.Nodes)
	}
	s, err := system.Build(cfg, gen)
	if err != nil {
		return nil, err
	}
	return s.Execute(), nil
}

// RunBest executes seeds copies of one benchmark run concurrently and
// returns the minimum-runtime run. Copy i runs with the configured Seed
// plus i, which varies the workload reference stream and, when
// Config.PerturbMax is set in mutate, the injected response
// perturbation — the same per-seed scheme as harness.Experiment.RunCell
// (an approximation of the paper's minimum-over-perturbed-runs rule;
// Config.Seed drives both randomness sources, so the copies are not
// perturbation-only variations of one stream). workers follows
// harness.Experiment.Workers: 0 uses one worker per CPU, 1 is serial.
// Results are collected in seed order, so the chosen run is independent
// of the worker count.
func RunBest(benchmark, protocol, network string, seeds, workers int, mutate func(*Config)) (*Run, error) {
	if seeds < 1 {
		seeds = 1
	}
	runs, err := parallel.Map(workers, seeds, func(i int) (*Run, error) {
		return RunBenchmark(benchmark, protocol, network, func(c *Config) {
			if mutate != nil {
				mutate(c)
			}
			c.Seed += uint64(i)
		})
	})
	if err != nil {
		return nil, err
	}
	return harness.BestOf(runs), nil
}
