package core

import (
	"strings"
	"testing"
)

func TestLists(t *testing.T) {
	if len(Benchmarks()) != 5 {
		t.Fatalf("benchmarks = %v", Benchmarks())
	}
	if len(Protocols()) != 3 || Protocols()[0] != TSSnoop {
		t.Fatalf("protocols = %v", Protocols())
	}
	if len(Networks()) != 2 {
		t.Fatalf("networks = %v", Networks())
	}
}

func TestRunBenchmarkSmall(t *testing.T) {
	run, err := RunBenchmark("barnes", DirOpt, Torus, func(c *Config) {
		c.WarmupPerCPU = 100
		c.MeasurePerCPU = 200
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Runtime <= 0 || run.TotalMisses() == 0 {
		t.Fatalf("empty run: %+v", run)
	}
	if !strings.Contains(run.Summary(), "misses") {
		t.Fatal("summary malformed")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("tpc-w", TSSnoop, Butterfly, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunBenchmarkCustomNodes(t *testing.T) {
	run, err := RunBenchmark("barnes", TSSnoop, Butterfly, func(c *Config) {
		c.Nodes = 4
		c.WarmupPerCPU = 100
		c.MeasurePerCPU = 150
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MemOps != 4*150 {
		t.Fatalf("mem ops = %d, want 600", run.MemOps)
	}
}

func TestDefaultExperimentSane(t *testing.T) {
	e := DefaultExperiment()
	if e.Nodes != 16 || e.Seeds < 1 {
		t.Fatalf("experiment = %+v", e)
	}
}
