package core

import (
	"strings"
	"testing"
)

func TestLists(t *testing.T) {
	if len(Benchmarks()) != 5 {
		t.Fatalf("benchmarks = %v", Benchmarks())
	}
	if len(Protocols()) != 3 || Protocols()[0] != TSSnoop {
		t.Fatalf("protocols = %v", Protocols())
	}
	if len(Networks()) != 2 {
		t.Fatalf("networks = %v", Networks())
	}
}

func TestSpecRunSmall(t *testing.T) {
	run, err := New("barnes", WithProtocol(DirOpt), WithNetwork(Torus),
		WithWarmup(100), WithQuota(200)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Runtime <= 0 || run.TotalMisses() == 0 {
		t.Fatalf("empty run: %+v", run)
	}
	if !strings.Contains(run.Summary(), "misses") {
		t.Fatal("summary malformed")
	}
}

func TestSpecRunUnknownBenchmark(t *testing.T) {
	if _, err := New("tpc-w").Run(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSpecRunCustomNodes(t *testing.T) {
	run, err := New("barnes", WithNodes(4), WithWarmup(100), WithQuota(150)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.MemOps != 4*150 {
		t.Fatalf("mem ops = %d, want 600", run.MemOps)
	}
}

func TestSpecRoundTripsThroughCore(t *testing.T) {
	s := New("DSS", WithProtocol(DirClassic), WithNetwork(Torus), WithSlack(4))
	fromJSON, err := FromJSON(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	fromArgs, err := FromArgs(s.Args())
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON != s || fromArgs != s {
		t.Fatalf("round trips differ:\n%+v\n%+v\n%+v", s, fromJSON, fromArgs)
	}
}

func TestDefaultExperimentSane(t *testing.T) {
	e := DefaultExperiment()
	if e.Nodes != 16 || e.Seeds < 1 {
		t.Fatalf("experiment = %+v", e)
	}
}

func TestExperimentForCarriesKnobs(t *testing.T) {
	e := ExperimentFor(New("OLTP", WithNodes(4), WithSeeds(2), WithWorkers(1),
		WithQuotaScale(0.1), WithMOSI()))
	if e.Nodes != 4 || e.Seeds != 2 || e.Workers != 1 || e.QuotaScale != 0.1 {
		t.Fatalf("experiment = %+v", e)
	}
	if e.Base == nil || !e.Base.MOSI {
		t.Fatal("design knobs not carried into the experiment base")
	}
}
