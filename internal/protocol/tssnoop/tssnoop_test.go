package tssnoop

import (
	"testing"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

type env struct {
	k    *sim.Kernel
	p    *Protocol
	run  *stats.Run
	topo *topology.Topology
}

func newEnv(t *testing.T, topo *topology.Topology, mutate func(*Options)) *env {
	t.Helper()
	k := sim.NewKernel()
	run := &stats.Run{}
	params := timing.Default()
	opts := DefaultOptions(params)
	// Small cache keeps eviction paths reachable in tests.
	opts.Cache = cache.Config{SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 64}
	if mutate != nil {
		mutate(&opts)
	}
	oracle := coherence.NewOracle()
	p := New(k, topo, params, run, oracle, opts)
	return &env{k: k, p: p, run: run, topo: topo}
}

// access drives one blocking access to completion and returns the result.
func (e *env) access(t *testing.T, node int, op coherence.Op, b coherence.Block) coherence.AccessResult {
	t.Helper()
	var res coherence.AccessResult
	doneAt := sim.Time(-1)
	e.p.Access(node, op, b, func(r coherence.AccessResult) {
		res = r
		doneAt = e.k.Now()
	})
	e.k.RunWhile(func() bool { return doneAt < 0 })
	if doneAt < 0 {
		t.Fatalf("access node %d %v %x never completed", node, op, b)
	}
	return res
}

// settle lets in-flight writebacks and token traffic advance.
func (e *env) settle(d sim.Duration) { e.k.RunUntil(e.k.Now() + d) }

func TestColdMissFromMemoryLatencyButterfly(t *testing.T) {
	// Table 2: block from memory on the butterfly = Dnet + Dmem + Dnet =
	// 178 ns unloaded. Ordering adds at most a few ticks of slack.
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(200 * sim.Nanosecond)
	// Block 7 is homed at node 7; access from node 0.
	res := e.access(t, 0, coherence.Load, 7)
	if res.Hit {
		t.Fatal("cold access hit")
	}
	if res.Kind != stats.MissFromMemory {
		t.Fatalf("kind = %v, want memory", res.Kind)
	}
	if res.Latency < 178*sim.Nanosecond || res.Latency > 195*sim.Nanosecond {
		t.Fatalf("memory miss latency = %v, want ~178ns", res.Latency)
	}
}

func TestCacheToCacheLatencyButterfly(t *testing.T) {
	// Table 2: block from cache with timestamp snooping = Dnet + Dcache +
	// Dnet = 123 ns unloaded — roughly half the directory's 252 ns.
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(200 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7) // node 5 takes M
	e.settle(200 * sim.Nanosecond)
	res := e.access(t, 0, coherence.Load, 7)
	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("kind = %v, want cache-to-cache", res.Kind)
	}
	if res.Latency < 123*sim.Nanosecond || res.Latency > 140*sim.Nanosecond {
		t.Fatalf("c2c latency = %v, want ~123ns", res.Latency)
	}
}

func TestCacheToCacheLatencyTorus(t *testing.T) {
	e := newEnv(t, topology.MustTorus(4, 4), nil)
	e.settle(200 * sim.Nanosecond)
	e.access(t, 1, coherence.Store, 2)
	e.settle(200 * sim.Nanosecond)
	res := e.access(t, 0, coherence.Load, 2)
	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("kind = %v", res.Kind)
	}
	// Unloaded mean is 93 ns; ordering delay for near neighbours adds up
	// to a few switch delays.
	if res.Latency < 60*sim.Nanosecond || res.Latency > 160*sim.Nanosecond {
		t.Fatalf("torus c2c latency = %v", res.Latency)
	}
}

func TestLoadHitAfterFill(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 0, coherence.Load, 3)
	res := e.access(t, 0, coherence.Load, 3)
	if !res.Hit {
		t.Fatal("second load missed")
	}
	if res.Latency != timing.Default().L2Hit {
		t.Fatalf("hit latency = %v", res.Latency)
	}
}

func TestStoreHitInM(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 0, coherence.Store, 3)
	res := e.access(t, 0, coherence.Store, 3)
	if !res.Hit {
		t.Fatal("store to M missed")
	}
	if res.Version != 2 {
		t.Fatalf("version = %d, want 2", res.Version)
	}
}

func TestStoreToSharedIsUpgradeMiss(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 0, coherence.Load, 3) // S copy
	res := e.access(t, 0, coherence.Store, 3)
	if res.Hit {
		t.Fatal("store to S must miss (GETX)")
	}
	if e.p.CacheState(0, 3) != cache.Modified {
		t.Fatalf("state after upgrade = %v", e.p.CacheState(0, 3))
	}
}

func TestGetXInvalidatesSharers(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 1, coherence.Load, 9)
	e.access(t, 2, coherence.Load, 9)
	e.access(t, 3, coherence.Store, 9)
	e.settle(300 * sim.Nanosecond)
	if s := e.p.CacheState(1, 9); s != cache.Invalid {
		t.Fatalf("node 1 state = %v, want I", s)
	}
	if s := e.p.CacheState(2, 9); s != cache.Invalid {
		t.Fatalf("node 2 state = %v, want I", s)
	}
	if s := e.p.CacheState(3, 9); s != cache.Modified {
		t.Fatalf("node 3 state = %v, want M", s)
	}
	if e.p.MemOwner(9) != 3 {
		t.Fatalf("memory owner = %d, want 3", e.p.MemOwner(9))
	}
}

func TestGetSDowngradesOwnerAndReturnsOwnershipToMemory(t *testing.T) {
	e := newEnv(t, topology.MustTorus(4, 4), nil)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 4, coherence.Store, 11)
	e.settle(200 * sim.Nanosecond)
	res := e.access(t, 8, coherence.Load, 11)
	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("kind = %v", res.Kind)
	}
	if res.Version != 1 {
		t.Fatalf("observed version = %d, want 1 (owner's write)", res.Version)
	}
	e.settle(300 * sim.Nanosecond)
	if s := e.p.CacheState(4, 11); s != cache.Shared {
		t.Fatalf("old owner state = %v, want S", s)
	}
	if e.p.MemOwner(11) != -1 {
		t.Fatalf("memory owner = %d, want -1 (memory)", e.p.MemOwner(11))
	}
	// A subsequent read must now be supplied by memory with the fresh data.
	res2 := e.access(t, 12, coherence.Load, 11)
	if res2.Kind != stats.MissFromMemory {
		t.Fatalf("third reader kind = %v, want memory", res2.Kind)
	}
	if res2.Version != 1 {
		t.Fatalf("memory version = %d, want 1", res2.Version)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	// The test cache is 64KB/4-way/64B = 256 sets. Blocks b and b+256*k
	// map to the same set; writing 5 such blocks evicts the first.
	base := coherence.Block(16)
	for i := 0; i < 5; i++ {
		e.access(t, 0, coherence.Store, base+coherence.Block(i*256))
	}
	e.settle(500 * sim.Nanosecond)
	if s := e.p.CacheState(0, base); s != cache.Invalid {
		t.Fatalf("evicted block state = %v", s)
	}
	if e.p.MemOwner(base) != -1 {
		t.Fatalf("memory owner after writeback = %d, want memory", e.p.MemOwner(base))
	}
	// The written-back data must be readable from memory with version 1.
	res := e.access(t, 1, coherence.Load, base)
	if res.Kind != stats.MissFromMemory || res.Version != 1 {
		t.Fatalf("reload = %+v, want memory/version 1", res)
	}
}

func TestMigratorySharing(t *testing.T) {
	// Migratory pattern: each node in turn loads then stores the block.
	// Every handoff after the first is a cache-to-cache transfer and the
	// version must increase monotonically (the Oracle enforces per-cpu
	// monotonicity; here we check global progression too).
	e := newEnv(t, topology.MustTorus(4, 4), nil)
	e.settle(100 * sim.Nanosecond)
	var lastVersion uint64
	for round := 0; round < 3; round++ {
		for nd := 0; nd < 16; nd++ {
			e.access(t, nd, coherence.Load, 5)
			res := e.access(t, nd, coherence.Store, 5)
			if res.Version <= lastVersion {
				t.Fatalf("version did not advance: %d -> %d", lastVersion, res.Version)
			}
			lastVersion = res.Version
		}
	}
	if got := e.run.Misses(stats.MissCacheToCache); got == 0 {
		t.Fatal("migratory pattern produced no cache-to-cache misses")
	}
}

func TestConcurrentStoresSerialize(t *testing.T) {
	// All 16 nodes store to the same block concurrently; the protocol
	// must serialize them (16 distinct versions) without deadlock and
	// with the oracle observing monotonic versions everywhere.
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	completed := 0
	for nd := 0; nd < 16; nd++ {
		e.p.Access(nd, coherence.Store, 3, func(r coherence.AccessResult) { completed++ })
	}
	e.k.RunWhile(func() bool { return completed < 16 })
	if completed != 16 {
		t.Fatalf("completed = %d", completed)
	}
	// One node ends as owner with version 16.
	owners := 0
	for nd := 0; nd < 16; nd++ {
		if e.p.CacheState(nd, 3) == cache.Modified {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("owners = %d, want exactly 1", owners)
	}
}

func TestConcurrentLoadStoreMix(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		e := newEnv(t, topo, nil)
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(99)
		// Each node runs a random access script over a small hot set;
		// blocking per node, concurrent across nodes.
		remaining := make([]int, 16)
		for i := range remaining {
			remaining[i] = 120
		}
		totalLeft := 16 * 120
		var issue func(nd int)
		issue = func(nd int) {
			if remaining[nd] == 0 {
				return
			}
			remaining[nd]--
			b := coherence.Block(rng.Intn(8))
			op := coherence.Load
			if rng.Bool(0.4) {
				op = coherence.Store
			}
			e.p.Access(nd, op, b, func(r coherence.AccessResult) {
				totalLeft--
				issue(nd)
			})
		}
		for nd := 0; nd < 16; nd++ {
			issue(nd)
		}
		e.k.RunWhile(func() bool { return totalLeft > 16*120-16*120 || e.p.Pending() > 0 })
		e.k.RunWhile(func() bool { return e.p.Pending() > 0 })
		if e.p.Pending() != 0 {
			t.Fatalf("%s: pending = %d after drain", topo.Name(), e.p.Pending())
		}
		// SWMR at quiescence: for each hot block at most one M copy, and
		// no M coexisting with S.
		for b := coherence.Block(0); b < 8; b++ {
			m, s := 0, 0
			for nd := 0; nd < 16; nd++ {
				switch e.p.CacheState(nd, b) {
				case cache.Modified:
					m++
				case cache.Shared:
					s++
				}
			}
			if m > 1 || (m == 1 && s > 0) {
				t.Fatalf("%s: block %d SWMR violated: %d M, %d S", topo.Name(), b, m, s)
			}
			if m == 1 {
				if own := e.p.MemOwner(b); own < 0 {
					t.Fatalf("%s: block %d cached M but memory thinks it owns", topo.Name(), b)
				}
			} else if own := e.p.MemOwner(b); own != -1 {
				t.Fatalf("%s: block %d memory owner %d but no M copy", topo.Name(), b, own)
			}
		}
		if e.p.Oracle().Observations() == 0 {
			t.Fatalf("%s: oracle observed nothing", topo.Name())
		}
	}
}

func TestEarlyProcessingEquivalence(t *testing.T) {
	// Optimization 2 on/off must produce identical final cache states and
	// versions for a deterministic script, and must consume at least some
	// transactions early.
	finalState := func(early bool) (map[[2]int]cache.State, int64) {
		e := newEnv(t, topology.MustTorus(4, 4), func(o *Options) { o.EarlyProcessing = early })
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(7)
		for i := 0; i < 400; i++ {
			nd := rng.Intn(16)
			b := coherence.Block(rng.Intn(6))
			op := coherence.Load
			if rng.Bool(0.3) {
				op = coherence.Store
			}
			e.access(t, nd, op, b)
		}
		e.settle(2 * sim.Microsecond)
		out := map[[2]int]cache.State{}
		for nd := 0; nd < 16; nd++ {
			for b := 0; b < 6; b++ {
				out[[2]int{nd, b}] = e.p.CacheState(nd, coherence.Block(b))
			}
		}
		return out, e.run.EarlyProcessed
	}
	off, earlyOff := finalState(false)
	on, earlyOn := finalState(true)
	if earlyOff != 0 {
		t.Fatalf("early consumption with optimization off: %d", earlyOff)
	}
	if earlyOn == 0 {
		t.Fatal("optimization 2 never consumed early")
	}
	for k, v := range off {
		if on[k] != v {
			t.Fatalf("state divergence at %v: %v vs %v", k, v, on[k])
		}
	}
}

func TestPrefetchAblationSlower(t *testing.T) {
	// Without prefetch (optimization 1), the cache/memory access
	// serializes after ordering: misses get strictly slower.
	lat := func(prefetch bool) sim.Time {
		e := newEnv(t, topology.MustButterfly(4), func(o *Options) { o.Prefetch = prefetch })
		e.settle(100 * sim.Nanosecond)
		res := e.access(t, 0, coherence.Load, 7)
		return res.Latency
	}
	with := lat(true)
	without := lat(false)
	if without <= with {
		t.Fatalf("no-prefetch latency %v not greater than prefetch %v", without, with)
	}
}

func TestTrafficClassesMatchFigure4Shape(t *testing.T) {
	// TS-Snoop generates only Request (broadcast) and Data traffic; no
	// nacks, no misc messages (Figure 4).
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	for i := 0; i < 10; i++ {
		e.access(t, i%16, coherence.Store, coherence.Block(i))
		e.access(t, (i+3)%16, coherence.Load, coherence.Block(i))
	}
	e.settle(1 * sim.Microsecond)
	if e.run.Traffic.LinkBytes(stats.ClassNack) != 0 {
		t.Fatal("TS-Snoop produced nack traffic")
	}
	if e.run.Traffic.LinkBytes(stats.ClassMisc) != 0 {
		t.Fatal("TS-Snoop produced misc traffic")
	}
	if e.run.Traffic.LinkBytes(stats.ClassRequest) == 0 || e.run.Traffic.LinkBytes(stats.ClassData) == 0 {
		t.Fatal("missing expected traffic classes")
	}
}

func TestPerMissTrafficEnvelope(t *testing.T) {
	// Section 5 back-of-envelope: a timestamp snooping miss on the
	// 16-node butterfly costs 384 bytes: an address packet over 21 links
	// (21*8) and a data packet over 3 links (3*72).
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	before := e.run.Traffic.TotalLinkBytes()
	e.access(t, 0, coherence.Load, 7)
	got := e.run.Traffic.TotalLinkBytes() - before
	want := int64(21*8 + 3*72)
	if got != want {
		t.Fatalf("per-miss traffic = %d bytes, want %d", got, want)
	}
}

func TestAccessWhileOutstandingPanics(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	e.p.Access(0, coherence.Load, 1, func(coherence.AccessResult) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second outstanding access did not panic")
		}
	}()
	e.p.Access(0, coherence.Load, 2, func(coherence.AccessResult) {})
}

func TestWritebackFromNonZeroNode(t *testing.T) {
	// Regression: PUTX transactions used to be injected with the
	// requester field unset, so node 0 claimed every other node's
	// writeback as its own (and panicked on its missing writeback
	// entry) while the real evictor never cleaned up. Evict from a
	// node other than 0 and check the full writeback round trip.
	e := newEnv(t, topology.MustButterfly(4), nil)
	e.settle(100 * sim.Nanosecond)
	base := coherence.Block(16)
	for i := 0; i < 5; i++ {
		e.access(t, 7, coherence.Store, base+coherence.Block(i*256))
	}
	e.settle(500 * sim.Nanosecond)
	if s := e.p.CacheState(7, base); s != cache.Invalid {
		t.Fatalf("evicted block state = %v", s)
	}
	if e.p.MemOwner(base) != -1 {
		t.Fatalf("memory owner after writeback = %d, want memory", e.p.MemOwner(base))
	}
	res := e.access(t, 2, coherence.Load, base)
	if res.Kind != stats.MissFromMemory || res.Version != 1 {
		t.Fatalf("reload = %+v, want memory/version 1", res)
	}
}
