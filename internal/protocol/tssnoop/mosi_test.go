package tssnoop

import (
	"testing"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
)

func newMOSI(t *testing.T) *env {
	return newEnv(t, topology.MustButterfly(4), func(o *Options) { o.UseOwnedState = true })
}

func TestMOSIOwnerRetainsOwnershipOnGetS(t *testing.T) {
	e := newMOSI(t)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7)
	e.settle(100 * sim.Nanosecond)

	before := e.run.Traffic.Messages(stats.ClassData)
	res := e.access(t, 0, coherence.Load, 7)
	e.settle(200 * sim.Nanosecond)
	dataMsgs := e.run.Traffic.Messages(stats.ClassData) - before

	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("kind = %v", res.Kind)
	}
	// MOSI sends exactly one data message (owner -> requester); MSI sends
	// two (the owner also writes back to memory).
	if dataMsgs != 1 {
		t.Fatalf("data messages = %d, want 1", dataMsgs)
	}
	if s := e.p.CacheState(5, 7); s != cache.Owned {
		t.Fatalf("old owner state = %v, want O", s)
	}
	if e.p.MemOwner(7) != 5 {
		t.Fatalf("memory owner = %d, want 5 (retained)", e.p.MemOwner(7))
	}
}

func TestMOSIOwnedSuppliesEveryReader(t *testing.T) {
	e := newMOSI(t)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7)
	e.access(t, 0, coherence.Load, 7)
	// Under MSI the third reader would hit memory; under MOSI the Owned
	// copy keeps supplying cache-to-cache.
	res := e.access(t, 1, coherence.Load, 7)
	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("third reader kind = %v, want cache-to-cache", res.Kind)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
}

func TestMOSIUpgradeInPlace(t *testing.T) {
	e := newMOSI(t)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7) // M at 5
	e.access(t, 0, coherence.Load, 7)  // 5 -> O, 0 has S
	before := e.run.Traffic.Messages(stats.ClassData)
	res := e.access(t, 5, coherence.Store, 7) // O -> M upgrade
	if res.Hit {
		t.Fatal("store to Owned must be a coherence miss")
	}
	if res.Kind != stats.MissUpgrade {
		t.Fatalf("kind = %v, want upgrade", res.Kind)
	}
	if res.Version != 2 {
		t.Fatalf("version = %d, want 2", res.Version)
	}
	if got := e.run.Traffic.Messages(stats.ClassData) - before; got != 0 {
		t.Fatalf("upgrade moved %d data messages, want 0", got)
	}
	e.settle(300 * sim.Nanosecond)
	if s := e.p.CacheState(0, 7); s != cache.Invalid {
		t.Fatalf("sharer state = %v, want I", s)
	}
	if s := e.p.CacheState(5, 7); s != cache.Modified {
		t.Fatalf("upgrader state = %v, want M", s)
	}
	if e.p.MemOwner(7) != 5 {
		t.Fatalf("memory owner = %d, want 5", e.p.MemOwner(7))
	}
}

func TestMOSIUpgradeLosesRace(t *testing.T) {
	// Owner in O upgrades while another processor's GETX is in flight.
	// Whichever orders first, both stores must serialize and the system
	// must quiesce with a single M copy.
	e := newMOSI(t)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7)
	e.access(t, 0, coherence.Load, 7) // 5 -> O
	done := 0
	e.p.Access(5, coherence.Store, 7, func(coherence.AccessResult) { done++ })
	e.p.Access(3, coherence.Store, 7, func(coherence.AccessResult) { done++ })
	e.k.RunWhile(func() bool { return done < 2 })
	e.settle(sim.Microsecond)
	owners := 0
	for nd := 0; nd < 16; nd++ {
		if s := e.p.CacheState(nd, 7); s == cache.Modified {
			owners++
		} else if s == cache.Owned {
			t.Fatalf("node %d left in O after competing stores", nd)
		}
	}
	if owners != 1 {
		t.Fatalf("owners = %d", owners)
	}
}

func TestMOSIEvictionWritesBack(t *testing.T) {
	e := newMOSI(t)
	e.settle(100 * sim.Nanosecond)
	base := coherence.Block(16)
	e.access(t, 0, coherence.Store, base) // M
	e.access(t, 1, coherence.Load, base)  // 0 -> O
	// Evict the Owned line at node 0.
	for i := 1; i < 5; i++ {
		e.access(t, 0, coherence.Store, base+coherence.Block(i*256))
	}
	e.settle(2 * sim.Microsecond)
	if e.p.MemOwner(base) != -1 {
		t.Fatalf("memory owner = %d, want memory after O eviction", e.p.MemOwner(base))
	}
	res := e.access(t, 2, coherence.Load, base)
	if res.Kind != stats.MissFromMemory || res.Version != 1 {
		t.Fatalf("reload = %+v, want memory/version 1", res)
	}
}

func TestMOSIWritebackBufferKeepsServing(t *testing.T) {
	// A GETS ordered between an Owned eviction and its PUTX is served from
	// the writeback buffer without transferring ownership to memory early.
	e := newMOSI(t)
	e.settle(100 * sim.Nanosecond)
	base := coherence.Block(16)
	e.access(t, 0, coherence.Store, base)
	for i := 1; i < 5; i++ {
		e.access(t, 0, coherence.Store, base+coherence.Block(i*256))
	}
	// Immediately read from another node; may race the writeback.
	res := e.access(t, 3, coherence.Load, base)
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
	e.settle(2 * sim.Microsecond)
	if e.p.Pending() != 0 {
		t.Fatal("system did not quiesce")
	}
	if e.p.MemOwner(base) != -1 {
		t.Fatalf("memory owner = %d after writeback", e.p.MemOwner(base))
	}
}

func TestMOSIStressInvariants(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		e := newEnv(t, topo, func(o *Options) { o.UseOwnedState = true })
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(31)
		remaining := make([]int, 16)
		for i := range remaining {
			remaining[i] = 150
		}
		left := 16 * 150
		var issue func(nd int)
		issue = func(nd int) {
			if remaining[nd] == 0 {
				return
			}
			remaining[nd]--
			b := coherence.Block(rng.Intn(8))
			op := coherence.Load
			if rng.Bool(0.45) {
				op = coherence.Store
			}
			e.p.Access(nd, op, b, func(coherence.AccessResult) {
				left--
				issue(nd)
			})
		}
		for nd := 0; nd < 16; nd++ {
			issue(nd)
		}
		e.k.RunWhile(func() bool { return left > 0 })
		e.settle(2 * sim.Microsecond)
		if e.p.Pending() != 0 {
			t.Fatalf("%s: pending = %d", topo.Name(), e.p.Pending())
		}
		// MOSI invariants at quiescence: at most one dirty copy (M or O);
		// M excludes all other copies; O may coexist with S; the memory
		// owner field names the dirty holder exactly when one exists.
		for b := coherence.Block(0); b < 8; b++ {
			m, o, s := 0, 0, 0
			dirtyAt := -1
			for nd := 0; nd < 16; nd++ {
				switch e.p.CacheState(nd, b) {
				case cache.Modified:
					m++
					dirtyAt = nd
				case cache.Owned:
					o++
					dirtyAt = nd
				case cache.Shared:
					s++
				}
			}
			if m+o > 1 {
				t.Fatalf("%s: block %d has %d dirty copies", topo.Name(), b, m+o)
			}
			if m == 1 && s+o > 0 {
				t.Fatalf("%s: block %d M coexists with %d S / %d O", topo.Name(), b, s, o)
			}
			owner := e.p.MemOwner(b)
			if m+o == 1 && owner != dirtyAt {
				t.Fatalf("%s: block %d dirty at %d but memory owner %d", topo.Name(), b, dirtyAt, owner)
			}
			if m+o == 0 && owner != -1 {
				t.Fatalf("%s: block %d clean but memory owner %d", topo.Name(), b, owner)
			}
		}
	}
}

func TestMOSIUsesLessTrafficThanMSI(t *testing.T) {
	script := func(mosi bool) int64 {
		e := newEnv(t, topology.MustButterfly(4), func(o *Options) { o.UseOwnedState = mosi })
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(8)
		for i := 0; i < 600; i++ {
			nd := rng.Intn(16)
			b := coherence.Block(rng.Intn(6))
			op := coherence.Load
			if rng.Bool(0.3) {
				op = coherence.Store
			}
			e.access(t, nd, op, b)
		}
		e.settle(2 * sim.Microsecond)
		return e.run.Traffic.TotalLinkBytes()
	}
	msi := script(false)
	mosi := script(true)
	if mosi >= msi {
		t.Fatalf("MOSI traffic %d not below MSI %d", mosi, msi)
	}
}

func TestMOSISameFinalVersionsAsMSI(t *testing.T) {
	// A deterministic sequential script must produce identical final
	// versions under MSI and MOSI: the Owned state changes who supplies
	// data, never the values.
	final := func(mosi bool) map[coherence.Block]uint64 {
		e := newEnv(t, topology.MustButterfly(4), func(o *Options) { o.UseOwnedState = mosi })
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(15)
		last := map[coherence.Block]uint64{}
		for i := 0; i < 500; i++ {
			nd := rng.Intn(16)
			b := coherence.Block(rng.Intn(5))
			op := coherence.Load
			if rng.Bool(0.4) {
				op = coherence.Store
			}
			res := e.access(t, nd, op, b)
			if op == coherence.Store {
				last[b] = res.Version
			}
		}
		return last
	}
	a, b := final(false), final(true)
	for blk, v := range a {
		if b[blk] != v {
			t.Fatalf("block %d final version %d (MSI) vs %d (MOSI)", blk, v, b[blk])
		}
	}
}
