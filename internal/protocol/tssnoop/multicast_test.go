package tssnoop

import (
	"testing"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
)

func newMulticast(t *testing.T, mutate func(*Options)) *env {
	return newEnv(t, topology.MustButterfly(4), func(o *Options) {
		o.Multicast = true
		if mutate != nil {
			mutate(o)
		}
	})
}

func TestMulticastMemoryReadUsesFewerLinks(t *testing.T) {
	e := newMulticast(t, nil)
	e.settle(100 * sim.Nanosecond)
	before := e.run.Traffic.LinkBytes(stats.ClassRequest)
	res := e.access(t, 0, coherence.Load, 7) // cold: memory owns
	got := e.run.Traffic.LinkBytes(stats.ClassRequest) - before
	if res.Kind != stats.MissFromMemory {
		t.Fatalf("kind = %v", res.Kind)
	}
	// Mask {0, 7}: injection 1 + mid links + 2 ejections — far below the
	// broadcast's 21 links.
	if got >= 21*8 {
		t.Fatalf("multicast GETS used %d request bytes, want < %d", got, 21*8)
	}
	if got < 3*8 {
		t.Fatalf("multicast GETS used only %d request bytes (below a 3-link path)", got)
	}
	if e.run.Retries != 0 {
		t.Fatalf("memory-owned multicast retried %d times", e.run.Retries)
	}
}

func TestMulticastPredictedOwnerSupplies(t *testing.T) {
	e := newMulticast(t, nil)
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7) // broadcast GETX: everyone learns owner=5
	e.settle(200 * sim.Nanosecond)
	res := e.access(t, 0, coherence.Load, 7)
	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("kind = %v, want cache-to-cache via predicted owner", res.Kind)
	}
	if e.run.Retries != 0 {
		t.Fatalf("correct prediction retried %d times", e.run.Retries)
	}
	// Latency stays at the snooping cache-to-cache level (no 3-hop).
	if res.Latency > 145*sim.Nanosecond {
		t.Fatalf("multicast c2c latency = %v", res.Latency)
	}
}

func TestMulticastMispredictionRetriesViaHome(t *testing.T) {
	// With prediction disabled, a GETS to a cache-owned block misses the
	// owner; the home audits the mask, re-issues a full broadcast, and
	// the owner supplies on the retry.
	e := newMulticast(t, func(o *Options) { o.PredictorSize = -1 })
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7)
	e.settle(200 * sim.Nanosecond)
	res := e.access(t, 0, coherence.Load, 7)
	if res.Kind != stats.MissCacheToCache {
		t.Fatalf("kind = %v, want cache-to-cache after retry", res.Kind)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
	if e.run.Retries != 1 {
		t.Fatalf("retries = %d, want 1", e.run.Retries)
	}
	// The misprediction costs latency: audit at home + rebroadcast.
	if res.Latency <= 123*sim.Nanosecond {
		t.Fatalf("mispredicted c2c latency = %v, expected above the direct 123ns", res.Latency)
	}
	e.settle(sim.Microsecond)
	if s := e.p.CacheState(5, 7); s != cache.Shared {
		t.Fatalf("owner state after retried GETS = %v, want S", s)
	}
}

func TestMulticastBoundedPredictorEvicts(t *testing.T) {
	// A 2-entry predictor forgets old owners; reads of forgotten blocks
	// retry through the home but still complete correctly.
	e := newMulticast(t, func(o *Options) { o.PredictorSize = 2 })
	e.settle(100 * sim.Nanosecond)
	for b := coherence.Block(0); b < 6; b++ {
		e.access(t, int(b)%3+4, coherence.Store, b)
	}
	e.settle(500 * sim.Nanosecond)
	for b := coherence.Block(0); b < 6; b++ {
		res := e.access(t, 9, coherence.Load, b)
		if res.Kind != stats.MissCacheToCache || res.Version != 1 {
			t.Fatalf("block %d: %+v", b, res)
		}
	}
	if e.run.Retries == 0 {
		t.Fatal("bounded predictor never mispredicted")
	}
}

func TestMulticastStressCoherent(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
		for _, predSize := range []int{0, 4, -1} {
			e := newEnv(t, topo, func(o *Options) {
				o.Multicast = true
				o.PredictorSize = predSize
			})
			e.settle(100 * sim.Nanosecond)
			rng := sim.NewRand(uint64(13 + predSize))
			remaining := make([]int, 16)
			for i := range remaining {
				remaining[i] = 120
			}
			left := 16 * 120
			var issue func(nd int)
			issue = func(nd int) {
				if remaining[nd] == 0 {
					return
				}
				remaining[nd]--
				b := coherence.Block(rng.Intn(10))
				op := coherence.Load
				if rng.Bool(0.4) {
					op = coherence.Store
				}
				e.p.Access(nd, op, b, func(coherence.AccessResult) {
					left--
					issue(nd)
				})
			}
			for nd := 0; nd < 16; nd++ {
				issue(nd)
			}
			e.k.RunWhile(func() bool { return left > 0 })
			e.settle(2 * sim.Microsecond)
			if e.p.Pending() != 0 {
				t.Fatalf("%s/pred=%d: pending %d", topo.Name(), predSize, e.p.Pending())
			}
			for b := coherence.Block(0); b < 10; b++ {
				m, s := 0, 0
				for nd := 0; nd < 16; nd++ {
					switch e.p.CacheState(nd, b) {
					case cache.Modified:
						m++
					case cache.Shared:
						s++
					}
				}
				if m > 1 || (m == 1 && s > 0) {
					t.Fatalf("%s/pred=%d: block %d SWMR violated", topo.Name(), predSize, b)
				}
			}
		}
	}
}

func TestMulticastSameFinalVersionsAsBroadcast(t *testing.T) {
	final := func(multicast bool) map[coherence.Block]uint64 {
		e := newEnv(t, topology.MustButterfly(4), func(o *Options) {
			o.Multicast = multicast
			o.PredictorSize = 3 // force some retries along the way
		})
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(21)
		last := map[coherence.Block]uint64{}
		for i := 0; i < 500; i++ {
			nd := rng.Intn(16)
			b := coherence.Block(rng.Intn(8))
			op := coherence.Load
			if rng.Bool(0.4) {
				op = coherence.Store
			}
			res := e.access(t, nd, op, b)
			if op == coherence.Store {
				last[b] = res.Version
			}
		}
		return last
	}
	a, b := final(false), final(true)
	for blk, v := range a {
		if b[blk] != v {
			t.Fatalf("block %d: broadcast version %d vs multicast %d", blk, v, b[blk])
		}
	}
}

func TestMulticastReducesRequestTraffic(t *testing.T) {
	traffic := func(multicast bool) (int64, int64) {
		e := newEnv(t, topology.MustButterfly(4), func(o *Options) { o.Multicast = multicast })
		e.settle(100 * sim.Nanosecond)
		rng := sim.NewRand(5)
		for i := 0; i < 600; i++ {
			nd := rng.Intn(16)
			b := coherence.Block(rng.Intn(8))
			op := coherence.Load
			if rng.Bool(0.25) {
				op = coherence.Store
			}
			e.access(t, nd, op, b)
		}
		return e.run.Traffic.LinkBytes(stats.ClassRequest), e.run.Retries
	}
	bcast, _ := traffic(false)
	mcast, retries := traffic(true)
	if mcast >= bcast {
		t.Fatalf("multicast request traffic %d not below broadcast %d", mcast, bcast)
	}
	if retries != 0 {
		t.Fatalf("unbounded predictor retried %d times", retries)
	}
	t.Logf("request traffic: broadcast %d bytes, multicast %d bytes (-%.0f%%)",
		bcast, mcast, 100*(1-float64(mcast)/float64(bcast)))
}

func TestMulticastWithMOSI(t *testing.T) {
	// MOSI keeps the owner alive across GETSes, so predictions stay
	// accurate and every reader is supplied cache-to-cache without
	// retries.
	e := newMulticast(t, func(o *Options) { o.UseOwnedState = true })
	e.settle(100 * sim.Nanosecond)
	e.access(t, 5, coherence.Store, 7)
	for _, reader := range []int{0, 1, 2, 3} {
		res := e.access(t, reader, coherence.Load, 7)
		if res.Kind != stats.MissCacheToCache {
			t.Fatalf("reader %d kind = %v", reader, res.Kind)
		}
	}
	if e.run.Retries != 0 {
		t.Fatalf("retries = %d", e.run.Retries)
	}
}
