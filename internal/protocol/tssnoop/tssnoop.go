// Package tssnoop implements the paper's timestamp snooping coherence
// protocol: a write-invalidate MSI snooping protocol whose address
// transactions are broadcast over the logically ordered tsnet network and
// processed by every cache and memory controller in the identical total
// order (Section 3).
//
// Synchronous wired-OR owned/shared signals are impossible on a switched
// network, so the owned signal is replaced by the old Synapse scheme: one
// bit per block at memory records whether memory owns the block. Because
// every memory controller processes the same ordered transaction stream,
// it can also derive the identity of the current owner deterministically,
// which is what squashes stale writebacks consistently on the cache and
// memory sides without any global signal.
//
// The protocol implements both of the paper's optimizations:
//
//   - Optimization 1 (default on, as evaluated): memory and cache
//     controllers prefetch from DRAM/SRAM as soon as a transaction
//     arrives, but respond only once it is ordered.
//   - Optimization 2 (default off, as evaluated): other processors' early
//     transactions to blocks in S/I may be consumed before their ordering
//     time, guarded so that no transaction this node could still inject
//     can order before the consumed one.
package tssnoop

import (
	"fmt"
	"math/bits"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/network"
	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
	"tsnoop/internal/tsnet"
)

// Options configures the protocol.
type Options struct {
	// Net configures the timestamp-snooping address network.
	Net tsnet.Config
	// Cache is the per-node L2 geometry.
	Cache cache.Config
	// Prefetch enables optimization 1 (start DRAM/SRAM access on early
	// arrival). The paper's evaluation enables it.
	Prefetch bool
	// EarlyProcessing enables optimization 2 (consume order-insensitive
	// transactions before their ordering time). The paper's evaluation
	// disables it.
	EarlyProcessing bool
	// Multicast enables simplified multicast snooping, the first of the
	// paper's future-work directions ("we would like to implement
	// multicast snooping [9] on these networks to reduce transaction
	// bandwidth"). GETS transactions are multicast to a predicted
	// destination set (requester, home, and the predicted owner from
	// snooped GETX traffic) instead of broadcast; the home memory
	// controller audits the mask against its owner state and, when the
	// owner was missed, re-issues the request as a full broadcast on the
	// requester's behalf (counted as a retry). GETX and PUTX remain
	// broadcasts, so ownership changes stay globally visible and masks
	// stay mostly accurate. Requires at most 64 nodes.
	Multicast bool
	// PredictorSize bounds the per-node owner predictor: 0 is unbounded,
	// a positive value evicts the oldest entries (modelling finite
	// predictor hardware, which is what makes mispredictions — and hence
	// home-audit retries — occur), and a negative value disables
	// prediction entirely (masks are requester+home only).
	PredictorSize int
	// UseOwnedState upgrades the protocol from MSI to MOSI (Section 3:
	// "timestamp snooping protocols can also support any subset of the
	// MOESI states"). With the Owned state, an owner answering a GETS
	// keeps ownership instead of writing back to memory — eliminating one
	// data message per sharing miss — and a store to an Owned block
	// upgrades in place without any data transfer. Every decision the
	// Owned state introduces is derivable from the ordered stream, so the
	// cache and memory controllers stay consistent without new signals.
	UseOwnedState bool
	// Probe, when non-nil, records deterministic protocol telemetry:
	// MSHR occupancy, miss-wait latency, and per-kind dispatch counts.
	// Pass the same probe in Net.Probe to cover the address network.
	// Every call site is nil-guarded, so bare runs pay one branch.
	Probe *obs.Probe
}

// DefaultOptions mirrors the paper's evaluated configuration.
func DefaultOptions(params timing.Params) Options {
	net := tsnet.DefaultConfig()
	net.Params = params
	return Options{
		Net:      net,
		Cache:    cache.DefaultConfig(),
		Prefetch: true,
	}
}

// addrTxn is the payload carried on the address network. requester is the
// protocol-level requester: it differs from the tsnet source only for
// multicast retries, which the home re-issues on the requester's behalf.
//
// One addrTxn is shared by every endpoint delivery of one injection (the
// address network passes the payload pointer through); refs counts the
// remaining deliveries and returns the transaction to the protocol's
// free list when the last endpoint has consumed it, so a steady-state
// miss allocates no payloads.
type addrTxn struct {
	kind      coherence.TxnKind
	block     coherence.Block
	requester int
	// mask is the multicast destination set (all ones for broadcasts);
	// the home audits it against the owner state.
	mask uint64
	// reinjected marks a home-issued full-broadcast retry of a failed
	// multicast.
	reinjected bool
	refs       int32
}

// dataMsg travels on the unordered data virtual network. Messages are
// pooled: exactly one endpoint receives each, and dataArrive recycles it.
type dataMsg struct {
	block    coherence.Block
	toMemory bool
	version  uint64
	supplier stats.MissKind // classification for the requester
}

// obligation is a foreign request that ordered after this node's own GETX
// but before the miss completed: this node is the logical owner and must
// supply once its data arrives.
type obligation struct {
	kind    coherence.TxnKind
	src     int
	arrived sim.Time
}

// mshr tracks the node's single outstanding miss (blocking processors).
// Each node owns one mshr value that is reset and reused per miss (the
// obligations backing array survives the reset).
type mshr struct {
	block    coherence.Block
	op       coherence.Op
	kind     coherence.TxnKind
	issuedAt sim.Time
	done     func(coherence.AccessResult)

	ordered     bool
	dataArrived bool
	dataVersion uint64
	dataAt      sim.Time
	orderedAt   sim.Time
	supplier    stats.MissKind

	// loseCopy is set when a foreign GETX ordered after our GETS: the
	// incoming shared copy is logically invalidated before use.
	loseCopy bool
	// selfData is set when the node's own GETX ordered while it still
	// held the block in Owned (MOSI): the upgrade completes with the
	// local copy and no data message (supplier MissUpgrade).
	selfData bool
	// obligations are foreign requests this node owes data to (GETX only).
	obligations []obligation
}

// wbEntry is a writeback buffer entry: the evicted data is retained until
// the PUTX transaction is ordered (or until a foreign request ordered
// first takes the data, making the PUTX stale).
type wbEntry struct {
	version uint64
	stale   bool
}

// memState is the home memory controller's per-block state: the Synapse
// owner bit (owner == -1 means memory owns) plus the owner identity
// derived from the ordered stream, the memory copy's version, and
// bookkeeping for writeback data still in flight.
//
// dataOwed counts, over the whole ordered history, how many data messages
// memory has been promised (one per ownership-ending GETS and per valid
// PUTX); dataReceived counts arrivals. A memory response deferred behind
// in-flight writeback data waits only for the data owed at its own
// ordering point — waiting for later writebacks too would deadlock when
// the later writeback is owed by the very requester being answered.
type memState struct {
	owner        int
	version      uint64
	dataOwed     int64
	dataReceived int64
	waiting      []memWait
}

// memWait is a deferred memory response: the data needed to send the
// memory copy to dst once dataReceived reaches need (plain data rather
// than a closure; the version is read at delivery time, exactly as the
// deferred send would).
type memWait struct {
	need  int64 // deliver once dataReceived reaches this
	ready sim.Time
	dst   int
	block coherence.Block
}

type node struct {
	p     *Protocol
	id    int
	cache *cache.Cache
	mshr  *mshr
	wb    map[coherence.Block]wbEntry
	mem   map[coherence.Block]*memState
	// pred predicts the current owner per block for multicast masks,
	// learned from snooped (always-broadcast) GETX and PUTX traffic.
	// predFIFO implements the capacity bound's eviction order.
	pred     map[coherence.Block]int
	predFIFO []coherence.Block

	// mshrStore is the node's single reusable MSHR (see mshr).
	mshrStore mshr

	// hitQ buffers in-flight L2-hit completions.
	hitQ coherence.HitQueue
}

// Protocol is the timestamp snooping protocol over one topology.
type Protocol struct {
	k      *sim.Kernel
	topo   *topology.Topology
	params timing.Params
	run    *stats.Run
	oracle *coherence.Oracle
	opts   Options

	addr  *tsnet.Network
	data  *network.Fabric
	nodes []*node

	pending   int
	dataBytes int
	probe     *obs.Probe // optional deterministic telemetry (Options.Probe)

	// Free lists for the two pooled payload kinds (see addrTxn, dataMsg).
	addrPool sim.Pool[addrTxn]
	dataPool sim.Pool[dataMsg]
}

var _ coherence.Protocol = (*Protocol)(nil)

// New constructs and starts the protocol over topo. oracle may be nil (a
// fresh one is created; violations panic).
func New(k *sim.Kernel, topo *topology.Topology, params timing.Params, run *stats.Run, oracle *coherence.Oracle, opts Options) *Protocol {
	if oracle == nil {
		oracle = coherence.NewOracle()
	}
	if opts.Multicast && topo.Nodes() > 64 {
		panic("tssnoop: multicast snooping limited to 64 nodes")
	}
	p := &Protocol{
		k:      k,
		topo:   topo,
		params: params,
		run:    run,
		oracle: oracle,
		opts:   opts,
		probe:  opts.Probe,
	}
	p.dataBytes = timing.DataMsgBytes(opts.Cache.BlockBytes)
	p.addr = tsnet.New(k, topo, opts.Net, &run.Traffic, run)
	p.data = network.New(k, topo, params, &run.Traffic)
	p.data.SetProbe(opts.Probe)
	p.nodes = make([]*node, topo.Nodes())
	for i := range p.nodes {
		n := &node{
			p:     p,
			id:    i,
			cache: cache.MustNew(opts.Cache),
			wb:    make(map[coherence.Block]wbEntry),
			mem:   make(map[coherence.Block]*memState),
			pred:  make(map[coherence.Block]int),
		}
		p.nodes[i] = n
		var peek tsnet.PeekHandler
		if opts.EarlyProcessing {
			peek = n.peek
		}
		p.addr.Register(i, n.snoop, peek)
		p.data.Register(i, n.dataArrive)
	}
	p.addr.Start()
	return p
}

// Name implements coherence.Protocol.
func (p *Protocol) Name() string { return "TS-Snoop" }

// Pending implements coherence.Protocol.
func (p *Protocol) Pending() int { return p.pending }

// Oracle returns the coherence checker in use.
func (p *Protocol) Oracle() *coherence.Oracle { return p.oracle }

// SetPerturbation installs a response-delay sampler on the data network
// (the paper's stability methodology perturbs message responses).
func (p *Protocol) SetPerturbation(fn func() sim.Duration) { p.data.SetPerturbation(fn) }

// newAddr returns a zeroed address payload, recycled when possible.
func (p *Protocol) newAddr() *addrTxn { return p.addrPool.Get() }

// broadcastAddr broadcasts t on the address network, charging it with
// one reference per endpoint delivery.
func (p *Protocol) broadcastAddr(src int, t *addrTxn) {
	t.refs = int32(p.topo.Nodes())
	p.addr.Inject(src, t)
}

// multicastAddr multicasts t to its destination mask, charging one
// reference per member endpoint.
func (p *Protocol) multicastAddr(src int, t *addrTxn) {
	mask := t.mask
	if nodes := p.topo.Nodes(); nodes < 64 {
		mask &= 1<<uint(nodes) - 1
	}
	t.refs = int32(bits.OnesCount64(mask))
	p.addr.InjectTo(src, t.mask, t)
}

// releaseAddr drops one endpoint's reference; the last consumer returns
// the payload to the free list.
func (p *Protocol) releaseAddr(t *addrTxn) {
	t.refs--
	if t.refs == 0 {
		p.addrPool.Put(t)
	}
}

// newData returns a data message from the free list.
func (p *Protocol) newData(block coherence.Block, toMemory bool, version uint64, supplier stats.MissKind) *dataMsg {
	m := p.dataPool.Get()
	*m = dataMsg{block: block, toMemory: toMemory, version: version, supplier: supplier}
	return m
}

// releaseData recycles a delivered data message.
func (p *Protocol) releaseData(m *dataMsg) { p.dataPool.Put(m) }

// Node state inspection for tests: returns cache state of block at node.
func (p *Protocol) CacheState(nodeID int, b coherence.Block) cache.State {
	s, _ := p.nodes[nodeID].cache.Peek(b)
	return s
}

// MemOwner returns the Synapse owner for b at its home (-1 = memory).
func (p *Protocol) MemOwner(b coherence.Block) int {
	home := coherence.HomeOf(b, p.topo.Nodes())
	ms, ok := p.nodes[home].mem[b]
	if !ok {
		return -1
	}
	return ms.owner
}

// Access implements coherence.Protocol.
func (p *Protocol) Access(nodeID int, op coherence.Op, block coherence.Block, done func(coherence.AccessResult)) {
	n := p.nodes[nodeID]
	if n.mshr != nil {
		panic(fmt.Sprintf("tssnoop: node %d access while miss outstanding", nodeID))
	}
	state, version := n.cache.Lookup(block)
	now := p.k.Now()

	hit := false
	switch {
	case op == coherence.Load && state != cache.Invalid:
		hit = true
	case op == coherence.Store && state == cache.Modified:
		hit = true
	}
	if hit {
		if op == coherence.Store {
			version = p.oracle.WriteVersion(block)
			n.cache.SetVersion(block, version)
		}
		p.oracle.Observe(nodeID, block, version)
		n.hitQ.Push(done, coherence.AccessResult{Hit: true, Latency: p.params.L2Hit, Version: version})
		p.k.AfterCall(p.params.L2Hit, coherence.DeliverHit, &n.hitQ, nil, 0)
		if pr := p.probe; pr != nil {
			pr.Event(obs.EvL2Hit)
		}
		return
	}

	// Miss: broadcast the appropriate transaction. A store to a Shared
	// copy issues GETX like any other store miss (no silent upgrade).
	kind := coherence.GetS
	if op == coherence.Store {
		kind = coherence.GetX
	}
	p.pending++
	if pr := p.probe; pr != nil {
		pr.MSHROcc(p.pending)
	}
	m := &n.mshrStore
	obligations := m.obligations[:0]
	*m = mshr{block: block, op: op, kind: kind, issuedAt: now, done: done}
	m.obligations = obligations
	n.mshr = m
	t := p.newAddr()
	t.kind = kind
	t.block = block
	t.requester = nodeID
	t.mask = ^uint64(0)
	if p.opts.Multicast && kind == coherence.GetS {
		t.mask = n.multicastMask(block)
		p.multicastAddr(nodeID, t)
		return
	}
	p.broadcastAddr(nodeID, t)
}

// multicastMask builds the predicted destination set for a GETS: the
// requester, the home, and the predicted owner when one is known.
func (n *node) multicastMask(block coherence.Block) uint64 {
	mask := uint64(1)<<uint(n.id) | uint64(1)<<uint(coherence.HomeOf(block, n.p.topo.Nodes()))
	if owner, ok := n.pred[block]; ok {
		mask |= 1 << uint(owner)
	}
	return mask
}

// sendData transmits a data message on the data virtual network at the
// given ready time (never before now).
func (p *Protocol) sendData(at sim.Time, src, dst int, m *dataMsg) {
	if at < p.k.Now() {
		at = p.k.Now()
	}
	p.k.AtCall(at, sendDataEvent, p, m, int64(src)<<32|int64(dst))
}

// sendDataEvent is the typed kernel event putting a ready data message on
// the wire: a0 is the Protocol, a1 the message, i0 packs (src, dst).
func sendDataEvent(a0, a1 any, i0 int64) {
	p := a0.(*Protocol)
	m := a1.(*dataMsg)
	if pr := p.probe; pr != nil {
		pr.Event(obs.EvDataSend)
	}
	src, dst := int(i0>>32), int(i0&0xffffffff)
	p.data.Send(0, src, dst, stats.ClassData, p.dataBytes, m)
}

// respondReady computes when a controller can put data on the wire for a
// transaction that physically arrived at arrivedAt and was ordered at the
// current time, given the access latency. With prefetching (optimization
// 1) the DRAM/SRAM access starts as soon as the early transaction clears
// the network-exit overhead and overlaps the wait for ordering; the
// response is gated on the logical order either way.
func (p *Protocol) respondReady(arrivedAt sim.Time, access sim.Duration) sim.Time {
	now := p.k.Now()
	if p.opts.Prefetch {
		ready := arrivedAt + p.params.Dovh + access
		if ready < now {
			ready = now
		}
		return ready
	}
	return now + access
}

// peek implements optimization 2. Consuming early is safe only when (a)
// the transaction cannot interact with this node's current or future
// protocol state except through stable S/I snoops, and (b) no transaction
// this node could inject from now on can order before it — guaranteed when
// the arrival slack is strictly below the OT distance of a fresh
// injection.
func (n *node) peek(src int, seq uint64, payload any, slackTicks int) bool {
	t := payload.(*addrTxn)
	if consumed := n.peekConsume(src, t, slackTicks); consumed {
		// A consumed transaction's ordered handler never fires: this is
		// the endpoint's one use of the payload.
		n.p.releaseAddr(t)
		return true
	}
	return false
}

func (n *node) peekConsume(src int, t *addrTxn, slackTicks int) bool {
	if src == n.id {
		return false
	}
	if coherence.HomeOf(t.block, n.p.topo.Nodes()) == n.id {
		return false // the home memory controller needs the total order
	}
	minInjectOT := n.p.opts.Net.TokensPerPort*n.p.topo.Dmax(n.id) + n.p.opts.Net.InitialSlack
	if slackTicks >= minInjectOT {
		return false
	}
	if n.mshr != nil && n.mshr.block == t.block {
		return false
	}
	if _, ok := n.wb[t.block]; ok {
		return false
	}
	state, _ := n.cache.Peek(t.block)
	switch t.kind {
	case coherence.PutX:
		return true
	case coherence.GetS:
		return state == cache.Invalid || state == cache.Shared
	case coherence.GetX:
		if state == cache.Shared {
			n.cache.SetState(t.block, cache.Invalid) // early invalidation
			return true
		}
		return state == cache.Invalid
	}
	return false
}

// snoop processes one transaction from the global logical order: first the
// cache-controller side, then (when this node is the block's home) the
// memory-controller side.
func (n *node) snoop(src int, seq uint64, payload any, arrived sim.Time) {
	t := payload.(*addrTxn)
	if t.requester == n.id {
		n.snoopOwn(t, arrived)
	} else {
		n.snoopForeign(t.requester, t, arrived)
	}
	if coherence.HomeOf(t.block, n.p.topo.Nodes()) == n.id {
		n.memorySide(t.requester, t, arrived)
	}
	n.p.releaseAddr(t)
}

func (n *node) snoopOwn(t *addrTxn, arrived sim.Time) {
	switch t.kind {
	case coherence.GetS, coherence.GetX:
		m := n.mshr
		if t.reinjected {
			// A home-issued retry of our failed multicast: the original
			// multicast already marked the miss ordered; the retry only
			// exists so the (missed) owner finally sees the request.
			return
		}
		if m == nil || m.block != t.block || m.kind != t.kind {
			panic(fmt.Sprintf("tssnoop: node %d own %v ordered without matching MSHR", n.id, t.kind))
		}
		m.ordered = true
		m.orderedAt = n.p.k.Now()
		if t.kind == coherence.GetX && !m.dataArrived {
			// MOSI: a store upgrade whose Owned copy survived to the
			// ordering point needs no data — the sharers invalidated on
			// this same transaction and the local copy is current.
			if state, version := n.cache.Peek(t.block); state == cache.Owned {
				m.dataArrived = true
				m.dataVersion = version
				m.selfData = true
				m.supplier = stats.MissUpgrade
			}
		}
		if m.dataArrived {
			n.complete(m)
		}
	case coherence.PutX:
		wb, ok := n.wb[t.block]
		if !ok {
			panic(fmt.Sprintf("tssnoop: node %d own PUTX ordered without writeback entry", n.id))
		}
		delete(n.wb, t.block)
		if !wb.stale {
			home := coherence.HomeOf(t.block, n.p.topo.Nodes())
			n.p.sendData(n.p.k.Now(), n.id, home, n.p.newData(t.block, true, wb.version, 0))
		}
	}
}

func (n *node) snoopForeign(src int, t *addrTxn, arrived sim.Time) {
	if n.p.opts.Multicast && n.p.opts.PredictorSize >= 0 {
		// Owner prediction from the always-broadcast transactions.
		switch t.kind {
		case coherence.GetX:
			if _, known := n.pred[t.block]; !known {
				n.predFIFO = append(n.predFIFO, t.block)
				if max := n.p.opts.PredictorSize; max > 0 && len(n.predFIFO) > max {
					old := n.predFIFO[0]
					n.predFIFO = n.predFIFO[1:]
					delete(n.pred, old)
				}
			}
			n.pred[t.block] = src
		case coherence.PutX:
			delete(n.pred, t.block)
		}
	}
	if t.kind == coherence.PutX {
		return // foreign writebacks have no cache-side effect
	}
	// A foreign request ordered after our own ordered-but-incomplete GETX
	// finds us as the logical owner: defer the supply to completion.
	if m := n.mshr; m != nil && m.block == t.block && m.ordered {
		if m.kind == coherence.GetX {
			m.obligations = append(m.obligations, obligation{kind: t.kind, src: src, arrived: arrived})
			return
		}
		// Our GETS ordered first; a foreign GETX ordered behind it takes
		// the incoming copy away before we can cache it.
		if t.kind == coherence.GetX {
			m.loseCopy = true
		}
		return
	}
	state, version := n.cache.Peek(t.block)
	home := coherence.HomeOf(t.block, n.p.topo.Nodes())
	ready := n.p.respondReady(arrived, n.p.params.Dcache)
	switch t.kind {
	case coherence.GetS:
		switch {
		case state == cache.Modified:
			n.p.sendData(ready, n.id, src, n.p.newData(t.block, false, version, stats.MissCacheToCache))
			if n.p.opts.UseOwnedState {
				// MOSI: retain ownership in Owned; no memory writeback.
				n.cache.SetState(t.block, cache.Owned)
			} else {
				// MSI: the owner supplies the requester and writes back
				// to memory, which becomes the owner again (two data
				// messages).
				n.p.sendData(ready, n.id, home, n.p.newData(t.block, true, version, 0))
				n.cache.SetState(t.block, cache.Shared)
			}
		case state == cache.Owned:
			// MOSI: the Owned copy supplies every subsequent reader.
			n.p.sendData(ready, n.id, src, n.p.newData(t.block, false, version, stats.MissCacheToCache))
		default:
			if wb, ok := n.wb[t.block]; ok && !wb.stale {
				// The block is in our writeback buffer: we are still the
				// owner in logical order; supply from the buffer.
				n.p.sendData(ready, n.id, src, n.p.newData(t.block, false, wb.version, stats.MissCacheToCache))
				if !n.p.opts.UseOwnedState {
					// MSI: ownership returns to memory now; squash the
					// PUTX. MOSI keeps ownership with the buffer until
					// the PUTX itself is ordered, mirroring the memory
					// controller's view.
					n.p.sendData(ready, n.id, home, n.p.newData(t.block, true, wb.version, 0))
					wb.stale = true
					n.wb[t.block] = wb
				}
			}
		}
	case coherence.GetX:
		switch {
		case state == cache.Modified || state == cache.Owned:
			n.p.sendData(ready, n.id, src, n.p.newData(t.block, false, version, stats.MissCacheToCache))
			n.cache.SetState(t.block, cache.Invalid)
		case state == cache.Shared:
			n.cache.SetState(t.block, cache.Invalid)
		default:
			if wb, ok := n.wb[t.block]; ok && !wb.stale {
				n.p.sendData(ready, n.id, src, n.p.newData(t.block, false, wb.version, stats.MissCacheToCache))
				wb.stale = true
				n.wb[t.block] = wb
			}
		}
	}
}

// memorySide maintains the Synapse owner state and responds from memory
// when memory owns the block.
func (n *node) memorySide(src int, t *addrTxn, arrived sim.Time) {
	ms, ok := n.mem[t.block]
	if !ok {
		ms = &memState{owner: -1}
		n.mem[t.block] = ms
	}
	switch t.kind {
	case coherence.GetS:
		if ms.owner != -1 && t.mask&(1<<uint(ms.owner)) == 0 {
			// Multicast audit failure: the owner was not in the predicted
			// destination set, so nobody can supply. Re-issue the request
			// as a full broadcast on the requester's behalf; this ordered
			// instance has no effect anywhere (the owner never saw it and
			// every member's cache action for a GETS at S/I is a no-op).
			n.p.run.Retries++
			retry := n.p.newAddr()
			retry.kind = coherence.GetS
			retry.block = t.block
			retry.requester = src
			retry.mask = ^uint64(0)
			retry.reinjected = true
			n.p.broadcastAddr(n.id, retry)
			return
		}
		if ms.owner == -1 {
			n.memRespond(ms, src, t.block, arrived)
		} else {
			if ms.owner == src {
				panic("tssnoop: owner issued GETS for its own block")
			}
			if !n.p.opts.UseOwnedState {
				// MSI: the owner supplies and writes back: memory owns
				// again and owes one incoming data message. MOSI: the
				// owner keeps ownership in Owned; memory does nothing.
				ms.owner = -1
				ms.dataOwed++
			}
		}
	case coherence.GetX:
		if ms.owner == -1 {
			n.memRespond(ms, src, t.block, arrived)
		} else if ms.owner == src && !n.p.opts.UseOwnedState {
			// MOSI allows this: an Owned holder upgrading in place.
			panic("tssnoop: owner issued GETX for its own block")
		}
		ms.owner = src
	case coherence.PutX:
		if ms.owner == src {
			ms.owner = -1
			ms.dataOwed++
		}
		// Otherwise the writeback is stale: a request ordered between its
		// injection and now already moved ownership; the cache side made
		// the same decision from the same ordered prefix.
	}
}

// memRespond sends the memory copy to a requester, deferring while
// writeback data that logically precedes this transaction is in flight.
// A deferred response reads the memory version at delivery time, exactly
// as an immediate one reads it now.
func (n *node) memRespond(ms *memState, src int, b coherence.Block, arrived sim.Time) {
	ready := n.p.respondReady(arrived, n.p.params.Dmem)
	if ms.dataReceived < ms.dataOwed {
		ms.waiting = append(ms.waiting, memWait{need: ms.dataOwed, ready: ready, dst: src, block: b})
		return
	}
	n.p.sendData(ready, n.id, src, n.p.newData(b, false, ms.version, stats.MissFromMemory))
}

// dataArrive handles data network deliveries: either a writeback into
// memory or the fill for this node's outstanding miss.
func (n *node) dataArrive(msg network.Message) {
	pd := msg.Payload.(*dataMsg)
	d := *pd
	n.p.releaseData(pd)
	if d.toMemory {
		// The entry may not exist yet when the sender's endpoint runs
		// physically ahead of ours; create it as memory-owned, exactly as
		// the ordered processing will.
		ms, ok := n.mem[d.block]
		if !ok {
			ms = &memState{owner: -1}
			n.mem[d.block] = ms
		}
		// Writeback data can arrive out of order on the unordered data
		// network; versions are monotonic, so the newest write wins.
		if d.version > ms.version {
			ms.version = d.version
		}
		// dataReceived may transiently LEAD dataOwed: endpoints process
		// the logical order at skewed physical times (especially under
		// contention), so an owner's writeback can land before the home
		// endpoint has processed the transaction that owes it. The
		// ledger still balances — dataOwed catches up when the home's
		// ordered processing reaches that transaction — and a deferral
		// registered then finds its need already satisfied.
		ms.dataReceived++
		for len(ms.waiting) > 0 && ms.waiting[0].need <= ms.dataReceived {
			w := ms.waiting[0]
			ms.waiting = ms.waiting[1:]
			n.p.sendData(w.ready, n.id, w.dst, n.p.newData(w.block, false, ms.version, stats.MissFromMemory))
		}
		return
	}
	m := n.mshr
	if m == nil || m.block != d.block {
		panic(fmt.Sprintf("tssnoop: node %d fill for unexpected block %x", n.id, d.block))
	}
	m.dataArrived = true
	m.dataVersion = d.version
	m.dataAt = n.p.k.Now()
	m.supplier = d.supplier
	if m.ordered {
		n.complete(m)
	}
}

// complete finishes a miss: insert the line, perform the store, apply any
// ownership obligations accumulated while the fill was in flight, and
// release the processor.
func (n *node) complete(m *mshr) {
	now := n.p.k.Now()
	n.mshr = nil
	n.p.pending--
	if pr := n.p.probe; pr != nil {
		pr.MSHROcc(n.p.pending)
	}

	version := m.dataVersion
	if m.kind == coherence.GetS {
		if !m.loseCopy {
			n.insertLine(m.block, cache.Shared, version)
		}
	} else {
		if m.op == coherence.Store {
			version = n.p.oracle.WriteVersion(m.block)
		}
		n.insertLine(m.block, cache.Modified, version)
		// Apply deferred foreign requests in their ordered sequence.
		home := coherence.HomeOf(m.block, n.p.topo.Nodes())
		mosi := n.p.opts.UseOwnedState
		state := cache.Modified
		for _, ob := range m.obligations {
			ready := now + n.p.params.Dcache
			switch ob.kind {
			case coherence.GetS:
				if state == cache.Modified || state == cache.Owned {
					n.p.sendData(ready, n.id, ob.src, n.p.newData(m.block, false, version, stats.MissCacheToCache))
					if mosi {
						state = cache.Owned
					} else {
						n.p.sendData(ready, n.id, home, n.p.newData(m.block, true, version, 0))
						state = cache.Shared
					}
				}
			case coherence.GetX:
				if state == cache.Modified || state == cache.Owned {
					n.p.sendData(ready, n.id, ob.src, n.p.newData(m.block, false, version, stats.MissCacheToCache))
				}
				state = cache.Invalid
			}
		}
		if state != cache.Modified {
			n.cache.SetState(m.block, state)
		}
	}

	// Read everything out of the MSHR before invoking the completion
	// callback: the node's single MSHR is reused, and done may issue the
	// next access synchronously.
	block, supplier, latency, done := m.block, m.supplier, now-m.issuedAt, m.done
	if pr := n.p.probe; pr != nil {
		pr.MissWait(int64(latency))
		// Lifecycle spans, all on the node's MSHR lane (tid 1; the
		// blocking protocol has one MSHR slot per node): the whole miss,
		// the slice spent waiting for the ordering point, and the data
		// phase relative to it. A MOSI self-upgrade (selfData) moves no
		// data, so it records no data phase.
		id, lane := int32(n.id), obs.LaneMSHR0
		pr.Span(obs.SpanMiss, id, lane, id, 0, int64(m.issuedAt), int64(latency))
		pr.Span(obs.SpanOrderWait, id, lane, id, 0, int64(m.issuedAt), int64(m.orderedAt-m.issuedAt))
		if !m.selfData {
			if m.dataAt >= m.orderedAt {
				pr.Span(obs.SpanDataAfterOrder, id, lane, id, 0, int64(m.orderedAt), int64(m.dataAt-m.orderedAt))
			} else {
				pr.Span(obs.SpanDataBeforeOrder, id, lane, id, 0, int64(m.dataAt), int64(m.orderedAt-m.dataAt))
			}
		}
	}
	n.p.oracle.Observe(n.id, block, version)
	done(coherence.AccessResult{
		Kind:    supplier,
		Latency: latency,
		Version: version,
	})
	n.p.run.AddMiss(supplier, latency)
}

// insertLine fills a block, handling victim eviction: a Modified victim
// enters the writeback buffer and broadcasts PUTX; a Shared victim is
// dropped silently (the protocols "allow processors to silently downgrade
// from S to I").
func (n *node) insertLine(b coherence.Block, s cache.State, version uint64) {
	victim, evicted := n.cache.Insert(b, s, version)
	if !evicted {
		return
	}
	if victim.State.Dirty() {
		if _, dup := n.wb[victim.Block]; dup {
			panic(fmt.Sprintf("tssnoop: node %d duplicate writeback for %x", n.id, victim.Block))
		}
		n.wb[victim.Block] = wbEntry{version: victim.Version}
		put := n.p.newAddr()
		put.kind = coherence.PutX
		put.block = victim.Block
		// The requester must name the evicting node: snoop dispatches
		// own-vs-foreign on it, so leaving it zero would misroute every
		// writeback from a node other than 0 (node 0 would claim it and
		// panic on its missing writeback entry).
		put.requester = n.id
		n.p.broadcastAddr(n.id, put)
	}
}
