package tssnoop

import (
	"testing"

	"tsnoop/internal/coherence"
	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

// TestMissAllocs pins the allocation-free steady state of a full
// timestamp-snooping miss: two nodes ping-pong stores to one block, so
// every access is a cache-to-cache GETX miss — broadcast, global
// ordering, foreign snoop supplying the data, memory-side owner update,
// data-network delivery, and MSHR completion. Once the block's memory
// state and the payload free lists are warm, the whole path must not
// allocate. Uninstrumented network (Verify off), as experiment runs use.
func TestMissAllocs(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	run := &stats.Run{}
	opts := DefaultOptions(timing.Default())
	opts.Net.Verify = false
	p := New(k, topo, timing.Default(), run, nil, opts)
	k.RunUntil(100 * sim.Nanosecond)

	const block = coherence.Block(42)
	done := false
	doneFn := func(coherence.AccessResult) { done = true }
	node := 0
	miss := func() {
		done = false
		p.Access(node, coherence.Store, block, doneFn)
		node = 1 - node
		k.RunWhile(func() bool { return !done })
	}
	// Warm up: touch the block from both nodes, fill the free lists.
	for i := 0; i < 8; i++ {
		miss()
	}

	if allocs := testing.AllocsPerRun(200, miss); allocs != 0 {
		t.Errorf("steady-state TS-Snoop miss allocates %v/op, want 0", allocs)
	}
}

// TestMissAllocsTraced pins the probes-AND-spans-on budget for the same
// full miss path: with lifecycle span recording enabled (per-phase
// histograms plus a pre-sized raw-span ring), the steady state must
// still not allocate — every Probe.Span call is integer arithmetic into
// fixed arrays and a ring overwrite.
func TestMissAllocsTraced(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	probe := obs.NewProbe()
	probe.EnableSpans(obs.NewSpanLog(1 << 12))
	k.SetProbe(probe)
	run := &stats.Run{}
	opts := DefaultOptions(timing.Default())
	opts.Net.Verify = false
	opts.Probe = probe
	opts.Net.Probe = probe
	p := New(k, topo, timing.Default(), run, nil, opts)
	k.RunUntil(100 * sim.Nanosecond)

	const block = coherence.Block(42)
	done := false
	doneFn := func(coherence.AccessResult) { done = true }
	node := 0
	miss := func() {
		done = false
		p.Access(node, coherence.Store, block, doneFn)
		node = 1 - node
		k.RunWhile(func() bool { return !done })
	}
	for i := 0; i < 8; i++ {
		miss()
	}

	if allocs := testing.AllocsPerRun(200, miss); allocs != 0 {
		t.Errorf("span-traced steady-state TS-Snoop miss allocates %v/op, want 0", allocs)
	}
}

// TestHitAllocs pins the L2-hit fast path: lookup, oracle observation,
// and the delayed completion through the node's hit queue.
func TestHitAllocs(t *testing.T) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	run := &stats.Run{}
	opts := DefaultOptions(timing.Default())
	opts.Net.Verify = false
	p := New(k, topo, timing.Default(), run, nil, opts)
	k.RunUntil(100 * sim.Nanosecond)

	const block = coherence.Block(7)
	done := false
	doneFn := func(coherence.AccessResult) { done = true }
	access := func(op coherence.Op) {
		done = false
		p.Access(3, op, block, doneFn)
		k.RunWhile(func() bool { return !done })
	}
	access(coherence.Store) // install the block in M
	access(coherence.Store)

	if allocs := testing.AllocsPerRun(200, func() { access(coherence.Store) }); allocs != 0 {
		t.Errorf("steady-state L2 hit allocates %v/op, want 0", allocs)
	}
}
