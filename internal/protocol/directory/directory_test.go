package directory

import (
	"testing"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

type env struct {
	k    *sim.Kernel
	p    *Protocol
	run  *stats.Run
	topo *topology.Topology
}

func newEnv(t *testing.T, topo *topology.Topology, v Variant, mutate func(*Options)) *env {
	t.Helper()
	k := sim.NewKernel()
	run := &stats.Run{}
	params := timing.Default()
	opts := DefaultOptions(v)
	opts.Cache = cache.Config{SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 64}
	if mutate != nil {
		mutate(&opts)
	}
	p := New(k, topo, params, run, coherence.NewOracle(), opts)
	return &env{k: k, p: p, run: run, topo: topo}
}

func (e *env) access(t *testing.T, node int, op coherence.Op, b coherence.Block) coherence.AccessResult {
	t.Helper()
	var res coherence.AccessResult
	done := false
	e.p.Access(node, op, b, func(r coherence.AccessResult) { res = r; done = true })
	e.k.RunWhile(func() bool { return !done })
	if !done {
		t.Fatalf("access node %d %v %x never completed", node, op, b)
	}
	return res
}

func (e *env) settle(d sim.Duration) { e.k.RunUntil(e.k.Now() + d) }

func TestMemoryMissLatencyMatchesTable2(t *testing.T) {
	// Table 2: block from memory = Dnet + Dmem + Dnet = 178 ns on the
	// butterfly. Directory request/response paths are exact (no ordering
	// slack), so the latency must be exactly 178 ns for a remote home.
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustButterfly(4), v, nil)
		res := e.access(t, 0, coherence.Load, 7)
		if res.Latency != 178*sim.Nanosecond {
			t.Errorf("%v memory miss latency = %v, want 178ns", v, res.Latency)
		}
		if res.Kind != stats.MissFromMemory {
			t.Errorf("%v kind = %v", v, res.Kind)
		}
	}
}

func TestThreeHopLatencyMatchesTable2(t *testing.T) {
	// Table 2: block from cache with directory "3 hops" = Dnet + Dmem +
	// Dnet + Dcache + Dnet = 252 ns on the butterfly — about double
	// timestamp snooping's 123 ns.
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustButterfly(4), v, nil)
		e.access(t, 5, coherence.Store, 7)
		res := e.access(t, 0, coherence.Load, 7)
		if res.Latency != 252*sim.Nanosecond {
			t.Errorf("%v 3-hop latency = %v, want 252ns", v, res.Latency)
		}
		if res.Kind != stats.MissCacheToCache {
			t.Errorf("%v kind = %v", v, res.Kind)
		}
	}
}

func TestTorusLatencies(t *testing.T) {
	// Torus means: memory 148 ns, 3-hop 207 ns (Table 2). Specific pairs
	// vary with distance; verify one exact configuration.
	e := newEnv(t, topology.MustTorus(4, 4), Opt, nil)
	// Node 0 -> home 2 (distance 2): Dnet = 4+30 = 34 both ways: 148 ns.
	res := e.access(t, 0, coherence.Load, 2)
	if res.Latency != 148*sim.Nanosecond {
		t.Errorf("torus memory latency = %v, want 148ns", res.Latency)
	}
}

func TestGetSAfterOwnerSharesDirectory(t *testing.T) {
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustButterfly(4), v, nil)
		e.access(t, 5, coherence.Store, 7)
		e.access(t, 0, coherence.Load, 7)
		e.settle(sim.Microsecond)
		st, _, sharers := e.p.DirectoryState(7)
		if st != "S" || sharers != 2 {
			t.Errorf("%v directory = %s/%d sharers, want S/2", v, st, sharers)
		}
		if s := e.p.CacheState(5, 7); s != cache.Shared {
			t.Errorf("%v old owner state = %v, want S", v, s)
		}
	}
}

func TestGetXInvalidatesSharersAndCollectsAcks(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), Classic, nil)
	e.access(t, 1, coherence.Load, 9)
	e.access(t, 2, coherence.Load, 9)
	e.access(t, 3, coherence.Load, 9)
	res := e.access(t, 4, coherence.Store, 9)
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
	e.settle(sim.Microsecond)
	for _, nd := range []int{1, 2, 3} {
		if s := e.p.CacheState(nd, 9); s != cache.Invalid {
			t.Errorf("sharer %d state = %v, want I", nd, s)
		}
	}
	st, owner, _ := e.p.DirectoryState(9)
	if st != "E" || owner != 4 {
		t.Errorf("directory = %s owner %d, want E owner 4", st, owner)
	}
	// Misc traffic must include invalidations and acks.
	if e.run.Traffic.LinkBytes(stats.ClassMisc) == 0 {
		t.Error("no misc traffic despite invalidations")
	}
}

func TestDirOptInvalidationsWithoutAcks(t *testing.T) {
	// The GETX latency with sharers must not depend on collecting acks:
	// it equals the plain two-hop latency.
	e := newEnv(t, topology.MustButterfly(4), Opt, nil)
	e.access(t, 1, coherence.Load, 9)
	e.access(t, 2, coherence.Load, 9)
	res := e.access(t, 4, coherence.Store, 9)
	if res.Latency != 178*sim.Nanosecond {
		t.Fatalf("DirOpt GETX latency = %v, want 178ns (no ack wait)", res.Latency)
	}
	e.settle(sim.Microsecond)
	if s := e.p.CacheState(1, 9); s != cache.Invalid {
		t.Error("sharer not invalidated")
	}
}

func TestWritebackToDirectory(t *testing.T) {
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustButterfly(4), v, nil)
		base := coherence.Block(16)
		for i := 0; i < 5; i++ { // force eviction of base (4-way, same set)
			e.access(t, 0, coherence.Store, base+coherence.Block(i*256))
		}
		e.settle(2 * sim.Microsecond)
		st, _, _ := e.p.DirectoryState(base)
		if st != "U" {
			t.Errorf("%v directory after writeback = %s, want U", v, st)
		}
		res := e.access(t, 1, coherence.Load, base)
		if res.Kind != stats.MissFromMemory || res.Version != 1 {
			t.Errorf("%v reload = %+v, want memory/version 1", v, res)
		}
	}
}

func TestClassicNacksUnderContention(t *testing.T) {
	// Two nodes fight over a block owned by a third: the second request
	// hits the busy directory entry and is nacked.
	e := newEnv(t, topology.MustButterfly(4), Classic, nil)
	e.access(t, 5, coherence.Store, 7)
	done := 0
	e.p.Access(0, coherence.Load, 7, func(coherence.AccessResult) { done++ })
	e.p.Access(1, coherence.Load, 7, func(coherence.AccessResult) { done++ })
	e.k.RunWhile(func() bool { return done < 2 })
	if e.run.Retries == 0 {
		t.Fatal("no nack retries under contention")
	}
	if e.run.Traffic.LinkBytes(stats.ClassNack) == 0 {
		t.Fatal("no nack traffic recorded")
	}
}

func TestOptQueuesInsteadOfNacking(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), Opt, nil)
	e.access(t, 5, coherence.Store, 7)
	done := 0
	e.p.Access(0, coherence.Load, 7, func(coherence.AccessResult) { done++ })
	e.p.Access(1, coherence.Load, 7, func(coherence.AccessResult) { done++ })
	e.k.RunWhile(func() bool { return done < 2 })
	if e.run.Retries != 0 {
		t.Fatalf("DirOpt retried %d times", e.run.Retries)
	}
	if e.run.Traffic.LinkBytes(stats.ClassNack) != 0 {
		t.Fatal("DirOpt produced nack traffic")
	}
}

func TestMigratorySharing(t *testing.T) {
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustTorus(4, 4), v, nil)
		var last uint64
		for round := 0; round < 2; round++ {
			for nd := 0; nd < 16; nd++ {
				e.access(t, nd, coherence.Load, 5)
				res := e.access(t, nd, coherence.Store, 5)
				if res.Version <= last {
					t.Fatalf("%v: version regressed %d -> %d", v, last, res.Version)
				}
				last = res.Version
			}
		}
		if e.run.Misses(stats.MissCacheToCache) == 0 {
			t.Fatalf("%v: no cache-to-cache transfers", v)
		}
	}
}

func TestConcurrentStoresSerialize(t *testing.T) {
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustButterfly(4), v, nil)
		completed := 0
		for nd := 0; nd < 16; nd++ {
			e.p.Access(nd, coherence.Store, 3, func(coherence.AccessResult) { completed++ })
		}
		e.k.RunWhile(func() bool { return completed < 16 })
		owners := 0
		for nd := 0; nd < 16; nd++ {
			if e.p.CacheState(nd, 3) == cache.Modified {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("%v: owners = %d", v, owners)
		}
	}
}

func TestConcurrentMixStress(t *testing.T) {
	for _, v := range []Variant{Classic, Opt} {
		for _, topo := range []*topology.Topology{topology.MustButterfly(4), topology.MustTorus(4, 4)} {
			e := newEnv(t, topo, v, nil)
			rng := sim.NewRand(1234)
			remaining := make([]int, 16)
			for i := range remaining {
				remaining[i] = 120
			}
			left := 16 * 120
			var issue func(nd int)
			issue = func(nd int) {
				if remaining[nd] == 0 {
					return
				}
				remaining[nd]--
				b := coherence.Block(rng.Intn(8))
				op := coherence.Load
				if rng.Bool(0.4) {
					op = coherence.Store
				}
				e.p.Access(nd, op, b, func(coherence.AccessResult) {
					left--
					issue(nd)
				})
			}
			for nd := 0; nd < 16; nd++ {
				issue(nd)
			}
			e.k.RunWhile(func() bool { return left > 0 })
			e.settle(2 * sim.Microsecond)
			if e.p.Pending() != 0 {
				t.Fatalf("%v/%s: pending = %d", v, topo.Name(), e.p.Pending())
			}
			// SWMR and directory-cache agreement at quiescence.
			for b := coherence.Block(0); b < 8; b++ {
				m, s := 0, 0
				for nd := 0; nd < 16; nd++ {
					switch e.p.CacheState(nd, b) {
					case cache.Modified:
						m++
					case cache.Shared:
						s++
					}
				}
				if m > 1 || (m == 1 && s > 0) {
					t.Fatalf("%v/%s: block %d SWMR violated (%d M, %d S)", v, topo.Name(), b, m, s)
				}
				st, owner, _ := e.p.DirectoryState(b)
				if m == 1 && st != "E" {
					t.Fatalf("%v/%s: block %d cached M but dir %s", v, topo.Name(), b, st)
				}
				if st == "E" {
					if e.p.CacheState(owner, b) != cache.Modified {
						t.Fatalf("%v/%s: dir E owner %d lacks M copy", v, topo.Name(), owner)
					}
				}
			}
		}
	}
}

func TestConcurrentMixWithPerturbation(t *testing.T) {
	// Random response delays exercise the races: held writebacks,
	// deferred interventions, stale invals.
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustTorus(4, 4), v, nil)
		prng := sim.NewRand(5)
		e.p.SetPerturbation(func() sim.Duration { return prng.Duration(3 * sim.Nanosecond) })
		rng := sim.NewRand(77)
		remaining := make([]int, 16)
		for i := range remaining {
			remaining[i] = 150
		}
		left := 16 * 150
		var issue func(nd int)
		issue = func(nd int) {
			if remaining[nd] == 0 {
				return
			}
			remaining[nd]--
			b := coherence.Block(rng.Intn(6))
			op := coherence.Load
			if rng.Bool(0.5) {
				op = coherence.Store
			}
			e.p.Access(nd, op, b, func(coherence.AccessResult) {
				left--
				issue(nd)
			})
		}
		for nd := 0; nd < 16; nd++ {
			issue(nd)
		}
		e.k.RunWhile(func() bool { return left > 0 })
		if e.p.Pending() != 0 {
			t.Fatalf("%v: pending = %d", v, e.p.Pending())
		}
	}
}

func TestTrafficPerMissEnvelope(t *testing.T) {
	// Section 5: a directory miss satisfied by memory costs, at minimum,
	// an address packet over 3 links and a data packet over 3 links =
	// 240 bytes on the 16-node butterfly.
	e := newEnv(t, topology.MustButterfly(4), Opt, nil)
	before := e.run.Traffic.TotalLinkBytes()
	e.access(t, 0, coherence.Load, 7)
	got := e.run.Traffic.TotalLinkBytes() - before
	want := int64(3*8 + 3*72)
	if got != want {
		t.Fatalf("per-miss traffic = %d, want %d", got, want)
	}
}

func TestSelfInterventionViaWritebackBuffer(t *testing.T) {
	// A node writes a block, evicts it, and immediately re-reads it. If
	// the GETS reaches the home before the writeback, the home forwards
	// the intervention back to the requester, which serves it from its
	// own writeback buffer.
	for _, v := range []Variant{Classic, Opt} {
		e := newEnv(t, topology.MustButterfly(4), v, nil)
		base := coherence.Block(16)
		e.access(t, 0, coherence.Store, base)
		for i := 1; i < 5; i++ {
			e.access(t, 0, coherence.Store, base+coherence.Block(i*256))
		}
		// Immediately re-read the evicted block (writeback may race).
		res := e.access(t, 0, coherence.Load, base)
		if res.Version != 1 {
			t.Fatalf("%v: reread version = %d, want 1", v, res.Version)
		}
		e.settle(2 * sim.Microsecond)
		if e.p.Pending() != 0 {
			t.Fatalf("%v: pending after self-intervention", v)
		}
	}
}

func TestAccessWhileOutstandingPanics(t *testing.T) {
	e := newEnv(t, topology.MustButterfly(4), Classic, nil)
	e.p.Access(0, coherence.Load, 1, func(coherence.AccessResult) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second outstanding access did not panic")
		}
	}()
	e.p.Access(0, coherence.Load, 2, func(coherence.AccessResult) {})
}

func TestVariantNames(t *testing.T) {
	if Classic.String() != "DirClassic" || Opt.String() != "DirOpt" {
		t.Fatal("variant names")
	}
}
