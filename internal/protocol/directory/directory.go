// Package directory implements the paper's two directory-protocol
// baselines over unordered point-to-point networks:
//
//   - DirClassic is modelled after the SGI Origin 2000 protocol: a full
//     bit-vector directory at each home, busy states, and negative
//     acknowledgements (NACKs) when a request hits a busy entry, with the
//     requester retrying after a backoff. Invalidation acknowledgements
//     are collected by the requester.
//
//   - DirOpt follows the recent nack-free designs the paper cites
//     (AlphaServer GS320): requests that find the entry busy are queued at
//     the home in arrival order, forwarded requests travel on a
//     point-to-point ordered virtual network, and invalidations need no
//     acknowledgements. As in the GS320, a store therefore completes
//     while its invalidations may still be in flight; a remote sharer can
//     briefly hit its old copy, which is coherent (the load orders before
//     the store) but weaker than DirClassic's ack-synchronized stores.
//
// Both are MSI protocols on three virtual networks (request, forward,
// response) and share the cache, writeback-buffer and retry scaffolding.
// A cache-to-cache transfer is a three-hop transaction: requester -> home
// (directory lookup) -> owner -> requester, which is why its unloaded
// latency (252 ns on the butterfly) is roughly double timestamp
// snooping's.
package directory

import (
	"fmt"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/network"
	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

// Variant selects the protocol flavour.
type Variant int

// Variants.
const (
	Classic Variant = iota
	Opt
)

func (v Variant) String() string {
	if v == Classic {
		return "DirClassic"
	}
	return "DirOpt"
}

// Virtual network numbers.
const (
	vnetRequest  = 0
	vnetForward  = 1
	vnetResponse = 2
)

// Options configures a directory protocol instance.
type Options struct {
	Variant Variant
	Cache   cache.Config
	// RetryBackoff is the base delay before re-sending a nacked request
	// (DirClassic); each retry adds uniform jitter of the same magnitude.
	RetryBackoff sim.Duration
	// RetrySeed seeds the per-node backoff jitter.
	RetrySeed uint64
	// Probe, when non-nil, records deterministic protocol telemetry:
	// MSHR occupancy, miss-wait latency, and per-kind dispatch counts.
	// Every call site is nil-guarded, so bare runs pay one branch.
	Probe *obs.Probe
}

// DefaultOptions returns the configuration used in the paper's runs.
func DefaultOptions(v Variant) Options {
	return Options{
		Variant:      v,
		Cache:        cache.DefaultConfig(),
		RetryBackoff: 60 * sim.Nanosecond,
		RetrySeed:    1,
	}
}

// message kinds on the three virtual networks.
type msgKind int

const (
	mReq      msgKind = iota // requester -> home: GETS/GETX
	mNack                    // home -> requester (Classic)
	mData                    // data response to requester
	mFwd                     // home -> owner intervention
	mInval                   // home -> sharer invalidation
	mInvAck                  // sharer -> requester (Classic)
	mRevision                // owner -> home after intervention
	mWB                      // owner -> home writeback (carries data)
	mWBAck                   // home -> owner
)

type msg struct {
	kind      msgKind
	txn       coherence.TxnKind
	block     coherence.Block
	requester int
	version   uint64
	// ackCount rides on mData (Classic GETX): invalidation acks the
	// requester must collect before completing.
	ackCount int
	supplier stats.MissKind
	// keepCopy on a GETS revision: whether the old owner retained a
	// shared copy (false when it supplied from its writeback buffer).
	keepCopy bool
}

// dirState is the home directory entry state.
type dirState int

const (
	dirU dirState = iota // memory owns, no sharers
	dirS                 // shared by the bit vector
	dirE                 // exclusive at owner
)

// dirEntry is one block's full-bit-vector directory entry.
type dirEntry struct {
	state   dirState
	sharers uint64
	owner   int
	version uint64

	// busy marks an outstanding intervention episode (E-state requests).
	busy    bool
	busyTxn coherence.TxnKind
	busyReq int
	busyAt  sim.Time
	// heldWB holds writebacks that arrived during a busy episode: usually
	// the old owner's (its intervention is served from the writeback
	// buffer), but under perturbation also the incoming owner's, when its
	// eviction outruns the revision.
	heldWB []msg
	// queue holds requests that arrived while busy (DirOpt only).
	queue []msg
}

type mshr struct {
	block    coherence.Block
	op       coherence.Op
	txn      coherence.TxnKind
	issuedAt sim.Time
	done     func(coherence.AccessResult)

	dataArrived bool
	version     uint64
	supplier    stats.MissKind
	acksNeeded  int
	acksSeen    int
	haveAckInfo bool
	// invalVersion is the highest version an invalidation that arrived
	// while this (GETS) miss was outstanding was killing: if the fill's
	// version is not newer, the copy was invalidated before it could be
	// installed and must not be cached (the load itself is still legal —
	// it is ordered before the invalidating store).
	invalVersion uint64
	sawInval     bool
}

type wbEntry struct {
	version uint64
}

type node struct {
	p     *Protocol
	id    int
	cache *cache.Cache
	mshr  *mshr
	wb    map[coherence.Block]*wbEntry
	dir   map[coherence.Block]*dirEntry
	// deferred holds interventions that arrived before this node's own
	// GETX completed (the home granted ownership while the fill was still
	// in flight).
	deferred map[coherence.Block][]msg
	rng      *sim.Rand

	// mshrStore is the node's single reusable MSHR: one miss is
	// outstanding per node (blocking processors), so the value is reset
	// and reused rather than allocated per miss.
	mshrStore mshr

	// hitQ buffers in-flight L2-hit completions.
	hitQ coherence.HitQueue
}

// Protocol is one directory protocol instance over a topology.
type Protocol struct {
	k      *sim.Kernel
	topo   *topology.Topology
	params timing.Params
	run    *stats.Run
	oracle *coherence.Oracle
	opts   Options

	fabric *network.Fabric
	nodes  []*node

	pending   int
	dataBytes int
	probe     *obs.Probe // optional deterministic telemetry (Options.Probe)

	// msgPool recycles message payloads: each is delivered to exactly
	// one endpoint, which returns it to the pool on receipt, so a steady
	// stream of protocol messages allocates nothing.
	msgPool sim.Pool[msg]
}

var _ coherence.Protocol = (*Protocol)(nil)

// New constructs a directory protocol. oracle may be nil.
func New(k *sim.Kernel, topo *topology.Topology, params timing.Params, run *stats.Run, oracle *coherence.Oracle, opts Options) *Protocol {
	if topo.Nodes() > 64 {
		panic("directory: full bit vector limited to 64 nodes")
	}
	if oracle == nil {
		oracle = coherence.NewOracle()
	}
	p := &Protocol{
		k:      k,
		topo:   topo,
		params: params,
		run:    run,
		oracle: oracle,
		opts:   opts,
		probe:  opts.Probe,
	}
	p.dataBytes = timing.DataMsgBytes(opts.Cache.BlockBytes)
	var ordered []int
	if opts.Variant == Opt {
		// DirOpt "uses point-to-point ordering on one virtual network to
		// avoid nacks".
		ordered = []int{vnetForward}
	}
	p.fabric = network.New(k, topo, params, &run.Traffic, ordered...)
	p.fabric.SetProbe(opts.Probe)
	p.nodes = make([]*node, topo.Nodes())
	rng := sim.NewRand(opts.RetrySeed)
	for i := range p.nodes {
		n := &node{
			p:        p,
			id:       i,
			cache:    cache.MustNew(opts.Cache),
			wb:       make(map[coherence.Block]*wbEntry),
			dir:      make(map[coherence.Block]*dirEntry),
			deferred: make(map[coherence.Block][]msg),
			rng:      rng.Split(),
		}
		p.nodes[i] = n
		p.fabric.Register(i, n.receive)
	}
	return p
}

// Name implements coherence.Protocol.
func (p *Protocol) Name() string { return p.opts.Variant.String() }

// Pending implements coherence.Protocol.
func (p *Protocol) Pending() int { return p.pending }

// Oracle returns the coherence checker in use.
func (p *Protocol) Oracle() *coherence.Oracle { return p.oracle }

// SetPerturbation installs a response-delay sampler on the fabric.
func (p *Protocol) SetPerturbation(fn func() sim.Duration) { p.fabric.SetPerturbation(fn) }

// CacheState reports the cache state of block b at a node (tests).
func (p *Protocol) CacheState(nodeID int, b coherence.Block) cache.State {
	s, _ := p.nodes[nodeID].cache.Peek(b)
	return s
}

// DirectoryState reports the home directory state for b (tests): the
// state, owner (or -1) and sharer count.
func (p *Protocol) DirectoryState(b coherence.Block) (string, int, int) {
	home := coherence.HomeOf(b, p.topo.Nodes())
	e, ok := p.nodes[home].dir[b]
	if !ok || e.state == dirU {
		return "U", -1, 0
	}
	if e.state == dirE {
		return "E", e.owner, 0
	}
	cnt := 0
	for v := e.sharers; v != 0; v &= v - 1 {
		cnt++
	}
	return "S", -1, cnt
}

// Access implements coherence.Protocol.
func (p *Protocol) Access(nodeID int, op coherence.Op, block coherence.Block, done func(coherence.AccessResult)) {
	n := p.nodes[nodeID]
	if n.mshr != nil {
		panic(fmt.Sprintf("%s: node %d access while miss outstanding", p.Name(), nodeID))
	}
	state, version := n.cache.Lookup(block)

	hit := (op == coherence.Load && state != cache.Invalid) ||
		(op == coherence.Store && state == cache.Modified)
	if hit {
		if op == coherence.Store {
			version = p.oracle.WriteVersion(block)
			n.cache.SetVersion(block, version)
		}
		p.oracle.Observe(nodeID, block, version)
		n.hitQ.Push(done, coherence.AccessResult{Hit: true, Latency: p.params.L2Hit, Version: version})
		p.k.AfterCall(p.params.L2Hit, coherence.DeliverHit, &n.hitQ, nil, 0)
		if pr := p.probe; pr != nil {
			pr.Event(obs.EvL2Hit)
		}
		return
	}

	txn := coherence.GetS
	if op == coherence.Store {
		txn = coherence.GetX
	}
	p.pending++
	if pr := p.probe; pr != nil {
		pr.MSHROcc(p.pending)
	}
	m := &n.mshrStore
	*m = mshr{block: block, op: op, txn: txn, issuedAt: p.k.Now(), done: done}
	n.mshr = m
	n.sendRequest()
}

// newMsg returns a pooled message payload holding m.
func (p *Protocol) newMsg(m msg) *msg {
	pm := p.msgPool.Get()
	*pm = m
	return pm
}

// releaseMsg recycles a delivered message payload.
func (p *Protocol) releaseMsg(pm *msg) { p.msgPool.Put(pm) }

// send transmits a protocol message, charging the right traffic class.
func (p *Protocol) send(vnet, src, dst int, m msg) {
	p.sendPtr(vnet, src, dst, p.newMsg(m))
}

func (p *Protocol) sendPtr(vnet, src, dst int, pm *msg) {
	class, bytes := p.classify(*pm)
	p.fabric.Send(vnet, src, dst, class, bytes, pm)
}

// sendAt schedules a send at a future ready time.
func (p *Protocol) sendAt(at sim.Time, vnet, src, dst int, m msg) {
	if at <= p.k.Now() {
		p.send(vnet, src, dst, m)
		return
	}
	p.k.AtCall(at, sendMsgEvent, p, p.newMsg(m), int64(vnet)<<40|int64(src)<<20|int64(dst))
}

// sendMsgEvent is the typed kernel event putting a ready message on the
// wire: a0 is the Protocol, a1 the pooled message, i0 packs
// (vnet, src, dst) in 20-bit fields.
func sendMsgEvent(a0, a1 any, i0 int64) {
	p := a0.(*Protocol)
	p.sendPtr(int(i0>>40), int(i0>>20)&0xfffff, int(i0&0xfffff), a1.(*msg))
}

// classify maps messages to Figure 4's traffic classes: Data for
// block-carrying messages, Nack for nacks, Request for GETS/GETX, and
// Misc. for "forwarding, invalidations, and acknowledgments".
func (p *Protocol) classify(m msg) (stats.Class, int) {
	switch m.kind {
	case mReq:
		return stats.ClassRequest, timing.CtrlBytes
	case mNack:
		return stats.ClassNack, timing.CtrlBytes
	case mData, mWB:
		return stats.ClassData, p.dataBytes
	case mRevision:
		if m.txn == coherence.GetS {
			// The sharing writeback carries the block to memory.
			return stats.ClassData, p.dataBytes
		}
		return stats.ClassMisc, timing.CtrlBytes
	default:
		return stats.ClassMisc, timing.CtrlBytes
	}
}

func (n *node) sendRequest() {
	m := n.mshr
	home := coherence.HomeOf(m.block, n.p.topo.Nodes())
	n.p.send(vnetRequest, n.id, home, msg{kind: mReq, txn: m.txn, block: m.block, requester: n.id})
}

// receive dispatches a delivered message.
func (n *node) receive(nm network.Message) {
	pm := nm.Payload.(*msg)
	m := *pm
	n.p.releaseMsg(pm)
	switch m.kind {
	case mReq:
		n.homeRequest(m)
	case mNack:
		n.reqNack(m)
	case mData:
		n.reqData(m)
	case mFwd:
		n.ownerFwd(m)
	case mInval:
		n.sharerInval(m)
	case mInvAck:
		n.reqInvAck(m)
	case mRevision:
		n.homeRevision(m)
	case mWB:
		n.homeWB(m)
	case mWBAck:
		n.ownerWBAck(m)
	default:
		panic("directory: unknown message kind")
	}
}

func (n *node) entry(b coherence.Block) *dirEntry {
	e, ok := n.dir[b]
	if !ok {
		e = &dirEntry{state: dirU, owner: -1}
		n.dir[b] = e
	}
	return e
}

// homeRequest processes a GETS/GETX at the home directory.
func (n *node) homeRequest(m msg) {
	e := n.entry(m.block)
	if e.busy {
		if n.p.opts.Variant == Classic {
			n.p.send(vnetResponse, n.id, m.requester, msg{kind: mNack, block: m.block, txn: m.txn})
			return
		}
		e.queue = append(e.queue, m)
		return
	}
	n.serveRequest(e, m)
}

// serveRequest handles a request against a non-busy entry. The directory
// access costs Dmem before any response or forward leaves the home.
func (n *node) serveRequest(e *dirEntry, m msg) {
	ready := n.p.k.Now() + n.p.params.Dmem
	switch m.txn {
	case coherence.GetS:
		switch e.state {
		case dirU, dirS:
			e.state = dirS
			e.sharers |= 1 << uint(m.requester)
			n.p.sendAt(ready, vnetResponse, n.id, m.requester, msg{
				kind: mData, txn: m.txn, block: m.block,
				version: e.version, supplier: stats.MissFromMemory,
			})
		case dirE:
			e.busy = true
			e.busyTxn = coherence.GetS
			e.busyReq = m.requester
			e.busyAt = n.p.k.Now()
			n.p.sendAt(ready, vnetForward, n.id, e.owner, msg{
				kind: mFwd, txn: coherence.GetS, block: m.block, requester: m.requester,
			})
		}
	case coherence.GetX:
		switch e.state {
		case dirU:
			e.state = dirE
			e.owner = m.requester
			n.p.sendAt(ready, vnetResponse, n.id, m.requester, msg{
				kind: mData, txn: m.txn, block: m.block,
				version: e.version, supplier: stats.MissFromMemory,
			})
		case dirS:
			acks := 0
			for s := e.sharers; s != 0; s &= s - 1 {
				sh := bitIndex(s)
				if sh == m.requester {
					continue
				}
				acks++
				// The invalidation carries the version it is killing so a
				// racing fill can tell whether it is the victim (version
				// <= e.version) or a newer grant that must survive.
				n.p.sendAt(ready, vnetForward, n.id, sh, msg{
					kind: mInval, block: m.block, requester: m.requester, version: e.version,
				})
			}
			if n.p.opts.Variant == Opt {
				// GS320-style: ordered invalidation delivery removes the
				// need for acknowledgements.
				acks = 0
			}
			e.state = dirE
			e.owner = m.requester
			e.sharers = 0
			n.p.sendAt(ready, vnetResponse, n.id, m.requester, msg{
				kind: mData, txn: m.txn, block: m.block,
				version: e.version, ackCount: acks, supplier: stats.MissFromMemory,
			})
		case dirE:
			e.busy = true
			e.busyTxn = coherence.GetX
			e.busyReq = m.requester
			e.busyAt = n.p.k.Now()
			n.p.sendAt(ready, vnetForward, n.id, e.owner, msg{
				kind: mFwd, txn: coherence.GetX, block: m.block, requester: m.requester,
			})
		}
	default:
		panic("directory: bad request kind")
	}
}

func bitIndex(v uint64) int {
	idx := 0
	for v&1 == 0 {
		v >>= 1
		idx++
	}
	return idx
}

// reqNack handles a NACK: retry after backoff with jitter.
func (n *node) reqNack(m msg) {
	if n.mshr == nil || n.mshr.block != m.block {
		return // stale nack for an already-satisfied retry
	}
	n.p.run.Retries++
	back := n.p.opts.RetryBackoff + n.rng.Duration(n.p.opts.RetryBackoff)
	n.p.k.AfterCall(back, retryRequest, n, nil, int64(m.block))
}

// retryRequest is the typed kernel event ending a NACK backoff: a0 is
// the node, i0 the block whose miss is being retried (skipped when the
// miss was satisfied or replaced in the meantime).
func retryRequest(a0, a1 any, i0 int64) {
	n := a0.(*node)
	if pr := n.p.probe; pr != nil {
		pr.Event(obs.EvRetry)
	}
	if n.mshr != nil && n.mshr.block == coherence.Block(i0) {
		n.sendRequest()
	}
}

// reqData handles the data response for this node's outstanding miss.
func (n *node) reqData(m msg) {
	ms := n.mshr
	if ms == nil || ms.block != m.block {
		panic(fmt.Sprintf("%s: node %d data for unexpected block %x", n.p.Name(), n.id, m.block))
	}
	ms.dataArrived = true
	ms.version = m.version
	ms.supplier = m.supplier
	ms.acksNeeded = m.ackCount
	ms.haveAckInfo = true
	n.maybeComplete()
}

func (n *node) reqInvAck(m msg) {
	ms := n.mshr
	if ms == nil || ms.block != m.block {
		// The ack can outrun the protocol: count it only if it matches an
		// outstanding miss; otherwise it is stale (should not occur).
		panic(fmt.Sprintf("%s: node %d stray invalidation ack", n.p.Name(), n.id))
	}
	ms.acksSeen++
	n.maybeComplete()
}

func (n *node) maybeComplete() {
	ms := n.mshr
	if ms == nil || !ms.dataArrived || !ms.haveAckInfo || ms.acksSeen < ms.acksNeeded {
		return
	}
	n.complete()
}

func (n *node) complete() {
	ms := n.mshr
	n.mshr = nil
	n.p.pending--
	if pr := n.p.probe; pr != nil {
		pr.MSHROcc(n.p.pending)
	}
	now := n.p.k.Now()

	version := ms.version
	if ms.txn == coherence.GetS {
		// Skip the install when an invalidation that raced this fill was
		// killing this very grant (fill version not newer than the
		// version the invalidation targeted).
		if !ms.sawInval || version > ms.invalVersion {
			n.insertLine(ms.block, cache.Shared, version)
		}
	} else {
		if ms.op == coherence.Store {
			version = n.p.oracle.WriteVersion(ms.block)
		}
		n.insertLine(ms.block, cache.Modified, version)
	}
	// Read everything out of the MSHR before invoking the completion
	// callback: the node's single MSHR is reused, and done may issue the
	// next access synchronously.
	block, supplier, latency, done := ms.block, ms.supplier, now-ms.issuedAt, ms.done
	if pr := n.p.probe; pr != nil {
		pr.MissWait(int64(latency))
		// The directory protocol has no ordering point or address
		// broadcast, so its lifecycle breakdown is the miss total only
		// (plus the shared data-fabric flight spans).
		pr.Span(obs.SpanMiss, int32(n.id), obs.LaneMSHR0, int32(n.id), 0, int64(ms.issuedAt), int64(latency))
	}
	n.p.oracle.Observe(n.id, block, version)
	done(coherence.AccessResult{
		Kind:    supplier,
		Latency: latency,
		Version: version,
	})
	n.p.run.AddMiss(supplier, latency)

	// Serve interventions that were waiting for this fill.
	if dl := n.deferred[block]; len(dl) > 0 {
		delete(n.deferred, block)
		for _, f := range dl {
			n.ownerFwd(f)
		}
	}
}

// insertLine fills a block, evicting as needed. Modified victims write
// back to their home and stay in the writeback buffer until acknowledged,
// so in-flight interventions can still be served.
func (n *node) insertLine(b coherence.Block, s cache.State, version uint64) {
	victim, evicted := n.cache.Insert(b, s, version)
	if !evicted || victim.State != cache.Modified {
		return
	}
	if _, dup := n.wb[victim.Block]; dup {
		panic(fmt.Sprintf("%s: node %d duplicate writeback for %x", n.p.Name(), n.id, victim.Block))
	}
	n.wb[victim.Block] = &wbEntry{version: victim.Version}
	home := coherence.HomeOf(victim.Block, n.p.topo.Nodes())
	n.p.send(vnetResponse, n.id, home, msg{
		kind: mWB, block: victim.Block, requester: n.id, version: victim.Version,
	})
}

// ownerFwd serves an intervention at the (supposed) owner.
func (n *node) ownerFwd(m msg) {
	state, version := n.cache.Peek(m.block)
	ready := n.p.k.Now() + n.p.params.Dcache
	home := coherence.HomeOf(m.block, n.p.topo.Nodes())
	switch {
	case state == cache.Modified:
		n.p.sendAt(ready, vnetResponse, n.id, m.requester, msg{
			kind: mData, txn: m.txn, block: m.block, version: version, supplier: stats.MissCacheToCache,
		})
		if m.txn == coherence.GetS {
			n.cache.SetState(m.block, cache.Shared)
			n.p.sendAt(ready, vnetResponse, n.id, home, msg{
				kind: mRevision, txn: coherence.GetS, block: m.block, version: version, keepCopy: true,
			})
		} else {
			n.cache.SetState(m.block, cache.Invalid)
			n.p.sendAt(ready, vnetResponse, n.id, home, msg{
				kind: mRevision, txn: coherence.GetX, block: m.block, version: version,
			})
		}
	case n.wb[m.block] != nil:
		// Evicted but not yet acknowledged: supply from the writeback
		// buffer; the home will squash the writeback when it completes
		// this episode.
		wb := n.wb[m.block]
		n.p.sendAt(ready, vnetResponse, n.id, m.requester, msg{
			kind: mData, txn: m.txn, block: m.block, version: wb.version, supplier: stats.MissCacheToCache,
		})
		n.p.sendAt(ready, vnetResponse, n.id, home, msg{
			kind: mRevision, txn: m.txn, block: m.block, version: wb.version, keepCopy: false,
		})
	case n.mshr != nil && n.mshr.block == m.block && n.mshr.txn == coherence.GetX:
		// The home granted us ownership but our fill is still in flight.
		n.deferred[m.block] = append(n.deferred[m.block], m)
	default:
		panic(fmt.Sprintf("%s: node %d intervention for block %x in state %v without data",
			n.p.Name(), n.id, m.block, state))
	}
}

// sharerInval invalidates a shared copy. A Modified copy (a newer grant)
// is never downgraded by a stale invalidation; a fill in flight records
// the invalidation's version so completion can discard the copy when the
// invalidation targeted it.
func (n *node) sharerInval(m msg) {
	if s, v := n.cache.Peek(m.block); s == cache.Shared && v <= m.version {
		n.cache.SetState(m.block, cache.Invalid)
	}
	if ms := n.mshr; ms != nil && ms.block == m.block && ms.txn == coherence.GetS {
		ms.sawInval = true
		if m.version > ms.invalVersion {
			ms.invalVersion = m.version
		}
	}
	if n.p.opts.Variant == Classic {
		n.p.send(vnetResponse, n.id, m.requester, msg{kind: mInvAck, block: m.block})
	}
}

// homeRevision completes a busy intervention episode at the home.
func (n *node) homeRevision(m msg) {
	e := n.entry(m.block)
	if !e.busy {
		panic(fmt.Sprintf("%s: revision for idle block %x", n.p.Name(), m.block))
	}
	oldOwner := e.owner
	if m.version > e.version {
		e.version = m.version
	}
	if e.busyTxn == coherence.GetS {
		e.state = dirS
		e.sharers = 1 << uint(e.busyReq)
		if m.keepCopy {
			e.sharers |= 1 << uint(oldOwner)
		}
		e.owner = -1
	} else {
		e.state = dirE
		e.owner = e.busyReq
	}
	e.busy = false

	// Writebacks held during the episode resolve against the new state:
	// the old owner's is stale (its intervention was served from the
	// writeback buffer); the incoming owner's, if its eviction outran the
	// revision, applies normally.
	held := e.heldWB
	e.heldWB = nil
	for _, wb := range held {
		n.applyWB(e, wb)
	}

	// DirOpt: serve the next queued request.
	n.drainQueue(e)
}

func (n *node) drainQueue(e *dirEntry) {
	for !e.busy && len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		n.serveRequest(e, next)
	}
}

// homeWB processes a writeback at the home.
func (n *node) homeWB(m msg) {
	e := n.entry(m.block)
	if e.busy {
		// An intervention episode is in flight; hold the writeback until
		// it resolves.
		e.heldWB = append(e.heldWB, m)
		return
	}
	n.applyWB(e, m)
	n.drainQueue(e)
}

// applyWB resolves one writeback against a non-busy entry.
func (n *node) applyWB(e *dirEntry, m msg) {
	if e.state == dirE && e.owner == m.requester {
		if m.version > e.version {
			e.version = m.version
		}
		e.state = dirU
		e.owner = -1
		n.p.send(vnetForward, n.id, m.requester, msg{kind: mWBAck, block: m.block})
		return
	}
	// Stale writeback: ownership already moved on. Acknowledge so the
	// writer can free its buffer; the data was already supplied through
	// the intervention path.
	n.p.send(vnetForward, n.id, m.requester, msg{kind: mWBAck, block: m.block})
}

// ownerWBAck frees the writeback buffer entry.
func (n *node) ownerWBAck(m msg) {
	if n.wb[m.block] == nil {
		panic(fmt.Sprintf("%s: node %d writeback ack without entry", n.p.Name(), n.id))
	}
	delete(n.wb, m.block)
}
