// Package timing holds the target-system timing assumptions of Table 2 and
// Section 4.2, shared by every protocol and by the analytic latency checks.
package timing

import "tsnoop/internal/sim"

// Params are the unloaded timing assumptions. All protocols in a
// comparison must use identical Params for the normalized results to be
// meaningful.
type Params struct {
	// Dovh is the enter/exit network overhead (4 ns).
	Dovh sim.Duration
	// Dswitch is one switch traversal including wire propagation,
	// synchronization, and routing (15 ns per link).
	Dswitch sim.Duration
	// Dmem is the directory+memory access time (80 ns).
	Dmem sim.Duration
	// Dcache is the time for a cache to provide data to the network after
	// a protocol message arrives (25 ns).
	Dcache sim.Duration
	// InstrTime is the cost of one instruction: the paper assumes
	// processors complete four billion instructions per second with a
	// perfect memory system, i.e. 250 ps/instruction.
	InstrTime sim.Duration
	// L2Hit is the level-two cache hit latency. The paper does not state
	// it; it is identical across protocols, so it cancels in all
	// normalized results.
	L2Hit sim.Duration
}

// Default returns the paper's Table 2 assumptions.
func Default() Params {
	return Params{
		Dovh:      4 * sim.Nanosecond,
		Dswitch:   15 * sim.Nanosecond,
		Dmem:      80 * sim.Nanosecond,
		Dcache:    25 * sim.Nanosecond,
		InstrTime: 250 * sim.Picosecond,
		L2Hit:     12 * sim.Nanosecond,
	}
}

// Dnet returns the one-way unloaded network latency for a message
// traversing the given number of links: Dovh + hops*Dswitch.
func (p Params) Dnet(hops int) sim.Duration {
	return p.Dovh + sim.Duration(hops)*p.Dswitch
}

// Message sizes (Section 5): data messages carry the data block plus an
// 8-byte header; all other messages carry the necessary bits of a 44-bit
// physical address.
const (
	// DataBytes is the data-message size for the paper's 64-byte blocks.
	DataBytes = 72
	// CtrlBytes is the size of every non-data message.
	CtrlBytes = 8
)

// DataMsgBytes returns the data-message size for a given block size.
func DataMsgBytes(blockBytes int) int { return blockBytes + CtrlBytes }
