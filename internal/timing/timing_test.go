package timing

import (
	"testing"

	"tsnoop/internal/sim"
)

func TestDefaultMatchesTable2Assumptions(t *testing.T) {
	p := Default()
	if p.Dovh != 4*sim.Nanosecond {
		t.Errorf("Dovh = %v", p.Dovh)
	}
	if p.Dswitch != 15*sim.Nanosecond {
		t.Errorf("Dswitch = %v", p.Dswitch)
	}
	if p.Dmem != 80*sim.Nanosecond {
		t.Errorf("Dmem = %v", p.Dmem)
	}
	if p.Dcache != 25*sim.Nanosecond {
		t.Errorf("Dcache = %v", p.Dcache)
	}
	if p.InstrTime != 250*sim.Picosecond {
		t.Errorf("InstrTime = %v (want 4 BIPS)", p.InstrTime)
	}
}

func TestDnetFormulas(t *testing.T) {
	p := Default()
	// Butterfly one-way: Dovh + 3*Dswitch = 49 ns.
	if got := p.Dnet(3); got != 49*sim.Nanosecond {
		t.Errorf("Dnet(3) = %v, want 49ns", got)
	}
	// Torus mean: Dovh + 2*Dswitch = 34 ns.
	if got := p.Dnet(2); got != 34*sim.Nanosecond {
		t.Errorf("Dnet(2) = %v, want 34ns", got)
	}
	// Derived Table 2 values.
	dnet := p.Dnet(3)
	if mem := dnet + p.Dmem + dnet; mem != 178*sim.Nanosecond {
		t.Errorf("block from memory = %v, want 178ns", mem)
	}
	if c2c := dnet + p.Dcache + dnet; c2c != 123*sim.Nanosecond {
		t.Errorf("TS cache-to-cache = %v, want 123ns", c2c)
	}
	if hop3 := 3*dnet + p.Dmem + p.Dcache; hop3 != 252*sim.Nanosecond {
		t.Errorf("directory 3-hop = %v, want 252ns", hop3)
	}
}

func TestMessageSizes(t *testing.T) {
	if DataBytes != 72 || CtrlBytes != 8 {
		t.Fatalf("message sizes %d/%d", DataBytes, CtrlBytes)
	}
	if DataMsgBytes(64) != 72 {
		t.Fatalf("DataMsgBytes(64) = %d", DataMsgBytes(64))
	}
	if DataMsgBytes(128) != 136 {
		t.Fatalf("DataMsgBytes(128) = %d", DataMsgBytes(128))
	}
}
