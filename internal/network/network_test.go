package network

import (
	"testing"

	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

func newTestFabric(t *testing.T, topo *topology.Topology, ordered ...int) (*sim.Kernel, *Fabric, *stats.Traffic) {
	t.Helper()
	k := sim.NewKernel()
	var tr stats.Traffic
	f := New(k, topo, timing.Default(), &tr, ordered...)
	return k, f, &tr
}

func TestButterflyUnloadedLatency(t *testing.T) {
	// Table 2: one-way latency on the butterfly is Dovh + 3*Dswitch = 49 ns.
	_, f, _ := newTestFabric(t, topology.MustButterfly(4))
	if got := f.UnloadedLatency(0, 15); got != 49*sim.Nanosecond {
		t.Fatalf("latency = %v, want 49ns", got)
	}
}

func TestTorusUnloadedLatencies(t *testing.T) {
	// Table 2: torus one-way latency is Dovh + [0,4]*Dswitch.
	_, f, _ := newTestFabric(t, topology.MustTorus(4, 4))
	if got := f.UnloadedLatency(0, 1); got != 19*sim.Nanosecond {
		t.Fatalf("1-hop latency = %v, want 19ns", got)
	}
	if got := f.UnloadedLatency(0, 10); got != 64*sim.Nanosecond {
		t.Fatalf("4-hop latency = %v, want 64ns", got)
	}
}

func TestSendDeliversWithLatency(t *testing.T) {
	k, f, _ := newTestFabric(t, topology.MustButterfly(4))
	var at sim.Time
	var got Message
	f.Register(5, func(m Message) { at = k.Now(); got = m })
	for i := 0; i < 16; i++ {
		if i != 5 {
			f.Register(i, func(Message) {})
		}
	}
	f.Send(0, 2, 5, stats.ClassData, timing.DataBytes, "hello")
	k.Run()
	if at != 49*sim.Nanosecond {
		t.Fatalf("arrival = %v, want 49ns", at)
	}
	if got.Payload.(string) != "hello" || got.Src != 2 || got.Dst != 5 {
		t.Fatalf("message = %+v", got)
	}
}

func TestSendLocalIsLoopback(t *testing.T) {
	k, f, tr := newTestFabric(t, topology.MustTorus(4, 4))
	var at sim.Time
	f.Register(3, func(m Message) { at = k.Now() })
	f.Send(0, 3, 3, stats.ClassRequest, timing.CtrlBytes, nil)
	k.Run()
	if at != 4*sim.Nanosecond {
		t.Fatalf("local arrival = %v, want Dovh=4ns", at)
	}
	if tr.LinkBytes(stats.ClassRequest) != 0 {
		t.Fatalf("local message counted link bytes: %d", tr.LinkBytes(stats.ClassRequest))
	}
	if tr.Messages(stats.ClassRequest) != 1 {
		t.Fatalf("local message not counted: %d", tr.Messages(stats.ClassRequest))
	}
}

func TestTrafficChargesLinksTimesBytes(t *testing.T) {
	k, f, tr := newTestFabric(t, topology.MustButterfly(4))
	f.Register(9, func(Message) {})
	f.Send(1, 0, 9, stats.ClassData, timing.DataBytes, nil)
	k.Run()
	if got := tr.LinkBytes(stats.ClassData); got != 3*72 {
		t.Fatalf("data link bytes = %d, want 216", got)
	}
}

func TestOrderedVNetNeverReorders(t *testing.T) {
	k, f, _ := newTestFabric(t, topology.MustTorus(4, 4), 2)
	// Perturbation that would reorder: big delay first, zero after.
	delays := []sim.Duration{100 * sim.Nanosecond, 0, 0, 0, 0}
	i := 0
	f.SetPerturbation(func() sim.Duration { d := delays[i%len(delays)]; i++; return d })
	var got []int
	f.Register(1, func(m Message) { got = append(got, m.Payload.(int)) })
	for n := 0; n < 5; n++ {
		f.Send(2, 0, 1, stats.ClassMisc, timing.CtrlBytes, n)
	}
	k.Run()
	for n := range got {
		if got[n] != n {
			t.Fatalf("ordered vnet reordered: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d messages, want 5", len(got))
	}
}

func TestUnorderedVNetCanReorder(t *testing.T) {
	k, f, _ := newTestFabric(t, topology.MustTorus(4, 4))
	delays := []sim.Duration{100 * sim.Nanosecond, 0}
	i := 0
	f.SetPerturbation(func() sim.Duration { d := delays[i%len(delays)]; i++; return d })
	var got []int
	f.Register(1, func(m Message) { got = append(got, m.Payload.(int)) })
	f.Send(0, 0, 1, stats.ClassMisc, timing.CtrlBytes, 0)
	f.Send(0, 0, 1, stats.ClassMisc, timing.CtrlBytes, 1)
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("expected reorder on unordered vnet, got %v", got)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	_, f, _ := newTestFabric(t, topology.MustTorus(4, 4))
	f.Register(0, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double register did not panic")
		}
	}()
	f.Register(0, func(Message) {})
}

func TestSendToUnregisteredPanics(t *testing.T) {
	_, f, _ := newTestFabric(t, topology.MustTorus(4, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("send to unregistered endpoint did not panic")
		}
	}()
	f.Send(0, 0, 1, stats.ClassMisc, 8, nil)
}

func TestPerturbationAddsDelay(t *testing.T) {
	k, f, _ := newTestFabric(t, topology.MustButterfly(4))
	f.SetPerturbation(func() sim.Duration { return 3 * sim.Nanosecond })
	var at sim.Time
	f.Register(4, func(Message) { at = k.Now() })
	f.Send(0, 0, 4, stats.ClassData, 72, nil)
	k.Run()
	if at != 52*sim.Nanosecond {
		t.Fatalf("arrival = %v, want 52ns", at)
	}
}

func TestSentCounter(t *testing.T) {
	k, f, _ := newTestFabric(t, topology.MustTorus(4, 4))
	f.Register(1, func(Message) {})
	for i := 0; i < 7; i++ {
		f.Send(0, 0, 1, stats.ClassMisc, 8, nil)
	}
	k.Run()
	if f.Sent() != 7 {
		t.Fatalf("Sent = %d, want 7", f.Sent())
	}
}
