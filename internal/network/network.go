// Package network implements the unloaded point-to-point message fabric
// shared by all protocols: the data virtual network of timestamp snooping
// and the three virtual networks of the directory protocols.
//
// The paper models unloaded network latencies only ("we do not model
// network contention", Section 4.3): a message from src to dst arrives
// after Dovh + hops*Dswitch, and the traffic accountant charges its size
// times the number of links traversed. Virtual networks share the physical
// links, so traffic sums across vnets.
//
// A virtual network may be declared point-to-point ordered (DirOpt's
// forwarded-request network); deliveries on an ordered vnet never overtake
// earlier sends between the same endpoints, even under perturbation.
package network

import (
	"fmt"

	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/timing"
	"tsnoop/internal/topology"
)

// Message is a delivered network message.
type Message struct {
	VNet     int
	Src, Dst int
	Class    stats.Class
	Bytes    int
	Payload  any
	SentAt   sim.Time
	ArriveAt sim.Time
}

// Handler consumes messages delivered to one endpoint.
type Handler func(m Message)

// Fabric is an unloaded-latency point-to-point network.
type Fabric struct {
	k       *sim.Kernel
	topo    *topology.Topology
	params  timing.Params
	traffic *stats.Traffic

	// perturb, when non-nil, returns an extra delivery delay; the paper's
	// stability methodology injects small random delays into message
	// responses and reports the minimum runtime over several seeds.
	perturb func() sim.Duration

	handlers []Handler
	ordered  map[int]bool
	lastAt   map[orderKey]sim.Time

	// msgPool recycles in-flight message envelopes: a delivery returns
	// its envelope to the pool before invoking the handler, so a steady
	// stream of sends allocates nothing.
	msgPool sim.Pool[Message]

	// Counters for tests and reports.
	sent int64

	// probe, when non-nil, counts message-delivery dispatches
	// (nil-guarded: bare runs pay one branch per delivery).
	probe *obs.Probe
}

type orderKey struct {
	vnet, src, dst int
}

// New creates a fabric over topo using the given kernel, timing parameters
// and traffic accountant. orderedVNets lists vnet numbers that must
// preserve point-to-point ordering.
func New(k *sim.Kernel, topo *topology.Topology, params timing.Params, traffic *stats.Traffic, orderedVNets ...int) *Fabric {
	f := &Fabric{
		k:        k,
		topo:     topo,
		params:   params,
		traffic:  traffic,
		handlers: make([]Handler, topo.Nodes()),
		ordered:  make(map[int]bool),
		lastAt:   make(map[orderKey]sim.Time),
	}
	for _, v := range orderedVNets {
		f.ordered[v] = true
	}
	return f
}

// SetPerturbation installs a delivery-delay sampler (nil disables).
func (f *Fabric) SetPerturbation(fn func() sim.Duration) { f.perturb = fn }

// SetProbe attaches (or, with nil, detaches) the telemetry probe.
func (f *Fabric) SetProbe(p *obs.Probe) { f.probe = p }

// Register installs the message handler for endpoint dst. Each endpoint
// must register exactly once before any Send to it arrives.
func (f *Fabric) Register(dst int, h Handler) {
	if f.handlers[dst] != nil {
		panic(fmt.Sprintf("network: endpoint %d registered twice", dst))
	}
	f.handlers[dst] = h
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.topo }

// Sent returns the number of messages sent so far.
func (f *Fabric) Sent() int64 { return f.sent }

// Send transmits a message. Latency is the unloaded Dovh + hops*Dswitch
// (plus perturbation); a message to self costs Dovh (network-interface
// loopback) and no link traffic.
func (f *Fabric) Send(vnet, src, dst int, class stats.Class, bytes int, payload any) {
	if f.handlers[dst] == nil {
		panic(fmt.Sprintf("network: send to unregistered endpoint %d", dst))
	}
	hops := f.topo.Hops(src, dst)
	lat := f.params.Dnet(hops)
	if f.perturb != nil {
		lat += f.perturb()
	}
	arrive := f.k.Now() + lat
	if len(f.ordered) > 0 && f.ordered[vnet] {
		key := orderKey{vnet, src, dst}
		if prev := f.lastAt[key]; arrive < prev {
			arrive = prev
		}
		f.lastAt[key] = arrive
	}
	if hops > 0 {
		f.traffic.Add(class, hops, bytes)
	} else {
		// Local messages still count once for message statistics but
		// occupy zero links.
		f.traffic.Add(class, 0, bytes)
	}
	f.sent++
	pm := f.msgPool.Get()
	*pm = Message{
		VNet: vnet, Src: src, Dst: dst,
		Class: class, Bytes: bytes, Payload: payload,
		SentAt: f.k.Now(), ArriveAt: arrive,
	}
	f.k.AtCall(arrive, deliverMsg, f, pm, 0)
}

// deliverMsg is the typed kernel event completing a message transit: a0
// is the Fabric, a1 the pooled envelope. The envelope is copied out and
// recycled before the handler runs, so handlers may re-enter Send.
func deliverMsg(a0, a1 any, i0 int64) {
	f := a0.(*Fabric)
	pm := a1.(*Message)
	if p := f.probe; p != nil {
		p.Event(obs.EvDataMsg)
		// data_flight: the message's unloaded transit, observed at the
		// destination.
		p.Span(obs.SpanDataFlight, int32(pm.Dst), obs.NetLane(obs.SpanDataFlight),
			int32(pm.Src), 0, int64(pm.SentAt), int64(pm.ArriveAt-pm.SentAt))
	}
	m := *pm
	f.msgPool.Put(pm)
	f.handlers[m.Dst](m)
}

// UnloadedLatency reports the fabric's latency between two endpoints
// without sending anything; used by the Table 2 analytic checks.
func (f *Fabric) UnloadedLatency(src, dst int) sim.Duration {
	return f.params.Dnet(f.topo.Hops(src, dst))
}
