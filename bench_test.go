package tsnoop

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation, plus the design-knob ablations and a few
// micro-benchmarks of the core data structures. Each figure benchmark
// reports the paper's headline metrics via b.ReportMetric:
//
//	go test -bench=Figure3 -benchmem .
//
// The figure benchmarks run at a reduced workload scale so one iteration
// stays in seconds; pass -benchtime=1x to run each exactly once.

import (
	"bytes"
	"runtime"
	"testing"

	"tsnoop/internal/cache"
	"tsnoop/internal/coherence"
	"tsnoop/internal/core"
	"tsnoop/internal/harness"
	"tsnoop/internal/obs"
	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/system"
	"tsnoop/internal/topology"
	"tsnoop/internal/trace"
	"tsnoop/internal/tsnet"
	"tsnoop/internal/workload"
)

// benchExperiment is the reduced-scale setup used by the figure benches.
// The concurrent engine is enabled (one worker per CPU); results are
// byte-identical to a serial run, so the reported paper metrics are
// unaffected.
func benchExperiment() harness.Experiment {
	e := harness.Default()
	e.Seeds = 1
	e.QuotaScale = 0.2
	e.WarmupScale = 0.5
	e.Workers = runtime.NumCPU()
	return e
}

func benchFigure3(b *testing.B, network string) {
	e := benchExperiment()
	for i := 0; i < b.N; i++ {
		g, err := e.RunGrid(network)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := g.SpeedupRange(system.ProtoDirClassic)
		lo2, hi2 := g.SpeedupRange(system.ProtoDirOpt)
		b.ReportMetric(lo*100, "minSpeedupClassic_%")
		b.ReportMetric(hi*100, "maxSpeedupClassic_%")
		b.ReportMetric(lo2*100, "minSpeedupOpt_%")
		b.ReportMetric(hi2*100, "maxSpeedupOpt_%")
	}
}

// BenchmarkFigure3Butterfly regenerates Figure 3 (left): normalized
// runtimes on the butterfly. Paper: TS-Snoop 10-28% faster than
// DirClassic, 6-28% faster than DirOpt.
func BenchmarkFigure3Butterfly(b *testing.B) { benchFigure3(b, system.NetButterfly) }

// BenchmarkFigure3Torus regenerates Figure 3 (right): normalized runtimes
// on the torus. Paper: 15-29% and 6-23% faster.
func BenchmarkFigure3Torus(b *testing.B) { benchFigure3(b, system.NetTorus) }

func benchFigure4(b *testing.B, network string) {
	e := benchExperiment()
	for i := 0; i < b.N; i++ {
		g, err := e.RunGrid(network)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := g.ExtraTrafficRange(system.ProtoDirOpt)
		b.ReportMetric(lo*100, "minExtraTraffic_%")
		b.ReportMetric(hi*100, "maxExtraTraffic_%")
	}
}

// BenchmarkFigure4Butterfly regenerates Figure 4 (left): link traffic on
// the butterfly. Paper: TS-Snoop uses 13-43% more link bandwidth.
func BenchmarkFigure4Butterfly(b *testing.B) { benchFigure4(b, system.NetButterfly) }

// BenchmarkFigure4Torus regenerates Figure 4 (right). Paper: 17-37% more.
func BenchmarkFigure4Torus(b *testing.B) { benchFigure4(b, system.NetTorus) }

// BenchmarkTable2Butterfly regenerates Table 2's butterfly rows by
// measuring unloaded miss latencies (178/123/252 ns).
func BenchmarkTable2Butterfly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(system.NetButterfly)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Measured.Nanoseconds(), "memMiss_ns")
		b.ReportMetric(rows[2].Measured.Nanoseconds(), "tsC2C_ns")
		b.ReportMetric(rows[3].Measured.Nanoseconds(), "dir3hop_ns")
	}
}

// BenchmarkTable2Torus regenerates Table 2's torus rows (means 148/93/207
// ns; the TS row includes ordering delay).
func BenchmarkTable2Torus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(system.NetTorus)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Measured.Nanoseconds(), "memMiss_ns")
		b.ReportMetric(rows[2].Measured.Nanoseconds(), "tsC2C_ns")
		b.ReportMetric(rows[3].Measured.Nanoseconds(), "dir3hop_ns")
	}
}

// BenchmarkTable3 regenerates the benchmark-characteristics table,
// reporting the measured cache-to-cache fractions (paper: 43/60/40/40/43).
func BenchmarkTable3(b *testing.B) {
	e := benchExperiment()
	e.QuotaScale = 0.4
	for i := 0; i < b.N; i++ {
		rows, err := e.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ThreeHopPct, r.Benchmark+"_3hop_%")
		}
	}
}

// BenchmarkEnvelope computes the Section 5 bandwidth bounds (384 vs 240
// bytes per miss; 60% / 33% extra-bandwidth limits).
func BenchmarkEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := harness.Envelope(system.NetButterfly, 16, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.TSBytes), "tsBytesPerMiss")
		b.ReportMetric(row.ExtraBoundPc, "extraBound_%")
	}
}

// benchAblation measures one TS-Snoop design knob against the baseline on
// the torus (where ordering delay makes the knobs visible). Knobs are
// declarative spec options, the same vocabulary the ablation sweep uses.
func benchAblation(b *testing.B, opts ...core.Option) {
	s := core.New("barnes",
		append([]core.Option{core.WithNetwork(core.Torus), core.WithWarmup(1000), core.WithQuota(1000)}, opts...)...)
	for i := 0; i < b.N; i++ {
		run, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.Runtime)/1000, "simRuntime_ns")
		b.ReportMetric(float64(run.MissLatency.Mean())/1000, "missLatency_ns")
	}
}

// BenchmarkAblationBaseline is the reference point for the ablations.
func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b) }

// BenchmarkAblationSlack0 sets the initial slack S to zero.
func BenchmarkAblationSlack0(b *testing.B) {
	benchAblation(b, core.WithSlack(0))
}

// BenchmarkAblationSlack4 sets the initial slack S to four.
func BenchmarkAblationSlack4(b *testing.B) {
	benchAblation(b, core.WithSlack(4))
}

// BenchmarkAblationNoPrefetch disables optimization 1.
func BenchmarkAblationNoPrefetch(b *testing.B) {
	benchAblation(b, core.WithoutPrefetch())
}

// BenchmarkAblationEarlyProcessing enables optimization 2.
func BenchmarkAblationEarlyProcessing(b *testing.B) {
	benchAblation(b, core.WithEarlyProcessing())
}

// BenchmarkAblationTokens2 doubles the tokens per input port.
func BenchmarkAblationTokens2(b *testing.B) {
	benchAblation(b, core.WithTokensPerPort(2))
}

// BenchmarkAblationContention enables switch output-port contention
// modelling (the paper's evaluation is uncontended).
func BenchmarkAblationContention(b *testing.B) {
	benchAblation(b, core.WithContention())
}

// BenchmarkAblationMOSI upgrades TS-Snoop to MOSI: the Owned state
// eliminates the owner-to-memory writeback on every sharing miss.
func BenchmarkAblationMOSI(b *testing.B) {
	benchAblation(b, core.WithMOSI())
}

// BenchmarkAblationMulticast enables simplified multicast snooping:
// GETS goes to a predicted destination set instead of a full broadcast,
// cutting address traffic (the paper's first future-work direction).
func BenchmarkAblationMulticast(b *testing.B) {
	benchAblation(b, core.WithMulticast())
}

// BenchmarkAblationMulticastMOSI combines both extensions.
func BenchmarkAblationMulticastMOSI(b *testing.B) {
	benchAblation(b, core.WithMulticast(), core.WithMOSI())
}

// BenchmarkSweepNodes runs the machine-size sensitivity sweep.
func BenchmarkSweepNodes(b *testing.B) {
	e := benchExperiment()
	e.QuotaScale = 0.1
	for i := 0; i < b.N; i++ {
		if _, err := e.NodesSweep("barnes"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBlockSize runs the block-size sensitivity sweep.
func BenchmarkSweepBlockSize(b *testing.B) {
	e := benchExperiment()
	for i := 0; i < b.N; i++ {
		if _, err := e.BlockSizeSweep("barnes"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGridWorkers measures one full Figure 3/4 grid regeneration at a
// fixed worker count.
func benchGridWorkers(b *testing.B, workers int) {
	e := benchExperiment()
	e.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := e.RunGrid(system.NetButterfly); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunGridSerial is the serial baseline for the experiment
// engine (Workers = 1).
func BenchmarkRunGridSerial(b *testing.B) { benchGridWorkers(b, 1) }

// BenchmarkRunGridParallel runs the same grid with one worker per CPU;
// the ratio to BenchmarkRunGridSerial is the engine's speedup.
func BenchmarkRunGridParallel(b *testing.B) { benchGridWorkers(b, runtime.NumCPU()) }

// --- Trace codec throughput ---

// benchCaptureTrace records a 16-CPU barnes trace spanning several
// chunks per stream, the working set for the codec benchmarks.
func benchCaptureTrace(b *testing.B) *trace.Trace {
	b.Helper()
	gen, err := workload.ByName("barnes", 16)
	if err != nil {
		b.Fatal(err)
	}
	return trace.Capture(gen, 16, 1, trace.ChunkLen/2, 2*trace.ChunkLen)
}

// benchTraceEncode measures encode throughput at a fixed worker count.
// MB/s is encoded file bytes out; accesses/s is the stream rate in.
func benchTraceEncode(b *testing.B, workers int) {
	t := benchCaptureTrace(b)
	var buf bytes.Buffer
	if err := trace.Encode(t, &buf, workers); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.Encode(t, &buf, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.Accesses())*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// benchTraceDecode measures decode throughput at a fixed worker count.
// MB/s is encoded file bytes in; accesses/s is the stream rate out.
func benchTraceDecode(b *testing.B, workers int) {
	t := benchCaptureTrace(b)
	var buf bytes.Buffer
	if err := trace.Encode(t, &buf, workers); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Decode(data, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.Accesses())*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkTraceEncodeSerial encodes with a single worker.
func BenchmarkTraceEncodeSerial(b *testing.B) { benchTraceEncode(b, 1) }

// BenchmarkTraceEncodeParallel encodes chunk batches across the pool;
// the ratio to the serial bench is the codec's encode speedup.
func BenchmarkTraceEncodeParallel(b *testing.B) { benchTraceEncode(b, runtime.NumCPU()) }

// BenchmarkTraceDecodeSerial decodes with a single worker.
func BenchmarkTraceDecodeSerial(b *testing.B) { benchTraceDecode(b, 1) }

// BenchmarkTraceDecodeParallel decodes chunk payloads across the pool.
func BenchmarkTraceDecodeParallel(b *testing.B) { benchTraceDecode(b, runtime.NumCPU()) }

// --- Micro-benchmarks of the core machinery ---

// BenchmarkKernelEvents measures raw event dispatch throughput.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		k.Step()
	}
}

// BenchmarkTsnetBroadcast measures one ordered broadcast end to end on the
// butterfly (21 link deliveries, 16 reorder insertions, ordering).
func BenchmarkTsnetBroadcast(b *testing.B) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	run := &stats.Run{}
	cfg := tsnet.DefaultConfig()
	cfg.Verify = false
	net := tsnet.New(k, topo, cfg, &run.Traffic, run)
	delivered := 0
	for ep := 0; ep < 16; ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) { delivered++ }, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := delivered + 16
		net.Inject(i%16, nil)
		k.RunWhile(func() bool { return delivered < want })
	}
}

// BenchmarkKernelEventsProbed is BenchmarkKernelEvents with a telemetry
// probe attached: the per-dispatch overhead of -metrics on the kernel
// (two histogram observes and a couple of counter increments).
func BenchmarkKernelEventsProbed(b *testing.B) {
	k := sim.NewKernel()
	k.SetProbe(obs.NewProbe())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		k.Step()
	}
}

// BenchmarkTsnetBroadcastProbed is BenchmarkTsnetBroadcast with a
// telemetry probe wired through the kernel and the address network —
// the full -metrics recording cost on the hottest simulated path.
func BenchmarkTsnetBroadcastProbed(b *testing.B) {
	topo := topology.MustButterfly(4)
	k := sim.NewKernel()
	probe := obs.NewProbe()
	k.SetProbe(probe)
	run := &stats.Run{}
	cfg := tsnet.DefaultConfig()
	cfg.Verify = false
	cfg.Probe = probe
	net := tsnet.New(k, topo, cfg, &run.Traffic, run)
	delivered := 0
	for ep := 0; ep < 16; ep++ {
		net.Register(ep, func(int, uint64, any, sim.Time) { delivered++ }, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := delivered + 16
		net.Inject(i%16, nil)
		k.RunWhile(func() bool { return delivered < want })
	}
}

// BenchmarkCacheOps measures L2 lookup+insert cost.
func BenchmarkCacheOps(b *testing.B) {
	c := cache.MustNew(cache.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := coherence.Block(i % 100000)
		if s, _ := c.Lookup(blk); s == cache.Invalid {
			c.Insert(blk, cache.Shared, 0)
		}
	}
}

// BenchmarkTSSnoopMiss measures a full timestamp-snooping miss
// (broadcast, ordering, memory access, data return) on the butterfly.
func BenchmarkTSSnoopMiss(b *testing.B) {
	benchProtocolMiss(b, system.ProtoTSSnoop)
}

// BenchmarkDirectoryMiss measures a full directory miss for comparison.
func BenchmarkDirectoryMiss(b *testing.B) {
	benchProtocolMiss(b, system.ProtoDirOpt)
}

func benchProtocolMiss(b *testing.B, proto string) {
	cfg := system.DefaultConfig(proto, system.NetButterfly)
	cfg.WarmupPerCPU = 1
	cfg.MeasurePerCPU = 1
	gen := workload.Uniform(1<<20, 0.0, 10, 16)
	s, err := system.Build(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	s.Execute()
	done := false
	doneFn := func(coherence.AccessResult) { done = true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done = false
		blk := coherence.Block(1<<22 + i)
		s.Proto.Access(i%16, coherence.Load, blk, doneFn)
		s.K.RunWhile(func() bool { return !done })
	}
}

// BenchmarkTSSnoopMissSteady measures the steady-state miss path: two
// nodes ping-pong stores to one block, so every access is a
// cache-to-cache GETX miss over warm protocol state. Unlike
// BenchmarkTSSnoopMiss (a cold block every iteration), this is the
// allocation-free regime the simulation spends its time in; the
// allocation-budget test TestMissAllocs pins it at zero.
func BenchmarkTSSnoopMissSteady(b *testing.B) {
	cfg := system.DefaultConfig(system.ProtoTSSnoop, system.NetButterfly)
	cfg.WarmupPerCPU = 1
	cfg.MeasurePerCPU = 1
	gen := workload.Uniform(1<<20, 0.0, 10, 16)
	s, err := system.Build(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	s.Execute()
	done := false
	doneFn := func(coherence.AccessResult) { done = true }
	const blk = coherence.Block(1 << 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done = false
		s.Proto.Access(i%2, coherence.Store, blk, doneFn)
		s.K.RunWhile(func() bool { return !done })
	}
}
