// Spec API walkthrough: the experiment surface is one declarative
// value. This example builds a core.Spec with functional options,
// shows the three lossless renderings (Go value, JSON, flag list),
// demonstrates one-line validation errors, runs the spec, and then
// streams a grid with live per-cell progress and early cancellation —
// the things the old positional-arguments-plus-mutation-hook API could
// not express.
package main

import (
	"context"
	"fmt"
	"log"

	"tsnoop/internal/core"
)

func main() {
	log.SetFlags(0)

	// 1. Declare an experiment. Unset knobs keep the paper's defaults
	// (16 nodes, slack 1, prefetch on, 4 MB caches ...).
	s := core.New("DSS",
		core.WithProtocol(core.TSSnoop),
		core.WithNetwork(core.Torus),
		core.WithSlack(4),
		core.WithMOSI(),
		core.WithQuota(1000),
		core.WithWarmup(800),
		core.WithSeeds(3),
		core.WithPerturbNS(3),
	)

	// 2. The same spec as JSON and as a flag list — both round-trip to
	// the identical value, so files, scripts, and the tsnoop CLI all
	// name the same experiment.
	fmt.Printf("spec JSON:\n  %s\n", s.JSON())
	fmt.Printf("spec flags:\n  tsnoop run %v\n\n", s.Args())
	if back, err := core.FromJSON(s.JSON()); err != nil || back != s {
		log.Fatalf("JSON round trip broke: %v", err)
	}
	if back, err := core.FromArgs(s.Args()); err != nil || back != s {
		log.Fatalf("flag round trip broke: %v", err)
	}

	// 3. Validation happens in one place and reports one-line errors.
	if _, err := core.New("tpc-w").Run(); err != nil {
		fmt.Printf("validation: %v\n", err)
	}
	if _, err := core.New("OLTP", core.WithNetwork("hypercube")).Run(); err != nil {
		fmt.Printf("validation: %v\n\n", err)
	}

	// 4. Run it: three perturbed copies fan out concurrently and the
	// minimum-runtime run is reported (the paper's rule).
	run, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s / %s / %s, best of %d seeds ==\n", s.Benchmark, s.Protocol, s.Network, s.Seeds)
	fmt.Print(run.Summary())

	// 5. Grids stream: each benchmark x protocol cell arrives the moment
	// its seeds finish, so progress is live and a context cancels early.
	// The spec's benchmark restricts the grid to one workload.
	fmt.Println("\n== streaming a one-benchmark grid (butterfly) ==")
	e := core.ExperimentFor(core.New("barnes", core.WithQuotaScale(0.2), core.WithWarmupScale(0.2)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	grid := core.NewGrid(core.Butterfly, e.Benchmarks)
	for cell, err := range e.StreamGrid(ctx, core.Butterfly) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cell done: %-10s %-11s runtime %v\n", cell.Cell.Benchmark, cell.Cell.Protocol, cell.Best.Runtime)
		grid.Add(cell)
	}
	fmt.Println()
	fmt.Print(grid.Figure3())
}
