// Token walkthrough: narrates Figure 1's token-passing example by hand,
// then demonstrates the same machinery live on a real timestamp-snooping
// network in contention mode.
//
// Figure 1 shows a simplified 2x2 switch handling one message with the
// three slack-recurrence cases: +dGT when the message moves past waiting
// tokens on entry, -1 when the switch propagates a token past the buffered
// message, and +dD on the shorter branch of an unbalanced broadcast.
package main

import (
	"fmt"

	"tsnoop/internal/sim"
	"tsnoop/internal/stats"
	"tsnoop/internal/topology"
	"tsnoop/internal/tsnet"
)

func walkFigure1() {
	fmt.Println("=== Figure 1, step by step (S_new = S_old + dGT + dD) ===")
	slack := 1
	fmt.Printf("(a) msg arrives with slack %d; input port holds 1 waiting token\n", slack)
	dGT := 1 // the message moves past the waiting token
	slack += dGT
	fmt.Printf("(b) contention buffers the msg; it moves past the token: slack %d (dGT=+1)\n", slack)
	fmt.Println("(c) tokens arrive on both inputs; the switch increments its counters")
	slack-- // the issued token moves past the buffered message
	fmt.Printf("(d) the switch propagates a token on each output; it moves past the buffered msg: slack %d (dGT=-1)\n", slack)
	top, bottom := slack+1, slack+0
	fmt.Printf("(e) the msg departs: top branch is 1 hop shorter (dD=+1) -> slack %d; bottom continues the longest path (dD=0) -> slack %d\n",
		top, bottom)
	fmt.Println("The ordering time is invariant throughout: OT = GT + remaining-depth + slack.")
}

func walkLive() {
	fmt.Println("\n=== The same machinery live: contended 4x4 torus ===")
	topo := topology.MustTorus(4, 4)
	k := sim.NewKernel()
	run := &stats.Run{}
	cfg := tsnet.DefaultConfig()
	cfg.Contention = true // exercise buffering, token passing, stalls
	cfg.InitialSlack = 1
	net := tsnet.New(k, topo, cfg, &run.Traffic, run)

	processed := make([][]int, topo.Nodes())
	for ep := 0; ep < topo.Nodes(); ep++ {
		ep := ep
		net.Register(ep, func(src int, seq uint64, payload any, arrived sim.Time) {
			processed[ep] = append(processed[ep], src)
		}, nil)
	}
	net.Start()
	k.RunUntil(100 * sim.Nanosecond)

	// Burst: four sources broadcast at the same instant, forcing output
	// contention inside the broadcast trees.
	for _, src := range []int{0, 5, 10, 15} {
		net.Inject(src, nil)
	}
	k.RunUntil(600 * sim.Nanosecond)

	fmt.Printf("4 simultaneous broadcasts, delivered to all %d endpoints\n", topo.Nodes())
	fmt.Printf("every endpoint processed them in the identical total order: %v\n", processed[0])
	for ep := 1; ep < topo.Nodes(); ep++ {
		for i := range processed[0] {
			if processed[ep][i] != processed[0][i] {
				panic("order disagreement — the slack recurrence is broken")
			}
		}
	}
	fmt.Printf("mean ordering delay at the endpoints: %v (max %v)\n",
		run.OrderingDelay.Mean(), run.OrderingDelay.Max())
	fmt.Printf("peak reorder-queue occupancy: %d entries\n", run.ReorderOccupancy.Max())
}

func main() {
	walkFigure1()
	walkLive()
}
