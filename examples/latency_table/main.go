// Latency table: regenerates Table 2 by measuring the protocols'
// unloaded miss latencies and comparing them with the paper's formulas —
// the validation step the paper performed against a Sun E6000.
//
// On the butterfly the directory rows are exact (178 ns from memory,
// 252 ns for a three-hop transfer) and timestamp snooping's cache-to-cache
// transfer lands at ~123 ns — roughly half the directory's, which is the
// whole argument of the paper.
package main

import (
	"fmt"
	"log"

	"tsnoop/internal/harness"
)

func main() {
	log.SetFlags(0)
	out, err := harness.RenderTable2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println("Note: Table 2 lists wire latencies; on the torus, timestamp snooping's")
	fmt.Println("measured mean exceeds the wire figure because a nearby owner must wait")
	fmt.Println("for the transaction's ordering time before responding (Section 3).")
}
