// Quickstart: run one OLTP simulation under timestamp snooping on the
// 16-node butterfly and print its statistics, then contrast the same
// workload under the classic directory protocol. Experiments are
// declared as core.Spec values — build one with options, call Run.
package main

import (
	"fmt"
	"log"

	"tsnoop/internal/core"
)

func main() {
	log.SetFlags(0)

	// Scale the run down for a fast demo.
	small := core.WithQuota(1500)

	snoop, err := core.New("OLTP", core.WithProtocol(core.TSSnoop), small).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== OLTP on timestamp snooping (butterfly) ==")
	fmt.Print(snoop.Summary())

	dir, err := core.New("OLTP", core.WithProtocol(core.DirClassic), small).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== OLTP on DirClassic (butterfly) ==")
	fmt.Print(dir.Summary())

	speedup := float64(dir.Runtime)/float64(snoop.Runtime) - 1
	extra := float64(snoop.Traffic.TotalLinkBytes())/float64(dir.Traffic.TotalLinkBytes()) - 1
	fmt.Printf("\nTimestamp snooping is %.0f%% faster and uses %.0f%% more link bandwidth:\n", 100*speedup, 100*extra)
	fmt.Println("the paper's latency-bandwidth trade-off (Section 7).")
}
