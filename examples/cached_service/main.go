// Cached-service walkthrough: experiments as content-addressed values.
// This example opens the experiment service over a store directory,
// runs the same spec twice (the second answer comes from the store,
// byte-identical, no simulation), shows that an equivalent rendering of
// the spec hashes to the same address, and then streams a grid through
// the cache — the machinery behind `tsnoop serve`, `tsnoop submit`,
// and the -cache flag.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"tsnoop/internal/core"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "tsnoop-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sv, err := core.NewService(core.ServiceConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. One experiment, named by its content. The canonical hash is
	// what the store and the dedup queue key on.
	s := core.New("barnes",
		core.WithNodes(4),
		core.WithWarmup(400),
		core.WithQuota(800),
		core.WithSeeds(2),
		core.WithPerturbNS(3))
	fmt.Printf("spec address: %s\n\n", s.Canonical()[:16])

	// 2. First submission simulates; the repeat is a store hit with the
	// identical bytes.
	first, err := sv.Do(ctx, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first:  cached=%-5v runtime=%v\n", first.Cached, first.Run.Runtime)
	second, err := sv.Do(ctx, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second: cached=%-5v byte-identical=%v\n", second.Cached, string(first.Data) == string(second.Data))

	// 3. Equivalent renderings share the address: worker counts never
	// change results, so they never miss the cache.
	alt := s
	alt.Workers = 8
	res, err := sv.Do(ctx, alt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alt:    cached=%-5v (same experiment, different rendering)\n\n", res.Cached)

	// 4. Grids stream through the same store, cell by cell in
	// presentation order — the second pass renders without simulating.
	e := core.ExperimentFor(s)
	for pass := 1; pass <= 2; pass++ {
		fmt.Printf("grid pass %d:\n", pass)
		for cell, err := range sv.StreamGrid(ctx, e, core.Butterfly) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s/%s runtime %v\n", cell.Cell.Benchmark, cell.Cell.Protocol, cell.Best.Runtime)
		}
	}
	st := sv.StoreStats()
	fmt.Printf("\nstore: %d entries, %d hits, %d puts in %s\n", st.Entries, st.Hits, st.Puts, dir)
}
