// Protocol compare: run every benchmark under all three protocols on a
// chosen network and print Figure 3/4-style comparisons — a compact
// reproduction of the paper's headline result.
package main

import (
	"flag"
	"fmt"
	"log"

	"tsnoop/internal/core"
	"tsnoop/internal/harness"
	"tsnoop/internal/system"
)

func main() {
	log.SetFlags(0)
	network := flag.String("network", core.Torus, "butterfly or torus")
	scale := flag.Float64("scale", 0.4, "workload scale factor (1.0 = full)")
	flag.Parse()

	e := harness.Default()
	e.Seeds = 1
	e.QuotaScale = *scale

	grid, err := e.RunGrid(*network)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid.Figure3())
	fmt.Println(grid.Figure4())

	lo, hi := grid.SpeedupRange(system.ProtoDirOpt)
	tlo, thi := grid.ExtraTrafficRange(system.ProtoDirOpt)
	fmt.Printf("Against the nack-free directory, timestamp snooping runs %.0f-%.0f%% faster\n", lo*100, hi*100)
	fmt.Printf("for %.0f-%.0f%% more link traffic — \"worth considering when buying more\n", tlo*100, thi*100)
	fmt.Println("interconnect bandwidth is easier than reducing interconnect latency.\"")
}
