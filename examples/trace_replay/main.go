// Trace replay: record OLTP's reference stream to the compact trace
// format, replay it bit-exactly in place of the live generator, then
// fold the 16-CPU trace onto 8 processors and run that — a scenario no
// synthetic generator produces. The command-line equivalent is
// "tsnoop trace" (record / stat / transform / replay).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tsnoop/internal/core"
	"tsnoop/internal/trace"
	"tsnoop/internal/workload"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "tsnoop-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Record: capture the exact per-CPU stream a live 16-processor OLTP
	// run at seed 1 consumes (scaled down for a fast demo).
	const warmup, quota = 1000, 1500
	gen, err := workload.ByName("OLTP", 16)
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.Capture(gen, 16, 1, warmup, quota)
	path := filepath.Join(dir, "oltp.tstrace")
	if err := tr.WriteFile(path, 0); err != nil {
		log.Fatal(err)
	}
	st, err := trace.StatFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d accesses, %d bytes on disk (%.2f bytes/access vs 20 in memory)\n\n",
		st.Accesses(), st.FileBytes, float64(st.FileBytes)/float64(st.Accesses()))

	// Replay: "trace:<path>" works anywhere a benchmark name does, and
	// the trace carries its own phase quotas.
	live, err := core.New("OLTP", core.WithWarmup(warmup), core.WithQuota(quota)).Run()
	if err != nil {
		log.Fatal(err)
	}
	replay, err := core.New("trace:" + path).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== trace replay vs live generator (TS-Snoop, butterfly) ==")
	if live.Summary() != replay.Summary() {
		log.Fatal("replay diverged from the live run — this should be impossible")
	}
	fmt.Println("replay reproduces the live run byte-identically:")
	fmt.Print(replay.Summary())

	// Transform: fold the 16 recorded streams onto 8 processors
	// (interleaved, so the contention structure survives) and replay the
	// result on the 8-node torus.
	folded, err := trace.Apply(tr, 0, trace.Fold(8))
	if err != nil {
		log.Fatal(err)
	}
	foldedPath := filepath.Join(dir, "oltp-8.tstrace")
	if err := folded.WriteFile(foldedPath, 0); err != nil {
		log.Fatal(err)
	}
	run8, err := core.New("trace:"+foldedPath, core.WithNetwork(core.Torus), core.WithNodes(8)).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== the same trace folded onto an 8-node torus ==")
	fmt.Print(run8.Summary())
}
