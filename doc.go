// Package tsnoop reproduces "Timestamp Snooping: An Approach for Extending
// SMPs" (Martin et al., ASPLOS 2000): a discrete-event simulation of MOESI
// snooping over logically ordered switched networks, two directory
// baselines, the paper's five commercial workloads as synthetic reference
// streams, and a harness that regenerates every table and figure in the
// paper's evaluation.
//
// The harness is a concurrent experiment engine: grid cells, perturbed
// seeds, and sweep points fan out across a deterministic worker pool
// (internal/parallel) with results collected in job order, so output is
// byte-identical at any worker count (harness.Experiment.Workers; every
// cmd tool exposes it as -workers).
//
// Workload streams can be captured to compact trace files and replayed
// bit-exactly (internal/trace): a chunked, varint+delta-encoded format
// stores per-CPU streams of accesses; a Replayer is itself a
// workload.Generator, so "trace:<path>" works anywhere a benchmark name
// does — tsrun, grids, sweeps, and tables run from trace files
// unchanged. Composable transforms (CPU fold, footprint scale, window,
// merge) rewrite traces into scenarios no generator produces, and the
// cmd/tstrace tool surfaces record/replay/stat/transform on the
// command line.
//
// The public entry point is internal/core; the executables live under
// cmd/ and runnable examples under examples/. See README.md for a
// quickstart.
package tsnoop
