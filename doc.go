// Package tsnoop reproduces "Timestamp Snooping: An Approach for Extending
// SMPs" (Martin et al., ASPLOS 2000): a discrete-event simulation of MOESI
// snooping over logically ordered switched networks, two directory
// baselines, the paper's five commercial workloads as synthetic reference
// streams, and a harness that regenerates every table and figure in the
// paper's evaluation.
//
// The public entry point is internal/core; the executables live under
// cmd/ and runnable examples under examples/. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package tsnoop
