// Package tsnoop reproduces "Timestamp Snooping: An Approach for Extending
// SMPs" (Martin et al., ASPLOS 2000): a discrete-event simulation of MOESI
// snooping over logically ordered switched networks, two directory
// baselines, the paper's five commercial workloads as synthetic reference
// streams, and a harness that regenerates every table and figure in the
// paper's evaluation.
//
// The harness is a concurrent experiment engine: grid cells, perturbed
// seeds, and sweep points fan out across a deterministic worker pool
// (internal/parallel) with results collected in job order, so output is
// byte-identical at any worker count (harness.Experiment.Workers; every
// cmd tool exposes it as -workers).
//
// The public entry point is internal/core; the executables live under
// cmd/ and runnable examples under examples/. See README.md for a
// quickstart.
package tsnoop
